package cafmpi_test

import (
	"context"
	"errors"
	"testing"

	"cafmpi/caf"
	"cafmpi/internal/fabric"
	"cafmpi/internal/faults"
	"cafmpi/internal/hpcc"
)

var chaosSubstrates = []caf.Substrate{caf.MPI, caf.GASNet}

// chaosRun executes fn under plan and returns the injected-fault log
// signature hash alongside the run error.
func chaosRun(sub caf.Substrate, n int, plan *caf.FaultPlan, fn func(*caf.Image) error) (string, error) {
	cfg := caf.Config{Substrate: sub, Platform: fabric.Platform("fusion"), Faults: plan}
	w, err := caf.RunWorld(n, cfg, fn)
	if err != nil {
		return "", err
	}
	return faults.SignatureHash(faults.Enabled(w).Log()), nil
}

// raVerify is the canonical chaos workload: verified RandomAccess.
func raVerify(im *caf.Image) error {
	res, err := hpcc.RandomAccess(im, hpcc.RAConfig{TableBits: 8, UpdatesPerImage: 512, BatchSize: 128, Verify: true})
	if err != nil {
		return err
	}
	if res.Errors != 0 {
		return errors.New("RandomAccess table verification failed under fault plan")
	}
	return nil
}

// TestChaosRandomAccessCompletes: verified RandomAccess completes
// correctly under the canonical 1% drop plan on both substrates, with a
// bit-reproducible injected-fault signature.
func TestChaosRandomAccessCompletes(t *testing.T) {
	for _, sub := range chaosSubstrates {
		sig1, err := chaosRun(sub, 8, faults.Canonical(1), raVerify)
		if err != nil {
			t.Fatalf("%s: %v", sub, err)
		}
		sig2, err := chaosRun(sub, 8, faults.Canonical(1), raVerify)
		if err != nil {
			t.Fatalf("%s (rerun): %v", sub, err)
		}
		if sig1 != sig2 {
			t.Fatalf("%s: fault signature not deterministic: %s vs %s", sub, sig1, sig2)
		}
	}
}

// TestChaosEventPingPong: a strict notify/wait alternation terminates
// under injected loss only if every notification is delivered exactly
// once; a stuck Wait here means a dropped notify was never retried (or a
// duplicate double-credited the semaphore).
func TestChaosEventPingPong(t *testing.T) {
	const rounds = 256
	plan := &caf.FaultPlan{Seed: 3, Rules: []faults.Rule{
		{Kind: faults.KindDrop, Src: -1, Dst: -1, Prob: 0.05},
		{Kind: faults.KindDup, Src: -1, Dst: -1, Prob: 0.05, DelayNS: 900},
		{Kind: faults.KindReorder, Src: -1, Dst: -1, Prob: 0.1, DelayNS: 4000},
	}}
	for _, sub := range chaosSubstrates {
		_, err := chaosRun(sub, 2, plan, func(im *caf.Image) error {
			evs, err := im.NewEvents(im.World(), 1)
			if err != nil {
				return err
			}
			peer := 1 - im.ID()
			for i := 0; i < rounds; i++ {
				if im.ID() == 0 {
					if err := evs.Notify(peer, 0); err != nil {
						return err
					}
					if err := evs.Wait(0); err != nil {
						return err
					}
				} else {
					if err := evs.Wait(0); err != nil {
						return err
					}
					if err := evs.Notify(peer, 0); err != nil {
						return err
					}
				}
			}
			// Exactly-once: no stray credit may remain on either side.
			if ok, err := evs.TryWait(0); err != nil {
				return err
			} else if ok {
				return errors.New("duplicate notification credited the event twice")
			}
			return nil
		})
		if err != nil {
			t.Fatalf("%s: %v", sub, err)
		}
	}
}

// TestRetriesExhaustedSurfaces: with every message dropped, the failure
// surfaces as the typed ErrRetriesExhausted / ErrTimeout chain.
func TestRetriesExhaustedSurfaces(t *testing.T) {
	plan := &caf.FaultPlan{Seed: 1, Rules: []faults.Rule{
		{Kind: faults.KindDrop, Src: -1, Dst: -1, Prob: 1},
	}}
	for _, sub := range chaosSubstrates {
		_, err := chaosRun(sub, 2, plan, func(im *caf.Image) error {
			return im.World().Barrier()
		})
		if err == nil {
			t.Fatalf("%s: total message loss did not fail the job", sub)
		}
		if !errors.Is(err, caf.ErrRetriesExhausted) && !errors.Is(err, caf.ErrImageFailed) {
			t.Fatalf("%s: err = %v, want the typed exhaustion/failure chain", sub, err)
		}
		if !errors.Is(err, caf.ErrTimeout) && !errors.Is(err, caf.ErrImageFailed) {
			t.Fatalf("%s: ErrRetriesExhausted should be a timeout: %v", sub, err)
		}
	}
}

// TestImageCrashUnblocks: a planned image crash surfaces as
// caf.ErrImageFailed on every image — including the survivors parked in a
// barrier, which must unblock rather than hang (ULFM-style notification).
func TestImageCrashUnblocks(t *testing.T) {
	plan := &caf.FaultPlan{Seed: 1, Crashes: []faults.CrashPoint{{Image: 1, AtNS: 0}}}
	for _, sub := range chaosSubstrates {
		_, err := chaosRun(sub, 4, plan, func(im *caf.Image) error {
			for i := 0; i < 4; i++ {
				if err := im.World().Barrier(); err != nil {
					return err
				}
			}
			return nil
		})
		if !errors.Is(err, caf.ErrImageFailed) {
			t.Fatalf("%s: err = %v, want ErrImageFailed", sub, err)
		}
		var ie *caf.ImageError
		if errors.As(err, &ie) && ie.Image >= 0 && ie.Image != 1 {
			t.Fatalf("%s: blamed image %d, want 1", sub, ie.Image)
		}
	}
}

// TestProgrammaticPlanValidated: a malformed plan handed to caf.Config
// directly (not through cafrun/-faults, which parse-validates) is rejected
// up front with the typed ErrInvalid instead of booting — a zero-delay
// reorder rule would otherwise panic with a divide by zero mid-run, and
// out-of-range ranks would be silently ignored.
func TestProgrammaticPlanValidated(t *testing.T) {
	bad := []*caf.FaultPlan{
		{Seed: 1, Rules: []faults.Rule{{Kind: faults.KindReorder, Src: -1, Dst: -1, Prob: 1}}},
		{Seed: 1, Rules: []faults.Rule{{Kind: faults.KindDrop, Src: -1, Dst: 9, Prob: 1}}},
		{Seed: 1, Crashes: []faults.CrashPoint{{Image: 7, AtNS: 0}}},
	}
	for i, plan := range bad {
		_, err := chaosRun(caf.MPI, 2, plan, func(im *caf.Image) error {
			return im.World().Barrier()
		})
		if !errors.Is(err, caf.ErrInvalid) {
			t.Errorf("plan %d: err = %v, want ErrInvalid", i, err)
		}
	}
}

// TestRunContextCancel: a canceled context unblocks a wait that would
// otherwise deadlock, with the cause in the error chain.
func TestRunContextCancel(t *testing.T) {
	cause := errors.New("operator gave up")
	ctx, cancel := context.WithCancelCause(context.Background())
	cancel(cause)
	cfg := caf.Config{Substrate: caf.MPI, Platform: fabric.Platform("fusion")}
	err := caf.RunContext(ctx, 2, cfg, func(im *caf.Image) error {
		evs, err := im.NewEvents(im.World(), 1)
		if err != nil {
			return err
		}
		return evs.Wait(0) // never posted: only cancellation can end this
	})
	if err == nil {
		t.Fatal("canceled context did not stop a deadlocked wait")
	}
	if !errors.Is(err, cause) {
		t.Fatalf("err = %v, want chain containing the cancel cause", err)
	}
}

// TestRunContextBackgroundIsRun: RunContext with a background context is
// exactly Run.
func TestRunContextBackgroundIsRun(t *testing.T) {
	cfg := caf.Config{Substrate: caf.GASNet, Platform: fabric.Platform("fusion")}
	err := caf.RunContext(context.Background(), 4, cfg, func(im *caf.Image) error {
		return im.World().Barrier()
	})
	if err != nil {
		t.Fatal(err)
	}
}
