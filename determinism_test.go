package cafmpi_test

import (
	"testing"

	"cafmpi/caf"
	"cafmpi/internal/fabric"
	"cafmpi/internal/hpcc"
	"cafmpi/internal/obs"
)

// finalClocksRandomAccess runs the RandomAccess kernel at the
// BenchmarkPrimitiveRandomAccessKernel configuration and returns every
// image's final virtual clock in nanoseconds.
func finalClocksRandomAccess(t *testing.T) []int64 {
	t.Helper()
	clocks := make([]int64, 8)
	cfg := caf.Config{Substrate: caf.MPI, Platform: fabric.Platform("fusion")}
	err := caf.Run(8, cfg, func(im *caf.Image) error {
		if _, err := hpcc.RandomAccess(im, hpcc.RAConfig{TableBits: 8, UpdatesPerImage: 512, BatchSize: 128}); err != nil {
			return err
		}
		clocks[im.ID()] = im.Proc().Now()
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return clocks
}

// finalClocksEventPingPong runs the EventPingPong workload at a fixed
// iteration count and returns per-image final clocks.
func finalClocksEventPingPong(t *testing.T) []int64 {
	t.Helper()
	const iters = 200
	clocks := make([]int64, 2)
	cfg := caf.Config{Substrate: caf.MPI, Platform: fabric.Platform("fusion")}
	err := caf.Run(2, cfg, func(im *caf.Image) error {
		evs, err := im.NewEvents(im.World(), 2)
		if err != nil {
			return err
		}
		peer := 1 - im.ID()
		for i := 0; i < iters; i++ {
			if im.ID() == 0 {
				if err := evs.Notify(peer, 0); err != nil {
					return err
				}
				if err := evs.Wait(1); err != nil {
					return err
				}
			} else {
				if err := evs.Wait(0); err != nil {
					return err
				}
				if err := evs.Notify(peer, 1); err != nil {
					return err
				}
			}
		}
		clocks[im.ID()] = im.Proc().Now()
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return clocks
}

// TestVirtualTimeInvariance pins the simulated clocks of the two Primitive
// workloads against goldens captured on the seed fabric (commit 0052233,
// linear-scan matching) with the exact configurations of
// BenchmarkPrimitiveRandomAccessKernel and BenchmarkPrimitiveEventPingPong.
//
// Final clocks absorb MatchNS charges from idle progress passes whose
// count depends on OS-level wakeup coalescing, so they are not bit-stable
// under arbitrary schedulers; the seed fabric has the same property
// (measured at GOMAXPROCS=2: RandomAccess swings up to ~17%, EventPingPong
// a few hundred ns, with or without the race detector). Each workload is
// therefore held to its seed goldens within a band sized to that inherited
// jitter: tight for EventPingPong (near-lockstep, so only the occasional
// extra idle pass leaks in) and wide for RandomAccess (deep overlap of
// puts, notifies, and polls). A cost-model regression shifts clocks by
// whole LatencyNS/PutNS multiples and lands far outside either band. On
// the tier-1 configuration (default scheduler) the clocks reproduce the
// goldens exactly; an in-band mismatch is logged for inspection.
func TestVirtualTimeInvariance(t *testing.T) {
	const raTolerance = 0.25
	const ppTolerance = 0.002
	goldenRA := []int64{293512, 293512, 293512, 293862, 293862, 293862, 293512, 293512}
	goldenPP := []int64{1024198, 1022395}

	ra := finalClocksRandomAccess(t)
	pp := finalClocksEventPingPong(t)
	t.Logf("RandomAccess clocks: %v", ra)
	t.Logf("EventPingPong clocks: %v", pp)
	check := func(name string, got, golden []int64, tol float64) {
		exact := true
		for i := range got {
			lo := int64(float64(golden[i]) * (1 - tol))
			hi := int64(float64(golden[i]) * (1 + tol))
			if got[i] < lo || got[i] > hi {
				t.Errorf("%s image %d final clock %d ns outside [%d, %d] around seed golden %d ns",
					name, i, got[i], lo, hi, golden[i])
			}
			if got[i] != golden[i] {
				exact = false
			}
		}
		if !exact {
			t.Logf("%s clocks differ from seed goldens within tolerance (idle-poll schedule jitter)", name)
		}
	}
	check("RandomAccess", ra, goldenRA, raTolerance)
	check("EventPingPong", pp, goldenPP, ppTolerance)
}

// TestHistogramStability runs EventPingPong twice with observability on and
// requires per-op-class p50/p99 to be reproducible across the runs. The
// HDR bucketing (≤12.5% bucket width) absorbs the idle-poll schedule jitter
// the clocks inherit, so quantiles should agree within one bucket; the band
// here is 15% to cover a boundary-straddling sample.
func TestHistogramStability(t *testing.T) {
	run := func() map[string][2]int64 {
		const iters = 200
		cfg := caf.Config{Substrate: caf.MPI, Platform: fabric.Platform("fusion"), Diag: caf.Diag{Observe: true}}
		w, err := caf.RunWorld(2, cfg, func(im *caf.Image) error {
			evs, err := im.NewEvents(im.World(), 2)
			if err != nil {
				return err
			}
			peer := 1 - im.ID()
			for i := 0; i < iters; i++ {
				if im.ID() == 0 {
					if err := evs.Notify(peer, 0); err != nil {
						return err
					}
					if err := evs.Wait(1); err != nil {
						return err
					}
				} else {
					if err := evs.Wait(0); err != nil {
						return err
					}
					if err := evs.Notify(peer, 1); err != nil {
						return err
					}
				}
			}
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		out := make(map[string][2]int64)
		for _, ls := range obs.Enabled(w).Snapshot().Latency {
			out[ls.Class] = [2]int64{ls.P50, ls.P99}
		}
		return out
	}
	a, b := run(), run()
	if len(a) == 0 {
		t.Fatal("no latency classes recorded")
	}
	if len(a) != len(b) {
		t.Fatalf("runs recorded different class sets: %d vs %d", len(a), len(b))
	}
	const tol = 0.15
	for class, qa := range a {
		qb, ok := b[class]
		if !ok {
			t.Errorf("class %s missing from second run", class)
			continue
		}
		for i, name := range []string{"p50", "p99"} {
			x, y := float64(qa[i]), float64(qb[i])
			if x == 0 && y == 0 {
				continue
			}
			hi := x
			if y > hi {
				hi = y
			}
			if diff := x - y; diff < -tol*hi || diff > tol*hi {
				t.Errorf("%s %s unstable across runs: %d vs %d", class, name, qa[i], qb[i])
			}
		}
	}
}
