package caf_test

import (
	"fmt"
	"log"

	"cafmpi/caf"
	"cafmpi/internal/fabric"
)

// Example demonstrates the minimal CAF 2.0 program: a coarray, a one-sided
// write, an event doorbell, and a team reduction — on the paper's CAF-MPI
// runtime.
func Example() {
	cfg := caf.Config{Substrate: caf.MPI, Platform: fabric.Platform("fusion")}
	err := caf.Run(4, cfg, func(im *caf.Image) error {
		co, err := im.AllocCoarray(im.World(), 8)
		if err != nil {
			return err
		}
		evs, err := im.NewEvents(im.World(), 1)
		if err != nil {
			return err
		}
		right := (im.ID() + 1) % im.N()
		// One-sided write into the right neighbor, then ring its doorbell.
		if err := co.PutDeferred(right, 0, []byte{byte(im.ID())}); err != nil {
			return err
		}
		if err := evs.Notify(right, 0); err != nil {
			return err
		}
		if err := evs.Wait(0); err != nil {
			return err
		}
		left := (im.ID() - 1 + im.N()) % im.N()
		if int(co.Local()[0]) != left {
			return fmt.Errorf("image %d saw %d", im.ID(), co.Local()[0])
		}
		// Team reduction: sum of all image ids.
		sum := []int64{int64(im.ID())}
		if err := im.World().CoSumI64(sum); err != nil {
			return err
		}
		if im.ID() == 0 {
			fmt.Printf("sum of image ids: %d\n", sum[0])
		}
		return nil
	})
	if err != nil {
		log.Fatal(err)
	}
	// Output: sum of image ids: 6
}

// ExampleTeam_Split partitions the world into row teams and reduces within
// each — the CAF 2.0 first-class team feature.
func ExampleTeam_Split() {
	cfg := caf.Config{Substrate: caf.GASNet, Platform: fabric.Platform("edison")}
	err := caf.Run(6, cfg, func(im *caf.Image) error {
		row, err := im.World().Split(im.ID()%2, im.ID())
		if err != nil {
			return err
		}
		sum := []int64{int64(im.ID())}
		if err := row.CoSumI64(sum); err != nil {
			return err
		}
		if im.ID() <= 1 {
			fmt.Printf("row %d sum: %d\n", im.ID()%2, sum[0])
		}
		return im.World().Barrier()
	})
	if err != nil {
		log.Fatal(err)
	}
	// Unordered output:
	// row 0 sum: 6
	// row 1 sum: 9
}

// ExampleImage_Finish ships work to every image and waits for global
// completion with the finish construct.
func ExampleImage_Finish() {
	cfg := caf.Config{Substrate: caf.MPI, Platform: fabric.Platform("fusion")}
	err := caf.Run(4, cfg, func(im *caf.Image) error {
		const fnCount uint64 = 1
		counter := new(int64)
		if err := im.RegisterFunc(fnCount, func(*caf.Image, []byte) { *counter++ }); err != nil {
			return err
		}
		err := im.Finish(im.World(), func() error {
			for t := 0; t < im.N(); t++ {
				if err := im.Spawn(im.World(), t, fnCount, nil); err != nil {
					return err
				}
			}
			return nil
		})
		if err != nil {
			return err
		}
		if im.ID() == 2 {
			fmt.Printf("image %d executed %d shipped functions\n", im.ID(), *counter)
		}
		return nil
	})
	if err != nil {
		log.Fatal(err)
	}
	// Output: image 2 executed 4 shipped functions
}

// ExampleMPIEnv shows hybrid MPI+CAF: the same runtime serves coarray
// operations and direct MPI calls (the paper's interoperability goal).
func ExampleMPIEnv() {
	cfg := caf.Config{Substrate: caf.MPI, Platform: fabric.Platform("fusion")}
	err := caf.Run(4, cfg, func(im *caf.Image) error {
		env, err := caf.MPIEnv(im)
		if err != nil {
			return err
		}
		if im.ID() == 0 {
			fmt.Printf("MPI rank %d of %d shares the CAF runtime\n",
				env.CommWorld().Rank(), env.CommWorld().Size())
		}
		return im.World().Barrier()
	})
	if err != nil {
		log.Fatal(err)
	}
	// Output: MPI rank 0 of 4 shares the CAF runtime
}
