package caf

import (
	"fmt"
	"math/rand"
	"testing"
)

// TestStressMixedWorkload drives a randomized but reproducible mix of the
// whole API — coarray puts/gets (blocking, deferred, async), events,
// collectives, teams, and function shipping — and checks invariants after
// every phase. The same program runs on both substrates.
func TestStressMixedWorkload(t *testing.T) {
	const (
		images = 8
		phases = 12
		slots  = 4
	)
	forBoth(t, images, func(im *Image) error {
		w := im.World()
		rng := rand.New(rand.NewSource(12345)) // same stream on every image

		co, err := im.AllocCoarray(w, 256)
		if err != nil {
			return err
		}
		evs, err := im.NewEvents(w, slots)
		if err != nil {
			return err
		}
		const fnAdd uint64 = 99
		shippedSum := new(int64)
		if err := im.RegisterFunc(fnAdd, func(_ *Image, args []byte) {
			*shippedSum += int64(args[0])
		}); err != nil {
			return err
		}

		for phase := 0; phase < phases; phase++ {
			op := rng.Intn(5) // same op chosen on every image
			switch op {
			case 0:
				// Ring of deferred puts released by notify, consumed by wait.
				right := (im.ID() + 1) % im.N()
				val := byte(phase*16 + im.ID())
				if err := co.PutDeferred(right, phase%8, []byte{val}); err != nil {
					return err
				}
				if err := evs.Notify(right, phase%slots); err != nil {
					return err
				}
				if err := evs.Wait(phase % slots); err != nil {
					return err
				}
				left := (im.ID() - 1 + im.N()) % im.N()
				if co.Local()[phase%8] != byte(phase*16+left) {
					return fmt.Errorf("phase %d: ring put lost", phase)
				}
			case 1:
				// Allreduce invariant: sum of ranks.
				out := make([]int64, 1)
				if err := w.Allreduce(I64Bytes([]int64{int64(im.ID() + phase)}), I64Bytes(out), Int64, OpSum); err != nil {
					return err
				}
				want := int64(images*(images-1)/2 + images*phase)
				if out[0] != want {
					return fmt.Errorf("phase %d: allreduce %d != %d", phase, out[0], want)
				}
			case 2:
				// Split into two teams, reduce within, rejoin.
				sub, err := w.Split(im.ID()%2, im.ID())
				if err != nil {
					return err
				}
				out := make([]int64, 1)
				if err := sub.Allreduce(I64Bytes([]int64{1}), I64Bytes(out), Int64, OpSum); err != nil {
					return err
				}
				if out[0] != int64(sub.Size()) {
					return fmt.Errorf("phase %d: subteam count %d", phase, out[0])
				}
			case 3:
				// Finish over shipped increments: every image ships `phase`
				// to a rotating target.
				before := *shippedSum
				err := im.Finish(w, func() error {
					target := (im.ID() + phase) % im.N()
					return im.Spawn(w, target, fnAdd, []byte{byte(phase)})
				})
				if err != nil {
					return err
				}
				_ = before
				// Global conservation: total shipped value each such phase
				// is images*phase; checked at the end.
			case 4:
				// Async get with completion event + alltoall.
				peer := (im.ID() + im.N()/2) % im.N()
				into := make([]byte, 8)
				done := evs.Ref(phase % slots)
				if err := co.GetAsync(peer, 0, into, AsyncOpts{DstDone: &done}); err != nil {
					return err
				}
				if err := evs.Wait(phase % slots); err != nil {
					return err
				}
				send := make([]int32, im.N())
				for d := range send {
					send[d] = int32(im.ID()*100 + d + phase)
				}
				recv := make([]int32, im.N())
				if err := w.Alltoall(I32Bytes(send), I32Bytes(recv)); err != nil {
					return err
				}
				for s := range recv {
					if recv[s] != int32(s*100+im.ID()+phase) {
						return fmt.Errorf("phase %d: alltoall block %d = %d", phase, s, recv[s])
					}
				}
			}
		}

		// Conservation check on function shipping across all phases.
		sum := make([]int64, 1)
		if err := w.Allreduce(I64Bytes([]int64{*shippedSum}), I64Bytes(sum), Int64, OpSum); err != nil {
			return err
		}
		var want int64
		rng2 := rand.New(rand.NewSource(12345))
		for phase := 0; phase < phases; phase++ {
			if rng2.Intn(5) == 3 {
				want += int64(images * phase)
			}
		}
		if sum[0] != want {
			return fmt.Errorf("shipped-value conservation broken: %d != %d", sum[0], want)
		}
		return w.Barrier()
	})
}
