package caf

import (
	"bytes"
	"fmt"
	"testing"
	"testing/quick"
	"time"

	"cafmpi/internal/fabric"
	"cafmpi/internal/mpi"
	"cafmpi/internal/rtmpi"
	"cafmpi/internal/sim"
	"cafmpi/internal/trace"
)

// testPlatform is a small, fast parameter set for unit tests.
func testPlatform() *fabric.Params {
	p := fabric.Fusion // copy
	p.Name = "test"
	p.GASNet.SRQ.Enabled = false
	return &p
}

// forBoth runs the test body once per substrate.
func forBoth(t *testing.T, n int, fn func(*Image) error) {
	t.Helper()
	for _, sub := range []Substrate{MPI, GASNet} {
		sub := sub
		t.Run(string(sub), func(t *testing.T) {
			cfg := Config{Substrate: sub, Platform: testPlatform(), Diag: Diag{Trace: true}}
			wrapped := func(im *Image) error {
				err := fn(im)
				if err != nil {
					t.Logf("image %d: %v", im.ID(), err)
				}
				return err
			}
			if err := Run(n, cfg, wrapped); err != nil {
				t.Fatal(err)
			}
		})
	}
}

func TestCoarrayPutGetRoundTrip(t *testing.T) {
	forBoth(t, 4, func(im *Image) error {
		co, err := im.AllocCoarray(im.World(), 128)
		if err != nil {
			return err
		}
		next := (im.ID() + 1) % im.N()
		msg := []byte{byte(im.ID()), 0xAB}
		if err := co.Put(next, 7, msg); err != nil {
			return err
		}
		if err := im.World().Barrier(); err != nil {
			return err
		}
		prev := (im.ID() - 1 + im.N()) % im.N()
		if co.Local()[7] != byte(prev) || co.Local()[8] != 0xAB {
			return fmt.Errorf("image %d local = %v, want from %d", im.ID(), co.Local()[7:9], prev)
		}
		got := make([]byte, 2)
		if err := co.Get(next, 7, got); err != nil {
			return err
		}
		if got[0] != byte(im.ID()) {
			return fmt.Errorf("get returned %v", got)
		}
		if err := im.World().Barrier(); err != nil {
			return err
		}
		return co.Free()
	})
}

func TestCoarrayValidation(t *testing.T) {
	forBoth(t, 2, func(im *Image) error {
		co, err := im.AllocCoarray(im.World(), 16)
		if err != nil {
			return err
		}
		if err := co.Put(1, 14, []byte{1, 2, 3}); err == nil {
			return fmt.Errorf("out-of-range put accepted")
		}
		if err := co.Put(5, 0, []byte{1}); err == nil {
			return fmt.Errorf("bad target accepted")
		}
		if err := co.Get(0, -1, make([]byte, 2)); err == nil {
			return fmt.Errorf("negative offset accepted")
		}
		if err := co.Free(); err != nil {
			return err
		}
		if err := co.Put(0, 0, []byte{1}); err == nil {
			return fmt.Errorf("put on freed coarray accepted")
		}
		return nil
	})
}

func TestEventsNotifyWait(t *testing.T) {
	forBoth(t, 2, func(im *Image) error {
		evs, err := im.NewEvents(im.World(), 2)
		if err != nil {
			return err
		}
		peer := 1 - im.ID()
		if im.ID() == 0 {
			if err := evs.Notify(peer, 0); err != nil {
				return err
			}
			return evs.Wait(1)
		}
		if err := evs.Wait(0); err != nil {
			return err
		}
		return evs.Notify(peer, 1)
	})
}

func TestEventsAreCountingSemaphores(t *testing.T) {
	forBoth(t, 2, func(im *Image) error {
		evs, err := im.NewEvents(im.World(), 1)
		if err != nil {
			return err
		}
		const k = 5
		if im.ID() == 0 {
			for i := 0; i < k; i++ {
				if err = evs.Notify(1, 0); err != nil {
					return err
				}
			}
			return im.World().Barrier()
		}
		for i := 0; i < k; i++ {
			if err = evs.Wait(0); err != nil {
				return err
			}
		}
		ok, err := evs.TryWait(0)
		if err != nil {
			return err
		}
		if ok {
			return fmt.Errorf("TryWait succeeded on drained event")
		}
		return im.World().Barrier()
	})
}

// TestNotifyReleasesPriorWrites is the RandomAccess communication pattern
// (§3.4): deferred bulk writes followed by a notify; the waiter must see
// the data once the event posts.
func TestNotifyReleasesPriorWrites(t *testing.T) {
	forBoth(t, 2, func(im *Image) error {
		co, err := im.AllocCoarray(im.World(), 1<<14)
		if err != nil {
			return err
		}
		evs, err := im.NewEvents(im.World(), 1)
		if err != nil {
			return err
		}
		if im.ID() == 0 {
			payload := bytes.Repeat([]byte{0x5A}, 1<<14)
			if err := co.PutDeferred(1, 0, payload); err != nil {
				return err
			}
			if err := evs.Notify(1, 0); err != nil {
				return err
			}
			return im.World().Barrier()
		}
		if err := evs.Wait(0); err != nil {
			return err
		}
		for i, b := range co.Local() {
			if b != 0x5A {
				return fmt.Errorf("byte %d = %#x before data arrived: notify did not release writes", i, b)
			}
		}
		return im.World().Barrier()
	})
}

func TestCofenceCompletesDeferredGets(t *testing.T) {
	forBoth(t, 2, func(im *Image) error {
		co, err := im.AllocCoarray(im.World(), 64)
		if err != nil {
			return err
		}
		copy(co.Local(), bytes.Repeat([]byte{byte(10 + im.ID())}, 64))
		if err := im.World().Barrier(); err != nil {
			return err
		}
		peer := 1 - im.ID()
		into := make([]byte, 64)
		if err := co.GetDeferred(peer, 0, into); err != nil {
			return err
		}
		if err := im.Cofence(); err != nil {
			return err
		}
		if into[0] != byte(10+peer) || into[63] != byte(10+peer) {
			return fmt.Errorf("deferred get data wrong after cofence: %v", into[:2])
		}
		return im.World().Barrier()
	})
}

func TestPutAsyncSourceEvent(t *testing.T) {
	forBoth(t, 2, func(im *Image) error {
		co, err := im.AllocCoarray(im.World(), 256)
		if err != nil {
			return err
		}
		evs, err := im.NewEvents(im.World(), 1)
		if err != nil {
			return err
		}
		if im.ID() == 0 {
			src := evs.Ref(0)
			if err := co.PutAsync(1, 0, []byte("async-data"), AsyncOpts{SrcDone: &src}); err != nil {
				return err
			}
			if err := evs.Wait(0); err != nil { // source reusable
				return err
			}
			if err := evs.Notify(1, 0); err != nil { // release + tell peer
				return err
			}
		} else {
			if err := evs.Wait(0); err != nil {
				return err
			}
			if string(co.Local()[:10]) != "async-data" {
				return fmt.Errorf("data not delivered: %q", co.Local()[:10])
			}
		}
		return im.World().Barrier()
	})
}

func TestPutAsyncDestinationEvent(t *testing.T) {
	// §3.3 rule 4: the destination event posts on the target once the data
	// is in place — via an AM-shipped copy under CAF-MPI.
	forBoth(t, 2, func(im *Image) error {
		co, err := im.AllocCoarray(im.World(), 256)
		if err != nil {
			return err
		}
		evs, err := im.NewEvents(im.World(), 1)
		if err != nil {
			return err
		}
		if im.ID() == 0 {
			dst := evs.RefOn(1, 0)
			if err := co.PutAsync(1, 16, []byte("rule4!"), AsyncOpts{DstDone: &dst}); err != nil {
				return err
			}
		} else {
			if err := evs.Wait(0); err != nil {
				return err
			}
			if string(co.Local()[16:22]) != "rule4!" {
				return fmt.Errorf("destination event posted before data: %q", co.Local()[16:22])
			}
		}
		return im.World().Barrier()
	})
}

func TestGetAsyncEvent(t *testing.T) {
	forBoth(t, 2, func(im *Image) error {
		co, err := im.AllocCoarray(im.World(), 64)
		if err != nil {
			return err
		}
		copy(co.Local(), bytes.Repeat([]byte{byte(0xC0 | im.ID())}, 64))
		if err = im.World().Barrier(); err != nil {
			return err
		}
		evs, err := im.NewEvents(im.World(), 1)
		if err != nil {
			return err
		}
		peer := 1 - im.ID()
		into := make([]byte, 64)
		done := evs.Ref(0)
		if err := co.GetAsync(peer, 0, into, AsyncOpts{DstDone: &done}); err != nil {
			return err
		}
		if err := evs.Wait(0); err != nil {
			return err
		}
		if into[0] != byte(0xC0|peer) {
			return fmt.Errorf("async get data %#x, want %#x", into[0], 0xC0|peer)
		}
		return im.World().Barrier()
	})
}

func TestPredicateEventGatesCopy(t *testing.T) {
	forBoth(t, 2, func(im *Image) error {
		co, err := im.AllocCoarray(im.World(), 64)
		if err != nil {
			return err
		}
		evs, err := im.NewEvents(im.World(), 2)
		if err != nil {
			return err
		}
		if im.ID() == 0 {
			// The predicate is posted by image 1; the copy must wait for it.
			pred := evs.Ref(0)
			dst := evs.RefOn(1, 1)
			if err := co.PutAsync(1, 0, []byte{0x77}, AsyncOpts{Pred: &pred, DstDone: &dst}); err != nil {
				return err
			}
		} else {
			copy(co.Local(), []byte{0x11})
			if err := evs.Notify(0, 0); err != nil { // release the predicate
				return err
			}
			if err := evs.Wait(1); err != nil {
				return err
			}
			if co.Local()[0] != 0x77 {
				return fmt.Errorf("copy did not land after predicate: %#x", co.Local()[0])
			}
		}
		return im.World().Barrier()
	})
}

func TestCopyAsyncRemoteToRemote(t *testing.T) {
	forBoth(t, 3, func(im *Image) error {
		co, err := im.AllocCoarray(im.World(), 32)
		if err != nil {
			return err
		}
		copy(co.Local(), bytes.Repeat([]byte{byte(im.ID() + 1)}, 32))
		if err = im.World().Barrier(); err != nil {
			return err
		}
		evs, err := im.NewEvents(im.World(), 1)
		if err != nil {
			return err
		}
		if im.ID() == 0 {
			// Copy image 1's data into image 2, from image 0.
			dst := evs.RefOn(2, 0)
			if err := im.CopyAsync(co, 2, 0, co, 1, 0, 16, AsyncOpts{DstDone: &dst}); err != nil {
				return err
			}
		}
		if im.ID() == 2 {
			if err := evs.Wait(0); err != nil {
				return err
			}
			if co.Local()[0] != 2 || co.Local()[15] != 2 {
				return fmt.Errorf("remote-to-remote copy delivered %v", co.Local()[:16])
			}
			if co.Local()[16] != 3 {
				return fmt.Errorf("copy overwrote beyond its range")
			}
		}
		return im.World().Barrier()
	})
}

func TestTeamCollectives(t *testing.T) {
	forBoth(t, 6, func(im *Image) error {
		w := im.World()
		// Allreduce.
		in := []int64{int64(im.ID() + 1)}
		out := make([]int64, 1)
		if err := w.Allreduce(I64Bytes(in), I64Bytes(out), Int64, OpSum); err != nil {
			return err
		}
		if out[0] != 21 {
			return fmt.Errorf("allreduce got %d, want 21", out[0])
		}
		// Bcast from a non-zero root.
		buf := make([]float64, 3)
		if im.ID() == 4 {
			buf = []float64{1.5, 2.5, 3.5}
		}
		if err := w.Bcast(F64Bytes(buf), 4); err != nil {
			return err
		}
		if buf[2] != 3.5 {
			return fmt.Errorf("bcast got %v", buf)
		}
		// Allgather.
		all := make([]int64, im.N())
		if err := w.Allgather(I64Bytes([]int64{int64(im.ID() * 3)}), I64Bytes(all)); err != nil {
			return err
		}
		for r := range all {
			if all[r] != int64(r*3) {
				return fmt.Errorf("allgather[%d] = %d", r, all[r])
			}
		}
		// Reduce to a root.
		rout := make([]int64, 1)
		if err := w.Reduce(I64Bytes([]int64{2}), I64Bytes(rout), Int64, OpProd, 1); err != nil {
			return err
		}
		if im.ID() == 1 && rout[0] != 64 {
			return fmt.Errorf("reduce prod got %d, want 64", rout[0])
		}
		return nil
	})
}

func TestTeamAlltoall(t *testing.T) {
	for _, n := range []int{2, 3, 5, 8} {
		n := n
		forBoth(t, n, func(im *Image) error {
			send := make([]int32, n)
			for d := range send {
				send[d] = int32(im.ID()*100 + d)
			}
			recv := make([]int32, n)
			if err := im.World().Alltoall(I32Bytes(send), I32Bytes(recv)); err != nil {
				return err
			}
			for s := range recv {
				if recv[s] != int32(s*100+im.ID()) {
					return fmt.Errorf("n=%d image %d: block from %d = %d, want %d", n, im.ID(), s, recv[s], s*100+im.ID())
				}
			}
			// A second alltoall immediately after (exercises scratch reuse
			// and the generation keying of the hand-crafted path).
			if err := im.World().Alltoall(I32Bytes(recv), I32Bytes(send)); err != nil {
				return err
			}
			for d := range send {
				if send[d] != int32(im.ID()*100+d) {
					return fmt.Errorf("double alltoall not an involution at %d: %d", d, send[d])
				}
			}
			return nil
		})
	}
}

func TestTeamSplitAndSubteamCollectives(t *testing.T) {
	forBoth(t, 6, func(im *Image) error {
		sub, err := im.World().Split(im.ID()%2, im.ID())
		if err != nil {
			return err
		}
		if sub.Size() != 3 {
			return fmt.Errorf("split size %d", sub.Size())
		}
		out := make([]int64, 1)
		if err = sub.Allreduce(I64Bytes([]int64{int64(im.ID())}), I64Bytes(out), Int64, OpSum); err != nil {
			return err
		}
		want := int64(0 + 2 + 4)
		if im.ID()%2 == 1 {
			want = 1 + 3 + 5
		}
		if out[0] != want {
			return fmt.Errorf("subteam allreduce got %d, want %d", out[0], want)
		}
		// Coarray over the subteam.
		co, err := im.AllocCoarray(sub, 8)
		if err != nil {
			return err
		}
		if sub.Rank() == 0 {
			if err := co.Put(sub.Size()-1, 0, []byte{0xEE}); err != nil {
				return err
			}
		}
		if err := sub.Barrier(); err != nil {
			return err
		}
		if sub.Rank() == sub.Size()-1 && co.Local()[0] != 0xEE {
			return fmt.Errorf("subteam coarray put missing")
		}
		return im.World().Barrier()
	})
}

func TestSplitUndefinedColor(t *testing.T) {
	forBoth(t, 4, func(im *Image) error {
		color := 7
		if im.ID() == 2 {
			color = -1
		}
		sub, err := im.World().Split(color, 0)
		if err != nil {
			return err
		}
		if im.ID() == 2 {
			if sub != nil {
				return fmt.Errorf("negative color produced a team")
			}
			return im.World().Barrier()
		}
		if sub.Size() != 3 {
			return fmt.Errorf("split size %d, want 3", sub.Size())
		}
		if err := sub.Barrier(); err != nil {
			return err
		}
		return im.World().Barrier()
	})
}

func TestFinishWithoutSpawnsIsFastPath(t *testing.T) {
	forBoth(t, 4, func(im *Image) error {
		co, err := im.AllocCoarray(im.World(), 64)
		if err != nil {
			return err
		}
		err = im.Finish(im.World(), func() error {
			return co.PutDeferred((im.ID()+1)%im.N(), 0, []byte{byte(im.ID() + 1)})
		})
		if err != nil {
			return err
		}
		prev := (im.ID() - 1 + im.N()) % im.N()
		if co.Local()[0] != byte(prev+1) {
			return fmt.Errorf("finish did not complete deferred put: %d", co.Local()[0])
		}
		return nil
	})
}

const (
	fnAccumulate uint64 = iota + 1
	fnChain
)

func TestFunctionShippingAndFinish(t *testing.T) {
	forBoth(t, 4, func(im *Image) error {
		counter := new(int64)
		if err := im.RegisterFunc(fnAccumulate, func(target *Image, args []byte) {
			*counter += int64(args[0])
		}); err != nil {
			return err
		}
		err := im.Finish(im.World(), func() error {
			// Everyone ships one increment to every image (incl. self).
			for t := 0; t < im.N(); t++ {
				if err := im.Spawn(im.World(), t, fnAccumulate, []byte{1}); err != nil {
					return err
				}
			}
			return nil
		})
		if err != nil {
			return err
		}
		if *counter != int64(im.N()) {
			return fmt.Errorf("image %d executed %d spawns, want %d", im.ID(), *counter, im.N())
		}
		return nil
	})
}

func TestNestedSpawnChainTermination(t *testing.T) {
	// A spawn chain hopping across images: finish must not terminate until
	// the whole chain has run (the scenario Yang's repeated reductions
	// exist for).
	forBoth(t, 4, func(im *Image) error {
		hops := new(int64)
		if err := im.RegisterFunc(fnChain, func(target *Image, args []byte) {
			*hops++
			remaining := int(args[0])
			if remaining > 0 {
				next := (target.ID() + 1) % target.N()
				if err := target.Spawn(target.World(), next, fnChain, []byte{byte(remaining - 1)}); err != nil {
					panic(err)
				}
			}
		}); err != nil {
			return err
		}
		err := im.Finish(im.World(), func() error {
			if im.ID() == 0 {
				return im.Spawn(im.World(), 1, fnChain, []byte{9}) // 10-hop chain
			}
			return nil
		})
		if err != nil {
			return err
		}
		// After finish, sum of hops across images must be exactly 10.
		sum := make([]int64, 1)
		if err := im.World().Allreduce(I64Bytes([]int64{*hops}), I64Bytes(sum), Int64, OpSum); err != nil {
			return err
		}
		if sum[0] != 10 {
			return fmt.Errorf("chain executed %d hops before finish returned, want 10", sum[0])
		}
		return nil
	})
}

func TestTraceCategoriesPopulated(t *testing.T) {
	forBoth(t, 2, func(im *Image) error {
		co, err := im.AllocCoarray(im.World(), 32)
		if err != nil {
			return err
		}
		evs, err := im.NewEvents(im.World(), 1)
		if err != nil {
			return err
		}
		peer := 1 - im.ID()
		if err := co.Put(peer, 0, []byte{1}); err != nil {
			return err
		}
		if err := evs.Notify(peer, 0); err != nil {
			return err
		}
		if err := evs.Wait(0); err != nil {
			return err
		}
		tr := im.Tracer()
		for _, c := range []trace.Category{trace.CoarrayWrite, trace.EventNotify, trace.EventWait} {
			if tr.Count(c) == 0 {
				return fmt.Errorf("category %v not traced", c)
			}
		}
		return im.World().Barrier()
	})
}

// TestNotifyCostScaling verifies the paper's Figure 4 mechanism: after bulk
// puts, event_notify under CAF-MPI pays a per-rank FlushAll scan (linear in
// P), while CAF-GASNet's NBI sync does not scale with P.
func TestNotifyCostScaling(t *testing.T) {
	notifyCost := func(sub Substrate, n int) int64 {
		var dt int64
		cfg := Config{Substrate: sub, Platform: testPlatform()}
		if err := Run(n, cfg, func(im *Image) error {
			co, err := im.AllocCoarray(im.World(), 64)
			if err != nil {
				return err
			}
			evs, err := im.NewEvents(im.World(), 1)
			if err != nil {
				return err
			}
			if im.ID() == 0 {
				if err := co.PutDeferred(1, 0, []byte{1}); err != nil {
					return err
				}
				t0 := im.Proc().Now()
				if err := evs.Notify(1, 0); err != nil {
					return err
				}
				dt = im.Proc().Now() - t0
			}
			if im.ID() == 1 {
				if err := evs.Wait(0); err != nil {
					return err
				}
			}
			return im.World().Barrier()
		}); err != nil {
			t.Fatal(err)
		}
		return dt
	}
	mpiGrowth := notifyCost(MPI, 128) - notifyCost(MPI, 8)
	gasnetGrowth := notifyCost(GASNet, 128) - notifyCost(GASNet, 8)
	if mpiGrowth <= 0 {
		t.Errorf("CAF-MPI notify cost did not grow with P (delta %d ns); FlushAll scan missing", mpiGrowth)
	}
	if gasnetGrowth != 0 {
		t.Errorf("CAF-GASNet notify cost grew with P (delta %d ns); NBI sync should be O(1)", gasnetGrowth)
	}
}

func TestMPIInterop(t *testing.T) {
	// Hybrid MPI+CAF on the shared runtime: a coarray write and a direct
	// MPI allreduce in one program (the paper's headline use case).
	cfg := Config{Substrate: MPI, Platform: testPlatform()}
	if err := Run(4, cfg, func(im *Image) error {
		env, err := MPIEnv(im)
		if err != nil {
			return err
		}
		co, err := im.AllocCoarray(im.World(), 16)
		if err != nil {
			return err
		}
		if err := co.Put((im.ID()+1)%im.N(), 0, []byte{byte(im.ID())}); err != nil {
			return err
		}
		out := make([]int64, 1)
		if err := env.CommWorld().Allreduce(mpi.I64Bytes([]int64{1}), mpi.I64Bytes(out), mpi.Int64, mpi.OpSum); err != nil {
			return err
		}
		if out[0] != 4 {
			return fmt.Errorf("MPI allreduce through CAF runtime got %d", out[0])
		}
		return im.World().Barrier()
	}); err != nil {
		t.Fatal(err)
	}

	// Under CAF-GASNet there is no shared MPI instance.
	cfg = Config{Substrate: GASNet, Platform: testPlatform()}
	if err := Run(2, cfg, func(im *Image) error {
		if _, err := MPIEnv(im); err == nil {
			return fmt.Errorf("MPIEnv succeeded on the GASNet substrate")
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
}

// TestFigure2Deadlock reproduces the paper's Figure 2: image 0 performs a
// blocking coarray write while every image enters an MPI barrier of a
// second, independent MPI runtime. When the CAF implementation needs the
// target to make progress to complete the write (AM-mediated writes), the
// program deadlocks; CAF-MPI's one-sided write completes regardless.
func TestFigure2Deadlock(t *testing.T) {
	scenario := func(sub Substrate, amWrite bool) error {
		w := sim.NewWorld(2)
		return w.RunTimeout(2*time.Second, func(p *sim.Proc) error {
			cfg := Config{Substrate: sub, Platform: testPlatform()}
			cfg.GASNetOptions.AMWrite = amWrite
			im, err := Boot(p, cfg)
			if err != nil {
				return err
			}
			co, err := im.AllocCoarray(im.World(), 1<<16)
			if err != nil {
				return err
			}
			// The application's own MPI library (a second runtime under
			// CAF-GASNet; the same instance under CAF-MPI).
			var comm *mpi.Comm
			if env, err := MPIEnv(im); err == nil {
				comm = env.CommWorld()
			} else {
				net := fabric.AttachNet(p.World(), testPlatform())
				comm = mpi.Init(p, net).CommWorld()
			}
			if im.ID() == 0 {
				if err := co.Put(1, 0, bytes.Repeat([]byte{1}, 1<<16)); err != nil {
					return err
				}
			}
			return comm.Barrier() // Figure 2 line 11
		})
	}
	if err := scenario(GASNet, true); err != sim.ErrTimeout {
		t.Errorf("AM-write CAF-GASNet under an MPI barrier should deadlock; got %v", err)
	}
	if err := scenario(MPI, false); err != nil {
		t.Errorf("CAF-MPI must complete the Figure 2 program; got %v", err)
	}
	if err := scenario(GASNet, false); err != nil {
		t.Errorf("RDMA-write CAF-GASNet should also complete; got %v", err)
	}
}

// Property: coarray put/get round trips arbitrary payloads at arbitrary
// offsets on both substrates.
func TestCoarrayRoundTripProperty(t *testing.T) {
	const size = 512
	for _, sub := range []Substrate{MPI, GASNet} {
		sub := sub
		t.Run(string(sub), func(t *testing.T) {
			f := func(data []byte, off uint16) bool {
				if len(data) == 0 || len(data) > size {
					return true
				}
				o := int(off) % (size - len(data) + 1)
				ok := true
				cfg := Config{Substrate: sub, Platform: testPlatform()}
				err := Run(2, cfg, func(im *Image) error {
					co, err := im.AllocCoarray(im.World(), size)
					if err != nil {
						return err
					}
					if im.ID() == 0 {
						if err := co.Put(1, o, data); err != nil {
							return err
						}
						back := make([]byte, len(data))
						if err := co.Get(1, o, back); err != nil {
							return err
						}
						ok = bytes.Equal(back, data)
					}
					return im.World().Barrier()
				})
				return err == nil && ok
			}
			if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// Property: team allreduce(SUM) matches the serial fold on both substrates
// (exercising MPI's native collectives and the hand-crafted AM tree).
func TestAllreduceMatchesFoldProperty(t *testing.T) {
	f := func(vals []int32, nRaw uint8, gasnet bool) bool {
		n := int(nRaw)%5 + 2
		if len(vals) < n {
			return true
		}
		var want int64
		for r := 0; r < n; r++ {
			want += int64(vals[r])
		}
		sub := MPI
		if gasnet {
			sub = GASNet
		}
		ok := true
		err := Run(n, Config{Substrate: sub, Platform: testPlatform()}, func(im *Image) error {
			out := make([]int64, 1)
			if err := im.World().Allreduce(I64Bytes([]int64{int64(vals[im.ID()])}), I64Bytes(out), Int64, OpSum); err != nil {
				return err
			}
			if out[0] != want {
				ok = false
			}
			return nil
		})
		return err == nil && ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestAsyncCollectives(t *testing.T) {
	forBoth(t, 6, func(im *Image) error {
		evs, err := im.NewEvents(im.World(), 2)
		if err != nil {
			return err
		}
		in := []int64{int64(im.ID() + 1)}
		out := make([]int64, 1)
		dataDone, opDone := evs.Ref(0), evs.Ref(1)
		if err := im.World().AllreduceAsync(I64Bytes(in), I64Bytes(out), Int64, OpSum, &dataDone, &opDone); err != nil {
			return err
		}
		if err := evs.Wait(0); err != nil { // result readable
			return err
		}
		if err := evs.Wait(1); err != nil { // input reusable
			return err
		}
		if out[0] != 21 {
			return fmt.Errorf("async allreduce got %d, want 21", out[0])
		}
		// Async broadcast from rank 2.
		buf := make([]float64, 2)
		if im.ID() == 2 {
			buf[0], buf[1] = 2.5, -1.5
		}
		done := evs.Ref(0)
		if err := im.World().BcastAsync(F64Bytes(buf), 2, &done); err != nil {
			return err
		}
		if err := evs.Wait(0); err != nil {
			return err
		}
		if buf[0] != 2.5 || buf[1] != -1.5 {
			return fmt.Errorf("async bcast got %v", buf)
		}
		return im.World().Barrier()
	})
}

// TestAsyncCollectiveOverlap verifies the CAF-MPI mapping to MPI_Iallreduce
// overlaps a straggler's computation with the collective: the other images
// progress the reduction tree while the late image computes, so its
// post-compute residual is far smaller than a full blocking allreduce.
// (With *every* image computing simultaneously there is little to overlap:
// nonblocking MPI collectives progress only when tested — the well-known
// asynchronous-progress caveat the paper's §5 AM discussion circles.)
func TestAsyncCollectiveOverlap(t *testing.T) {
	measure := func(async bool) (total float64) {
		cfg := Config{Substrate: MPI, Platform: testPlatform()}
		if err := Run(16, cfg, func(im *Image) error {
			evs, err := im.NewEvents(im.World(), 1)
			if err != nil {
				return err
			}
			in := []int64{1}
			out := make([]int64, 1)
			if err := im.World().Barrier(); err != nil {
				return err
			}
			// Image 5 is a leaf of the reduction tree and the straggler:
			// under the async form its contribution is injected *before*
			// its computation, so the tree completes while it computes.
			const straggler = 5
			const compute = 200_000 // 200us of local work on the straggler
			t0 := im.Now()
			if async {
				ev := evs.Ref(0)
				if err := im.World().AllreduceAsync(I64Bytes(in), I64Bytes(out), Int64, OpSum, &ev, nil); err != nil {
					return err
				}
				if im.ID() == straggler {
					im.Proc().Advance(compute)
				}
				if err := evs.Wait(0); err != nil {
					return err
				}
			} else {
				if im.ID() == straggler {
					im.Proc().Advance(compute)
				}
				if err := im.World().Allreduce(I64Bytes(in), I64Bytes(out), Int64, OpSum); err != nil {
					return err
				}
			}
			if out[0] != 16 {
				return fmt.Errorf("allreduce got %d, want 16", out[0])
			}
			if im.ID() == straggler {
				total = im.Now() - t0
			}
			return im.World().Barrier()
		}); err != nil {
			t.Fatal(err)
		}
		return total
	}
	asyncTotal := measure(true)
	syncTotal := measure(false)
	const compute = 200e-6
	syncResidual := syncTotal - compute
	asyncResidual := asyncTotal - compute
	if syncResidual <= 0 {
		t.Fatalf("sync residual not positive (%.2f us total)", syncTotal*1e6)
	}
	// The peers drove the reduction while image 0 computed: the async
	// residual must be a small fraction of the blocking one.
	if asyncResidual > 0.5*syncResidual {
		t.Errorf("async residual %.2f us should be well under the blocking %.2f us",
			asyncResidual*1e6, syncResidual*1e6)
	}
}

func TestScopedCofence(t *testing.T) {
	forBoth(t, 2, func(im *Image) error {
		co, err := im.AllocCoarray(im.World(), 64)
		if err != nil {
			return err
		}
		copy(co.Local(), bytes.Repeat([]byte{byte(im.ID() + 1)}, 64))
		if err := im.World().Barrier(); err != nil {
			return err
		}
		peer := 1 - im.ID()
		into := make([]byte, 4)
		if err := co.GetDeferred(peer, 0, into); err != nil {
			return err
		}
		// A puts-only cofence need not complete the get on MPI (GASNet's
		// NBI machinery fences both); a gets cofence must.
		if err := im.CofenceScoped(CofenceOpts{Gets: true}); err != nil {
			return err
		}
		if into[0] != byte(peer+1) {
			return fmt.Errorf("get not complete after gets-cofence: %d", into[0])
		}
		if err := co.PutDeferred(peer, 32, []byte{0xEE}); err != nil {
			return err
		}
		if err := im.CofenceScoped(CofenceOpts{Puts: true}); err != nil {
			return err
		}
		return im.World().Barrier()
	})
}

func TestNestedFinish(t *testing.T) {
	forBoth(t, 4, func(im *Image) error {
		const fnTick uint64 = 77
		ticks := new(int64)
		if err := im.RegisterFunc(fnTick, func(*Image, []byte) { *ticks++ }); err != nil {
			return err
		}
		outer := im.Finish(im.World(), func() error {
			if err := im.Spawn(im.World(), (im.ID()+1)%im.N(), fnTick, nil); err != nil {
				return err
			}
			// Inner finish: its spawns are complete when it returns.
			if err := im.Finish(im.World(), func() error {
				return im.Spawn(im.World(), (im.ID()+2)%im.N(), fnTick, nil)
			}); err != nil {
				return err
			}
			return nil
		})
		if outer != nil {
			return outer
		}
		sum := make([]int64, 1)
		if err := im.World().Allreduce(I64Bytes([]int64{*ticks}), I64Bytes(sum), Int64, OpSum); err != nil {
			return err
		}
		if sum[0] != int64(2*im.N()) {
			return fmt.Errorf("nested finish executed %d ticks, want %d", sum[0], 2*im.N())
		}
		return nil
	})
}

func TestSpawnPanicSurfaces(t *testing.T) {
	cfg := Config{Substrate: MPI, Platform: testPlatform()}
	err := Run(2, cfg, func(im *Image) error {
		const fnBoom uint64 = 13
		if err := im.RegisterFunc(fnBoom, func(*Image, []byte) { panic("shipped bomb") }); err != nil {
			return err
		}
		if im.ID() == 0 {
			if err := im.Spawn(im.World(), 1, fnBoom, nil); err != nil {
				return err
			}
			return nil
		}
		im.Poll() // may or may not have arrived yet
		for {
			im.Poll() // the bomb detonates inside a poll
		}
	})
	pe, ok := err.(*sim.PanicError)
	if !ok || pe.Image != 1 {
		t.Fatalf("want image-1 panic from shipped function, got %v", err)
	}
}

func TestMismatchedCollectiveSizesError(t *testing.T) {
	forBoth(t, 2, func(im *Image) error {
		// All images agree the buffer is invalid -> local error everywhere,
		// no deadlock.
		in := make([]byte, 7)
		out := make([]byte, 7)
		if err := im.World().Allreduce(in, out, Int64, OpSum); err == nil {
			return fmt.Errorf("non-multiple reduce size accepted")
		}
		return im.World().Barrier()
	})
}

func TestEventValidation(t *testing.T) {
	forBoth(t, 2, func(im *Image) error {
		evs, err := im.NewEvents(im.World(), 2)
		if err != nil {
			return err
		}
		if err := evs.Wait(5); err == nil {
			return fmt.Errorf("bad slot accepted")
		}
		if err := evs.Notify(9, 0); err == nil {
			return fmt.Errorf("bad target accepted")
		}
		if _, err := evs.TryWait(-1); err == nil {
			return fmt.Errorf("negative slot accepted")
		}
		if _, err := im.NewEvents(im.World(), 0); err == nil {
			return fmt.Errorf("zero-slot events accepted")
		}
		return im.World().Barrier()
	})
}

func TestCoIntrinsics(t *testing.T) {
	forBoth(t, 4, func(im *Image) error {
		w := im.World()
		f := []float64{float64(im.ID()), -float64(im.ID())}
		if err := w.CoSumF64(f); err != nil {
			return err
		}
		if f[0] != 6 || f[1] != -6 {
			return fmt.Errorf("co_sum got %v", f)
		}
		mx := []float64{float64(im.ID() * im.ID())}
		if err := w.CoMaxF64(mx); err != nil {
			return err
		}
		if mx[0] != 9 {
			return fmt.Errorf("co_max got %v", mx)
		}
		mn := []int64{int64(10 + im.ID())}
		if err := w.CoMinI64(mn); err != nil {
			return err
		}
		if mn[0] != 10 {
			return fmt.Errorf("co_min got %v", mn)
		}
		iv := []int64{int64(im.ID() * 5)}
		if err := w.CoSumI64(iv); err != nil {
			return err
		}
		if iv[0] != 30 {
			return fmt.Errorf("co_sum i64 got %v", iv)
		}
		mxi := []int64{int64(im.ID())}
		if err := w.CoMaxI64(mxi); err != nil {
			return err
		}
		if mxi[0] != 3 {
			return fmt.Errorf("co_max i64 got %v", mxi)
		}
		mnf := []float64{float64(im.ID()) + 0.5}
		if err := w.CoMinF64(mnf); err != nil {
			return err
		}
		if mnf[0] != 0.5 {
			return fmt.Errorf("co_min f64 got %v", mnf)
		}
		bf := make([]float64, 2)
		bi := make([]int64, 1)
		if im.ID() == 2 {
			bf[0], bf[1] = 1.25, 2.5
			bi[0] = 42
		}
		if err := w.CoBroadcastF64(bf, 2); err != nil {
			return err
		}
		if err := w.CoBroadcastI64(bi, 2); err != nil {
			return err
		}
		if bf[1] != 2.5 || bi[0] != 42 {
			return fmt.Errorf("co_broadcast got %v %v", bf, bi)
		}
		return nil
	})
}

// TestAtomicEventsDesign runs the §3.4 alternative event implementation
// (FETCH_AND_OP notify + COMPARE_AND_SWAP busy-wait) through the same
// correctness gauntlet as the shipped ISEND/RECV design.
func TestAtomicEventsDesign(t *testing.T) {
	cfg := Config{Substrate: MPI, Platform: testPlatform(),
		MPIOptions: rtmpi.Options{AtomicEvents: true}}
	if err := Run(4, cfg, func(im *Image) error {
		evs, err := im.NewEvents(im.World(), 2)
		if err != nil {
			return err
		}
		next := (im.ID() + 1) % im.N()
		prev := (im.ID() - 1 + im.N()) % im.N()
		// Counting semantics across the ring.
		for i := 0; i < 3; i++ {
			if err = evs.Notify(next, 0); err != nil {
				return err
			}
		}
		for i := 0; i < 3; i++ {
			if err = evs.Wait(0); err != nil {
				return err
			}
		}
		ok, err := evs.TryWait(0)
		if err != nil {
			return err
		}
		if ok {
			return fmt.Errorf("drained event still posted")
		}
		// Release semantics: a deferred put followed by notify must be
		// visible to the waiter.
		co, err := im.AllocCoarray(im.World(), 8)
		if err != nil {
			return err
		}
		if err := co.PutDeferred(next, 0, []byte{byte(42 + im.ID())}); err != nil {
			return err
		}
		if err := evs.Notify(next, 1); err != nil {
			return err
		}
		if err := evs.Wait(1); err != nil {
			return err
		}
		if co.Local()[0] != byte(42+prev) {
			return fmt.Errorf("notify did not release the put: %d", co.Local()[0])
		}
		if err := im.World().Barrier(); err != nil {
			return err
		}
		return evs.Free()
	}); err != nil {
		t.Fatal(err)
	}
}

func TestSyncImagesPairwise(t *testing.T) {
	forBoth(t, 4, func(im *Image) error {
		w := im.World()
		co, err := im.AllocCoarray(w, 16)
		if err != nil {
			return err
		}
		// Lazy allocation of the handshake events is collective: the first
		// SyncImages must be reached by everyone. Pair (0,1) and (2,3).
		partner := im.ID() ^ 1
		if im.ID()%2 == 0 {
			if err := co.PutDeferred(partner, 0, []byte{byte(0x50 + im.ID())}); err != nil {
				return err
			}
		}
		// SyncImages releases the writes (its notify runs the release
		// fence) and orders the pair.
		if err := w.SyncImages([]int{partner}); err != nil {
			return err
		}
		if im.ID()%2 == 1 {
			if co.Local()[0] != byte(0x50+partner) {
				return fmt.Errorf("image %d: pairwise sync did not order the write (%#x)", im.ID(), co.Local()[0])
			}
		}
		return w.Barrier()
	})
}
