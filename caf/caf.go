// Package caf is the public face of the Coarray Fortran 2.0 runtime: it
// wires the core runtime (internal/core) to a substrate — MPI-3 (CAF-MPI,
// the paper's contribution) or GASNet (CAF-GASNet, the baseline) — and
// re-exports the CAF 2.0 programming surface: images, teams, coarrays,
// events, asynchronous copies, cofence/finish, function shipping, and team
// collectives.
//
// A minimal program:
//
//	cfg := caf.Config{Substrate: caf.MPI, Platform: fabric.Platform("fusion")}
//	err := caf.Run(8, cfg, func(im *caf.Image) error {
//		co, _ := im.AllocCoarray(im.World(), 1024)
//		if im.ID() == 0 {
//			return co.Put(1, 0, []byte("hello"))
//		}
//		return im.World().Barrier()
//	})
package caf

import (
	"context"
	"fmt"

	"cafmpi/internal/core"
	"cafmpi/internal/elem"
	"cafmpi/internal/fabric"
	"cafmpi/internal/faults"
	"cafmpi/internal/mpi"
	"cafmpi/internal/rtgasnet"
	"cafmpi/internal/rtmpi"
	"cafmpi/internal/sim"
)

// Substrate selects the communication layer beneath the CAF runtime.
type Substrate string

// Available substrates.
const (
	MPI    Substrate = "mpi"    // CAF-MPI: the paper's MPI-3 runtime (§3)
	GASNet Substrate = "gasnet" // CAF-GASNet: the original CAF 2.0 baseline
)

// Diag groups the diagnostic subsystems of a job. All of them are off by
// default and clock-pure (they never perturb virtual time), so they can be
// toggled without changing a run's timing results.
type Diag struct {
	// Trace enables per-image time decomposition (Figures 4 and 8).
	Trace bool
	// Observe enables the obs subsystem: per-image event timelines,
	// counters, and the communication matrix across every stack layer. Read
	// the results after the run with obs.Enabled(world) on the world
	// returned by RunWorld.
	Observe bool
	// ObsRingCap overrides the per-image event ring capacity
	// (obs.DefaultRingCap when zero).
	ObsRingCap int
	// Postmortem arms the crash-triggered flight recorder: when an image
	// crashes or the job's failure latch trips, a deterministic
	// signature-stamped bundle (recent events, counters, fault decisions)
	// is written under this directory. Implies Observe.
	Postmortem string
	// Sanitize enables the PGAS synchronization sanitizer: vector-clock
	// happens-before tracking across the runtime's sync points plus shadow
	// access histories on coarray windows, reporting unordered conflicting
	// Put/Get/local accesses and MPI-3 RMA ordering misuse. Clock-pure (no
	// effect on virtual time). Read the findings after the run with
	// sanitizer.Enabled(world) on the world returned by RunWorld.
	Sanitize bool
	// WallProf enables the wall-clock profiling plane: sampled host-time
	// accounting per runtime component, pprof goroutine labels (image rank
	// + op class), and a runtime/metrics host sampler. Clock-pure. Read
	// the divergence report after the run with wallprof.Enabled(world) on
	// the world returned by RunWorld.
	WallProf bool
}

// Config configures a CAF job.
type Config struct {
	// Substrate picks CAF-MPI or CAF-GASNet. Default: MPI.
	Substrate Substrate
	// Platform selects the machine model (fabric.Fusion, fabric.Edison,
	// fabric.Mira or a custom parameter set). Default: fusion.
	Platform *fabric.Params
	// SparseFlush opts into the scalable synchronization mode on whatever
	// Platform selects: flush-all scans touch only the epoch's dirty peers,
	// per-peer eager/connection state is allocated on first use, and the
	// runtime's flat fan-in collectives switch to O(log P) trees. Equivalent
	// to choosing the platform's "-sparse" variant (fusion-sparse, ...); a
	// no-op when the platform already has MPI.SparseFlush set. Default off:
	// the paper-faithful mode with bit-exact clocks.
	SparseFlush bool
	// Diag groups the diagnostic subsystems (tracing, observability,
	// sanitizing). The pre-1.0 top-level aliases (Trace, Observe,
	// ObsRingCap, Sanitize) are gone; set these fields directly.
	Diag Diag
	// Faults installs a deterministic fault-injection plan (drops,
	// duplicates, delays, reordering, image crashes and stalls) driven by
	// the virtual clock; nil or an empty plan leaves the fabric untouched
	// and costs nothing. See faults.Plan / faults.Canonical.
	Faults *faults.Plan

	// MPIOptions tunes the CAF-MPI binding (e.g. the §5 MPI_WIN_RFLUSH
	// ablation).
	MPIOptions rtmpi.Options
	// GASNetOptions tunes the CAF-GASNet binding (e.g. the AM-mediated
	// write mode behind the Figure 2 deadlock demo).
	GASNetOptions rtgasnet.Options
}

// Re-exported runtime types: the full CAF 2.0 API surface lives on these.
type (
	// Image is one CAF process image.
	Image = core.Image
	// Team is a first-class group of images.
	Team = core.Team
	// Coarray is a symmetric remote-accessible allocation over a team.
	Coarray = core.Coarray
	// Events is a set of first-class counting events (an event coarray).
	Events = core.Events
	// EventRef names one event slot on one image.
	EventRef = core.EventRef
	// AsyncOpts carries the predicate/source/destination events of an
	// asynchronous copy.
	AsyncOpts = core.AsyncOpts
	// CofenceOpts selects which implicit operations a scoped cofence
	// completes (§3.5's optional argument).
	CofenceOpts = core.CofenceOpts
	// SpawnFunc is a shippable function.
	SpawnFunc = core.SpawnFunc
)

// Element kinds and reduction operators for team collectives.
const (
	Byte       = elem.Byte
	Int32      = elem.Int32
	Int64      = elem.Int64
	Uint64     = elem.Uint64
	Float64    = elem.Float64
	Complex128 = elem.Complex128

	OpSum  = elem.Sum
	OpProd = elem.Prod
	OpMax  = elem.Max
	OpMin  = elem.Min
)

// Byte-view helpers for building collective and coarray buffers without
// copies.
var (
	F64Bytes  = elem.F64Bytes
	I64Bytes  = elem.I64Bytes
	U64Bytes  = elem.U64Bytes
	I32Bytes  = elem.I32Bytes
	C128Bytes = elem.C128Bytes
	BytesF64  = elem.BytesF64
	BytesI64  = elem.BytesI64
	BytesU64  = elem.BytesU64
	BytesI32  = elem.BytesI32
	BytesC128 = elem.BytesC128
)

func (c *Config) normalize() error {
	if c.Substrate == "" {
		c.Substrate = MPI
	}
	if c.Platform == nil {
		c.Platform = fabric.Platform("fusion")
	}
	if c.SparseFlush && !c.Platform.SparseSync() {
		c.Platform = fabric.SparseVariant(c.Platform)
	}
	switch c.Substrate {
	case MPI, GASNet:
		return nil
	default:
		return fmt.Errorf("caf: unknown substrate %q (want %q or %q): %w", c.Substrate, MPI, GASNet, ErrInvalid)
	}
}

// coreConfig translates the public config into the runtime config.
func (c *Config) coreConfig() (core.Config, error) {
	if err := c.normalize(); err != nil {
		return core.Config{}, err
	}
	cc := core.Config{Trace: c.Diag.Trace, Observe: c.Diag.Observe, ObsRingCap: c.Diag.ObsRingCap, Sanitize: c.Diag.Sanitize, Faults: c.Faults, Postmortem: c.Diag.Postmortem, WallProf: c.Diag.WallProf}
	switch c.Substrate {
	case MPI:
		opt := c.MPIOptions
		platform := c.Platform
		cc.Factory = func(p *sim.Proc, deliver core.DeliverFunc) (core.Substrate, error) {
			return rtmpi.New(p, fabric.AttachNet(p.World(), platform), deliver, opt)
		}
	case GASNet:
		opt := c.GASNetOptions
		platform := c.Platform
		cc.Factory = func(p *sim.Proc, deliver core.DeliverFunc) (core.Substrate, error) {
			return rtgasnet.New(p, fabric.AttachNet(p.World(), platform), deliver, opt)
		}
	}
	return cc, nil
}

// Run executes fn as a CAF program on n images. It is
// RunContext(context.Background(), ...).
func Run(n int, cfg Config, fn func(*Image) error) error {
	return RunContext(context.Background(), n, cfg, fn)
}

// RunContext is Run under a context: when ctx is canceled the job's failure
// latch trips and every blocked runtime call (event waits, collectives,
// finish, blocked sends) unblocks with a typed error wrapping the
// cancellation cause, so the job exits cleanly instead of deadlocking.
func RunContext(ctx context.Context, n int, cfg Config, fn func(*Image) error) error {
	_, err := RunWorldContext(ctx, n, cfg, fn)
	return err
}

// RunWorld is Run returning the simulation world as well, for post-run
// inspection (the obs registry, per-image clocks).
func RunWorld(n int, cfg Config, fn func(*Image) error) (*sim.World, error) {
	return RunWorldContext(context.Background(), n, cfg, fn)
}

// RunWorldContext is RunContext returning the simulation world as well.
func RunWorldContext(ctx context.Context, n int, cfg Config, fn func(*Image) error) (*sim.World, error) {
	cc, err := cfg.coreConfig()
	if err != nil {
		return nil, err
	}
	return core.RunWorldContext(ctx, n, cc, fn)
}

// Boot initializes the CAF runtime on an existing simulated image (for
// programs that manage their own sim.World, e.g. to combine CAF with a
// separately initialized MPI library in one job).
func Boot(p *sim.Proc, cfg Config) (*Image, error) {
	cc, err := cfg.coreConfig()
	if err != nil {
		return nil, err
	}
	return core.Boot(p, cc)
}

// MPIEnv returns the MPI environment underlying a CAF-MPI image — the
// interoperability the paper targets: hybrid applications issue their own
// MPI calls (reductions, libraries) against the same MPI instance that
// serves the CAF runtime. It returns an error under CAF-GASNet, where MPI
// would have to be initialized as a second, duplicated runtime (Figure 1).
func MPIEnv(im *Image) (*mpi.Env, error) {
	if s, ok := im.Substrate().(*rtmpi.S); ok {
		return s.Env(), nil
	}
	return nil, fmt.Errorf("caf: image runs on substrate %q; MPI interop requires the %q substrate", im.Substrate().Name(), MPI)
}
