package caf

import "cafmpi/internal/faults"

// Typed errors surfaced by the runtime's error/cancellation API. All of
// them are errors.Is-matchable through every wrapping layer (including a
// panic that escapes an image: sim.PanicError unwraps to its cause).
var (
	// ErrImageFailed reports that a peer image crashed (a fault-plan crash
	// point) or the job was canceled. Team collectives, event waits, finish
	// and blocked sends unblock with an error matching it instead of
	// deadlocking — the ULFM-style failure notification.
	ErrImageFailed = faults.ErrImageFailed
	// ErrTimeout reports a virtual-time delivery timeout.
	ErrTimeout = faults.ErrTimeout
	// ErrRetriesExhausted reports that a send burned its full retry budget
	// without being delivered; it wraps ErrTimeout.
	ErrRetriesExhausted = faults.ErrRetriesExhausted
	// ErrInvalid reports invalid arguments to a runtime call (bad rank or
	// slot, out-of-range coarray offset, unknown substrate).
	ErrInvalid = faults.ErrInvalid
)

// ImageError is the typed error carrying which image failed and in which
// operation; unwrap with errors.As to recover the rank.
type ImageError = faults.ImageError

// FaultPlan is a deterministic fault-injection plan for Config.Faults; build
// one programmatically, parse JSON with faults.Parse/Load, or use
// faults.Canonical for the standard 1%-drop chaos plan.
type FaultPlan = faults.Plan
