package caf

import (
	"fmt"
	"math"
	"testing"
	"testing/quick"
)

func TestDistArrayLocalRemoteAccess(t *testing.T) {
	forBoth(t, 4, func(im *Image) error {
		a, err := NewDistArray(im, im.World(), 100) // blockLen 25
		if err != nil {
			return err
		}
		lo, hi := a.LocalRange()
		if hi-lo != 25 {
			return fmt.Errorf("image %d local range [%d,%d)", im.ID(), lo, hi)
		}
		// Everyone initializes its own block: A(i) = i.
		loc := a.Local()
		for k := range loc {
			loc[k] = float64(lo + k)
		}
		if err := a.Barrier(); err != nil {
			return err
		}
		// Random remote loads.
		for _, i := range []int{0, 24, 25, 50, 99} {
			v, err := a.Get(i)
			if err != nil {
				return err
			}
			if v != float64(i) {
				return fmt.Errorf("A(%d) = %v", i, v)
			}
		}
		if err := a.Barrier(); err != nil { // everyone done loading
			return err
		}
		// Remote store, then owner checks after a barrier.
		if im.ID() == 0 {
			if err := a.Put(99, -1); err != nil {
				return err
			}
		}
		if err := a.Barrier(); err != nil {
			return err
		}
		if v, _ := a.Get(99); v != -1 {
			return fmt.Errorf("store to A(99) lost: %v", v)
		}
		if err := a.Barrier(); err != nil {
			return err
		}
		return a.Free()
	})
}

func TestDistArraySliceSpansOwners(t *testing.T) {
	forBoth(t, 4, func(im *Image) error {
		a, err := NewDistArray(im, im.World(), 64) // blockLen 16
		if err != nil {
			return err
		}
		lo, _ := a.LocalRange()
		for k := range a.Local() {
			a.Local()[k] = float64(100 + lo + k)
		}
		if err := a.Barrier(); err != nil {
			return err
		}
		// A slice crossing three owner blocks.
		out := make([]float64, 40)
		if err := a.GetSlice(10, out); err != nil {
			return err
		}
		for k, v := range out {
			if v != float64(110+k) {
				return fmt.Errorf("slice[%d] = %v, want %v", k, v, 110+k)
			}
		}
		if err := a.Barrier(); err != nil { // reads done before the write
			return err
		}
		// Cross-block write from image N-1, visible after barrier.
		if im.ID() == im.N()-1 {
			vals := make([]float64, 30)
			for k := range vals {
				vals[k] = float64(-k)
			}
			if err := a.PutSlice(5, vals); err != nil {
				return err
			}
		}
		if err := a.Barrier(); err != nil {
			return err
		}
		got := make([]float64, 30)
		if err := a.GetSlice(5, got); err != nil {
			return err
		}
		for k, v := range got {
			if v != float64(-k) {
				return fmt.Errorf("after PutSlice, A(%d) = %v", 5+k, v)
			}
		}
		return a.Barrier()
	})
}

func TestDistArraySumAndValidation(t *testing.T) {
	forBoth(t, 3, func(im *Image) error {
		a, err := NewDistArray(im, im.World(), 30)
		if err != nil {
			return err
		}
		lo, hi := a.LocalRange()
		for k := 0; k < hi-lo; k++ {
			a.Local()[k] = 1
		}
		if err = a.Barrier(); err != nil {
			return err
		}
		sum, err := a.Sum()
		if err != nil {
			return err
		}
		if math.Abs(sum-30) > 1e-12 {
			return fmt.Errorf("sum = %v, want 30", sum)
		}
		if _, err := a.Get(30); err == nil {
			return fmt.Errorf("out-of-range Get accepted")
		}
		if err := a.Put(-1, 0); err == nil {
			return fmt.Errorf("negative index accepted")
		}
		if err := a.GetSlice(25, make([]float64, 10)); err == nil {
			return fmt.Errorf("overrunning slice accepted")
		}
		if _, err := NewDistArray(im, im.World(), 0); err == nil {
			return fmt.Errorf("empty array accepted")
		}
		return nil
	})
}

// Property: PutSlice followed by GetSlice round trips arbitrary windows.
func TestDistArraySliceRoundTripProperty(t *testing.T) {
	f := func(lo8, n8 uint8, seed int64) bool {
		const N = 96
		lo := int(lo8) % N
		n := int(n8)%(N-lo) + 1
		ok := true
		cfg := Config{Substrate: MPI, Platform: testPlatform()}
		err := Run(3, cfg, func(im *Image) error {
			a, err := NewDistArray(im, im.World(), N)
			if err != nil {
				return err
			}
			if im.ID() == 1 {
				vals := make([]float64, n)
				for k := range vals {
					vals[k] = float64(seed) + float64(k)*0.5
				}
				if err := a.PutSlice(lo, vals); err != nil {
					return err
				}
				back := make([]float64, n)
				if err := a.GetSlice(lo, back); err != nil {
					return err
				}
				for k := range back {
					if back[k] != vals[k] {
						ok = false
					}
				}
			}
			return a.Barrier()
		})
		return err == nil && ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}
