package caf

import (
	"fmt"

	"cafmpi/internal/elem"
)

// DistArray is a one-dimensional distributed array of float64 spanning a
// team's memory — the paper's §1 motivating use case: applications like
// QMCPACK and GFMC keep large per-node arrays whose growth outpaces node
// memory, and hybridizing with CAF lets them declare those arrays as
// coarrays so the runtime spreads them over images and turns loads and
// stores into one-sided accesses.
//
// Elements are block-distributed: image r owns indices
// [r*blockLen, (r+1)*blockLen) with the last block padded. Local accesses
// touch memory directly; remote ones become coarray gets and puts.
type DistArray struct {
	im       *Image
	team     *Team
	co       *Coarray
	n        int // global length
	blockLen int // elements per image (last block padded)
}

// NewDistArray collectively allocates a distributed array of n float64
// elements over team t.
func NewDistArray(im *Image, t *Team, n int) (*DistArray, error) {
	if n <= 0 {
		return nil, fmt.Errorf("caf: DistArray length must be positive, got %d", n)
	}
	blockLen := (n + t.Size() - 1) / t.Size()
	co, err := im.AllocCoarray(t, blockLen*8)
	if err != nil {
		return nil, err
	}
	return &DistArray{im: im, team: t, co: co, n: n, blockLen: blockLen}, nil
}

// Len returns the global element count.
func (a *DistArray) Len() int { return a.n }

// BlockLen returns the per-image block length.
func (a *DistArray) BlockLen() int { return a.blockLen }

// Owner returns the team rank owning global index i and i's offset within
// that image's block.
func (a *DistArray) Owner(i int) (rank, off int) {
	return i / a.blockLen, i % a.blockLen
}

// LocalRange returns the global index range [lo, hi) stored on this image.
func (a *DistArray) LocalRange() (lo, hi int) {
	lo = a.team.Rank() * a.blockLen
	hi = lo + a.blockLen
	if hi > a.n {
		hi = a.n
	}
	if lo > a.n {
		lo = a.n
	}
	return lo, hi
}

// Local returns this image's elements (aliasing the coarray memory).
func (a *DistArray) Local() []float64 {
	lo, hi := a.LocalRange()
	return elem.BytesF64(a.co.Local())[:hi-lo]
}

func (a *DistArray) check(i int, what string) error {
	if i < 0 || i >= a.n {
		return fmt.Errorf("caf: DistArray %s index %d out of range [0,%d)", what, i, a.n)
	}
	return nil
}

// Get performs the load A(i): local when this image owns i, otherwise a
// blocking one-sided read.
func (a *DistArray) Get(i int) (float64, error) {
	if err := a.check(i, "Get"); err != nil {
		return 0, err
	}
	rank, off := a.Owner(i)
	if rank == a.team.Rank() {
		return elem.BytesF64(a.co.Local())[off], nil
	}
	var v [1]float64
	if err := a.co.Get(rank, off*8, elem.F64Bytes(v[:])); err != nil {
		return 0, err
	}
	return v[0], nil
}

// Put performs the store A(i) = v.
func (a *DistArray) Put(i int, v float64) error {
	if err := a.check(i, "Put"); err != nil {
		return err
	}
	rank, off := a.Owner(i)
	if rank == a.team.Rank() {
		elem.BytesF64(a.co.Local())[off] = v
		return nil
	}
	vv := [1]float64{v}
	return a.co.Put(rank, off*8, elem.F64Bytes(vv[:]))
}

// GetSlice reads n=len(out) elements starting at global index lo, spanning
// owner blocks with bulk one-sided reads.
func (a *DistArray) GetSlice(lo int, out []float64) error {
	if len(out) == 0 {
		return nil
	}
	if err := a.check(lo, "GetSlice"); err != nil {
		return err
	}
	if err := a.check(lo+len(out)-1, "GetSlice"); err != nil {
		return err
	}
	for done := 0; done < len(out); {
		i := lo + done
		rank, off := a.Owner(i)
		run := a.blockLen - off
		if rem := len(out) - done; run > rem {
			run = rem
		}
		chunk := out[done : done+run]
		if rank == a.team.Rank() {
			copy(chunk, elem.BytesF64(a.co.Local())[off:off+run])
		} else if err := a.co.Get(rank, off*8, elem.F64Bytes(chunk)); err != nil {
			return err
		}
		done += run
	}
	return nil
}

// PutSlice writes vals starting at global index lo, spanning owner blocks
// with bulk one-sided writes.
func (a *DistArray) PutSlice(lo int, vals []float64) error {
	if len(vals) == 0 {
		return nil
	}
	if err := a.check(lo, "PutSlice"); err != nil {
		return err
	}
	if err := a.check(lo+len(vals)-1, "PutSlice"); err != nil {
		return err
	}
	for done := 0; done < len(vals); {
		i := lo + done
		rank, off := a.Owner(i)
		run := a.blockLen - off
		if rem := len(vals) - done; run > rem {
			run = rem
		}
		chunk := vals[done : done+run]
		if rank == a.team.Rank() {
			copy(elem.BytesF64(a.co.Local())[off:off+run], chunk)
		} else if err := a.co.Put(rank, off*8, elem.F64Bytes(chunk)); err != nil {
			return err
		}
		done += run
	}
	return nil
}

// Sum reduces the array's elements across the team (every image gets the
// global sum). Collective.
func (a *DistArray) Sum() (float64, error) {
	local := 0.0
	for _, v := range a.Local() {
		local += v
	}
	a.im.Compute(int64(len(a.Local())))
	out := make([]float64, 1)
	if err := a.team.Allreduce(elem.F64Bytes([]float64{local}), elem.F64Bytes(out), elem.Float64, elem.Sum); err != nil {
		return 0, err
	}
	return out[0], nil
}

// Barrier synchronizes the owning team (Put visibility for subsequent
// Gets follows CAF semantics: blocking puts are globally visible on
// return; ordering between images still needs events or a barrier).
func (a *DistArray) Barrier() error { return a.team.Barrier() }

// Free releases the array collectively.
func (a *DistArray) Free() error { return a.co.Free() }
