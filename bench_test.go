// Package cafmpi_test holds the top-level benchmark harness: one testing.B
// wrapper per paper table/figure (regenerating the experiment at smoke
// scale and reporting its headline metric), ablation benchmarks for the
// design choices called out in DESIGN.md §6, and wall-clock benchmarks of
// the runtime primitives themselves.
//
// Regenerate everything at full scale with:
//
//	go run ./cmd/benchsuite -exp all
package cafmpi_test

import (
	"testing"

	"cafmpi/caf"
	"cafmpi/internal/bench"
	"cafmpi/internal/fabric"
	"cafmpi/internal/hpcc"
	"cafmpi/internal/rtmpi"
)

// runExperiment executes a registered experiment at smoke scale once per
// benchmark iteration and reports metric(table) in the given unit.
func runExperiment(b *testing.B, id string, metric func(*bench.Table) float64, unit string) {
	b.Helper()
	e, ok := bench.Lookup(id)
	if !ok {
		b.Fatalf("experiment %q not registered", id)
	}
	opts := bench.Options{MaxP: 16, Quick: true}
	var last float64
	for i := 0; i < b.N; i++ {
		tab, err := e.Run(opts)
		if err != nil {
			b.Fatal(err)
		}
		last = metric(tab)
	}
	if unit != "" {
		b.ReportMetric(last, unit)
	}
}

// pick returns the Y of the row matching series at the largest X.
func pick(tab *bench.Table, series string) float64 {
	best, bestX := 0.0, -1
	for _, r := range tab.Rows {
		if r.Series == series && r.X > bestX {
			best, bestX = r.Y, r.X
		}
	}
	return best
}

func pickLabel(tab *bench.Table, series, label string) float64 {
	for _, r := range tab.Rows {
		if r.Series == series && r.Label == label {
			return r.Y
		}
	}
	return 0
}

// --- One benchmark per paper artifact ---

func BenchmarkFig01MemoryUsage(b *testing.B) {
	runExperiment(b, "fig1", func(t *bench.Table) float64 { return pick(t, "Duplicate Runtimes") }, "MB-dup")
}

func BenchmarkFig02Interop(b *testing.B) {
	runExperiment(b, "fig2", func(t *bench.Table) float64 {
		return pickLabel(t, "outcome", "CAF-GASNet (AM-mediated write)")
	}, "deadlocks")
}

func BenchmarkFig03RandomAccessFusion(b *testing.B) {
	runExperiment(b, "fig3", func(t *bench.Table) float64 { return pick(t, "CAF-MPI") }, "GUPS")
}

func BenchmarkFig04RADecomposition(b *testing.B) {
	runExperiment(b, "fig4", func(t *bench.Table) float64 {
		return pickLabel(t, "CAF-MPI", "event_notify")
	}, "notify-s")
}

func BenchmarkFig05RandomAccessEdison(b *testing.B) {
	runExperiment(b, "fig5", func(t *bench.Table) float64 { return pick(t, "CAF-GASNet") }, "GUPS")
}

func BenchmarkFig06FFTFusion(b *testing.B) {
	runExperiment(b, "fig6", func(t *bench.Table) float64 { return pick(t, "CAF-MPI") }, "GFlops")
}

func BenchmarkFig07FFTEdison(b *testing.B) {
	runExperiment(b, "fig7", func(t *bench.Table) float64 { return pick(t, "CAF-MPI") }, "GFlops")
}

func BenchmarkFig08FFTDecomposition(b *testing.B) {
	runExperiment(b, "fig8", func(t *bench.Table) float64 {
		return pickLabel(t, "CAF-GASNet", "alltoall")
	}, "a2a-s")
}

func BenchmarkFig09HPLFusion(b *testing.B) {
	runExperiment(b, "fig9", func(t *bench.Table) float64 { return pick(t, "CAF-MPI") }, "TFlops")
}

func BenchmarkFig10HPLEdison(b *testing.B) {
	runExperiment(b, "fig10", func(t *bench.Table) float64 { return pick(t, "CAF-MPI") }, "TFlops")
}

func BenchmarkFig11CGPOPFusion(b *testing.B) {
	runExperiment(b, "fig11", func(t *bench.Table) float64 { return pick(t, "CAF-MPI (PUSH)") }, "exec-s")
}

func BenchmarkFig12CGPOPEdison(b *testing.B) {
	runExperiment(b, "fig12", func(t *bench.Table) float64 { return pick(t, "CAF-GASNet (PULL)") }, "exec-s")
}

func BenchmarkTab1Platforms(b *testing.B) {
	runExperiment(b, "tab1", func(t *bench.Table) float64 { return float64(len(t.Rows)) }, "rows")
}

func BenchmarkMicroMira(b *testing.B) {
	runExperiment(b, "ubench-mira", func(t *bench.Table) float64 { return pick(t, "CAF-GASNet READ") }, "reads/s")
}

func BenchmarkMicroEdison(b *testing.B) {
	runExperiment(b, "ubench-edison", func(t *bench.Table) float64 { return pick(t, "CAF-MPI NOTIFY") }, "notifies/s")
}

func BenchmarkMicroFusion(b *testing.B) {
	runExperiment(b, "ubench-fusion", func(t *bench.Table) float64 { return pick(t, "CAF-MPI AlltoAll") }, "a2a/s")
}

// --- Ablations (DESIGN.md §6) ---

// BenchmarkAblationRflush compares event_notify built on the blocking
// MPI_WIN_FLUSH_ALL against the paper's proposed MPI_WIN_RFLUSH (§5).
func BenchmarkAblationRflush(b *testing.B) {
	runExperiment(b, "ablation-rflush", func(t *bench.Table) float64 {
		return pick(t, "CAF-MPI(Rflush)") / pick(t, "CAF-MPI(FlushAll)")
	}, "speedup")
}

// BenchmarkAblationEventDesign compares the two §3.4 event designs under
// RandomAccess: the shipped ISEND/RECV events vs FETCH_AND_OP/CAS.
func BenchmarkAblationEventDesign(b *testing.B) {
	runExperiment(b, "ablation-events", func(t *bench.Table) float64 {
		return pick(t, "CAF-MPI(isend/recv events)") / pick(t, "CAF-MPI(atomic events)")
	}, "isend-advantage")
}

// BenchmarkAblationFinishFastPath measures the finish fast path (no
// function shipping: one reduction round) against a finish that must run
// termination detection over a spawn chain.
func BenchmarkAblationFinishFastPath(b *testing.B) {
	for _, mode := range []struct {
		name  string
		chain int
	}{{"fast-path", 0}, {"spawn-chain", 12}} {
		mode := mode
		b.Run(mode.name, func(b *testing.B) {
			cfg := caf.Config{Substrate: caf.MPI, Platform: fabric.Platform("fusion")}
			var virt float64
			for i := 0; i < b.N; i++ {
				err := caf.Run(8, cfg, func(im *caf.Image) error {
					const fnHop uint64 = 1
					if err := im.RegisterFunc(fnHop, func(t *caf.Image, args []byte) {
						if args[0] > 0 {
							if err := t.Spawn(t.World(), (t.ID()+1)%t.N(), fnHop, []byte{args[0] - 1}); err != nil {
								panic(err)
							}
						}
					}); err != nil {
						return err
					}
					t0 := im.Now()
					err := im.Finish(im.World(), func() error {
						if mode.chain > 0 && im.ID() == 0 {
							return im.Spawn(im.World(), 1, fnHop, []byte{byte(mode.chain)})
						}
						return nil
					})
					if im.ID() == 0 {
						virt = im.Now() - t0
					}
					return err
				})
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(virt*1e6, "virtual-us")
		})
	}
}

// BenchmarkAblationAlltoallSubstrate isolates the all-to-all gap behind the
// paper's FFT result: tuned MPI_ALLTOALL vs the hand-crafted put+AM
// construction, same payload.
func BenchmarkAblationAlltoallSubstrate(b *testing.B) {
	for _, sub := range []caf.Substrate{caf.MPI, caf.GASNet} {
		sub := sub
		b.Run(string(sub), func(b *testing.B) {
			cfg := caf.Config{Substrate: sub, Platform: fabric.Platform("fusion")}
			var virt float64
			for i := 0; i < b.N; i++ {
				err := caf.Run(16, cfg, func(im *caf.Image) error {
					send := make([]byte, 16*1024)
					recv := make([]byte, 16*1024)
					if err := im.World().Barrier(); err != nil {
						return err
					}
					t0 := im.Now()
					for k := 0; k < 10; k++ {
						if err := im.World().Alltoall(send, recv); err != nil {
							return err
						}
					}
					if im.ID() == 0 {
						virt = (im.Now() - t0) / 10
					}
					return nil
				})
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(virt*1e6, "virtual-us/op")
		})
	}
}

// --- Wall-clock benchmarks of the runtime primitives ---

func benchPrimitive(b *testing.B, sub caf.Substrate, fn func(im *caf.Image, iters int) error) {
	cfg := caf.Config{Substrate: sub, Platform: fabric.Platform("fusion")}
	if err := caf.Run(2, cfg, func(im *caf.Image) error {
		return fn(im, b.N)
	}); err != nil {
		b.Fatal(err)
	}
}

func BenchmarkPrimitiveCoarrayPut(b *testing.B) {
	for _, sub := range []caf.Substrate{caf.MPI, caf.GASNet} {
		sub := sub
		b.Run(string(sub), func(b *testing.B) {
			benchPrimitive(b, sub, func(im *caf.Image, iters int) error {
				co, err := im.AllocCoarray(im.World(), 4096)
				if err != nil {
					return err
				}
				buf := make([]byte, 64)
				if im.ID() == 0 {
					for i := 0; i < iters; i++ {
						if err := co.Put(1, 0, buf); err != nil {
							return err
						}
					}
				}
				return im.World().Barrier()
			})
		})
	}
}

func BenchmarkPrimitiveEventPingPong(b *testing.B) {
	benchPrimitive(b, caf.MPI, func(im *caf.Image, iters int) error {
		evs, err := im.NewEvents(im.World(), 2)
		if err != nil {
			return err
		}
		peer := 1 - im.ID()
		for i := 0; i < iters; i++ {
			if im.ID() == 0 {
				if err := evs.Notify(peer, 0); err != nil {
					return err
				}
				if err := evs.Wait(1); err != nil {
					return err
				}
			} else {
				if err := evs.Wait(0); err != nil {
					return err
				}
				if err := evs.Notify(peer, 1); err != nil {
					return err
				}
			}
		}
		return nil
	})
}

func BenchmarkPrimitiveSpawnEcho(b *testing.B) {
	benchPrimitive(b, caf.MPI, func(im *caf.Image, iters int) error {
		const fnNop uint64 = 1
		if err := im.RegisterFunc(fnNop, func(*caf.Image, []byte) {}); err != nil {
			return err
		}
		return im.Finish(im.World(), func() error {
			if im.ID() == 0 {
				for i := 0; i < iters; i++ {
					if err := im.Spawn(im.World(), 1, fnNop, nil); err != nil {
						return err
					}
				}
			}
			return nil
		})
	})
}

func BenchmarkPrimitiveRandomAccessKernel(b *testing.B) {
	cfg := caf.Config{Substrate: caf.MPI, Platform: fabric.Platform("fusion")}
	for i := 0; i < b.N; i++ {
		var gups float64
		if err := caf.Run(8, cfg, func(im *caf.Image) error {
			res, err := hpcc.RandomAccess(im, hpcc.RAConfig{TableBits: 8, UpdatesPerImage: 512, BatchSize: 128})
			if err != nil {
				return err
			}
			if im.ID() == 0 {
				gups = res.GUPS
			}
			return nil
		}); err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(gups, "virtual-GUPS")
	}
}

// BenchmarkPrimitiveRflushFence isolates the release-fence cost itself:
// FlushAll scan vs Rflush at P=32 with one outstanding put.
func BenchmarkPrimitiveRflushFence(b *testing.B) {
	for _, rf := range []bool{false, true} {
		rf := rf
		name := "flushall"
		if rf {
			name = "rflush"
		}
		b.Run(name, func(b *testing.B) {
			cfg := caf.Config{Substrate: caf.MPI, Platform: fabric.Platform("fusion"),
				MPIOptions: rtmpi.Options{UseRflush: rf}}
			var virt float64
			if err := caf.Run(32, cfg, func(im *caf.Image) error {
				co, err := im.AllocCoarray(im.World(), 64)
				if err != nil {
					return err
				}
				evs, err := im.NewEvents(im.World(), 1)
				if err != nil {
					return err
				}
				if im.ID() == 0 {
					t0 := im.Now()
					for i := 0; i < b.N; i++ {
						if err := co.PutDeferred(1, 0, []byte{1}); err != nil {
							return err
						}
						if err := evs.Notify(1, 0); err != nil {
							return err
						}
					}
					virt = (im.Now() - t0) / float64(b.N)
				}
				if im.ID() == 1 {
					for i := 0; i < b.N; i++ {
						if err := evs.Wait(0); err != nil {
							return err
						}
					}
				}
				return im.World().Barrier()
			}); err != nil {
				b.Fatal(err)
			}
			b.ReportMetric(virt*1e3, "virtual-us/notify")
		})
	}
}
