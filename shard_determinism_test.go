package cafmpi_test

import (
	"errors"
	"runtime"
	"testing"

	"cafmpi/caf"
	"cafmpi/internal/fabric"
	"cafmpi/internal/faults"
	"cafmpi/internal/hpcc"
)

// shardedFusion is the fusion preset with the delivery-shard count pinned
// (a host-tuning knob: the virtual clocks must not see it).
func shardedFusion(s int) *fabric.Params {
	cp := *fabric.Platform("fusion")
	cp.DeliveryShards = s
	return &cp
}

func shardedRAClocks(t *testing.T, pf *fabric.Params) []int64 {
	t.Helper()
	clocks := make([]int64, 8)
	cfg := caf.Config{Substrate: caf.MPI, Platform: pf}
	err := caf.Run(8, cfg, func(im *caf.Image) error {
		if _, err := hpcc.RandomAccess(im, hpcc.RAConfig{TableBits: 8, UpdatesPerImage: 512, BatchSize: 128}); err != nil {
			return err
		}
		clocks[im.ID()] = im.Proc().Now()
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return clocks
}

func shardedPingPongClocks(t *testing.T, pf *fabric.Params) []int64 {
	t.Helper()
	const iters = 200
	clocks := make([]int64, 2)
	cfg := caf.Config{Substrate: caf.MPI, Platform: pf}
	err := caf.Run(2, cfg, func(im *caf.Image) error {
		evs, err := im.NewEvents(im.World(), 2)
		if err != nil {
			return err
		}
		peer := 1 - im.ID()
		for i := 0; i < iters; i++ {
			if im.ID() == 0 {
				if err := evs.Notify(peer, 0); err != nil {
					return err
				}
				if err := evs.Wait(1); err != nil {
					return err
				}
			} else {
				if err := evs.Wait(0); err != nil {
					return err
				}
				if err := evs.Notify(peer, 1); err != nil {
					return err
				}
			}
		}
		clocks[im.ID()] = im.Proc().Now()
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return clocks
}

// TestShardCountClockInvariance: the delivery-shard count is pure host
// tuning — on the tier-1 configurations the per-image final clocks must be
// bit-identical at S=1 and S=8. The test pins GOMAXPROCS=1 (the golden
// scheduler of TestVirtualTimeInvariance) so the only source of divergence
// left is the sharding itself: any mismatch here means a message became
// visible in a different order because of which shard it crossed, which is
// exactly the regression the redesign must never introduce.
//
// Under -race the equality is held to a band instead: the race detector
// reschedules goroutines, final clocks absorb idle-poll MatchNS charges
// whose count follows that schedule (the property TestVirtualTimeInvariance
// documents and tolerates the same way), and the shard count changes which
// locks those reschedules happen on. The deterministic matching semantics
// are still pinned exactly — by the non-race run of this test and by the
// seed goldens.
func TestShardCountClockInvariance(t *testing.T) {
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(1))
	const raceBand = 0.25 // TestVirtualTimeInvariance's RandomAccess band
	for _, w := range []struct {
		name string
		run  func(*testing.T, *fabric.Params) []int64
	}{
		{"RandomAccess", shardedRAClocks},
		{"EventPingPong", shardedPingPongClocks},
	} {
		s1 := w.run(t, shardedFusion(1))
		s8 := w.run(t, shardedFusion(8))
		for i := range s1 {
			if s1[i] == s8[i] {
				continue
			}
			if raceDetectorOn {
				if diff := float64(s8[i]-s1[i]) / float64(s1[i]); diff < -raceBand || diff > raceBand {
					t.Errorf("%s image %d under -race: final clock %d ns at S=1 but %d ns at S=8 (outside the idle-poll jitter band)",
						w.name, i, s1[i], s8[i])
				}
				continue
			}
			t.Errorf("%s image %d: final clock %d ns at S=1 but %d ns at S=8 (shard count leaked into virtual time)",
				w.name, i, s1[i], s8[i])
		}
	}
}

// TestShardedDeliveryFaultPlans is the full-stack -race stress for the
// inject rings: every pair cross-shard (S=8), GOMAXPROCS=8 so producers
// genuinely race, and the fault injector active — first a dup plan (each
// duplicate must ride its original's Delivery atomically and be absorbed
// at most once, which RA's self-verification would catch), then a crash
// plan (the crashing image's panic unwinds mid-epoch while peers are still
// pushing into its shard's ring, and must surface as the typed failure).
func TestShardedDeliveryFaultPlans(t *testing.T) {
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(8))
	pf := shardedFusion(8)
	ra := func(im *caf.Image) error {
		_, err := hpcc.RandomAccess(im, hpcc.RAConfig{TableBits: 8, UpdatesPerImage: 256, BatchSize: 64, Verify: true})
		return err
	}
	t.Run("dup", func(t *testing.T) {
		plan := &faults.Plan{Seed: 9, Rules: []faults.Rule{
			{Kind: faults.KindDup, Src: -1, Dst: -1, Prob: 0.3, DelayNS: 400},
		}}
		cfg := caf.Config{Substrate: caf.MPI, Platform: pf, Faults: plan}
		if _, err := caf.RunWorld(8, cfg, ra); err != nil {
			t.Fatal(err)
		}
	})
	t.Run("crash", func(t *testing.T) {
		plan := &faults.Plan{Seed: 9, Crashes: []faults.CrashPoint{{Image: 3, AtNS: 50_000}}}
		cfg := caf.Config{Substrate: caf.MPI, Platform: pf, Faults: plan}
		_, err := caf.RunWorld(8, cfg, ra)
		if err == nil {
			t.Fatal("crash plan completed without error")
		}
		if !errors.Is(err, faults.ErrImageFailed) {
			t.Fatalf("err = %v, want the typed ErrImageFailed chain", err)
		}
	})
}
