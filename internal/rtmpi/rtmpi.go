// Package rtmpi binds the CAF 2.0 runtime to MPI-3 — the paper's CAF-MPI
// design (§3):
//
//   - Coarrays are MPI windows created with MPI_WIN_ALLOCATE and held in a
//     lifetime MPI_WIN_LOCK_ALL passive-target epoch; blocking accesses use
//     MPI_PUT/MPI_GET + MPI_WIN_FLUSH (§3.1).
//   - Active messages ride MPI two-sided messaging: injected with MPI_ISEND
//     for rate, with local-completion waits deferred to the next
//     synchronization point (§3.2).
//   - Implicitly synchronized operations keep arrays of request handles
//     from MPI_RPUT/MPI_RGET; cofence is MPI_WAITALL over them (§3.5).
//   - The release fence behind event_notify is MPI_WAITALL on outstanding
//     AM sends plus MPI_WIN_FLUSH_ALL on every touched window — whose
//     MPICH-style per-rank scan is the scalability issue of §4.1.
//   - Teams map to communicators; collectives map to MPI collectives.
package rtmpi

import (
	"fmt"

	"cafmpi/internal/core"
	"cafmpi/internal/elem"
	"cafmpi/internal/fabric"
	"cafmpi/internal/faults"
	"cafmpi/internal/mpi"
	"cafmpi/internal/obs"
	"cafmpi/internal/sim"
	"cafmpi/internal/trace"
)

// Options tune the binding.
type Options struct {
	// UseRflush replaces the release fence's blocking MPI_WIN_FLUSH_ALL
	// with the request-generating MPI_WIN_RFLUSH extension the paper
	// proposes in §5 (ablation: the RandomAccess notify cost collapses).
	UseRflush bool
	// AtomicEvents switches CAF events from the shipped ISEND/RECV design
	// to the §3.4 alternative: MPI_FETCH_AND_OP notifies into an event
	// window and MPI_COMPARE_AND_SWAP busy-waits (ablation).
	AtomicEvents bool
}

// S is the CAF-MPI substrate.
type S struct {
	p       *sim.Proc
	net     *fabric.Net
	env     *mpi.Env
	world   *team
	amComm  *mpi.Comm
	deliver core.DeliverFunc
	opt     Options

	amReqs       []*mpi.Request // outstanding AM isends (§3.2 deferred waits)
	implicitPuts []*mpi.Request // request handles of deferred puts (§3.5)
	implicitGets []*mpi.Request // request handles of deferred gets (§3.5)
	wins         []*mpi.Win     // every window this image touched
	extraMemory  int64

	// Scratch buffers for the AM hot path, reusable because MPI's Isend and
	// Recv consume/fill their buffers before returning: amBuf holds encoded
	// outgoing AMs, rxBuf incoming ones, argBuf the decoded argument words.
	// Only an AM's payload needs a fresh allocation (the runtime may retain
	// it past the dispatch).
	amBuf  []byte
	rxBuf  []byte
	argBuf []uint64
	rfReqs []*mpi.Request // RflushAll request scratch (UseRflush fences)

	tr  *trace.Tracer // attributes substrate time in --trace; nil when off
	osh *obs.Shard    // observability shard; nil when off
	flt *faults.State // failure/cancellation latch; nil-safe methods
}

// New builds the substrate on image p. deliver is the runtime's AM
// dispatcher.
func New(p *sim.Proc, net *fabric.Net, deliver core.DeliverFunc, opt Options) (*S, error) {
	env := mpi.Init(p, net)
	amComm, err := env.CommWorld().Dup()
	if err != nil {
		return nil, err
	}
	s := &S{p: p, net: net, env: env, amComm: amComm, deliver: deliver, opt: opt}
	s.world = &team{comm: env.CommWorld()}
	s.osh = obs.For(p)
	s.flt = faults.Enabled(p.World())
	return s, nil
}

// SetTracer attaches the image's tracer so substrate operations report their
// time under the substrate_* categories (core.Boot calls this when tracing).
func (s *S) SetTracer(tr *trace.Tracer) { s.tr = tr }

// Env exposes the MPI environment for hybrid MPI+CAF applications — the
// interoperability the paper targets: the same MPI library instance serves
// both the CAF runtime and direct MPI calls.
func (s *S) Env() *mpi.Env { return s.env }

// Name identifies the substrate.
func (s *S) Name() string { return "mpi" }

// Platform returns the machine cost model.
func (s *S) Platform() *fabric.Params { return s.net.Params() }

// Proc returns the owning image.
func (s *S) Proc() *sim.Proc { return s.p }

// Caps reports MPI capabilities: native collectives, and AM-mediated puts
// when a destination event is required (§3.3 rule 4).
func (s *S) Caps() core.Caps {
	return core.Caps{NativeCollectives: true, PutWithRemoteEventViaAM: true}
}

// team wraps an MPI communicator as a core.TeamRef.
type team struct{ comm *mpi.Comm }

func (t *team) Rank() int           { return t.comm.Rank() }
func (t *team) Size() int           { return t.comm.Size() }
func (t *team) WorldRank(r int) int { return t.comm.WorldRank(r) }

// WorldTeam returns MPI_COMM_WORLD as TEAM_WORLD.
func (s *S) WorldTeam() core.TeamRef { return s.world }

// SplitTeam maps team_split to MPI_Comm_split.
func (s *S) SplitTeam(t core.TeamRef, color, key int) (core.TeamRef, error) {
	nc, err := t.(*team).comm.Split(color, key)
	if err != nil {
		return nil, err
	}
	if nc == nil {
		return nil, nil
	}
	return &team{comm: nc}, nil
}

// MakeTeam is unused: SplitTeam is native.
func (s *S) MakeTeam([]int, int) (core.TeamRef, error) {
	return nil, core.ErrUnsupported
}

// segment wraps an MPI window.
type segment struct{ win *mpi.Win }

func (g *segment) Local() []byte { return g.win.Base() }
func (g *segment) Bytes() int    { return g.win.Size() }

// AllocSegment creates a window with MPI_WIN_ALLOCATE and opens the
// lifetime lock-all epoch (§3.1).
func (s *S) AllocSegment(t core.TeamRef, bytes int, _ uint64) (core.Segment, error) {
	win, err := mpi.WinAllocate(t.(*team).comm, bytes)
	if err != nil {
		return nil, err
	}
	if err := win.LockAll(); err != nil {
		return nil, err
	}
	s.wins = append(s.wins, win)
	return &segment{win: win}, nil
}

// FreeSegment unlocks and frees the window.
func (s *S) FreeSegment(g core.Segment) error {
	win := g.(*segment).win
	for i, w := range s.wins {
		if w == win {
			s.wins = append(s.wins[:i], s.wins[i+1:]...)
			break
		}
	}
	if err := win.UnlockAll(); err != nil {
		return err
	}
	return win.Free()
}

// Put is the blocking coarray write: MPI_PUT + MPI_WIN_FLUSH (§3.1).
func (s *S) Put(g core.Segment, target, off int, data []byte) error {
	defer s.tr.Span(trace.SubstratePut)()
	win := g.(*segment).win
	t0 := s.p.Now()
	if err := win.Put(data, target, off); err != nil {
		return err
	}
	if err := win.Flush(target); err != nil {
		return err
	}
	s.osh.Record(obs.LayerSubstrate, obs.OpPut, win.Comm().WorldRank(target), len(data), off, t0, s.p.Now())
	return nil
}

// Get is the blocking coarray read: MPI_GET + MPI_WIN_FLUSH.
func (s *S) Get(g core.Segment, target, off int, into []byte) error {
	defer s.tr.Span(trace.SubstrateGet)()
	win := g.(*segment).win
	t0 := s.p.Now()
	if err := win.Get(into, target, off); err != nil {
		return err
	}
	if err := win.Flush(target); err != nil {
		return err
	}
	s.osh.Record(obs.LayerSubstrate, obs.OpGet, win.Comm().WorldRank(target), len(into), off, t0, s.p.Now())
	return nil
}

// PutDeferred issues MPI_RPUT and parks the request on the implicit-put
// list (§3.5).
func (s *S) PutDeferred(g core.Segment, target, off int, data []byte) error {
	req, err := g.(*segment).win.Rput(data, target, off)
	if err != nil {
		return err
	}
	s.implicitPuts = append(s.implicitPuts, req)
	return nil
}

// GetDeferred issues MPI_RGET and parks the request on the implicit-get
// list (§3.5).
func (s *S) GetDeferred(g core.Segment, target, off int, into []byte) error {
	req, err := g.(*segment).win.Rget(into, target, off)
	if err != nil {
		return err
	}
	s.implicitGets = append(s.implicitGets, req)
	return nil
}

// completion adapts an MPI request.
type completion struct{ req *mpi.Request }

func (c completion) Test() bool {
	done, _, err := c.req.Test()
	if err != nil {
		// Wrapped, not stringified: unwinds through sim.PanicError with the
		// typed cause (ErrImageFailed, ErrRetriesExhausted) intact.
		panic(fmt.Errorf("rtmpi: async operation failed: %w", err))
	}
	return done
}

func (c completion) Wait() {
	if _, err := c.req.Wait(); err != nil {
		panic(fmt.Errorf("rtmpi: async operation failed: %w", err))
	}
}

// PutAsyncLocal maps §3.3 rule 3 to MPI_RPUT.
func (s *S) PutAsyncLocal(g core.Segment, target, off int, data []byte) (core.Completion, error) {
	req, err := g.(*segment).win.Rput(data, target, off)
	if err != nil {
		return nil, err
	}
	return completion{req}, nil
}

// GetAsync maps §3.3 rule 2 to MPI_RGET.
func (s *S) GetAsync(g core.Segment, target, off int, into []byte) (core.Completion, error) {
	req, err := g.(*segment).win.Rget(into, target, off)
	if err != nil {
		return nil, err
	}
	return completion{req}, nil
}

// AM encoding: tag carries the kind; the payload is
// [1B argCount][args as 8B little-endian][user payload]. The returned slice
// aliases s.amBuf and is only valid until the next encode.
func (s *S) encodeAM(args []uint64, payload []byte) []byte {
	need := 1 + 8*len(args) + len(payload)
	if cap(s.amBuf) < need {
		s.amBuf = make([]byte, need)
	}
	buf := s.amBuf[:need]
	buf[0] = byte(len(args))
	for i, a := range args {
		for b := 0; b < 8; b++ {
			buf[1+8*i+b] = byte(a >> (8 * b))
		}
	}
	copy(buf[1+8*len(args):], payload)
	return buf
}

// decodeAM splits an encoded AM; args aliases s.argBuf and is only valid
// until the next decode, payload aliases buf.
func (s *S) decodeAM(buf []byte) (args []uint64, payload []byte) {
	n := int(buf[0])
	if cap(s.argBuf) < n {
		s.argBuf = make([]uint64, n)
	}
	args = s.argBuf[:n]
	for i := 0; i < n; i++ {
		var a uint64
		for b := 0; b < 8; b++ {
			a |= uint64(buf[1+8*i+b]) << (8 * b)
		}
		args[i] = a
	}
	return args, buf[1+8*n:]
}

// AMSend injects a runtime AM with MPI_ISEND on the dedicated AM
// communicator; the local-completion wait is deferred to the next
// synchronization point (§3.2).
func (s *S) AMSend(worldTarget int, kind uint8, args []uint64, payload []byte) error {
	defer s.tr.Span(trace.SubstrateAM)()
	t0 := s.p.Now()
	req, err := s.amComm.Isend(s.encodeAM(args, payload), worldTarget, int(kind))
	if err != nil {
		return err
	}
	s.amReqs = append(s.amReqs, req)
	s.osh.Record(obs.LayerSubstrate, obs.OpAMSend, worldTarget, len(payload), int(kind), t0, s.p.Now())
	return nil
}

// Poll drains arrived AMs and dispatches them to the runtime. This is the
// CAF runtime's own progress: MPI itself cannot run these handlers, which
// is the §5 "need for Active Messages in MPI" limitation — an image blocked
// inside a plain MPI call makes no CAF progress.
func (s *S) Poll() {
	for {
		ok, st, _, _, err := s.amComm.IprobeAny()
		if err != nil {
			panic(fmt.Sprintf("rtmpi: AM probe failed: %v", err))
		}
		if !ok {
			return
		}
		if cap(s.rxBuf) < st.Count {
			s.rxBuf = make([]byte, st.Count)
		}
		buf := s.rxBuf[:st.Count]
		if _, err := s.amComm.Recv(buf, st.Source, st.Tag); err != nil {
			panic(fmt.Sprintf("rtmpi: AM receive failed: %v", err))
		}
		args, payload := s.decodeAM(buf)
		if len(payload) > 0 {
			// The dispatcher may retain the payload (shipped-function
			// arguments, parked orphans); hand it an owned copy. Args-only
			// AMs — event notifies, collective signals — stay allocation-free.
			payload = append([]byte(nil), payload...)
		}
		s.deliver(s.amComm.WorldRank(st.Source), uint8(st.Tag), args, payload)
	}
}

// PollUntil blocks on network activity between polls; the underlying wait
// is a blocking receive-style poll, so the MPI progress engine keeps
// serving other traffic (§3.4). When a runtime AM is queued but still in
// virtual flight, the wait advances the clock to its arrival.
func (s *S) PollUntil(cond func() bool) error {
	for {
		seq := s.env.ActivitySeq()
		s.Poll()
		if cond() {
			return nil
		}
		// Failure latch (image crash / cancellation): unblock with the
		// typed error instead of waiting for an arrival that may never come.
		if err := s.flt.ErrOp("poll_until"); err != nil {
			return err
		}
		// The earliest-arrival scan must be fresh (after cond, not the
		// poll's stale report): an arrival landing between the poll and
		// this point must advance the clock before the next charged pass,
		// or final clocks become schedule-dependent.
		if t, ok := s.amComm.EarliestMessage(); ok {
			s.p.AdvanceTo(t)
			continue
		}
		s.env.WaitActivity(seq)
	}
}

// LocalFence is cofence: MPI_WAITALL on the implicit request arrays (§3.5).
func (s *S) LocalFence() error {
	return s.LocalFenceScoped(true, true)
}

// LocalFenceScoped is the §3.5 cofence with its optional argument: wait for
// local completion of the implicit puts, the implicit gets, or both.
func (s *S) LocalFenceScoped(puts, gets bool) error {
	defer s.tr.Span(trace.SubstrateFence)()
	var first error
	if puts {
		if err := mpi.Waitall(s.implicitPuts); err != nil && first == nil {
			first = err
		}
		freeReqs(s.implicitPuts)
		s.implicitPuts = s.implicitPuts[:0]
	}
	if gets {
		if err := mpi.Waitall(s.implicitGets); err != nil && first == nil {
			first = err
		}
		freeReqs(s.implicitGets)
		s.implicitGets = s.implicitGets[:0]
	}
	return first
}

// freeReqs recycles a fence-drained request array the substrate exclusively
// owns. Waitall has completed every entry, so the handles are dead.
func freeReqs(reqs []*mpi.Request) {
	for i, r := range reqs {
		if r != nil {
			r.Free()
			reqs[i] = nil
		}
	}
}

// ReleaseFence implements the release barrier of event_notify (§3.4):
// MPI_WAITALL on every outstanding AM send and implicit request, then
// remote completion of every window — MPI_WIN_FLUSH_ALL, whose per-rank
// scan in MPICH derivatives makes this fence's cost grow linearly with the
// number of processes (Figure 4). With Options.UseRflush the fence instead
// uses the proposed request-generating MPI_WIN_RFLUSH (§5) and waits on the
// returned requests, overlapping the per-target completion latencies.
func (s *S) ReleaseFence() error {
	defer s.tr.Span(trace.SubstrateFence)()
	t0 := s.p.Now()
	defer func() {
		end := s.p.Now()
		s.osh.Record(obs.LayerSubstrate, obs.OpFence, -1, 0, len(s.wins), t0, end)
		if s.osh != nil && end > t0 {
			// Fallback edge for fence time the inner flush edges do not cover
			// (Waitall on Rflush requests, evicted flush records). Ties at the
			// same End resolve to the earlier-recorded inner edge, which keeps
			// its finer-grained blame.
			e := obs.Edge{Layer: obs.LayerSubstrate, Op: obs.OpFence,
				Peer: -1, Start: t0, End: end}
			e.AddComp(obs.CompFlushWait, end-t0)
			s.osh.RecordEdge(e)
		}
	}()
	if err := mpi.Waitall(s.amReqs); err != nil {
		return err
	}
	freeReqs(s.amReqs)
	s.amReqs = s.amReqs[:0]
	if err := s.LocalFence(); err != nil {
		return err
	}
	if s.opt.UseRflush {
		reqs := s.rfReqs[:0]
		for _, w := range s.wins {
			r, err := w.RflushAll()
			if err != nil {
				return err
			}
			reqs = append(reqs, r)
		}
		s.rfReqs = reqs
		err := mpi.Waitall(reqs)
		if err == nil {
			freeReqs(reqs)
		}
		return err
	}
	for _, w := range s.wins {
		if err := w.FlushAll(); err != nil {
			return err
		}
	}
	return nil
}

// collCompletion adapts a nonblocking-collective handle.
type collCompletion struct{ r *mpi.CollRequest }

func (c collCompletion) Test() bool {
	done, err := c.r.Test()
	if err != nil {
		panic(fmt.Errorf("rtmpi: nonblocking collective failed: %w", err))
	}
	return done
}

func (c collCompletion) Wait() {
	if err := c.r.Wait(); err != nil {
		panic(fmt.Errorf("rtmpi: nonblocking collective failed: %w", err))
	}
}

// AllreduceAsync maps the CAF asynchronous team reduction to MPI_Iallreduce
// (§2.1's team_reduce_async with real communication/computation overlap).
func (s *S) AllreduceAsync(t core.TeamRef, in, out []byte, k elem.Kind, op elem.Op) (core.Completion, error) {
	r, err := t.(*team).comm.Iallreduce(in, out, k, op)
	if err != nil {
		return nil, err
	}
	return collCompletion{r}, nil
}

// BcastAsync maps to MPI_Ibcast.
func (s *S) BcastAsync(t core.TeamRef, buf []byte, root int) (core.Completion, error) {
	r, err := t.(*team).comm.Ibcast(buf, mpi.Byte, root)
	if err != nil {
		return nil, err
	}
	return collCompletion{r}, nil
}

// Barrier maps to MPI_Barrier.
func (s *S) Barrier(t core.TeamRef) error { return t.(*team).comm.Barrier() }

// Bcast maps to MPI_Bcast.
func (s *S) Bcast(t core.TeamRef, buf []byte, root int) error {
	return t.(*team).comm.Bcast(buf, mpi.Byte, root)
}

// Reduce maps to MPI_Reduce.
func (s *S) Reduce(t core.TeamRef, in, out []byte, k elem.Kind, op elem.Op, root int) error {
	return t.(*team).comm.Reduce(in, out, k, op, root)
}

// Allreduce maps to MPI_Allreduce.
func (s *S) Allreduce(t core.TeamRef, in, out []byte, k elem.Kind, op elem.Op) error {
	return t.(*team).comm.Allreduce(in, out, k, op)
}

// Alltoall maps to MPI_Alltoall (pairwise exchange — the tuned collective
// behind the paper's FFT win, Figures 6-8).
func (s *S) Alltoall(t core.TeamRef, send, recv []byte) error {
	return t.(*team).comm.Alltoall(send, recv, mpi.Byte)
}

// Allgather maps to MPI_Allgather.
func (s *S) Allgather(t core.TeamRef, send, recv []byte) error {
	return t.(*team).comm.Allgather(send, recv, mpi.Byte)
}

// MemoryFootprint reports the MPI library's memory (Figure 1).
func (s *S) MemoryFootprint() int64 { return s.env.MemoryFootprint() + s.extraMemory }

// atomicEvents is the §3.4 alternative event design: counters live in an
// MPI window; event_notify is MPI_FETCH_AND_OP(+1) on the target's slot and
// event_wait busy-waits with MPI_COMPARE_AND_SWAP, decrementing on success.
type atomicEvents struct {
	s   *S
	win *mpi.Win
}

// AllocEvents builds the window-backed transport when Options.AtomicEvents
// is set; otherwise events ride the AM path (the design CAF-MPI shipped).
func (s *S) AllocEvents(t core.TeamRef, n int, _ uint64) (core.EventBackend, error) {
	if !s.opt.AtomicEvents {
		return nil, core.ErrUnsupported
	}
	win, err := mpi.WinAllocate(t.(*team).comm, n*8)
	if err != nil {
		return nil, err
	}
	if err := win.LockAll(); err != nil {
		return nil, err
	}
	s.wins = append(s.wins, win)
	return &atomicEvents{s: s, win: win}, nil
}

func (e *atomicEvents) Notify(target, slot int) error {
	one := []int64{1}
	if err := e.win.Accumulate(mpi.I64Bytes(one), target, slot*8, mpi.Int64, mpi.OpSum); err != nil {
		return err
	}
	// The notification must be visible promptly: complete it at the target.
	return e.win.Flush(target)
}

func (e *atomicEvents) tryConsume(slot int) (bool, error) {
	me := e.win.Comm().Rank()
	cur := make([]int64, 1)
	// Atomic read of the local counter.
	if err := e.win.FetchAndOp(nil, mpi.I64Bytes(cur), me, slot*8, mpi.Int64, mpi.OpNoOp); err != nil {
		return false, err
	}
	if cur[0] <= 0 {
		return false, nil
	}
	// CAS the decrement; a racing notify may force a retry upstream.
	want := []int64{cur[0] - 1}
	old := make([]int64, 1)
	if err := e.win.CompareAndSwap(mpi.I64Bytes(want), mpi.I64Bytes(cur), mpi.I64Bytes(old), me, slot*8, mpi.Int64); err != nil {
		return false, err
	}
	return old[0] == cur[0], nil
}

func (e *atomicEvents) TryWait(slot int) (bool, error) {
	e.s.Poll() // keep AM progress alive while events bypass the AM path
	return e.tryConsume(slot)
}

func (e *atomicEvents) Wait(slot int) error {
	for {
		ok, err := e.tryConsume(slot)
		if err != nil || ok {
			return err
		}
		// Busy-wait: each probe costs a remote-atomic round trip on the
		// local window (the §3.4 concern with this design). Block for real
		// until window traffic or messages arrive, then re-probe.
		seq := e.s.env.ActivitySeq()
		e.s.Poll()
		if ok, err := e.tryConsume(slot); err != nil || ok {
			return err
		}
		if err := e.s.flt.ErrOp("event_wait"); err != nil {
			return err
		}
		e.s.env.WaitActivity(seq)
	}
}

func (e *atomicEvents) Post(slot int, n int64) {
	me := e.win.Comm().Rank()
	v := []int64{n}
	if err := e.win.Accumulate(mpi.I64Bytes(v), me, slot*8, mpi.Int64, mpi.OpSum); err != nil {
		panic(fmt.Sprintf("rtmpi: local event post failed: %v", err))
	}
	if err := e.win.Flush(me); err != nil {
		panic(fmt.Sprintf("rtmpi: local event post flush failed: %v", err))
	}
}

func (e *atomicEvents) Free() error {
	for i, w := range e.s.wins {
		if w == e.win {
			e.s.wins = append(e.s.wins[:i], e.s.wins[i+1:]...)
			break
		}
	}
	if err := e.win.UnlockAll(); err != nil {
		return err
	}
	return e.win.Free()
}
