package rtmpi

import (
	"bytes"
	"fmt"
	"testing"
	"testing/quick"

	"cafmpi/internal/core"
	"cafmpi/internal/fabric"
	"cafmpi/internal/sim"
)

func tp() *fabric.Params {
	p := fabric.Fusion
	p.Name = "test"
	return &p
}

// run boots the substrate directly (no core runtime) on n images.
func run(t *testing.T, n int, deliver func(im int) core.DeliverFunc, fn func(*S) error) {
	t.Helper()
	w := sim.NewWorld(n)
	err := w.Run(func(p *sim.Proc) error {
		var d core.DeliverFunc = func(int, uint8, []uint64, []byte) {}
		if deliver != nil {
			d = deliver(p.ID())
		}
		s, err := New(p, fabric.AttachNet(p.World(), tp()), d, Options{})
		if err != nil {
			return err
		}
		return fn(s)
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestAMEncodingRoundTripProperty(t *testing.T) {
	f := func(args []uint64, payload []byte) bool {
		if len(args) > 255 {
			args = args[:255]
		}
		var s S // encode/decode scratch state
		buf := s.encodeAM(args, payload)
		gotArgs, gotPayload := s.decodeAM(buf)
		if len(gotArgs) != len(args) {
			return false
		}
		for i := range args {
			if gotArgs[i] != args[i] {
				return false
			}
		}
		return bytes.Equal(gotPayload, payload)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestAMDeliveryThroughPoll(t *testing.T) {
	type rec struct {
		src     int
		kind    uint8
		args    []uint64
		payload []byte
	}
	got := make([]*rec, 2)
	run(t, 2,
		func(im int) core.DeliverFunc {
			return func(src int, kind uint8, args []uint64, payload []byte) {
				got[im] = &rec{src, kind, append([]uint64(nil), args...), append([]byte(nil), payload...)}
			}
		},
		func(s *S) error {
			me := s.Proc().ID()
			if me == 0 {
				if err := s.AMSend(1, 7, []uint64{11, 22}, []byte("pay")); err != nil {
					return err
				}
				if err := s.ReleaseFence(); err != nil {
					return err
				}
			} else {
				s.PollUntil(func() bool { return got[1] != nil })
				r := got[1]
				if r.src != 0 || r.kind != 7 || r.args[1] != 22 || string(r.payload) != "pay" {
					return fmt.Errorf("AM mangled: %+v", r)
				}
			}
			return s.Barrier(s.WorldTeam())
		})
}

func TestSegmentLifecycleAndFenceWindows(t *testing.T) {
	run(t, 2, nil, func(s *S) error {
		seg, err := s.AllocSegment(s.WorldTeam(), 128, 1)
		if err != nil {
			return err
		}
		if len(s.wins) != 1 {
			return fmt.Errorf("window not tracked for FlushAll (%d)", len(s.wins))
		}
		if s.Proc().ID() == 0 {
			if err := s.Put(seg, 1, 3, []byte{9}); err != nil {
				return err
			}
		}
		if err := s.Barrier(s.WorldTeam()); err != nil {
			return err
		}
		if s.Proc().ID() == 1 && seg.Local()[3] != 9 {
			return fmt.Errorf("put missing")
		}
		if err := s.FreeSegment(seg); err != nil {
			return err
		}
		if len(s.wins) != 0 {
			return fmt.Errorf("window not untracked after free")
		}
		// ReleaseFence with no windows must be harmless.
		return s.ReleaseFence()
	})
}

func TestDeferredOpsCompleteAtLocalFence(t *testing.T) {
	run(t, 2, nil, func(s *S) error {
		seg, err := s.AllocSegment(s.WorldTeam(), 64, 1)
		if err != nil {
			return err
		}
		copy(seg.Local(), []byte{byte(40 + s.Proc().ID())})
		if err := s.Barrier(s.WorldTeam()); err != nil {
			return err
		}
		into := make([]byte, 1)
		peer := 1 - s.Proc().ID()
		if err := s.GetDeferred(seg, peer, 0, into); err != nil {
			return err
		}
		if err := s.LocalFence(); err != nil {
			return err
		}
		if into[0] != byte(40+peer) {
			return fmt.Errorf("deferred get delivered %d", into[0])
		}
		if len(s.implicitPuts) != 0 || len(s.implicitGets) != 0 {
			return fmt.Errorf("implicit request lists not drained")
		}
		return s.Barrier(s.WorldTeam())
	})
}

func TestCapsAndIdentity(t *testing.T) {
	run(t, 1, nil, func(s *S) error {
		if s.Name() != "mpi" {
			return fmt.Errorf("name %q", s.Name())
		}
		c := s.Caps()
		if !c.NativeCollectives || !c.PutWithRemoteEventViaAM {
			return fmt.Errorf("caps %+v", c)
		}
		if s.Platform() == nil || s.Env() == nil {
			return fmt.Errorf("accessors nil")
		}
		if _, err := s.MakeTeam([]int{0}, 0); err != core.ErrUnsupported {
			return fmt.Errorf("MakeTeam should be unsupported (native split)")
		}
		return nil
	})
}

func TestNativeCollectivesDelegate(t *testing.T) {
	run(t, 4, nil, func(s *S) error {
		team := s.WorldTeam()
		buf := []byte{0}
		if s.Proc().ID() == 2 {
			buf[0] = 77
		}
		if err := s.Bcast(team, buf, 2); err != nil {
			return err
		}
		if buf[0] != 77 {
			return fmt.Errorf("bcast delivered %d", buf[0])
		}
		sub, err := s.SplitTeam(team, s.Proc().ID()%2, 0)
		if err != nil {
			return err
		}
		if sub.Size() != 2 {
			return fmt.Errorf("split size %d", sub.Size())
		}
		return s.Barrier(team)
	})
}

func TestRflushOptionChangesFenceScaling(t *testing.T) {
	fence := func(rflush bool, n int) int64 {
		var dt int64
		w := sim.NewWorld(n)
		if err := w.Run(func(p *sim.Proc) error {
			s, err := New(p, fabric.AttachNet(p.World(), tp()),
				func(int, uint8, []uint64, []byte) {}, Options{UseRflush: rflush})
			if err != nil {
				return err
			}
			seg, err := s.AllocSegment(s.WorldTeam(), 64, 1)
			if err != nil {
				return err
			}
			if err := s.Barrier(s.WorldTeam()); err != nil {
				return err
			}
			if p.ID() == 0 {
				if err := s.PutDeferred(seg, n-1, 0, []byte{1}); err != nil {
					return err
				}
				// Drain once so the measured fence has nothing pending:
				// the FlushAll variant still scans every rank, Rflush
				// does not.
				if err := s.ReleaseFence(); err != nil {
					return err
				}
				t0 := p.Now()
				if err := s.ReleaseFence(); err != nil {
					return err
				}
				dt = p.Now() - t0
			}
			return s.Barrier(s.WorldTeam())
		}); err != nil {
			t.Fatal(err)
		}
		return dt
	}
	flushGrowth := fence(false, 128) - fence(false, 8)
	rflushGrowth := fence(true, 128) - fence(true, 8)
	if flushGrowth <= 0 {
		t.Errorf("FlushAll fence should scale with P (delta %d)", flushGrowth)
	}
	if rflushGrowth != 0 {
		t.Errorf("Rflush fence should not scale with P when idle (delta %d)", rflushGrowth)
	}
}
