package hpcc

import (
	"fmt"
	"math"
	"math/cmplx"
	"testing"
	"testing/quick"

	"cafmpi/caf"
	"cafmpi/internal/fabric"
)

func testPlatform() *fabric.Params {
	p := fabric.Fusion
	p.Name = "test"
	p.GASNet.SRQ.Enabled = false
	return &p
}

func forBoth(t *testing.T, n int, fn func(*caf.Image) error) {
	t.Helper()
	for _, sub := range []caf.Substrate{caf.MPI, caf.GASNet} {
		sub := sub
		t.Run(string(sub), func(t *testing.T) {
			cfg := caf.Config{Substrate: sub, Platform: testPlatform(), Diag: caf.Diag{Trace: true}}
			if err := caf.Run(n, cfg, fn); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// --- RandomAccess ---

func TestRaStartMatchesIteration(t *testing.T) {
	x := uint64(1)
	for n := int64(0); n < 200; n++ {
		want := x
		if got := raStart(n); got != want {
			t.Fatalf("raStart(%d) = %#x, want %#x", n, got, want)
		}
		x = raNext(x)
	}
	// Spot-check a long jump against direct iteration.
	const far = 100_000
	x = 1
	for i := 0; i < far; i++ {
		x = raNext(x)
	}
	if got := raStart(far); got != x {
		t.Fatalf("raStart(%d) = %#x, want %#x", far, got, x)
	}
}

func TestRandomAccessVerifies(t *testing.T) {
	forBoth(t, 4, func(im *caf.Image) error {
		res, err := RandomAccess(im, RAConfig{TableBits: 8, UpdatesPerImage: 600, BatchSize: 64, Verify: true})
		if err != nil {
			return err
		}
		if !res.Verified || res.Errors != 0 {
			return fmt.Errorf("RandomAccess verification failed: %+v", res)
		}
		if res.GUPS <= 0 || res.Updates != 4*600 {
			return fmt.Errorf("implausible result: %+v", res)
		}
		return nil
	})
}

func TestRandomAccessSingleImage(t *testing.T) {
	forBoth(t, 1, func(im *caf.Image) error {
		res, err := RandomAccess(im, RAConfig{TableBits: 6, UpdatesPerImage: 100, Verify: true})
		if err != nil {
			return err
		}
		if res.Errors != 0 {
			return fmt.Errorf("single-image RA failed verification")
		}
		return nil
	})
}

func TestRandomAccessRejectsNonPowerOfTwo(t *testing.T) {
	cfg := caf.Config{Substrate: caf.MPI, Platform: testPlatform()}
	err := caf.Run(3, cfg, func(im *caf.Image) error {
		_, err := RandomAccess(im, RAConfig{TableBits: 4})
		if err == nil {
			return fmt.Errorf("3 images accepted")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// --- FFT ---

// directDFT is the O(n^2) reference.
func directDFT(x []complex128) []complex128 {
	n := len(x)
	out := make([]complex128, n)
	for k := 0; k < n; k++ {
		var s complex128
		for j := 0; j < n; j++ {
			ang := -2 * math.Pi * float64(j) * float64(k) / float64(n)
			s += x[j] * cmplx.Exp(complex(0, ang))
		}
		out[k] = s
	}
	return out
}

func TestFFTRowAgainstDirectDFT(t *testing.T) {
	for _, n := range []int{1, 2, 4, 8, 32, 128} {
		x := make([]complex128, n)
		for i := range x {
			x[i] = fftSample(i + 7*n)
		}
		want := directDFT(x)
		got := append([]complex128(nil), x...)
		fftRow(got, fftRoots(n))
		for i := range got {
			if cmplx.Abs(got[i]-want[i]) > 1e-9*float64(n) {
				t.Fatalf("n=%d: fftRow[%d] = %v, want %v", n, i, got[i], want[i])
			}
		}
	}
}

func TestFFTRowLinearityProperty(t *testing.T) {
	f := func(seed uint8) bool {
		const n = 64
		a := make([]complex128, n)
		b := make([]complex128, n)
		for i := range a {
			a[i] = fftSample(i + int(seed))
			b[i] = fftSample(i + int(seed) + 1000)
		}
		sum := make([]complex128, n)
		for i := range sum {
			sum[i] = a[i] + b[i]
		}
		w := fftRoots(n)
		fftRow(a, w)
		fftRow(b, w)
		fftRow(sum, w)
		for i := range sum {
			if cmplx.Abs(sum[i]-(a[i]+b[i])) > 1e-8 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestDistributedFFTMatchesDirectDFT(t *testing.T) {
	const logSize = 8 // 256 points: feasible for the O(n^2) reference
	forBoth(t, 4, func(im *caf.Image) error {
		m := 1 << logSize
		chunk := m / im.N()
		f := newFFTEngine(im, 1<<((logSize+1)/2), m/(1<<((logSize+1)/2)))
		x := make([]complex128, chunk)
		for i := range x {
			x[i] = fftSample(im.ID()*chunk + i)
		}
		out, err := f.forward(x)
		if err != nil {
			return err
		}
		// Gather the distributed result and compare at image 0.
		all := make([]complex128, m)
		if err := im.World().Allgather(caf.C128Bytes(out), caf.C128Bytes(all)); err != nil {
			return err
		}
		if im.ID() == 0 {
			full := make([]complex128, m)
			for i := range full {
				full[i] = fftSample(i)
			}
			want := directDFT(full)
			for k := range want {
				if cmplx.Abs(all[k]-want[k]) > 1e-6*float64(m) {
					return fmt.Errorf("FFT[%d] = %v, want %v", k, all[k], want[k])
				}
			}
		}
		return im.World().Barrier()
	})
}

func TestFFTRoundTrip(t *testing.T) {
	forBoth(t, 4, func(im *caf.Image) error {
		res, err := FFT(im, FFTConfig{LogSize: 12, Verify: true})
		if err != nil {
			return err
		}
		if !res.Verified || res.MaxError > 1e-9 {
			return fmt.Errorf("FFT round trip error %g too large", res.MaxError)
		}
		if res.GFlops <= 0 || res.Points != 1<<12 {
			return fmt.Errorf("implausible FFT result: %+v", res)
		}
		return nil
	})
}

func TestFFTRejectsBadLayout(t *testing.T) {
	cfg := caf.Config{Substrate: caf.MPI, Platform: testPlatform()}
	if err := caf.Run(8, cfg, func(im *caf.Image) error {
		if _, err := FFT(im, FFTConfig{LogSize: 4}); err == nil {
			return fmt.Errorf("16-point FFT on 8 images accepted (4x4 layout needs P|4)")
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
}

// --- HPL ---

func TestHPLResidual(t *testing.T) {
	forBoth(t, 4, func(im *caf.Image) error {
		res, err := HPL(im, HPLConfig{N: 128, NB: 16, Verify: true})
		if err != nil {
			return err
		}
		if !res.Verified || res.Residual > 16 {
			return fmt.Errorf("HPL scaled residual %g too large", res.Residual)
		}
		if res.TFlops <= 0 {
			return fmt.Errorf("implausible HPL result: %+v", res)
		}
		return nil
	})
}

func TestHPLSingleImage(t *testing.T) {
	forBoth(t, 1, func(im *caf.Image) error {
		res, err := HPL(im, HPLConfig{N: 64, NB: 8, Verify: true})
		if err != nil {
			return err
		}
		if res.Residual > 16 {
			return fmt.Errorf("serial HPL residual %g", res.Residual)
		}
		return nil
	})
}

func TestHPLUnevenBlocks(t *testing.T) {
	// 3 images, 6 blocks: cyclic distribution exercises owner rotation.
	forBoth(t, 3, func(im *caf.Image) error {
		res, err := HPL(im, HPLConfig{N: 96, NB: 16, Verify: true})
		if err != nil {
			return err
		}
		if res.Residual > 16 {
			return fmt.Errorf("HPL residual %g with 3 images", res.Residual)
		}
		return nil
	})
}

func TestHPLValidation(t *testing.T) {
	cfg := caf.Config{Substrate: caf.MPI, Platform: testPlatform()}
	if err := caf.Run(2, cfg, func(im *caf.Image) error {
		if _, err := HPL(im, HPLConfig{N: 100, NB: 16}); err == nil {
			return fmt.Errorf("N not divisible by NB accepted")
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
}

// Property: the LU factors reproduce PA for random small matrices (checked
// through the solver residual on varied shapes).
func TestHPLShapesProperty(t *testing.T) {
	f := func(shape uint8) bool {
		nb := []int{8, 16}[int(shape)%2]
		blocks := int(shape)%3 + 2
		n := nb * blocks * 2
		ok := true
		cfg := caf.Config{Substrate: caf.MPI, Platform: testPlatform()}
		err := caf.Run(2, cfg, func(im *caf.Image) error {
			res, err := HPL(im, HPLConfig{N: n, NB: nb, Verify: true})
			if err != nil {
				return err
			}
			if res.Residual > 16 {
				ok = false
			}
			return nil
		})
		return err == nil && ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 8}); err != nil {
		t.Fatal(err)
	}
}

// --- HPL 2-D ---

func TestHPL2DResidual(t *testing.T) {
	forBoth(t, 4, func(im *caf.Image) error { // 2x2 grid
		res, err := HPL2D(im, HPLConfig{N: 128, NB: 16, Verify: true})
		if err != nil {
			return err
		}
		if !res.Verified || res.Residual > 16 {
			return fmt.Errorf("HPL2D scaled residual %g too large", res.Residual)
		}
		if res.TFlops <= 0 {
			return fmt.Errorf("implausible result: %+v", res)
		}
		return nil
	})
}

func TestHPL2DRectangularGrid(t *testing.T) {
	forBoth(t, 8, func(im *caf.Image) error { // 2x4 grid
		res, err := HPL2D(im, HPLConfig{N: 128, NB: 16, Verify: true})
		if err != nil {
			return err
		}
		if res.Residual > 16 {
			return fmt.Errorf("2x4 grid residual %g", res.Residual)
		}
		return nil
	})
}

func TestHPL2DSingleImage(t *testing.T) {
	forBoth(t, 1, func(im *caf.Image) error {
		res, err := HPL2D(im, HPLConfig{N: 64, NB: 8, Verify: true})
		if err != nil {
			return err
		}
		if res.Residual > 16 {
			return fmt.Errorf("serial HPL2D residual %g", res.Residual)
		}
		return nil
	})
}

func TestHPL2DMatches1DFlops(t *testing.T) {
	// Both variants factor the same-order system; the 2-D layout must keep
	// more images busy at high P (its TFlops should be at least comparable).
	cfg := caf.Config{Substrate: caf.MPI, Platform: testPlatform()}
	var tf1, tf2 float64
	if err := caf.Run(16, cfg, func(im *caf.Image) error {
		r1, err := HPL(im, HPLConfig{N: 256, NB: 16})
		if err != nil {
			return err
		}
		r2, err := HPL2D(im, HPLConfig{N: 256, NB: 16})
		if err != nil {
			return err
		}
		if im.ID() == 0 {
			tf1, tf2 = r1.TFlops, r2.TFlops
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if tf2 <= 0 || tf1 <= 0 {
		t.Fatalf("implausible TFlops: 1D %g, 2D %g", tf1, tf2)
	}
	if tf2 < 0.5*tf1 {
		t.Errorf("2-D layout (%g TF) should not badly lose to 1-D (%g TF) at P=16", tf2, tf1)
	}
}

func TestHPL2DValidation(t *testing.T) {
	cfg := caf.Config{Substrate: caf.MPI, Platform: testPlatform()}
	if err := caf.Run(3, cfg, func(im *caf.Image) error {
		// 3 images -> 1x3 grid; 4 blocks not divisible by 3.
		if _, err := HPL2D(im, HPLConfig{N: 64, NB: 16}); err == nil {
			return fmt.Errorf("invalid block/grid split accepted")
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
}
