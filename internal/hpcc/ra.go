// Package hpcc implements the three HPC Challenge benchmarks the paper
// evaluates (§4): RandomAccess (GUPS), a distributed radix-2 FFT (GFLOP/s),
// and High-Performance Linpack (TFLOP/s) — all expressed against the CAF
// 2.0 API so the same kernel runs over CAF-MPI and CAF-GASNet.
package hpcc

import (
	"fmt"
	"math/bits"

	"cafmpi/caf"
)

// HPCC RandomAccess pseudo-random stream: a_{i+1} = (a_i << 1) ^ (poly if
// the high bit was set), the standard GF(2) LCG with POLY = 0x7.
const raPoly = 0x0000000000000007

func raNext(x uint64) uint64 {
	v := x << 1
	if int64(x) < 0 {
		v ^= raPoly
	}
	return v
}

// raPeriod is the period of the RandomAccess generator.
const raPeriod = int64(^uint64(0) >> 1)

// raStart returns the n-th element of the update stream — a direct port of
// HPC Challenge's HPCC_starts: binary exponentiation of the generator over
// GF(2), using the precomputed doubling table m2.
func raStart(n int64) uint64 {
	for n < 0 {
		n += raPeriod
	}
	for n > raPeriod {
		n -= raPeriod
	}
	if n == 0 {
		return 0x1
	}
	var m2 [64]uint64
	temp := uint64(0x1)
	for i := 0; i < 64; i++ {
		m2[i] = temp
		temp = raNext(raNext(temp))
	}
	i := 63 - bits.LeadingZeros64(uint64(n))
	ran := uint64(0x2)
	for i > 0 {
		temp = 0
		for j := 0; j < 64; j++ {
			if (ran>>uint(j))&1 != 0 {
				temp ^= m2[j]
			}
		}
		ran = temp
		i--
		if (n>>uint(i))&1 != 0 {
			ran = raNext(ran)
		}
	}
	return ran
}

// RAConfig parameterizes the RandomAccess run.
type RAConfig struct {
	// TableBits: each image holds 1<<TableBits uint64 entries; the global
	// table is P times larger. The image count must be a power of two
	// (hypercube routing).
	TableBits int
	// UpdatesPerImage: number of updates each image generates. The HPCC
	// rule is 4x the table size; benchmarks scale it down.
	UpdatesPerImage int
	// BatchSize: updates routed per bulk-exchange round (the CAF 2.0
	// software-routing bucket size). Default 512.
	BatchSize int
	// Verify re-applies the same update stream (XOR is an involution) and
	// counts table entries that fail to return to their initial value.
	Verify bool
}

// RAResult reports the measurement.
type RAResult struct {
	GUPS     float64
	Updates  int64
	Seconds  float64 // virtual seconds of the update phase
	Errors   int64   // verification mismatches (Verify only)
	Verified bool
}

// RandomAccess runs the HPCC RandomAccess benchmark with the CAF 2.0
// software-routing algorithm (§4.1): updates are routed to their home image
// through log2(P) hypercube stages of bulk coarray writes paired with
// event notify/wait — the pattern whose event_notify cost dominates CAF-MPI
// in the paper's Figure 4.
func RandomAccess(im *caf.Image, cfg RAConfig) (RAResult, error) {
	p := im.N()
	if p&(p-1) != 0 {
		return RAResult{}, fmt.Errorf("hpcc: RandomAccess needs a power-of-two image count, got %d", p)
	}
	if cfg.TableBits <= 0 {
		return RAResult{}, fmt.Errorf("hpcc: TableBits must be positive")
	}
	if cfg.BatchSize == 0 {
		cfg.BatchSize = 512
	}
	if cfg.UpdatesPerImage <= 0 {
		cfg.UpdatesPerImage = 4 << cfg.TableBits
	}
	local := 1 << cfg.TableBits
	stages := bits.TrailingZeros(uint(p))

	table := make([]uint64, local)
	for i := range table {
		table[i] = uint64(im.ID()*local + i)
	}

	rt, err := newRARouter(im, cfg.BatchSize, stages)
	if err != nil {
		return RAResult{}, err
	}
	defer rt.free()

	if err := im.World().Barrier(); err != nil {
		return RAResult{}, err
	}
	t0 := im.Now()
	if err := rt.run(im, cfg, table); err != nil {
		return RAResult{}, err
	}
	if err := im.World().Barrier(); err != nil {
		return RAResult{}, err
	}
	seconds := im.Now() - t0

	res := RAResult{
		Updates: int64(cfg.UpdatesPerImage) * int64(p),
		Seconds: seconds,
	}
	if seconds > 0 {
		res.GUPS = float64(res.Updates) / seconds / 1e9
	}

	if cfg.Verify {
		// XOR-applying the identical stream restores the initial table.
		if err := rt.run(im, cfg, table); err != nil {
			return res, err
		}
		if err := im.World().Barrier(); err != nil {
			return res, err
		}
		for i := range table {
			if table[i] != uint64(im.ID()*local+i) {
				res.Errors++
			}
		}
		errs := []int64{res.Errors}
		total := make([]int64, 1)
		if err := im.World().Allreduce(caf.I64Bytes(errs), caf.I64Bytes(total), caf.Int64, caf.OpSum); err != nil {
			return res, err
		}
		res.Errors = total[0]
		res.Verified = true
	}
	return res, nil
}

// raRouter owns the hypercube routing state: one landing coarray and two
// event sets (data-arrived, buffer-consumed) per stage.
type raRouter struct {
	im      *caf.Image
	land    *caf.Coarray // landing zones: stages x capacity entries (+count)
	dataEv  *caf.Events
	readyEv *caf.Events
	cap     int // entries per landing zone
	stages  int
	batch   int

	cur  []uint64 // updates still being routed
	send []uint64
	msg  []uint64 // scratch for one landing-zone round (count word + entries)
}

const raSlot = 8 // bytes per entry; slot 0 of each zone is the count

func newRARouter(im *caf.Image, batch, stages int) (*raRouter, error) {
	capEntries := 4 * batch
	zone := (capEntries + 1) * raSlot
	land, err := im.AllocCoarray(im.World(), max(1, stages)*zone)
	if err != nil {
		return nil, err
	}
	dataEv, err := im.NewEvents(im.World(), max(1, stages))
	if err != nil {
		return nil, err
	}
	readyEv, err := im.NewEvents(im.World(), max(1, stages))
	if err != nil {
		return nil, err
	}
	rt := &raRouter{
		im: im, land: land, dataEv: dataEv, readyEv: readyEv,
		cap: capEntries, stages: stages, batch: batch,
		cur:  make([]uint64, 0, 2*capEntries),
		send: make([]uint64, 0, capEntries+1),
		msg:  make([]uint64, 0, capEntries+1),
	}
	// Seed one flow-control credit per stage: every landing zone starts
	// free. From here on, credits exactly track zone availability, so a
	// writer can never overwrite a bucket its partner has not consumed.
	for s := 0; s < stages; s++ {
		partner := im.ID() ^ (1 << uint(s))
		if err := readyEv.Notify(partner, s); err != nil {
			return nil, err
		}
	}
	return rt, nil
}

func (rt *raRouter) free() {
	_ = rt.readyEv.Free()
	_ = rt.dataEv.Free()
	_ = rt.land.Free()
}

// run generates and routes the image's whole update stream, applying every
// update that lands here to table.
func (rt *raRouter) run(im *caf.Image, cfg RAConfig, table []uint64) error {
	p := im.N()
	me := im.ID()
	localBits := uint(cfg.TableBits)
	globalMask := uint64(p)<<localBits - 1

	x := raStart(int64(me) * int64(cfg.UpdatesPerImage))
	remaining := cfg.UpdatesPerImage
	for remaining > 0 {
		n := rt.batch
		if n > remaining {
			n = remaining
		}
		remaining -= n
		rt.cur = rt.cur[:0]
		for i := 0; i < n; i++ {
			x = raNext(x)
			rt.cur = append(rt.cur, x)
		}
		im.MemWork(int64(n) * 8) // generation + bucket scan

		for s := 0; s < rt.stages; s++ {
			partner := me ^ (1 << uint(s))
			// Partition: keep updates whose home shares my bit s.
			keep := rt.cur[:0]
			rt.send = rt.send[:0]
			for _, u := range rt.cur {
				home := int((u & globalMask) >> localBits)
				if (home^me)&(1<<uint(s)) != 0 {
					rt.send = append(rt.send, u)
				} else {
					keep = append(keep, u)
				}
			}
			rt.cur = keep
			im.MemWork(int64(len(rt.send)+len(rt.cur)) * 8)
			if err := rt.exchange(im, s, partner); err != nil {
				return err
			}
		}

		// Everything left is homed here: apply.
		for _, u := range rt.cur {
			gi := u & globalMask
			if home := int(gi >> localBits); home != me {
				return fmt.Errorf("hpcc: update for image %d leaked through routing to image %d", home, me)
			}
			table[gi&uint64(len(table)-1)] ^= u
		}
		im.MemWork(int64(len(rt.cur)) * 16)
	}

	// Drain: partners may still be routing; keep serving their buckets
	// until every image is done. A final barrier would strand their
	// notifies, so run the stages with empty buckets until global count
	// settles. Simplest correct scheme: a termination allreduce loop.
	return rt.drain(im)
}

// exchange swaps this stage's bucket with the partner. Buckets have no a
// priori size bound (the HPCC stream's low bits are serially correlated,
// so routing splits burst), so each side ships its bucket in as many
// landing-zone rounds as needed. A round's count word carries a more-flag;
// the zone-free credit (readyEv) gates every overwrite, and both sides
// interleave sending and receiving so no round can block its peer's
// progress.
func (rt *raRouter) exchange(im *caf.Image, s, partner int) error {
	zone := s * (rt.cap + 1) * raSlot
	const moreFlag = uint64(1) << 63

	// Split the outgoing bucket into rounds (at least one, possibly empty).
	rounds := (len(rt.send) + rt.cap - 1) / rt.cap
	if rounds == 0 {
		rounds = 1
	}
	si := 0
	recvDone := false
	for si < rounds || !recvDone {
		if si < rounds {
			lo := si * rt.cap
			hi := lo + rt.cap
			if hi > len(rt.send) {
				hi = len(rt.send)
			}
			cnt := uint64(hi - lo)
			if si+1 < rounds {
				cnt |= moreFlag
			}
			// Flow control: wait for the zone-free credit before writing.
			if err := rt.readyEv.Wait(s); err != nil {
				return err
			}
			// Scratch is safe to reuse: Rput consumes the bytes before
			// PutDeferred returns.
			rt.msg = append(append(rt.msg[:0], cnt), rt.send[lo:hi]...)
			if err := rt.land.PutDeferred(partner, zone, caf.U64Bytes(rt.msg)); err != nil {
				return err
			}
			if err := rt.dataEv.Notify(partner, s); err != nil {
				return err
			}
			si++
		}
		if !recvDone {
			if err := rt.dataEv.Wait(s); err != nil {
				return err
			}
			lz := caf.BytesU64(rt.land.Local()[zone : zone+(rt.cap+1)*raSlot])
			cnt := int(lz[0] &^ moreFlag)
			if cnt > rt.cap {
				return fmt.Errorf("hpcc: corrupt landing count %d", cnt)
			}
			rt.cur = append(rt.cur, lz[1:1+cnt]...)
			im.MemWork(int64(cnt) * 8)
			recvDone = lz[0]&moreFlag == 0
			// Tell the partner the zone is reusable.
			if err := rt.readyEv.Notify(partner, s); err != nil {
				return err
			}
		}
	}
	return nil
}

// drain completes the run: every image executes the same number of batches
// (the configuration is symmetric), every stage exchange pairs up exactly,
// and the per-round handshakes are self-contained — a barrier suffices.
func (rt *raRouter) drain(im *caf.Image) error {
	return im.World().Barrier()
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
