package hpcc

import (
	"fmt"
	"math"
	"math/bits"
	"math/cmplx"

	"cafmpi/caf"
)

// FFTConfig parameterizes the distributed FFT benchmark.
type FFTConfig struct {
	// LogSize: the transform has m = 1<<LogSize complex points.
	LogSize int
	// Verify runs the inverse transform and checks the round trip against
	// the original signal.
	Verify bool
}

// FFTResult reports the measurement.
type FFTResult struct {
	GFlops   float64
	Points   int64
	Seconds  float64
	MaxError float64 // round-trip error (Verify only)
	Verified bool
}

// FFT runs the HPCC FFT benchmark: a 1-D complex DFT of size m computed
// with the transpose (four-step) formulation the CAF 2.0 port uses — an
// initial permutation transpose, a local FFT phase, a twiddle-multiplied
// transpose, a second local FFT phase, and a final transpose back to
// natural order: three all-to-alls in total, matching the paper's Figure 8
// decomposition. Performance is 5·m·log2(m)/t.
func FFT(im *caf.Image, cfg FFTConfig) (FFTResult, error) {
	p := im.N()
	m := 1 << uint(cfg.LogSize)
	n1 := 1 << uint((cfg.LogSize+1)/2)
	n2 := m / n1
	if n1%p != 0 || n2%p != 0 {
		return FFTResult{}, fmt.Errorf("hpcc: FFT of 2^%d points cannot be laid out on %d images (need P | %d and P | %d)", cfg.LogSize, p, n1, n2)
	}

	// Input signal in natural order, distributed contiguously: image q owns
	// x[q*m/P : (q+1)*m/P), viewed as n2/P rows of an n2 x n1 matrix.
	chunk := m / p
	x := make([]complex128, chunk)
	for i := range x {
		x[i] = fftSample(im.ID()*chunk + i)
	}

	f := newFFTEngine(im, n1, n2)
	if err := im.World().Barrier(); err != nil {
		return FFTResult{}, err
	}
	t0 := im.Now()
	out, err := f.forward(x)
	if err != nil {
		return FFTResult{}, err
	}
	if err := im.World().Barrier(); err != nil {
		return FFTResult{}, err
	}
	seconds := im.Now() - t0

	res := FFTResult{Points: int64(m), Seconds: seconds}
	if seconds > 0 {
		res.GFlops = 5 * float64(m) * float64(cfg.LogSize) / seconds / 1e9
	}

	if cfg.Verify {
		back, err := f.inverse(out)
		if err != nil {
			return res, err
		}
		maxe := 0.0
		for i := range back {
			if d := cmplx.Abs(back[i] - fftSample(im.ID()*chunk+i)); d > maxe {
				maxe = d
			}
		}
		buf := []float64{maxe}
		outMax := make([]float64, 1)
		if err := im.World().Allreduce(caf.F64Bytes(buf), caf.F64Bytes(outMax), caf.Float64, caf.OpMax); err != nil {
			return res, err
		}
		res.MaxError = outMax[0]
		res.Verified = true
	}
	return res, nil
}

// fftSample generates the deterministic input signal.
func fftSample(i int) complex128 {
	s := uint64(i)*0x9E3779B97F4A7C15 + 0x1234567
	s ^= s >> 29
	s *= 0xBF58476D1CE4E5B9
	s ^= s >> 32
	re := float64(int32(s))/float64(1<<31) + 0.25
	im := float64(int32(s>>32)) / float64(1<<31)
	return complex(re, im)
}

// fftEngine holds the distributed layout and twiddle tables.
type fftEngine struct {
	im     *caf.Image
	n1, n2 int
	p      int
	w1, w2 []complex128 // per-phase FFT twiddles
}

func newFFTEngine(im *caf.Image, n1, n2 int) *fftEngine {
	return &fftEngine{
		im: im, n1: n1, n2: n2, p: im.N(),
		w1: fftRoots(n1), w2: fftRoots(n2),
	}
}

// fftRoots precomputes e^{-2πik/n} for k < n/2.
func fftRoots(n int) []complex128 {
	w := make([]complex128, n/2)
	for k := range w {
		ang := -2 * math.Pi * float64(k) / float64(n)
		w[k] = cmplx.Exp(complex(0, ang))
	}
	return w
}

// forward computes the DFT of the distributed vector (see FFT).
func (f *fftEngine) forward(x []complex128) ([]complex128, error) {
	return f.run(x, false)
}

// inverse computes the inverse DFT via conj(FFT(conj(x)))/m.
func (f *fftEngine) inverse(x []complex128) ([]complex128, error) {
	m := f.n1 * f.n2
	in := make([]complex128, len(x))
	for i := range x {
		in[i] = cmplx.Conj(x[i])
	}
	out, err := f.run(in, false)
	if err != nil {
		return nil, err
	}
	for i := range out {
		out[i] = cmplx.Conj(out[i]) / complex(float64(m), 0)
	}
	return out, nil
}

// run executes permute-transpose, phase I, twiddle transpose, phase II, and
// the final transpose.
func (f *fftEngine) run(x []complex128, _ bool) ([]complex128, error) {
	im := f.im
	n1, n2, m := f.n1, f.n2, f.n1*f.n2
	logN1 := bits.TrailingZeros(uint(n1))
	logN2 := bits.TrailingZeros(uint(n2))

	// Transpose 1: from natural order (n2 x n1 by rows) to A[j1][j2]
	// (n1 x n2 by rows).
	a, err := f.transpose(x, n2, n1)
	if err != nil {
		return nil, err
	}
	// Phase I: n2-point FFT of each local row of A, then twiddle by
	// w_m^{j1*k2}.
	rows := n1 / f.p
	base := im.World().Rank() * rows
	for r := 0; r < rows; r++ {
		fftRow(a[r*n2:(r+1)*n2], f.w2)
	}
	im.Compute(int64(rows) * 5 * int64(n2) * int64(logN2))
	for r := 0; r < rows; r++ {
		j1 := base + r
		for k2 := 0; k2 < n2; k2++ {
			ang := -2 * math.Pi * float64(j1) * float64(k2) / float64(m)
			a[r*n2+k2] *= cmplx.Exp(complex(0, ang))
		}
	}
	im.Compute(int64(rows) * int64(n2) * 8)

	// Transpose 2: to B[k2][j1] (n2 x n1 by rows).
	b, err := f.transpose(a, n1, n2)
	if err != nil {
		return nil, err
	}
	// Phase II: n1-point FFT of each local row.
	rows = n2 / f.p
	for r := 0; r < rows; r++ {
		fftRow(b[r*n1:(r+1)*n1], f.w1)
	}
	im.Compute(int64(rows) * 5 * int64(n1) * int64(logN1))

	// Transpose 3: b is n2 x n1 (rows k2); its transpose is the natural
	// output order O[k1][k2] (n1 x n2 by rows).
	return f.transpose(b, n2, n1)
}

// transpose redistributes a row-distributed R x C matrix into its C x R
// transpose (also row-distributed) with one all-to-all: pack blocks per
// destination, exchange, unpack. R and C are the source dimensions; the
// local slice holds R/P rows of length C.
func (f *fftEngine) transpose(local []complex128, r, c int) ([]complex128, error) {
	im := f.im
	p := f.p
	myRows := r / p  // source rows held here
	outRows := c / p // transposed rows held here afterwards
	blk := myRows * outRows

	send := make([]complex128, blk*p)
	for t := 0; t < p; t++ {
		for i := 0; i < myRows; i++ {
			for j := 0; j < outRows; j++ {
				send[t*blk+i*outRows+j] = local[i*c+t*outRows+j]
			}
		}
	}
	im.MemWork(int64(len(send)) * 16)

	recv := make([]complex128, blk*p)
	if err := im.World().Alltoall(caf.C128Bytes(send), caf.C128Bytes(recv)); err != nil {
		return nil, err
	}

	out := make([]complex128, outRows*r)
	for s := 0; s < p; s++ {
		for i := 0; i < myRows; i++ {
			for j := 0; j < outRows; j++ {
				// Element (row s*myRows+i, col myBase+j) of the source is
				// element (row j, col s*myRows+i) of the transpose.
				out[j*r+s*myRows+i] = recv[s*blk+i*outRows+j]
			}
		}
	}
	im.MemWork(int64(len(out)) * 16)
	return out, nil
}

// fftRow computes an in-place radix-2 decimation-in-time FFT of a row whose
// length matches the twiddle table (len(row) == 2*len(w)).
func fftRow(row []complex128, w []complex128) {
	n := len(row)
	if n <= 1 {
		return
	}
	// Bit-reversal permutation.
	shift := 64 - uint(bits.TrailingZeros(uint(n)))
	for i := 1; i < n; i++ {
		j := int(bits.Reverse64(uint64(i)) >> shift)
		if i < j {
			row[i], row[j] = row[j], row[i]
		}
	}
	for size := 2; size <= n; size <<= 1 {
		half := size / 2
		step := n / size
		for start := 0; start < n; start += size {
			for k := 0; k < half; k++ {
				tw := w[k*step]
				a := row[start+k]
				b := row[start+k+half] * tw
				row[start+k] = a + b
				row[start+k+half] = a - b
			}
		}
	}
}
