package hpcc

import (
	"fmt"
	"math"

	"cafmpi/caf"
)

// HPLConfig parameterizes the Linpack benchmark.
type HPLConfig struct {
	// N is the order of the dense system.
	N int
	// NB is the panel (block) width. Default 32.
	NB int
	// Verify solves the system serially from the gathered factors and
	// checks the scaled residual ||Ax-b|| / (||A||·||x||·N·eps).
	Verify bool
}

// HPLResult reports the measurement.
type HPLResult struct {
	TFlops   float64
	N        int
	Seconds  float64
	Residual float64 // scaled residual (Verify only)
	Verified bool
}

// HPL runs the High-Performance Linpack benchmark (§4.3): LU factorization
// with partial pivoting over a 1-D block-cyclic column distribution —
// panel factorization on the owner, panel+pivot broadcast, row swaps,
// triangular solve and a rank-NB trailing-matrix update everywhere. HPL is
// computation-dominated, which is why the paper sees no visible difference
// between CAF-MPI and CAF-GASNet (Figures 9 and 10).
func HPL(im *caf.Image, cfg HPLConfig) (HPLResult, error) {
	if cfg.NB == 0 {
		cfg.NB = 32
	}
	n, nb, p := cfg.N, cfg.NB, im.N()
	if n <= 0 || n%nb != 0 {
		return HPLResult{}, fmt.Errorf("hpcc: HPL needs N (%d) divisible by NB (%d)", n, nb)
	}
	nBlocks := n / nb

	// Local columns, block-cyclic: block j lives on image j%%P. Storage is
	// column-major per local column.
	ownBlock := func(b int) bool { return b%p == im.ID() }
	var myBlocks []int
	for b := 0; b < nBlocks; b++ {
		if ownBlock(b) {
			myBlocks = append(myBlocks, b)
		}
	}
	local := make([]float64, len(myBlocks)*nb*n)
	colAt := func(lb, jj int) []float64 { // local block lb, column jj within it
		off := (lb*nb + jj) * n
		return local[off : off+n]
	}
	for lb, b := range myBlocks {
		for jj := 0; jj < nb; jj++ {
			j := b*nb + jj
			col := colAt(lb, jj)
			for i := 0; i < n; i++ {
				col[i] = hplEntry(i, j)
			}
		}
	}

	pivots := make([]int32, n)
	panel := make([]float64, nb*n)
	if err := im.World().Barrier(); err != nil {
		return HPLResult{}, err
	}
	t0 := im.Now()

	for bk := 0; bk < nBlocks; bk++ {
		k0 := bk * nb
		owner := bk % p
		cols := n - k0 // active rows below/at the diagonal

		if owner == im.ID() {
			// Panel factorization with partial pivoting (on the owner; the
			// whole column is local under 1-D column distribution).
			lb := indexOf(myBlocks, bk)
			for jj := 0; jj < nb; jj++ {
				j := k0 + jj
				col := colAt(lb, jj)
				// Pivot search.
				piv, maxv := j, math.Abs(col[j])
				for i := j + 1; i < n; i++ {
					if a := math.Abs(col[i]); a > maxv {
						piv, maxv = i, a
					}
				}
				if maxv == 0 {
					return HPLResult{}, fmt.Errorf("hpcc: HPL hit a singular column %d", j)
				}
				pivots[j] = int32(piv)
				if piv != j {
					for z := 0; z < nb; z++ {
						c := colAt(lb, z)
						c[j], c[piv] = c[piv], c[j]
					}
				}
				// Scale and eliminate within the panel.
				d := col[j]
				for i := j + 1; i < n; i++ {
					col[i] /= d
				}
				for z := jj + 1; z < nb; z++ {
					c := colAt(lb, z)
					f := c[j]
					for i := j + 1; i < n; i++ {
						c[i] -= f * col[i]
					}
				}
			}
			im.Compute(int64(nb) * int64(nb) * int64(cols) * 2)
			// Pack panel rows k0..n plus this block's pivots.
			for jj := 0; jj < nb; jj++ {
				copy(panel[jj*cols:(jj+1)*cols], colAt(lb, jj)[k0:])
			}
			im.MemWork(int64(nb*cols) * 8)
		}

		// Broadcast the factored panel and its pivot rows.
		if err := im.World().Bcast(caf.F64Bytes(panel[:nb*cols]), owner); err != nil {
			return HPLResult{}, err
		}
		if err := im.World().Bcast(caf.I32Bytes(pivots[k0:k0+nb]), owner); err != nil {
			return HPLResult{}, err
		}

		// Apply the row swaps to every local column outside the panel.
		for lb, b := range myBlocks {
			if b == bk && owner == im.ID() {
				continue
			}
			for jj := 0; jj < nb; jj++ {
				col := colAt(lb, jj)
				for z := 0; z < nb; z++ {
					j, piv := k0+z, int(pivots[k0+z])
					if piv != j {
						col[j], col[piv] = col[piv], col[j]
					}
				}
			}
		}

		// Triangular solve (unit-lower L11) and trailing update on local
		// columns to the right of the panel.
		l := func(i, z int) float64 { return panel[z*cols+(i-k0)] } // L(i, k0+z)
		updated := 0
		for lb, b := range myBlocks {
			if b <= bk {
				continue
			}
			for jj := 0; jj < nb; jj++ {
				col := colAt(lb, jj)
				// U12 rows: col[k0+i] -= sum_{z<i} L(k0+i, z)*col[k0+z].
				for i := 1; i < nb; i++ {
					s := 0.0
					for z := 0; z < i; z++ {
						s += l(k0+i, z) * col[k0+z]
					}
					col[k0+i] -= s
				}
				// Trailing column: col[r] -= sum_z L(r, z)*col[k0+z].
				for r := k0 + nb; r < n; r++ {
					s := 0.0
					for z := 0; z < nb; z++ {
						s += l(r, z) * col[k0+z]
					}
					col[r] -= s
				}
			}
			updated++
		}
		rows := n - k0 - nb
		im.Compute(int64(updated*nb) * (int64(nb*nb) + 2*int64(rows)*int64(nb)))
	}

	if err := im.World().Barrier(); err != nil {
		return HPLResult{}, err
	}
	seconds := im.Now() - t0
	res := HPLResult{N: n, Seconds: seconds}
	if seconds > 0 {
		res.TFlops = (2.0/3.0*float64(n)*float64(n)*float64(n) + 1.5*float64(n)*float64(n)) / seconds / 1e12
	}

	if cfg.Verify {
		r, err := hplVerify(im, local, myBlocks, pivots, n, nb, p)
		if err != nil {
			return res, err
		}
		res.Residual = r
		res.Verified = true
	}
	return res, nil
}

// hplEntry generates the deterministic test matrix (diagonally weighted to
// stay well-conditioned).
func hplEntry(i, j int) float64 {
	s := uint64(i)*2654435761 + uint64(j)*40503 + 12345
	s ^= s >> 13
	s *= 0x9E3779B97F4A7C15
	s ^= s >> 31
	v := float64(int32(s))/float64(1<<31) - 0.5
	if i == j {
		v += float64(2 + j%3)
	}
	return v
}

// hplVerify gathers the factors on image 0, solves Ax = b serially (b =
// A·1), and returns the scaled residual.
func hplVerify(im *caf.Image, local []float64, myBlocks []int, pivots []int32, n, nb, p int) (float64, error) {
	// Gather all local column blocks (equal size per image requires
	// nBlocks % p == 0; pad-free for our benchmark sizes).
	nBlocks := n / nb
	if nBlocks%p != 0 {
		return 0, fmt.Errorf("hpcc: HPL verify needs block count %d divisible by %d images", nBlocks, p)
	}
	all := make([]float64, n*n)
	if err := im.World().Allgather(caf.F64Bytes(local), caf.F64Bytes(all)); err != nil {
		return 0, err
	}
	if im.ID() != 0 {
		// Only image 0 computes; broadcast the residual at the end.
		out := make([]float64, 1)
		if err := im.World().Bcast(caf.F64Bytes(out), 0); err != nil {
			return 0, err
		}
		return out[0], nil
	}

	// Reassemble LU by global column.
	lu := make([]float64, n*n) // column-major
	perImage := nBlocks / p * nb * n
	for b := 0; b < nBlocks; b++ {
		img := b % p
		lb := b / p
		src := img*perImage + lb*nb*n
		copy(lu[b*nb*n:(b+1)*nb*n], all[src:src+nb*n])
	}
	colLU := func(j int) []float64 { return lu[j*n : (j+1)*n] }

	// b = A·ones.
	rhs := make([]float64, n)
	normA := 0.0
	for i := 0; i < n; i++ {
		s := 0.0
		for j := 0; j < n; j++ {
			v := hplEntry(i, j)
			s += v
			if a := math.Abs(v); a > normA {
				normA = a
			}
		}
		rhs[i] = s
	}
	// Apply the pivots to rhs, then forward/backward substitution.
	for j := 0; j < n; j++ {
		if piv := int(pivots[j]); piv != j {
			rhs[j], rhs[piv] = rhs[piv], rhs[j]
		}
	}
	for j := 0; j < n; j++ { // Ly = Pb (unit lower)
		yj := rhs[j]
		col := colLU(j)
		for i := j + 1; i < n; i++ {
			rhs[i] -= col[i] * yj
		}
	}
	for j := n - 1; j >= 0; j-- { // Ux = y
		col := colLU(j)
		rhs[j] /= col[j]
		xj := rhs[j]
		for i := 0; i < j; i++ {
			rhs[i] -= col[i] * xj
		}
	}
	// Residual of the original system against x (exact solution: ones).
	maxErr := 0.0
	for i := 0; i < n; i++ {
		if d := math.Abs(rhs[i] - 1); d > maxErr {
			maxErr = d
		}
	}
	scaled := maxErr / (normA * float64(n) * 2.220446049250313e-16)
	out := []float64{scaled}
	if err := im.World().Bcast(caf.F64Bytes(out), 0); err != nil {
		return 0, err
	}
	return scaled, nil
}

func indexOf(s []int, v int) int {
	for i, x := range s {
		if x == v {
			return i
		}
	}
	return -1
}
