package hpcc

import (
	"fmt"
	"math"

	"cafmpi/caf"
)

// HPL2D runs the Linpack factorization on a 2-D block-cyclic process grid —
// the layout the paper's CAF 2.0 HPL port uses (the 1-D HPL in this package
// caps its useful process count at N/NB column owners; the 2-D layout keeps
// every image busy). The test matrix is strongly diagonally dominant, so
// this variant factors without pivoting (documented simplification: the
// pivoted path lives in HPL; LU without pivoting is backward stable for
// diagonally dominant systems).
//
// Communication per panel: the diagonal block broadcasts down its process
// column and across its process row; L-panel blocks broadcast across
// process rows; U-row blocks broadcast down process columns; the trailing
// update is local DGEMMs — all on CAF teams (MPI communicators under
// CAF-MPI, hand-crafted trees under CAF-GASNet).
func HPL2D(im *caf.Image, cfg HPLConfig) (HPLResult, error) {
	if cfg.NB == 0 {
		cfg.NB = 32
	}
	n, nb, p := cfg.N, cfg.NB, im.N()
	if n <= 0 || n%nb != 0 {
		return HPLResult{}, fmt.Errorf("hpcc: HPL2D needs N (%d) divisible by NB (%d)", n, nb)
	}
	pr := gridRows(p)
	pc := p / pr
	nBlocks := n / nb
	if nBlocks%pr != 0 || nBlocks%pc != 0 {
		return HPLResult{}, fmt.Errorf("hpcc: HPL2D needs the block count (%d) divisible by both grid dimensions (%dx%d)", nBlocks, pr, pc)
	}
	myr, myc := im.ID()%pr, im.ID()/pr

	rowTeam, err := im.World().Split(myr, myc) // procs sharing matrix rows
	if err != nil {
		return HPLResult{}, err
	}
	colTeam, err := im.World().Split(pr+myc, myr) // procs sharing matrix cols
	if err != nil {
		return HPLResult{}, err
	}

	// Local blocks: B[li][lj] holds global block (myr+li*pr, myc+lj*pc),
	// each a column-major nb x nb tile.
	locI, locJ := nBlocks/pr, nBlocks/pc
	blocks := make([][]float64, locI*locJ)
	for li := 0; li < locI; li++ {
		for lj := 0; lj < locJ; lj++ {
			tile := make([]float64, nb*nb)
			gi, gj := myr+li*pr, myc+lj*pc
			for j := 0; j < nb; j++ {
				for i := 0; i < nb; i++ {
					tile[j*nb+i] = hpl2dEntry(gi*nb+i, gj*nb+j, n)
				}
			}
			blocks[li*locJ+lj] = tile
		}
	}
	local := func(gi, gj int) []float64 { // caller guarantees ownership
		return blocks[((gi-myr)/pr)*locJ+(gj-myc)/pc]
	}

	diag := make([]float64, nb*nb)
	lbufs := make([][]float64, locI)
	ubufs := make([][]float64, locJ)
	for i := range lbufs {
		lbufs[i] = make([]float64, nb*nb)
	}
	for j := range ubufs {
		ubufs[j] = make([]float64, nb*nb)
	}

	if err := im.World().Barrier(); err != nil {
		return HPLResult{}, err
	}
	t0 := im.Now()

	for k := 0; k < nBlocks; k++ {
		rk, ck := k%pr, k%pc
		// 1. Factor the diagonal block (unpivoted LU, L unit lower).
		if myr == rk && myc == ck {
			copy(diag, local(k, k))
			if err := factorTile(diag, nb); err != nil {
				return HPLResult{}, err
			}
			copy(local(k, k), diag)
			im.Compute(2 * int64(nb) * int64(nb) * int64(nb) / 3)
		}
		// 2. Diagonal broadcasts: down its process column, across its row.
		if myc == ck {
			//caflint:allow barriermatch -- every member of colTeam shares myc, so the guard is uniform within the broadcasting team
			if err := colTeam.Bcast(caf.F64Bytes(diag), rk); err != nil {
				return HPLResult{}, err
			}
		}
		if myr == rk {
			//caflint:allow barriermatch -- every member of rowTeam shares myr, so the guard is uniform within the broadcasting team
			if err := rowTeam.Bcast(caf.F64Bytes(diag), ck); err != nil {
				return HPLResult{}, err
			}
		}
		// 3. Column ck computes its L-panel tiles; row rk its U-row tiles.
		if myc == ck {
			for gi := firstOwned(myr, pr, k+1); gi < nBlocks; gi += pr {
				tile := local(gi, k)
				solveRightUpper(tile, diag, nb) // L = A * U^-1
				im.Compute(int64(nb) * int64(nb) * int64(nb))
			}
		}
		if myr == rk {
			for gj := firstOwned(myc, pc, k+1); gj < nBlocks; gj += pc {
				tile := local(k, gj)
				solveLeftUnitLower(tile, diag, nb) // U = L^-1 * A
				im.Compute(int64(nb) * int64(nb) * int64(nb))
			}
		}
		// 4. Panel broadcasts: L across rows, U down columns. Every member
		// of a team iterates the same block list, so the collectives line
		// up.
		for gi := firstOwned(myr, pr, k+1); gi < nBlocks; gi += pr {
			li := (gi - myr) / pr
			if myc == ck {
				copy(lbufs[li], local(gi, k))
			}
			//caflint:allow barriermatch -- loop bounds depend only on myr, identical across rowTeam, so all members broadcast the same block list
			if err := rowTeam.Bcast(caf.F64Bytes(lbufs[li]), ck); err != nil {
				return HPLResult{}, err
			}
		}
		for gj := firstOwned(myc, pc, k+1); gj < nBlocks; gj += pc {
			lj := (gj - myc) / pc
			if myr == rk {
				copy(ubufs[lj], local(k, gj))
			}
			//caflint:allow barriermatch -- loop bounds depend only on myc, identical across colTeam, so all members broadcast the same block list
			if err := colTeam.Bcast(caf.F64Bytes(ubufs[lj]), rk); err != nil {
				return HPLResult{}, err
			}
		}
		// 5. Trailing update: B_IJ -= L_Ik * U_kJ.
		for gi := firstOwned(myr, pr, k+1); gi < nBlocks; gi += pr {
			li := (gi - myr) / pr
			for gj := firstOwned(myc, pc, k+1); gj < nBlocks; gj += pc {
				lj := (gj - myc) / pc
				gemmSub(local(gi, gj), lbufs[li], ubufs[lj], nb)
				im.Compute(2 * int64(nb) * int64(nb) * int64(nb))
			}
		}
	}

	if err := im.World().Barrier(); err != nil {
		return HPLResult{}, err
	}
	seconds := im.Now() - t0
	res := HPLResult{N: n, Seconds: seconds}
	if seconds > 0 {
		res.TFlops = (2.0 / 3.0 * float64(n) * float64(n) * float64(n)) / seconds / 1e12
	}

	if cfg.Verify {
		r, err := hpl2dVerify(im, blocks, n, nb, pr, pc, locI, locJ)
		if err != nil {
			return res, err
		}
		res.Residual = r
		res.Verified = true
	}
	return res, nil
}

// gridRows picks the largest divisor of p not exceeding sqrt(p).
func gridRows(p int) int {
	best := 1
	for r := 1; r*r <= p; r++ {
		if p%r == 0 {
			best = r
		}
	}
	return best
}

// firstOwned returns the smallest global block index >= lo owned by grid
// coordinate mine with stride dim.
func firstOwned(mine, dim, lo int) int {
	g := mine
	for g < lo {
		g += dim
	}
	return g
}

// hpl2dEntry is the strongly diagonally dominant test matrix.
func hpl2dEntry(i, j, n int) float64 {
	s := uint64(i)*2654435761 + uint64(j)*40503 + 777
	s ^= s >> 13
	s *= 0x9E3779B97F4A7C15
	s ^= s >> 31
	v := (float64(int32(s))/float64(1<<31) - 0.5) / float64(n)
	if i == j {
		v += 2
	}
	return v
}

// factorTile computes the in-place unpivoted LU of a column-major nb x nb
// tile (L unit lower).
func factorTile(a []float64, nb int) error {
	for k := 0; k < nb; k++ {
		d := a[k*nb+k]
		if math.Abs(d) < 1e-300 {
			return fmt.Errorf("hpcc: zero pivot in diagonal tile")
		}
		for i := k + 1; i < nb; i++ {
			a[k*nb+i] /= d
		}
		for j := k + 1; j < nb; j++ {
			f := a[j*nb+k]
			if f == 0 {
				continue
			}
			for i := k + 1; i < nb; i++ {
				a[j*nb+i] -= a[k*nb+i] * f
			}
		}
	}
	return nil
}

// solveRightUpper overwrites tile with tile * U^-1 (U upper triangular,
// from the packed LU tile).
func solveRightUpper(tile, lu []float64, nb int) {
	for j := 0; j < nb; j++ { // solve column by column: X U = A
		for c := 0; c < j; c++ {
			f := lu[j*nb+c] // U(c, j)
			for i := 0; i < nb; i++ {
				tile[j*nb+i] -= tile[c*nb+i] * f
			}
		}
		d := lu[j*nb+j]
		for i := 0; i < nb; i++ {
			tile[j*nb+i] /= d
		}
	}
}

// solveLeftUnitLower overwrites tile with L^-1 * tile (L unit lower, from
// the packed LU tile).
func solveLeftUnitLower(tile, lu []float64, nb int) {
	for j := 0; j < nb; j++ { // each column independently
		col := tile[j*nb : (j+1)*nb]
		for i := 1; i < nb; i++ {
			s := 0.0
			for c := 0; c < i; c++ {
				s += lu[c*nb+i] * col[c] // L(i, c)
			}
			col[i] -= s
		}
	}
}

// gemmSub computes C -= A * B on column-major nb x nb tiles.
func gemmSub(c, a, b []float64, nb int) {
	for j := 0; j < nb; j++ {
		for l := 0; l < nb; l++ {
			f := b[j*nb+l]
			if f == 0 {
				continue
			}
			al := a[l*nb : (l+1)*nb]
			cj := c[j*nb : (j+1)*nb]
			for i := 0; i < nb; i++ {
				cj[i] -= al[i] * f
			}
		}
	}
}

// hpl2dVerify gathers the factors on image 0 and checks the scaled residual
// of the unpivoted solve against the exact all-ones solution.
func hpl2dVerify(im *caf.Image, blocks [][]float64, n, nb, pr, pc, locI, locJ int) (float64, error) {
	// Gather every image's tiles (equal counts by construction).
	mine := make([]float64, 0, len(blocks)*nb*nb)
	for _, tile := range blocks {
		mine = append(mine, tile...)
	}
	all := make([]float64, im.N()*len(mine))
	if err := im.World().Allgather(caf.F64Bytes(mine), caf.F64Bytes(all)); err != nil {
		return 0, err
	}
	out := make([]float64, 1)
	if im.ID() == 0 {
		// Reassemble the LU factors into a dense column-major matrix.
		lu := make([]float64, n*n)
		per := len(mine)
		for rank := 0; rank < im.N(); rank++ {
			r, c := rank%pr, rank/pr
			for li := 0; li < locI; li++ {
				for lj := 0; lj < locJ; lj++ {
					tile := all[rank*per+(li*locJ+lj)*nb*nb:]
					gi, gj := r+li*pr, c+lj*pc
					for j := 0; j < nb; j++ {
						copy(lu[(gj*nb+j)*n+gi*nb:(gj*nb+j)*n+gi*nb+nb], tile[j*nb:(j+1)*nb])
					}
				}
			}
		}
		// b = A * ones; forward/backward solve; compare to ones.
		rhs := make([]float64, n)
		normA := 0.0
		for i := 0; i < n; i++ {
			s := 0.0
			for j := 0; j < n; j++ {
				v := hpl2dEntry(i, j, n)
				s += v
				if a := math.Abs(v); a > normA {
					normA = a
				}
			}
			rhs[i] = s
		}
		for j := 0; j < n; j++ { // Ly = b (unit lower)
			yj := rhs[j]
			for i := j + 1; i < n; i++ {
				rhs[i] -= lu[j*n+i] * yj
			}
		}
		for j := n - 1; j >= 0; j-- { // Ux = y
			rhs[j] /= lu[j*n+j]
			xj := rhs[j]
			for i := 0; i < j; i++ {
				rhs[i] -= lu[j*n+i] * xj
			}
		}
		maxErr := 0.0
		for i := 0; i < n; i++ {
			if d := math.Abs(rhs[i] - 1); d > maxErr {
				maxErr = d
			}
		}
		out[0] = maxErr / (normA * float64(n) * 2.220446049250313e-16)
	}
	if err := im.World().Bcast(caf.F64Bytes(out), 0); err != nil {
		return 0, err
	}
	return out[0], nil
}
