package obs

import (
	"bytes"
	"encoding/json"
	"testing"

	"cafmpi/internal/sim"
)

func TestNilSafety(t *testing.T) {
	var w *World
	var s *Shard
	s.Record(LayerFabric, OpInject, 1, 64, 0, 0, 10)
	s.Add(CtrMsgsSent, 1)
	s.Max(CtrPendingRMAMax, 5)
	s.CommAdd(0, 64)
	if s.Counter(CtrMsgsSent) != 0 || s.Recorded() != 0 || s.Dropped() != 0 || s.Events() != nil {
		t.Error("nil shard returned nonzero state")
	}
	if w.N() != 0 || w.Shard(3) != nil || w.Snapshot() != nil {
		t.Error("nil world returned nonzero state")
	}
	if err := w.WriteChromeTrace(&bytes.Buffer{}); err == nil {
		t.Error("nil world WriteChromeTrace did not error")
	}
	if Enabled(nil) != nil {
		t.Error("Enabled(nil) != nil")
	}
}

func TestEnabledOnlyAfterEnable(t *testing.T) {
	w := sim.NewWorld(2)
	if Enabled(w) != nil {
		t.Fatal("Enabled reported a registry before Enable")
	}
	ow := Enable(w, 8)
	if ow == nil || Enabled(w) != ow {
		t.Fatal("Enable/Enabled disagree")
	}
	// Second Enable (another image booting) returns the same registry and
	// ignores the new capacity.
	if Enable(w, 9999) != ow {
		t.Fatal("second Enable created a new registry")
	}
	if ow.Shard(0).RingCap() != 8 {
		t.Fatalf("ring cap = %d, want 8 (first Enable wins)", ow.Shard(0).RingCap())
	}
}

func TestRingWrapAround(t *testing.T) {
	w := sim.NewWorld(1)
	ow := Enable(w, 4)
	sh := ow.Shard(0)
	for i := 0; i < 10; i++ {
		sh.Record(LayerMPI, OpPut, 0, int(i), i, int64(i), int64(i+1))
	}
	if sh.Recorded() != 10 {
		t.Errorf("Recorded = %d, want 10", sh.Recorded())
	}
	if sh.Dropped() != 6 {
		t.Errorf("Dropped = %d, want 6", sh.Dropped())
	}
	evs := sh.Events()
	if len(evs) != 4 {
		t.Fatalf("retained %d events, want 4", len(evs))
	}
	// Oldest-first: events 6,7,8,9 survive.
	for i, e := range evs {
		if want := int32(6 + i); e.Tag != want {
			t.Errorf("event %d tag = %d, want %d (wrap ordering broken)", i, e.Tag, want)
		}
	}
}

func TestRingUnderCapacity(t *testing.T) {
	w := sim.NewWorld(1)
	sh := Enable(w, 16).Shard(0)
	sh.Record(LayerFabric, OpInject, 1, 100, 7, 5, 25)
	sh.Record(LayerFabric, OpDeliver, 0, 100, 7, 30, 40)
	if sh.Dropped() != 0 {
		t.Errorf("Dropped = %d, want 0", sh.Dropped())
	}
	evs := sh.Events()
	if len(evs) != 2 || evs[0].Op != OpInject || evs[1].Op != OpDeliver {
		t.Fatalf("events wrong: %+v", evs)
	}
	if evs[0].Peer != 1 || evs[0].Bytes != 100 || evs[0].Start != 5 || evs[0].End != 25 {
		t.Errorf("event fields wrong: %+v", evs[0])
	}
}

// TestConcurrentPerImageWrites drives every image's shard from its own
// goroutine via sim.World.Run — the ownership discipline the design relies
// on — and merges after. Run under -race this validates the lock-free claim.
func TestConcurrentPerImageWrites(t *testing.T) {
	const n = 8
	w := sim.NewWorld(n)
	ow := Enable(w, 32)
	err := w.Run(func(p *sim.Proc) error {
		sh := For(p)
		if sh == nil {
			t.Error("For returned nil with obs enabled")
			return nil
		}
		for i := 0; i < 100; i++ {
			dst := (p.ID() + 1) % n
			sh.Record(LayerSubstrate, OpPut, dst, 8, 0, p.Now(), p.Now()+10)
			sh.Add(CtrRDMAPuts, 1)
			sh.Add(CtrRDMABytes, 8)
			sh.Max(CtrPendingRMAMax, int64(p.ID()))
			sh.CommAdd(dst, 8)
			p.Advance(10)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	s := ow.Snapshot()
	if got := s.Counters["rdma_puts"]; got != n*100 {
		t.Errorf("rdma_puts = %d, want %d", got, n*100)
	}
	if got := s.Counters["rdma_bytes"]; got != n*100*8 {
		t.Errorf("rdma_bytes = %d, want %d", got, n*100*8)
	}
	// Gauge merges by max, not sum.
	if got := s.Counters["pending_rma_max"]; got != n-1 {
		t.Errorf("pending_rma_max = %d, want %d (gauge must merge by max)", got, n-1)
	}
	if s.EventsRecorded != n*100 || s.EventsDropped != n*(100-32) {
		t.Errorf("events recorded/dropped = %d/%d, want %d/%d",
			s.EventsRecorded, s.EventsDropped, n*100, n*(100-32))
	}
	for src := 0; src < n; src++ {
		dst := (src + 1) % n
		if s.CommCount[src][dst] != 100 || s.CommBytes[src][dst] != 800 {
			t.Errorf("comm[%d][%d] = %d ops/%d bytes, want 100/800",
				src, dst, s.CommCount[src][dst], s.CommBytes[src][dst])
		}
		if s.CommCount[src][src] != 0 {
			t.Errorf("comm[%d][%d] nonzero", src, src)
		}
	}
}

func TestChromeTraceValidJSON(t *testing.T) {
	w := sim.NewWorld(2)
	ow := Enable(w, 16)
	ow.Shard(0).Record(LayerFabric, OpInject, 1, 64, 3, 100, 250)
	ow.Shard(1).Record(LayerMPI, OpFlushAll, -1, 0, 2, 400, 900)
	var buf bytes.Buffer
	if err := ow.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Name string         `json:"name"`
			Cat  string         `json:"cat"`
			Ph   string         `json:"ph"`
			Ts   float64        `json:"ts"`
			Dur  float64        `json:"dur"`
			Tid  int            `json:"tid"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("export is not valid JSON: %v", err)
	}
	var meta, complete int
	for _, e := range doc.TraceEvents {
		switch e.Ph {
		case "M":
			meta++
		case "X":
			complete++
			if e.Ts < 0 || e.Dur < 0 {
				t.Errorf("negative ts/dur: %+v", e)
			}
		default:
			t.Errorf("unexpected phase %q", e.Ph)
		}
	}
	if meta != 2 {
		t.Errorf("thread_name metadata events = %d, want 2", meta)
	}
	if complete != 2 {
		t.Errorf("complete events = %d, want 2", complete)
	}
	for _, e := range doc.TraceEvents {
		if e.Ph == "X" && e.Cat == "fabric" {
			if e.Name != "inject" || e.Ts != 0.1 || e.Dur != 0.15 {
				t.Errorf("fabric event wrong (ns→µs conversion?): %+v", e)
			}
			if peer, ok := e.Args["peer"].(float64); !ok || peer != 1 {
				t.Errorf("fabric event peer arg = %v", e.Args["peer"])
			}
		}
		if e.Ph == "X" && e.Cat == "mpi" {
			if _, ok := e.Args["peer"]; ok {
				t.Error("peer arg present for peer=-1 event")
			}
		}
	}
}

func TestSnapshotTextAndJSON(t *testing.T) {
	w := sim.NewWorld(2)
	ow := Enable(w, 8)
	ow.Shard(0).Add(CtrFlushAllScannedOps, 12)
	ow.Shard(1).Add(CtrFlushAllScannedOps, 30)
	ow.Shard(0).Max(CtrUnexpectedDepthMax, 3)
	ow.Shard(1).Max(CtrUnexpectedDepthMax, 9)
	s := ow.Snapshot()
	if s.Counters["flushall_scanned_ops"] != 42 {
		t.Errorf("summed counter = %d, want 42", s.Counters["flushall_scanned_ops"])
	}
	if s.Counters["unexpected_queue_max"] != 9 {
		t.Errorf("gauge = %d, want 9", s.Counters["unexpected_queue_max"])
	}
	txt := s.Text()
	if !bytes.Contains([]byte(txt), []byte("flushall_scanned_ops")) {
		t.Errorf("Text missing counter:\n%s", txt)
	}
	mtx := s.CommMatrixText()
	if !bytes.Contains([]byte(mtx), []byte("comm matrix: ops")) {
		t.Errorf("CommMatrixText missing header:\n%s", mtx)
	}
	js, err := s.JSON()
	if err != nil {
		t.Fatal(err)
	}
	var back Snapshot
	if err := json.Unmarshal(js, &back); err != nil {
		t.Fatalf("snapshot JSON round-trip: %v", err)
	}
	if back.Counters["flushall_scanned_ops"] != 42 {
		t.Error("JSON round-trip lost counter value")
	}
}

func TestNames(t *testing.T) {
	if int(numCounters) != len(counterNames) {
		t.Fatalf("counterNames has %d entries for %d counters", len(counterNames), int(numCounters))
	}
	if int(numOps) != len(opNames) {
		t.Fatalf("opNames has %d entries for %d ops", len(opNames), int(numOps))
	}
	if int(numLayers) != len(layerNames) {
		t.Fatalf("layerNames has %d entries for %d layers", len(layerNames), int(numLayers))
	}
	if CtrFlushAllScannedOps.String() != "flushall_scanned_ops" {
		t.Error("counter name mismatch")
	}
	if OpRendezvousMatch.String() != "rdv_match" || LayerSubstrate.String() != "substrate" {
		t.Error("op/layer name mismatch")
	}
	if !CtrPendingRMAMax.IsGauge() || CtrMsgsSent.IsGauge() {
		t.Error("IsGauge wrong")
	}
}

// BenchmarkDisabledShardOps pins the zero-overhead-when-disabled claim: all
// recording methods on a nil shard must not allocate.
func BenchmarkDisabledShardOps(b *testing.B) {
	var s *Shard
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s.Record(LayerFabric, OpInject, 1, 64, 0, 0, 10)
		s.Add(CtrMsgsSent, 1)
		s.Max(CtrPendingRMAMax, 4)
		s.CommAdd(1, 64)
	}
}

// populateSynthetic fills a 2-image registry with a fixed set of events,
// counters, edges, and matrix entries, for the determinism test below.
func populateSynthetic(ow *World) {
	s0, s1 := ow.Shard(0), ow.Shard(1)
	s0.Record(LayerFabric, OpInject, 1, 64, 3, 100, 250)
	s0.Record(LayerMPI, OpFlushAll, -1, 0, 2, 400, 900)
	// Two events at the same virtual time exercise the sort tie-breaks.
	s0.Record(LayerMPI, OpFlush, 1, 0, 0, 400, 900)
	s1.Record(LayerFabric, OpDeliver, 0, 64, 3, 300, 380)
	s1.Record(LayerRuntime, OpEventWait, 0, 0, 1, 300, 380)
	s0.Add(CtrMsgsSent, 2)
	s1.Add(CtrMsgsRecv, 2)
	s0.Max(CtrPendingRMAMax, 7)
	s0.CommAdd(1, 64)
	s1.CommAdd(0, 32)
	e := Edge{Layer: LayerFabric, Op: OpDeliver, Peer: 0, Jump: true, SrcT: 250, Start: 300, End: 380}
	e.AddComp(CompLatency, 80)
	s1.RecordEdge(e)
}

// TestDeterministicExports: two identically-populated registries must
// produce byte-identical text, JSON, and Chrome-trace exports — including
// flow overlays — so that diffing two runs of the same workload is
// meaningful (the bench gate and CI artifacts rely on this).
func TestDeterministicExports(t *testing.T) {
	render := func() (string, string, string, []byte, []byte) {
		ow := Enable(sim.NewWorld(2), 32)
		populateSynthetic(ow)
		snap := ow.Snapshot()
		js, err := snap.JSON()
		if err != nil {
			t.Fatal(err)
		}
		flows := []FlowEvent{
			{ID: 1, Image: 0, T: 250, Start: true},
			{ID: 1, Image: 1, T: 380, Start: false},
		}
		var tr bytes.Buffer
		if err := ow.WriteChromeTraceFlows(&tr, flows); err != nil {
			t.Fatal(err)
		}
		return snap.Text(), snap.CommMatrixText(), snap.LatencyText(), js, tr.Bytes()
	}
	t1, m1, l1, j1, c1 := render()
	t2, m2, l2, j2, c2 := render()
	if t1 != t2 {
		t.Error("counter text not byte-identical")
	}
	if m1 != m2 {
		t.Error("comm matrix text not byte-identical")
	}
	if l1 != l2 {
		t.Error("latency text not byte-identical")
	}
	if !bytes.Equal(j1, j2) {
		t.Error("snapshot JSON not byte-identical")
	}
	if !bytes.Equal(c1, c2) {
		t.Error("chrome trace not byte-identical")
	}
	// Flow endpoints survive the export as s/f phase pairs.
	if !bytes.Contains(c1, []byte(`"ph":"s"`)) || !bytes.Contains(c1, []byte(`"ph":"f"`)) {
		t.Errorf("flow endpoints missing from trace:\n%s", c1)
	}
}

// TestEdgeRingAndHist covers the edge ring accessors and per-class
// histogram feeding on a live shard.
func TestEdgeRingAndHist(t *testing.T) {
	ow := Enable(sim.NewWorld(1), 16)
	sh := ow.Shard(0)
	for i := 0; i < 5; i++ {
		e := Edge{Layer: LayerFabric, Op: OpInject, Start: int64(i * 10), End: int64(i*10 + 7)}
		e.AddComp(CompOverhead, 7)
		sh.RecordEdge(e)
		sh.Record(LayerFabric, OpInject, 1, 8, 0, int64(i*10), int64(i*10+7))
	}
	if sh.EdgesRecorded() != 5 || sh.EdgesDropped() != 0 {
		t.Fatalf("edges recorded %d dropped %d", sh.EdgesRecorded(), sh.EdgesDropped())
	}
	edges := sh.Edges()
	if len(edges) != 5 || edges[0].Start != 0 || edges[4].End != 47 {
		t.Fatalf("Edges() wrong: %+v", edges)
	}
	h := sh.Hist(LayerFabric, OpInject)
	if h.Count() != 5 || h.Max() != 7 {
		t.Fatalf("hist fed wrong: count %d max %d", h.Count(), h.Max())
	}
	snap := ow.Snapshot()
	if len(snap.Latency) != 1 || snap.Latency[0].Class != "fabric/inject" || snap.Latency[0].P50 != 7 {
		t.Fatalf("latency stats wrong: %+v", snap.Latency)
	}
	if snap.EdgesRecorded != 5 {
		t.Fatalf("snapshot edges = %d", snap.EdgesRecorded)
	}
}

// TestEdgeAddComp pins the merge/skip/overflow semantics of the per-edge
// component decomposition.
func TestEdgeAddComp(t *testing.T) {
	var e Edge
	e.AddComp(CompLatency, 10)
	e.AddComp(CompLatency, 5) // merges
	e.AddComp(CompGap, 0)     // dropped
	e.AddComp(CompGap, -3)    // dropped
	if e.NComps != 1 || e.Comps[0].NS != 15 || e.Comps[0].C != CompLatency {
		t.Fatalf("merge wrong: %+v", e)
	}
	for c := CompOverhead; int(e.NComps) < MaxEdgeComps; c++ {
		e.AddComp(c, 1)
	}
	e.AddComp(CompEventWait, 99) // overflow: silently dropped
	if int(e.NComps) != MaxEdgeComps {
		t.Fatalf("overflow grew NComps: %d", e.NComps)
	}
}
