// Exporters: the merged stats snapshot (aligned text + JSON) and the Chrome
// trace-event / Perfetto timeline keyed by virtual time.
package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"
)

// Snapshot is the merged, read-only view of a World's shards, taken after
// sim.World.Run has returned. Counters are summed across images; gauges keep
// the maximum. The communication matrix is indexed [src][dst].
type Snapshot struct {
	Images         int                `json:"images"`
	EventsRecorded uint64             `json:"events_recorded"`
	EventsDropped  uint64             `json:"events_dropped"`
	Counters       map[string]int64   `json:"counters"`
	CommCount      [][]int64          `json:"comm_count"`
	CommBytes      [][]int64          `json:"comm_bytes"`
	PerImage       []map[string]int64 `json:"per_image,omitempty"`
}

// Snapshot merges all shards into a Snapshot. Call only after the world's
// Run has returned (the run's WaitGroup provides the happens-before edge).
func (w *World) Snapshot() *Snapshot {
	if w == nil {
		return nil
	}
	s := &Snapshot{
		Images:    w.n,
		Counters:  make(map[string]int64, int(numCounters)),
		CommCount: make([][]int64, w.n),
		CommBytes: make([][]int64, w.n),
	}
	for _, c := range Counters() {
		s.Counters[c.String()] = 0
	}
	for i, sh := range w.shards {
		s.EventsRecorded += sh.Recorded()
		s.EventsDropped += sh.Dropped()
		s.CommCount[i] = append([]int64(nil), sh.matCount...)
		s.CommBytes[i] = append([]int64(nil), sh.matBytes...)
		for _, c := range Counters() {
			v := sh.counters[c]
			if c.IsGauge() {
				if v > s.Counters[c.String()] {
					s.Counters[c.String()] = v
				}
			} else {
				s.Counters[c.String()] += v
			}
		}
	}
	return s
}

// Text renders the counter registry as an aligned table, nonzero entries
// first in declaration order, zero entries summarized.
func (s *Snapshot) Text() string {
	if s == nil {
		return "(observability disabled)\n"
	}
	var b strings.Builder
	fmt.Fprintf(&b, "images: %d   events: %d recorded, %d dropped\n",
		s.Images, s.EventsRecorded, s.EventsDropped)
	fmt.Fprintf(&b, "%-24s %14s\n", "counter", "value")
	zeros := 0
	for _, c := range Counters() {
		v := s.Counters[c.String()]
		if v == 0 {
			zeros++
			continue
		}
		kind := ""
		if c.IsGauge() {
			kind = "  (max)"
		}
		fmt.Fprintf(&b, "%-24s %14d%s\n", c.String(), v, kind)
	}
	if zeros > 0 {
		fmt.Fprintf(&b, "(%d counters at zero omitted)\n", zeros)
	}
	return b.String()
}

// CommMatrixText renders the N×N communication matrix (operation counts,
// with a bytes matrix below) as aligned text. Rows are sources, columns
// destinations.
func (s *Snapshot) CommMatrixText() string {
	if s == nil {
		return "(observability disabled)\n"
	}
	var b strings.Builder
	render := func(title string, m [][]int64) {
		fmt.Fprintf(&b, "%s (rows: src, cols: dst)\n", title)
		fmt.Fprintf(&b, "%6s", "")
		for d := 0; d < s.Images; d++ {
			fmt.Fprintf(&b, " %10d", d)
		}
		b.WriteByte('\n')
		for src, row := range m {
			fmt.Fprintf(&b, "%6d", src)
			for _, v := range row {
				fmt.Fprintf(&b, " %10d", v)
			}
			b.WriteByte('\n')
		}
	}
	render("comm matrix: ops", s.CommCount)
	render("comm matrix: bytes", s.CommBytes)
	return b.String()
}

// JSON renders the snapshot as indented JSON.
func (s *Snapshot) JSON() ([]byte, error) {
	return json.MarshalIndent(s, "", "  ")
}

// chromeEvent is one entry of the Chrome trace-event format ("X" complete
// events; ts/dur in microseconds). Perfetto and chrome://tracing both load
// the {"traceEvents": [...]} object form.
type chromeEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat"`
	Ph   string         `json:"ph"`
	Ts   float64        `json:"ts"`
	Dur  float64        `json:"dur,omitempty"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	Args map[string]any `json:"args,omitempty"`
}

// WriteChromeTrace writes the retained events of every image as Chrome
// trace-event JSON keyed by virtual time: one pid for the simulated job, one
// tid ("image N" thread) per image. Open the file in Perfetto
// (https://ui.perfetto.dev) or chrome://tracing.
func (w *World) WriteChromeTrace(out io.Writer) error {
	if w == nil {
		return fmt.Errorf("obs: observability not enabled")
	}
	evs := make([]chromeEvent, 0, 64)
	for i := 0; i < w.n; i++ {
		evs = append(evs, chromeEvent{
			Name: "thread_name", Ph: "M", Pid: 1, Tid: i,
			Args: map[string]any{"name": fmt.Sprintf("image %d", i)},
		})
	}
	for i, sh := range w.shards {
		for _, e := range sh.Events() {
			args := map[string]any{"bytes": e.Bytes, "tag": e.Tag}
			if e.Peer >= 0 {
				args["peer"] = e.Peer
			}
			evs = append(evs, chromeEvent{
				Name: e.Op.String(),
				Cat:  e.Layer.String(),
				Ph:   "X",
				Ts:   float64(e.Start) / 1e3, // virtual ns → µs
				Dur:  float64(e.End-e.Start) / 1e3,
				Pid:  1,
				Tid:  i,
				Args: args,
			})
		}
	}
	// Stable ordering (by timestamp, then tid) keeps the export deterministic
	// for tests and diffs; viewers do not require it.
	sort.SliceStable(evs, func(a, b int) bool {
		if evs[a].Ts != evs[b].Ts {
			return evs[a].Ts < evs[b].Ts
		}
		return evs[a].Tid < evs[b].Tid
	})
	enc := json.NewEncoder(out)
	return enc.Encode(map[string]any{
		"traceEvents":     evs,
		"displayTimeUnit": "ns",
	})
}
