// Exporters: the merged stats snapshot (aligned text + JSON) and the Chrome
// trace-event / Perfetto timeline keyed by virtual time.
package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"

	"cafmpi/internal/obs/hist"
)

// CommTopK bounds the per-source peer list exported above
// DenseCommThreshold images: the K heaviest destinations by byte count.
const CommTopK = 8

// CommRow summarizes one source image's communication row: aggregate
// totals plus its top-K destinations by bytes. All-zero rows are omitted
// from exports entirely, so the comm section scales with traffic, not with
// world size.
type CommRow struct {
	Src   int        `json:"src"`
	Peers int        `json:"peers"`
	Count int64      `json:"count"`
	Bytes int64      `json:"bytes"`
	Top   []PeerStat `json:"top,omitempty"`
}

// Snapshot is the merged, read-only view of a World's shards, taken after
// sim.World.Run has returned. Counters are summed across images; gauges keep
// the maximum. The dense communication matrices (indexed [src][dst]) are
// only materialized up to DenseCommThreshold images; Comm carries the
// scale-oblivious per-row summaries at every world size.
type Snapshot struct {
	Images           int                `json:"images"`
	EventsRecorded   uint64             `json:"events_recorded"`
	EventsDropped    uint64             `json:"events_dropped"`
	EdgesRecorded    uint64             `json:"edges_recorded"`
	EdgesDropped     uint64             `json:"edges_dropped"`
	ObsBytesPerImage int64              `json:"obs_bytes_per_image"`
	Counters         map[string]int64   `json:"counters"`
	Comm             []CommRow          `json:"comm,omitempty"`
	CommCount        [][]int64          `json:"comm_count,omitempty"`
	CommBytes        [][]int64          `json:"comm_bytes,omitempty"`
	Latency          []LatencyStat      `json:"latency,omitempty"`
	PerImage         []map[string]int64 `json:"per_image,omitempty"`
}

// LatencyStat is the merged latency distribution of one op class
// ("layer/op"), aggregated across images. Quantiles are HDR-bucket upper
// bounds (internal/obs/hist), deterministic for a given sample multiset.
type LatencyStat struct {
	Class string  `json:"class"`
	Count int64   `json:"count"`
	P50   int64   `json:"p50_ns"`
	P90   int64   `json:"p90_ns"`
	P99   int64   `json:"p99_ns"`
	Max   int64   `json:"max_ns"`
	Mean  float64 `json:"mean_ns"`
}

// Snapshot merges all shards into a Snapshot. Call only after the world's
// Run has returned (the run's WaitGroup provides the happens-before edge).
func (w *World) Snapshot() *Snapshot {
	if w == nil {
		return nil
	}
	s := &Snapshot{
		Images:   w.n,
		Counters: make(map[string]int64, int(numCounters)),
	}
	dense := w.n <= DenseCommThreshold
	if dense {
		s.CommCount = make([][]int64, w.n)
		s.CommBytes = make([][]int64, w.n)
	}
	for _, c := range Counters() {
		s.Counters[c.String()] = 0
	}
	for i, sh := range w.shards {
		s.EventsRecorded += sh.Recorded()
		s.EventsDropped += sh.Dropped()
		s.EdgesRecorded += sh.EdgesRecorded()
		s.EdgesDropped += sh.EdgesDropped()
		if mem := sh.MemBytes(); mem > s.ObsBytesPerImage {
			s.ObsBytesPerImage = mem
		}
		if dense {
			s.CommCount[i] = append([]int64(nil), sh.matCount...)
			s.CommBytes[i] = append([]int64(nil), sh.matBytes...)
		}
		if row := commRow(i, sh); row.Peers > 0 {
			s.Comm = append(s.Comm, row)
		}
		for _, c := range Counters() {
			v := sh.counters[c]
			if c.IsGauge() {
				if v > s.Counters[c.String()] {
					s.Counters[c.String()] = v
				}
			} else {
				s.Counters[c.String()] += v
			}
		}
	}
	if v := s.Counters[CtrObsBytesPerImage.String()]; s.ObsBytesPerImage > v {
		s.Counters[CtrObsBytesPerImage.String()] = s.ObsBytesPerImage
	}
	// Latency rows in (layer, op) declaration order: deterministic without
	// sorting by value.
	for l := Layer(0); l < numLayers; l++ {
		for op := Op(0); op < numOps; op++ {
			merged := hist.New()
			for _, sh := range w.shards {
				merged.Merge(sh.hists[l][op])
			}
			if merged.Count() == 0 {
				continue
			}
			s.Latency = append(s.Latency, LatencyStat{
				Class: l.String() + "/" + op.String(),
				Count: merged.Count(),
				P50:   merged.Quantile(0.50),
				P90:   merged.Quantile(0.90),
				P99:   merged.Quantile(0.99),
				Max:   merged.Max(),
				Mean:  merged.Mean(),
			})
		}
	}
	return s
}

// LatencyText renders the per-op-class latency distributions as an aligned
// table (virtual nanoseconds).
func (s *Snapshot) LatencyText() string {
	if s == nil {
		return "(observability disabled)\n"
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%-22s %10s %10s %10s %10s %10s %12s\n",
		"op class", "count", "p50_ns", "p90_ns", "p99_ns", "max_ns", "mean_ns")
	for _, r := range s.Latency {
		fmt.Fprintf(&b, "%-22s %10d %10d %10d %10d %10d %12.1f\n",
			r.Class, r.Count, r.P50, r.P90, r.P99, r.Max, r.Mean)
	}
	if len(s.Latency) == 0 {
		b.WriteString("(no events recorded)\n")
	}
	return b.String()
}

// Text renders the counter registry as an aligned table, nonzero entries
// first in declaration order, zero entries summarized.
func (s *Snapshot) Text() string {
	if s == nil {
		return "(observability disabled)\n"
	}
	var b strings.Builder
	fmt.Fprintf(&b, "images: %d   events: %d recorded, %d dropped\n",
		s.Images, s.EventsRecorded, s.EventsDropped)
	fmt.Fprintf(&b, "%-24s %14s\n", "counter", "value")
	zeros := 0
	for _, c := range Counters() {
		v := s.Counters[c.String()]
		if v == 0 {
			zeros++
			continue
		}
		kind := ""
		if c.IsGauge() {
			kind = "  (max)"
		}
		fmt.Fprintf(&b, "%-24s %14d%s\n", c.String(), v, kind)
	}
	if zeros > 0 {
		fmt.Fprintf(&b, "(%d counters at zero omitted)\n", zeros)
	}
	return b.String()
}

// commRow builds the bounded summary of one shard's comm row: totals over
// every peer, plus the CommTopK heaviest destinations by bytes (ties broken
// by rank for determinism).
func commRow(src int, sh *Shard) CommRow {
	entries := sh.CommEntries()
	row := CommRow{Src: src, Peers: len(entries)}
	for _, e := range entries {
		row.Count += e.Count
		row.Bytes += e.Bytes
	}
	sort.SliceStable(entries, func(i, j int) bool {
		if entries[i].Bytes != entries[j].Bytes {
			return entries[i].Bytes > entries[j].Bytes
		}
		return entries[i].Dst < entries[j].Dst
	})
	if len(entries) > CommTopK {
		entries = entries[:CommTopK]
	}
	row.Top = entries
	return row
}

// CommMatrixText renders the communication matrix as aligned text. Up to
// DenseCommThreshold images it is the familiar full N×N dump (rows are
// sources, columns destinations, zero rows skipped); beyond that it is one
// summary line per active source with its top-K destinations, so the output
// is bounded by traffic rather than by P².
func (s *Snapshot) CommMatrixText() string {
	if s == nil {
		return "(observability disabled)\n"
	}
	var b strings.Builder
	if s.CommCount != nil {
		render := func(title string, m [][]int64) {
			fmt.Fprintf(&b, "%s (rows: src, cols: dst; zero rows skipped)\n", title)
			fmt.Fprintf(&b, "%6s", "")
			for d := 0; d < s.Images; d++ {
				fmt.Fprintf(&b, " %10d", d)
			}
			b.WriteByte('\n')
			skipped := 0
			for src, row := range m {
				zero := true
				for _, v := range row {
					if v != 0 {
						zero = false
						break
					}
				}
				if zero {
					skipped++
					continue
				}
				fmt.Fprintf(&b, "%6d", src)
				for _, v := range row {
					fmt.Fprintf(&b, " %10d", v)
				}
				b.WriteByte('\n')
			}
			if skipped > 0 {
				fmt.Fprintf(&b, "(%d all-zero rows skipped)\n", skipped)
			}
		}
		render("comm matrix: ops", s.CommCount)
		render("comm matrix: bytes", s.CommBytes)
		return b.String()
	}
	fmt.Fprintf(&b, "comm summary: %d images, %d active sources (top-%d peers per source)\n",
		s.Images, len(s.Comm), CommTopK)
	for _, row := range s.Comm {
		fmt.Fprintf(&b, "%6d  peers=%-6d ops=%-10d bytes=%-12d top:", row.Src, row.Peers, row.Count, row.Bytes)
		for _, p := range row.Top {
			fmt.Fprintf(&b, " %d(%d ops,%dB)", p.Dst, p.Count, p.Bytes)
		}
		b.WriteByte('\n')
	}
	if len(s.Comm) == 0 {
		b.WriteString("(no communication recorded)\n")
	}
	return b.String()
}

// JSON renders the snapshot as indented JSON.
func (s *Snapshot) JSON() ([]byte, error) {
	return json.MarshalIndent(s, "", "  ")
}

// chromeEvent is one entry of the Chrome trace-event format ("X" complete
// events; ts/dur in microseconds). Perfetto and chrome://tracing both load
// the {"traceEvents": [...]} object form.
type chromeEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat"`
	Ph   string         `json:"ph"`
	Ts   float64        `json:"ts"`
	Dur  float64        `json:"dur,omitempty"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	ID   string         `json:"id,omitempty"`
	Bp   string         `json:"bp,omitempty"`
	Args map[string]any `json:"args,omitempty"`
}

// FlowEvent is one endpoint of a Perfetto flow arrow overlaid on the trace
// (the critical-path profiler emits one flow per cross-image hop). Start
// marks the flow origin ("s"); otherwise it is the flow end ("f").
type FlowEvent struct {
	ID    int
	Image int
	T     int64 // virtual ns
	Start bool
	Name  string
}

// WriteChromeTrace writes the retained events of every image as Chrome
// trace-event JSON keyed by virtual time: one pid for the simulated job, one
// tid ("image N" thread) per image. Open the file in Perfetto
// (https://ui.perfetto.dev) or chrome://tracing.
func (w *World) WriteChromeTrace(out io.Writer) error {
	return w.WriteChromeTraceFlows(out, nil)
}

// WriteChromeTraceFlows is WriteChromeTrace with flow arrows overlaid —
// Perfetto renders each (ID-matched "s"/"f" pair) as an arrow between the
// two images' timelines.
func (w *World) WriteChromeTraceFlows(out io.Writer, flows []FlowEvent) error {
	if w == nil {
		return fmt.Errorf("obs: observability not enabled")
	}
	evs := make([]chromeEvent, 0, 64)
	for i := 0; i < w.n; i++ {
		evs = append(evs, chromeEvent{
			Name: "thread_name", Ph: "M", Pid: 1, Tid: i,
			Args: map[string]any{"name": fmt.Sprintf("image %d", i)},
		})
	}
	for i, sh := range w.shards {
		for _, e := range sh.Events() {
			args := map[string]any{"bytes": e.Bytes, "tag": e.Tag}
			if e.Peer >= 0 {
				args["peer"] = e.Peer
			}
			evs = append(evs, chromeEvent{
				Name: e.Op.String(),
				Cat:  e.Layer.String(),
				Ph:   "X",
				Ts:   float64(e.Start) / 1e3, // virtual ns → µs
				Dur:  float64(e.End-e.Start) / 1e3,
				Pid:  1,
				Tid:  i,
				Args: args,
			})
		}
	}
	for _, f := range flows {
		ph, bp := "s", ""
		if !f.Start {
			ph, bp = "f", "e"
		}
		name := f.Name
		if name == "" {
			name = "critpath"
		}
		evs = append(evs, chromeEvent{
			Name: name, Cat: "critpath", Ph: ph,
			Ts: float64(f.T) / 1e3, Pid: 1, Tid: f.Image,
			ID: fmt.Sprintf("%d", f.ID), Bp: bp,
		})
	}
	// Fully-ordered sort (timestamp, image, phase, name, duration, flow id)
	// keeps the export byte-deterministic for a given set of events, so two
	// identical runs diff cleanly; viewers do not require any ordering.
	sort.SliceStable(evs, func(a, b int) bool {
		ea, eb := &evs[a], &evs[b]
		if ea.Ts != eb.Ts {
			return ea.Ts < eb.Ts
		}
		if ea.Tid != eb.Tid {
			return ea.Tid < eb.Tid
		}
		if ea.Ph != eb.Ph {
			return ea.Ph < eb.Ph
		}
		if ea.Name != eb.Name {
			return ea.Name < eb.Name
		}
		if ea.Dur != eb.Dur {
			return ea.Dur < eb.Dur
		}
		return ea.ID < eb.ID
	})
	enc := json.NewEncoder(out)
	return enc.Encode(map[string]any{
		"traceEvents":     evs,
		"displayTimeUnit": "ns",
	})
}
