package wallprof

import (
	"strings"
	"testing"

	"cafmpi/internal/sim"
)

func TestDisabledIsNilSafe(t *testing.T) {
	w := sim.NewWorld(4)
	if Enabled(w) != nil {
		t.Fatal("Enabled before Enable should be nil")
	}
	var r *Rec
	if got := r.Begin(SiteFabricInject); got != 0 {
		t.Fatalf("nil Rec Begin = %d, want 0", got)
	}
	r.End(SiteFabricInject, 0) // must not panic
	var ww *World
	ww.Finish()
	if ww.Rec(0) != nil || ww.N() != 0 {
		t.Fatal("nil World accessors should zero out")
	}
	if ww.Analyze(nil, 0) != nil {
		t.Fatal("nil World Analyze should be nil")
	}
}

func TestSamplingAccountsTime(t *testing.T) {
	w := sim.NewWorld(2)
	ww := Enable(w)
	if Enabled(w) != ww {
		t.Fatal("Enabled should find the registry Enable created")
	}
	r := ww.Rec(0)
	// Drive SampleEvery*8 sections; exactly 8 should sample.
	for i := 0; i < SampleEvery*8; i++ {
		t0 := r.Begin(SiteMPIFlush)
		for j := 0; j < 100; j++ {
			_ = j * j
		}
		r.End(SiteMPIFlush, t0)
	}
	a := r.sites[SiteMPIFlush]
	if a.ops != SampleEvery*8 {
		t.Fatalf("ops = %d, want %d", a.ops, SampleEvery*8)
	}
	if a.sampled != 8 {
		t.Fatalf("sampled = %d, want 8", a.sampled)
	}
	if a.ns < 0 {
		t.Fatalf("negative accumulated ns: %d", a.ns)
	}
}

func TestAnalyzeRanksAndAttributes(t *testing.T) {
	w := sim.NewWorld(2)
	ww := Enable(w)
	r := ww.Rec(1)
	for i := 0; i < SampleEvery*4; i++ {
		t0 := r.Begin(SiteFabricAbsorb)
		r.End(SiteFabricAbsorb, t0)
	}
	virt := map[string]int64{"match": 500, "compute": 1500}
	rep := ww.Analyze(virt, 1000) // finish is implied
	if rep == nil {
		t.Fatal("nil report")
	}
	if len(rep.Rows) != NumSites {
		t.Fatalf("rows = %d, want %d", len(rep.Rows), NumSites)
	}
	if rep.Attributed < 0.90 {
		t.Fatalf("attributed = %v, want >= 0.90", rep.Attributed)
	}
	// Divergence ranking must be monotone non-increasing.
	for i := 1; i < len(rep.Rows); i++ {
		if rep.Rows[i].Divergence > rep.Rows[i-1].Divergence {
			t.Fatalf("rows not ranked by divergence: %v", rep.Rows)
		}
	}
	// Sum of wall shares covers the whole run (residual closes the gap).
	var sum float64
	seen := map[string]bool{}
	for _, row := range rep.Rows {
		sum += row.WallShare
		seen[row.Component] = true
	}
	if sum < 0.999 || sum > 1.001 {
		t.Fatalf("wall shares sum to %v, want 1", sum)
	}
	for s := Site(0); s < numSites; s++ {
		if !seen[s.String()] {
			t.Fatalf("component %s missing from report", s)
		}
	}
	// match appears in virt, mapped to fabric/absorb: per-image share is
	// 500 / 1000 / 2 images = 0.25.
	for _, row := range rep.Rows {
		if row.Component == SiteFabricAbsorb.String() && row.VirtShare != 0.25 {
			t.Fatalf("fabric/absorb virt share = %v, want 0.25", row.VirtShare)
		}
	}
	txt := rep.Text()
	for _, want := range []string{"attributed", "component", "divergence"} {
		if !strings.Contains(txt, want) {
			t.Fatalf("report text missing %q:\n%s", want, txt)
		}
	}
	if ww.Host().GOMAXPROCS < 1 {
		t.Fatalf("host stats not populated: %+v", ww.Host())
	}
}

func TestLabelImageAndContentionToggles(t *testing.T) {
	w := sim.NewWorld(1)
	Enable(w)
	err := w.Run(func(p *sim.Proc) error {
		LabelImage(p)
		r := For(p)
		if r == nil {
			t.Error("For returned nil with wallprof enabled")
		}
		// A sampled section must restore the base label context.
		for i := 0; i < SampleEvery; i++ {
			t0 := r.Begin(SiteGASNetAM)
			r.End(SiteGASNetAM, t0)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	restore := EnableContention()
	restore()
}
