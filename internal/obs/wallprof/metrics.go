package wallprof

import (
	"math"
	"runtime"
	"runtime/metrics"
	"sync"
	"time"
)

// HostStats is the run's Go-runtime health summary: how much host time the
// collector stole, how long runnable goroutines waited for a P, and how
// wide the goroutine population got. All values are deltas/extrema over
// the Enable→Finish window.
type HostStats struct {
	WallNS        int64 `json:"wall_ns"`         // Enable→Finish host span
	GCPauseNS     int64 `json:"gc_pause_ns"`     // summed stop-the-world pauses
	NumGC         int64 `json:"num_gc"`          // completed GC cycles
	SchedLatP50NS int64 `json:"sched_lat_p50_ns"` // median runnable-wait
	SchedLatP99NS int64 `json:"sched_lat_p99_ns"` // tail runnable-wait
	GoroutineMax  int64 `json:"goroutines_max"`  // peak live goroutines
	GOMAXPROCS    int   `json:"gomaxprocs"`
}

const (
	metricSchedLat   = "/sched/latencies:seconds"
	metricGoroutines = "/sched/goroutines:goroutines"
)

// hostSampler snapshots runtime/metrics at Enable, polls the goroutine
// count on a coarse host ticker while the run executes, and computes
// deltas at stop. The ticker goroutine touches no simulation state.
type hostSampler struct {
	startMem   runtime.MemStats
	startSched metrics.Float64Histogram

	mu     sync.Mutex
	goroMax int64
	quit   chan struct{}
	wg     sync.WaitGroup
	once   sync.Once
	out    HostStats
}

func readSchedHist() metrics.Float64Histogram {
	s := []metrics.Sample{{Name: metricSchedLat}}
	metrics.Read(s)
	if s[0].Value.Kind() != metrics.KindFloat64Histogram {
		return metrics.Float64Histogram{}
	}
	h := s[0].Value.Float64Histogram()
	// Copy: the runtime may reuse the backing arrays on the next Read.
	cp := metrics.Float64Histogram{
		Counts:  append([]uint64(nil), h.Counts...),
		Buckets: append([]float64(nil), h.Buckets...),
	}
	return cp
}

func readGoroutines() int64 {
	s := []metrics.Sample{{Name: metricGoroutines}}
	metrics.Read(s)
	if s[0].Value.Kind() != metrics.KindUint64 {
		return 0
	}
	return int64(s[0].Value.Uint64())
}

func startHostSampler() *hostSampler {
	hs := &hostSampler{quit: make(chan struct{})}
	runtime.ReadMemStats(&hs.startMem)
	hs.startSched = readSchedHist()
	hs.goroMax = readGoroutines()
	hs.wg.Add(1)
	go func() {
		defer hs.wg.Done()
		tick := time.NewTicker(10 * time.Millisecond) //caflint:allow wallclock -- host sampler cadence, outside simulation
		defer tick.Stop()
		for {
			select {
			case <-hs.quit:
				return
			case <-tick.C:
				g := readGoroutines()
				hs.mu.Lock()
				if g > hs.goroMax {
					hs.goroMax = g
				}
				hs.mu.Unlock()
			}
		}
	}()
	return hs
}

// stop halts the poller and returns the window's deltas. Idempotent.
func (hs *hostSampler) stop() HostStats {
	if hs == nil {
		return HostStats{}
	}
	hs.once.Do(func() {
		close(hs.quit)
		hs.wg.Wait()
		if g := readGoroutines(); g > hs.goroMax {
			hs.goroMax = g
		}
		var end runtime.MemStats
		runtime.ReadMemStats(&end)
		endSched := readSchedHist()
		p50, p99 := histDeltaPercentiles(hs.startSched, endSched, 0.50, 0.99)
		hs.out = HostStats{
			GCPauseNS:     int64(end.PauseTotalNs - hs.startMem.PauseTotalNs),
			NumGC:         int64(end.NumGC - hs.startMem.NumGC),
			SchedLatP50NS: p50,
			SchedLatP99NS: p99,
			GoroutineMax:  hs.goroMax,
			GOMAXPROCS:    runtime.GOMAXPROCS(0),
		}
	})
	return hs.out
}

// histDeltaPercentiles computes percentiles over the events that landed
// between two cumulative Float64Histogram snapshots. Buckets has one more
// entry than Counts (bucket i spans [Buckets[i], Buckets[i+1])); the
// reported value is the bucket's finite upper bound in nanoseconds, which
// over-reports by at most one bucket width — fine for a health gauge.
func histDeltaPercentiles(start, end metrics.Float64Histogram, qs ...float64) (int64, int64) {
	if len(end.Counts) == 0 || len(end.Buckets) != len(end.Counts)+1 {
		return 0, 0
	}
	delta := make([]uint64, len(end.Counts))
	var total uint64
	for i := range delta {
		d := end.Counts[i]
		if i < len(start.Counts) && start.Counts[i] <= d {
			d -= start.Counts[i]
		}
		delta[i] = d
		total += d
	}
	if total == 0 {
		return 0, 0
	}
	vals := make([]int64, len(qs))
	for qi, q := range qs {
		target := uint64(float64(total) * q)
		var cum uint64
		for i, d := range delta {
			cum += d
			if cum > target {
				ub := end.Buckets[i+1]
				if math.IsInf(ub, 1) {
					ub = end.Buckets[i] // +Inf bucket: fall back to its lower bound
				}
				vals[qi] = int64(ub * 1e9)
				break
			}
		}
	}
	return vals[0], vals[1]
}
