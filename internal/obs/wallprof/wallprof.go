// Package wallprof is the wall-clock performance plane: the host-time
// mirror of the virtual-time critpath profiler. The obs/critpath stack
// answers "where does the *simulated machine* spend its time"; wallprof
// answers "where does the *simulator process* spend the host's time" — the
// question ROADMAP item 2 (parallel fabric sharding) needs answered before
// any host-side optimization round.
//
// Design, mirroring obs's nil-safety contract:
//
//   - Enable creates one world-wide registry (found again by Enabled); when
//     profiling is off every handle is nil and every method on a nil
//     receiver returns immediately, so instrumented hot paths cost a
//     pointer compare.
//   - Each image records into its own *Rec, written only from the image's
//     goroutine — the same ownership discipline as obs.Shard and the
//     virtual clock. Recs are merged (read) only after sim.World.Run
//     returns.
//   - Timers are sampled: a site counts every operation but reads the host
//     clock for one in SampleEvery of them, scaling the measured span back
//     up at report time. The un-sampled fast path is two integer ops, so
//     profiling never perturbs what it measures by more than the sampling
//     duty cycle.
//   - Sampled sections also swap the goroutine's pprof label set to the
//     site's op class (restored on End), so CPU/mutex/block profiles taken
//     while wallprof is on decompose by component and image rank.
//
// This package is the ONE sanctioned home for host-clock reads in
// simulation code: every time.* call below carries a //caflint:allow
// wallclock annotation, and the wallclock analyzer pass still fails the
// build on any un-annotated read added here later. Virtual clocks are
// untouched — wallprof is clock-pure by construction (it never calls
// sim.Proc.Advance), so goldens are bit-exact with it on or off.
package wallprof

import (
	"context"
	"runtime"
	"runtime/pprof"
	"strconv"
	"time"

	"cafmpi/internal/obs"
	"cafmpi/internal/sim"
)

// Site identifies one instrumented host-time section. Sites are chosen to
// be (close to) non-overlapping so their scaled spans can be subtracted
// from the run's total to form the "app/other" residual.
type Site uint8

// Sites.
const (
	// SiteFabricInject covers fabric Layer.Send: message staging, fault
	// verdicts, NIC claims, the Inject ring push or direct enqueue (the
	// sender-side hot path).
	SiteFabricInject Site = iota
	// SiteFabricAbsorb covers fabric Layer.absorb: match bookkeeping,
	// rendezvous completion, edge recording (the receiver-side hot path).
	SiteFabricAbsorb
	// SiteMPIFlush covers the MPI epoch flush family: Flush, FlushAll,
	// RflushAll, LockAll scan/blame sequences.
	SiteMPIFlush
	// SiteGASNetAM covers GASNet AM handler execution after absorption.
	SiteGASNetAM
	// SiteSanitizer covers sanitizer shadow-cell access checks (the
	// dominant sanitizer cost; clock merges ride the same lock).
	SiteSanitizer
	// SiteFabricDrain covers batched inject-ring drains: host time a shard
	// owner spends moving cross-shard deliveries from its inject ring into
	// the match queues. Pure simulator overhead of the sharded delivery
	// engine — it has no virtual counterpart by design.
	SiteFabricDrain
	// SiteApp is the residual: host time not inside any measured site
	// (application compute, scheduler waits, runtime bookkeeping). It is
	// never measured directly — the report derives it by subtraction.
	SiteApp
	numSites
)

var siteNames = [...]string{
	"fabric/inject", "fabric/absorb", "mpi/flush", "gasnet/am",
	"sanitizer", "fabric/drain", "app/other",
}

func (s Site) String() string {
	if int(s) >= len(siteNames) {
		return "Site(" + strconv.Itoa(int(s)) + ")"
	}
	return siteNames[s]
}

// NumSites is the number of named sites (including the residual).
const NumSites = int(numSites)

// SampleEvery is the sampling duty cycle: one operation in SampleEvery per
// site reads the host clock; the other SampleEvery-1 pay two integer ops.
const SampleEvery = 64

const worldKey = "obs.wallprof"

// base anchors every host-time reading; samples are monotonic offsets from
// process start, so arithmetic on them never sees wall-clock adjustments.
var base = time.Now() //caflint:allow wallclock -- wallprof is the sanctioned host-time measurement plane

// nowNS reads the monotonic host clock. Package-private: all host-time
// measurement funnels through here.
func nowNS() int64 {
	return int64(time.Since(base)) //caflint:allow wallclock -- sampled host timer read
}

// siteAcc is one site's accumulator: every op counted, one in SampleEvery
// timed.
type siteAcc struct {
	ops     uint64 // operations seen
	sampled uint64 // operations timed
	ns      int64  // summed host ns over the sampled operations
}

// Rec is one image's host-time recorder. All methods are nil-safe; non-nil
// Recs must only be used from the owning image's goroutine.
type Rec struct {
	sites   [numSites]siteAcc
	baseCtx context.Context // goroutine's resting pprof label set
	siteCtx [numSites]context.Context
}

// Begin marks the start of a site section. It returns 0 when this
// occurrence is not sampled (or the recorder is nil); pass the result to
// End unconditionally — End is a no-op on 0.
func (r *Rec) Begin(s Site) int64 {
	if r == nil {
		return 0
	}
	a := &r.sites[s]
	a.ops++
	if a.ops%SampleEvery != 0 {
		return 0
	}
	if c := r.siteCtx[s]; c != nil {
		// Sampled section: tag the goroutine with the op class so a
		// concurrent CPU/mutex/block profile decomposes by component.
		pprof.SetGoroutineLabels(c)
	}
	t := nowNS()
	if t <= 0 {
		t = 1
	}
	return t
}

// End closes a sampled section opened by Begin.
func (r *Rec) End(s Site, t0 int64) {
	if r == nil || t0 == 0 {
		return
	}
	a := &r.sites[s]
	a.sampled++
	if d := nowNS() - t0; d > 0 {
		a.ns += d
	}
	if r.baseCtx != nil {
		pprof.SetGoroutineLabels(r.baseCtx)
	}
}

// World is the per-sim.World wallprof registry: one recorder per image plus
// the runtime/metrics host sampler.
type World struct {
	n       int
	recs    []*Rec
	startNS int64
	sampler *hostSampler
	host    HostStats
	done    bool
}

// Enable returns the world's wallprof registry, creating it on first call.
// Like obs.Enable it must run before the instrumented layers attach
// (core.Boot enables it before constructing the substrate), so layers can
// cache their recorder once. Creating the registry also starts the
// runtime/metrics host sampler; Finish stops it.
func Enable(w *sim.World) *World {
	return w.Shared(worldKey, func() any {
		ww := &World{n: w.N(), recs: make([]*Rec, w.N()), startNS: nowNS()}
		for i := range ww.recs {
			ww.recs[i] = &Rec{}
		}
		ww.sampler = startHostSampler()
		return ww
	}).(*World)
}

// Enabled returns the world's registry if Enable was ever called, else nil.
func Enabled(w *sim.World) *World {
	if w == nil {
		return nil
	}
	if v, ok := w.Peek(worldKey); ok {
		return v.(*World)
	}
	return nil
}

// For returns image p's recorder, or nil when wallprof is off.
func For(p *sim.Proc) *Rec {
	return Enabled(p.World()).Rec(p.ID())
}

// Rec returns image i's recorder (nil on a nil registry).
func (ww *World) Rec(i int) *Rec {
	if ww == nil {
		return nil
	}
	return ww.recs[i]
}

// N returns the world size (0 on a nil registry).
func (ww *World) N() int {
	if ww == nil {
		return 0
	}
	return ww.n
}

// LabelImage tags the calling goroutine — which must be image p's — with
// its pprof identity (caf_image rank) and prebuilds the per-site op-class
// label sets Begin/End swap in around sampled sections. Host profiles
// (CPU, mutex, block) taken while the job runs then decompose by image and
// component.
func LabelImage(p *sim.Proc) {
	ww := Enabled(p.World())
	if ww == nil {
		return
	}
	r := ww.recs[p.ID()]
	ctx := pprof.WithLabels(context.Background(),
		pprof.Labels("caf_image", strconv.Itoa(p.ID())))
	r.baseCtx = ctx
	for s := Site(0); s < numSites; s++ {
		r.siteCtx[s] = pprof.WithLabels(ctx, pprof.Labels("caf_op", s.String()))
	}
	pprof.SetGoroutineLabels(ctx)
}

// Finish stops the host sampler and freezes the run's host metrics. Call
// after sim.World.Run returns (the recs are read-merged by Analyze);
// idempotent.
func (ww *World) Finish() {
	if ww == nil || ww.done {
		return
	}
	ww.done = true
	ww.host = ww.sampler.stop()
	ww.host.WallNS = nowNS() - ww.startNS
}

// Host returns the frozen host metrics (zero value before Finish).
func (ww *World) Host() HostStats {
	if ww == nil {
		return HostStats{}
	}
	return ww.host
}

// DepositGauges publishes the run's host metrics as volatile obs gauges
// (merged by max, quarantined from deterministic artifacts), so the
// flight-recorder bundle and -stats snapshots carry them. Call after
// Finish, after the run — the shard write is single-threaded then.
func (ww *World) DepositGauges(ow *obs.World) {
	if ww == nil || !ww.done || ow == nil || ow.N() == 0 {
		return
	}
	sh := ow.Shard(0)
	sh.Max(obs.CtrHostGCPauseNS, ww.host.GCPauseNS)
	sh.Max(obs.CtrHostSchedLatP99NS, ww.host.SchedLatP99NS)
	sh.Max(obs.CtrHostGoroutineMax, ww.host.GoroutineMax)
}

// EnableContention turns on the Go runtime's mutex and block profiling at
// rates suitable for the wallprof CI job (they are off by default: both
// add per-event host cost). Returns a restore func. Only the dedicated CI
// contention job enables these.
func EnableContention() func() {
	prevMutex := runtime.SetMutexProfileFraction(20)
	runtime.SetBlockProfileRate(100_000) // one sample per 100µs of blocking
	return func() {
		runtime.SetMutexProfileFraction(prevMutex)
		runtime.SetBlockProfileRate(0)
	}
}
