package wallprof

import (
	"fmt"
	"sort"
	"strings"
)

// virtComps maps each wall site to the virtual-time critpath components
// that "explain" it: host time spent there that the virtual model already
// blames on the same mechanism is expected; the *excess* is simulator
// overhead and sharding opportunity. The sets are disjoint so the two
// share columns are comparable row by row.
var virtComps = map[Site][]string{
	SiteFabricInject: {"o_overhead", "L_latency", "G_bandwidth", "g_nic_gap"},
	SiteFabricAbsorb: {"match"},
	SiteMPIFlush:     {"flush_scan", "flush_wait"},
	SiteGASNetAM:     {"srq_stall"},
	SiteSanitizer:    {}, // pure simulator overhead: no virtual counterpart by design
	SiteFabricDrain:  {}, // sharded-delivery handoff: simulator overhead only
	SiteApp:          {"compute", "event_wait"},
}

// ReportRow is one component's wall-vs-virtual comparison.
type ReportRow struct {
	Component  string  `json:"component"`
	Ops        uint64  `json:"ops"`
	Sampled    uint64  `json:"sampled"`
	WallNS     int64   `json:"wall_ns"`    // sampled span scaled by the duty cycle
	WallShare  float64 `json:"wall_share"` // fraction of total host wall time
	VirtShare  float64 `json:"virt_share"` // fraction of virtual makespan blamed on mapped comps
	Divergence float64 `json:"divergence"` // WallShare - VirtShare: host cost the virtual model doesn't predict
}

// Report is the wall-clock blame table plus host runtime health, ranked by
// divergence — the component list is, in order, the to-do list for host-
// side optimization (ROADMAP item 2).
type Report struct {
	Rows       []ReportRow `json:"rows"` // ranked by Divergence, descending
	Host       HostStats   `json:"host"`
	Attributed float64     `json:"attributed"` // fraction of host time under named components (always 1: residual is named)
	MeasuredNS int64       `json:"measured_ns"` // Σ scaled site spans, excluding the residual
	SampleEvery int        `json:"sample_every"`
}

// Analyze merges every image's recorder into the divergence report.
//
// virt is the critpath ComponentTotals map (virtual ns summed over images)
// and virtFinishNS the virtual makespan; pass nil/0 when critpath was not
// run — the virtual share column is then zero and divergence equals wall
// share. Analyze calls Finish, so it is safe as the first post-run call.
func (ww *World) Analyze(virt map[string]int64, virtFinishNS int64) *Report {
	if ww == nil {
		return nil
	}
	ww.Finish()
	rep := &Report{Host: ww.host, SampleEvery: SampleEvery}

	var merged [numSites]siteAcc
	for _, r := range ww.recs {
		for s := range r.sites {
			merged[s].ops += r.sites[s].ops
			merged[s].sampled += r.sites[s].sampled
			merged[s].ns += r.sites[s].ns
		}
	}

	wallTotal := ww.host.WallNS
	if wallTotal <= 0 {
		wallTotal = 1
	}
	var measured int64
	for s := Site(0); s < numSites; s++ {
		if s == SiteApp {
			continue
		}
		est := merged[s].ns * SampleEvery
		if est > wallTotal { // sampling jitter: clamp to the physical budget
			est = wallTotal
		}
		measured += est
		rep.Rows = append(rep.Rows, ReportRow{
			Component: s.String(),
			Ops:       merged[s].ops,
			Sampled:   merged[s].sampled,
			WallNS:    est,
		})
	}
	rep.MeasuredNS = measured
	residual := wallTotal - measured
	if residual < 0 {
		residual = 0
	}
	rep.Rows = append(rep.Rows, ReportRow{
		Component: SiteApp.String(),
		WallNS:    residual,
	})

	for i := range rep.Rows {
		row := &rep.Rows[i]
		row.WallShare = float64(row.WallNS) / float64(wallTotal)
		if virt != nil && virtFinishNS > 0 {
			var v int64
			for _, c := range virtComps[siteByName(row.Component)] {
				v += virt[c]
			}
			// Virtual totals are summed over images; normalize per image so
			// the share is comparable to the host's single-process wall share.
			row.VirtShare = float64(v) / float64(virtFinishNS) / float64(ww.n)
		}
		row.Divergence = row.WallShare - row.VirtShare
	}
	sort.SliceStable(rep.Rows, func(i, j int) bool {
		return rep.Rows[i].Divergence > rep.Rows[j].Divergence
	})
	// Every byte of host time is under a named component (the residual is
	// itself named), so attribution is total by construction.
	rep.Attributed = 1.0
	return rep
}

func siteByName(name string) Site {
	for s := Site(0); s < numSites; s++ {
		if s.String() == name {
			return s
		}
	}
	return SiteApp
}

// Text renders the ranked divergence table for terminals and CI logs.
func (rep *Report) Text() string {
	if rep == nil {
		return ""
	}
	var b strings.Builder
	fmt.Fprintf(&b, "wallprof: host wall %.3f ms, GOMAXPROCS=%d, sampled 1/%d\n",
		float64(rep.Host.WallNS)/1e6, rep.Host.GOMAXPROCS, rep.SampleEvery)
	fmt.Fprintf(&b, "wallprof: attributed %.1f%% of host time to %d named components (top 5 by divergence):\n",
		rep.Attributed*100, len(rep.Rows))
	fmt.Fprintf(&b, "  %-16s %12s %9s %9s %11s %12s\n",
		"component", "host_ms", "host%", "virt%", "divergence", "ops")
	top := rep.Rows
	if len(top) > 5 {
		top = top[:5]
	}
	for _, r := range top {
		fmt.Fprintf(&b, "  %-16s %12.3f %8.1f%% %8.1f%% %+10.1f%% %12d\n",
			r.Component, float64(r.WallNS)/1e6, r.WallShare*100,
			r.VirtShare*100, r.Divergence*100, r.Ops)
	}
	fmt.Fprintf(&b, "wallprof: host gc_pause %.3f ms (%d cycles), sched p50/p99 %.1f/%.1f µs, goroutines max %d\n",
		float64(rep.Host.GCPauseNS)/1e6, rep.Host.NumGC,
		float64(rep.Host.SchedLatP50NS)/1e3, float64(rep.Host.SchedLatP99NS)/1e3,
		rep.Host.GoroutineMax)
	return b.String()
}
