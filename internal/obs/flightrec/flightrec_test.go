package flightrec

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"cafmpi/internal/faults"
	"cafmpi/internal/obs"
	"cafmpi/internal/sim"
)

// populate builds a small world with a crashed image, some recorded
// telemetry, and a fault log, simulating what a chaos run leaves behind.
func populate(t *testing.T) *sim.World {
	t.Helper()
	w := sim.NewWorld(2)
	ow := obs.Enable(w, 16)
	st := faults.Enable(w, faults.CanonicalCrash(3))
	sh := ow.Shard(0)
	sh.Record(obs.LayerMPI, obs.OpPut, 1, 64, 0, 10, 20)
	sh.Add(obs.CtrMsgsSent, 5)
	sh.Add(obs.CtrPolls, 123) // volatile: must not reach counters.txt
	ow.Shard(1).Record(obs.LayerFabric, obs.OpCrash, -1, 0, 0, 50, 50)
	st.Record(0, faults.Event{T: 7, Kind: faults.KindDrop, Layer: "mpi", Src: 0, Dst: 1, Seq: 2})
	st.Record(0, faults.Event{T: 9, Kind: faults.KindBlackhole, Layer: "mpi", Src: 0, Dst: 1, Seq: 3})
	st.MarkFailed(1)
	return w
}

func TestArmIdempotentAndDumpOnce(t *testing.T) {
	w := populate(t)
	dir := t.TempDir()
	rec := Arm(w, dir)
	if Arm(w, "elsewhere") != rec {
		t.Fatal("second Arm created a new recorder")
	}
	if Armed(w) != rec {
		t.Fatal("Armed did not find the recorder")
	}
	if Armed(sim.NewWorld(1)) != nil {
		t.Fatal("Armed invented a recorder on a fresh world")
	}

	bundle, err := rec.Dump(w, nil)
	if err != nil {
		t.Fatal(err)
	}
	// A second Dump returns the same path without rewriting anything.
	marker := filepath.Join(bundle, "MANIFEST.txt")
	if rmErr := os.Remove(marker); rmErr != nil {
		t.Fatal(rmErr)
	}
	again, err := rec.Dump(w, nil)
	if err != nil || again != bundle {
		t.Fatalf("second Dump = (%q, %v), want (%q, nil)", again, err, bundle)
	}
	if _, err := os.Stat(marker); !os.IsNotExist(err) {
		t.Error("second Dump rewrote the bundle")
	}
}

func TestDumpContentAndVolatileQuarantine(t *testing.T) {
	w := populate(t)
	dir := t.TempDir()
	bundle, err := Arm(w, dir).Dump(w, nil)
	if err != nil {
		t.Fatal(err)
	}
	read := func(name string) string {
		b, err := os.ReadFile(filepath.Join(bundle, name))
		if err != nil {
			t.Fatal(err)
		}
		return string(b)
	}

	log := faults.Enabled(w).Log()
	hash := faults.SignatureHash(log)
	if !strings.HasSuffix(bundle, "postmortem-"+hash[:12]) {
		t.Errorf("bundle dir %q not stamped with signature hash %s", bundle, hash)
	}
	man := read("MANIFEST.txt")
	if !strings.Contains(man, "signature_hash: "+hash) {
		t.Errorf("MANIFEST missing signature hash:\n%s", man)
	}
	if !strings.Contains(man, "failed_image: 1") {
		t.Errorf("MANIFEST missing failed image:\n%s", man)
	}

	sig := read("signature.txt")
	if strings.Contains(sig, "blackhole mpi") {
		t.Error("signature.txt contains a schedule-dependent blackhole event")
	}
	if !strings.Contains(sig, "drop") {
		t.Errorf("signature.txt missing the drop decision:\n%s", sig)
	}

	counters := read("counters.txt")
	if strings.Contains(counters, "polls") {
		t.Error("volatile counter leaked into counters.txt")
	}
	if !strings.Contains(counters, "msgs_sent") {
		t.Errorf("counters.txt missing msgs_sent:\n%s", counters)
	}

	vol := read("volatile.txt")
	if !strings.Contains(vol, "polls") || !strings.Contains(vol, "blackhole") {
		t.Errorf("volatile.txt missing quarantined state:\n%s", vol)
	}
	if !strings.Contains(vol, "obs_bytes_per_image") {
		t.Errorf("volatile.txt missing the obs self-meter:\n%s", vol)
	}

	events := read("events.txt")
	if !strings.Contains(events, "fabric/crash") {
		t.Errorf("events.txt missing the crash marker:\n%s", events)
	}
}

func TestDumpDeterministic(t *testing.T) {
	mk := func() (string, *sim.World) {
		w := populate(t)
		dir := t.TempDir()
		bundle, err := Arm(w, dir).Dump(w, nil)
		if err != nil {
			t.Fatal(err)
		}
		return bundle, w
	}
	a, _ := mk()
	b, _ := mk()
	for _, name := range []string{"MANIFEST.txt", "signature.txt", "counters.txt", "events.txt"} {
		ba, err := os.ReadFile(filepath.Join(a, name))
		if err != nil {
			t.Fatal(err)
		}
		bb, err := os.ReadFile(filepath.Join(b, name))
		if err != nil {
			t.Fatal(err)
		}
		if string(ba) != string(bb) {
			t.Errorf("%s differs between two identical dumps", name)
		}
	}
}
