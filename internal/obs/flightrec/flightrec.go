// Package flightrec is the always-on crash recorder: a fixed-budget window
// of recent obs events, the counter registry, and the fault injector's
// decision log, dumped as a postmortem bundle when an image crashes or the
// job's failure latch trips. It owns no recording machinery of its own —
// the obs shards ARE the black box (their rings are already bounded and
// lock-free); the recorder adds only the trigger and the dump format.
//
// Determinism contract: the bundle directory is named by the fault log's
// SignatureHash, and every file except volatile.txt is byte-identical
// across runs of the same program under the same fault plan (given the
// simulator's deterministic virtual clocks). Schedule-dependent state —
// poll counts, high-water gauges, blackhole fault events, the obs
// self-meter — is quarantined in volatile.txt so the rest of the bundle
// diffs clean. Nothing here reads host time.
package flightrec

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync/atomic"

	"cafmpi/internal/faults"
	"cafmpi/internal/obs"
	"cafmpi/internal/obs/wallprof"
	"cafmpi/internal/sim"
)

const recKey = "obs.flightrec"

// Recorder is the armed flight recorder for one world. It is created by Arm
// (idempotent; the first caller's directory wins) and fires at most once.
type Recorder struct {
	dir    string
	dumped atomic.Bool
}

// Arm installs the recorder on the world, with bundles written under dir.
// Call before the run starts; the caller must also enable obs (the recorder
// reads, never writes, the shards).
func Arm(w *sim.World, dir string) *Recorder {
	return w.Shared(recKey, func() any {
		return &Recorder{dir: dir}
	}).(*Recorder)
}

// Armed returns the world's recorder, or nil if Arm was never called.
func Armed(w *sim.World) *Recorder {
	if w == nil {
		return nil
	}
	if v, ok := w.Peek(recKey); ok {
		return v.(*Recorder)
	}
	return nil
}

// Dir returns the configured bundle parent directory.
func (r *Recorder) Dir() string {
	if r == nil {
		return ""
	}
	return r.dir
}

// Dump writes the postmortem bundle and returns its directory. It fires at
// most once per recorder (later calls return the same path with no I/O) and
// is a no-op returning "" on a nil recorder. Call only after the world's
// Run has returned — the shards are read-merged here.
func (r *Recorder) Dump(w *sim.World, runErr error) (string, error) {
	if r == nil {
		return "", nil
	}
	ow := obs.Enabled(w)
	if ow == nil {
		return "", fmt.Errorf("flightrec: obs not enabled; nothing to dump")
	}
	st := faults.Enabled(w)
	log := st.Log()
	hash := faults.SignatureHash(log)
	bundle := filepath.Join(r.dir, "postmortem-"+hash[:12])
	if !r.dumped.CompareAndSwap(false, true) {
		return bundle, nil
	}
	if err := os.MkdirAll(bundle, 0o755); err != nil {
		return "", err
	}
	// The wallprof summary rides along when the profiling plane is on: host
	// wall time is inherently schedule-dependent, so it lands in
	// volatile.txt, outside the determinism contract. No virtual blame is
	// attached here — a crashed run has no trustworthy critical path.
	var wallSummary string
	if wpw := wallprof.Enabled(w); wpw != nil {
		wpw.Finish()
		if wrep := wpw.Analyze(nil, 0); wrep != nil {
			wallSummary = wrep.Text()
		}
	}
	files := map[string]string{
		"MANIFEST.txt":  manifest(w, st, hash, runErr),
		"signature.txt": signatureFile(log, hash),
		"counters.txt":  countersFile(ow, false),
		"events.txt":    eventsFile(ow),
		"volatile.txt":  volatileFile(ow, log, wallSummary),
	}
	for name, body := range files {
		if err := os.WriteFile(filepath.Join(bundle, name), []byte(body), 0o644); err != nil {
			return "", err
		}
	}
	return bundle, nil
}

// manifest renders the bundle's front page. The cause line is derived from
// the failure latch (deterministic), never from the raw run error, whose
// rendering may embed goroutine stacks.
func manifest(w *sim.World, st *faults.State, hash string, runErr error) string {
	var b strings.Builder
	b.WriteString("caf postmortem bundle\n")
	status := "failed"
	cause := ""
	if latchErr := st.ErrOp("postmortem"); latchErr != nil {
		cause = latchErr.Error()
	} else if runErr != nil {
		cause = "run failed (latch not tripped; see volatile.txt)"
	} else {
		status = "clean"
	}
	fmt.Fprintf(&b, "status: %s\n", status)
	if cause != "" {
		fmt.Fprintf(&b, "cause: %s\n", cause)
	}
	fmt.Fprintf(&b, "failed_image: %d\n", st.FailedImage())
	fmt.Fprintf(&b, "images: %d\n", w.N())
	fmt.Fprintf(&b, "signature_hash: %s\n", hash)
	b.WriteString("files: MANIFEST.txt signature.txt counters.txt events.txt volatile.txt\n")
	b.WriteString("determinism: all files except volatile.txt are byte-stable across reruns of the same plan\n")
	return b.String()
}

func signatureFile(log []faults.Event, hash string) string {
	var b strings.Builder
	fmt.Fprintf(&b, "signature_hash: %s\n", hash)
	b.WriteString("# schedule-independent fault decisions (sorted, T zeroed, blackholes excluded)\n")
	b.WriteString(faults.Signature(log))
	return b.String()
}

// countersFile renders the merged counter registry plus per-image non-zero
// rows. volatile selects which half of the registry is emitted.
func countersFile(ow *obs.World, volatile bool) string {
	var b strings.Builder
	for _, c := range obs.Counters() {
		if c.IsVolatile() != volatile {
			continue
		}
		var merged int64
		for i := 0; i < ow.N(); i++ {
			v := ow.Shard(i).Counter(c)
			if c.IsGauge() {
				if v > merged {
					merged = v
				}
			} else {
				merged += v
			}
		}
		if merged == 0 {
			continue
		}
		fmt.Fprintf(&b, "%-24s %14d\n", c.String(), merged)
		for i := 0; i < ow.N(); i++ {
			if v := ow.Shard(i).Counter(c); v != 0 {
				fmt.Fprintf(&b, "  image %-6d %14d\n", i, v)
			}
		}
	}
	if b.Len() == 0 {
		b.WriteString("(all zero)\n")
	}
	return b.String()
}

// eventsFile renders each image's retained event window, oldest first — the
// flight recorder's "last N seconds of telemetry". For a crashed image the
// final line is its crash marker.
func eventsFile(ow *obs.World) string {
	var b strings.Builder
	for i := 0; i < ow.N(); i++ {
		sh := ow.Shard(i)
		fmt.Fprintf(&b, "== image %d: %d recorded, %d dropped\n", i, sh.Recorded(), sh.Dropped())
		for _, e := range sh.Events() {
			fmt.Fprintf(&b, "t=%d..%d %s/%s peer=%d bytes=%d tag=%d\n",
				e.Start, e.End, e.Layer, e.Op, e.Peer, e.Bytes, e.Tag)
		}
	}
	return b.String()
}

// volatileFile quarantines everything schedule-dependent: volatile
// counters/gauges, the obs self-meter, the wallprof host-time summary (when
// profiling was on), and the raw fault log with timestamps and blackhole
// events included.
func volatileFile(ow *obs.World, log []faults.Event, wallSummary string) string {
	var b strings.Builder
	b.WriteString("# schedule-dependent state; excluded from the determinism contract\n")
	b.WriteString(countersFile(ow, true))
	var obsMax int64
	for i := 0; i < ow.N(); i++ {
		if v := ow.Shard(i).MemBytes(); v > obsMax {
			obsMax = v
		}
	}
	fmt.Fprintf(&b, "%-24s %14d\n", obs.CtrObsBytesPerImage.String(), obsMax)
	if wallSummary != "" {
		b.WriteString("# wallprof host-time summary (wall clock; schedule-dependent by nature)\n")
		b.WriteString(wallSummary)
	}
	b.WriteString("# raw fault log (timestamps and blackholes included)\n")
	for _, ev := range log {
		b.WriteString(ev.String())
		b.WriteByte('\n')
	}
	return b.String()
}
