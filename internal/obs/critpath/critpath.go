// Package critpath reconstructs the virtual-time critical path of a run
// from the happens-before edges the instrumented layers record (obs.Edge):
// starting at the last-finishing image it walks backward in virtual time,
// crossing to the enabling image wherever a completion was constrained by a
// remote operation (message injection, rendezvous handshake, event notify),
// and attributes every nanosecond of the path to a LogGP-style blame
// component — o/L/G/g, tag matching, SRQ stalls, flush_all's linear rank
// scan, flush completion waits — or to application compute where no edge
// covers the time. The result is the quantitative form of the paper's §4
// analysis: *which* costs put the finish time where it is.
package critpath

import (
	"fmt"
	"sort"
	"strings"

	"cafmpi/internal/obs"
)

// AppLabel is the pseudo op-class for time not covered by any recorded
// edge: application compute and idle polling between operations.
const AppLabel = "(app)"

// TruncLabel is the pseudo op-class for path time the walker could not
// attribute because the recording image's edge ring had wrapped.
const TruncLabel = "(truncated)"

// BlameRow is one (op class, component) cell of the blame table.
type BlameRow struct {
	Class     string `json:"class"`     // "layer/op", AppLabel, or TruncLabel
	Component string `json:"component"` // obs.Component name
	NS        int64  `json:"ns"`
	Count     int64  `json:"count"` // path steps contributing to this row
}

// Report is the reconstructed critical path of one run.
type Report struct {
	Images      int        `json:"images"`
	LastImage   int        `json:"last_image"`
	FinishNS    int64      `json:"finish_ns"`
	Steps       int        `json:"steps"`
	Hops        int        `json:"hops"` // cross-image jumps taken
	TruncatedNS int64      `json:"truncated_ns"`
	Rows        []BlameRow `json:"rows"` // sorted by NS descending

	flows []obs.FlowEvent
}

// walker carries the backward traversal state.
type walker struct {
	perImg  [][]obs.Edge // per-image edges sorted by (End asc, record idx asc)
	dropped []bool       // image lost edges to ring wrap-around
	rows    map[[2]string]*BlameRow
	flows   []obs.FlowEvent
	hops    int
}

// Analyze walks the critical path of w's recorded edges. finish holds every
// image's final virtual clock (sim.World.Proc(i).Now() after Run); the walk
// starts at its maximum. A nil registry yields a nil report.
func Analyze(w *obs.World, finish []int64) *Report {
	if w == nil || len(finish) == 0 {
		return nil
	}
	n := len(finish)
	last := 0
	for i, f := range finish {
		if f > finish[last] {
			last = i
		}
	}
	wk := &walker{
		perImg:  make([][]obs.Edge, n),
		dropped: make([]bool, n),
		rows:    make(map[[2]string]*BlameRow),
	}
	total := 0
	for i := 0; i < n && i < w.N(); i++ {
		sh := w.Shard(i)
		edges := sh.Edges()
		// Stable sort by End keeps equal-End edges in record order, so the
		// walker meets the earlier-recorded (finer-grained) edge first.
		sort.SliceStable(edges, func(a, b int) bool { return edges[a].End < edges[b].End })
		wk.perImg[i] = edges
		wk.dropped[i] = sh.EdgesDropped() > 0
		total += len(edges)
	}

	rep := &Report{Images: n, LastImage: last, FinishNS: finish[last]}
	img, t := last, finish[last]
	maxSteps := 4*total + 16 // every step strictly decreases t; generous slack
	for t > 0 && rep.Steps < maxSteps {
		e := wk.pick(img, t)
		if e == nil {
			// Nothing recorded behind t on this image: either genuinely all
			// compute (startup), or the ring wrapped and the history is gone.
			if wk.dropped[img] {
				rep.TruncatedNS += t
				wk.add(TruncLabel, obs.CompCompute, t)
			} else {
				wk.add(AppLabel, obs.CompCompute, t)
			}
			break
		}
		rep.Steps++
		if gap := t - e.End; gap > 0 {
			wk.add(AppLabel, obs.CompCompute, gap)
		}
		from, jump := effectiveFrom(e, n)
		class := e.Layer.String() + "/" + e.Op.String()
		covered := e.End - from
		rem := covered
		for i := 0; i < int(e.NComps) && rem > 0; i++ {
			take := e.Comps[i].NS
			if take > rem {
				take = rem
			}
			wk.add(class, e.Comps[i].C, take)
			rem -= take
		}
		if rem > 0 {
			wk.add(class, obs.CompCompute, rem)
		}
		if jump {
			wk.hops++
			wk.flows = append(wk.flows,
				obs.FlowEvent{ID: wk.hops, Image: int(e.Peer), T: from, Start: true},
				obs.FlowEvent{ID: wk.hops, Image: img, T: e.End, Start: false})
			img = int(e.Peer)
		}
		t = from
	}
	rep.Hops = wk.hops
	rep.flows = wk.flows
	rep.Rows = make([]BlameRow, 0, len(wk.rows))
	for _, r := range wk.rows {
		rep.Rows = append(rep.Rows, *r)
	}
	sort.Slice(rep.Rows, func(a, b int) bool {
		ra, rb := &rep.Rows[a], &rep.Rows[b]
		if ra.NS != rb.NS {
			return ra.NS > rb.NS
		}
		if ra.Class != rb.Class {
			return ra.Class < rb.Class
		}
		return ra.Component < rb.Component
	})
	return rep
}

// effectiveFrom returns where the walker lands after consuming e: the
// enabling image's timestamp for a valid jump, the edge's own start
// otherwise.
func effectiveFrom(e *obs.Edge, n int) (from int64, jump bool) {
	if e.Jump && e.Peer >= 0 && int(e.Peer) < n && e.SrcT >= 0 && e.SrcT < e.End {
		return e.SrcT, true
	}
	return e.Start, false
}

// pick returns the best edge on img ending at or before t: the latest End,
// and among equal Ends the earliest-recorded edge (the finest-grained one —
// a fabric delivery beats the runtime wait that subsumes it). Edges that
// cannot make progress (effective from ≥ End) are skipped.
func (wk *walker) pick(img int, t int64) *obs.Edge {
	edges := wk.perImg[img]
	// Binary search: first index with End > t.
	hi := sort.Search(len(edges), func(i int) bool { return edges[i].End > t })
	for hi > 0 {
		// [lo,hi) is the run of edges sharing edges[hi-1].End.
		end := edges[hi-1].End
		lo := hi - 1
		for lo > 0 && edges[lo-1].End == end {
			lo--
		}
		for i := lo; i < hi; i++ {
			e := &edges[i]
			if from, _ := effectiveFrom(e, len(wk.perImg)); from < e.End {
				return e
			}
		}
		hi = lo
	}
	return nil
}

func (wk *walker) add(class string, c obs.Component, ns int64) {
	if ns <= 0 {
		return
	}
	k := [2]string{class, c.String()}
	r := wk.rows[k]
	if r == nil {
		r = &BlameRow{Class: class, Component: c.String()}
		wk.rows[k] = r
	}
	r.NS += ns
	r.Count++
}

// AttributedNS returns the path time attributed to named components (the
// finish time minus what ring truncation hid).
func (r *Report) AttributedNS() int64 {
	if r == nil {
		return 0
	}
	return r.FinishNS - r.TruncatedNS
}

// ComponentTotals sums the blame table per component (pseudo-rows for
// truncation excluded), for tests and programmatic consumers.
func (r *Report) ComponentTotals() map[string]int64 {
	out := make(map[string]int64)
	if r == nil {
		return out
	}
	for _, row := range r.Rows {
		if row.Class == TruncLabel {
			continue
		}
		out[row.Component] += row.NS
	}
	return out
}

// Flows returns the cross-image hops of the path as Perfetto flow-event
// endpoints, for overlay on the Chrome trace
// (obs.World.WriteChromeTraceFlows).
func (r *Report) Flows() []obs.FlowEvent {
	if r == nil {
		return nil
	}
	return r.flows
}

// BlameTable renders the report as an aligned text table with per-row share
// of the finish time.
func (r *Report) BlameTable() string {
	if r == nil {
		return "(no critical path: observability disabled)\n"
	}
	var b strings.Builder
	fmt.Fprintf(&b, "critical path: image %d finished at %d ns (%d steps, %d cross-image hops)\n",
		r.LastImage, r.FinishNS, r.Steps, r.Hops)
	if r.TruncatedNS > 0 {
		fmt.Fprintf(&b, "WARNING: %d ns unattributed (edge ring wrapped; raise -obs-ring)\n", r.TruncatedNS)
	}
	fmt.Fprintf(&b, "%-22s %-12s %14s %8s %7s\n", "op class", "component", "ns", "steps", "share")
	for _, row := range r.Rows {
		share := 0.0
		if r.FinishNS > 0 {
			share = 100 * float64(row.NS) / float64(r.FinishNS)
		}
		fmt.Fprintf(&b, "%-22s %-12s %14d %8d %6.2f%%\n",
			row.Class, row.Component, row.NS, row.Count, share)
	}
	return b.String()
}
