package critpath_test

import (
	"strings"
	"testing"

	"cafmpi/caf"
	"cafmpi/internal/fabric"
	"cafmpi/internal/hpcc"
	"cafmpi/internal/obs"
	"cafmpi/internal/obs/critpath"
	"cafmpi/internal/sim"
)

// TestWalkerHandBuiltDAG pins the walker against a 3-image DAG with a known
// longest path: img0 injects at [0,100], enabling img1's delivery ending at
// 300, enabling img2's delivery ending at 700; img2 then computes until its
// finish at 1000. Every nanosecond of the 1000 ns path has a known owner.
func TestWalkerHandBuiltDAG(t *testing.T) {
	w := sim.NewWorld(3)
	ow := obs.Enable(w, 0)

	// img0: message injection, pure send overhead.
	e0 := obs.Edge{Layer: obs.LayerFabric, Op: obs.OpInject, Peer: 1, Start: 0, End: 100}
	e0.AddComp(obs.CompOverhead, 100)
	ow.Shard(0).RecordEdge(e0)

	// img1: blocked delivery enabled by img0's injection at t=100.
	e1 := obs.Edge{Layer: obs.LayerFabric, Op: obs.OpDeliver,
		Peer: 0, Jump: true, SrcT: 100, Start: 250, End: 300}
	e1.AddComp(obs.CompLatency, 120)
	e1.AddComp(obs.CompOverhead, 80)
	ow.Shard(1).RecordEdge(e1)
	// A coarser wait edge sharing the same End: recorded later, so the
	// walker must prefer the delivery above and event_wait must not appear.
	f1 := obs.Edge{Layer: obs.LayerRuntime, Op: obs.OpEventWait,
		Peer: 0, Start: 250, End: 300}
	f1.AddComp(obs.CompEventWait, 50)
	ow.Shard(1).RecordEdge(f1)

	// img2: delivery enabled by img1 at t=300, with a full L/G/g split.
	e2 := obs.Edge{Layer: obs.LayerFabric, Op: obs.OpDeliver,
		Peer: 1, Jump: true, SrcT: 300, Start: 650, End: 700}
	e2.AddComp(obs.CompLatency, 200)
	e2.AddComp(obs.CompBandwidth, 100)
	e2.AddComp(obs.CompGap, 100)
	ow.Shard(2).RecordEdge(e2)

	rep := critpath.Analyze(ow, []int64{100, 300, 1000})
	if rep == nil {
		t.Fatal("nil report")
	}
	if rep.LastImage != 2 || rep.FinishNS != 1000 {
		t.Fatalf("last image %d finish %d, want 2 / 1000", rep.LastImage, rep.FinishNS)
	}
	if rep.Steps != 3 || rep.Hops != 2 {
		t.Errorf("steps %d hops %d, want 3 / 2", rep.Steps, rep.Hops)
	}
	if rep.TruncatedNS != 0 {
		t.Errorf("truncated %d ns, want 0", rep.TruncatedNS)
	}
	want := map[string]int64{
		"compute":     300, // img2's tail [700,1000]
		"o_overhead":  180,
		"L_latency":   320,
		"G_bandwidth": 100,
		"g_nic_gap":   100,
	}
	got := rep.ComponentTotals()
	var sum int64
	for c, ns := range got {
		sum += ns
		if ns != want[c] {
			t.Errorf("component %s = %d ns, want %d", c, ns, want[c])
		}
	}
	if sum != rep.FinishNS {
		t.Errorf("components sum to %d ns, want the full finish time %d", sum, rep.FinishNS)
	}
	if got["event_wait"] != 0 {
		t.Error("coarser same-End wait edge shadowed the delivery edge")
	}
	if flows := rep.Flows(); len(flows) != 4 {
		t.Errorf("flows = %d endpoints, want 4 (2 hops)", len(flows))
	} else {
		if !flows[0].Start || flows[0].Image != 1 || flows[0].T != 700-400 {
			t.Errorf("first hop origin = %+v, want start at image 1 t=300", flows[0])
		}
		if flows[1].Start || flows[1].Image != 2 || flows[1].T != 700 {
			t.Errorf("first hop end = %+v, want finish at image 2 t=700", flows[1])
		}
	}
	table := rep.BlameTable()
	for _, frag := range []string{"fabric/deliver", "fabric/inject", "L_latency", "(app)"} {
		if !strings.Contains(table, frag) {
			t.Errorf("blame table missing %q:\n%s", frag, table)
		}
	}
}

// TestWalkerTruncation: when an image's edge ring wrapped, the missing
// history is reported as truncated, not silently called compute.
func TestWalkerTruncation(t *testing.T) {
	w := sim.NewWorld(1)
	ow := obs.Enable(w, 0)
	sh := ow.Shard(0)
	// Overflow the ring so the oldest edges (covering early time) are gone.
	for i := 0; i < obs.DefaultEdgeRingCap+10; i++ {
		e := obs.Edge{Layer: obs.LayerFabric, Op: obs.OpInject,
			Start: int64(i) * 10, End: int64(i)*10 + 5}
		e.AddComp(obs.CompOverhead, 5)
		sh.RecordEdge(e)
	}
	finish := int64(obs.DefaultEdgeRingCap+10) * 10
	rep := critpath.Analyze(ow, []int64{finish})
	if rep.TruncatedNS == 0 {
		t.Fatal("wrapped ring not reported as truncation")
	}
	if !strings.Contains(rep.BlameTable(), "WARNING") {
		t.Error("blame table missing truncation warning")
	}
	if rep.AttributedNS() != rep.FinishNS-rep.TruncatedNS {
		t.Error("AttributedNS inconsistent")
	}
}

// TestCritPathRandomAccessMPI reconstructs the critical path of the tier-1
// RandomAccess configuration on CAF-MPI and checks the acceptance criteria:
// ≥95% of the last image's finish time is attributed to named blame rows,
// and the MPI_WIN_FLUSH_ALL linear scan — the paper's §4.1 bottleneck — is
// among the top non-compute contributors.
func TestCritPathRandomAccessMPI(t *testing.T) {
	clocks := make([]int64, 8)
	cfg := caf.Config{Substrate: caf.MPI, Platform: fabric.Platform("fusion"), Diag: caf.Diag{Observe: true}}
	w, err := caf.RunWorld(8, cfg, func(im *caf.Image) error {
		if _, err := hpcc.RandomAccess(im, hpcc.RAConfig{TableBits: 8, UpdatesPerImage: 512, BatchSize: 128}); err != nil {
			return err
		}
		clocks[im.ID()] = im.Proc().Now()
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	rep := critpath.Analyze(obs.Enabled(w), clocks)
	if rep == nil {
		t.Fatal("nil report")
	}
	t.Logf("\n%s", rep.BlameTable())
	if rep.TruncatedNS > 0 {
		t.Errorf("tier-1 run truncated %d ns: edge ring too small", rep.TruncatedNS)
	}
	if att := rep.AttributedNS(); float64(att) < 0.95*float64(rep.FinishNS) {
		t.Errorf("attributed %d of %d ns (<95%%)", att, rep.FinishNS)
	}
	// The flush_all linear scan must be named among the top non-compute
	// contributors (at np=8 the O(N) scan trails per-message overheads; it
	// overtakes them as N grows, which is the paper's point).
	totals := rep.ComponentTotals()
	type kv struct {
		c  string
		ns int64
	}
	var ranked []kv
	for c, ns := range totals {
		if c == "compute" {
			continue
		}
		ranked = append(ranked, kv{c, ns})
	}
	for i := 0; i < len(ranked); i++ {
		for j := i + 1; j < len(ranked); j++ {
			if ranked[j].ns > ranked[i].ns {
				ranked[i], ranked[j] = ranked[j], ranked[i]
			}
		}
	}
	top := 5
	if top > len(ranked) {
		top = len(ranked)
	}
	found := false
	for _, e := range ranked[:top] {
		if e.c == "flush_scan" && e.ns > 0 {
			found = true
		}
	}
	if !found {
		t.Errorf("flush_scan not in top-%d non-compute components: %v", top, ranked)
	}
	// And the blame table must name the mpi/flush_all op class explicitly.
	hasFlushAll := false
	for _, row := range rep.Rows {
		if row.Class == "mpi/flush_all" && row.NS > 0 {
			hasFlushAll = true
		}
	}
	if !hasFlushAll {
		t.Error("blame table has no mpi/flush_all row")
	}
	// The walk must have crossed images: RandomAccess is communication-bound.
	if rep.Hops == 0 {
		t.Error("no cross-image hops on a communication-bound run")
	}
}
