// Package hist implements HDR-style latency histograms: logarithmic
// power-of-2 buckets subdivided into 2^subBits linear sub-buckets, so
// relative error is bounded by 1/2^subBits at every magnitude while the
// whole int64 nanosecond range fits in a few hundred counters. Values below
// 2*2^subBits are recorded exactly.
//
// Recording is a handful of integer operations and never allocates, so the
// owning image goroutine can feed a histogram from instrumented hot paths
// under the same lock-free ownership discipline as the obs counter shards.
// Quantiles are reported as the inclusive upper bound of the bucket holding
// the requested rank — deterministic for a given multiset of samples, and
// stable across runs whose samples move within a bucket.
package hist

import "math/bits"

// subBits is the log2 of the per-power-of-2 sub-bucket count. 3 gives 8
// sub-buckets: ≤12.5% relative bucket width, 488 buckets total.
const subBits = 3

// sub is the number of sub-buckets per power-of-2 range.
const sub = 1 << subBits

// NumBuckets is the total bucket count covering all non-negative int64
// values.
const NumBuckets = (64 - subBits) * sub

// Hist is one latency histogram. The zero value is not usable; call New.
// All methods are nil-safe: recording into or querying a nil histogram is a
// no-op / zero.
type Hist struct {
	counts [NumBuckets]int64
	count  int64
	sum    int64
	min    int64
	max    int64
}

// New returns an empty histogram.
func New() *Hist {
	return &Hist{min: -1}
}

// BucketIndex returns the bucket index for value v (negative values clamp
// to bucket 0).
func BucketIndex(v int64) int {
	if v < 0 {
		v = 0
	}
	u := uint64(v)
	if u < 2*sub {
		return int(u) // exact small values
	}
	shift := uint(bits.Len64(u)) - subBits - 1
	return int(uint64(shift)*sub + (u >> shift))
}

// BucketUpper returns the inclusive upper bound of bucket idx — the value
// quantiles report.
func BucketUpper(idx int) int64 {
	if idx < 2*sub {
		return int64(idx)
	}
	shift := uint(idx)/sub - 1
	m := uint64(idx) - uint64(shift)*sub
	return int64((m+1)<<shift - 1)
}

// Record adds one sample.
func (h *Hist) Record(v int64) {
	if h == nil {
		return
	}
	if v < 0 {
		v = 0
	}
	h.counts[BucketIndex(v)]++
	h.count++
	h.sum += v
	if v > h.max {
		h.max = v
	}
	if h.min < 0 || v < h.min {
		h.min = v
	}
}

// Count returns the number of samples recorded.
func (h *Hist) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count
}

// Sum returns the sum of all samples.
func (h *Hist) Sum() int64 {
	if h == nil {
		return 0
	}
	return h.sum
}

// Max returns the largest sample recorded (exact, not bucketed); 0 when
// empty.
func (h *Hist) Max() int64 {
	if h == nil {
		return 0
	}
	return h.max
}

// Min returns the smallest sample recorded (exact); 0 when empty.
func (h *Hist) Min() int64 {
	if h == nil || h.min < 0 {
		return 0
	}
	return h.min
}

// Mean returns the arithmetic mean of the samples; 0 when empty.
func (h *Hist) Mean() float64 {
	if h == nil || h.count == 0 {
		return 0
	}
	return float64(h.sum) / float64(h.count)
}

// Quantile returns the value at or below which a fraction q of the samples
// fall, as the inclusive upper bound of the bucket containing that rank
// (capped at the exact maximum). q outside [0,1] clamps.
func (h *Hist) Quantile(q float64) int64 {
	if h == nil || h.count == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := int64(q * float64(h.count))
	if float64(rank) < q*float64(h.count) {
		rank++
	}
	if rank < 1 {
		rank = 1
	}
	var cum int64
	for i := range h.counts {
		cum += h.counts[i]
		if cum >= rank {
			up := BucketUpper(i)
			if up > h.max {
				up = h.max
			}
			return up
		}
	}
	return h.max
}

// Merge adds o's samples into h (for aggregating per-image shards after a
// run). A nil o is a no-op.
func (h *Hist) Merge(o *Hist) {
	if h == nil || o == nil {
		return
	}
	for i := range h.counts {
		h.counts[i] += o.counts[i]
	}
	h.count += o.count
	h.sum += o.sum
	if o.max > h.max {
		h.max = o.max
	}
	if o.min >= 0 && (h.min < 0 || o.min < h.min) {
		h.min = o.min
	}
}
