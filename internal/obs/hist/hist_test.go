package hist

import "testing"

// TestBucketBoundaries pins the bucket scheme: exact small values, then
// power-of-2 ranges split into 8 linear sub-buckets, contiguous with no
// gaps or overlaps.
func TestBucketBoundaries(t *testing.T) {
	// Values below 2*sub land in their own exact bucket.
	for v := int64(0); v < 2*sub; v++ {
		if got := BucketIndex(v); got != int(v) {
			t.Errorf("BucketIndex(%d) = %d, want %d", v, got, v)
		}
		if got := BucketUpper(int(v)); got != v {
			t.Errorf("BucketUpper(%d) = %d, want %d", v, got, v)
		}
	}
	// Contiguity: bucket index is monotone in v and every value is ≤ its
	// bucket's upper bound, > the previous bucket's upper bound.
	prev := 0
	for _, v := range []int64{16, 17, 31, 32, 63, 64, 100, 1023, 1024, 4095, 1 << 20, 1<<40 + 12345, 1 << 62} {
		idx := BucketIndex(v)
		if idx < prev {
			t.Errorf("BucketIndex(%d) = %d not monotone (prev %d)", v, idx, prev)
		}
		prev = idx
		if up := BucketUpper(idx); v > up {
			t.Errorf("value %d above its bucket %d upper bound %d", v, idx, up)
		}
		if idx > 0 {
			if lo := BucketUpper(idx - 1); v <= lo {
				t.Errorf("value %d not above previous bucket upper %d", v, lo)
			}
		}
		if idx >= NumBuckets {
			t.Fatalf("BucketIndex(%d) = %d out of range %d", v, idx, NumBuckets)
		}
	}
	// Negative values clamp to bucket 0.
	if got := BucketIndex(-5); got != 0 {
		t.Errorf("BucketIndex(-5) = %d, want 0", got)
	}
	// Relative width bound: bucket width / lower bound ≤ 1/sub for the
	// logarithmic range.
	for idx := 2 * sub; idx < NumBuckets-1; idx++ {
		lo := BucketUpper(idx-1) + 1
		hi := BucketUpper(idx)
		if hi < lo {
			t.Fatalf("bucket %d inverted: [%d,%d]", idx, lo, hi)
		}
		if width := hi - lo + 1; width > lo/int64(sub)+1 {
			t.Errorf("bucket %d width %d exceeds 1/%d of %d", idx, width, sub, lo)
		}
	}
}

// TestQuantiles checks percentile extraction against a known distribution.
func TestQuantiles(t *testing.T) {
	h := New()
	// 100 samples: 1..100. Exact for small values; bucketed above 15.
	for v := int64(1); v <= 100; v++ {
		h.Record(v)
	}
	if h.Count() != 100 {
		t.Fatalf("Count = %d, want 100", h.Count())
	}
	if h.Max() != 100 {
		t.Fatalf("Max = %d, want 100", h.Max())
	}
	if h.Min() != 1 {
		t.Fatalf("Min = %d, want 1", h.Min())
	}
	if got := h.Quantile(0.10); got != 10 {
		t.Errorf("p10 = %d, want 10 (exact range)", got)
	}
	// p50: rank 50 falls in the bucket containing 50 ([48,51] at sub=8);
	// reported as that bucket's upper bound.
	if got := h.Quantile(0.50); got != 51 {
		t.Errorf("p50 = %d, want 51 (upper bound of bucket holding 50)", got)
	}
	if got := h.Quantile(0.99); got != 100 {
		t.Errorf("p99 = %d, want 100 (bucket upper 103 capped at max)", got)
	}
	if got := h.Quantile(1.0); got != 100 {
		t.Errorf("p100 = %d, want 100", got)
	}
	// Determinism: the same multiset recorded in any order yields the same
	// quantiles.
	h2 := New()
	for v := int64(100); v >= 1; v-- {
		h2.Record(v)
	}
	for _, q := range []float64{0.5, 0.9, 0.99} {
		if h.Quantile(q) != h2.Quantile(q) {
			t.Errorf("q=%.2f differs across insertion orders: %d vs %d", q, h.Quantile(q), h2.Quantile(q))
		}
	}
}

// TestMerge checks that merging shards equals recording into one histogram.
func TestMerge(t *testing.T) {
	a, b, all := New(), New(), New()
	for v := int64(0); v < 500; v += 3 {
		a.Record(v)
		all.Record(v)
	}
	for v := int64(1); v < 5000; v += 7 {
		b.Record(v)
		all.Record(v)
	}
	a.Merge(b)
	if a.Count() != all.Count() || a.Sum() != all.Sum() || a.Max() != all.Max() || a.Min() != all.Min() {
		t.Fatalf("merge mismatch: count %d/%d sum %d/%d max %d/%d min %d/%d",
			a.Count(), all.Count(), a.Sum(), all.Sum(), a.Max(), all.Max(), a.Min(), all.Min())
	}
	for _, q := range []float64{0.5, 0.9, 0.99, 1} {
		if a.Quantile(q) != all.Quantile(q) {
			t.Errorf("q=%g: merged %d vs direct %d", q, a.Quantile(q), all.Quantile(q))
		}
	}
}

// TestNilSafety: nil histograms ignore records and report zeros, matching
// the obs shard discipline.
func TestNilSafety(t *testing.T) {
	var h *Hist
	h.Record(42)
	h.Merge(New())
	if h.Count() != 0 || h.Max() != 0 || h.Quantile(0.5) != 0 || h.Mean() != 0 {
		t.Fatal("nil histogram not inert")
	}
}
