// Package obs is the runtime observability subsystem: structured per-image
// event timelines, counters/gauges, and an N×N communication matrix, all
// keyed by virtual time. It is the per-operation, per-peer visibility layer
// beneath internal/trace's coarse category accumulators — the difference
// between knowing "event_notify took 200s" and seeing *which* FlushAll scans
// and SRQ stalls produced it.
//
// Design, mirroring trace.Tracer's nil-safety contract:
//
//   - The world-wide registry (*World) is created once per sim.World by
//     Enable and found again — without creating it — by Enabled. When
//     observability is off, every handle is nil and every method on a nil
//     receiver returns immediately with no allocation, so instrumented hot
//     paths cost a pointer compare.
//   - Each image records into its own *Shard, written only from the image's
//     goroutine — lock-free by the same ownership discipline as the virtual
//     clock. Shards are merged (read) only after sim.World.Run returns,
//     which the run's WaitGroup orders.
//   - Events land in a fixed-budget ring per image: a long run keeps the
//     most recent window instead of growing without bound; the drop count
//     is reported so truncation is never silent.
//
// Scale discipline (ROADMAP item 1): nothing in a shard may be O(P). Rings
// are lazily grown up to their cap, so an idle image costs a struct, not a
// window; communication rows are dense arrays only up to DenseCommThreshold
// images and sparse per-peer maps beyond, so per-image memory is O(active
// peers). The subsystem meters itself — Shard.MemBytes feeds the
// obs_bytes_per_image gauge — so the scaling probes can prove the bound
// instead of asserting it.
package obs

import (
	"fmt"
	"sort"
	"unsafe"

	"cafmpi/internal/obs/hist"
	"cafmpi/internal/sim"
)

// Layer identifies the stack layer that recorded an event.
type Layer uint8

// Layers.
const (
	LayerFabric Layer = iota
	LayerMPI
	LayerGASNet
	LayerSubstrate
	LayerRuntime // core runtime: event notify/wait, above the substrates
	numLayers
)

var layerNames = [...]string{"fabric", "mpi", "gasnet", "substrate", "runtime"}

func (l Layer) String() string {
	if int(l) >= len(layerNames) {
		return fmt.Sprintf("Layer(%d)", int(l))
	}
	return layerNames[l]
}

// Op identifies the kind of operation an event records.
type Op uint8

// Ops.
const (
	OpInject          Op = iota // fabric: message injection (eager or rendezvous)
	OpDeliver                   // fabric: eager message matched/absorbed
	OpRendezvousMatch           // fabric: rendezvous message matched (round trip)
	OpRMAPut                    // fabric: one-sided write wire transfer
	OpPut                       // mpi/gasnet/substrate: one-sided write issue
	OpGet                       // mpi/gasnet/substrate: one-sided read
	OpAccumulate                // mpi: atomic accumulate / fetch-op / CAS
	OpFlush                     // mpi: MPI_WIN_FLUSH
	OpFlushAll                  // mpi: MPI_WIN_FLUSH_ALL (tag = ranks scanned)
	OpLockAll                   // mpi: MPI_WIN_LOCK_ALL
	OpSend                      // mpi: two-sided send issue
	OpRecv                      // mpi: two-sided receive delivery
	OpAMSend                    // gasnet/substrate: active-message send
	OpAMDeliver                 // gasnet: active-message delivery (incl. SRQ stall)
	OpBarrier                   // gasnet: dissemination barrier
	OpNBISync                   // gasnet: implicit-handle sync (tag = ops synced)
	OpFence                     // substrate: release/local fence
	OpEventNotify               // runtime: event_notify (fence + notification AM)
	OpEventWait                 // runtime: event_wait blocking span (tag = slot)
	OpFault                     // fabric: injected fault(s) on a send (drop/retry/dup/delay)
	OpCrash                     // fabric: image hit a fault-plan crash point (last event before death)
	numOps
)

var opNames = [...]string{
	"inject", "deliver", "rdv_match", "rma_put",
	"put", "get", "accumulate", "flush", "flush_all", "lock_all",
	"send", "recv", "am_send", "am_deliver", "barrier", "nbi_sync", "fence",
	"event_notify", "event_wait", "fault", "crash",
}

func (o Op) String() string {
	if int(o) >= len(opNames) {
		return fmt.Sprintf("Op(%d)", int(o))
	}
	return opNames[o]
}

// Counter indexes the counter/gauge registry. Most entries are monotone
// counters (merged across images by summation); entries for which IsGauge
// reports true are high-water marks (merged by max).
type Counter int

// Counters and gauges.
const (
	CtrMsgsSent Counter = iota
	CtrMsgsRecv
	CtrBytesSent
	CtrBytesRecv
	CtrEagerMsgs
	CtrRendezvousMsgs
	CtrRDMAPuts
	CtrRDMAGets
	CtrRDMAAtomics
	CtrRDMABytes
	CtrAMsSent
	CtrAMsDelivered
	CtrSRQStallNS
	CtrSRQStalls
	CtrFlushCalls
	CtrFlushAllCalls
	CtrFlushAllScannedOps
	CtrRflushAllCalls
	CtrLockAllCalls
	CtrNBISyncs
	CtrPolls
	CtrUnexpectedDepthMax   // gauge: deepest unexpected-message queue seen
	CtrPendingRMAMax        // gauge: most unflushed RMA ops outstanding at once
	CtrPoolBytesInFlightMax // gauge: most pooled payload bytes checked out at once
	CtrFaultsInjected       // fault events injected (drops, dups, delays, reorders, ...)
	CtrFaultRetries         // retransmissions the delivery protocol performed
	CtrFaultRetryNS         // virtual ns senders spent in ack timeouts and backoff
	CtrFaultDedupDrops      // duplicate copies suppressed by the receive-side sweep
	CtrObsBytesPerImage     // gauge: the obs subsystem's own memory on the largest shard
	CtrSanBytesPerImage     // gauge: the sanitizer's shadow-state memory on the largest image
	CtrHostGCPauseNS        // gauge: summed host GC stop-the-world pause (wallprof)
	CtrHostSchedLatP99NS    // gauge: host scheduler p99 runnable-wait (wallprof)
	CtrHostGoroutineMax     // gauge: peak live goroutines during the run (wallprof)
	numCounters
)

var counterNames = [...]string{
	"msgs_sent",
	"msgs_recv",
	"bytes_sent",
	"bytes_recv",
	"eager_msgs",
	"rendezvous_msgs",
	"rdma_puts",
	"rdma_gets",
	"rdma_atomics",
	"rdma_bytes",
	"ams_sent",
	"ams_delivered",
	"srq_stall_ns",
	"srq_stalls",
	"flush_calls",
	"flushall_calls",
	"flushall_scanned_ops",
	"rflushall_calls",
	"lockall_calls",
	"nbi_syncs",
	"polls",
	"unexpected_queue_max",
	"pending_rma_max",
	"pool_bytes_inflight_max",
	"faults_injected",
	"fault_retries",
	"fault_retry_wait_ns",
	"fault_dedup_drops",
	"obs_bytes_per_image",
	"san_bytes_per_image",
	"host_gc_pause_ns",
	"host_sched_p99_ns",
	"host_goroutines_max",
}

func (c Counter) String() string {
	if c < 0 || int(c) >= len(counterNames) {
		return fmt.Sprintf("Counter(%d)", int(c))
	}
	return counterNames[c]
}

// IsGauge reports whether c is a high-water gauge (merged by max) rather
// than a monotone counter (merged by sum).
func (c Counter) IsGauge() bool {
	return c == CtrUnexpectedDepthMax || c == CtrPendingRMAMax ||
		c == CtrPoolBytesInFlightMax || c == CtrObsBytesPerImage ||
		c == CtrSanBytesPerImage || c == CtrHostGCPauseNS ||
		c == CtrHostSchedLatP99NS || c == CtrHostGoroutineMax
}

// IsVolatile reports whether c depends on goroutine scheduling or host
// behaviour rather than on the program and fault plan alone. Volatile
// counters (poll spins, high-water gauges, the obs self-meter) are excluded
// from artifacts that must be byte-identical across runs, such as the flight
// recorder's deterministic postmortem sections.
func (c Counter) IsVolatile() bool {
	return c.IsGauge() || c == CtrPolls
}

// Counters returns all counters in declaration order.
func Counters() []Counter {
	out := make([]Counter, numCounters)
	for i := range out {
		out[i] = Counter(i)
	}
	return out
}

// Component is a LogGP-style cost component, the unit of blame in the
// critical-path decomposition: o (CPU overhead), L (wire latency), G
// (bandwidth/serialization), g (NIC queueing gap), plus the runtime-level
// costs the paper's analysis names — tag matching, SRQ stalls, flush_all's
// linear rank scan, flush completion waits, and event-wait blocking.
// CompCompute is everything in between edges: application computation and
// idle polling.
type Component uint8

// Components.
const (
	CompCompute   Component = iota // application compute / idle between edges
	CompOverhead                   // o: per-message CPU overhead (send+recv)
	CompLatency                    // L: wire latency
	CompBandwidth                  // G: serialization / wire occupancy
	CompGap                        // g: NIC queueing behind other transfers
	CompMatch                      // receive-side tag matching / AM dispatch
	CompSRQStall                   // GASNet shared-receive-queue saturation stall
	CompFlushScan                  // MPI flush_all linear per-rank scan
	CompFlushWait                  // blocking on remote completion of own RMA
	CompEventWait                  // event_wait blocking (fallback attribution)
	NumComponents
)

var componentNames = [...]string{
	"compute", "o_overhead", "L_latency", "G_bandwidth", "g_nic_gap",
	"match", "srq_stall", "flush_scan", "flush_wait", "event_wait",
}

func (c Component) String() string {
	if int(c) >= len(componentNames) {
		return fmt.Sprintf("Component(%d)", int(c))
	}
	return componentNames[c]
}

// CompSpan is one component's share of an edge's covered interval.
type CompSpan struct {
	NS int64
	C  Component
}

// MaxEdgeComps bounds the per-edge decomposition (a blocked eager delivery
// needs L+G+g+o+match+stall).
const MaxEdgeComps = 6

// Edge is one happens-before record for the critical-path walker: the
// operation covered virtual time [Start,End] on the recording image, and —
// when Jump is set — was enabled by image Peer at Peer-local time SrcT
// (message injection, event notify), so the walker crosses images there.
// Comps decompose the covered interval ([SrcT,End] for jumps, [Start,End]
// otherwise); any remainder is attributed to CompCompute.
type Edge struct {
	Start  int64
	End    int64
	SrcT   int64 // enabler's virtual time; meaningful when Jump
	Layer  Layer
	Op     Op
	Peer   int32 // enabling image (world rank); -1 when local
	Jump   bool  // completion was constrained by Peer: walk to (Peer, SrcT)
	NComps uint8
	Comps  [MaxEdgeComps]CompSpan
}

// AddComp appends ns of component c to the edge's decomposition, merging
// with an existing span of the same component and dropping non-positive
// spans. Silently drops overflow beyond MaxEdgeComps (the walker attributes
// the remainder to compute).
func (e *Edge) AddComp(c Component, ns int64) {
	if ns <= 0 {
		return
	}
	for i := 0; i < int(e.NComps); i++ {
		if e.Comps[i].C == c {
			e.Comps[i].NS += ns
			return
		}
	}
	if int(e.NComps) < MaxEdgeComps {
		e.Comps[e.NComps] = CompSpan{NS: ns, C: c}
		e.NComps++
	}
}

// Event is one structured timeline entry, stamped with virtual nanoseconds.
type Event struct {
	Layer Layer
	Op    Op
	Peer  int32 // remote image (world rank), -1 when not peer-directed
	Tag   int32 // op-specific detail: MPI tag, handler id, scan length, ...
	Bytes int64
	Start int64 // virtual ns
	End   int64 // virtual ns
}

// DefaultRingCap is the per-image event ring capacity when Enable is called
// with cap <= 0.
const DefaultRingCap = 4096

// DefaultEdgeRingCap is the per-image happens-before edge ring capacity.
// Edges are denser than events (every message produces an inject and a
// delivery edge) and the critical-path walker degrades to unattributed time
// where they have wrapped, so the ring is larger; it also scales up with an
// explicitly enlarged event ring.
const DefaultEdgeRingCap = 16384

// DenseCommThreshold is the world size at or below which comm rows are
// plain dense arrays (one int64 pair per destination). Above it a shard
// tracks peers sparsely, so an image talking to k peers costs O(k) — not
// O(P) — and the full N×N matrix never materializes anywhere.
const DenseCommThreshold = 64

// minRingAlloc is the initial backing-slice length of a lazily grown ring.
const minRingAlloc = 64

const worldKey = "obs.world"

// World is the per-sim.World observability registry: one shard per image.
type World struct {
	n       int
	ringCap int
	shards  []*Shard
}

// Enable returns the world's observability registry, creating it (with the
// given per-image ring capacity) on first call. Later calls — from the other
// images booting — return the same registry and ignore ringCap. It must be
// called before the instrumented layers attach (core.Boot enables it before
// constructing the substrate), so layers can cache their shard once.
//
// Shards start near-empty: rings grow geometrically up to their cap as
// events arrive, and comm rows above DenseCommThreshold images are sparse
// maps, so enabling observability on a large, mostly idle world costs
// per-image kilobytes, not megabytes.
func Enable(w *sim.World, ringCap int) *World {
	if ringCap <= 0 {
		ringCap = DefaultRingCap
	}
	edgeCap := DefaultEdgeRingCap
	if ringCap > edgeCap {
		edgeCap = ringCap
	}
	return w.Shared(worldKey, func() any {
		ow := &World{n: w.N(), ringCap: ringCap, shards: make([]*Shard, w.N())}
		dense := w.N() <= DenseCommThreshold
		for i := range ow.shards {
			sh := &Shard{ringCap: ringCap, edgeCap: edgeCap}
			if dense {
				sh.matCount = make([]int64, w.N())
				sh.matBytes = make([]int64, w.N())
			}
			ow.shards[i] = sh
		}
		return ow
	}).(*World)
}

// Enabled returns the world's registry if Enable was ever called on it, and
// nil otherwise — without creating anything. Layers call this at attach time
// and cache the (possibly nil) result.
func Enabled(w *sim.World) *World {
	if w == nil {
		return nil
	}
	if v, ok := w.Peek(worldKey); ok {
		return v.(*World)
	}
	return nil
}

// For returns image p's shard, or nil when observability is off. The result
// must only be written from p's goroutine.
func For(p *sim.Proc) *Shard {
	return Enabled(p.World()).Shard(p.ID())
}

// N returns the world size (0 on a nil registry).
func (w *World) N() int {
	if w == nil {
		return 0
	}
	return w.n
}

// Shard returns image i's shard (nil on a nil registry).
func (w *World) Shard(i int) *Shard {
	if w == nil {
		return nil
	}
	return w.shards[i]
}

// commCell is one sparse comm-row entry: traffic from this shard's image to
// a single destination.
type commCell struct {
	count int64
	bytes int64
}

// PeerStat is one exported comm-row entry: traffic from a source image to
// destination Dst. Exports sort by Dst (and by Count for top-k views), so
// the rendering is deterministic regardless of map iteration order.
type PeerStat struct {
	Dst   int   `json:"dst"`
	Count int64 `json:"count"`
	Bytes int64 `json:"bytes"`
}

// Shard is one image's lock-free recording surface. All mutating methods are
// nil-safe no-ops and must otherwise be called only from the owning image's
// goroutine.
//
// Rings are lazily grown: they start nil and double from minRingAlloc up to
// their cap as entries arrive, then wrap. Because growth only happens while
// total == len(ring), the invariant "total > len(ring) implies len(ring) ==
// cap" holds, so the drop/retention arithmetic below is oblivious to whether
// the ring is still growing.
type Shard struct {
	ring      []Event
	ringCap   int
	total     uint64 // events ever recorded (ring wraps at ringCap)
	edges     []Edge
	edgeCap   int
	edgeTot   uint64 // edges ever recorded (ring wraps at edgeCap)
	counters  [numCounters]int64
	matCount  []int64            // dense: per-destination op count (N <= DenseCommThreshold)
	matBytes  []int64            // dense: per-destination bytes
	matSparse map[int32]commCell // sparse: allocated on first CommAdd above the threshold
	hists     [numLayers][numOps]*hist.Hist
}

// ringPut appends v to a lazily grown ring and returns the (possibly
// reallocated) backing slice. The ring doubles from minRingAlloc up to capN
// while it is still filling, then wraps in place.
func ringPut[T any](ring []T, total uint64, capN int, v T) []T {
	if len(ring) < capN && total == uint64(len(ring)) {
		newLen := len(ring) * 2
		if newLen < minRingAlloc {
			newLen = minRingAlloc
		}
		if newLen > capN {
			newLen = capN
		}
		grown := make([]T, newLen)
		copy(grown, ring)
		ring = grown
	}
	ring[total%uint64(len(ring))] = v
	return ring
}

// Record appends a structured event to the ring, evicting the oldest entry
// once the ring is full, and feeds the (layer, op) latency histogram.
func (s *Shard) Record(layer Layer, op Op, peer, bytes, tag int, start, end int64) {
	if s == nil {
		return
	}
	s.ring = ringPut(s.ring, s.total, s.ringCap, Event{
		Layer: layer, Op: op,
		Peer: int32(peer), Tag: int32(tag), Bytes: int64(bytes),
		Start: start, End: end,
	})
	s.total++
	h := s.hists[layer][op]
	if h == nil {
		h = hist.New()
		s.hists[layer][op] = h
	}
	h.Record(end - start)
}

// RecordEdge appends a happens-before edge to the edge ring, evicting the
// oldest entry once the ring is full.
func (s *Shard) RecordEdge(e Edge) {
	if s == nil {
		return
	}
	s.edges = ringPut(s.edges, s.edgeTot, s.edgeCap, e)
	s.edgeTot++
}

// Hist returns the (layer, op) latency histogram, nil when no event of that
// class was recorded.
func (s *Shard) Hist(layer Layer, op Op) *hist.Hist {
	if s == nil {
		return nil
	}
	return s.hists[layer][op]
}

// EdgesRecorded returns how many edges were ever recorded, including
// dropped ones.
func (s *Shard) EdgesRecorded() uint64 {
	if s == nil {
		return 0
	}
	return s.edgeTot
}

// EdgesDropped returns how many edges were evicted by ring wrap-around.
func (s *Shard) EdgesDropped() uint64 {
	if s == nil {
		return 0
	}
	if s.edgeTot <= uint64(len(s.edges)) {
		return 0
	}
	return s.edgeTot - uint64(len(s.edges))
}

// Edges returns the retained edges, oldest first (nondecreasing End, since
// each edge ends at its recording image's current clock). The slice is
// freshly allocated; call only after the world's Run has returned.
func (s *Shard) Edges() []Edge {
	if s == nil {
		return nil
	}
	n := s.edgeTot
	capU := uint64(len(s.edges))
	if n <= capU {
		return append([]Edge(nil), s.edges[:n]...)
	}
	out := make([]Edge, 0, capU)
	start := n % capU
	out = append(out, s.edges[start:]...)
	out = append(out, s.edges[:start]...)
	return out
}

// Add increments counter c by d.
func (s *Shard) Add(c Counter, d int64) {
	if s == nil {
		return
	}
	s.counters[c] += d
}

// Max raises gauge c to v if v exceeds the current high-water mark.
func (s *Shard) Max(c Counter, v int64) {
	if s == nil {
		return
	}
	if v > s.counters[c] {
		s.counters[c] = v
	}
}

// CommAdd charges one operation of the given size to the dst column of this
// image's communication-matrix row. Below DenseCommThreshold images the row
// is a dense array; above, a sparse per-peer map allocated on first use, so
// an image's comm state costs O(peers actually talked to).
func (s *Shard) CommAdd(dst int, bytes int64) {
	if s == nil {
		return
	}
	if s.matCount != nil {
		s.matCount[dst]++
		s.matBytes[dst] += bytes
		return
	}
	if s.matSparse == nil {
		s.matSparse = make(map[int32]commCell)
	}
	c := s.matSparse[int32(dst)]
	c.count++
	c.bytes += bytes
	s.matSparse[int32(dst)] = c
}

// CommPeers returns the number of destinations this image has sent to.
func (s *Shard) CommPeers() int {
	if s == nil {
		return 0
	}
	if s.matCount != nil {
		n := 0
		for _, c := range s.matCount {
			if c != 0 {
				n++
			}
		}
		return n
	}
	return len(s.matSparse)
}

// CommEntries returns the image's comm row as a slice of non-zero peer
// entries sorted by destination rank — the same view regardless of whether
// the row is stored densely or sparsely. Call only after Run has returned.
func (s *Shard) CommEntries() []PeerStat {
	if s == nil {
		return nil
	}
	if s.matCount != nil {
		out := make([]PeerStat, 0, 8)
		for dst, c := range s.matCount {
			if c != 0 || s.matBytes[dst] != 0 {
				out = append(out, PeerStat{Dst: dst, Count: c, Bytes: s.matBytes[dst]})
			}
		}
		return out
	}
	out := make([]PeerStat, 0, len(s.matSparse))
	for dst, c := range s.matSparse {
		out = append(out, PeerStat{Dst: int(dst), Count: c.count, Bytes: c.bytes})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Dst < out[j].Dst })
	return out
}

// RingCap returns the event ring's capacity (its maximum size, not the
// currently allocated backing length).
func (s *Shard) RingCap() int {
	if s == nil {
		return 0
	}
	return s.ringCap
}

// sparseCellBytes approximates the per-entry footprint of the sparse comm
// map: key + value plus Go map bucket overhead (~1.5x headroom).
const sparseCellBytes = int64(unsafe.Sizeof(int32(0))+unsafe.Sizeof(commCell{})) * 3 / 2

// MemBytes returns an accounting estimate of this shard's memory footprint:
// the struct itself, ring backing arrays at their current (lazily grown)
// lengths, comm rows (dense arrays or sparse map entries), and allocated
// histograms. It is the source of the obs_bytes_per_image gauge; the scaling
// probes use it to demonstrate that per-image obs memory is a function of
// activity, not of world size.
func (s *Shard) MemBytes() int64 {
	if s == nil {
		return 0
	}
	total := int64(unsafe.Sizeof(*s))
	total += int64(len(s.ring)) * int64(unsafe.Sizeof(Event{}))
	total += int64(len(s.edges)) * int64(unsafe.Sizeof(Edge{}))
	total += int64(len(s.matCount)+len(s.matBytes)) * int64(unsafe.Sizeof(int64(0)))
	total += int64(len(s.matSparse)) * sparseCellBytes
	for i := range s.hists {
		for j := range s.hists[i] {
			if s.hists[i][j] != nil {
				total += int64(unsafe.Sizeof(hist.Hist{}))
			}
		}
	}
	return total
}

// Counter returns the current value of c (0 on a nil shard).
func (s *Shard) Counter(c Counter) int64 {
	if s == nil {
		return 0
	}
	return s.counters[c]
}

// Recorded returns how many events were ever recorded, including dropped
// ones.
func (s *Shard) Recorded() uint64 {
	if s == nil {
		return 0
	}
	return s.total
}

// Dropped returns how many events were evicted by ring wrap-around.
func (s *Shard) Dropped() uint64 {
	if s == nil {
		return 0
	}
	if s.total <= uint64(len(s.ring)) {
		return 0
	}
	return s.total - uint64(len(s.ring))
}

// Events returns the retained events, oldest first. The slice is freshly
// allocated; it is safe to call after the world's Run has returned.
func (s *Shard) Events() []Event {
	if s == nil {
		return nil
	}
	n := s.total
	capU := uint64(len(s.ring))
	if n <= capU {
		return append([]Event(nil), s.ring[:n]...)
	}
	out := make([]Event, 0, capU)
	start := n % capU // oldest retained entry
	out = append(out, s.ring[start:]...)
	out = append(out, s.ring[:start]...)
	return out
}
