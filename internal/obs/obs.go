// Package obs is the runtime observability subsystem: structured per-image
// event timelines, counters/gauges, and an N×N communication matrix, all
// keyed by virtual time. It is the per-operation, per-peer visibility layer
// beneath internal/trace's coarse category accumulators — the difference
// between knowing "event_notify took 200s" and seeing *which* FlushAll scans
// and SRQ stalls produced it.
//
// Design, mirroring trace.Tracer's nil-safety contract:
//
//   - The world-wide registry (*World) is created once per sim.World by
//     Enable and found again — without creating it — by Enabled. When
//     observability is off, every handle is nil and every method on a nil
//     receiver returns immediately with no allocation, so instrumented hot
//     paths cost a pointer compare.
//   - Each image records into its own *Shard, written only from the image's
//     goroutine — lock-free by the same ownership discipline as the virtual
//     clock. Shards are merged (read) only after sim.World.Run returns,
//     which the run's WaitGroup orders.
//   - Events land in a fixed-capacity ring per image: a long run keeps the
//     most recent window instead of growing without bound; the drop count
//     is reported so truncation is never silent.
package obs

import (
	"fmt"

	"cafmpi/internal/obs/hist"
	"cafmpi/internal/sim"
)

// Layer identifies the stack layer that recorded an event.
type Layer uint8

// Layers.
const (
	LayerFabric Layer = iota
	LayerMPI
	LayerGASNet
	LayerSubstrate
	LayerRuntime // core runtime: event notify/wait, above the substrates
	numLayers
)

var layerNames = [...]string{"fabric", "mpi", "gasnet", "substrate", "runtime"}

func (l Layer) String() string {
	if int(l) >= len(layerNames) {
		return fmt.Sprintf("Layer(%d)", int(l))
	}
	return layerNames[l]
}

// Op identifies the kind of operation an event records.
type Op uint8

// Ops.
const (
	OpInject          Op = iota // fabric: message injection (eager or rendezvous)
	OpDeliver                   // fabric: eager message matched/absorbed
	OpRendezvousMatch           // fabric: rendezvous message matched (round trip)
	OpRMAPut                    // fabric: one-sided write wire transfer
	OpPut                       // mpi/gasnet/substrate: one-sided write issue
	OpGet                       // mpi/gasnet/substrate: one-sided read
	OpAccumulate                // mpi: atomic accumulate / fetch-op / CAS
	OpFlush                     // mpi: MPI_WIN_FLUSH
	OpFlushAll                  // mpi: MPI_WIN_FLUSH_ALL (tag = ranks scanned)
	OpLockAll                   // mpi: MPI_WIN_LOCK_ALL
	OpSend                      // mpi: two-sided send issue
	OpRecv                      // mpi: two-sided receive delivery
	OpAMSend                    // gasnet/substrate: active-message send
	OpAMDeliver                 // gasnet: active-message delivery (incl. SRQ stall)
	OpBarrier                   // gasnet: dissemination barrier
	OpNBISync                   // gasnet: implicit-handle sync (tag = ops synced)
	OpFence                     // substrate: release/local fence
	OpEventNotify               // runtime: event_notify (fence + notification AM)
	OpEventWait                 // runtime: event_wait blocking span (tag = slot)
	OpFault                     // fabric: injected fault(s) on a send (drop/retry/dup/delay)
	numOps
)

var opNames = [...]string{
	"inject", "deliver", "rdv_match", "rma_put",
	"put", "get", "accumulate", "flush", "flush_all", "lock_all",
	"send", "recv", "am_send", "am_deliver", "barrier", "nbi_sync", "fence",
	"event_notify", "event_wait", "fault",
}

func (o Op) String() string {
	if int(o) >= len(opNames) {
		return fmt.Sprintf("Op(%d)", int(o))
	}
	return opNames[o]
}

// Counter indexes the counter/gauge registry. Most entries are monotone
// counters (merged across images by summation); entries for which IsGauge
// reports true are high-water marks (merged by max).
type Counter int

// Counters and gauges.
const (
	CtrMsgsSent Counter = iota
	CtrMsgsRecv
	CtrBytesSent
	CtrBytesRecv
	CtrEagerMsgs
	CtrRendezvousMsgs
	CtrRDMAPuts
	CtrRDMAGets
	CtrRDMAAtomics
	CtrRDMABytes
	CtrAMsSent
	CtrAMsDelivered
	CtrSRQStallNS
	CtrFlushCalls
	CtrFlushAllCalls
	CtrFlushAllScannedOps
	CtrRflushAllCalls
	CtrLockAllCalls
	CtrNBISyncs
	CtrPolls
	CtrUnexpectedDepthMax   // gauge: deepest unexpected-message queue seen
	CtrPendingRMAMax        // gauge: most unflushed RMA ops outstanding at once
	CtrPoolBytesInFlightMax // gauge: most pooled payload bytes checked out at once
	CtrFaultsInjected       // fault events injected (drops, dups, delays, reorders, ...)
	CtrFaultRetries         // retransmissions the delivery protocol performed
	CtrFaultRetryNS         // virtual ns senders spent in ack timeouts and backoff
	CtrFaultDedupDrops      // duplicate copies suppressed by the receive-side sweep
	numCounters
)

var counterNames = [...]string{
	"msgs_sent",
	"msgs_recv",
	"bytes_sent",
	"bytes_recv",
	"eager_msgs",
	"rendezvous_msgs",
	"rdma_puts",
	"rdma_gets",
	"rdma_atomics",
	"rdma_bytes",
	"ams_sent",
	"ams_delivered",
	"srq_stall_ns",
	"flush_calls",
	"flushall_calls",
	"flushall_scanned_ops",
	"rflushall_calls",
	"lockall_calls",
	"nbi_syncs",
	"polls",
	"unexpected_queue_max",
	"pending_rma_max",
	"pool_bytes_inflight_max",
	"faults_injected",
	"fault_retries",
	"fault_retry_wait_ns",
	"fault_dedup_drops",
}

func (c Counter) String() string {
	if c < 0 || int(c) >= len(counterNames) {
		return fmt.Sprintf("Counter(%d)", int(c))
	}
	return counterNames[c]
}

// IsGauge reports whether c is a high-water gauge (merged by max) rather
// than a monotone counter (merged by sum).
func (c Counter) IsGauge() bool {
	return c == CtrUnexpectedDepthMax || c == CtrPendingRMAMax || c == CtrPoolBytesInFlightMax
}

// Counters returns all counters in declaration order.
func Counters() []Counter {
	out := make([]Counter, numCounters)
	for i := range out {
		out[i] = Counter(i)
	}
	return out
}

// Component is a LogGP-style cost component, the unit of blame in the
// critical-path decomposition: o (CPU overhead), L (wire latency), G
// (bandwidth/serialization), g (NIC queueing gap), plus the runtime-level
// costs the paper's analysis names — tag matching, SRQ stalls, flush_all's
// linear rank scan, flush completion waits, and event-wait blocking.
// CompCompute is everything in between edges: application computation and
// idle polling.
type Component uint8

// Components.
const (
	CompCompute   Component = iota // application compute / idle between edges
	CompOverhead                   // o: per-message CPU overhead (send+recv)
	CompLatency                    // L: wire latency
	CompBandwidth                  // G: serialization / wire occupancy
	CompGap                        // g: NIC queueing behind other transfers
	CompMatch                      // receive-side tag matching / AM dispatch
	CompSRQStall                   // GASNet shared-receive-queue saturation stall
	CompFlushScan                  // MPI flush_all linear per-rank scan
	CompFlushWait                  // blocking on remote completion of own RMA
	CompEventWait                  // event_wait blocking (fallback attribution)
	NumComponents
)

var componentNames = [...]string{
	"compute", "o_overhead", "L_latency", "G_bandwidth", "g_nic_gap",
	"match", "srq_stall", "flush_scan", "flush_wait", "event_wait",
}

func (c Component) String() string {
	if int(c) >= len(componentNames) {
		return fmt.Sprintf("Component(%d)", int(c))
	}
	return componentNames[c]
}

// CompSpan is one component's share of an edge's covered interval.
type CompSpan struct {
	NS int64
	C  Component
}

// MaxEdgeComps bounds the per-edge decomposition (a blocked eager delivery
// needs L+G+g+o+match+stall).
const MaxEdgeComps = 6

// Edge is one happens-before record for the critical-path walker: the
// operation covered virtual time [Start,End] on the recording image, and —
// when Jump is set — was enabled by image Peer at Peer-local time SrcT
// (message injection, event notify), so the walker crosses images there.
// Comps decompose the covered interval ([SrcT,End] for jumps, [Start,End]
// otherwise); any remainder is attributed to CompCompute.
type Edge struct {
	Start  int64
	End    int64
	SrcT   int64 // enabler's virtual time; meaningful when Jump
	Layer  Layer
	Op     Op
	Peer   int32 // enabling image (world rank); -1 when local
	Jump   bool  // completion was constrained by Peer: walk to (Peer, SrcT)
	NComps uint8
	Comps  [MaxEdgeComps]CompSpan
}

// AddComp appends ns of component c to the edge's decomposition, merging
// with an existing span of the same component and dropping non-positive
// spans. Silently drops overflow beyond MaxEdgeComps (the walker attributes
// the remainder to compute).
func (e *Edge) AddComp(c Component, ns int64) {
	if ns <= 0 {
		return
	}
	for i := 0; i < int(e.NComps); i++ {
		if e.Comps[i].C == c {
			e.Comps[i].NS += ns
			return
		}
	}
	if int(e.NComps) < MaxEdgeComps {
		e.Comps[e.NComps] = CompSpan{NS: ns, C: c}
		e.NComps++
	}
}

// Event is one structured timeline entry, stamped with virtual nanoseconds.
type Event struct {
	Layer Layer
	Op    Op
	Peer  int32 // remote image (world rank), -1 when not peer-directed
	Tag   int32 // op-specific detail: MPI tag, handler id, scan length, ...
	Bytes int64
	Start int64 // virtual ns
	End   int64 // virtual ns
}

// DefaultRingCap is the per-image event ring capacity when Enable is called
// with cap <= 0.
const DefaultRingCap = 4096

// DefaultEdgeRingCap is the per-image happens-before edge ring capacity.
// Edges are denser than events (every message produces an inject and a
// delivery edge) and the critical-path walker degrades to unattributed time
// where they have wrapped, so the ring is larger; it also scales up with an
// explicitly enlarged event ring.
const DefaultEdgeRingCap = 16384

const worldKey = "obs.world"

// World is the per-sim.World observability registry: one shard per image.
type World struct {
	n       int
	ringCap int
	shards  []*Shard
}

// Enable returns the world's observability registry, creating it (with the
// given per-image ring capacity) on first call. Later calls — from the other
// images booting — return the same registry and ignore ringCap. It must be
// called before the instrumented layers attach (core.Boot enables it before
// constructing the substrate), so layers can cache their shard once.
func Enable(w *sim.World, ringCap int) *World {
	if ringCap <= 0 {
		ringCap = DefaultRingCap
	}
	edgeCap := DefaultEdgeRingCap
	if ringCap > edgeCap {
		edgeCap = ringCap
	}
	return w.Shared(worldKey, func() any {
		ow := &World{n: w.N(), ringCap: ringCap, shards: make([]*Shard, w.N())}
		for i := range ow.shards {
			ow.shards[i] = &Shard{
				ring:     make([]Event, ringCap),
				edges:    make([]Edge, edgeCap),
				matCount: make([]int64, w.N()),
				matBytes: make([]int64, w.N()),
			}
		}
		return ow
	}).(*World)
}

// Enabled returns the world's registry if Enable was ever called on it, and
// nil otherwise — without creating anything. Layers call this at attach time
// and cache the (possibly nil) result.
func Enabled(w *sim.World) *World {
	if w == nil {
		return nil
	}
	if v, ok := w.Peek(worldKey); ok {
		return v.(*World)
	}
	return nil
}

// For returns image p's shard, or nil when observability is off. The result
// must only be written from p's goroutine.
func For(p *sim.Proc) *Shard {
	return Enabled(p.World()).Shard(p.ID())
}

// N returns the world size (0 on a nil registry).
func (w *World) N() int {
	if w == nil {
		return 0
	}
	return w.n
}

// Shard returns image i's shard (nil on a nil registry).
func (w *World) Shard(i int) *Shard {
	if w == nil {
		return nil
	}
	return w.shards[i]
}

// Shard is one image's lock-free recording surface. All mutating methods are
// nil-safe no-ops and must otherwise be called only from the owning image's
// goroutine.
type Shard struct {
	ring     []Event
	total    uint64 // events ever recorded (ring wraps at len(ring))
	edges    []Edge
	edgeTot  uint64 // edges ever recorded (ring wraps at len(edges))
	counters [numCounters]int64
	matCount []int64 // per-destination message/op count
	matBytes []int64 // per-destination bytes
	hists    [numLayers][numOps]*hist.Hist
}

// Record appends a structured event to the ring, evicting the oldest entry
// once the ring is full, and feeds the (layer, op) latency histogram.
func (s *Shard) Record(layer Layer, op Op, peer, bytes, tag int, start, end int64) {
	if s == nil {
		return
	}
	s.ring[s.total%uint64(len(s.ring))] = Event{
		Layer: layer, Op: op,
		Peer: int32(peer), Tag: int32(tag), Bytes: int64(bytes),
		Start: start, End: end,
	}
	s.total++
	h := s.hists[layer][op]
	if h == nil {
		h = hist.New()
		s.hists[layer][op] = h
	}
	h.Record(end - start)
}

// RecordEdge appends a happens-before edge to the edge ring, evicting the
// oldest entry once the ring is full.
func (s *Shard) RecordEdge(e Edge) {
	if s == nil {
		return
	}
	s.edges[s.edgeTot%uint64(len(s.edges))] = e
	s.edgeTot++
}

// Hist returns the (layer, op) latency histogram, nil when no event of that
// class was recorded.
func (s *Shard) Hist(layer Layer, op Op) *hist.Hist {
	if s == nil {
		return nil
	}
	return s.hists[layer][op]
}

// EdgesRecorded returns how many edges were ever recorded, including
// dropped ones.
func (s *Shard) EdgesRecorded() uint64 {
	if s == nil {
		return 0
	}
	return s.edgeTot
}

// EdgesDropped returns how many edges were evicted by ring wrap-around.
func (s *Shard) EdgesDropped() uint64 {
	if s == nil {
		return 0
	}
	if s.edgeTot <= uint64(len(s.edges)) {
		return 0
	}
	return s.edgeTot - uint64(len(s.edges))
}

// Edges returns the retained edges, oldest first (nondecreasing End, since
// each edge ends at its recording image's current clock). The slice is
// freshly allocated; call only after the world's Run has returned.
func (s *Shard) Edges() []Edge {
	if s == nil {
		return nil
	}
	n := s.edgeTot
	capU := uint64(len(s.edges))
	if n <= capU {
		return append([]Edge(nil), s.edges[:n]...)
	}
	out := make([]Edge, 0, capU)
	start := n % capU
	out = append(out, s.edges[start:]...)
	out = append(out, s.edges[:start]...)
	return out
}

// Add increments counter c by d.
func (s *Shard) Add(c Counter, d int64) {
	if s == nil {
		return
	}
	s.counters[c] += d
}

// Max raises gauge c to v if v exceeds the current high-water mark.
func (s *Shard) Max(c Counter, v int64) {
	if s == nil {
		return
	}
	if v > s.counters[c] {
		s.counters[c] = v
	}
}

// CommAdd charges one operation of the given size to the dst column of this
// image's communication-matrix row.
func (s *Shard) CommAdd(dst int, bytes int64) {
	if s == nil {
		return
	}
	s.matCount[dst]++
	s.matBytes[dst] += bytes
}

// Counter returns the current value of c (0 on a nil shard).
func (s *Shard) Counter(c Counter) int64 {
	if s == nil {
		return 0
	}
	return s.counters[c]
}

// Recorded returns how many events were ever recorded, including dropped
// ones.
func (s *Shard) Recorded() uint64 {
	if s == nil {
		return 0
	}
	return s.total
}

// Dropped returns how many events were evicted by ring wrap-around.
func (s *Shard) Dropped() uint64 {
	if s == nil {
		return 0
	}
	if s.total <= uint64(len(s.ring)) {
		return 0
	}
	return s.total - uint64(len(s.ring))
}

// Events returns the retained events, oldest first. The slice is freshly
// allocated; it is safe to call after the world's Run has returned.
func (s *Shard) Events() []Event {
	if s == nil {
		return nil
	}
	n := s.total
	capU := uint64(len(s.ring))
	if n <= capU {
		return append([]Event(nil), s.ring[:n]...)
	}
	out := make([]Event, 0, capU)
	start := n % capU // oldest retained entry
	out = append(out, s.ring[start:]...)
	out = append(out, s.ring[:start]...)
	return out
}
