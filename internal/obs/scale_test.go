package obs

import (
	"strings"
	"testing"

	"cafmpi/internal/sim"
)

// Identical per-image activity must cost identical shard memory whether the
// world has 128 or 1024 images: above DenseCommThreshold nothing in a shard
// is O(P). This is the ROADMAP item 1 memory bound, asserted exactly.
func TestShardMemoryIndependentOfWorldSize(t *testing.T) {
	work := func(n int) (*Shard, int64) {
		w := sim.NewWorld(n)
		sh := Enable(w, 0).Shard(0)
		for i := 0; i < 500; i++ {
			sh.Record(LayerMPI, OpPut, i%16, 64, 0, int64(i), int64(i+1))
			sh.RecordEdge(Edge{Start: int64(i), End: int64(i + 1)})
			sh.CommAdd(i%16, 64)
		}
		return sh, sh.MemBytes()
	}
	sh128, mem128 := work(128)
	_, mem1024 := work(1024)
	if mem128 != mem1024 {
		t.Errorf("sparse shard memory scales with world size: np=128 -> %d bytes, np=1024 -> %d bytes", mem128, mem1024)
	}
	if got := sh128.CommPeers(); got != 16 {
		t.Errorf("CommPeers = %d, want 16", got)
	}
	// The dense equivalent would hold two int64 rows of length N; the sparse
	// row must stay well below that at np=1024 (16 active peers).
	denseRows := int64(2 * 1024 * 8)
	var sparseRows int64 = sparseCellBytes * 16
	if sparseRows >= denseRows {
		t.Fatalf("sparse row accounting (%d) not below dense rows (%d)", sparseRows, denseRows)
	}
}

// An idle shard in a big world must cost only its own struct: rings are
// lazily allocated and sparse comm maps do not exist until first use.
func TestIdleShardCostsNothingAtNP1024(t *testing.T) {
	w := sim.NewWorld(1024)
	ow := Enable(w, 0)
	idle := ow.Shard(512)
	base := idle.MemBytes()
	if base > 4096 {
		t.Errorf("idle shard costs %d bytes; want only the struct (<= 4KiB)", base)
	}
	if idle.RingCap() != DefaultRingCap {
		t.Errorf("RingCap = %d, want %d", idle.RingCap(), DefaultRingCap)
	}
}

// A lazily grown ring must preserve wrap semantics through its doubling
// phase: growth happens only while total == len(ring), so once full it
// behaves exactly like the old eagerly allocated ring.
func TestGrownRingWrapOrdering(t *testing.T) {
	w := sim.NewWorld(1)
	sh := Enable(w, 256).Shard(0)
	const total = 1000
	for i := 0; i < total; i++ {
		sh.Record(LayerMPI, OpPut, 0, i, i, int64(i), int64(i+1))
	}
	if sh.Recorded() != total {
		t.Errorf("Recorded = %d, want %d", sh.Recorded(), total)
	}
	if want := uint64(total - 256); sh.Dropped() != want {
		t.Errorf("Dropped = %d, want %d", sh.Dropped(), want)
	}
	evs := sh.Events()
	if len(evs) != 256 {
		t.Fatalf("retained %d events, want 256", len(evs))
	}
	for i, e := range evs {
		if want := int32(total - 256 + i); e.Tag != want {
			t.Fatalf("event %d tag = %d, want %d (wrap ordering broken across growth)", i, e.Tag, want)
		}
	}
}

// Above DenseCommThreshold the snapshot must not materialize N×N matrices:
// comm data is exported as per-source row summaries with bounded top-k, and
// the text rendering is the summary form.
func TestSnapshotSparseCommExport(t *testing.T) {
	const n = DenseCommThreshold + 8
	w := sim.NewWorld(n)
	ow := Enable(w, 0)
	sh := ow.Shard(3)
	for dst := 0; dst < 20; dst++ {
		for k := 0; k <= dst; k++ {
			sh.CommAdd(dst, 10)
		}
	}
	snap := ow.Snapshot()
	if snap.CommCount != nil || snap.CommBytes != nil {
		t.Error("dense comm matrices materialized above DenseCommThreshold")
	}
	if len(snap.Comm) != 1 {
		t.Fatalf("snapshot has %d comm rows, want 1 (zero rows must be skipped)", len(snap.Comm))
	}
	row := snap.Comm[0]
	if row.Src != 3 || row.Peers != 20 {
		t.Errorf("comm row = src %d peers %d, want src 3 peers 20", row.Src, row.Peers)
	}
	if len(row.Top) != CommTopK {
		t.Errorf("top-k has %d entries, want %d", len(row.Top), CommTopK)
	}
	// Heaviest destination first: dst 19 carries the most bytes.
	if row.Top[0].Dst != 19 {
		t.Errorf("top entry dst = %d, want 19", row.Top[0].Dst)
	}
	txt := snap.CommMatrixText()
	if !strings.Contains(txt, "comm summary") {
		t.Errorf("CommMatrixText above threshold did not render the summary form:\n%s", txt)
	}
	if snap.ObsBytesPerImage <= 0 {
		t.Error("snapshot did not self-meter obs bytes per image")
	}
	if snap.Counters[CtrObsBytesPerImage.String()] != snap.ObsBytesPerImage {
		t.Error("obs_bytes_per_image counter not populated from the self-meter")
	}
}

// At or below the threshold the dense path (and its full-matrix rendering)
// must be preserved, with all-zero rows skipped.
func TestSnapshotDenseCommExport(t *testing.T) {
	w := sim.NewWorld(4)
	ow := Enable(w, 0)
	ow.Shard(1).CommAdd(2, 99)
	snap := ow.Snapshot()
	if snap.CommCount == nil || snap.CommCount[1][2] != 1 || snap.CommBytes[1][2] != 99 {
		t.Fatalf("dense comm matrices wrong: %+v", snap.CommCount)
	}
	if len(snap.Comm) != 1 || snap.Comm[0].Src != 1 {
		t.Errorf("comm rows = %+v, want one row for src 1", snap.Comm)
	}
	txt := snap.CommMatrixText()
	if !strings.Contains(txt, "all-zero rows skipped") {
		t.Errorf("dense rendering did not skip zero rows:\n%s", txt)
	}
}
