// Package cgpop implements the CGPOP miniapp the paper evaluates in §4.4:
// the conjugate-gradient solver extracted from LANL POP 2.0 (global ocean
// model), ported to a hybrid MPI+CAF form. Each solver iteration performs
// one halo exchange between neighboring subdomains — expressed with CAF
// coarray one-sided operations, in PUSH (put to neighbor halos) or PULL
// (get from neighbor boundaries) style — and one 3-word GlobalSum vector
// reduction performed with plain MPI, exercising both models in one code.
//
// Under CAF-MPI the GlobalSum reuses the runtime's own MPI library (full
// interoperability); under CAF-GASNet a second, independent MPI runtime is
// initialized alongside GASNet — the duplicated-runtime configuration whose
// memory cost Figure 1 quantifies.
package cgpop

import (
	"fmt"
	"math"

	"cafmpi/caf"
	"cafmpi/internal/fabric"
	"cafmpi/internal/mpi"
)

// Config parameterizes the solver.
type Config struct {
	// NX, NY: global grid dimensions (5-point Laplacian). NY must be
	// divisible by the image count.
	NX, NY int
	// Iters: solver iterations to run (the paper measures fixed work).
	Iters int
	// Pull selects the PULL halo exchange (get-based); default is PUSH
	// (put-based).
	Pull bool
}

// Result reports the measurement.
type Result struct {
	Seconds     float64
	Iterations  int
	InitialNorm float64
	FinalNorm   float64
	// DualRuntime is true when the GlobalSum had to initialize a second
	// MPI runtime beside the CAF substrate (the CAF-GASNet configuration).
	DualRuntime bool
	// RuntimeMemory is the per-image memory footprint of all initialized
	// communication runtimes (Figure 1's quantity).
	RuntimeMemory int64
}

// Run executes the CGPOP solver.
func Run(im *caf.Image, cfg Config) (Result, error) {
	p := im.N()
	if cfg.NY%p != 0 {
		return Result{}, fmt.Errorf("cgpop: NY (%d) must be divisible by the image count (%d)", cfg.NY, p)
	}
	if cfg.NX < 3 || cfg.NY < 3 {
		return Result{}, fmt.Errorf("cgpop: grid %dx%d too small", cfg.NX, cfg.NY)
	}
	nx := cfg.NX
	rows := cfg.NY / p
	me := im.ID()

	// GlobalSum transport: the runtime's MPI under CAF-MPI, a second MPI
	// runtime under CAF-GASNet (as the original CGPOP-on-CAF2.0 did).
	var comm *mpi.Comm
	res := Result{Iterations: cfg.Iters}
	if env, err := caf.MPIEnv(im); err == nil {
		comm = env.CommWorld()
		res.RuntimeMemory = im.MemoryFootprint()
	} else {
		env := mpi.Init(im.Proc(), fabric.AttachNet(im.Proc().World(), im.Platform()))
		comm = env.CommWorld()
		res.DualRuntime = true
		res.RuntimeMemory = im.MemoryFootprint() + env.MemoryFootprint()
	}

	// The vector being multiplied each iteration lives in a coarray with
	// one halo row above and below: rows+2 rows of nx points.
	pad := (rows + 2) * nx
	rCo, err := im.AllocCoarray(im.World(), pad*8)
	if err != nil {
		return Result{}, err
	}
	defer rCo.Free()
	r := caf.BytesF64(rCo.Local()) // (rows+2) x nx, row-major, halo at 0 and rows+1
	evs, err := im.NewEvents(im.World(), 2)
	if err != nil {
		return Result{}, err
	}
	defer evs.Free()
	const evFromAbove, evFromBelow = 0, 1

	// Problem setup: A = 2-D 5-point Laplacian (Dirichlet), b = A·u_exact.
	uExact := func(gi, gj int) float64 {
		return math.Sin(math.Pi*float64(gi+1)/float64(cfg.NY+1)) *
			math.Cos(2*math.Pi*float64(gj)/float64(nx)) // gi: global row
	}
	b := make([]float64, rows*nx)
	for i := 0; i < rows; i++ {
		gi := me*rows + i
		for j := 0; j < nx; j++ {
			c := 4*uExact(gi, j) - uExact(gi, (j+1)%nx) - uExact(gi, (j-1+nx)%nx)
			if gi+1 < cfg.NY {
				c -= uExact(gi+1, j)
			}
			if gi-1 >= 0 {
				c -= uExact(gi-1, j)
			}
			b[i*nx+j] = c
		}
	}

	x := make([]float64, rows*nx)
	w := make([]float64, rows*nx)  // w = A r
	pv := make([]float64, rows*nx) // direction
	q := make([]float64, rows*nx)  // A p

	halo := &haloExchanger{im: im, co: rCo, evs: evs, nx: nx, rows: rows, pull: cfg.Pull}

	// applyA computes w = A·r for the interior rows, using the halo.
	applyA := func(dst []float64) error {
		if err := halo.exchange(); err != nil {
			return err
		}
		for i := 0; i < rows; i++ {
			ri := r[(i+1)*nx : (i+2)*nx]
			up := r[i*nx : (i+1)*nx]
			dn := r[(i+2)*nx : (i+3)*nx]
			for j := 0; j < nx; j++ {
				dst[i*nx+j] = 4*ri[j] - ri[(j+1)%nx] - ri[(j-1+nx)%nx] - up[j] - dn[j]
			}
		}
		im.Compute(int64(rows*nx) * 6)
		return nil
	}
	// globalSum3 is CGPOP's GlobalSum: a 3-word vector MPI reduction.
	globalSum3 := func(v *[3]float64) error {
		out := make([]float64, 3)
		if err := comm.Allreduce(mpi.F64Bytes(v[:]), mpi.F64Bytes(out), mpi.Float64, mpi.OpSum); err != nil {
			return err
		}
		copy(v[:], out)
		return nil
	}

	// r = b (x0 = 0), stored into the coarray interior.
	for i := 0; i < rows*nx; i++ {
		r[nx+i] = b[i]
	}

	if err := im.World().Barrier(); err != nil {
		return Result{}, err
	}
	t0 := im.Now()

	// Chronopoulos-Gear CG: one fused reduction per iteration computing
	// (gamma = r·r, delta = r·w, norm tracking word).
	if err := applyA(w); err != nil {
		return Result{}, err
	}
	var gammaOld, alpha, beta float64
	for it := 0; it < cfg.Iters; it++ {
		sums := [3]float64{0, 0, 0}
		for i := 0; i < rows*nx; i++ {
			ri := r[nx+i]
			sums[0] += ri * ri
			sums[1] += ri * w[i]
			sums[2] += math.Abs(ri)
		}
		im.Compute(int64(rows*nx) * 5)
		if err := globalSum3(&sums); err != nil {
			return Result{}, err
		}
		gamma, delta := sums[0], sums[1]
		if it == 0 {
			res.InitialNorm = math.Sqrt(gamma)
			alpha = gamma / delta
			copy(pv, r[nx:nx+rows*nx])
			copy(q, w)
		} else {
			beta = gamma / gammaOld
			alpha = gamma / (delta - beta*gamma/alpha)
			for i := 0; i < rows*nx; i++ {
				pv[i] = r[nx+i] + beta*pv[i]
				q[i] = w[i] + beta*q[i]
			}
			im.Compute(int64(rows*nx) * 4)
		}
		gammaOld = gamma
		for i := 0; i < rows*nx; i++ {
			x[i] += alpha * pv[i]
			r[nx+i] -= alpha * q[i]
		}
		im.Compute(int64(rows*nx) * 4)
		if err := applyA(w); err != nil {
			return Result{}, err
		}
	}

	if err := im.World().Barrier(); err != nil {
		return Result{}, err
	}
	res.Seconds = im.Now() - t0

	final := [3]float64{}
	for i := 0; i < rows*nx; i++ {
		final[0] += r[nx+i] * r[nx+i]
	}
	if err := globalSum3(&final); err != nil {
		return Result{}, err
	}
	res.FinalNorm = math.Sqrt(final[0])
	return res, nil
}

// haloExchanger moves boundary rows between vertical neighbors through the
// coarray, in PUSH (put + notify) or PULL (notify-ready + get) style — the
// two variants the paper's Figures 11/12 compare.
type haloExchanger struct {
	im       *caf.Image
	co       *caf.Coarray
	evs      *caf.Events
	nx, rows int
	pull     bool
}

func (h *haloExchanger) exchange() error {
	me, p, nx := h.im.ID(), h.im.N(), h.nx
	rowBytes := nx * 8
	up, down := me-1, me+1
	local := caf.BytesF64(h.co.Local())
	const evFromAbove, evFromBelow = 0, 1

	if !h.pull {
		// PUSH: write my edge rows into the neighbors' halo rows.
		if up >= 0 {
			// My first interior row -> neighbor's bottom halo (row rows+1).
			if err := h.co.PutDeferred(up, (h.rows+1)*rowBytes, caf.F64Bytes(local[nx:2*nx])); err != nil {
				return err
			}
			if err := h.evs.Notify(up, evFromBelow); err != nil {
				return err
			}
		}
		if down < p {
			// My last interior row -> neighbor's top halo (row 0).
			if err := h.co.PutDeferred(down, 0, caf.F64Bytes(local[h.rows*nx:(h.rows+1)*nx])); err != nil {
				return err
			}
			if err := h.evs.Notify(down, evFromAbove); err != nil {
				return err
			}
		}
		if up >= 0 {
			if err := h.evs.Wait(evFromAbove); err != nil {
				return err
			}
		}
		if down < p {
			if err := h.evs.Wait(evFromBelow); err != nil {
				return err
			}
		}
		return nil
	}

	// PULL: announce my boundary rows are ready, then get the neighbors'.
	if up >= 0 {
		if err := h.evs.Notify(up, evFromBelow); err != nil {
			return err
		}
	}
	if down < p {
		if err := h.evs.Notify(down, evFromAbove); err != nil {
			return err
		}
	}
	if up >= 0 {
		if err := h.evs.Wait(evFromAbove); err != nil {
			return err
		}
		// Neighbor's last interior row -> my top halo.
		if err := h.co.Get(up, h.rows*rowBytes, caf.F64Bytes(local[:nx])); err != nil {
			return err
		}
	}
	if down < p {
		if err := h.evs.Wait(evFromBelow); err != nil {
			return err
		}
		// Neighbor's first interior row -> my bottom halo.
		if err := h.co.Get(down, rowBytes, caf.F64Bytes(local[(h.rows+1)*nx:(h.rows+2)*nx])); err != nil {
			return err
		}
	}
	return nil
}
