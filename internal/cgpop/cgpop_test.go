package cgpop

import (
	"fmt"
	"math"
	"testing"

	"cafmpi/caf"
	"cafmpi/internal/fabric"
)

func testPlatform() *fabric.Params {
	p := fabric.Fusion
	p.Name = "test"
	p.GASNet.SRQ.Enabled = false
	return &p
}

func run(t *testing.T, sub caf.Substrate, n int, cfg Config) Result {
	t.Helper()
	var res Result
	c := caf.Config{Substrate: sub, Platform: testPlatform()}
	if err := caf.Run(n, c, func(im *caf.Image) error {
		r, err := Run(im, cfg)
		if err != nil {
			return err
		}
		if im.ID() == 0 {
			res = r
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	return res
}

func TestCGConvergesPush(t *testing.T) {
	for _, sub := range []caf.Substrate{caf.MPI, caf.GASNet} {
		res := run(t, sub, 4, Config{NX: 16, NY: 32, Iters: 60})
		if res.FinalNorm >= res.InitialNorm*1e-6 {
			t.Errorf("%s push: CG did not converge: %g -> %g", sub, res.InitialNorm, res.FinalNorm)
		}
	}
}

func TestCGConvergesPull(t *testing.T) {
	for _, sub := range []caf.Substrate{caf.MPI, caf.GASNet} {
		res := run(t, sub, 4, Config{NX: 16, NY: 32, Iters: 60, Pull: true})
		if res.FinalNorm >= res.InitialNorm*1e-6 {
			t.Errorf("%s pull: CG did not converge: %g -> %g", sub, res.InitialNorm, res.FinalNorm)
		}
	}
}

func TestPushPullSameNumerics(t *testing.T) {
	// The exchange style must not change the arithmetic.
	push := run(t, caf.MPI, 4, Config{NX: 12, NY: 24, Iters: 25})
	pull := run(t, caf.MPI, 4, Config{NX: 12, NY: 24, Iters: 25, Pull: true})
	if math.Abs(push.FinalNorm-pull.FinalNorm) > 1e-12*math.Max(1, push.FinalNorm) {
		t.Errorf("push residual %g != pull residual %g", push.FinalNorm, pull.FinalNorm)
	}
}

func TestSingleImageMatchesSerial(t *testing.T) {
	one := run(t, caf.MPI, 1, Config{NX: 12, NY: 24, Iters: 25})
	four := run(t, caf.MPI, 4, Config{NX: 12, NY: 24, Iters: 25})
	if math.Abs(one.FinalNorm-four.FinalNorm) > 1e-9*math.Max(1, one.FinalNorm) {
		t.Errorf("decomposition changed the numerics: 1 image %g vs 4 images %g", one.FinalNorm, four.FinalNorm)
	}
}

func TestDualRuntimeAccounting(t *testing.T) {
	// CAF-MPI: one shared runtime. CAF-GASNet: GlobalSum forces a second
	// MPI runtime; the memory footprint must reflect both (Figure 1).
	mpiRes := run(t, caf.MPI, 2, Config{NX: 8, NY: 8, Iters: 3})
	gnRes := run(t, caf.GASNet, 2, Config{NX: 8, NY: 8, Iters: 3})
	if mpiRes.DualRuntime {
		t.Error("CAF-MPI CGPOP should share one runtime")
	}
	if !gnRes.DualRuntime {
		t.Error("CAF-GASNet CGPOP must initialize a second MPI runtime")
	}
	if gnRes.RuntimeMemory <= mpiRes.RuntimeMemory {
		t.Errorf("duplicated runtimes (%d bytes) should cost more than the shared one (%d bytes)",
			gnRes.RuntimeMemory, mpiRes.RuntimeMemory)
	}
}

func TestValidation(t *testing.T) {
	c := caf.Config{Substrate: caf.MPI, Platform: testPlatform()}
	if err := caf.Run(3, c, func(im *caf.Image) error {
		if _, err := Run(im, Config{NX: 8, NY: 16, Iters: 1}); err == nil {
			return fmt.Errorf("NY=16 on 3 images accepted")
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
}
