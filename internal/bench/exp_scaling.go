// The scaling probe harness (ROADMAP item 1): sweep the process count into
// the regime where the paper's pathologies live — MPI_WIN_FLUSH_ALL's
// linear per-rank scan and GASNet's SRQ collapse at >=128 processes — and
// record each pathology's share of the critical path, plus the obs
// subsystem's own per-image memory to prove the telemetry stays O(activity)
// while the world grows to np=4096.
package bench

import (
	"encoding/json"
	"fmt"
	"os"

	"cafmpi/caf"
	"cafmpi/internal/hpcc"
	"cafmpi/internal/obs"
	"cafmpi/internal/obs/critpath"
)

// ScalingSweep is the process-count schedule of the scaling probes. The
// sweep deliberately reaches past the SRQ collapse point (128) into the
// paper's large-job regime; Options.MaxP trims it (CI smokes run 1024,
// the full acceptance run 4096).
var ScalingSweep = []int{8, 64, 128, 256, 1024, 4096}

// ScalingPoint is one (substrate, workload, mode, np) measurement.
type ScalingPoint struct {
	Substrate string `json:"substrate"`
	Workload  string `json:"workload"`
	// Mode is "flat" (the paper-faithful default) or "sparse" (the
	// scalable-sync fast path); every sweep point is measured in both so the
	// report carries paired curves.
	Mode string `json:"mode"`
	NP   int    `json:"np"`
	// VirtualS is the slowest image's final virtual clock.
	VirtualS float64 `json:"virtual_s"`
	// FlushScanShare and SRQStallShare are each component's fraction of the
	// critical path (critpath blame), the paper's flush-scan and SRQ-stall
	// curves.
	FlushScanShare float64 `json:"flush_scan_share"`
	SRQStallShare  float64 `json:"srq_stall_share"`
	// ObsBytesPerImage is the largest shard's self-metered footprint —
	// flat across NP for a fixed per-image workload (sparse comm mode).
	ObsBytesPerImage int64 `json:"obs_bytes_per_image"`
	// ActivePeersMax is the widest comm row (distinct destinations) any
	// image accumulated: the quantity obs memory actually scales with.
	ActivePeersMax int    `json:"active_peers_max"`
	EventsRecorded uint64 `json:"events_recorded"`
	// RuntimeBytesPerImage is the largest image's modeled substrate
	// footprint (MemoryFootprint): linear in NP with flat preallocated
	// per-peer state, flat in NP under sparse on-demand connections.
	RuntimeBytesPerImage int64 `json:"runtime_bytes_per_image"`
}

// ScalingReport is the BENCH_scaling.json document.
type ScalingReport struct {
	Platform string         `json:"platform"`
	Quick    bool           `json:"quick"`
	Points   []ScalingPoint `json:"points"`
}

// scalingPingPong bounces an event between the two farthest images; the
// rest of the world participates only in setup and teardown. With two
// active images at every NP, its obs memory curve isolates the sparse-mode
// claim: per-image telemetry cost tracks activity, not world size.
func scalingPingPong(im *caf.Image, iters int) error {
	evs, err := im.NewEvents(im.World(), 2)
	if err != nil {
		return err
	}
	last := im.N() - 1
	if im.ID() != 0 && im.ID() != last {
		return nil
	}
	for i := 0; i < iters; i++ {
		if im.ID() == 0 {
			if err := evs.Notify(last, 0); err != nil {
				return err
			}
			if last == 0 {
				if err := evs.Wait(0); err != nil {
					return err
				}
				continue
			}
			if err := evs.Wait(1); err != nil {
				return err
			}
		} else {
			if err := evs.Wait(0); err != nil {
				return err
			}
			if err := evs.Notify(0, 1); err != nil {
				return err
			}
		}
	}
	return nil
}

// scalingPoint runs one probe job and extracts the point's metrics. mode is
// "flat" (o.Platform as-is) or "sparse" (its scalable-sync variant).
func scalingPoint(o Options, sub caf.Substrate, np int, workload, mode string) (ScalingPoint, error) {
	pt := ScalingPoint{Substrate: string(sub), Workload: workload, Mode: mode, NP: np}
	ra := hpcc.RAConfig{TableBits: 8, UpdatesPerImage: 256, BatchSize: 64}
	iters := 200
	if o.Quick {
		ra.UpdatesPerImage = 64
		iters = 50
	}
	cfg := caf.Config{Substrate: sub, Platform: o.Platform, SparseFlush: mode == "sparse", Diag: caf.Diag{Observe: true}}
	clocks := make([]int64, np)
	mems := make([]int64, np)
	w, err := caf.RunWorld(np, cfg, func(im *caf.Image) error {
		defer func() {
			clocks[im.ID()] = im.Proc().Now()
			mems[im.ID()] = im.MemoryFootprint()
		}()
		switch workload {
		case "ra":
			_, err := hpcc.RandomAccess(im, ra)
			return err
		case "pingpong":
			return scalingPingPong(im, iters)
		default:
			return fmt.Errorf("bench: unknown scaling workload %q", workload)
		}
	})
	if err != nil {
		return pt, err
	}
	ow := obs.Enabled(w)
	if rep := critpath.Analyze(ow, clocks); rep != nil && rep.FinishNS > 0 {
		tot := rep.ComponentTotals()
		pt.FlushScanShare = float64(tot[obs.CompFlushScan.String()]) / float64(rep.FinishNS)
		pt.SRQStallShare = float64(tot[obs.CompSRQStall.String()]) / float64(rep.FinishNS)
	}
	pt.VirtualS = maxClockSeconds(clocks)
	for _, m := range mems {
		if m > pt.RuntimeBytesPerImage {
			pt.RuntimeBytesPerImage = m
		}
	}
	for i := 0; i < ow.N(); i++ {
		sh := ow.Shard(i)
		if mem := sh.MemBytes(); mem > pt.ObsBytesPerImage {
			pt.ObsBytesPerImage = mem
		}
		if k := sh.CommPeers(); k > pt.ActivePeersMax {
			pt.ActivePeersMax = k
		}
		pt.EventsRecorded += sh.Recorded()
	}
	return pt, nil
}

func scalingExperiment() Experiment {
	return Experiment{
		ID:    "scaling",
		Title: "Scaling pathology probes: flush-scan share, SRQ stall share, obs memory vs P",
		Paper: "FLUSH_ALL's per-rank scan grows linearly with P on CAF-MPI; GASNet SRQ stalls appear at >=128 processes and grow with P; per-image obs memory stays flat (sparse comm mode) while both pathologies climb. Every point is paired flat-vs-sparse: the scalable-sync mode's dirty-peer flushes collapse the flush-scan share and its on-demand connections flatten the per-image runtime footprint.",
		Run: func(o Options) (*Table, error) {
			o = o.withDefaults()
			report := &ScalingReport{Platform: o.Platform.Name, Quick: o.Quick}
			t := &Table{ID: "scaling",
				Title:  "Scaling pathology probes",
				XLabel: "processes", YLabel: "share of critical path / KiB per image",
				Notes: fmt.Sprintf("platform=%s sweep to maxp=%d; RA %s", o.Platform.Name, o.MaxP,
					"drives flush_all (MPI) and AM pressure (GASNet); ping-pong isolates obs memory")}
			for _, np := range ScalingSweep {
				if np > o.MaxP {
					continue
				}
				for _, sub := range []caf.Substrate{caf.MPI, caf.GASNet} {
					for _, workload := range []string{"ra", "pingpong"} {
						// Each point runs paired: flat (the paper-faithful
						// O(P) flush scans and preallocated eager pools) vs
						// sparse (the scalable-sync fast path), so the report
						// carries before/after curves on both substrates.
						for _, mode := range []string{"flat", "sparse"} {
							pt, err := scalingPoint(o, sub, np, workload, mode)
							if err != nil {
								return nil, fmt.Errorf("scaling %s/%s/%s np=%d: %w", sub, workload, mode, np, err)
							}
							report.Points = append(report.Points, pt)
							series := fmt.Sprintf("%s-%s-%s", sub, workload, mode)
							if workload == "ra" {
								if sub == caf.MPI {
									t.Rows = append(t.Rows, Row{Series: series + " flush_scan", X: np, Y: pt.FlushScanShare})
								} else {
									t.Rows = append(t.Rows, Row{Series: series + " srq_stall", X: np, Y: pt.SRQStallShare})
								}
							}
							if mode == "flat" {
								t.Rows = append(t.Rows, Row{Series: series + " obsKiB/img", X: np, Y: float64(pt.ObsBytesPerImage) / 1024})
							}
							if workload == "pingpong" {
								// The Figure 1 memory claim, paired: flat
								// preallocation grows with NP, on-demand
								// connections track the two active images.
								t.Rows = append(t.Rows, Row{Series: series + " rtMiB/img", X: np, Y: float64(pt.RuntimeBytesPerImage) / (1 << 20)})
							}
						}
					}
				}
			}
			if o.ScalingOut != "" {
				blob, err := json.MarshalIndent(report, "", "  ")
				if err != nil {
					return nil, err
				}
				if err := os.WriteFile(o.ScalingOut, append(blob, '\n'), 0o644); err != nil {
					return nil, fmt.Errorf("scaling: writing %s: %w", o.ScalingOut, err)
				}
			}
			return t, nil
		},
	}
}

func init() {
	register(scalingExperiment())
}
