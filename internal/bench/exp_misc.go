package bench

import (
	"fmt"
	"time"

	"cafmpi/caf"
	"cafmpi/internal/cgpop"
	"cafmpi/internal/fabric"
	"cafmpi/internal/gasnet"
	"cafmpi/internal/mpi"
	"cafmpi/internal/sim"
)

func init() {
	register(Experiment{
		ID:    "fig1",
		Title: "Per-process memory of dual runtimes",
		Paper: "GASNet-only ~26-39 MB, MPI-only ~107-115 MB, duplicated runtimes the sum — all growing with job size.",
		Run: func(o Options) (*Table, error) {
			o = o.withDefaults()
			ps := []int{16, 64, 256}
			if o.Quick {
				ps = []int{4, 16}
			}
			var filtered []int
			for _, p := range ps {
				if p <= o.MaxP {
					filtered = append(filtered, p)
				}
			}
			t := &Table{ID: "fig1", Title: "Per-process memory of dual runtimes", XLabel: "processes",
				YLabel: "MB", Notes: fmt.Sprintf("platform=%s", o.Platform.Name)}
			for _, p := range filtered {
				var gOnly, mOnly int64
				w := sim.NewWorld(p)
				err := w.Run(func(pr *sim.Proc) error {
					net := fabric.AttachNet(pr.World(), o.Platform)
					ep, err := gasnet.Attach(pr, net, 1<<20)
					if err != nil {
						return err
					}
					env := mpi.Init(pr, net)
					if pr.ID() == 0 {
						gOnly = ep.MemoryFootprint()
						mOnly = env.MemoryFootprint()
					}
					return nil
				})
				if err != nil {
					return nil, err
				}
				mb := func(b int64) float64 { return float64(b) / (1 << 20) }
				t.Rows = append(t.Rows,
					Row{Series: "GASNet-only", X: p, Y: mb(gOnly)},
					Row{Series: "MPI-only", X: p, Y: mb(mOnly)},
					Row{Series: "Duplicate Runtimes", X: p, Y: mb(gOnly + mOnly)},
				)
			}
			return t, nil
		},
	})

	register(Experiment{
		ID:    "fig2",
		Title: "Figure 2 interoperability scenario (coarray write + MPI barrier)",
		Paper: "A coarray write needing target-side progress deadlocks when every image sits in MPI_BARRIER; CAF-MPI's one-sided write completes.",
		Run: func(o Options) (*Table, error) {
			o = o.withDefaults()
			scenario := func(sub caf.Substrate, amWrite bool) (int, error) {
				w := sim.NewWorld(2)
				err := w.RunTimeout(2*time.Second, func(p *sim.Proc) error {
					cfg := caf.Config{Substrate: sub, Platform: o.Platform}
					cfg.GASNetOptions.AMWrite = amWrite
					im, err := caf.Boot(p, cfg)
					if err != nil {
						return err
					}
					co, err := im.AllocCoarray(im.World(), 1<<16)
					if err != nil {
						return err
					}
					var comm *mpi.Comm
					if env, err := caf.MPIEnv(im); err == nil {
						comm = env.CommWorld()
					} else {
						comm = mpi.Init(p, fabric.AttachNet(p.World(), o.Platform)).CommWorld()
					}
					if im.ID() == 0 {
						if err := co.Put(1, 0, make([]byte, 1<<16)); err != nil {
							return err
						}
					}
					return comm.Barrier()
				})
				if err == sim.ErrTimeout {
					return 1, nil
				}
				if err != nil {
					return 0, err
				}
				return 0, nil
			}
			t := &Table{ID: "fig2", Title: "Figure 2 scenario outcomes", XLabel: "configuration",
				YLabel: "1=deadlock 0=completes"}
			cases := []struct {
				label string
				sub   caf.Substrate
				am    bool
			}{
				{"CAF-GASNet (AM-mediated write)", caf.GASNet, true},
				{"CAF-GASNet (RDMA write)", caf.GASNet, false},
				{"CAF-MPI (one-sided write)", caf.MPI, false},
			}
			for i, c := range cases {
				out, err := scenario(c.sub, c.am)
				if err != nil {
					return nil, err
				}
				t.Rows = append(t.Rows, Row{Series: "outcome", X: i, Label: c.label, Y: float64(out)})
			}
			return t, nil
		},
	})

	register(cgpopFigure("fig11", "CGPOP on Fusion (execution time)", "fusion"))
	register(cgpopFigure("fig12", "CGPOP on Edison (execution time)", "edison"))

	register(Experiment{
		ID:    "tab1",
		Title: "Platform presets (Table 1 substitution)",
		Paper: "Fusion: 320-node IB QDR cluster with MVAPICH2; Edison: Cray XC30 with Cray MPICH; plus Mira (BG/Q) for the microbenchmarks.",
		Run: func(o Options) (*Table, error) {
			t := &Table{ID: "tab1", Title: "Platform presets", XLabel: "parameter", YLabel: "value"}
			for _, name := range []string{"fusion", "edison", "mira"} {
				p := fabric.Platform(name)
				add := func(label string, v float64) {
					t.Rows = append(t.Rows, Row{Series: name, Label: label, Y: v})
				}
				add("latency_ns", float64(p.LatencyNS))
				add("bandwidth_GBps", 1/p.GapPerByteNS)
				add("mpi_put_overhead_ns", float64(p.MPI.PutNS))
				add("gasnet_put_overhead_ns", float64(p.GASNet.PutNS))
				add("mpi_flush_scan_ns_per_rank", float64(p.MPI.FlushScanNS))
				srq := 0.0
				if p.GASNet.SRQ.Enabled {
					srq = float64(p.GASNet.SRQ.Threshold)
				}
				add("srq_threshold_procs", srq)
				add("flop_ns", p.FlopNS)
			}
			return t, nil
		},
	})
}

func cgpopFigure(id, title, platform string) Experiment {
	return Experiment{
		ID:    id,
		Title: title,
		Paper: "All four variants (PUSH/PULL x CAF-MPI/CAF-GASNet) lie on top of each other: both use MPI_REDUCE for GlobalSum and the one-sided halo costs are comparable (Figures 11/12).",
		Run: func(o Options) (*Table, error) {
			o = o.withDefaults()
			pf := fabric.Platform(platform)
			ps := o.pSweep(4)
			nx := 512
			ny := 2048
			if ny < 8*o.MaxP {
				ny = 8 * o.MaxP
			}
			iters := 60
			if o.Quick {
				iters = 15
				nx, ny = 256, 512
			}
			t := &Table{ID: id, Title: title, XLabel: "processes", YLabel: "execution time (s)",
				Notes: fmt.Sprintf("platform=%s grid=%dx%d iters=%d", platform, nx, ny, iters)}
			for _, v := range []struct {
				name string
				sub  caf.Substrate
				pull bool
			}{
				{"CAF-MPI (PUSH)", caf.MPI, false},
				{"CAF-MPI (PULL)", caf.MPI, true},
				{"CAF-GASNet (PUSH)", caf.GASNet, false},
				{"CAF-GASNet (PULL)", caf.GASNet, true},
			} {
				for _, p := range ps {
					if ny%p != 0 {
						continue
					}
					var secs float64
					err := job(o, pf, v.sub, p, false, func(im *caf.Image) error {
						res, err := cgpop.Run(im, cgpop.Config{NX: nx, NY: ny, Iters: iters, Pull: v.pull})
						if err != nil {
							return err
						}
						if im.ID() == 0 {
							secs = res.Seconds
						}
						return nil
					})
					if err != nil {
						return nil, fmt.Errorf("%s P=%d: %w", v.name, p, err)
					}
					t.Rows = append(t.Rows, Row{Series: v.name, X: p, Y: secs})
				}
			}
			return t, nil
		},
	}
}
