package bench

import (
	"fmt"

	"cafmpi/caf"
	"cafmpi/internal/fabric"
)

// microResult holds one platform/substrate microbenchmark point.
type microResult struct {
	read, write, notify, alltoall float64 // ops per second
}

// micro measures the paper's microbenchmark suite: blocking coarray read
// and write rates, event-notify rate, and team all-to-all rate.
func micro(o Options, platform *fabric.Params, sub caf.Substrate, p, k, ka int) (microResult, error) {
	var out microResult
	err := job(o, platform, sub, p, false, func(im *caf.Image) error {
		var mine microResult
		co, err := im.AllocCoarray(im.World(), 4096)
		if err != nil {
			return err
		}
		evs, err := im.NewEvents(im.World(), 1)
		if err != nil {
			return err
		}
		buf := make([]byte, 8)
		target := im.N() - 1 // farthest peer, as microbenchmarks do

		// rate measures n origin-side operations; for notify, the sustained
		// delivery rate observed at the target (as the paper's
		// EVENT_NOTIFY microbenchmark does).
		rate := func(name string, n int, fn func() error) (float64, error) {
			if err = im.World().Barrier(); err != nil {
				return 0, err
			}
			t0 := im.Now()
			if im.ID() == 0 {
				for i := 0; i < n; i++ {
					if err = fn(); err != nil {
						return 0, fmt.Errorf("%s: %w", name, err)
					}
				}
			}
			if name == "notify" && im.ID() == target && im.ID() != 0 {
				for i := 0; i < n; i++ {
					if err = evs.Wait(0); err != nil {
						return 0, err
					}
				}
			}
			dt := im.Now() - t0
			if err = im.World().Barrier(); err != nil {
				return 0, err
			}
			measurer := 0
			if name == "notify" && target != 0 {
				measurer = target
			}
			if im.ID() != measurer || dt <= 0 {
				return 0, nil
			}
			return float64(n) / dt, nil
		}

		if mine.write, err = rate("write", k, func() error { return co.Put(target, 0, buf) }); err != nil {
			return err
		}
		if mine.read, err = rate("read", k, func() error { return co.Get(target, 0, buf) }); err != nil {
			return err
		}
		if mine.notify, err = rate("notify", k, func() error { return evs.Notify(target, 0) }); err != nil {
			return err
		}
		if im.ID() == 0 && target == 0 {
			// Single image: drain the self-notifies.
			for i := 0; i < k; i++ {
				if err := evs.Wait(0); err != nil {
					return err
				}
			}
		}

		// All-to-all rate: every image participates.
		send := make([]byte, 8*im.N())
		recv := make([]byte, 8*im.N())
		if err := im.World().Barrier(); err != nil {
			return err
		}
		t0 := im.Now()
		for i := 0; i < ka; i++ {
			if err := im.World().Alltoall(send, recv); err != nil {
				return err
			}
		}
		dt := im.Now() - t0
		if dt > 0 {
			mine.alltoall = float64(ka) / dt
		}
		if err := im.World().Barrier(); err != nil {
			return err
		}
		// The notify rate was observed at the target: ship it to image 0.
		nbuf := []float64{mine.notify}
		nout := make([]float64, 1)
		if err := im.World().Allreduce(caf.F64Bytes(nbuf), caf.F64Bytes(nout), caf.Float64, caf.OpMax); err != nil {
			return err
		}
		mine.notify = nout[0]
		if im.ID() == 0 {
			out = mine
		}
		return nil
	})
	return out, err
}

func microFigure(id, title, platform string) Experiment {
	return Experiment{
		ID:    id,
		Title: title,
		Paper: "GASNet point-to-point rates exceed MPI's (software RMA overhead); notify rates are flat for both; GASNet's hand-rolled all-to-all decays faster than MPI_ALLTOALL with core count.",
		Run: func(o Options) (*Table, error) {
			o = o.withDefaults()
			pf := fabric.Platform(platform)
			ps := o.pSweep(4)
			k, ka := 400, 30
			if o.Quick {
				k, ka = 60, 6
			}
			t := &Table{ID: id, Title: title, XLabel: "processes", YLabel: "ops/second",
				Notes: fmt.Sprintf("platform=%s 8-byte operations", platform)}
			for _, s := range []struct {
				name string
				sub  caf.Substrate
			}{{"CAF-GASNet", caf.GASNet}, {"CAF-MPI", caf.MPI}} {
				for _, p := range ps {
					r, err := micro(o, pf, s.sub, p, k, ka)
					if err != nil {
						return nil, fmt.Errorf("%s P=%d: %w", s.name, p, err)
					}
					t.Rows = append(t.Rows,
						Row{Series: s.name + " READ", X: p, Y: r.read},
						Row{Series: s.name + " WRITE", X: p, Y: r.write},
						Row{Series: s.name + " NOTIFY", X: p, Y: r.notify},
						Row{Series: s.name + " AlltoAll", X: p, Y: r.alltoall},
					)
				}
			}
			return t, nil
		},
	}
}

func init() {
	register(microFigure("ubench-mira", "Mira microbenchmarks", "mira"))
	register(microFigure("ubench-edison", "Edison microbenchmarks", "edison"))
	register(microFigure("ubench-fusion", "Fusion microbenchmarks", "fusion"))
}
