// Bench regression gating: compare fixed probe workloads against a
// checked-in baseline (the "gate" section of a BENCH_*.json file) with
// per-metric tolerance bands. The gated metrics are virtual-time quantities
// — final clocks, virtual GUPS, deterministic message/flush counters — so
// the gate is immune to wall-clock noise on shared CI machines: a tripped
// band means the cost model or the communication schedule itself changed.
package bench

import (
	"encoding/json"
	"fmt"
	"math"
	"os"
	"runtime"
	"strings"
	"time"

	"cafmpi/caf"
	"cafmpi/internal/fabric"
	"cafmpi/internal/hpcc"
	"cafmpi/internal/obs"
	"cafmpi/internal/obs/critpath"
	"cafmpi/internal/obs/wallprof"
)

// GateMetric is one gated quantity of the checked-in baseline. Name is
// "<runkey>/<metric>", where the runkey ("ra/mpi/np8") names the probe
// workload that measures it. Better directs the band: "lower" gates only
// increases, "higher" only decreases, empty gates both directions (for
// counters that must not drift at all).
type GateMetric struct {
	Name      string  `json:"name"`
	Value     float64 `json:"value"`
	Tolerance float64 `json:"tolerance"` // relative band, e.g. 0.02 = ±2%
	Better    string  `json:"better,omitempty"`
}

// GateBaseline is the "gate" section of a BENCH_*.json file.
type GateBaseline struct {
	Note    string       `json:"note,omitempty"`
	Metrics []GateMetric `json:"metrics"`
}

// Gate statuses.
const (
	GateOK           = "ok"
	GateRegressed    = "regressed"
	GateMissingProbe = "missing-probe"
)

// GateResult is the verdict on one metric.
type GateResult struct {
	Metric  GateMetric
	Current float64
	Delta   float64 // relative deviation from baseline (signed)
	Status  string
}

// EvalGateMetric compares a measured value against one baseline metric.
// present is false when the probe could not produce the metric (renamed
// counter, removed probe) — that is a gate failure too: a silently vanished
// metric must not pass.
func EvalGateMetric(m GateMetric, cur float64, present bool) GateResult {
	r := GateResult{Metric: m, Current: cur}
	if !present {
		r.Status = GateMissingProbe
		return r
	}
	if m.Value != 0 {
		r.Delta = (cur - m.Value) / math.Abs(m.Value)
	} else if cur != 0 {
		r.Delta = math.Inf(1)
	}
	bad := false
	switch m.Better {
	case "lower": // smaller is better; gate increases only
		bad = r.Delta > m.Tolerance
	case "higher": // larger is better; gate decreases only
		bad = r.Delta < -m.Tolerance
	default: // two-sided
		bad = math.Abs(r.Delta) > m.Tolerance
	}
	if bad {
		r.Status = GateRegressed
	} else {
		r.Status = GateOK
	}
	return r
}

// LoadGateBaseline reads the "gate" section of a BENCH_*.json baseline
// file.
func LoadGateBaseline(path string) (*GateBaseline, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var doc struct {
		Gate *GateBaseline `json:"gate"`
	}
	if err := json.Unmarshal(raw, &doc); err != nil {
		return nil, fmt.Errorf("bench: parsing %s: %w", path, err)
	}
	if doc.Gate == nil || len(doc.Gate.Metrics) == 0 {
		return nil, fmt.Errorf("bench: %s has no gate section", path)
	}
	return doc.Gate, nil
}

// runKey splits "ra/mpi/np8/virtual_s" into the probe runkey and the metric
// name within it.
func runKey(name string) (key, metric string) {
	i := strings.LastIndex(name, "/")
	if i < 0 {
		return "", name
	}
	return name[:i], name[i+1:]
}

// RunGate executes every probe the baseline's metrics name (each runkey
// once) and evaluates all metrics. ok is true iff every metric gates OK.
func RunGate(b *GateBaseline, platform *fabric.Params) (results []GateResult, ok bool) {
	if platform == nil {
		platform = fabric.Platform("fusion")
	}
	probes := make(map[string]map[string]float64)
	probeErr := make(map[string]error)
	for _, m := range b.Metrics {
		key, _ := runKey(m.Name)
		if _, seen := probes[key]; seen || probeErr[key] != nil {
			continue
		}
		vals, err := gateProbe(key, platform)
		if err != nil {
			probeErr[key] = err
			continue
		}
		probes[key] = vals
	}
	ok = true
	for _, m := range b.Metrics {
		key, metric := runKey(m.Name)
		vals := probes[key]
		cur, present := vals[metric]
		r := EvalGateMetric(m, cur, present && vals != nil)
		results = append(results, r)
		if r.Status != GateOK {
			ok = false
		}
	}
	return results, ok
}

// gateProbe runs one fixed probe workload and returns its metrics. The
// probes mirror the tier-1 test configurations, so the gate measures
// exactly what the test suite pins.
func gateProbe(key string, platform *fabric.Params) (map[string]float64, error) {
	switch key {
	case "ra/mpi/np8":
		return probeRA(caf.MPI, 8, platform)
	case "ra/gasnet/np8":
		return probeRA(caf.GASNet, 8, platform)
	case "pingpong/mpi":
		return probePingPong(caf.MPI, platform)
	case "scaling-sparse/mpi/np1024":
		return probeSparseScaling(caf.MPI, 1024, platform)
	case "parallel/ra/mpi":
		return probeParallel(caf.MPI, platform)
	default:
		return nil, fmt.Errorf("bench: unknown gate probe %q", key)
	}
}

// probeRA runs the tier-1 RandomAccess configuration and reports virtual
// time, virtual GUPS, and the deterministic communication counters.
func probeRA(sub caf.Substrate, np int, platform *fabric.Params) (map[string]float64, error) {
	cfg := caf.Config{Substrate: sub, Platform: platform, Diag: caf.Diag{Observe: true}}
	clocks := make([]int64, np)
	var gups float64
	w, err := caf.RunWorld(np, cfg, func(im *caf.Image) error {
		res, err := hpcc.RandomAccess(im, hpcc.RAConfig{TableBits: 8, UpdatesPerImage: 512, BatchSize: 128})
		if err != nil {
			return err
		}
		if im.ID() == 0 {
			gups = res.GUPS
		}
		clocks[im.ID()] = im.Proc().Now()
		return nil
	})
	if err != nil {
		return nil, err
	}
	snap := obs.Enabled(w).Snapshot()
	return map[string]float64{
		"virtual_s":      maxClockSeconds(clocks),
		"gups":           gups,
		"msgs_sent":      float64(snap.Counters["msgs_sent"]),
		"flushall_calls": float64(snap.Counters["flushall_calls"]),
	}, nil
}

// probeSparseScaling runs the np=1024 RandomAccess scaling point in
// scalable-sync mode and reports the flush-scan share of the critical path:
// the dirty-peer flush claim, gated with a hard ceiling so the O(P) scan
// cannot creep back onto the critical path at scale.
func probeSparseScaling(sub caf.Substrate, np int, platform *fabric.Params) (map[string]float64, error) {
	cfg := caf.Config{Substrate: sub, Platform: platform, SparseFlush: true, Diag: caf.Diag{Observe: true}}
	clocks := make([]int64, np)
	w, err := caf.RunWorld(np, cfg, func(im *caf.Image) error {
		defer func() { clocks[im.ID()] = im.Proc().Now() }()
		_, err := hpcc.RandomAccess(im, hpcc.RAConfig{TableBits: 8, UpdatesPerImage: 64, BatchSize: 64})
		return err
	})
	if err != nil {
		return nil, err
	}
	vals := map[string]float64{"virtual_s": maxClockSeconds(clocks)}
	if rep := critpath.Analyze(obs.Enabled(w), clocks); rep != nil && rep.FinishNS > 0 {
		tot := rep.ComponentTotals()
		vals["flush_scan_share"] = float64(tot[obs.CompFlushScan.String()]) / float64(rep.FinishNS)
	}
	return vals, nil
}

// probeParallel is the gate's only wall-clock probe: the tier-1 RA
// workload at GOMAXPROCS=1, 4 and 8, best-of-3 each, plus one
// wallprof-enabled run at GOMAXPROCS=8 that reports the fabric/absorb host
// wall share under the sharded delivery engine. It gates gross host-side
// regressions (a serializing lock, an accidental O(P^2) hot loop, the
// match path convoying on a global mutex again) without pretending shared
// CI machines can hold tight wall-clock bands — the baseline carries very
// wide direction-gated tolerances, sized so only a multiple-x slowdown (or
// a collapse of the multicore speedups to well below the single-thread
// line) trips it.
func probeParallel(sub caf.Substrate, platform *fabric.Params) (map[string]float64, error) {
	raBody := func(im *caf.Image) error {
		_, err := hpcc.RandomAccess(im, hpcc.RAConfig{TableBits: 8, UpdatesPerImage: 512, BatchSize: 128})
		return err
	}
	job := func() (float64, error) {
		cfg := caf.Config{Substrate: sub, Platform: platform}
		start := time.Now() //caflint:allow wallclock -- the gated quantity IS host wall time
		_, err := caf.RunWorld(8, cfg, raBody)
		return float64(time.Since(start)) / 1e6, err //caflint:allow wallclock -- host wall time
	}
	bestOf3 := func() (float64, error) {
		best := math.Inf(1)
		for i := 0; i < 3; i++ {
			ms, err := job()
			if err != nil {
				return 0, err
			}
			if ms < best {
				best = ms
			}
		}
		return best, nil
	}
	prev := runtime.GOMAXPROCS(1)
	defer runtime.GOMAXPROCS(prev)
	g1, err := bestOf3()
	if err != nil {
		return nil, err
	}
	runtime.GOMAXPROCS(4)
	g4, err := bestOf3()
	if err != nil {
		return nil, err
	}
	runtime.GOMAXPROCS(8)
	g8, err := bestOf3()
	if err != nil {
		return nil, err
	}
	vals := map[string]float64{"wall_ms_g1": g1}
	if g4 > 0 {
		vals["speedup_g4"] = g1 / g4
	}
	if g8 > 0 {
		vals["speedup_g8"] = g1 / g8
	}
	// Host-time blame at GOMAXPROCS=8: the divergence report's wall share
	// for the receive-side match path. The ceiling on this metric is what
	// pins the sharded delivery engine's win — before sharding, the absorb
	// site's share was the dominant divergence row (EXPERIMENTS.md).
	wcfg := caf.Config{Substrate: sub, Platform: platform, Diag: caf.Diag{WallProf: true}}
	w, err := caf.RunWorld(8, wcfg, raBody)
	if err != nil {
		return nil, err
	}
	if rep := wallprof.Enabled(w).Analyze(nil, 0); rep != nil {
		for _, row := range rep.Rows {
			if row.Component == "fabric/absorb" {
				vals["absorb_share_g8"] = row.WallShare
			}
		}
	}
	return vals, nil
}

// probePingPong runs the tier-1 EventPingPong configuration (2 images, 200
// notify/wait round trips).
func probePingPong(sub caf.Substrate, platform *fabric.Params) (map[string]float64, error) {
	const iters = 200
	cfg := caf.Config{Substrate: sub, Platform: platform, Diag: caf.Diag{Observe: true}}
	clocks := make([]int64, 2)
	_, err := caf.RunWorld(2, cfg, func(im *caf.Image) error {
		evs, err := im.NewEvents(im.World(), 2)
		if err != nil {
			return err
		}
		peer := 1 - im.ID()
		for i := 0; i < iters; i++ {
			if im.ID() == 0 {
				if err := evs.Notify(peer, 0); err != nil {
					return err
				}
				if err := evs.Wait(1); err != nil {
					return err
				}
			} else {
				if err := evs.Wait(0); err != nil {
					return err
				}
				if err := evs.Notify(peer, 1); err != nil {
					return err
				}
			}
		}
		clocks[im.ID()] = im.Proc().Now()
		return nil
	})
	if err != nil {
		return nil, err
	}
	return map[string]float64{"virtual_s": maxClockSeconds(clocks)}, nil
}

func maxClockSeconds(clocks []int64) float64 {
	var max int64
	for _, c := range clocks {
		if c > max {
			max = c
		}
	}
	return float64(max) / 1e9
}

// FormatGateResults renders gate verdicts as an aligned table.
func FormatGateResults(results []GateResult) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-28s %14s %14s %8s %7s  %s\n",
		"metric", "baseline", "current", "delta", "band", "status")
	for _, r := range results {
		band := fmt.Sprintf("%.0f%%", r.Metric.Tolerance*100)
		switch r.Metric.Better {
		case "lower":
			band = "+" + band
		case "higher":
			band = "-" + band
		default:
			band = "±" + band
		}
		fmt.Fprintf(&b, "%-28s %14.6g %14.6g %+7.2f%% %7s  %s\n",
			r.Metric.Name, r.Metric.Value, r.Current, r.Delta*100, band, r.Status)
	}
	return b.String()
}
