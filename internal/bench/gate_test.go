package bench

import (
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestEvalGateMetric pins the band semantics: pass on unchanged values,
// fail on a synthetic 2× slowdown, fail when the probe lost the metric.
func TestEvalGateMetric(t *testing.T) {
	lower := GateMetric{Name: "ra/mpi/np8/virtual_s", Value: 0.000294, Tolerance: 0.30, Better: "lower"}

	if r := EvalGateMetric(lower, 0.000294, true); r.Status != GateOK {
		t.Errorf("unchanged value gated %s", r.Status)
	}
	// Within band: +25% on a 30% band.
	if r := EvalGateMetric(lower, 0.000294*1.25, true); r.Status != GateOK {
		t.Errorf("in-band value gated %s", r.Status)
	}
	// Synthetic 2× slowdown must fail.
	if r := EvalGateMetric(lower, 0.000294*2, true); r.Status != GateRegressed {
		t.Errorf("2x slowdown gated %s", r.Status)
	}
	// "lower" is one-sided: a speedup passes.
	if r := EvalGateMetric(lower, 0.000294/2, true); r.Status != GateOK {
		t.Errorf("speedup gated %s", r.Status)
	}

	higher := GateMetric{Name: "ra/mpi/np8/gups", Value: 0.014, Tolerance: 0.30, Better: "higher"}
	if r := EvalGateMetric(higher, 0.014/2, true); r.Status != GateRegressed {
		t.Errorf("halved throughput gated %s", r.Status)
	}
	if r := EvalGateMetric(higher, 0.014*2, true); r.Status != GateOK {
		t.Errorf("doubled throughput gated %s", r.Status)
	}

	twoSided := GateMetric{Name: "ra/mpi/np8/msgs_sent", Value: 1000, Tolerance: 0.01}
	if r := EvalGateMetric(twoSided, 1000, true); r.Status != GateOK {
		t.Errorf("exact counter gated %s", r.Status)
	}
	if r := EvalGateMetric(twoSided, 1020, true); r.Status != GateRegressed {
		t.Errorf("+2%% counter drift gated %s", r.Status)
	}
	if r := EvalGateMetric(twoSided, 980, true); r.Status != GateRegressed {
		t.Errorf("-2%% counter drift gated %s", r.Status)
	}

	// Missing metric: never a silent pass.
	if r := EvalGateMetric(lower, 0, false); r.Status != GateMissingProbe {
		t.Errorf("missing metric gated %s", r.Status)
	}
	// Zero baseline with nonzero current is an infinite relative delta.
	zero := GateMetric{Name: "x/y", Value: 0, Tolerance: 0.1}
	if r := EvalGateMetric(zero, 5, true); r.Status != GateRegressed || !math.IsInf(r.Delta, 1) {
		t.Errorf("zero-baseline drift gated %s (delta %v)", r.Status, r.Delta)
	}
	if r := EvalGateMetric(zero, 0, true); r.Status != GateOK {
		t.Errorf("zero-baseline zero-current gated %s", r.Status)
	}
}

// TestRunKey pins the runkey/metric split.
func TestRunKey(t *testing.T) {
	if k, m := runKey("ra/mpi/np8/virtual_s"); k != "ra/mpi/np8" || m != "virtual_s" {
		t.Errorf("runKey = %q/%q", k, m)
	}
	if k, m := runKey("bare"); k != "" || m != "bare" {
		t.Errorf("runKey bare = %q/%q", k, m)
	}
}

// TestLoadGateBaseline exercises parse and the no-gate-section error.
func TestLoadGateBaseline(t *testing.T) {
	dir := t.TempDir()
	good := filepath.Join(dir, "good.json")
	os.WriteFile(good, []byte(`{"benchmarks":[],"gate":{"note":"n","metrics":[{"name":"a/b","value":1,"tolerance":0.1,"better":"lower"}]}}`), 0o644)
	b, err := LoadGateBaseline(good)
	if err != nil {
		t.Fatal(err)
	}
	if len(b.Metrics) != 1 || b.Metrics[0].Name != "a/b" || b.Metrics[0].Better != "lower" {
		t.Fatalf("parsed %+v", b)
	}
	bad := filepath.Join(dir, "bad.json")
	os.WriteFile(bad, []byte(`{"benchmarks":[]}`), 0o644)
	if _, err := LoadGateBaseline(bad); err == nil {
		t.Error("no-gate-section file loaded without error")
	}
}

// TestRunGateAgainstLiveProbes runs the real probes against a baseline
// captured from themselves: a fresh measurement must gate OK (the
// unchanged-tree criterion), an unknown probe must report missing.
func TestRunGateAgainstLiveProbes(t *testing.T) {
	vals, err := gateProbe("ra/mpi/np8", nil)
	if err != nil {
		t.Fatal(err)
	}
	b := &GateBaseline{Metrics: []GateMetric{
		{Name: "ra/mpi/np8/virtual_s", Value: vals["virtual_s"], Tolerance: 0.30, Better: "lower"},
		{Name: "ra/mpi/np8/msgs_sent", Value: vals["msgs_sent"], Tolerance: 0.01},
		{Name: "nonexistent/probe/metric", Value: 1, Tolerance: 0.1},
	}}
	results, ok := RunGate(b, nil)
	if ok {
		t.Error("gate passed despite a missing probe")
	}
	if len(results) != 3 {
		t.Fatalf("%d results", len(results))
	}
	for _, r := range results {
		want := GateOK
		if strings.HasPrefix(r.Metric.Name, "nonexistent/") {
			want = GateMissingProbe
		}
		if r.Status != want {
			t.Errorf("%s gated %s (current %g, baseline %g), want %s",
				r.Metric.Name, r.Status, r.Current, r.Metric.Value, want)
		}
	}
	out := FormatGateResults(results)
	for _, frag := range []string{"ra/mpi/np8/virtual_s", "missing-probe", "ok"} {
		if !strings.Contains(out, frag) {
			t.Errorf("formatted results missing %q:\n%s", frag, out)
		}
	}
}
