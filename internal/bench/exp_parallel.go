// The GOMAXPROCS scaling probes: the one experiment in the suite whose
// y-axis is HOST wall-clock time, not virtual time. The simulator is a
// goroutine-per-image machine, so the interesting engineering question —
// does the runtime actually exploit host parallelism, or does one lock
// serialize the world? — is answered by sweeping GOMAXPROCS over fixed
// workloads and watching the wall-clock curve. Virtual time is bit-exact
// at GOMAXPROCS=1 (the golden / gate configuration); above it, host
// scheduling perturbs tie-breaking at shared queues, so each point also
// records its virtual-time jitter relative to the single-thread run —
// structurally small, and a regression canary for ordering bugs.
package bench

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"time"

	"cafmpi/caf"
	"cafmpi/internal/fabric"
	"cafmpi/internal/hpcc"
)

// ParallelGMP is the GOMAXPROCS schedule of the parallel experiment.
var ParallelGMP = []int{1, 2, 4, 8}

// ParallelPoint is one (substrate, workload, GOMAXPROCS) measurement.
type ParallelPoint struct {
	Substrate  string `json:"substrate"`
	Workload   string `json:"workload"`
	GOMAXPROCS int    `json:"gomaxprocs"`
	NP         int    `json:"np"`
	// Shards is the delivery-shard count the fabric used at this point
	// (derived from GOMAXPROCS unless Params.DeliveryShards pins it) — the
	// wall-clock curves are meaningless without knowing how the match
	// engine was partitioned.
	Shards int `json:"shards"`
	// WallMS is the host wall-clock time of the job (milliseconds).
	WallMS float64 `json:"wall_ms"`
	// VirtualS is the slowest image's final virtual clock. Bit-exact at
	// GOMAXPROCS=1; above it host scheduling perturbs queue tie-breaking.
	VirtualS float64 `json:"virtual_s"`
	// VirtJitter is |VirtualS/VirtualS(GOMAXPROCS=1) - 1| within the same
	// (substrate, workload) curve: how far the interleaving drifted.
	VirtJitter float64 `json:"virt_jitter"`
	// Speedup is WallMS(GOMAXPROCS=1) / WallMS at this point, within the
	// same (substrate, workload) curve.
	Speedup float64 `json:"speedup"`
}

// ParallelReport is the -parallel-out JSON document.
type ParallelReport struct {
	Platform string          `json:"platform"`
	Quick    bool            `json:"quick"`
	HostCPUs int             `json:"host_cpus"`
	Points   []ParallelPoint `json:"points"`
}

// parallelJob runs one workload once and returns (wall ms, virtual s).
func parallelJob(o Options, sub caf.Substrate, workload string) (float64, float64, int, error) {
	ra := hpcc.RAConfig{TableBits: 8, UpdatesPerImage: 512, BatchSize: 128}
	fftLog := 12
	iters := 200
	np := 8
	if o.Quick {
		ra.UpdatesPerImage = 128
		fftLog = 10
		iters = 50
	}
	if workload == "pingpong" {
		np = 2
	}
	cfg := caf.Config{Substrate: sub, Platform: o.Platform}
	clocks := make([]int64, np)
	start := time.Now() //caflint:allow wallclock -- the experiment's y-axis IS host wall time
	_, err := caf.RunWorld(np, cfg, func(im *caf.Image) error {
		defer func() { clocks[im.ID()] = im.Proc().Now() }()
		switch workload {
		case "ra":
			_, err := hpcc.RandomAccess(im, ra)
			return err
		case "pingpong":
			return scalingPingPong(im, iters)
		case "fft":
			_, err := hpcc.FFT(im, hpcc.FFTConfig{LogSize: fftLog, Verify: true})
			return err
		default:
			return fmt.Errorf("bench: unknown parallel workload %q", workload)
		}
	})
	wallMS := float64(time.Since(start)) / 1e6 //caflint:allow wallclock -- host wall time of the job
	if err != nil {
		return 0, 0, np, err
	}
	return wallMS, maxClockSeconds(clocks), np, nil
}

func parallelExperiment() Experiment {
	return Experiment{
		ID:    "parallel",
		Title: "GOMAXPROCS scaling probes: host wall-clock vs host threads",
		Paper: "Not a paper figure — a wall-clock sanity plane for the simulator itself: fixed workloads swept over GOMAXPROCS in {1,2,4,8} on both substrates. Virtual time is bit-exact at GOMAXPROCS=1 (the golden configuration); each multi-thread point records its virtual-time jitter vs the single-thread run as an ordering-bug canary.",
		Run: func(o Options) (*Table, error) {
			o = o.withDefaults()
			report := &ParallelReport{Platform: o.Platform.Name, Quick: o.Quick, HostCPUs: runtime.NumCPU()}
			t := &Table{ID: "parallel",
				Title:  "GOMAXPROCS scaling probes (host wall-clock)",
				XLabel: "GOMAXPROCS", YLabel: "wall ms / speedup vs 1",
				Notes: fmt.Sprintf("platform=%s host_cpus=%d; virtual time bit-exact at GOMAXPROCS=1, jitter tracked above",
					o.Platform.Name, runtime.NumCPU())}
			prev := runtime.GOMAXPROCS(0)
			defer runtime.GOMAXPROCS(prev)
			for _, sub := range []caf.Substrate{caf.MPI, caf.GASNet} {
				for _, workload := range []string{"ra", "pingpong", "fft"} {
					var wall1, virt0 float64
					for gi, g := range ParallelGMP {
						runtime.GOMAXPROCS(g)
						wallMS, virtS, np, err := parallelJob(o, sub, workload)
						if err != nil {
							runtime.GOMAXPROCS(prev)
							return nil, fmt.Errorf("parallel %s/%s gomaxprocs=%d: %w", sub, workload, g, err)
						}
						if gi == 0 {
							wall1, virt0 = wallMS, virtS
						}
						pt := ParallelPoint{Substrate: string(sub), Workload: workload,
							GOMAXPROCS: g, NP: np, Shards: fabric.ShardsFor(o.Platform, np),
							WallMS: wallMS, VirtualS: virtS}
						if virt0 > 0 {
							pt.VirtJitter = virtS/virt0 - 1
							if pt.VirtJitter < 0 {
								pt.VirtJitter = -pt.VirtJitter
							}
						}
						if wallMS > 0 {
							pt.Speedup = wall1 / wallMS
						}
						report.Points = append(report.Points, pt)
						series := fmt.Sprintf("%s-%s", sub, workload)
						t.Rows = append(t.Rows, Row{Series: series + " wall_ms", X: g, Y: wallMS})
						t.Rows = append(t.Rows, Row{Series: series + " speedup", X: g, Y: pt.Speedup})
					}
				}
			}
			if o.ParallelOut != "" {
				blob, err := json.MarshalIndent(report, "", "  ")
				if err != nil {
					return nil, err
				}
				if err := os.WriteFile(o.ParallelOut, append(blob, '\n'), 0o644); err != nil {
					return nil, fmt.Errorf("parallel: writing %s: %w", o.ParallelOut, err)
				}
			}
			return t, nil
		},
	}
}

func init() {
	register(parallelExperiment())
}
