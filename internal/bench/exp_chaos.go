package bench

import (
	"fmt"

	"cafmpi/caf"
	"cafmpi/internal/fabric"
	"cafmpi/internal/faults"
	"cafmpi/internal/hpcc"
)

// chaosJob runs fn under a fault plan and reports the injected-fault count
// and the decision-log signature alongside image 0's error.
func chaosJob(platform *fabric.Params, sub caf.Substrate, n int, plan *faults.Plan, fn func(*caf.Image) error) (int, string, error) {
	cfg := caf.Config{Substrate: sub, Platform: platform, Faults: plan}
	w, err := caf.RunWorld(n, cfg, fn)
	if err != nil {
		return 0, "", err
	}
	evs := faults.Enabled(w).Log()
	return len(evs), faults.SignatureHash(evs), nil
}

// chaosPingPong bounces an event between images 0 and 1 k times; under a
// lossy plan every notify must still be delivered exactly once for the
// strict alternation to terminate.
func chaosPingPong(im *caf.Image, k int) error {
	evs, err := im.NewEvents(im.World(), 1)
	if err != nil {
		return err
	}
	if im.ID() > 1 {
		return nil
	}
	peer := 1 - im.ID()
	for i := 0; i < k; i++ {
		if im.ID() == 0 {
			if err := evs.Notify(peer, 0); err != nil {
				return err
			}
			if err := evs.Wait(0); err != nil {
				return err
			}
		} else {
			if err := evs.Wait(0); err != nil {
				return err
			}
			if err := evs.Notify(peer, 0); err != nil {
				return err
			}
		}
	}
	return nil
}

func init() {
	register(Experiment{
		ID:    "chaos",
		Title: "Resilient delivery under the canonical 1% drop plan",
		Paper: "Not a paper figure: proves the retry/dedup protocol delivers exactly-once under injected loss — verified RandomAccess and a strict event ping-pong complete correctly on both substrates, with a deterministic injected-fault signature.",
		Run: func(o Options) (*Table, error) {
			o = o.withDefaults()
			pf := o.Platform
			plan := faults.Canonical(1)
			p := 8
			ra := raWorkload(o)
			ra.Verify = true
			pp := 512
			if o.Quick {
				p, pp = 4, 128
			}
			t := &Table{ID: "chaos", Title: "Resilient delivery under the canonical 1% drop plan",
				XLabel: "processes", YLabel: "injected faults",
				Notes: fmt.Sprintf("platform=%s plan=canonical(seed=1) ra-updates=%d/image pingpong=%d", pf.Name, ra.UpdatesPerImage, pp)}
			for _, sub := range []caf.Substrate{caf.MPI, caf.GASNet} {
				inj, sig, err := chaosJob(pf, sub, p, plan, func(im *caf.Image) error {
					res, err := hpcc.RandomAccess(im, ra)
					if err != nil {
						return err
					}
					if res.Errors != 0 {
						return fmt.Errorf("chaos: RandomAccess verification failed: %d mismatches", res.Errors)
					}
					return nil
				})
				if err != nil {
					return nil, fmt.Errorf("chaos %s/ra: %w", sub, err)
				}
				t.Rows = append(t.Rows, Row{Series: fmt.Sprintf("%s ra", sub), X: p, Y: float64(inj)})
				t.Notes += fmt.Sprintf(" %s/ra=%s", sub, sig)

				inj, sig, err = chaosJob(pf, sub, 2, plan, func(im *caf.Image) error {
					return chaosPingPong(im, pp)
				})
				if err != nil {
					return nil, fmt.Errorf("chaos %s/pingpong: %w", sub, err)
				}
				t.Rows = append(t.Rows, Row{Series: fmt.Sprintf("%s pingpong", sub), X: 2, Y: float64(inj)})
				t.Notes += fmt.Sprintf(" %s/pingpong=%s", sub, sig)
			}
			return t, nil
		},
	})
}
