package bench

// Reference data transcribed from the paper's embedded figure tables, so
// benchsuite can print the original series next to the regenerated ones
// (-paper flag). Units match each experiment: GUPS, GFlop/s, TFlop/s,
// seconds, MB, ops/second. The paper's Fusion sweeps run 8..2048 processes
// and its Edison sweeps 16..4096; HPL uses sparse points; CGPOP runs
// 24..360.

// PaperReference returns the paper's series for an experiment id, or nil.
func PaperReference(id string) *Table {
	t, ok := paperTables[id]
	if !ok {
		return nil
	}
	cp := *t
	return &cp
}

func seriesRows(series string, xs []int, ys []float64) []Row {
	rows := make([]Row, 0, len(ys))
	for i, y := range ys {
		if i < len(xs) {
			rows = append(rows, Row{Series: series, X: xs[i], Y: y})
		}
	}
	return rows
}

func labeledRows(series string, labels []string, ys []float64) []Row {
	rows := make([]Row, 0, len(ys))
	for i, y := range ys {
		rows = append(rows, Row{Series: series, Label: labels[i], Y: y})
	}
	return rows
}

func concat(groups ...[]Row) []Row {
	var out []Row
	for _, g := range groups {
		out = append(out, g...)
	}
	return out
}

var (
	fusionPs = []int{8, 16, 32, 64, 128, 256, 512, 1024, 2048}
	edisonPs = []int{16, 32, 64, 128, 256, 512, 1024, 2048, 4096}
	cgpopPs  = []int{24, 72, 120, 168, 216, 264, 312, 360}
	raCats   = []string{"computation", "coarray_write", "event_wait", "event_notify"}
	fftCats  = []string{"alltoall", "computation"}
)

var paperTables = map[string]*Table{
	"fig1": {
		ID: "fig1", Title: "PAPER Figure 1 (Fusion)", XLabel: "processes", YLabel: "MB",
		Rows: concat(
			seriesRows("GASNet-only", []int{16, 64, 256}, []float64{26, 34, 39}),
			seriesRows("MPI-only", []int{16, 64, 256}, []float64{107, 109, 115}),
			seriesRows("Duplicate Runtimes", []int{16, 64, 256}, []float64{133, 143, 154}),
		),
	},
	"fig3": {
		ID: "fig3", Title: "PAPER Figure 3: RandomAccess on Fusion", XLabel: "processes", YLabel: "GUPS",
		Rows: concat(
			seriesRows("CAF-MPI", fusionPs, []float64{0.06092, 0.08127, 0.14460, 0.26490, 0.37180, 0.55590, 0.82550, 1.54600, 2.28000}),
			seriesRows("CAF-GASNet", fusionPs, []float64{0.08138, 0.11930, 0.19460, 0.36090, 0.20760, 0.30790, 0.41440, 0.66870, 0.97430}),
			seriesRows("CAF-GASNet-NOSRQ", fusionPs, []float64{0.08139, 0.11950, 0.18130, 0.30630, 0.48190, 0.67120, 0.86760, 1.42900, 2.21500}),
			seriesRows("IDEAL-SCALE", fusionPs, []float64{0.06092, 0.12184, 0.24368, 0.48736, 0.97472, 1.94944, 3.89888, 7.79776, 15.59552}),
		),
	},
	"fig4": {
		ID: "fig4", Title: "PAPER Figure 4: RA decomposition, 2048 Fusion cores", XLabel: "category", YLabel: "seconds",
		Rows: concat(
			labeledRows("CAF-GASNet", raCats, []float64{46.36, 53.28, 405.75, 3.60}),
			labeledRows("CAF-MPI", raCats, []float64{81.97, 160.09, 255.74, 219.08}),
		),
	},
	"fig5": {
		ID: "fig5", Title: "PAPER Figure 5: RandomAccess on Edison", XLabel: "processes", YLabel: "GUPS",
		Rows: concat(
			seriesRows("CAF-MPI", edisonPs, []float64{0.1231, 0.1592, 0.2153, 0.4872, 0.6470, 1.1240, 1.4230, 2.0300, 2.7140}),
			seriesRows("CAF-GASNet", edisonPs, []float64{0.2180, 0.3354, 0.3531, 0.5853, 1.0780, 1.0950, 1.8970, 3.7530, 8.0280}),
			seriesRows("IDEAL-SCALE", edisonPs, []float64{0.1231, 0.2462, 0.4924, 0.9848, 1.9696, 3.9392, 7.8784, 15.7568, 31.5136}),
		),
	},
	"fig6": {
		ID: "fig6", Title: "PAPER Figure 6: FFT on Fusion", XLabel: "processes", YLabel: "GFlop/s",
		Rows: concat(
			seriesRows("CAF-MPI", fusionPs, []float64{2.5360, 3.5693, 7.0194, 13.9231, 23.0590, 50.3071, 96.1904, 152.0733, 263.9797}),
			seriesRows("CAF-GASNet", fusionPs, []float64{2.3927, 3.3042, 4.9530, 8.6560, 15.3140, 27.2440, 43.8779, 79.2683, 118.1791}),
			seriesRows("CAF-GASNet-NOSRQ", fusionPs, []float64{2.4315, 3.5079, 4.9294, 8.4172, 15.2665, 26.5122, 43.4191, 77.4317, 117.2695}),
			seriesRows("IDEAL-SCALE", fusionPs, []float64{2.536, 5.072, 10.144, 20.288, 40.576, 81.152, 162.304, 324.608, 649.216}),
		),
	},
	"fig7": {
		ID: "fig7", Title: "PAPER Figure 7: FFT on Edison", XLabel: "processes", YLabel: "GFlop/s",
		Rows: concat(
			seriesRows("CAF-MPI", edisonPs, []float64{6.2971, 9.9241, 17.9998, 32.8323, 74.2554, 152.9704, 305.3309, 585.6462, 945.5121}),
			seriesRows("CAF-GASNet", edisonPs, []float64{3.9050, 7.2703, 11.7259, 20.4787, 37.9913, 66.6050, 121.6078, 233.8628, 419.6483}),
			seriesRows("IDEAL-SCALE", edisonPs, []float64{6.2971, 12.5942, 25.1884, 50.3768, 100.7536, 201.5072, 403.0144, 806.0288, 1612.0576}),
		),
	},
	"fig8": {
		ID: "fig8", Title: "PAPER Figure 8: FFT decomposition, 256 Fusion cores", XLabel: "category", YLabel: "seconds",
		Rows: concat(
			labeledRows("CAF-GASNet", fftCats, []float64{17.92, 7.94}),
			labeledRows("CAF-MPI", fftCats, []float64{6.06, 8.31}),
		),
	},
	"fig9": {
		ID: "fig9", Title: "PAPER Figure 9: HPL on Fusion", XLabel: "processes", YLabel: "TFlop/s",
		Rows: concat(
			seriesRows("CAF-MPI", []int{16, 64, 256, 1024}, []float64{0.0350152743, 0.1311492785, 0.4805325189, 1.7443695111}),
			seriesRows("CAF-GASNet", []int{16, 64, 256, 1024}, []float64{0.0330905247, 0.1222210240, 0.4467551121, 1.5327417036}),
			seriesRows("IDEAL-SCALE", []int{16, 64, 256, 1024}, []float64{0.0350152743, 0.1400610971, 0.5602443884, 2.2409775535}),
		),
	},
	"fig10": {
		ID: "fig10", Title: "PAPER Figure 10: HPL on Edison", XLabel: "processes", YLabel: "TFlop/s",
		Rows: concat(
			seriesRows("CAF-MPI", []int{16, 64, 256, 1024, 4096}, []float64{0.113494752, 0.4315327371, 1.5640185942, 5.4019310091, 17.931944405}),
			seriesRows("CAF-GASNet", []int{16, 64, 256}, []float64{0.1153884087, 0.4306770224, 1.6010092905}),
			seriesRows("IDEAL-SCALE", []int{16, 64, 256, 1024, 4096}, []float64{0.113494752, 0.4539790081, 1.8159160323, 7.2636641294, 29.054656517}),
		),
	},
	"fig11": {
		ID: "fig11", Title: "PAPER Figure 11: CGPOP on Fusion", XLabel: "processes", YLabel: "execution time (s)",
		Rows: concat(
			seriesRows("CAF-MPI (PUSH)", cgpopPs, []float64{656.47, 251.96, 157.64, 148.37, 102.76, 109.36, 104.04, 50.98}),
			seriesRows("CAF-MPI (PULL)", cgpopPs, []float64{654.98, 250.94, 155.62, 150.68, 108.40, 121.16, 110.47, 50.94}),
			seriesRows("CAF-GASNet (PUSH)", cgpopPs, []float64{657.82, 236.48, 155.87, 166.66, 105.83, 104.97, 103.08, 51.35}),
			seriesRows("CAF-GASNet (PULL)", cgpopPs, []float64{731.35, 266.96, 155.32, 174.68, 117.35, 137.99, 110.58, 55.20}),
		),
	},
	"fig12": {
		ID: "fig12", Title: "PAPER Figure 12: CGPOP on Edison", XLabel: "processes", YLabel: "execution time (s)",
		Rows: concat(
			seriesRows("CAF-MPI (PUSH)", cgpopPs, []float64{2373.33, 800.57, 483.73, 481.15, 325.18, 323.59, 324.06, 166.37}),
			seriesRows("CAF-MPI (PULL)", cgpopPs, []float64{2369.46, 799.63, 482.89, 480.68, 325.57, 323.66, 323.87, 167.70}),
			seriesRows("CAF-GASNet (PUSH)", cgpopPs, []float64{2367.96, 794.29, 482.83, 477.60, 322.41, 321.47, 320.01, 162.31}),
			seriesRows("CAF-GASNet (PULL)", cgpopPs, []float64{2362.99, 793.70, 483.45, 478.40, 322.98, 321.74, 320.30, 162.44}),
		),
	},
	"ubench-mira": {
		ID: "ubench-mira", Title: "PAPER Mira microbenchmarks", XLabel: "processes", YLabel: "ops/second",
		Rows: concat(
			seriesRows("CAF-GASNet READ", edisonPs[:9], []float64{272479.56, 266666.66, 263852.25, 256410.27, 266666.66, 256410.27, 265957.47, 247524.75, 266666.66}),
			seriesRows("CAF-GASNet WRITE", edisonPs[:9], []float64{221729.48, 217864.92, 216919.73, 203665.98, 213675.22, 209205.03, 211864.41, 207039.33, 206611.58}),
			seriesRows("CAF-GASNet NOTIFY", edisonPs[:9], []float64{99304.867, 97560.977, 96993.211, 95969.281, 96432.023, 96899.227, 97465.883, 96711.797, 96899.227}),
			seriesRows("CAF-GASNet AlltoAll", edisonPs[:9], []float64{3716.0906, 1979.4141, 984.83356, 475.48856, 221.75407, 102.36043, 45.536510, 20.609421, 9.9222002}),
			seriesRows("CAF-MPI READ", edisonPs[:9], []float64{76745.969, 61614.293, 61614.293, 61614.293, 61274.512, 61274.512, 60642.813, 60569.352, 60716.457}),
			seriesRows("CAF-MPI WRITE", edisonPs[:9], []float64{61087.355, 51177.074, 52273.914, 50864.699, 51229.508, 50226.016, 51733.059, 51334.703, 49358.340}),
			seriesRows("CAF-MPI NOTIFY", edisonPs[:9], []float64{100704.94, 89847.258, 89605.727, 88967.977, 88888.891, 87489.063, 89525.516, 88809.945, 89766.609}),
			seriesRows("CAF-MPI AlltoAll", edisonPs[:9], []float64{24096.387, 21186.441, 16778.523, 11494.253, 7087.1724, 4071.6611, 2230.1516, 1166.3168, 602.73645}),
		),
	},
	"ubench-edison": {
		ID: "ubench-edison", Title: "PAPER Edison microbenchmarks", XLabel: "processes", YLabel: "ops/second",
		Rows: concat(
			seriesRows("CAF-GASNet READ", edisonPs[1:], []float64{445434.3, 385951.4, 324570.0, 390930.4, 293083.2, 232342.0, 264550.3, 252079.7}),
			seriesRows("CAF-GASNet WRITE", edisonPs[1:], []float64{579038.8, 500250.1, 490436.5, 500000.0, 256607.7, 274499.0, 364564.3, 308261.4}),
			seriesRows("CAF-GASNet NOTIFY", edisonPs[1:], []float64{674763.8, 665779.0, 655308.0, 655308.0, 655308.0, 582411.2, 654878.8, 521920.7}),
			seriesRows("CAF-GASNet AlltoAll", edisonPs[1:], []float64{24177.95, 7081.150, 2399.923, 911.6103, 258.6646, 87.81258, 44.26492, 19.71037}),
			seriesRows("CAF-MPI READ", edisonPs[1:], []float64{207555, 209205.0, 205465.4, 206996.5, 176398.0, 201612.9, 201369.3, 143082.0}),
			seriesRows("CAF-MPI WRITE", edisonPs[1:], []float64{210172.3, 210305.0, 206313.2, 208159.9, 177273.5, 202880.9, 200964.6, 142227.3}),
			seriesRows("CAF-MPI NOTIFY", edisonPs[1:], []float64{700770.8, 700770.8, 700770.8, 696864.1, 696864.1, 693962.6, 686341.8, 619962.8}),
			seriesRows("CAF-MPI AlltoAll", edisonPs[1:], []float64{12396.18, 5767.345, 2727.917, 1272.507, 514.6469, 268.2957, 112.9217, 29.40790}),
		),
	},
}
