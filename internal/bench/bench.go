// Package bench is the experiment harness: one registered experiment per
// table and figure in the paper's evaluation (§4), each regenerating the
// corresponding series — who wins, by what factor, and where the crossovers
// fall — on the simulated platforms. Absolute values differ from the
// paper's testbeds; shapes are the reproduction target (see EXPERIMENTS.md).
package bench

import (
	"fmt"
	"sort"
	"strings"

	"cafmpi/internal/fabric"
	"cafmpi/internal/obs"
)

// Row is one measurement: a named series, an x position (typically the
// process count) or a categorical label, and a value.
type Row struct {
	Series string
	X      int
	Label  string
	Y      float64
}

// Table is one regenerated figure/table.
type Table struct {
	ID     string
	Title  string
	XLabel string
	YLabel string
	Rows   []Row
	Notes  string
}

// Options tune an experiment run.
type Options struct {
	// Platform preset; experiments with a fixed platform (fig5: Edison)
	// override it.
	Platform *fabric.Params
	// MaxP caps the process-count sweeps (default 256).
	MaxP int
	// Quick shrinks workloads for smoke tests and testing.B wrappers.
	Quick bool
	// Stats, when non-nil, enables the obs subsystem for every job the
	// experiment runs and receives the merged counter snapshot of each,
	// labeled "<substrate>/np=<n>".
	Stats func(label string, snap *obs.Snapshot)
	// ScalingOut, when set, makes the "scaling" experiment write its
	// ScalingReport (flush-scan share, SRQ-stall share, per-image obs
	// memory vs P) as JSON to this path — the BENCH_scaling.json artifact.
	ScalingOut string
	// ParallelOut, when set, makes the "parallel" experiment write its
	// ParallelReport (host wall-clock curves vs GOMAXPROCS per workload and
	// substrate) as JSON to this path.
	ParallelOut string
}

func (o Options) withDefaults() Options {
	if o.Platform == nil {
		o.Platform = fabric.Platform("fusion")
	}
	if o.MaxP == 0 {
		o.MaxP = 256
	}
	return o
}

// pSweep returns the power-of-two process counts for a sweep.
func (o Options) pSweep(min int) []int {
	var out []int
	for p := min; p <= o.MaxP; p *= 2 {
		out = append(out, p)
	}
	if o.Quick && len(out) > 3 {
		out = out[:3]
	}
	return out
}

// Experiment regenerates one paper artifact.
type Experiment struct {
	ID    string
	Title string
	// Paper summarizes the shape the paper reports, for EXPERIMENTS.md.
	Paper string
	Run   func(Options) (*Table, error)
}

var registry []Experiment

func register(e Experiment) { registry = append(registry, e) }

// Experiments lists every registered experiment in registration order.
func Experiments() []Experiment { return append([]Experiment(nil), registry...) }

// Lookup finds an experiment by id.
func Lookup(id string) (Experiment, bool) {
	for _, e := range registry {
		if e.ID == id {
			return e, true
		}
	}
	return Experiment{}, false
}

// Format renders a table as aligned text: one column per series, one line
// per x value (or label).
func Format(t *Table) string {
	var b strings.Builder
	fmt.Fprintf(&b, "# %s — %s\n", t.ID, t.Title)
	if t.Notes != "" {
		fmt.Fprintf(&b, "# %s\n", t.Notes)
	}

	series := []string{}
	seen := map[string]bool{}
	for _, r := range t.Rows {
		if !seen[r.Series] {
			seen[r.Series] = true
			series = append(series, r.Series)
		}
	}
	type key struct {
		x     int
		label string
	}
	var keys []key
	keySeen := map[key]bool{}
	cell := map[key]map[string]float64{}
	for _, r := range t.Rows {
		k := key{r.X, r.Label}
		if !keySeen[k] {
			keySeen[k] = true
			keys = append(keys, k)
		}
		if cell[k] == nil {
			cell[k] = map[string]float64{}
		}
		cell[k][r.Series] = r.Y
	}
	sort.SliceStable(keys, func(i, j int) bool { return keys[i].x < keys[j].x })

	wide := len(t.XLabel)
	for _, k := range keys {
		if n := len(k.label); n > wide {
			wide = n
		}
	}
	col := 22
	for _, s := range series {
		if n := len(s) + 1; n > col {
			col = n
		}
	}
	fmt.Fprintf(&b, "%-*s", wide+2, t.XLabel)
	for _, s := range series {
		fmt.Fprintf(&b, "%*s", col, s)
	}
	fmt.Fprintf(&b, "   [%s]\n", t.YLabel)
	for _, k := range keys {
		name := k.label
		if name == "" {
			name = fmt.Sprintf("%d", k.x)
		}
		fmt.Fprintf(&b, "%-*s", wide+2, name)
		for _, s := range series {
			if v, ok := cell[k][s]; ok {
				fmt.Fprintf(&b, "%*.5g", col, v)
			} else {
				fmt.Fprintf(&b, "%*s", col, "-")
			}
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// FormatCSV renders a table as CSV: id,series,x,label,y.
func FormatCSV(t *Table) string {
	var b strings.Builder
	b.WriteString("experiment,series,x,label,value\n")
	for _, r := range t.Rows {
		fmt.Fprintf(&b, "%s,%s,%d,%s,%g\n", t.ID, r.Series, r.X, r.Label, r.Y)
	}
	return b.String()
}

// ideal extends a measured series with perfect scaling from its first
// point, as the paper's IDEAL-SCALE curves do.
func ideal(rows []Row, series string, ps []int) []Row {
	if len(rows) == 0 || len(ps) == 0 {
		return nil
	}
	base := -1.0
	baseP := 0
	for _, r := range rows {
		if r.Series == series && r.X == ps[0] {
			base, baseP = r.Y, r.X
			break
		}
	}
	if base < 0 {
		return nil
	}
	var out []Row
	for _, p := range ps {
		out = append(out, Row{Series: "IDEAL-SCALE", X: p, Y: base * float64(p) / float64(baseP)})
	}
	return out
}
