package bench

import (
	"strings"
	"testing"
)

func quickOpts() Options {
	return Options{MaxP: 16, Quick: true}
}

func runExp(t *testing.T, id string) *Table {
	t.Helper()
	e, ok := Lookup(id)
	if !ok {
		t.Fatalf("experiment %q not registered", id)
	}
	tab, err := e.Run(quickOpts())
	if err != nil {
		t.Fatalf("%s: %v", id, err)
	}
	if len(tab.Rows) == 0 {
		t.Fatalf("%s produced no rows", id)
	}
	return tab
}

// value fetches a row by series and x.
func value(t *testing.T, tab *Table, series string, x int) float64 {
	t.Helper()
	for _, r := range tab.Rows {
		if r.Series == series && r.X == x {
			return r.Y
		}
	}
	t.Fatalf("%s: no row %q at x=%d", tab.ID, series, x)
	return 0
}

func valueByLabel(t *testing.T, tab *Table, series, label string) float64 {
	t.Helper()
	for _, r := range tab.Rows {
		if r.Series == series && r.Label == label {
			return r.Y
		}
	}
	t.Fatalf("%s: no row %q label %q", tab.ID, series, label)
	return 0
}

func TestRegistryComplete(t *testing.T) {
	want := []string{"fig1", "fig2", "fig3", "fig4", "fig5", "fig6", "fig7", "fig8",
		"fig9", "fig10", "fig11", "fig12", "tab1", "ubench-mira", "ubench-edison",
		"ubench-fusion", "ablation-rflush", "ablation-events", "ablation-hpl2d"}
	for _, id := range want {
		if _, ok := Lookup(id); !ok {
			t.Errorf("experiment %q missing from registry", id)
		}
	}
	if len(Experiments()) < len(want) {
		t.Errorf("registry has %d experiments, want at least %d", len(Experiments()), len(want))
	}
}

func TestFig1MemoryShape(t *testing.T) {
	tab := runExp(t, "fig1")
	for _, p := range []int{4, 16} {
		g := value(t, tab, "GASNet-only", p)
		m := value(t, tab, "MPI-only", p)
		d := value(t, tab, "Duplicate Runtimes", p)
		if !(g < m && d > m) {
			t.Errorf("P=%d: want GASNet(%f) < MPI(%f) < Duplicate(%f)", p, g, m, d)
		}
	}
	if value(t, tab, "MPI-only", 16) <= value(t, tab, "MPI-only", 4) {
		t.Error("MPI footprint should grow with job size")
	}
}

func TestFig2Outcomes(t *testing.T) {
	tab := runExp(t, "fig2")
	if valueByLabel(t, tab, "outcome", "CAF-GASNet (AM-mediated write)") != 1 {
		t.Error("AM-mediated write under MPI barrier should deadlock")
	}
	if valueByLabel(t, tab, "outcome", "CAF-MPI (one-sided write)") != 0 {
		t.Error("CAF-MPI scenario should complete")
	}
	if valueByLabel(t, tab, "outcome", "CAF-GASNet (RDMA write)") != 0 {
		t.Error("RDMA-write scenario should complete")
	}
}

func TestFig3RandomAccessShape(t *testing.T) {
	tab := runExp(t, "fig3")
	// GUPS grows with P for every implementation.
	for _, s := range []string{"CAF-MPI", "CAF-GASNet", "CAF-GASNet-NOSRQ"} {
		if value(t, tab, s, 16) <= value(t, tab, s, 4) {
			t.Errorf("%s GUPS did not grow from P=4 to P=16", s)
		}
	}
	// Everyone is below ideal at the top of the sweep.
	if value(t, tab, "CAF-MPI", 16) > value(t, tab, "IDEAL-SCALE", 16) {
		t.Error("CAF-MPI exceeded ideal scaling")
	}
}

func TestFig4DecompositionShape(t *testing.T) {
	tab := runExp(t, "fig4")
	mpiNotify := valueByLabel(t, tab, "CAF-MPI", "event_notify")
	gnNotify := valueByLabel(t, tab, "CAF-GASNet", "event_notify")
	if mpiNotify <= 1.5*gnNotify {
		t.Errorf("CAF-MPI event_notify (%g s) should far exceed CAF-GASNet's (%g s): FlushAll per-rank scan", mpiNotify, gnNotify)
	}
	gnWait := valueByLabel(t, tab, "CAF-GASNet", "event_wait")
	if gnWait <= gnNotify {
		t.Errorf("CAF-GASNet time should sit in event_wait (%g s) not notify (%g s)", gnWait, gnNotify)
	}
}

func TestFig6FFTShape(t *testing.T) {
	tab := runExp(t, "fig6")
	pTop := 16
	m, g := value(t, tab, "CAF-MPI", pTop), value(t, tab, "CAF-GASNet", pTop)
	if m <= g {
		t.Errorf("CAF-MPI FFT (%g GF) should beat CAF-GASNet (%g GF) at P=%d: tuned MPI_ALLTOALL", m, g, pTop)
	}
}

func TestFig8FFTDecomposition(t *testing.T) {
	tab := runExp(t, "fig8")
	gnA2A := valueByLabel(t, tab, "CAF-GASNet", "alltoall")
	mpiA2A := valueByLabel(t, tab, "CAF-MPI", "alltoall")
	if gnA2A <= mpiA2A {
		t.Errorf("hand-crafted all-to-all (%g s) should cost more than MPI_ALLTOALL (%g s)", gnA2A, mpiA2A)
	}
	gnComp := valueByLabel(t, tab, "CAF-GASNet", "computation")
	mpiComp := valueByLabel(t, tab, "CAF-MPI", "computation")
	ratio := gnComp / mpiComp
	if ratio < 0.8 || ratio > 1.25 {
		t.Errorf("local computation should be comparable: %g vs %g s", gnComp, mpiComp)
	}
}

func TestFig9HPLShape(t *testing.T) {
	tab := runExp(t, "fig9")
	pTop := 16
	m, g := value(t, tab, "CAF-MPI", pTop), value(t, tab, "CAF-GASNet", pTop)
	// At simulated laptop scale HPL is panel-broadcast-bound, so a modest
	// substrate gap remains (see EXPERIMENTS.md); at paper scale DGEMM
	// dominates and the curves coincide. Bound the gap rather than demand
	// equality.
	ratio := m / g
	if ratio < 0.55 || ratio > 1.8 {
		t.Errorf("HPL substrate gap out of bounds: CAF-MPI %g vs CAF-GASNet %g TF", m, g)
	}
	if value(t, tab, "CAF-MPI", 16) <= value(t, tab, "CAF-MPI", 4) {
		t.Error("HPL TFlops should grow with P in this range")
	}
}

func TestFig11CGPOPShape(t *testing.T) {
	tab := runExp(t, "fig11")
	for _, p := range []int{4, 16} {
		vals := []float64{
			value(t, tab, "CAF-MPI (PUSH)", p),
			value(t, tab, "CAF-MPI (PULL)", p),
			value(t, tab, "CAF-GASNet (PUSH)", p),
			value(t, tab, "CAF-GASNet (PULL)", p),
		}
		lo, hi := vals[0], vals[0]
		for _, v := range vals {
			if v < lo {
				lo = v
			}
			if v > hi {
				hi = v
			}
		}
		if hi > 1.6*lo {
			t.Errorf("P=%d: CGPOP variants should be close (paper: hardly any difference); spread %g..%g s", p, lo, hi)
		}
	}
	// Execution time falls as P grows (strong scaling).
	if value(t, tab, "CAF-MPI (PUSH)", 16) >= value(t, tab, "CAF-MPI (PUSH)", 4) {
		t.Error("CGPOP time should drop from P=4 to P=16")
	}
}

func TestMicrobenchShape(t *testing.T) {
	tab := runExp(t, "ubench-mira")
	p := 16
	if g, m := value(t, tab, "CAF-GASNet READ", p), value(t, tab, "CAF-MPI READ", p); g <= m {
		t.Errorf("Mira: GASNet read rate (%g) should exceed MPI's (%g)", g, m)
	}
	if g, m := value(t, tab, "CAF-GASNet WRITE", p), value(t, tab, "CAF-MPI WRITE", p); g <= m {
		t.Errorf("Mira: GASNet write rate (%g) should exceed MPI's (%g)", g, m)
	}
}

func TestAblationRflush(t *testing.T) {
	tab := runExp(t, "ablation-rflush")
	p := 32
	fa, rf := value(t, tab, "CAF-MPI(FlushAll)", p), value(t, tab, "CAF-MPI(Rflush)", p)
	if rf < fa {
		t.Errorf("Rflush (%g GUPS) should not lose to FlushAll (%g GUPS)", rf, fa)
	}
}

func TestAblationEventDesign(t *testing.T) {
	tab := runExp(t, "ablation-events")
	p := 16
	isend := value(t, tab, "CAF-MPI(isend/recv events)", p)
	atomic := value(t, tab, "CAF-MPI(atomic events)", p)
	if isend <= atomic {
		t.Errorf("the shipped isend/recv design (%g GUPS) should beat atomic events (%g GUPS), as §3.4 expects", isend, atomic)
	}
}

func TestTab1AndFormat(t *testing.T) {
	tab := runExp(t, "tab1")
	s := Format(tab)
	for _, want := range []string{"fusion", "edison", "mira", "latency_ns"} {
		if !strings.Contains(s, want) {
			t.Errorf("formatted tab1 missing %q:\n%s", want, s)
		}
	}
}

func TestPaperReferenceData(t *testing.T) {
	// Every sweep figure has transcribed paper data with the same series
	// names as the regenerated table, so -paper comparisons line up.
	for _, id := range []string{"fig1", "fig3", "fig4", "fig5", "fig6", "fig7",
		"fig8", "fig9", "fig10", "fig11", "fig12", "ubench-mira", "ubench-edison"} {
		ref := PaperReference(id)
		if ref == nil {
			t.Errorf("no paper reference for %s", id)
			continue
		}
		if len(ref.Rows) == 0 {
			t.Errorf("%s: empty paper reference", id)
		}
	}
	if PaperReference("fig2") != nil {
		t.Error("fig2 is a code listing, not a data series")
	}
	// Spot checks against the paper text.
	f3 := PaperReference("fig3")
	found := false
	for _, r := range f3.Rows {
		if r.Series == "CAF-GASNet" && r.X == 128 {
			if r.Y != 0.20760 {
				t.Errorf("fig3 GASNet@128 = %v, want 0.20760 (the SRQ dip)", r.Y)
			}
			found = true
		}
	}
	if !found {
		t.Error("fig3 paper data missing the 128-rank point")
	}
	f4 := PaperReference("fig4")
	for _, r := range f4.Rows {
		if r.Series == "CAF-MPI" && r.Label == "event_notify" && r.Y != 219.08 {
			t.Errorf("fig4 MPI notify = %v, want 219.08", r.Y)
		}
	}
}
