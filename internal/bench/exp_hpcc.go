package bench

import (
	"fmt"
	"math/bits"

	"cafmpi/caf"
	"cafmpi/internal/fabric"
	"cafmpi/internal/hpcc"
	"cafmpi/internal/obs"
	"cafmpi/internal/rtmpi"
	"cafmpi/internal/trace"
)

// job runs fn as a CAF program and returns image 0's error. When the
// harness carries a Stats sink, the job runs with the obs subsystem on and
// delivers its merged snapshot, labeled by substrate and image count.
func job(o Options, platform *fabric.Params, sub caf.Substrate, n int, trc bool, fn func(*caf.Image) error) error {
	cfg := caf.Config{Substrate: sub, Platform: platform, Diag: caf.Diag{Trace: trc, Observe: o.Stats != nil}}
	w, err := caf.RunWorld(n, cfg, fn)
	if err != nil {
		return err
	}
	if o.Stats != nil {
		if ow := obs.Enabled(w); ow != nil {
			o.Stats(fmt.Sprintf("%s/np=%d", sub, n), ow.Snapshot())
		}
	}
	return nil
}

// noSRQ returns a copy of the platform with the GASNet SRQ disabled (the
// paper's CAF-GASNet-NOSRQ configuration).
func noSRQ(p *fabric.Params) *fabric.Params {
	cp := *p
	cp.GASNet.SRQ.Enabled = false
	return &cp
}

// raWorkload picks the RandomAccess problem for a sweep point.
func raWorkload(o Options) hpcc.RAConfig {
	cfg := hpcc.RAConfig{TableBits: 9, UpdatesPerImage: 2048, BatchSize: 256}
	if o.Quick {
		cfg.UpdatesPerImage = 256
		cfg.BatchSize = 64
	}
	return cfg
}

// raSweep measures GUPS for one substrate/platform across the sweep.
func raSweep(o Options, series string, platform *fabric.Params, sub caf.Substrate, ps []int) ([]Row, error) {
	var rows []Row
	for _, p := range ps {
		var gups float64
		err := job(o, platform, sub, p, false, func(im *caf.Image) error {
			res, err := hpcc.RandomAccess(im, raWorkload(o))
			if err != nil {
				return err
			}
			if im.ID() == 0 {
				gups = res.GUPS
			}
			return nil
		})
		if err != nil {
			return nil, fmt.Errorf("%s P=%d: %w", series, p, err)
		}
		rows = append(rows, Row{Series: series, X: p, Y: gups})
	}
	return rows, nil
}

func raFigure(id, title string, platform func(Options) *fabric.Params, withNoSRQ bool) Experiment {
	return Experiment{
		ID:    id,
		Title: title,
		Paper: "GASNet leads at small P; on Fusion SRQ saturation halves CAF-GASNet beyond 128 ranks while NOSRQ tracks CAF-MPI; CAF-MPI trails GASNet at scale (FlushAll-burdened notifies), all below ideal.",
		Run: func(o Options) (*Table, error) {
			o = o.withDefaults()
			pf := platform(o)
			ps := o.pSweep(4)
			t := &Table{ID: id, Title: title, XLabel: "processes", YLabel: "GUPS",
				Notes: fmt.Sprintf("platform=%s table=2^9/image updates=%d/image", pf.Name, raWorkload(o).UpdatesPerImage)}
			m, err := raSweep(o, "CAF-MPI", pf, caf.MPI, ps)
			if err != nil {
				return nil, err
			}
			g, err := raSweep(o, "CAF-GASNet", pf, caf.GASNet, ps)
			if err != nil {
				return nil, err
			}
			t.Rows = append(t.Rows, m...)
			t.Rows = append(t.Rows, g...)
			if withNoSRQ {
				ns, err := raSweep(o, "CAF-GASNet-NOSRQ", noSRQ(pf), caf.GASNet, ps)
				if err != nil {
					return nil, err
				}
				t.Rows = append(t.Rows, ns...)
			}
			t.Rows = append(t.Rows, ideal(m, "CAF-MPI", ps)...)
			return t, nil
		},
	}
}

// fftWorkload scales the transform with the image count (weak scaling, as
// HPCC runs the largest size that fits): a fixed per-image chunk of 2^12
// points (2^10 in quick mode). The layout constraint (P | n1 and P | n2)
// is satisfied since the per-image exponent exceeds log2(P) in all sweeps.
func fftWorkload(o Options, p int) hpcc.FFTConfig {
	perImage := 13
	if o.Quick {
		perImage = 10
	}
	logSize := bits.Len(uint(p-1)) + perImage
	if need := 2 * bits.Len(uint(p-1)); logSize < need {
		logSize = need
	}
	return hpcc.FFTConfig{LogSize: logSize}
}

func fftSweep(o Options, series string, platform *fabric.Params, sub caf.Substrate, ps []int) ([]Row, error) {
	var rows []Row
	for _, p := range ps {
		var gf float64
		err := job(o, platform, sub, p, false, func(im *caf.Image) error {
			res, err := hpcc.FFT(im, fftWorkload(o, p))
			if err != nil {
				return err
			}
			if im.ID() == 0 {
				gf = res.GFlops
			}
			return nil
		})
		if err != nil {
			return nil, fmt.Errorf("%s P=%d: %w", series, p, err)
		}
		rows = append(rows, Row{Series: series, X: p, Y: gf})
	}
	return rows, nil
}

func fftFigure(id, title string, platform func(Options) *fabric.Params) Experiment {
	return Experiment{
		ID:    id,
		Title: title,
		Paper: "CAF-MPI consistently outperforms CAF-GASNet (~2x at scale): MPI_ALLTOALL's pairwise exchange beats the hand-crafted put+AM all-to-all (Figure 8).",
		Run: func(o Options) (*Table, error) {
			o = o.withDefaults()
			pf := platform(o)
			ps := o.pSweep(4)
			t := &Table{ID: id, Title: title, XLabel: "processes", YLabel: "GFlop/s",
				Notes: fmt.Sprintf("platform=%s weak scaling, 2^%d points/image", pf.Name, fftWorkload(o, 1).LogSize)}
			m, err := fftSweep(o, "CAF-MPI", pf, caf.MPI, ps)
			if err != nil {
				return nil, err
			}
			g, err := fftSweep(o, "CAF-GASNet", pf, caf.GASNet, ps)
			if err != nil {
				return nil, err
			}
			t.Rows = append(t.Rows, m...)
			t.Rows = append(t.Rows, g...)
			t.Rows = append(t.Rows, ideal(m, "CAF-MPI", ps)...)
			return t, nil
		},
	}
}

// hplWorkload keeps the real arithmetic tractable while remaining
// computation-dominated.
func hplWorkload(o Options, maxP int) hpcc.HPLConfig {
	n := 1024
	if o.Quick {
		n = 512
	}
	return hpcc.HPLConfig{N: n, NB: 16}
}

func hplFigure(id, title string, platform func(Options) *fabric.Params) Experiment {
	return Experiment{
		ID:    id,
		Title: title,
		Paper: "No visible difference between CAF-MPI and CAF-GASNet: HPL is computation-bound (Figures 9/10).",
		Run: func(o Options) (*Table, error) {
			o = o.withDefaults()
			pf := platform(o)
			capP := o.MaxP
			if capP > 64 {
				capP = 64 // 1-D column blocks: N/NB owners; see DESIGN.md
			}
			oo := o
			oo.MaxP = capP
			ps := oo.pSweep(4)
			w := hplWorkload(o, capP)
			t := &Table{ID: id, Title: title, XLabel: "processes", YLabel: "TFlop/s",
				Notes: fmt.Sprintf("platform=%s N=%d NB=%d (sweep capped at %d: 1-D column distribution)", pf.Name, w.N, w.NB, capP)}
			for _, series := range []struct {
				name string
				sub  caf.Substrate
			}{{"CAF-MPI", caf.MPI}, {"CAF-GASNet", caf.GASNet}} {
				for _, p := range ps {
					var tf float64
					err := job(o, pf, series.sub, p, false, func(im *caf.Image) error {
						res, err := hpcc.HPL(im, w)
						if err != nil {
							return err
						}
						if im.ID() == 0 {
							tf = res.TFlops
						}
						return nil
					})
					if err != nil {
						return nil, fmt.Errorf("%s P=%d: %w", series.name, p, err)
					}
					t.Rows = append(t.Rows, Row{Series: series.name, X: p, Y: tf})
				}
			}
			t.Rows = append(t.Rows, ideal(t.Rows, "CAF-MPI", ps)...)
			return t, nil
		},
	}
}

// decomposition gathers world-summed per-category virtual time. It uses
// the inclusive view so a category's figure covers everything spent under
// it, even when substrate-level spans nest inside (the paper's Figures 4
// and 8 attribute whole phases, not exclusive slices).
func decomposition(im *caf.Image, cats []trace.Category) ([]float64, error) {
	in := make([]float64, len(cats))
	for i, c := range cats {
		in[i] = float64(im.Tracer().Inclusive(c)) * 1e-9
	}
	out := make([]float64, len(cats))
	if err := im.World().Allreduce(caf.F64Bytes(in), caf.F64Bytes(out), caf.Float64, caf.OpSum); err != nil {
		return nil, err
	}
	return out, nil
}

func init() {
	register(raFigure("fig3", "RandomAccess on Fusion (GUPS)", func(o Options) *fabric.Params { return fabric.Platform("fusion") }, true))
	register(Experiment{
		ID:    "fig4",
		Title: "RandomAccess time decomposition",
		Paper: "CAF-MPI burns ~200s in event_notify (MPI_WIN_FLUSH_ALL scans every rank) where CAF-GASNet spends almost none; GASNet's time sits in event_wait instead.",
		Run: func(o Options) (*Table, error) {
			o = o.withDefaults()
			p := o.MaxP
			if p > 64 {
				p = 64
			}
			if o.Quick {
				p = 32
			}
			cats := []trace.Category{trace.Computation, trace.CoarrayWrite, trace.EventWait, trace.EventNotify}
			t := &Table{ID: "fig4", Title: "RandomAccess time decomposition", XLabel: "category",
				YLabel: "aggregate seconds", Notes: fmt.Sprintf("platform=fusion P=%d", p)}
			for _, s := range []struct {
				name string
				sub  caf.Substrate
			}{{"CAF-GASNet", caf.GASNet}, {"CAF-MPI", caf.MPI}} {
				var vals []float64
				err := job(o, fabric.Platform("fusion"), s.sub, p, true, func(im *caf.Image) error {
					if _, err := hpcc.RandomAccess(im, raWorkload(o)); err != nil {
						return err
					}
					v, err := decomposition(im, cats)
					if err != nil {
						return err
					}
					if im.ID() == 0 {
						vals = v
					}
					return nil
				})
				if err != nil {
					return nil, err
				}
				for i, c := range cats {
					t.Rows = append(t.Rows, Row{Series: s.name, X: i, Label: c.String(), Y: vals[i]})
				}
			}
			return t, nil
		},
	})
	register(raFigure("fig5", "RandomAccess on Edison (GUPS)", func(o Options) *fabric.Params { return fabric.Platform("edison") }, false))
	register(fftFigure("fig6", "FFT on Fusion (GFlop/s)", func(o Options) *fabric.Params { return fabric.Platform("fusion") }))
	register(fftFigure("fig7", "FFT on Edison (GFlop/s)", func(o Options) *fabric.Params { return fabric.Platform("edison") }))
	register(Experiment{
		ID:    "fig8",
		Title: "FFT time decomposition",
		Paper: "CAF-GASNet spends ~3x longer in all-to-all than CAF-MPI (17.9s vs 6.1s on 256 Fusion cores); local computation is comparable.",
		Run: func(o Options) (*Table, error) {
			o = o.withDefaults()
			p := o.MaxP
			if p > 128 {
				p = 128 // the all-to-all gap opens at scale (SRQ + AM signal costs)
			}
			if o.Quick {
				p = 16
			}
			cats := []trace.Category{trace.Alltoall, trace.Computation}
			t := &Table{ID: "fig8", Title: "FFT time decomposition", XLabel: "category",
				YLabel: "aggregate seconds", Notes: fmt.Sprintf("platform=fusion P=%d", p)}
			for _, s := range []struct {
				name string
				sub  caf.Substrate
			}{{"CAF-GASNet", caf.GASNet}, {"CAF-MPI", caf.MPI}} {
				var vals []float64
				err := job(o, fabric.Platform("fusion"), s.sub, p, true, func(im *caf.Image) error {
					if _, err := hpcc.FFT(im, fftWorkload(o, p)); err != nil {
						return err
					}
					v, err := decomposition(im, cats)
					if err != nil {
						return err
					}
					if im.ID() == 0 {
						vals = v
					}
					return nil
				})
				if err != nil {
					return nil, err
				}
				for i, c := range cats {
					t.Rows = append(t.Rows, Row{Series: s.name, X: i, Label: c.String(), Y: vals[i]})
				}
			}
			return t, nil
		},
	})
	register(hplFigure("fig9", "HPL on Fusion (TFlop/s)", func(o Options) *fabric.Params { return fabric.Platform("fusion") }))
	register(hplFigure("fig10", "HPL on Edison (TFlop/s)", func(o Options) *fabric.Params { return fabric.Platform("edison") }))
	register(Experiment{
		ID:    "ablation-hpl2d",
		Title: "Ablation: HPL process layout — 1-D block-cyclic columns vs 2-D grid",
		Paper: "The paper's HPL port uses a 2-D block-cyclic layout; the 1-D layout runs out of column owners at N/NB processes, flattening its scaling.",
		Run: func(o Options) (*Table, error) {
			o = o.withDefaults()
			ps := o.pSweep(4)
			w := hplWorkload(o, o.MaxP)
			t := &Table{ID: "ablation-hpl2d", Title: "HPL: 1-D vs 2-D block-cyclic layout",
				XLabel: "processes", YLabel: "TFlop/s",
				Notes: fmt.Sprintf("platform=fusion N=%d NB=%d", w.N, w.NB)}
			for _, p := range ps {
				var tf1, tf2 float64
				err := job(o, fabric.Platform("fusion"), caf.MPI, p, false, func(im *caf.Image) error {
					r1, err := hpcc.HPL(im, w)
					if err != nil {
						return err
					}
					r2, err := hpcc.HPL2D(im, w)
					if err != nil {
						return err
					}
					if im.ID() == 0 {
						tf1, tf2 = r1.TFlops, r2.TFlops
					}
					return nil
				})
				if err != nil {
					return nil, fmt.Errorf("P=%d: %w", p, err)
				}
				t.Rows = append(t.Rows,
					Row{Series: "HPL 1-D columns", X: p, Y: tf1},
					Row{Series: "HPL 2-D grid", X: p, Y: tf2})
			}
			return t, nil
		},
	})
	register(Experiment{
		ID:    "ablation-events",
		Title: "Ablation: event design — ISEND/RECV vs FETCH_AND_OP/CAS (§3.4)",
		Paper: "The paper weighs both designs and ships ISEND/RECV because two-sided messaging is better tuned; the atomics design pays a remote-atomic round trip per probe.",
		Run: func(o Options) (*Table, error) {
			o = o.withDefaults()
			ps := o.pSweep(4)
			t := &Table{ID: "ablation-events", Title: "RandomAccess GUPS under the two event designs",
				XLabel: "processes", YLabel: "GUPS", Notes: "platform=fusion"}
			for _, variant := range []struct {
				name   string
				atomic bool
			}{{"CAF-MPI(isend/recv events)", false}, {"CAF-MPI(atomic events)", true}} {
				for _, p := range ps {
					var gups float64
					cfg := caf.Config{Substrate: caf.MPI, Platform: fabric.Platform("fusion"),
						MPIOptions: rtmpi.Options{AtomicEvents: variant.atomic}}
					err := caf.Run(p, cfg, func(im *caf.Image) error {
						res, err := hpcc.RandomAccess(im, raWorkload(o))
						if err != nil {
							return err
						}
						if im.ID() == 0 {
							gups = res.GUPS
						}
						return nil
					})
					if err != nil {
						return nil, err
					}
					t.Rows = append(t.Rows, Row{Series: variant.name, X: p, Y: gups})
				}
			}
			return t, nil
		},
	})
	register(Experiment{
		ID:    "ablation-rflush",
		Title: "Ablation: event_notify via FlushAll vs proposed MPI_WIN_RFLUSH (§5)",
		Paper: "Future-work claim: a request-generating flush removes the blocking per-rank completion wait from the notify path, lifting RandomAccess.",
		Run: func(o Options) (*Table, error) {
			o = o.withDefaults()
			ps := []int{8, 32, 128}
			if o.Quick {
				ps = []int{8, 32}
			}
			for len(ps) > 1 && ps[len(ps)-1] > o.MaxP*2 {
				ps = ps[:len(ps)-1]
			}
			t := &Table{ID: "ablation-rflush", Title: "RandomAccess GUPS: FlushAll vs Rflush", XLabel: "processes", YLabel: "GUPS", Notes: "platform=fusion"}
			for _, variant := range []struct {
				name   string
				rflush bool
			}{{"CAF-MPI(FlushAll)", false}, {"CAF-MPI(Rflush)", true}} {
				for _, p := range ps {
					var gups float64
					cfg := caf.Config{Substrate: caf.MPI, Platform: fabric.Platform("fusion"),
						MPIOptions: rtmpi.Options{UseRflush: variant.rflush}}
					err := caf.Run(p, cfg, func(im *caf.Image) error {
						res, err := hpcc.RandomAccess(im, raWorkload(o))
						if err != nil {
							return err
						}
						if im.ID() == 0 {
							gups = res.GUPS
						}
						return nil
					})
					if err != nil {
						return nil, err
					}
					t.Rows = append(t.Rows, Row{Series: variant.name, X: p, Y: gups})
				}
			}
			return t, nil
		},
	})
}
