// Package analysis is a self-contained static-analysis framework modeled on
// golang.org/x/tools/go/analysis, built entirely on the standard library's
// go/ast and go/types so the tree carries no external dependencies. It powers
// cmd/caflint: a multichecker of CAF-runtime-specific invariants (virtual-
// clock purity, mutex guard annotations, fabric pool lifetimes, obs edge
// coverage) that runs standalone or as a `go vet -vettool`.
//
// # Suppression grammar
//
// A diagnostic can be silenced with an annotation comment:
//
//	//caflint:allow <analyzer> [<analyzer>...] [-- reason]
//
// The annotation's scope depends on where it appears:
//
//   - on the same line as the offending expression, or alone on the line
//     directly above it: that line only;
//   - in the doc comment of a function: the whole function;
//   - in the package clause's doc comment: the whole file.
//
// Unscoped suppression is deliberately impossible: every allow names the
// analyzers it silences, so a sweep can grep for outstanding waivers.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// Analyzer describes one static check.
type Analyzer struct {
	// Name is the analyzer's identifier (used in -<name>=false flags and in
	// //caflint:allow annotations).
	Name string
	// Doc is the one-paragraph description printed by `caflint help`.
	Doc string
	// Run applies the analyzer to one package, reporting findings through
	// pass.Report.
	Run func(pass *Pass) error
	// FactTypes lists prototype values of every Fact type the analyzer
	// exports or imports. An analyzer with FactTypes is interprocedural:
	// drivers run it over dependency packages too (facts-only, no
	// diagnostics) so summaries flow bottom-up through the import graph.
	FactTypes []Fact
}

// Fact is a serializable summary an analyzer attaches to a function or a
// package, the stdlib counterpart of go/analysis facts. Facts cross package
// boundaries through the vet-tool facts file (internal/analysis/unit), so
// every Fact type must round-trip through encoding/json.
type Fact interface{ AFact() }

// Pass carries one package's parsed and type-checked state to an analyzer.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	// KeepSuppressed forwards allow-silenced diagnostics to the reporter
	// with Suppressed set instead of dropping them (the -json audit view).
	KeepSuppressed bool

	// facts is the shared per-run store; nil in fact-less drivers.
	facts *FactStore
	// report receives every non-suppressed diagnostic.
	report func(Diagnostic)
	// allows indexes the //caflint:allow annotations of every file.
	allows *allowIndex
}

// Diagnostic is one finding.
type Diagnostic struct {
	Pos      token.Pos
	Message  string
	Analyzer string
	// Suppressed marks a diagnostic silenced by a //caflint:allow
	// annotation; only reported when Pass.KeepSuppressed is set.
	Suppressed bool
}

// Reportf reports a finding at pos unless an allow annotation covers it.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	d := Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...), Analyzer: p.Analyzer.Name}
	if p.allows != nil && p.allows.allowed(p.Fset, pos, p.Analyzer.Name) {
		if !p.KeepSuppressed {
			return
		}
		d.Suppressed = true
	}
	p.report(d)
}

// ExportFunctionFact attaches fact to fn, visible to later analysis of any
// package that can name fn. No-op without a fact store.
func (p *Pass) ExportFunctionFact(fn *types.Func, fact Fact) {
	if p.facts == nil || fn == nil {
		return
	}
	p.facts.set(p.Analyzer.Name, funcKey(fn), fact)
}

// ImportFunctionFact copies fn's fact (exported here or by a dependency
// package's run) into fact, reporting whether one was found.
func (p *Pass) ImportFunctionFact(fn *types.Func, fact Fact) bool {
	if p.facts == nil || fn == nil {
		return false
	}
	return p.facts.get(p.Analyzer.Name, funcKey(fn), fact)
}

// ExportPackageFact attaches fact to the package under analysis.
func (p *Pass) ExportPackageFact(fact Fact) {
	if p.facts == nil {
		return
	}
	p.facts.set(p.Analyzer.Name, pkgKey(p.Pkg.Path()), fact)
}

// ImportPackageFact copies the named package's fact into fact, reporting
// whether one was found. Path is an import path ("cafmpi/internal/fabric").
func (p *Pass) ImportPackageFact(path string, fact Fact) bool {
	if p.facts == nil {
		return false
	}
	return p.facts.get(p.Analyzer.Name, pkgKey(path), fact)
}

// funcKey is the stable cross-package identity of a function object:
// types.Func.FullName includes the package path for both functions
// ("cafmpi/internal/mpi.WinAllocate") and methods
// ("(*cafmpi/internal/mpi.Win).Put").
func funcKey(fn *types.Func) string { return "fn:" + fn.FullName() }

func pkgKey(path string) string { return "pkg:" + path }

// NewPass builds a Pass over a type-checked package; drivers (the vet-config
// unitchecker, the test harness) construct one per (package, analyzer).
// facts may be nil for drivers that run purely intraprocedural suites.
func NewPass(a *Analyzer, fset *token.FileSet, files []*ast.File, pkg *types.Package, info *types.Info, facts *FactStore, report func(Diagnostic)) *Pass {
	return &Pass{
		Analyzer:  a,
		Fset:      fset,
		Files:     files,
		Pkg:       pkg,
		TypesInfo: info,
		facts:     facts,
		report:    report,
		allows:    buildAllowIndex(fset, files),
	}
}

// allowSpan is one annotation's scope: analyzer names allowed over a file
// line interval.
type allowSpan struct {
	file     string
	fromLine int
	toLine   int
	names    map[string]bool
}

type allowIndex struct{ spans []allowSpan }

// allowed reports whether an annotation covers (pos, analyzer).
func (ix *allowIndex) allowed(fset *token.FileSet, pos token.Pos, analyzer string) bool {
	if ix == nil || !pos.IsValid() {
		return false
	}
	p := fset.Position(pos)
	for _, s := range ix.spans {
		if s.file == p.Filename && p.Line >= s.fromLine && p.Line <= s.toLine &&
			(s.names[analyzer] || s.names["all"]) {
			return true
		}
	}
	return false
}

const allowPrefix = "caflint:allow"

// parseAllow extracts the analyzer names of one annotation comment, or nil.
func parseAllow(text string) map[string]bool {
	text = strings.TrimPrefix(strings.TrimSpace(strings.TrimPrefix(text, "//")), "/*")
	if !strings.HasPrefix(text, allowPrefix) {
		return nil
	}
	rest := strings.TrimSpace(strings.TrimPrefix(text, allowPrefix))
	if i := strings.Index(rest, "--"); i >= 0 {
		rest = rest[:i] // trailing free-form reason
	}
	names := make(map[string]bool)
	for _, f := range strings.Fields(rest) {
		names[strings.TrimSuffix(f, ",")] = true
	}
	if len(names) == 0 {
		return nil
	}
	return names
}

// buildAllowIndex scans every comment of every file and computes each
// annotation's scope.
func buildAllowIndex(fset *token.FileSet, files []*ast.File) *allowIndex {
	ix := &allowIndex{}
	for _, f := range files {
		fname := fset.Position(f.Pos()).Filename

		// File scope: annotations in the package doc comment.
		if f.Doc != nil {
			for _, c := range f.Doc.List {
				if names := parseAllow(c.Text); names != nil {
					end := fset.Position(f.End()).Line
					ix.spans = append(ix.spans, allowSpan{file: fname, fromLine: 1, toLine: end, names: names})
				}
			}
		}

		// Function scope: annotations in a declaration's doc comment.
		funcDoc := make(map[*ast.CommentGroup]bool)
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Doc == nil {
				continue
			}
			funcDoc[fd.Doc] = true
			for _, c := range fd.Doc.List {
				if names := parseAllow(c.Text); names != nil {
					ix.spans = append(ix.spans, allowSpan{
						file:     fname,
						fromLine: fset.Position(fd.Pos()).Line,
						toLine:   fset.Position(fd.End()).Line,
						names:    names,
					})
				}
			}
		}

		// Line scope: every other annotation covers its own line and the next.
		for _, cg := range f.Comments {
			if cg == f.Doc || funcDoc[cg] {
				continue
			}
			for _, c := range cg.List {
				if names := parseAllow(c.Text); names != nil {
					line := fset.Position(c.Pos()).Line
					ix.spans = append(ix.spans, allowSpan{file: fname, fromLine: line, toLine: line + 1, names: names})
				}
			}
		}
	}
	return ix
}

// CalleeFunc resolves the *types.Func a call expression invokes (methods and
// package-level functions), or nil for indirect calls, conversions and
// builtins. Shared by several analyzers.
func CalleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if f, ok := info.Uses[fun].(*types.Func); ok {
			return f
		}
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[fun]; ok {
			if f, ok := sel.Obj().(*types.Func); ok {
				return f
			}
			return nil
		}
		if f, ok := info.Uses[fun.Sel].(*types.Func); ok {
			return f // package-qualified call
		}
	}
	return nil
}

// PkgBase returns the last segment of a package path ("" for nil).
func PkgBase(pkg *types.Package) string {
	if pkg == nil {
		return ""
	}
	path := pkg.Path()
	if i := strings.LastIndexByte(path, '/'); i >= 0 {
		return path[i+1:]
	}
	return path
}

// IsTestFile reports whether pos lies in a _test.go file.
func IsTestFile(fset *token.FileSet, pos token.Pos) bool {
	return strings.HasSuffix(fset.Position(pos).Filename, "_test.go")
}
