package analysis

import (
	"encoding/json"
	"fmt"
	"reflect"
	"sort"
)

// FactStore holds every fact of one analysis run: summaries imported from
// dependency packages' facts files plus those exported while analyzing the
// current package. It is the payload of the vet-tool protocol's .vetx files
// (internal/analysis/unit re-exports imported facts, so summaries flow
// transitively without cmd/go having to list indirect dependencies).
//
// Facts are stored marshaled: export serializes immediately, import
// deserializes into the caller's value. That makes the store's contents
// independent of in-process pointer identity — exactly what the
// export → encode → decode → import round trip of the unit protocol needs —
// and lets one store serve every analyzer (entries are namespaced by
// analyzer name, then keyed by object identity).
type FactStore struct {
	// entries: analyzer -> object key -> marshaled fact.
	entries map[string]map[string]factEntry
}

// factEntry is one serialized fact. Type pins the concrete Go type name so
// a decode into a mismatched prototype is an error, not silent corruption.
type factEntry struct {
	Type string          `json:"type"`
	Data json.RawMessage `json:"data"`
}

// NewFactStore returns an empty store.
func NewFactStore() *FactStore {
	return &FactStore{entries: make(map[string]map[string]factEntry)}
}

func factTypeName(f Fact) string {
	t := reflect.TypeOf(f)
	for t.Kind() == reflect.Pointer {
		t = t.Elem()
	}
	return t.Name()
}

func (s *FactStore) set(analyzer, key string, f Fact) {
	data, err := json.Marshal(f)
	if err != nil {
		panic(fmt.Sprintf("analysis: unencodable fact %T: %v", f, err))
	}
	m := s.entries[analyzer]
	if m == nil {
		m = make(map[string]factEntry)
		s.entries[analyzer] = m
	}
	m[key] = factEntry{Type: factTypeName(f), Data: data}
}

func (s *FactStore) get(analyzer, key string, f Fact) bool {
	e, ok := s.entries[analyzer][key]
	if !ok || e.Type != factTypeName(f) {
		return false
	}
	return json.Unmarshal(e.Data, f) == nil
}

// Get decodes the fact stored under (analyzer, key) into f, reporting
// whether a fact of f's exact type was present. Keys follow the exporters'
// conventions: "fn:<types.Func.FullName>" for function facts and
// "pkg:<import path>" for package facts.
func (s *FactStore) Get(analyzer, key string, f Fact) bool {
	return s.get(analyzer, key, f)
}

// Len reports the number of stored facts across all analyzers.
func (s *FactStore) Len() int {
	n := 0
	for _, m := range s.entries {
		n += len(m)
	}
	return n
}

// Merge copies every fact of other into s (other wins on key collisions).
func (s *FactStore) Merge(other *FactStore) {
	if other == nil {
		return
	}
	for analyzer, m := range other.entries {
		dst := s.entries[analyzer]
		if dst == nil {
			dst = make(map[string]factEntry, len(m))
			s.entries[analyzer] = dst
		}
		for k, e := range m {
			dst[k] = e
		}
	}
}

// factsFile is the serialized shape: {"version":1,"facts":{analyzer:{key:entry}}}.
type factsFile struct {
	Version int                             `json:"version"`
	Facts   map[string]map[string]factEntry `json:"facts"`
}

// Encode serializes the store deterministically (sorted keys, so identical
// stores produce identical bytes — build caching and golden tests rely on
// this).
func (s *FactStore) Encode() ([]byte, error) {
	// json.Marshal already sorts map keys; wrap and emit.
	return json.Marshal(factsFile{Version: 1, Facts: s.entries})
}

// DecodeFacts parses bytes produced by Encode. Empty input yields an empty
// store (pre-facts caflint versions wrote zero-length placeholder files).
func DecodeFacts(data []byte) (*FactStore, error) {
	s := NewFactStore()
	if len(data) == 0 {
		return s, nil
	}
	var f factsFile
	if err := json.Unmarshal(data, &f); err != nil {
		return nil, fmt.Errorf("analysis: corrupt facts file: %w", err)
	}
	if f.Version != 1 {
		return nil, fmt.Errorf("analysis: facts file version %d not supported", f.Version)
	}
	if f.Facts != nil {
		s.entries = f.Facts
	}
	return s, nil
}

// Keys returns the sorted object keys holding facts for analyzer — the
// audit/debug view (and the round-trip test's equality probe).
func (s *FactStore) Keys(analyzer string) []string {
	var keys []string
	for k := range s.entries[analyzer] {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
