package clockpure_test

import (
	"testing"

	"cafmpi/internal/analysis/analysistest"
	"cafmpi/internal/analysis/passes/clockpure"
)

func Test(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), clockpure.Analyzer, "obs", "app")
}
