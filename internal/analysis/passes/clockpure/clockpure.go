// Package clockpure defines an analyzer enforcing the PR-3 invariant that
// observability code is clock-pure: the obs/critpath/hist recording paths
// must never call into runtime layers that advance virtual clocks (fabric,
// mpi, gasnet, core, substrates), and may touch sim only through read-only
// accessors. Recording must observe the simulation, never perturb it — the
// clock-invariance goldens depend on -trace/-stats/-critpath being free.
package clockpure

import (
	"go/ast"

	"cafmpi/internal/analysis"
)

// Analyzer flags clock-impure calls inside recording packages.
var Analyzer = &analysis.Analyzer{
	Name: "clockpure",
	Doc:  "obs/critpath/hist/sanitizer/faults recording code must not call clock-advancing runtime APIs",
	Run:  run,
}

// recordingPkgs are the package basenames held to clock purity. faults is
// held to the same standard: the injector decides and records faults but
// only the fabric may apply their clock consequences.
var recordingPkgs = map[string]bool{"obs": true, "critpath": true, "hist": true, "sanitizer": true, "faults": true}

// runtimePkgs are the layers whose entry points may advance virtual clocks;
// recording code must not call into them at all.
var runtimePkgs = map[string]bool{
	"fabric": true, "mpi": true, "gasnet": true, "core": true,
	"rtmpi": true, "rtgasnet": true, "caf": true,
}

// simReadOnly lists the sim accessors recording code may use: identity,
// registry reads, and reading (never advancing) the clock.
var simReadOnly = map[string]bool{
	"ID": true, "N": true, "World": true, "Now": true,
	"Peek": true, "Shared": true,
}

func run(pass *analysis.Pass) error {
	if !recordingPkgs[analysis.PkgBase(pass.Pkg)] {
		return nil
	}
	for _, f := range pass.Files {
		if analysis.IsTestFile(pass.Fset, f.Pos()) {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := analysis.CalleeFunc(pass.TypesInfo, call)
			if fn == nil || fn.Pkg() == nil || fn.Pkg() == pass.Pkg {
				return true
			}
			base := analysis.PkgBase(fn.Pkg())
			switch {
			case runtimePkgs[base]:
				pass.Reportf(call.Pos(),
					"recording code calls %s.%s: obs paths must stay clock-pure (no fabric/runtime calls)",
					base, fn.Name())
			case base == "sim" && !simReadOnly[fn.Name()]:
				pass.Reportf(call.Pos(),
					"recording code calls sim.%s: only read-only accessors (%s) are clock-pure",
					fn.Name(), "ID/N/World/Now/Peek/Shared")
			}
			return true
		})
	}
	return nil
}
