// Package fabric is a fixture stand-in for the message fabric.
package fabric

func Send(dst int, b []byte) {}

type Endpoint struct{}

func (e *Endpoint) Poke() {}
