// Package obs is a fixture recording package: it must stay clock-pure.
package obs

import (
	"fabric"
	"sim"
)

type Shard struct{ events int }

// Record is a pure recording path: reading identity and the clock is fine.
func (s *Shard) Record(p *sim.Proc) {
	_ = p.ID()
	_ = p.Now()
	s.events++
}

// leaky calls into runtime layers: every such call is a violation.
func leaky(p *sim.Proc, e *fabric.Endpoint) {
	fabric.Send(1, nil) // want `recording code calls fabric\.Send`
	e.Poke()            // want `recording code calls fabric\.Poke`
	p.Advance(10)       // want `recording code calls sim\.Advance`
	p.AdvanceTo(99)     // want `recording code calls sim\.AdvanceTo`
	p.Wake(2)           // want `recording code calls sim\.Wake`
}
