// Package app is not a recording package: the same calls are legal here,
// so the analyzer must stay silent.
package app

import (
	"fabric"
	"sim"
)

func Step(p *sim.Proc) {
	fabric.Send(1, nil)
	p.Advance(10)
}
