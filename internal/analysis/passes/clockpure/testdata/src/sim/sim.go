// Package sim is a fixture stand-in for the simulator: read-only accessors
// plus the clock-advancing calls recording code must never make.
package sim

type Proc struct{ now int64 }

func (p *Proc) ID() int            { return 0 }
func (p *Proc) N() int             { return 1 }
func (p *Proc) Now() int64         { return p.now }
func (p *Proc) Advance(dt int64)   { p.now += dt }
func (p *Proc) AdvanceTo(t int64)  { p.now = t }
func (p *Proc) Wake(target int)    {}
