// Package lockorder certifies the mutex acquisition order of the runtime
// acyclic. It observes Lock/Unlock nesting in every function body: acquiring
// lock B while holding lock A contributes the edge A → B to the acquisition
// graph. Locks are identified structurally — pkg.Type.field for a struct
// field mutex, pkg.var for a package-level one; function-local mutexes cannot
// deadlock across goroutines by nesting alone and are skipped.
//
// The graph is interprocedural twice over: an AcquiresFact summarizing the
// locks each function (transitively) acquires turns `a.mu.Lock(); helper()`
// into an edge when helper locks elsewhere, and a LockGraphFact carries each
// package's merged edge set up the import graph, so the run over
// internal/core sees fabric/mpi/gasnet edges and certifies the whole
// runtime's order. The guardedby annotations feed in through the repo's
// *Locked naming convention: a method with the Locked suffix runs with its
// receiver's annotated guard held, so locks it acquires nest under that
// guard.
//
// A cycle — any edge chain returning to its origin — is reported on every
// own-package edge participating in it. The acyclic partial order itself is
// pinned as a golden artifact by the pass's repo test (LOCKORDER.golden):
// the upcoming sharded-fabric locks must extend the order, not break it.
//
// What it cannot prove: orders enforced by runtime state (try-locks,
// channel handoffs) and locks reached through function values. Condition-
// free nesting is the contract this pass certifies.
package lockorder

import (
	"fmt"
	"go/ast"
	"go/types"
	"regexp"
	"sort"
	"strings"

	"cafmpi/internal/analysis"
)

// Edge is one observed acquisition order: To was locked while From was held.
type Edge struct {
	From string `json:"from"`
	To   string `json:"to"`
}

// LockGraphFact is a package's merged acquisition graph (own edges plus every
// dependency's), exported as a package fact.
type LockGraphFact struct {
	Edges []Edge `json:"edges"`
}

func (*LockGraphFact) AFact() {}

// AcquiresFact lists the lock IDs a function acquires on some path,
// directly or transitively.
type AcquiresFact struct {
	Locks []string `json:"locks"`
}

func (*AcquiresFact) AFact() {}

var Analyzer = &analysis.Analyzer{
	Name:      "lockorder",
	Doc:       "mutex acquisition order must form a DAG across fabric/mpi/gasnet/core",
	Run:       run,
	FactTypes: []analysis.Fact{(*LockGraphFact)(nil), (*AcquiresFact)(nil)},
}

var guardRe = regexp.MustCompile(`guarded by (\S+)`)

func run(pass *analysis.Pass) error {
	s := &state{
		pass:     pass,
		acquires: map[*types.Func]map[string]bool{},
		edgePos:  map[Edge]ast.Node{},
		guards:   collectGuards(pass),
	}

	var fns []*ast.FuncDecl
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok && fd.Body != nil {
				fns = append(fns, fd)
			}
		}
	}

	// Fixpoint the per-function acquire sets over the local call graph, then
	// sweep once more collecting edges (so edges through local helpers use
	// complete summaries).
	for changed := true; changed; {
		changed = false
		for _, fd := range fns {
			if s.visitFunc(fd, false) {
				changed = true
			}
		}
	}
	for _, fd := range fns {
		s.visitFunc(fd, true)
	}

	for fn, locks := range s.acquires {
		if len(locks) == 0 {
			continue
		}
		s.pass.ExportFunctionFact(fn, &AcquiresFact{Locks: sorted(locks)})
	}

	// Merge dependency graphs, add own edges, detect cycles, re-export.
	merged := map[Edge]bool{}
	for _, imp := range pass.Pkg.Imports() {
		var fact LockGraphFact
		if pass.ImportPackageFact(imp.Path(), &fact) {
			for _, e := range fact.Edges {
				merged[e] = true
			}
		}
	}
	for e := range s.edgePos {
		merged[e] = true
	}
	s.reportCycles(merged)

	var all []Edge
	for e := range merged {
		all = append(all, e)
	}
	sortEdges(all)
	pass.ExportPackageFact(&LockGraphFact{Edges: all})
	return nil
}

type state struct {
	pass *analysis.Pass
	// acquires: function -> set of lock IDs it (transitively) acquires.
	acquires map[*types.Func]map[string]bool
	// edgePos: own-package edges with a witness site.
	edgePos map[Edge]ast.Node
	// guards: struct type -> guard lock IDs (from guardedby annotations),
	// seeding the held set of *Locked methods.
	guards map[*types.Named][]string
}

// collectGuards finds `// guarded by mu` annotated struct fields and maps
// each named struct type to its guard mutex lock IDs.
func collectGuards(pass *analysis.Pass) map[*types.Named][]string {
	out := map[*types.Named][]string{}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok {
				continue
			}
			for _, spec := range gd.Specs {
				ts, ok := spec.(*ast.TypeSpec)
				if !ok {
					continue
				}
				st, ok := ts.Type.(*ast.StructType)
				if !ok {
					continue
				}
				obj := pass.TypesInfo.Defs[ts.Name]
				if obj == nil {
					continue
				}
				named, ok := obj.Type().(*types.Named)
				if !ok {
					continue
				}
				seen := map[string]bool{}
				for _, field := range st.Fields.List {
					for _, cm := range []*ast.CommentGroup{field.Comment, field.Doc} {
						if cm == nil {
							continue
						}
						if m := guardRe.FindStringSubmatch(cm.Text()); m != nil {
							id := analysis.PkgBase(pass.Pkg) + "." + ts.Name.Name + "." + m[1]
							if !seen[id] {
								seen[id] = true
								out[named] = append(out[named], id)
							}
						}
					}
				}
			}
		}
	}
	return out
}

// lockID names the mutex a sync.(RW)Mutex method call operates on, or "".
func (s *state) lockID(call *ast.CallExpr) string {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return ""
	}
	switch recv := ast.Unparen(sel.X).(type) {
	case *ast.Ident:
		// Package-level mutex var, or embedded mutex on a local ident —
		// only package-level vars get an identity.
		obj := s.pass.TypesInfo.Uses[recv]
		if v, ok := obj.(*types.Var); ok && v.Pkg() != nil && v.Parent() == v.Pkg().Scope() {
			return analysis.PkgBase(v.Pkg()) + "." + v.Name()
		}
	case *ast.SelectorExpr:
		// x.mu.Lock(): identify by the field's owning struct type.
		fsel, ok := s.pass.TypesInfo.Selections[recv]
		if !ok {
			// otherpkg.Mu.Lock(): a package-qualified mutex var.
			if v, isVar := s.pass.TypesInfo.Uses[recv.Sel].(*types.Var); isVar &&
				v.Pkg() != nil && v.Parent() == v.Pkg().Scope() {
				return analysis.PkgBase(v.Pkg()) + "." + v.Name()
			}
			return ""
		}
		v, ok := fsel.Obj().(*types.Var)
		if !ok || !v.IsField() {
			return ""
		}
		t := fsel.Recv()
		if p, ok := t.(*types.Pointer); ok {
			t = p.Elem()
		}
		if named, ok := t.(*types.Named); ok {
			return analysis.PkgBase(named.Obj().Pkg()) + "." + named.Obj().Name() + "." + v.Name()
		}
	}
	return ""
}

// isMutexMethod classifies sync mutex calls: +1 acquire, -1 release, 0 other.
func isMutexMethod(fn *types.Func) int {
	if fn == nil || fn.Pkg() == nil || analysis.PkgBase(fn.Pkg()) != "sync" {
		return 0
	}
	switch fn.Name() {
	case "Lock", "RLock":
		return 1
	case "Unlock", "RUnlock":
		return -1
	}
	return 0
}

// visitFunc walks one function, growing its acquire summary; with emit set it
// also records nesting edges. Returns whether the summary grew.
func (s *state) visitFunc(fd *ast.FuncDecl, emit bool) bool {
	fn, _ := s.pass.TypesInfo.Defs[fd.Name].(*types.Func)
	if fn == nil {
		return false
	}
	if s.acquires[fn] == nil {
		s.acquires[fn] = map[string]bool{}
	}
	held := s.initialHeld(fn, fd)
	w := &walker{state: s, fn: fn, emit: emit}
	w.block(fd.Body.List, held)
	return w.grew
}

// initialHeld seeds the held set: a *Locked method runs with its receiver's
// annotated guard mutex held (the guardedby convention).
func (s *state) initialHeld(fn *types.Func, fd *ast.FuncDecl) []string {
	if !strings.HasSuffix(fd.Name.Name, "Locked") || fd.Recv == nil {
		return nil
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return nil
	}
	t := sig.Recv().Type()
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	if named, ok := t.(*types.Named); ok {
		return append([]string(nil), s.guards[named]...)
	}
	return nil
}

// walker tracks the held-lock stack through one function body,
// straight-line within blocks; branches inherit and do not leak.
type walker struct {
	*state
	fn   *types.Func
	emit bool
	grew bool
}

func (w *walker) acquire(id string) {
	if !w.acquires[w.fn][id] {
		w.acquires[w.fn][id] = true
		w.grew = true
	}
}

// block walks statements with the current held stack, returning the stack
// state at fall-through.
func (w *walker) block(stmts []ast.Stmt, held []string) []string {
	for _, st := range stmts {
		held = w.stmt(st, held)
	}
	return held
}

func (w *walker) stmt(st ast.Stmt, held []string) []string {
	switch x := st.(type) {
	case *ast.BlockStmt:
		return w.block(x.List, held)
	case *ast.IfStmt:
		held = w.scanExpr(x.Cond, held)
		w.stmt(x.Body, append([]string(nil), held...))
		if x.Else != nil {
			w.stmt(x.Else, append([]string(nil), held...))
		}
		return held
	case *ast.ForStmt:
		w.stmt(x.Body, append([]string(nil), held...))
		return held
	case *ast.RangeStmt:
		held = w.scanExpr(x.X, held)
		w.stmt(x.Body, append([]string(nil), held...))
		return held
	case *ast.SwitchStmt, *ast.TypeSwitchStmt, *ast.SelectStmt:
		ast.Inspect(st, func(n ast.Node) bool {
			if cc, ok := n.(*ast.CaseClause); ok {
				w.block(cc.Body, append([]string(nil), held...))
				return false
			}
			if cc, ok := n.(*ast.CommClause); ok {
				w.block(cc.Body, append([]string(nil), held...))
				return false
			}
			return true
		})
		return held
	case *ast.LabeledStmt:
		return w.stmt(x.Stmt, held)
	case *ast.DeferStmt:
		// A deferred Unlock keeps the lock held to function end: no state
		// change now. A deferred Lock never happens in practice; skip.
		return held
	case *ast.GoStmt:
		// The goroutine starts with an empty held set.
		if fl, ok := x.Call.Fun.(*ast.FuncLit); ok {
			w.block(fl.Body.List, nil)
		}
		return held
	default:
		var out []string = held
		ast.Inspect(st, func(n ast.Node) bool {
			switch y := n.(type) {
			case *ast.FuncLit:
				// Closures run under the lock state of their creation point
				// only when invoked inline; conservatively walk with the
				// current stack (matches guardedby).
				w.block(y.Body.List, append([]string(nil), out...))
				return false
			case *ast.CallExpr:
				out = w.call(y, out)
				return true
			}
			return true
		})
		return out
	}
}

// scanExpr walks an expression for calls (lock operations in conditions).
func (w *walker) scanExpr(e ast.Expr, held []string) []string {
	if e == nil {
		return held
	}
	out := held
	ast.Inspect(e, func(n ast.Node) bool {
		if call, ok := n.(*ast.CallExpr); ok {
			out = w.call(call, out)
		}
		return true
	})
	return out
}

// call applies one call to the held stack and records edges.
func (w *walker) call(call *ast.CallExpr, held []string) []string {
	callee := analysis.CalleeFunc(w.pass.TypesInfo, call)
	switch isMutexMethod(callee) {
	case 1:
		id := w.lockID(call)
		if id == "" {
			return held
		}
		w.acquire(id)
		w.edges(held, id, call)
		return append(held, id)
	case -1:
		id := w.lockID(call)
		if id == "" {
			return held
		}
		for i := len(held) - 1; i >= 0; i-- {
			if held[i] == id {
				return append(append([]string(nil), held[:i]...), held[i+1:]...)
			}
		}
		return held
	}
	if callee == nil {
		return held
	}
	// A callee that acquires locks nests them under everything held here.
	for _, l := range w.calleeAcquires(callee) {
		w.acquire(l)
		w.edges(held, l, call)
	}
	return held
}

// calleeAcquires resolves a callee's acquire set from the local fixpoint or
// an imported fact.
func (w *walker) calleeAcquires(fn *types.Func) []string {
	if locks, ok := w.acquires[fn]; ok {
		return sorted(locks)
	}
	var fact AcquiresFact
	if w.pass.ImportFunctionFact(fn, &fact) {
		return fact.Locks
	}
	return nil
}

// edges records held → to for every currently-held lock.
func (w *walker) edges(held []string, to string, site ast.Node) {
	if !w.emit {
		return
	}
	for _, h := range held {
		if h == to {
			continue
		}
		e := Edge{From: h, To: to}
		if _, ok := w.edgePos[e]; !ok {
			w.edgePos[e] = site
		}
	}
}

// reportCycles flags every own-package edge on a cycle of the merged graph.
func (s *state) reportCycles(merged map[Edge]bool) {
	adj := map[string][]string{}
	for e := range merged {
		adj[e.From] = append(adj[e.From], e.To)
	}
	for _, outs := range adj {
		sort.Strings(outs)
	}
	var ownEdges []Edge
	for e := range s.edgePos {
		ownEdges = append(ownEdges, e)
	}
	sortEdges(ownEdges)
	for _, e := range ownEdges {
		if path := findPath(adj, e.To, e.From); path != nil {
			cycle := append([]string{e.From}, path...)
			s.pass.Reportf(s.edgePos[e].Pos(), "lock order cycle: %s", strings.Join(cycle, " -> "))
		}
	}
}

// findPath BFSes from src to dst, returning the node path (src..dst) or nil.
func findPath(adj map[string][]string, src, dst string) []string {
	prev := map[string]string{src: ""}
	queue := []string{src}
	for len(queue) > 0 {
		n := queue[0]
		queue = queue[1:]
		if n == dst {
			var path []string
			for at := dst; at != ""; at = prev[at] {
				path = append([]string{at}, path...)
				if at == src {
					break
				}
			}
			return path
		}
		for _, m := range adj[n] {
			if _, seen := prev[m]; !seen {
				prev[m] = n
				queue = append(queue, m)
			}
		}
	}
	return nil
}

func sorted(set map[string]bool) []string {
	var out []string
	for k := range set {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

func sortEdges(edges []Edge) {
	sort.Slice(edges, func(i, j int) bool {
		if edges[i].From != edges[j].From {
			return edges[i].From < edges[j].From
		}
		return edges[i].To < edges[j].To
	})
}

// Render formats an edge set as the human-auditable partial-order artifact:
// the sorted edge list followed by a topological layering (Kahn), or the
// cycle members when no complete order exists. The repo test pins this
// output as LOCKORDER.golden.
func Render(edges []Edge) string {
	var b strings.Builder
	b.WriteString("# Lock acquisition partial order (certified by caflint/lockorder)\n")
	b.WriteString("# edge: held-lock -> acquired-lock\n")
	dedup := map[Edge]bool{}
	for _, e := range edges {
		dedup[e] = true
	}
	var es []Edge
	for e := range dedup {
		es = append(es, e)
	}
	sortEdges(es)
	for _, e := range es {
		fmt.Fprintf(&b, "%s -> %s\n", e.From, e.To)
	}

	// Kahn layering over every mentioned lock.
	indeg := map[string]int{}
	adj := map[string][]string{}
	for _, e := range es {
		if _, ok := indeg[e.From]; !ok {
			indeg[e.From] = 0
		}
		indeg[e.To]++
		adj[e.From] = append(adj[e.From], e.To)
	}
	b.WriteString("\n# topological order (lock ranks; acquire top-down)\n")
	level := 0
	remaining := len(indeg)
	for remaining > 0 {
		var zero []string
		for n, d := range indeg {
			if d == 0 {
				zero = append(zero, n)
			}
		}
		if len(zero) == 0 {
			var stuck []string
			for n := range indeg {
				stuck = append(stuck, n)
			}
			sort.Strings(stuck)
			fmt.Fprintf(&b, "CYCLE among: %s\n", strings.Join(stuck, ", "))
			break
		}
		sort.Strings(zero)
		fmt.Fprintf(&b, "rank %d: %s\n", level, strings.Join(zero, ", "))
		for _, n := range zero {
			for _, m := range adj[n] {
				indeg[m]--
			}
			delete(indeg, n)
			remaining--
		}
		level++
	}
	return b.String()
}
