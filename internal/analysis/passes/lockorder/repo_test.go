package lockorder_test

import (
	"flag"
	"os"
	"path/filepath"
	"runtime"
	"testing"

	"cafmpi/internal/analysis/analysistest"
	"cafmpi/internal/analysis/passes/lockorder"
)

var update = flag.Bool("update", false, "rewrite testdata/LOCKORDER.golden from the current repository")

// repoPkgs are the runtime layers whose mutexes form the certified order,
// in dependency order so package facts flow bottom-up.
var repoPkgs = []string{"internal/fabric", "internal/core", "internal/mpi", "internal/gasnet"}

// TestRepoLockOrder certifies the real runtime's lock acquisition order: it
// runs the lockorder analyzer over the fabric/core/mpi/gasnet packages,
// requires the acquisition graph to be cycle-free, and pins its rendering as
// testdata/LOCKORDER.golden. A legitimate locking change updates the golden
// with:
//
//	go test ./internal/analysis/passes/lockorder -run RepoLockOrder -update
func TestRepoLockOrder(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checks four runtime packages")
	}
	root := repoRoot(t)
	diags, facts, err := analysistest.AnalyzeRepo(lockorder.Analyzer, root, "cafmpi", repoPkgs...)
	if err != nil {
		t.Fatalf("analyzing runtime packages: %v", err)
	}
	for pkg, ds := range diags {
		for _, d := range ds {
			t.Errorf("%s: unexpected lock order diagnostic: %s", pkg, d.Message)
		}
	}

	var edges []lockorder.Edge
	for _, pkg := range repoPkgs {
		var g lockorder.LockGraphFact
		if facts.Get("lockorder", "pkg:cafmpi/"+pkg, &g) {
			edges = append(edges, g.Edges...)
		}
	}
	if len(edges) == 0 {
		t.Fatal("no lock acquisition edges found; the analyzer lost its runtime model")
	}
	got := lockorder.Render(edges)

	golden := filepath.Join("testdata", "LOCKORDER.golden")
	if *update {
		if err := os.WriteFile(golden, []byte(got), 0o666); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, rerr := os.ReadFile(golden)
	if rerr != nil {
		t.Fatalf("reading golden (run with -update to create it): %v", rerr)
	}
	if got != string(want) {
		t.Errorf("lock acquisition order drifted from the certified partial order.\n--- got ---\n%s--- want ---\n%s"+
			"If the locking change is intentional, refresh with: go test ./internal/analysis/passes/lockorder -run RepoLockOrder -update", got, want)
	}
}

func repoRoot(t *testing.T) string {
	t.Helper()
	_, file, _, ok := runtime.Caller(0)
	if !ok {
		t.Fatal("cannot locate caller")
	}
	// internal/analysis/passes/lockorder/repo_test.go -> repo root.
	d := filepath.Dir(file)
	for i := 0; i < 4; i++ {
		d = filepath.Dir(d)
	}
	return d
}
