// Package ok holds only consistently-ordered acquisitions: mu always before
// aux, helper nesting through a local call, and the *Locked/guardedby
// convention seeding the held set. No cycle, no diagnostics.
package ok

import "sync"

type T struct {
	mu   sync.Mutex
	aux  sync.Mutex
	data int // guarded by mu
}

func (t *T) Update() {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.bumpLocked()
}

// bumpLocked runs with mu held (guardedby convention): the aux acquisition
// nests under mu — same direction as Both, so the order stays a DAG.
func (t *T) bumpLocked() {
	t.aux.Lock()
	t.data++
	t.aux.Unlock()
}

func (t *T) Both() {
	t.mu.Lock()
	t.aux.Lock()
	t.data++
	t.aux.Unlock()
	t.mu.Unlock()
}

// Disjoint never nests — contributes no edges.
func (t *T) Disjoint() {
	t.mu.Lock()
	t.data++
	t.mu.Unlock()
	t.aux.Lock()
	t.aux.Unlock()
}
