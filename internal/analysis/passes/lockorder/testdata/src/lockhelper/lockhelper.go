// Package lockhelper proves cross-package graph flow: its internal nesting
// (Mu before Mu2, created through a local helper call) is exported as a
// LockGraphFact, and WithMu's acquisition set travels as an AcquiresFact.
package lockhelper

import "sync"

var Mu sync.Mutex
var Mu2 sync.Mutex

// WithMu runs its critical section under Mu, nesting Mu2 through nested().
func WithMu() {
	Mu.Lock()
	nested()
	Mu.Unlock()
}

func nested() {
	Mu2.Lock()
	Mu2.Unlock()
}
