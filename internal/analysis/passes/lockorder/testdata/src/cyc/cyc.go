// Package cyc seeds a two-lock acquisition cycle: AB nests other under mu,
// BA nests mu under other. Both edges sit on the cycle, so both witness
// sites are flagged.
package cyc

import "sync"

type S struct {
	mu    sync.Mutex
	other sync.Mutex
	n     int // guarded by mu
}

func (s *S) AB() {
	s.mu.Lock()
	s.other.Lock() // want `lock order cycle: cyc\.S\.mu -> cyc\.S\.other -> cyc\.S\.mu`
	s.n++
	s.other.Unlock()
	s.mu.Unlock()
}

func (s *S) BA() {
	s.other.Lock()
	s.mu.Lock() // want `lock order cycle: cyc\.S\.other -> cyc\.S\.mu -> cyc\.S\.other`
	s.n++
	s.mu.Unlock()
	s.other.Unlock()
}
