// Package xpkg closes a cycle across a package boundary: lockhelper's
// internal edge Mu -> Mu2 arrives via its LockGraphFact, WithMu's
// acquisitions via its AcquiresFact, and this package's two edges complete
// the loop xpkg.S.mu -> lockhelper.Mu -> lockhelper.Mu2 -> xpkg.S.mu. Only
// the two local witness sites are flagged — lockhelper alone is acyclic.
package xpkg

import (
	"sync"

	"lockhelper"
)

type S struct {
	mu sync.Mutex
}

// CallHelper witnesses two own edges at one site — S.mu -> Mu directly and
// S.mu -> Mu2 through WithMu's transitive acquisition set — and both sit on
// cycles once UnderMu2 adds Mu2 -> S.mu.
func (s *S) CallHelper() {
	s.mu.Lock()
	lockhelper.WithMu() // want `lock order cycle: xpkg\.S\.mu -> lockhelper\.Mu -> lockhelper\.Mu2 -> xpkg\.S\.mu` `lock order cycle: xpkg\.S\.mu -> lockhelper\.Mu2 -> xpkg\.S\.mu`
	s.mu.Unlock()
}

func (s *S) UnderMu2() {
	lockhelper.Mu2.Lock()
	s.mu.Lock() // want `lock order cycle: lockhelper\.Mu2 -> xpkg\.S\.mu -> lockhelper\.Mu2`
	s.mu.Unlock()
	lockhelper.Mu2.Unlock()
}
