package lockorder_test

import (
	"testing"

	"cafmpi/internal/analysis/analysistest"
	"cafmpi/internal/analysis/passes/lockorder"
)

func TestLockOrder(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), lockorder.Analyzer, "ok", "cyc", "xpkg")
}
