// Package obsedge defines an analyzer keeping the observability layer
// honest: any exported fabric/mpi/gasnet operation that advances a virtual
// clock (sim.Proc.Advance/AdvanceTo) models simulated work, and simulated
// work that leaves no obs record is invisible to the critical-path walker
// and the blame table — PR 3's coverage then silently decays as ops are
// added. Such functions must record at least one obs event, edge or counter,
// directly or through a same-package helper (noteAMSent-style factoring is
// recognized transitively), or carry an explicit //caflint:allow obsedge
// waiver naming why the op is below the observability floor.
package obsedge

import (
	"go/ast"
	"go/types"

	"cafmpi/internal/analysis"
)

// Analyzer enforces obs coverage of clock-advancing exported ops.
var Analyzer = &analysis.Analyzer{
	Name: "obsedge",
	Doc:  "exported fabric/mpi/gasnet ops that advance clocks must record an obs edge or counter",
	Run:  run,
}

// layerPkgs are the instrumented communication layers.
var layerPkgs = map[string]bool{"fabric": true, "mpi": true, "gasnet": true}

func run(pass *analysis.Pass) error {
	if !layerPkgs[analysis.PkgBase(pass.Pkg)] {
		return nil
	}

	// Collect every function declaration with its direct facts: does it call
	// obs/hist itself, and which same-package functions does it call?
	type funcInfo struct {
		decl     *ast.FuncDecl
		records  bool
		advances bool
		calls    []*types.Func
	}
	infos := make(map[*types.Func]*funcInfo)
	for _, f := range pass.Files {
		if analysis.IsTestFile(pass.Fset, f.Pos()) {
			continue
		}
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			obj, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			fi := &funcInfo{decl: fd}
			infos[obj] = fi
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				fn := analysis.CalleeFunc(pass.TypesInfo, call)
				if fn == nil || fn.Pkg() == nil {
					return true
				}
				switch base := analysis.PkgBase(fn.Pkg()); {
				case base == "sim" && (fn.Name() == "Advance" || fn.Name() == "AdvanceTo"):
					fi.advances = true
				case base == "obs" || base == "hist":
					fi.records = true
				case fn.Pkg() == pass.Pkg:
					fi.calls = append(fi.calls, fn)
				}
				return true
			})
		}
	}

	// Propagate "records" through same-package calls to a fixpoint, so ops
	// whose instrumentation lives in a helper (or in the non-blocking issue
	// path a blocking wrapper delegates to) are credited.
	for changed := true; changed; {
		changed = false
		for _, fi := range infos {
			if fi.records {
				continue
			}
			for _, callee := range fi.calls {
				if ci, ok := infos[callee]; ok && ci.records {
					fi.records = true
					changed = true
					break
				}
			}
		}
	}

	for _, fi := range infos {
		fd := fi.decl
		if !fd.Name.IsExported() || !fi.advances || fi.records {
			continue
		}
		pass.Reportf(fd.Name.Pos(),
			"%s advances the virtual clock but records no obs event/edge/counter: the op is invisible to the critical-path walker (record via obs.Shard or annotate //caflint:allow obsedge)",
			fd.Name.Name)
	}
	return nil
}
