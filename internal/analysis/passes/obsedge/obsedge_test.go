package obsedge_test

import (
	"testing"

	"cafmpi/internal/analysis/analysistest"
	"cafmpi/internal/analysis/passes/obsedge"
)

func Test(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), obsedge.Analyzer, "fabric", "app")
}
