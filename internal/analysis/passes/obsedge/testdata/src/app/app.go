// Package app is not an instrumented communication layer: clock-advancing
// exported functions here carry no obs obligation.
package app

import "sim"

func Work(p *sim.Proc) {
	p.Advance(42)
}
