// Package sim is a fixture stand-in for the simulator clock.
package sim

type Proc struct{ now int64 }

func (p *Proc) Now() int64        { return p.now }
func (p *Proc) Advance(dt int64)  { p.now += dt }
func (p *Proc) AdvanceTo(t int64) { p.now = t }
