// Package fabric exercises the obsedge analyzer: exported operations that
// advance the virtual clock must record an obs event/edge/counter, directly
// or through a same-package helper; unexported functions and clock-neutral
// exported functions are not held to it.
package fabric

import (
	"obs"
	"sim"
)

type Layer struct {
	p  *sim.Proc
	sh *obs.Shard
}

// Send advances the clock and records: fine.
func (l *Layer) Send(dst int, b []byte) {
	l.p.Advance(100)
	l.sh.Record(1, dst)
}

// Flush advances the clock with no record at all.
func (l *Layer) Flush(dst int) { // want `Flush advances the virtual clock but records no obs event/edge/counter`
	l.p.AdvanceTo(1000)
}

// Probe is clock-neutral: no obligation.
func (l *Layer) Probe() bool { return l.p.Now() > 0 }

// internalStep advances but is unexported: helpers are not ops.
func (l *Layer) internalStep() {
	l.p.Advance(5)
}

// noteSent is an instrumentation helper.
func (l *Layer) noteSent(dst int) {
	l.sh.Add("sent", 1)
}

// Inject records through the noteSent helper: credited transitively.
func (l *Layer) Inject(dst int) {
	l.p.Advance(50)
	l.noteSent(dst)
}

// Poke advances deliberately below the observability floor.
//
//caflint:allow obsedge -- wakeup has no span to attribute
func (l *Layer) Poke(dst int) {
	l.p.Advance(1)
}
