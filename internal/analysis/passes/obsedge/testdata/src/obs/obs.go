// Package obs is a fixture stand-in for the observability layer.
package obs

type Shard struct{}

func (s *Shard) Record(op, peer int)       {}
func (s *Shard) Add(ctr string, n int64)   {}
