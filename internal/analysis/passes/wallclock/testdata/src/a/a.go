// Package a exercises the wallclock analyzer: host-clock reads are
// flagged, pure time-value arithmetic is not, and the allow annotation
// suppresses deliberate uses at line, function, and file scope.
package a

import (
	"fmt"
	"time"
)

func violations() {
	t0 := time.Now()                   // want `wall-clock time\.Now in simulation code`
	fmt.Println(time.Since(t0))        // want `wall-clock time\.Since in simulation code`
	time.Sleep(time.Millisecond)       // want `wall-clock time\.Sleep in simulation code`
	_ = time.Tick(time.Second)         // want `wall-clock time\.Tick in simulation code`
	_ = time.NewTicker(time.Second)    // want `wall-clock time\.NewTicker in simulation code`
	_ = time.NewTimer(time.Second)     // want `wall-clock time\.NewTimer in simulation code`
	_ = time.After(time.Second)        // want `wall-clock time\.After in simulation code`
	_ = time.Until(t0)                 // want `wall-clock time\.Until in simulation code`
	time.AfterFunc(time.Second, func() {}) // want `wall-clock time\.AfterFunc in simulation code`
}

// pure uses only host-clock-free helpers: no diagnostics.
func pure() {
	d, _ := time.ParseDuration("3ms")
	_ = d * 2
	_ = time.Duration(5) * time.Millisecond
	_ = time.Unix(0, 42)
}

func allowedLine() {
	_ = time.Now() //caflint:allow wallclock -- wall-time reporting
	//caflint:allow wallclock
	_ = time.Now()
}

// allowedFunc reports bench wall time.
//
//caflint:allow wallclock -- the whole function is harness-side
func allowedFunc() time.Duration {
	t0 := time.Now()
	return time.Since(t0)
}
