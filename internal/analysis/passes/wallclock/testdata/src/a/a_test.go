package a

import (
	"testing"
	"time"
)

// Test files may bound host time freely: the analyzer exempts them, so no
// diagnostics are expected here.
func TestHostTimeIsAllowed(t *testing.T) {
	t0 := time.Now()
	if time.Since(t0) > time.Minute {
		t.Fatal("impossibly slow")
	}
}
