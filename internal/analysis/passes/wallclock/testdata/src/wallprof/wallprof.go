// Package wallprof mirrors internal/obs/wallprof for the analyzer tests:
// the sanctioned host-clock home still requires the annotation on every
// read — only the diagnostic's wording changes.
package wallprof

import "time"

var base = time.Now() //caflint:allow wallclock -- process-start epoch for monotonic deltas

// nowNS is the annotated idiom the real package uses: legal.
func nowNS() int64 {
	return int64(time.Since(base)) //caflint:allow wallclock -- sampled host-time read
}

// sneaky shows that the package-scoped allowance is not blanket: an
// un-annotated read fails with the wallprof-specific message.
func sneaky() int64 {
	t0 := time.Now() // want `un-annotated wall-clock time\.Now in the wallprof plane`
	_ = nowNS()
	return int64(time.Since(t0)) // want `un-annotated wall-clock time\.Since in the wallprof plane`
}

// ticker shows scheduling primitives need the annotation too.
func ticker() {
	_ = time.NewTicker(time.Millisecond) // want `un-annotated wall-clock time\.NewTicker in the wallprof plane`
}
