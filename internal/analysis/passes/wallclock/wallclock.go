// Package wallclock defines an analyzer that forbids wall-clock time in
// simulation code. The simulated machine runs on virtual time (sim.Proc
// clocks advanced deterministically); any time.Now/Since/Sleep leaking into
// runtime or application code silently couples results to host speed and
// breaks the clock-invariance goldens. Deliberate host-time use (bench
// harness wall-time reporting, watchdog timeouts) is annotated
// //caflint:allow wallclock.
//
// internal/obs/wallprof is the sanctioned home of the host clock — but the
// allowance is scoped, not blanket: every read there must STILL carry the
// annotation, so each host-clock touch in the profiling plane is an
// explicit, reviewed site. Only the diagnostic message changes.
package wallclock

import (
	"go/ast"
	"strings"

	"cafmpi/internal/analysis"
)

// Analyzer flags calls into package time that read or depend on the host
// clock. _test.go files are exempt: tests may legitimately bound host time.
var Analyzer = &analysis.Analyzer{
	Name: "wallclock",
	Doc:  "forbid wall-clock time (time.Now/Since/Sleep/Tick...) in simulation code",
	Run:  run,
}

// forbidden lists package-time functions that read or schedule against the
// host clock. Pure-value helpers (time.Duration arithmetic, ParseDuration)
// stay legal.
var forbidden = map[string]bool{
	"Now": true, "Since": true, "Until": true, "Sleep": true,
	"After": true, "AfterFunc": true, "Tick": true,
	"NewTicker": true, "NewTimer": true,
}

// isWallprofPkg reports whether the pass runs over the wall-clock profiling
// plane, whose host-clock reads get a tailored diagnostic (they are
// expected there — just never without an annotation).
func isWallprofPkg(pass *analysis.Pass) bool {
	if pass.Pkg == nil {
		return false
	}
	p := pass.Pkg.Path()
	return p == "wallprof" || strings.HasSuffix(p, "/wallprof")
}

func run(pass *analysis.Pass) error {
	wallprofPkg := isWallprofPkg(pass)
	for _, f := range pass.Files {
		if analysis.IsTestFile(pass.Fset, f.Pos()) {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := analysis.CalleeFunc(pass.TypesInfo, call)
			if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "time" {
				return true
			}
			if forbidden[fn.Name()] {
				if wallprofPkg {
					pass.Reportf(call.Pos(),
						"un-annotated wall-clock time.%s in the wallprof plane: wallprof is the sanctioned host-clock home, but every read must carry //caflint:allow wallclock so each site is deliberate",
						fn.Name())
				} else {
					pass.Reportf(call.Pos(),
						"wall-clock time.%s in simulation code: use the virtual clock (sim.Proc.Now/Advance); annotate //caflint:allow wallclock for deliberate host-time use",
						fn.Name())
				}
			}
			return true
		})
	}
	return nil
}
