package wallclock_test

import (
	"testing"

	"cafmpi/internal/analysis/analysistest"
	"cafmpi/internal/analysis/passes/wallclock"
)

func Test(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), wallclock.Analyzer, "a")
}

// TestWallprofScope pins the scoped allowance: inside a wallprof package
// annotated host-clock reads pass, un-annotated ones still fail (with the
// tailored message).
func TestWallprofScope(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), wallclock.Analyzer, "wallprof")
}
