package wallclock_test

import (
	"testing"

	"cafmpi/internal/analysis/analysistest"
	"cafmpi/internal/analysis/passes/wallclock"
)

func Test(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), wallclock.Analyzer, "a")
}
