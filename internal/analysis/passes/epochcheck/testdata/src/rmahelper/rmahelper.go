// Package rmahelper proves cross-package fact flow: Fill performs RMA on a
// parameter window without opening an epoch, so it exports a
// RequiresEpochFact that callers in other packages must honor.
package rmahelper

import "mpi"

// Fill writes buf into every peer's slot of w. The caller owns the epoch.
func Fill(w *mpi.Win, buf []byte) error {
	return w.Put(buf, 1, 0)
}

// Drain reads through one more local hop; the fact still propagates.
func Drain(w *mpi.Win, buf []byte) error {
	return get(w, buf)
}

func get(w *mpi.Win, buf []byte) error {
	return w.Get(buf, 1, 0)
}
