// Package mpi is a stand-in for cafmpi/internal/mpi: same package base name,
// type names and method shapes, so (pkg, type, method) matching resolves
// identically to the real runtime.
package mpi

type Comm struct{}

func (c *Comm) Rank() int { return 0 }

type Win struct{}

func WinAllocate(c *Comm, size int) (*Win, error) { return &Win{}, nil }

func (w *Win) Lock(target int) error                    { return nil }
func (w *Win) LockAll() error                           { return nil }
func (w *Win) Unlock(target int) error                  { return nil }
func (w *Win) UnlockAll() error                         { return nil }
func (w *Win) Put(buf []byte, target, disp int) error   { return nil }
func (w *Win) Get(buf []byte, target, disp int) error   { return nil }
func (w *Win) Flush(target int) error                   { return nil }
func (w *Win) FlushAll() error                          { return nil }
func (w *Win) Free() error                              { return nil }
