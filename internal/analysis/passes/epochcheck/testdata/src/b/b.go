// Package b exercises the interprocedural half: rmahelper's functions do RMA
// through their window parameter, visible here only through the exported
// RequiresEpochFact.
package b

import (
	"mpi"
	"rmahelper"
)

// epochless: the helper needs an epoch the caller never opened.
func epochless(c *mpi.Comm) error {
	w, err := mpi.WinAllocate(c, 16)
	if err != nil {
		return err
	}
	return rmahelper.Fill(w, nil) // want `w passed to Fill, which performs RMA on it, but no epoch is open`
}

// epochlessTwoHops: the fact propagated through rmahelper's local call chain.
func epochlessTwoHops(c *mpi.Comm) error {
	w, err := mpi.WinAllocate(c, 16)
	if err != nil {
		return err
	}
	buf := make([]byte, 8)
	return rmahelper.Drain(w, buf) // want `w passed to Drain, which performs RMA on it, but no epoch is open`
}

// withEpoch: caller opens the epoch first — silent.
func withEpoch(c *mpi.Comm) error {
	w, err := mpi.WinAllocate(c, 16)
	if err != nil {
		return err
	}
	if err := w.LockAll(); err != nil {
		return err
	}
	if err := rmahelper.Fill(w, nil); err != nil {
		return err
	}
	if err := w.FlushAll(); err != nil {
		return err
	}
	return w.UnlockAll()
}
