package a

import (
	"core"
	"mpi"
)

// outOfEpoch: RMA on a freshly-allocated (closed) window.
func outOfEpoch(c *mpi.Comm) error {
	w, err := mpi.WinAllocate(c, 64)
	if err != nil {
		return err
	}
	buf := make([]byte, 8)
	if err := w.Put(buf, 1, 0); err != nil { // want `RMA mpi\.Win\.Put on w outside any passive-target epoch`
		return err
	}
	return nil
}

// disciplined: lock, transfer, flush, unlock — silent.
func disciplined(c *mpi.Comm) error {
	w, err := mpi.WinAllocate(c, 64)
	if err != nil {
		return err
	}
	if err := w.Lock(1); err != nil {
		return err
	}
	buf := make([]byte, 8)
	if err := w.Put(buf, 1, 0); err != nil {
		return err
	}
	if err := w.Flush(1); err != nil {
		return err
	}
	return w.Unlock(1)
}

// missingFlush: the epoch closes with the put still in flight.
func missingFlush(c *mpi.Comm) error {
	w, err := mpi.WinAllocate(c, 64)
	if err != nil {
		return err
	}
	if err := w.Lock(1); err != nil {
		return err
	}
	buf := make([]byte, 8)
	if err := w.Put(buf, 1, 0); err != nil {
		return err
	}
	return w.Unlock(1) // want `Unlock closes the epoch on w with unflushed RMA`
}

// afterClose: the epoch ended; the window is closed again.
func afterClose(c *mpi.Comm) error {
	w, err := mpi.WinAllocate(c, 64)
	if err != nil {
		return err
	}
	if err := w.LockAll(); err != nil {
		return err
	}
	if err := w.UnlockAll(); err != nil {
		return err
	}
	buf := make([]byte, 8)
	return w.Get(buf, 1, 0) // want `RMA mpi\.Win\.Get on w outside any passive-target epoch`
}

// unlockWithoutLock: no epoch was ever opened.
func unlockWithoutLock(c *mpi.Comm) error {
	w, err := mpi.WinAllocate(c, 64)
	if err != nil {
		return err
	}
	return w.Unlock(1) // want `Unlock on w without an open epoch`
}

// conditionalFlush: one path unlocks dirty — still reported.
func conditionalFlush(c *mpi.Comm, ok bool) error {
	w, err := mpi.WinAllocate(c, 64)
	if err != nil {
		return err
	}
	if err := w.Lock(1); err != nil {
		return err
	}
	buf := make([]byte, 8)
	if err := w.Put(buf, 1, 0); err != nil {
		return err
	}
	if ok {
		if err := w.Flush(1); err != nil {
			return err
		}
	}
	return w.Unlock(1) // want `Unlock closes the epoch on w with unflushed RMA`
}

// paramWindow: state is unknown through a parameter — lenient, silent here;
// the function instead exports a RequiresEpochFact (see package b).
func paramWindow(w *mpi.Win, buf []byte) error {
	return w.Put(buf, 1, 0)
}

// deferredRead: the buffer is undefined until a fence.
func deferredRead(im *core.Image, ca *core.Coarray) (byte, error) {
	buf := make([]byte, 8)
	if err := ca.GetDeferred(1, 0, buf); err != nil {
		return 0, err
	}
	x := buf[0] // want `deferred get result buf read before a fence`
	if err := im.Cofence(); err != nil {
		return 0, err
	}
	return x, nil
}

// deferredFenced: fence first, then read — silent.
func deferredFenced(im *core.Image, ca *core.Coarray) (byte, error) {
	buf := make([]byte, 8)
	if err := ca.GetDeferred(1, 0, buf); err != nil {
		return 0, err
	}
	if err := im.Cofence(); err != nil {
		return 0, err
	}
	return buf[0], nil
}

// deferredCollective: any collective fences too.
func deferredCollective(t *core.Team, ca *core.Coarray) (byte, error) {
	buf := make([]byte, 8)
	if err := ca.GetDeferred(1, 0, buf); err != nil {
		return 0, err
	}
	if err := t.Barrier(); err != nil {
		return 0, err
	}
	return buf[0], nil
}

// discardedTransfer: the failure latch requires transfer errors checked.
func discardedTransfer(ca *core.Coarray, data []byte) {
	ca.Put(1, 0, data) // want `core\.Coarray\.Put error discarded`
}

// closureOutOfEpoch: function literal bodies are analyzed too — the demo
// programs run their scenarios inside sim callbacks.
func closureOutOfEpoch(c *mpi.Comm) func() error {
	return func() error {
		w, err := mpi.WinAllocate(c, 64)
		if err != nil {
			return err
		}
		buf := make([]byte, 8)
		if err := w.Put(buf, 1, 0); err != nil { // want `RMA mpi\.Win\.Put on w outside any passive-target epoch`
			return err
		}
		return nil
	}
}
