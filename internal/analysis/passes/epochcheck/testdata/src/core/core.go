// Package core is a stand-in for cafmpi/internal/core (deferred transfers
// and fences).
package core

type Image struct{}

func (im *Image) Cofence() error { return nil }

type Team struct{}

func (t *Team) Barrier() error { return nil }

type Coarray struct {
	Local []byte
}

func (ca *Coarray) Put(target, off int, data []byte) error         { return nil }
func (ca *Coarray) Get(target, off int, into []byte) error         { return nil }
func (ca *Coarray) GetDeferred(target, off int, into []byte) error { return nil }
