// Package epochcheck defines an interprocedural RMA epoch-discipline checker,
// the static mirror of the dynamic sanitizer's rma-order findings. Over each
// function's control-flow graph (internal/analysis/cfg) it tracks the epoch
// state of every window whose lifecycle is locally visible:
//
//	WinAllocate ──▶ closed ──Lock/LockAll──▶ open ──RMA──▶ open+dirty
//	                  ▲                                        │
//	                  └──────────Unlock/UnlockAll◀──Flush──────┘
//
// and reports (1) RMA calls while a window is provably closed, (2) an epoch
// closed while RMA is still unflushed, and (3) Unlock without an open epoch.
// Windows arriving through parameters, fields or interfaces have unknown
// state and are never reported directly — instead the pass exports a
// RequiresEpochFact naming the parameters a function performs RMA through, so
// a *caller* that passes a provably-closed window is flagged at the call
// site. That keeps the runtime's own style (rtmpi opens one lifetime LockAll
// epoch at segment allocation and does RMA through struct fields) quiet
// without a single suppression, while still catching the epochless path end
// to end. Deferred transfers are tracked the same way: a buffer filled by
// GetDeferred/GetNBI is poisoned until a fence (Cofence, SyncNBIAll, any
// collective — the runtime release-fences before synchronizing); reading it
// earlier is flagged.
//
// The pass also enforces the PR 5 failure-latch contract on RMA: Put/Get
// error results must not be discarded.
//
// What it cannot prove: epochs opened and closed in different functions on
// the same locally-created window (the fact only travels through parameters),
// state through defer/goroutines (skipped, lenient), and aliasing. Those
// schedules stay with the dynamic sanitizer.
package epochcheck

import (
	"go/ast"
	"go/types"
	"sort"

	"cafmpi/internal/analysis"
	"cafmpi/internal/analysis/cafmodel"
	"cafmpi/internal/analysis/cfg"
)

// RequiresEpochFact marks a function that performs RMA through the listed
// parameters (0-based indices) without opening an epoch on them itself: the
// caller must pass windows with an epoch already open.
type RequiresEpochFact struct {
	Params []int `json:"params"`
}

func (*RequiresEpochFact) AFact() {}

var Analyzer = &analysis.Analyzer{
	Name:      "epochcheck",
	Doc:       "RMA must happen inside a passive-target epoch, be flushed before the epoch closes, and deferred results must not be read before a fence",
	Run:       run,
	FactTypes: []analysis.Fact{(*RequiresEpochFact)(nil)},
}

// wstate is a window's epoch state at a program point.
type wstate int

const (
	closed wstate = iota
	open
	openDirty // open with unflushed RMA
	unknown   // not locally provable; never reported
)

func join(a, b wstate) wstate {
	switch {
	case a == b:
		return a
	case a == unknown || b == unknown:
		return unknown
	case (a == open && b == openDirty) || (a == openDirty && b == open):
		return openDirty
	default: // closed vs open/openDirty: path-dependent, stop proving
		return unknown
	}
}

// flow is the dataflow value: window states plus poisoned deferred buffers.
type flow struct {
	win     map[types.Object]wstate
	pending map[types.Object]bool
}

func newFlow() flow {
	return flow{win: map[types.Object]wstate{}, pending: map[types.Object]bool{}}
}

func (f flow) clone() flow {
	g := newFlow()
	for k, v := range f.win {
		g.win[k] = v
	}
	for k := range f.pending {
		g.pending[k] = true
	}
	return g
}

// merge joins other into f, reporting whether f changed. An object absent
// from one side keeps the other side's state (its definition dominates every
// use, so the absent path cannot observe it).
func (f flow) merge(other flow) bool {
	changed := false
	for k, v := range other.win {
		if cur, ok := f.win[k]; !ok {
			f.win[k] = v
			changed = true
		} else if j := join(cur, v); j != cur {
			f.win[k] = j
			changed = true
		}
	}
	for k := range other.pending {
		if !f.pending[k] {
			f.pending[k] = true
			changed = true
		}
	}
	return changed
}

func run(pass *analysis.Pass) error {
	s := &state{pass: pass, requires: map[*types.Func][]int{}}
	var fns []*ast.FuncDecl
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok && fd.Body != nil {
				fns = append(fns, fd)
			}
		}
	}
	// Summary fixpoint first (no reporting): RequiresEpoch facts propagate
	// through local call chains before any function is judged.
	for changed := true; changed; {
		changed = false
		for _, fd := range fns {
			if s.analyze(fd, nil) {
				changed = true
			}
		}
	}
	for fn, params := range s.requires {
		sort.Ints(params)
		s.pass.ExportFunctionFact(fn, &RequiresEpochFact{Params: params})
	}
	// Reporting sweep. Function literals are analyzed as anonymous bodies:
	// they report violations on windows whose lifecycle is visible inside
	// them, but export no obligations (there is no *types.Func to attach a
	// fact to; captured windows stay lenient).
	for _, fd := range fns {
		if analysis.IsTestFile(pass.Fset, fd.Pos()) {
			continue
		}
		s.analyze(fd, pass)
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			fl, ok := n.(*ast.FuncLit)
			if !ok || analysis.IsTestFile(pass.Fset, fl.Pos()) {
				return true
			}
			paramIdx := map[types.Object]int{}
			if sig, ok := pass.TypesInfo.TypeOf(fl).(*types.Signature); ok {
				for i := 0; i < sig.Params().Len(); i++ {
					paramIdx[sig.Params().At(i)] = i
				}
			}
			s.analyzeBody(fl.Body, nil, paramIdx, pass)
			return true
		})
	}
	return nil
}

type state struct {
	pass *analysis.Pass
	// requires accumulates the per-function epochless-RMA parameter sets.
	requires map[*types.Func][]int
}

// winObj resolves a method call's receiver to a trackable object (a plain
// identifier of window type), or nil for fields/expressions (lenient).
func (s *state) winObj(call *ast.CallExpr) types.Object {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return nil
	}
	id, ok := ast.Unparen(sel.X).(*ast.Ident)
	if !ok {
		return nil
	}
	obj := s.pass.TypesInfo.Uses[id]
	if obj == nil {
		obj = s.pass.TypesInfo.Defs[id]
	}
	return obj
}

// argObj resolves a call argument to a plain identifier's object.
func (s *state) argObj(e ast.Expr) types.Object {
	id, ok := ast.Unparen(e).(*ast.Ident)
	if !ok {
		return nil
	}
	return s.pass.TypesInfo.Uses[id]
}

// analyze runs the dataflow over one function. When report is non-nil,
// diagnostics are emitted; otherwise only the RequiresEpoch summary is
// (re)computed. It reports whether the function's summary grew.
func (s *state) analyze(fd *ast.FuncDecl, report *analysis.Pass) bool {
	fn, _ := s.pass.TypesInfo.Defs[fd.Name].(*types.Func)
	if fn == nil {
		return false
	}
	paramIdx := map[types.Object]int{}
	if sig, ok := fn.Type().(*types.Signature); ok {
		for i := 0; i < sig.Params().Len(); i++ {
			paramIdx[sig.Params().At(i)] = i
		}
	}
	return s.analyzeBody(fd.Body, fn, paramIdx, report)
}

// analyzeBody is the shared dataflow engine behind analyze; fn is nil for
// function literals, which report but never accumulate a summary.
func (s *state) analyzeBody(body *ast.BlockStmt, fn *types.Func, paramIdx map[types.Object]int, report *analysis.Pass) bool {
	g := cfg.New(body)
	entry := make([]flow, len(g.Blocks))
	seen := make([]bool, len(g.Blocks))
	entry[g.Entry.Index] = newFlow()
	seen[g.Entry.Index] = true

	before := len(s.requires[fn])
	rpo := g.RPO()
	for changed := true; changed; {
		changed = false
		for _, b := range rpo {
			if !seen[b.Index] {
				continue
			}
			out := entry[b.Index].clone()
			s.transfer(fn, paramIdx, b, out, nil)
			for _, succ := range b.Succs {
				if !seen[succ.Index] {
					entry[succ.Index] = out.clone()
					seen[succ.Index] = true
					changed = true
				} else if entry[succ.Index].merge(out) {
					changed = true
				}
			}
		}
	}

	grew := len(s.requires[fn]) != before
	if report != nil {
		for _, b := range rpo {
			if !seen[b.Index] {
				continue
			}
			out := entry[b.Index].clone()
			s.transfer(fn, paramIdx, b, out, report)
		}
	}
	return grew
}

// addRequire records that fn does epochless RMA through parameter i.
func (s *state) addRequire(fn *types.Func, i int) bool {
	if fn == nil {
		return false // function literal: nothing to attach the fact to
	}
	for _, p := range s.requires[fn] {
		if p == i {
			return false
		}
	}
	s.requires[fn] = append(s.requires[fn], i)
	return true
}

// requiresOf returns the epochless-parameter set of a callee, from the local
// fixpoint or an imported fact.
func (s *state) requiresOf(fn *types.Func) []int {
	if p, ok := s.requires[fn]; ok {
		return p
	}
	var fact RequiresEpochFact
	if s.pass.ImportFunctionFact(fn, &fact) {
		return fact.Params
	}
	return nil
}

// isWindow reports whether t is (a pointer to) an mpi window type.
func isWindow(t types.Type) bool {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	n, ok := t.(*types.Named)
	if !ok {
		return false
	}
	name := n.Obj().Name()
	return (name == "Win" || name == "DynWin") && n.Obj().Pkg() != nil &&
		analysis.PkgBase(n.Obj().Pkg()) == "mpi"
}

// transfer applies one block's nodes to f in order. With report non-nil it
// also emits diagnostics; during the fixpoint it instead accumulates the
// RequiresEpoch summary for fn.
func (s *state) transfer(fn *types.Func, paramIdx map[types.Object]int, b *cfg.Block, f flow, report *analysis.Pass) {
	for _, node := range b.Nodes {
		switch node.(type) {
		case *ast.DeferStmt, *ast.GoStmt:
			// Deferred/concurrent execution: state changes happen at another
			// time; stay lenient.
			continue
		}
		exempt := map[*ast.Ident]bool{}
		var discarded *ast.CallExpr
		if es, ok := node.(*ast.ExprStmt); ok {
			discarded, _ = es.X.(*ast.CallExpr)
		}
		ast.Inspect(node, func(n ast.Node) bool {
			switch x := n.(type) {
			case *ast.FuncLit:
				return false
			case *ast.AssignStmt:
				// A write to a pending buffer is not a read of the deferred
				// result.
				for _, lhs := range x.Lhs {
					if id, ok := ast.Unparen(lhs).(*ast.Ident); ok {
						exempt[id] = true
					}
				}
			case *ast.CallExpr:
				s.call(fn, paramIdx, x, f, exempt, x == discarded, report)
			case *ast.Ident:
				if exempt[x] {
					return true
				}
				if obj := s.pass.TypesInfo.Uses[x]; obj != nil && f.pending[obj] {
					if report != nil {
						report.Reportf(x.Pos(), "deferred get result %s read before a fence (Cofence/SyncNBIAll/collective)", x.Name)
					}
					delete(f.pending, obj)
				}
			}
			return true
		})
		// A window-typed assignment from a creator call closes the window.
		if as, ok := node.(*ast.AssignStmt); ok {
			s.creatorAssign(as, f)
		}
	}
}

// creatorAssign marks windows assigned from WinAllocate-family calls closed.
func (s *state) creatorAssign(as *ast.AssignStmt, f flow) {
	if len(as.Rhs) != 1 {
		return
	}
	call, ok := ast.Unparen(as.Rhs[0]).(*ast.CallExpr)
	if !ok {
		return
	}
	callee := analysis.CalleeFunc(s.pass.TypesInfo, call)
	if callee == nil || !cafmodel.WinCreators[cafmodel.KeyOf(callee)] {
		return
	}
	for _, lhs := range as.Lhs {
		id, ok := lhs.(*ast.Ident)
		if !ok || id.Name == "_" {
			continue
		}
		obj := s.pass.TypesInfo.Defs[id]
		if obj == nil {
			obj = s.pass.TypesInfo.Uses[id]
		}
		if obj != nil && isWindow(obj.Type()) {
			f.win[obj] = closed
		}
	}
}

// stateOf reads a window object's current state (unknown when untracked).
func (f flow) stateOf(obj types.Object) wstate {
	if obj == nil {
		return unknown
	}
	if st, ok := f.win[obj]; ok {
		return st
	}
	return unknown
}

// call applies one call's epoch/deferred semantics. discarded marks a call
// whose results are dropped (the whole statement is the call).
func (s *state) call(fn *types.Func, paramIdx map[types.Object]int, call *ast.CallExpr, f flow, exempt map[*ast.Ident]bool, discarded bool, report *analysis.Pass) {
	callee := analysis.CalleeFunc(s.pass.TypesInfo, call)
	if callee == nil {
		return
	}
	k := cafmodel.KeyOf(callee)

	switch {
	case cafmodel.EpochOpen[k]:
		if obj := s.winObj(call); obj != nil {
			f.win[obj] = open
		}

	case cafmodel.EpochClose[k]:
		obj := s.winObj(call)
		switch f.stateOf(obj) {
		case openDirty:
			if report != nil {
				report.Reportf(call.Pos(), "%s closes the epoch on %s with unflushed RMA; Flush before Unlock", k.Name, objName(obj))
			}
		case closed:
			if report != nil {
				report.Reportf(call.Pos(), "%s on %s without an open epoch", k.Name, objName(obj))
			}
		}
		if obj != nil && f.stateOf(obj) != unknown {
			f.win[obj] = closed
		}

	case cafmodel.RMAOps[k]:
		obj := s.winObj(call)
		switch f.stateOf(obj) {
		case closed:
			if report != nil {
				report.Reportf(call.Pos(), "RMA %s on %s outside any passive-target epoch; open one with Lock/LockAll first", render(k), objName(obj))
			}
		case open:
			f.win[obj] = openDirty
		case unknown:
			// RMA through a parameter: the caller owes the epoch.
			if obj != nil {
				if i, ok := paramIdx[obj]; ok {
					s.addRequire(fn, i)
				}
			}
		}

	case cafmodel.WinFlush[k]:
		obj := s.winObj(call)
		switch f.stateOf(obj) {
		case closed:
			if report != nil {
				report.Reportf(call.Pos(), "%s on %s outside any passive-target epoch", k.Name, objName(obj))
			}
		case openDirty:
			f.win[obj] = open
		}
	}

	// Deferred-get producers poison their destination buffer.
	if dst, ok := cafmodel.DeferredGets[k]; ok && dst < len(call.Args) {
		for _, id := range identsOf(call.Args[dst]) {
			exempt[id] = true
		}
		if obj := s.argObj(call.Args[dst]); obj != nil {
			f.pending[obj] = true
		}
	}
	// Fences complete every outstanding deferred transfer.
	if cafmodel.IsFence(k) {
		for obj := range f.pending {
			delete(f.pending, obj)
		}
	}

	// Calling a function that does epochless RMA through a parameter with a
	// provably-closed window is the interprocedural out-of-epoch case.
	for _, i := range s.requiresOf(callee) {
		if i >= len(call.Args) {
			continue
		}
		obj := s.argObj(call.Args[i])
		switch f.stateOf(obj) {
		case closed:
			if report != nil {
				report.Reportf(call.Pos(), "%s passed to %s, which performs RMA on it, but no epoch is open", objName(obj), callee.Name())
			}
		case unknown:
			// Forwarding an own parameter transfers the obligation up.
			if obj != nil {
				if pi, ok := paramIdx[obj]; ok {
					s.addRequire(fn, pi)
				}
			}
		}
	}

	// Failure-latch contract: RMA and coarray transfer errors must be
	// checked. A bare-statement call discards them.
	if report != nil && discarded && isTransfer(k) && returnsError(callee) {
		report.Reportf(call.Pos(), "%s error discarded; the failure latch requires every RMA/transfer error checked", render(k))
	}
}

// isTransfer reports whether k is an RMA or coarray transfer whose error
// participates in the failure latch.
func isTransfer(k cafmodel.Key) bool {
	if cafmodel.RMAOps[k] {
		return true
	}
	if k.Pkg == "core" && k.Recv == "Coarray" {
		switch k.Name {
		case "Put", "Get", "PutDeferred", "GetDeferred", "PutAsync", "GetAsync":
			return true
		}
	}
	if k.Pkg == "gasnet" && k.Recv == "Ep" {
		switch k.Name {
		case "Put", "Get", "PutNBI", "GetNBI", "PutRegistered", "GetRegistered",
			"PutRegisteredNBI", "GetRegisteredNBI":
			return true
		}
	}
	return false
}

// returnsError reports whether fn's last result is the builtin error type.
func returnsError(fn *types.Func) bool {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Results().Len() == 0 {
		return false
	}
	last := sig.Results().At(sig.Results().Len() - 1).Type()
	n, ok := last.(*types.Named)
	return ok && n.Obj().Name() == "error" && n.Obj().Pkg() == nil
}

// identsOf collects the identifiers of an expression.
func identsOf(e ast.Expr) []*ast.Ident {
	var ids []*ast.Ident
	ast.Inspect(e, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok {
			ids = append(ids, id)
		}
		return true
	})
	return ids
}

func objName(obj types.Object) string {
	if obj == nil {
		return "window"
	}
	return obj.Name()
}

func render(k cafmodel.Key) string {
	if k.Recv == "" {
		return k.Pkg + "." + k.Name
	}
	return k.Pkg + "." + k.Recv + "." + k.Name
}
