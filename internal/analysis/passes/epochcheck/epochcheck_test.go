package epochcheck_test

import (
	"testing"

	"cafmpi/internal/analysis/analysistest"
	"cafmpi/internal/analysis/passes/epochcheck"
)

func TestEpochCheck(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), epochcheck.Analyzer, "a", "b")
}
