package barriermatch_test

import (
	"testing"

	"cafmpi/internal/analysis/analysistest"
	"cafmpi/internal/analysis/passes/barriermatch"
)

func TestBarrierMatch(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), barriermatch.Analyzer, "a", "b")
}
