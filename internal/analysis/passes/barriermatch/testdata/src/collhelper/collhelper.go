// Package collhelper proves cross-package fact flow: its exported functions
// reach collectives, and the analyzer's CollectiveFact makes importing
// packages see that.
package collhelper

import "core"

// Sync synchronizes the whole team.
func Sync(t *core.Team) error { return t.Barrier() }

// Reduce reaches a collective through one more local hop.
func Reduce(t *core.Team, v []float64) error { return sum(t, v) }

func sum(t *core.Team, v []float64) error { return t.CoSumF64(v) }
