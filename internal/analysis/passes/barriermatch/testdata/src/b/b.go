// Package b exercises the interprocedural half: the collectives live in
// package collhelper, visible here only through exported CollectiveFacts.
package b

import (
	"collhelper"
	"core"
)

func rankBranchedCross(im *core.Image, t *core.Team) {
	if im.ID() == 0 {
		_ = collhelper.Sync(t) // want `call to Sync \(reaches a collective\) is reachable only under rank-dependent control flow`
	}
}

func twoHops(im *core.Image, t *core.Team, v []float64) {
	if im.ID() != 0 {
		_ = collhelper.Reduce(t, v) // want `call to Reduce \(reaches a collective\) is reachable only under rank-dependent control flow`
	}
}

func uniformCross(t *core.Team) error {
	return collhelper.Sync(t)
}
