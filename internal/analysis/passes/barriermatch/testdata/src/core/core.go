// Package core is a stand-in for cafmpi/internal/core: same package base
// name, same receiver type names and method signatures, so the analyzer's
// (pkg, type, method) matching resolves identically to the real runtime.
package core

type Image struct{}

func (im *Image) ID() int        { return 0 }
func (im *Image) N() int         { return 1 }
func (im *Image) Cofence() error { return nil }
func (im *Image) World() *Team   { return &Team{} }

type Team struct{}

func (t *Team) Barrier() error                     { return nil }
func (t *Team) Bcast(buf []byte, root int) error   { return nil }
func (t *Team) Allgather(send, recv []byte) error  { return nil }
func (t *Team) CoSumF64(v []float64) error         { return nil }
func (t *Team) Rank() int                          { return 0 }
func (t *Team) Size() int                          { return 1 }
