package a

import "core"

// rankBranched is the classic structural deadlock: only image 0 reaches the
// barrier.
func rankBranched(im *core.Image) error {
	t := im.World()
	if im.ID() == 0 {
		if err := t.Barrier(); err != nil { // want `collective core\.Team\.Barrier is reachable only under rank-dependent control flow`
			return err
		}
	}
	return nil
}

// taintedLocal: the rank flows through a local before guarding the branch.
func taintedLocal(im *core.Image, t *core.Team) error {
	me := im.ID()
	root := me == 0
	if root {
		return t.Bcast(nil, 0) // want `collective core\.Team\.Bcast is reachable only under rank-dependent control flow`
	}
	return nil
}

// symmetric splits where both arms synchronize are every-image patterns.
func symmetric(im *core.Image, t *core.Team) error {
	if im.ID() == 0 {
		return t.Barrier()
	}
	return t.Barrier()
}

// symmetricElse: explicit else arm, both collective.
func symmetricElse(im *core.Image, t *core.Team) error {
	if im.ID()%2 == 0 {
		return t.Bcast(nil, 0)
	} else {
		return t.Allgather(nil, nil)
	}
}

// coldBranchThenCollective: rank-dependent work before an unconditional
// collective is the normal root pattern and stays quiet.
func coldBranchThenCollective(im *core.Image, t *core.Team, buf []byte) error {
	if im.ID() == 0 {
		buf[0] = 1
	}
	return t.Bcast(buf, 0)
}

// rankBoundedLoop: iteration counts differ per image, so the collectives
// inside cannot pair up.
func rankBoundedLoop(im *core.Image, t *core.Team) error {
	for i := 0; i < im.ID(); i++ {
		if err := t.Barrier(); err != nil { // want `collective core\.Team\.Barrier is reachable only under rank-dependent control flow`
			return err
		}
	}
	return nil
}

// uniformLoop: same bounds everywhere — fine.
func uniformLoop(im *core.Image, t *core.Team) error {
	for i := 0; i < im.N(); i++ {
		if err := t.Barrier(); err != nil {
			return err
		}
	}
	return nil
}

// discarded: a collective used as a bare statement swallows its error.
func discarded(t *core.Team) {
	t.Barrier() // want `core\.Team\.Barrier error discarded`
}

// localSummary: the collective hides one local call away; the summary still
// reaches it.
func localSummary(im *core.Image, t *core.Team) {
	if im.ID() == 0 {
		_ = syncEverybody(t) // want `call to syncEverybody \(reaches a collective\) is reachable only under rank-dependent control flow`
	}
}

func syncEverybody(t *core.Team) error {
	return t.Barrier()
}

// intrinsics count as collectives too.
func rankBranchedIntrinsic(t *core.Team, v []float64) error {
	if t.Rank() == 0 {
		return t.CoSumF64(v) // want `collective core\.Team\.CoSumF64 is reachable only under rank-dependent control flow`
	}
	return nil
}
