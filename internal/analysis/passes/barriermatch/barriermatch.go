// Package barriermatch defines an interprocedural structural barrier-matching
// checker. Collectives (core.Team barriers/broadcasts/co_* intrinsics,
// mpi.Comm collectives, gasnet barriers, collective window lifecycle) must be
// reached by every image of the team in the same order; a collective that is
// reachable only when `im.ID() == 0` — or that sits in a loop whose bounds
// depend on the rank — deadlocks the other images. The dynamic sanitizer only
// sees schedules that run; this pass flags the structure itself.
//
// The analysis is two-layered:
//
//   - Summaries: every function that (transitively) reaches a collective gets
//     a CollectiveFact, exported through the unit protocol so callers in
//     other packages see it. Within a package, summaries are computed to a
//     fixpoint over the local call graph.
//
//   - Reporting: each function body is walked with a taint set of
//     rank-derived locals (values flowing from im.ID(), Team.Rank(),
//     Comm.Rank(), Proc.ID()). A collective call — or a call to a function
//     with a CollectiveFact — inside an if/switch guarded by tainted data is
//     flagged unless every alternative of the branch also reaches a
//     collective (the symmetric split every rank takes one arm of). Loops
//     with rank-dependent bounds always flag: iteration counts differ per
//     image, so collectives inside cannot pair up.
//
// The pass also enforces the PR 5 failure-latch contract on collectives:
// their error results must not be discarded — a swallowed Barrier error
// desynchronizes the latch.
//
// What it cannot prove: value-dependent matching (two collectives paired
// across different call sites by runtime counters) and collectives hidden
// behind function values. Those remain the dynamic sanitizer's job.
package barriermatch

import (
	"go/ast"
	"go/types"

	"cafmpi/internal/analysis"
	"cafmpi/internal/analysis/cafmodel"
)

// CollectiveFact marks a function that (transitively) reaches a collective
// operation on some path.
type CollectiveFact struct{}

func (*CollectiveFact) AFact() {}

var Analyzer = &analysis.Analyzer{
	Name:      "barriermatch",
	Doc:       "collectives must not be guarded by rank-dependent control flow, and their errors must be checked",
	Run:       run,
	FactTypes: []analysis.Fact{(*CollectiveFact)(nil)},
}

func run(pass *analysis.Pass) error {
	s := &state{pass: pass, reaches: make(map[*types.Func]bool)}
	s.computeSummaries()
	for _, f := range pass.Files {
		if analysis.IsTestFile(pass.Fset, f.Pos()) {
			continue
		}
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			s.checkFunc(fd)
		}
	}
	return nil
}

type state struct {
	pass *analysis.Pass
	// reaches memoizes, for this package's functions, whether they reach a
	// collective (the exported summary).
	reaches map[*types.Func]bool
}

// funcObj resolves a declaration to its types.Func.
func (s *state) funcObj(fd *ast.FuncDecl) *types.Func {
	fn, _ := s.pass.TypesInfo.Defs[fd.Name].(*types.Func)
	return fn
}

// callReaches reports whether one call expression reaches a collective:
// directly (model table), via a local summary, or via an imported fact.
func (s *state) callReaches(call *ast.CallExpr) bool {
	fn := analysis.CalleeFunc(s.pass.TypesInfo, call)
	if fn == nil {
		return false
	}
	if cafmodel.Collectives[cafmodel.KeyOf(fn)] {
		return true
	}
	if r, ok := s.reaches[fn]; ok {
		return r
	}
	return s.pass.ImportFunctionFact(fn, &CollectiveFact{})
}

// computeSummaries fixpoints the reaches-a-collective property over the
// package's call graph and exports a CollectiveFact per positive function.
func (s *state) computeSummaries() {
	type fnDecl struct {
		fn   *types.Func
		body *ast.BlockStmt
	}
	var decls []fnDecl
	for _, f := range s.pass.Files {
		for _, decl := range f.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok && fd.Body != nil {
				if fn := s.funcObj(fd); fn != nil {
					decls = append(decls, fnDecl{fn, fd.Body})
				}
			}
		}
	}
	for changed := true; changed; {
		changed = false
		for _, d := range decls {
			if s.reaches[d.fn] {
				continue
			}
			hit := false
			ast.Inspect(d.body, func(n ast.Node) bool {
				if hit {
					return false
				}
				if call, ok := n.(*ast.CallExpr); ok && s.callReaches(call) {
					hit = true
				}
				return !hit
			})
			if hit {
				s.reaches[d.fn] = true
				changed = true
			}
		}
	}
	for _, d := range decls {
		if s.reaches[d.fn] {
			s.pass.ExportFunctionFact(d.fn, &CollectiveFact{})
		}
	}
}

// render names a model key for diagnostics ("core.Team.Barrier").
func render(k cafmodel.Key) string {
	if k.Recv == "" {
		return k.Pkg + "." + k.Name
	}
	return k.Pkg + "." + k.Recv + "." + k.Name
}

// describe names a call for diagnostics: the model key when the callee is a
// known collective, otherwise the callee's name with a summary note.
func (s *state) describe(call *ast.CallExpr) string {
	fn := analysis.CalleeFunc(s.pass.TypesInfo, call)
	if fn == nil {
		return "collective"
	}
	k := cafmodel.KeyOf(fn)
	if cafmodel.Collectives[k] {
		return "collective " + render(k)
	}
	return "call to " + fn.Name() + " (reaches a collective)"
}

// checkFunc taints rank-derived locals, then walks the body flagging
// collectives in rank-dependent asymmetric contexts.
func (s *state) checkFunc(fd *ast.FuncDecl) {
	c := &checker{state: s, tainted: make(map[types.Object]bool)}
	c.taint(fd.Body)
	c.visit(fd.Body, false)
}

type checker struct {
	*state
	// tainted holds locals whose value derives from a rank source.
	tainted map[types.Object]bool
}

// taint fixpoints the rank-derived set over assignments and declarations.
func (c *checker) taint(body *ast.BlockStmt) {
	for changed := true; changed; {
		changed = false
		ast.Inspect(body, func(n ast.Node) bool {
			switch st := n.(type) {
			case *ast.AssignStmt:
				for i, lhs := range st.Lhs {
					id, ok := lhs.(*ast.Ident)
					if !ok || id.Name == "_" {
						continue
					}
					var rhs ast.Expr
					if len(st.Rhs) == len(st.Lhs) {
						rhs = st.Rhs[i]
					} else if len(st.Rhs) == 1 {
						rhs = st.Rhs[0]
					}
					if rhs != nil && c.rankDep(rhs) {
						obj := c.pass.TypesInfo.Defs[id]
						if obj == nil {
							obj = c.pass.TypesInfo.Uses[id]
						}
						if obj != nil && !c.tainted[obj] {
							c.tainted[obj] = true
							changed = true
						}
					}
				}
			case *ast.ValueSpec:
				for i, id := range st.Names {
					if id.Name == "_" || i >= len(st.Values) {
						continue
					}
					if c.rankDep(st.Values[i]) {
						if obj := c.pass.TypesInfo.Defs[id]; obj != nil && !c.tainted[obj] {
							c.tainted[obj] = true
							changed = true
						}
					}
				}
			}
			return true
		})
	}
}

// rankDep reports whether expr's value depends on the calling image's rank.
func (c *checker) rankDep(expr ast.Expr) bool {
	if expr == nil {
		return false
	}
	dep := false
	ast.Inspect(expr, func(n ast.Node) bool {
		if dep {
			return false
		}
		switch x := n.(type) {
		case *ast.CallExpr:
			fn := analysis.CalleeFunc(c.pass.TypesInfo, x)
			if fn != nil && cafmodel.RankSources[cafmodel.KeyOf(fn)] {
				dep = true
			}
		case *ast.Ident:
			if obj := c.pass.TypesInfo.Uses[x]; obj != nil && c.tainted[obj] {
				dep = true
			}
		}
		return !dep
	})
	return dep
}

// stmtRankDep reports rank dependence of a loop header.
func (c *checker) stmtRankDep(s ast.Stmt) bool {
	if s == nil {
		return false
	}
	dep := false
	ast.Inspect(s, func(n ast.Node) bool {
		if e, ok := n.(ast.Expr); ok && c.rankDep(e) {
			dep = true
		}
		return !dep
	})
	return dep
}

// hasCollective reports whether a subtree reaches a collective.
func (c *checker) hasCollective(n ast.Node) bool {
	if n == nil {
		return false
	}
	found := false
	ast.Inspect(n, func(x ast.Node) bool {
		if found {
			return false
		}
		if call, ok := x.(*ast.CallExpr); ok && c.callReaches(call) {
			found = true
		}
		return !found
	})
	return found
}

// visit walks stmts flagging collectives. hot marks a rank-dependent
// asymmetric context: any collective reached under it is a structural
// mismatch.
func (c *checker) visit(n ast.Node, hot bool) {
	switch st := n.(type) {
	case nil:
		return

	case *ast.BlockStmt:
		for i, s := range st.List {
			if ifs, ok := s.(*ast.IfStmt); ok {
				c.visitIf(ifs, st.List[i+1:], hot)
				continue
			}
			c.visit(s, hot)
		}

	case *ast.IfStmt:
		c.visitIf(st, nil, hot)

	case *ast.ForStmt:
		loopHot := hot || c.rankDep(st.Cond) || c.stmtRankDep(st.Init) || c.stmtRankDep(st.Post)
		if st.Init != nil {
			c.visit(st.Init, hot)
		}
		if st.Post != nil {
			c.visit(st.Post, loopHot)
		}
		c.visit(st.Body, loopHot)

	case *ast.RangeStmt:
		c.visit(st.Body, hot || c.rankDep(st.X))

	case *ast.SwitchStmt:
		c.checkExprCalls(st.Tag, hot)
		if c.rankDep(st.Tag) || c.stmtRankDep(st.Init) {
			c.visitSwitchArms(st.Body, hot)
		} else {
			c.visit(st.Body, hot)
		}

	case *ast.TypeSwitchStmt:
		c.visit(st.Body, hot)

	case *ast.CaseClause:
		for _, s := range st.Body {
			c.visit(s, hot)
		}

	case *ast.CommClause:
		for _, s := range st.Body {
			c.visit(s, hot)
		}

	case *ast.SelectStmt:
		// Which arm runs is schedule-dependent; a collective inside is
		// reached on some schedules only.
		for _, cl := range st.Body.List {
			cc := cl.(*ast.CommClause)
			for _, s := range cc.Body {
				c.visit(s, true)
			}
		}

	case *ast.LabeledStmt:
		c.visit(st.Stmt, hot)

	case *ast.ExprStmt:
		// A collective used as a bare statement discards its error: the
		// failure latch (PR 5) depends on every collective error being
		// checked.
		if call, ok := st.X.(*ast.CallExpr); ok {
			if fn := analysis.CalleeFunc(c.pass.TypesInfo, call); fn != nil {
				k := cafmodel.KeyOf(fn)
				if cafmodel.Collectives[k] && returnsError(fn) {
					c.pass.Reportf(call.Pos(), "%s error discarded; the failure latch requires every collective error checked", render(k))
				}
			}
		}
		c.checkExprCalls(st.X, hot)

	case *ast.GoStmt:
		c.checkExprCalls(st.Call, hot)

	case *ast.DeferStmt:
		c.checkExprCalls(st.Call, hot)

	case ast.Stmt:
		ast.Inspect(st, func(x ast.Node) bool {
			switch y := x.(type) {
			case *ast.CallExpr:
				c.reportIfHot(y, hot)
			case *ast.FuncLit:
				c.visit(y.Body, hot)
				return false
			}
			return true
		})
	}
}

// visitIf handles a conditional. rest is the tail of the enclosing block: a
// rank-dependent `if { ...; return }` with no else makes the continuation the
// effective else arm, so `if id == 0 { return t.Barrier() }; return
// t.Barrier()` counts as a symmetric split.
func (c *checker) visitIf(st *ast.IfStmt, rest []ast.Stmt, hot bool) {
	if st.Init != nil {
		c.visit(st.Init, hot)
	}
	c.checkExprCalls(st.Cond, hot)
	if !c.rankDep(st.Cond) {
		c.visit(st.Body, hot)
		c.visit(st.Else, hot)
		return
	}
	thenHas := c.hasCollective(st.Body)
	elseHas := c.hasCollective(st.Else)
	if st.Else == nil && terminates(st.Body) {
		for _, s := range rest {
			if c.hasCollective(s) {
				elseHas = true
			}
		}
	}
	// Symmetric split — both arms synchronize — stays cold: every image
	// takes one arm and reaches a collective. Asymmetric arms go hot.
	symmetric := thenHas && elseHas
	c.visit(st.Body, hot || (thenHas && !symmetric))
	if st.Else != nil {
		c.visit(st.Else, hot || (elseHas && !symmetric))
	}
}

// terminates reports whether a block always leaves the function (ends in
// return or panic-like call).
func terminates(b *ast.BlockStmt) bool {
	if b == nil || len(b.List) == 0 {
		return false
	}
	switch last := b.List[len(b.List)-1].(type) {
	case *ast.ReturnStmt:
		return true
	case *ast.ExprStmt:
		if call, ok := last.X.(*ast.CallExpr); ok {
			if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "panic" {
				return true
			}
		}
	}
	return false
}

// visitSwitchArms handles a rank-dependent switch: arms that synchronize are
// hot unless every arm (and a default) synchronizes.
func (c *checker) visitSwitchArms(body *ast.BlockStmt, hot bool) {
	allSync := true
	hasDefault := false
	for _, cl := range body.List {
		cc := cl.(*ast.CaseClause)
		if cc.List == nil {
			hasDefault = true
		}
		armHas := false
		for _, s := range cc.Body {
			if c.hasCollective(s) {
				armHas = true
			}
		}
		if !armHas {
			allSync = false
		}
	}
	symmetric := allSync && hasDefault
	for _, cl := range body.List {
		cc := cl.(*ast.CaseClause)
		for _, s := range cc.Body {
			c.visit(s, hot || !symmetric)
		}
	}
}

// checkExprCalls scans an expression's calls (and function literals) under
// the current heat.
func (c *checker) checkExprCalls(e ast.Expr, hot bool) {
	if e == nil {
		return
	}
	ast.Inspect(e, func(x ast.Node) bool {
		switch y := x.(type) {
		case *ast.CallExpr:
			c.reportIfHot(y, hot)
		case *ast.FuncLit:
			c.visit(y.Body, hot)
			return false
		}
		return true
	})
}

func (c *checker) reportIfHot(call *ast.CallExpr, hot bool) {
	if hot && c.callReaches(call) {
		c.pass.Reportf(call.Pos(), "%s is reachable only under rank-dependent control flow; every image must reach it", c.describe(call))
	}
}

// returnsError reports whether fn's last result is error.
func returnsError(fn *types.Func) bool {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Results().Len() == 0 {
		return false
	}
	last := sig.Results().At(sig.Results().Len() - 1).Type()
	named, ok := last.(*types.Named)
	return ok && named.Obj().Name() == "error" && named.Obj().Pkg() == nil
}
