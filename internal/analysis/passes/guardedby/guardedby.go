// Package guardedby defines an intraprocedural lock-annotation checker.
// A struct field carrying the comment
//
//	field T // guarded by mu
//
// may only be accessed while the named sibling mutex is held. The analyzer
// tracks Lock/RLock/Unlock/RUnlock calls flow-insensitively through each
// function body (straight-line within a block; branches inherit and do not
// leak acquisitions) and reports guarded-field accesses at program points
// where no matching lock is held.
//
// Conventions understood:
//
//   - functions whose name ends in "Locked" are called with the lock already
//     held and are skipped entirely (the repo's existing naming convention);
//   - a deferred Unlock keeps the lock held to the end of the function;
//   - function literals are analyzed with the lock state at their creation
//     point (closures that run under the enclosing lock stay quiet; closures
//     stored and run later are out of scope for an intraprocedural check).
package guardedby

import (
	"go/ast"
	"go/types"
	"regexp"
	"strings"

	"cafmpi/internal/analysis"
)

// Analyzer enforces `// guarded by <mu>` field annotations.
var Analyzer = &analysis.Analyzer{
	Name: "guardedby",
	Doc:  "fields annotated `// guarded by <mu>` must be accessed with that mutex held",
	Run:  run,
}

var guardRe = regexp.MustCompile(`guarded by (\S+)`)

func run(pass *analysis.Pass) error {
	guards := collectGuards(pass)
	if len(guards) == 0 {
		return nil
	}
	for _, f := range pass.Files {
		if analysis.IsTestFile(pass.Fset, f.Pos()) {
			continue
		}
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if strings.HasSuffix(fd.Name.Name, "Locked") {
				continue // convention: caller holds the lock
			}
			c := &checker{pass: pass, guards: guards}
			c.block(fd.Body.List, lockSet{})
		}
	}
	return nil
}

// collectGuards maps each annotated field object to its guard's name.
func collectGuards(pass *analysis.Pass) map[*types.Var]string {
	guards := make(map[*types.Var]string)
	note := func(field *ast.Field, cg *ast.CommentGroup) {
		if cg == nil {
			return
		}
		m := guardRe.FindStringSubmatch(cg.Text())
		if m == nil {
			return
		}
		for _, name := range field.Names {
			if v, ok := pass.TypesInfo.Defs[name].(*types.Var); ok {
				guards[v] = m[1]
			}
		}
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			st, ok := n.(*ast.StructType)
			if !ok {
				return true
			}
			for _, field := range st.Fields.List {
				note(field, field.Comment)
				note(field, field.Doc)
			}
			return true
		})
	}
	return guards
}

// lockSet is the set of held locks, keyed by rendered receiver expression
// (e.g. "e.mu").
type lockSet map[string]bool

func (s lockSet) clone() lockSet {
	c := make(lockSet, len(s))
	for k := range s {
		c[k] = true
	}
	return c
}

type checker struct {
	pass   *analysis.Pass
	guards map[*types.Var]string
}

// block walks statements sequentially, threading lock acquisitions through
// straight-line code; nested control flow sees a snapshot and cannot leak
// acquisitions outward (conservative in both directions, quiet in practice).
func (c *checker) block(stmts []ast.Stmt, held lockSet) {
	for _, s := range stmts {
		c.stmt(s, held)
	}
}

func (c *checker) stmt(s ast.Stmt, held lockSet) {
	switch s := s.(type) {
	case *ast.ExprStmt:
		if name, recv, ok := lockCall(s.X); ok {
			c.checkExpr(s.X, held) // the receiver chain itself may be guarded
			switch name {
			case "Lock", "RLock":
				held[recv] = true
			case "Unlock", "RUnlock":
				delete(held, recv)
			}
			return
		}
		c.checkExpr(s.X, held)
	case *ast.DeferStmt:
		if name, _, ok := lockCall(s.Call); ok && (name == "Unlock" || name == "RUnlock") {
			return // deferred unlock: lock stays held for the rest of the body
		}
		c.checkExpr(s.Call, held)
	case *ast.BlockStmt:
		c.block(s.List, held)
	case *ast.IfStmt:
		if s.Init != nil {
			c.stmt(s.Init, held)
		}
		c.checkExpr(s.Cond, held)
		c.block(s.Body.List, held.clone())
		if s.Else != nil {
			c.stmt(s.Else, held.clone())
		}
	case *ast.ForStmt:
		inner := held.clone()
		if s.Init != nil {
			c.stmt(s.Init, inner)
		}
		if s.Cond != nil {
			c.checkExpr(s.Cond, inner)
		}
		if s.Post != nil {
			c.stmt(s.Post, inner)
		}
		c.block(s.Body.List, inner)
	case *ast.RangeStmt:
		c.checkExpr(s.X, held)
		c.block(s.Body.List, held.clone())
	case *ast.SwitchStmt:
		if s.Init != nil {
			c.stmt(s.Init, held)
		}
		if s.Tag != nil {
			c.checkExpr(s.Tag, held)
		}
		for _, cc := range s.Body.List {
			if cl, ok := cc.(*ast.CaseClause); ok {
				for _, e := range cl.List {
					c.checkExpr(e, held)
				}
				c.block(cl.Body, held.clone())
			}
		}
	case *ast.TypeSwitchStmt:
		if s.Init != nil {
			c.stmt(s.Init, held)
		}
		for _, cc := range s.Body.List {
			if cl, ok := cc.(*ast.CaseClause); ok {
				c.block(cl.Body, held.clone())
			}
		}
	case *ast.SelectStmt:
		for _, cc := range s.Body.List {
			if cl, ok := cc.(*ast.CommClause); ok {
				if cl.Comm != nil {
					c.stmt(cl.Comm, held.clone())
				}
				c.block(cl.Body, held.clone())
			}
		}
	case *ast.LabeledStmt:
		c.stmt(s.Stmt, held)
	case *ast.GoStmt:
		// A spawned goroutine does not inherit the caller's locks.
		c.checkExpr(s.Call, lockSet{})
	default:
		// Assignments, returns, sends, incs: check every contained expression.
		ast.Inspect(s, func(n ast.Node) bool {
			switch n := n.(type) {
			case ast.Stmt:
				if n == s {
					return true
				}
				c.stmt(n, held) // nested statements (shouldn't occur outside the cases above)
				return false
			case *ast.FuncLit:
				c.block(n.Body.List, held.clone())
				return false
			case *ast.SelectorExpr:
				c.checkSel(n, held)
			}
			return true
		})
	}
}

// checkExpr inspects an expression tree for guarded-field selector accesses.
func (c *checker) checkExpr(e ast.Expr, held lockSet) {
	ast.Inspect(e, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			c.block(n.Body.List, held.clone())
			return false
		case *ast.SelectorExpr:
			c.checkSel(n, held)
		}
		return true
	})
}

// checkSel reports x.field when field is annotated and no lock rendering as
// x.<guard> (or any lock whose last segment is the guard name, for guards
// held through an owner object) is currently held.
func (c *checker) checkSel(sel *ast.SelectorExpr, held lockSet) {
	var obj *types.Var
	if s, ok := c.pass.TypesInfo.Selections[sel]; ok {
		obj, _ = s.Obj().(*types.Var)
	} else if u, ok := c.pass.TypesInfo.Uses[sel.Sel].(*types.Var); ok {
		obj = u
	}
	if obj == nil {
		return
	}
	guard, ok := c.guards[obj]
	if !ok {
		return
	}
	want := render(sel.X) + "." + guard
	if held[want] || held[guard] {
		return
	}
	// Guards reached through a different owner (e.g. a bucket guarded by its
	// endpoint's mu): accept any held lock ending in the guard's name.
	suffix := guard
	if i := strings.LastIndexByte(guard, '.'); i >= 0 {
		suffix = guard[i+1:]
	}
	for h := range held {
		if h == guard || strings.HasSuffix(h, "."+suffix) {
			return
		}
	}
	c.pass.Reportf(sel.Sel.Pos(),
		"access to %s.%s requires holding %q (annotated `guarded by %s`)",
		render(sel.X), sel.Sel.Name, want, guard)
}

// lockCall matches m.Lock()/RLock()/Unlock()/RUnlock() and returns the
// method name and the rendered receiver.
func lockCall(e ast.Expr) (name, recv string, ok bool) {
	call, isCall := ast.Unparen(e).(*ast.CallExpr)
	if !isCall || len(call.Args) != 0 {
		return "", "", false
	}
	sel, isSel := call.Fun.(*ast.SelectorExpr)
	if !isSel {
		return "", "", false
	}
	switch sel.Sel.Name {
	case "Lock", "RLock", "Unlock", "RUnlock":
		return sel.Sel.Name, render(sel.X), true
	}
	return "", "", false
}

// render flattens a selector chain to a stable string key ("e.mu",
// "w.env.mu"); unrenderable subexpressions become "?".
func render(e ast.Expr) string {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		return e.Name
	case *ast.SelectorExpr:
		return render(e.X) + "." + e.Sel.Name
	case *ast.StarExpr:
		return render(e.X)
	case *ast.IndexExpr:
		return render(e.X) + "[]"
	case *ast.CallExpr:
		return render(e.Fun) + "()"
	}
	return "?"
}
