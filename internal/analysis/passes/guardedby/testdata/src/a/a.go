// Package a exercises the guardedby analyzer: `// guarded by <mu>` fields
// accessed without the named mutex held are flagged; accesses under the
// lock (including via deferred unlock, closures created under the lock,
// and the *Locked naming convention) are not.
package a

import "sync"

type counter struct {
	mu sync.Mutex
	n  int // guarded by mu

	rw    sync.RWMutex
	cache map[string]int // guarded by rw

	free int // unguarded: never flagged
}

func (c *counter) good() {
	c.mu.Lock()
	c.n++
	c.mu.Unlock()
	c.free++
}

func (c *counter) goodDeferred() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.n++
	return c.n
}

func (c *counter) goodRead() int {
	c.rw.RLock()
	defer c.rw.RUnlock()
	return c.cache["k"]
}

// goodLocked is called with c.mu held (naming convention).
func (c *counter) incLocked() {
	c.n++
}

func (c *counter) bad() {
	c.n++ // want `access to c\.n requires holding "c\.mu"`
}

func (c *counter) badAfterUnlock() {
	c.mu.Lock()
	c.n++
	c.mu.Unlock()
	c.n-- // want `access to c\.n requires holding "c\.mu"`
}

func (c *counter) badWrongLock() {
	c.rw.Lock()
	defer c.rw.Unlock()
	c.n++ // want `access to c\.n requires holding "c\.mu"`
}

func (c *counter) badRead() int {
	return c.cache["k"] // want `access to c\.cache requires holding "c\.rw"`
}

func (c *counter) goodClosureUnderLock() {
	c.mu.Lock()
	defer c.mu.Unlock()
	f := func() { c.n++ }
	f()
}

func (c *counter) badGoroutine() {
	c.mu.Lock()
	defer c.mu.Unlock()
	go func() {
		c.n++ // want `access to c\.n requires holding "c\.mu"`
	}()
}

func (c *counter) goodBranch() {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.n > 0 {
		c.n--
	}
}
