package guardedby_test

import (
	"testing"

	"cafmpi/internal/analysis/analysistest"
	"cafmpi/internal/analysis/passes/guardedby"
)

func Test(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), guardedby.Analyzer, "a")
}
