// Package fabric exercises the poolescape analyzer: a pooled *Message or
// *pbuf is dead after Release/putBuf/Send/Inject; later uses of the same
// variable are flagged unless it is reassigned first.
package fabric

type Message struct {
	Class int
	Data  []byte
}

func (m *Message) Release() {}

type pbuf struct{ b []byte }

type Delivery struct {
	Msg *Message
	Dup *Message
}

type Layer struct{}

func (l *Layer) Send(m *Message)          {}
func (l *Layer) Inject(batch ...Delivery) {}

func putBuf(p *pbuf) {}

func getMsg() *Message { return &Message{} }
func getBuf() *pbuf    { return &pbuf{} }

func goodRelease() {
	m := getMsg()
	m.Class = 1
	m.Release()
}

func badUseAfterRelease() int {
	m := getMsg()
	m.Release()
	return m.Class // want `use of m after Release`
}

func badDoubleRelease() {
	m := getMsg()
	m.Release()
	m.Release() // want `use of m after Release`
}

func badUseAfterSend(l *Layer) int {
	m := getMsg()
	l.Send(m)
	return m.Class // want `use of m after Send`
}

func badUseAfterInject(l *Layer) {
	m := getMsg()
	l.Inject(Delivery{Msg: m})
	m.Class = 2 // want `use of m after Inject`
}

func badDupUseAfterInject(l *Layer) {
	m := getMsg()
	d := getMsg()
	l.Inject(Delivery{Msg: m, Dup: d})
	d.Release() // want `use of d after Inject`
}

func badUseAfterPutBuf() []byte {
	p := getBuf()
	putBuf(p)
	return p.b // want `use of p after putBuf`
}

func goodReassigned(l *Layer) int {
	m := getMsg()
	l.Send(m)
	m = getMsg()
	return m.Class
}

// goodLoopRecycle models the match-loop idiom: the consumption is followed
// by an unconditional continue, so the next iteration's use is a fresh
// (reassigned) value, not a use-after-release.
func goodLoopRecycle(l *Layer, ms []*Message) {
	for i := 0; i < len(ms); i++ {
		m := ms[i]
		if m.Class == 0 {
			m.Release()
			continue
		}
		m.Class = 3
	}
}

func badReturnAfterRelease() *Message {
	m := getMsg()
	m.Release()
	return m // want `use of m after Release`
}
