package poolescape_test

import (
	"testing"

	"cafmpi/internal/analysis/analysistest"
	"cafmpi/internal/analysis/passes/poolescape"
)

func Test(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), poolescape.Analyzer, "fabric")
}
