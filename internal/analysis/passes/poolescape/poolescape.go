// Package poolescape defines an analyzer for the fabric buffer-pool
// ownership contract (internal/fabric/pool.go): a pooled *Message or *pbuf
// is dead the moment it is Released, put back with putBuf, or handed to
// Send/Inject (ownership transfers to the fabric, and the receiver may
// recycle it concurrently; Inject consumes the messages inside its Delivery
// literals). Any later use of the same variable in the same function —
// including a second Release — races with reuse of the pooled object and
// corrupts unrelated traffic.
//
// The check is intraprocedural and position-based: after a consuming call,
// later uses of the variable are flagged unless it is first reassigned.
package poolescape

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"

	"cafmpi/internal/analysis"
)

// Analyzer flags uses of pooled fabric buffers after ownership ends.
var Analyzer = &analysis.Analyzer{
	Name: "poolescape",
	Doc:  "pooled fabric buffers must not be used after Release/putBuf/Send/Inject",
	Run:  run,
}

// pooledTypes are the named types whose values live in pools.
var pooledTypes = map[string]bool{"Message": true, "pbuf": true}

// consumeCall classifies a call as consuming some of its operands: returns
// the consumed identifiers and a label for the report.
func consumeCall(info *types.Info, call *ast.CallExpr) ([]*ast.Ident, string) {
	switch fun := call.Fun.(type) {
	case *ast.SelectorExpr:
		switch fun.Sel.Name {
		case "Release":
			if id, ok := ast.Unparen(fun.X).(*ast.Ident); ok && isPooled(info, id) {
				return []*ast.Ident{id}, "Release"
			}
		case "Send", "Inject":
			// Ownership of every *Message operand transfers to the fabric:
			// the receiver may absorb and recycle it concurrently. Inject
			// carries its messages inside Delivery composite literals
			// (Delivery{Msg: m, Dup: d}), so pooled identifiers one level
			// down are consumed too. (Absorb and AbsorbAM are receiver-side
			// accounting — the caller keeps ownership — so they do not
			// consume.)
			var ids []*ast.Ident
			for _, arg := range call.Args {
				switch a := ast.Unparen(arg).(type) {
				case *ast.Ident:
					if isPooled(info, a) {
						ids = append(ids, a)
					}
				case *ast.CompositeLit:
					for _, el := range a.Elts {
						if kv, ok := el.(*ast.KeyValueExpr); ok {
							el = kv.Value
						}
						if id, ok := ast.Unparen(el).(*ast.Ident); ok && isPooled(info, id) {
							ids = append(ids, id)
						}
					}
				}
			}
			if len(ids) > 0 {
				return ids, fun.Sel.Name
			}
		}
	case *ast.Ident:
		if fun.Name == "putBuf" {
			for _, arg := range call.Args {
				if id, ok := ast.Unparen(arg).(*ast.Ident); ok && isPooled(info, id) {
					return []*ast.Ident{id}, "putBuf"
				}
			}
		}
	}
	return nil, ""
}

// isPooled reports whether id's type is a pointer to a pooled named type.
func isPooled(info *types.Info, id *ast.Ident) bool {
	tv, ok := info.Types[id]
	if !ok {
		return false
	}
	t := tv.Type
	if p, ok := t.Underlying().(*types.Pointer); ok {
		t = p.Elem()
	}
	if n, ok := t.(*types.Named); ok {
		return pooledTypes[n.Obj().Name()]
	}
	return false
}

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkFunc(pass, fd)
		}
	}
	return nil
}

type consumption struct {
	pos   token.Pos // end of the consuming call
	limit token.Pos // end of the poisoned region (NoPos = rest of function)
	where string
}

func checkFunc(pass *analysis.Pass, fd *ast.FuncDecl) {
	info := pass.TypesInfo

	// Pass 1: per variable, collect consumption points and reassignments.
	// A consumption whose statement is immediately followed by an
	// unconditional jump (break/continue/goto/return) poisons only up to
	// that jump: control cannot fall through to the code after it, so
	// later textual uses are a different iteration's (reassigned) value.
	consumed := make(map[*types.Var][]consumption)
	reassigned := make(map[*types.Var][]token.Pos)
	var walkList func(list []ast.Stmt)
	// recordConsumptions records consuming calls directly under s, without
	// descending into nested statement lists (the recursion below visits
	// those with their own jump-derived limits).
	recordConsumptions := func(s ast.Stmt, limit token.Pos) {
		ast.Inspect(s, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.BlockStmt, *ast.CaseClause, *ast.CommClause:
				return false
			case *ast.CallExpr:
				ids, label := consumeCall(info, n)
				for _, id := range ids {
					if v, ok := info.Uses[id].(*types.Var); ok {
						consumed[v] = append(consumed[v], consumption{pos: n.End(), limit: limit, where: label})
					}
				}
			}
			return true
		})
	}
	walkList = func(list []ast.Stmt) {
		for i, s := range list {
			limit := token.NoPos
			if i+1 < len(list) {
				switch nxt := list[i+1].(type) {
				case *ast.BranchStmt:
					limit = nxt.End()
				case *ast.ReturnStmt:
					// Uses inside the return's results are still checked
					// (return m after Release is a bug); nothing beyond is.
					limit = nxt.End()
				case *ast.ExprStmt:
					// A panic(...) call terminates the path like return does
					// (Release-then-panic is the fault injector's crash exit).
					if call, ok := nxt.X.(*ast.CallExpr); ok {
						if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "panic" {
							limit = nxt.End()
						}
					}
				}
			}
			recordConsumptions(s, limit)
			// Recurse into nested statement lists with their own limits.
			ast.Inspect(s, func(n ast.Node) bool {
				switch n := n.(type) {
				case *ast.BlockStmt:
					walkList(n.List)
					return false
				case *ast.CaseClause:
					walkList(n.Body)
					return false
				case *ast.CommClause:
					walkList(n.Body)
					return false
				}
				return true
			})
		}
	}
	walkList(fd.Body.List)
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if n, ok := n.(*ast.AssignStmt); ok {
			for _, lhs := range n.Lhs {
				if id, ok := lhs.(*ast.Ident); ok {
					if v, ok := info.Defs[id].(*types.Var); ok {
						reassigned[v] = append(reassigned[v], id.Pos())
					} else if v, ok := info.Uses[id].(*types.Var); ok {
						reassigned[v] = append(reassigned[v], id.Pos())
					}
				}
			}
		}
		return true
	})
	if len(consumed) == 0 {
		return
	}
	for v := range consumed {
		sort.Slice(consumed[v], func(i, j int) bool { return consumed[v][i].pos < consumed[v][j].pos })
	}

	// Pass 2: flag uses after the earliest consumption not followed by a
	// reassignment before the use.
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		v, ok := info.Uses[id].(*types.Var)
		if !ok {
			return true
		}
		cons, ok := consumed[v]
		if !ok {
			return true
		}
		for _, c := range cons {
			if id.Pos() <= c.pos {
				continue // at or before the consuming call itself
			}
			if c.limit.IsValid() && id.Pos() > c.limit {
				continue // past the jump that bounds this consumption's path
			}
			if reassignedBetween(reassigned[v], c.pos, id.Pos()) {
				continue
			}
			pass.Reportf(id.Pos(),
				"use of %s after %s: the pooled buffer may already be recycled by another image",
				id.Name, c.where)
			break // one report per use site
		}
		return true
	})
}

func reassignedBetween(positions []token.Pos, after, before token.Pos) bool {
	for _, p := range positions {
		// p == before is the flagged ident itself being the assignment's
		// left-hand side: writing a dead variable is fine (it revives it).
		if p > after && p <= before {
			return true
		}
	}
	return false
}
