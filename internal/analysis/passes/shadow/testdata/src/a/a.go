// Package a exercises the shadow analyzer: an inner := that hides an outer
// local still used after the inner scope ends is flagged; harmless takeovers
// and package-level hiding are not.
package a

import "errors"

func work() (int, error)  { return 1, nil }
func setup() error        { return errors.New("x") }

// badShadow: the block's err hides the outer err, which the caller then
// returns — the classic silently-dropped error.
func badShadow(cond bool) error {
	err := setup()
	if cond {
		n, err := work() // want `declaration of "err" shadows declaration at .*a\.go:14`
		_ = n
		_ = err
	}
	return err
}

// goodTakeover: the outer err is never used after the inner scope, so the
// inner name simply takes over.
func goodTakeover(cond bool) int {
	err := setup()
	_ = err
	if cond {
		n, err := work()
		_ = err
		return n
	}
	return 0
}

var pkgLevel = 7

// goodPackageHide: hiding a package-level name locally is deliberate.
func goodPackageHide() int {
	pkgLevel := 1
	return pkgLevel
}

// badVarShadow: a var declaration shadows too.
func badVarShadow(cond bool) error {
	err := setup()
	if cond {
		var err error // want `declaration of "err" shadows declaration at .*a\.go:46`
		_ = err
	}
	return err
}
