package shadow_test

import (
	"testing"

	"cafmpi/internal/analysis/analysistest"
	"cafmpi/internal/analysis/passes/shadow"
)

func Test(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), shadow.Analyzer, "a")
}
