// Package shadow defines a variable-shadowing analyzer equivalent in
// spirit to golang.org/x/tools' shadow pass (which CI previously tried to
// install from the network — and silently skipped when it couldn't). A
// declaration shadows an earlier one when a new variable of the same name
// hides a function-local variable that is still used after the inner scope
// closes: the classic `err := ...` inside a block that leaves the outer
// err unassigned. Package-level names are not considered (too noisy, and
// hiding them locally is usually deliberate).
package shadow

import (
	"go/ast"
	"go/token"
	"go/types"

	"cafmpi/internal/analysis"
)

// Analyzer reports local declarations that shadow a live outer variable.
var Analyzer = &analysis.Analyzer{
	Name: "shadow",
	Doc:  "report declarations shadowing an outer variable that is used after the inner scope ends",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	// lastUse tracks the last textual use of every local variable: a shadow
	// is only dangerous while the shadowed variable is still live.
	lastUse := make(map[types.Object]token.Pos)
	note := func(id *ast.Ident, obj types.Object) {
		if obj == nil {
			return
		}
		if p, ok := lastUse[obj]; !ok || id.End() > p {
			lastUse[obj] = id.End()
		}
	}
	for id, obj := range pass.TypesInfo.Uses {
		note(id, obj)
	}
	for id, obj := range pass.TypesInfo.Defs {
		note(id, obj)
	}

	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.AssignStmt:
				if n.Tok != token.DEFINE {
					return true
				}
				for _, lhs := range n.Lhs {
					if id, ok := lhs.(*ast.Ident); ok {
						check(pass, id, lastUse)
					}
				}
			case *ast.GenDecl:
				if n.Tok != token.VAR {
					return true
				}
				for _, spec := range n.Specs {
					if vs, ok := spec.(*ast.ValueSpec); ok {
						for _, id := range vs.Names {
							check(pass, id, lastUse)
						}
					}
				}
			}
			return true
		})
	}
	return nil
}

// check reports id when it declares a variable hiding an outer local that
// remains in use after id's scope closes.
func check(pass *analysis.Pass, id *ast.Ident, lastUse map[types.Object]token.Pos) {
	if id.Name == "_" {
		return
	}
	obj, ok := pass.TypesInfo.Defs[id].(*types.Var)
	if !ok {
		return
	}
	inner := obj.Parent()
	if inner == nil || inner.Parent() == nil {
		return
	}
	// Walk outward for a same-named variable, stopping at package scope.
	_, outer := inner.Parent().LookupParent(id.Name, id.Pos())
	ov, ok := outer.(*types.Var)
	if !ok || ov == obj || ov.IsField() {
		return
	}
	if scope := ov.Parent(); scope == nil ||
		scope == pass.Pkg.Scope() || scope == types.Universe {
		return // package-level and universe names are fair game
	}
	// The shadow only matters if the outer variable is used after the
	// shadowing scope ends (otherwise the inner name simply takes over).
	if lastUse[ov] <= inner.End() {
		return
	}
	pass.Reportf(id.Pos(), "declaration of %q shadows declaration at %s",
		id.Name, pass.Fset.Position(ov.Pos()))
}
