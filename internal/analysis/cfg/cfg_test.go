package cfg

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"sort"
	"strings"
	"testing"
)

// build parses src as a function body and returns its graph.
func build(t *testing.T, body string) *Graph {
	t.Helper()
	src := "package p\nfunc f() {\n" + body + "\n}\n"
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "f.go", src, parser.SkipObjectResolution)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	fn := f.Decls[0].(*ast.FuncDecl)
	return New(fn.Body)
}

// reachableExit reports whether Exit is reachable from Entry.
func reachableExit(g *Graph) bool {
	seen := map[*Block]bool{}
	var walk func(*Block) bool
	walk = func(b *Block) bool {
		if b == g.Exit {
			return true
		}
		if seen[b] {
			return false
		}
		seen[b] = true
		for _, s := range b.Succs {
			if walk(s) {
				return true
			}
		}
		return false
	}
	return walk(g.Entry)
}

// callsOnPath returns the set of call names on blocks reachable from Entry.
func reachableCalls(g *Graph) []string {
	seen := map[*Block]bool{}
	var names []string
	var walk func(*Block)
	walk = func(b *Block) {
		if seen[b] {
			return
		}
		seen[b] = true
		for _, n := range b.Nodes {
			ast.Inspect(n, func(x ast.Node) bool {
				if call, ok := x.(*ast.CallExpr); ok {
					if id, ok := call.Fun.(*ast.Ident); ok {
						names = append(names, id.Name)
					}
				}
				return true
			})
		}
		for _, s := range b.Succs {
			walk(s)
		}
	}
	walk(g.Entry)
	sort.Strings(names)
	return names
}

func TestIfJoin(t *testing.T) {
	g := build(t, `
	if cond() {
		a()
	} else {
		b()
	}
	c()`)
	if !reachableExit(g) {
		t.Fatal("exit unreachable")
	}
	got := strings.Join(reachableCalls(g), " ")
	if got != "a b c cond" {
		t.Fatalf("reachable calls = %q", got)
	}
}

func TestReturnTerminatesPath(t *testing.T) {
	g := build(t, `
	if cond() {
		return
	}
	after()`)
	// after() must be reachable only through the false edge: the block
	// holding the return must have Exit as its sole successor.
	for _, b := range g.Blocks {
		for _, n := range b.Nodes {
			if _, ok := n.(*ast.ReturnStmt); ok {
				if len(b.Succs) != 1 || b.Succs[0] != g.Exit {
					t.Fatalf("return block succs = %v", b.Succs)
				}
			}
		}
	}
}

func TestPanicTerminates(t *testing.T) {
	g := build(t, `
	panic("boom")
	never()`)
	for _, name := range reachableCalls(g) {
		if name == "never" {
			t.Fatal("statement after panic still reachable")
		}
	}
}

func TestForLoopBackEdge(t *testing.T) {
	g := build(t, `
	for i := 0; i < n; i++ {
		body()
	}
	after()`)
	// The loop head must appear on a cycle: some block reaches itself.
	found := false
	for _, b := range g.Blocks {
		seen := map[*Block]bool{}
		var walk func(x *Block) bool
		walk = func(x *Block) bool {
			for _, s := range x.Succs {
				if s == b {
					return true
				}
				if !seen[s] {
					seen[s] = true
					if walk(s) {
						return true
					}
				}
			}
			return false
		}
		if walk(b) {
			found = true
			break
		}
	}
	if !found {
		t.Fatal("no back edge in for loop")
	}
	if !reachableExit(g) {
		t.Fatal("exit unreachable")
	}
}

func TestBreakLeavesLoop(t *testing.T) {
	g := build(t, `
	for {
		if cond() {
			break
		}
		body()
	}
	after()`)
	got := strings.Join(reachableCalls(g), " ")
	if !strings.Contains(got, "after") {
		t.Fatalf("after() unreachable through break; calls = %q", got)
	}
}

func TestLabeledBreak(t *testing.T) {
	g := build(t, `
outer:
	for {
		for {
			break outer
		}
	}
	after()`)
	got := strings.Join(reachableCalls(g), " ")
	if !strings.Contains(got, "after") {
		t.Fatalf("after() unreachable through labeled break; calls = %q", got)
	}
}

func TestSwitchFallthrough(t *testing.T) {
	g := build(t, `
	switch v() {
	case 1:
		a()
		fallthrough
	case 2:
		b()
	default:
		c()
	}
	after()`)
	got := strings.Join(reachableCalls(g), " ")
	for _, want := range []string{"a", "b", "c", "after"} {
		if !strings.Contains(got, want) {
			t.Fatalf("%s() unreachable; calls = %q", want, got)
		}
	}
}

func TestSelect(t *testing.T) {
	g := build(t, `
	select {
	case <-ch1:
		a()
	case <-ch2:
		b()
	}
	after()`)
	got := strings.Join(reachableCalls(g), " ")
	for _, want := range []string{"a", "b", "after"} {
		if !strings.Contains(got, want) {
			t.Fatalf("%s() unreachable; calls = %q", want, got)
		}
	}
}

func TestRPOStartsAtEntry(t *testing.T) {
	g := build(t, `
	if cond() {
		a()
	}
	b()`)
	rpo := g.RPO()
	if len(rpo) == 0 || rpo[0] != g.Entry {
		t.Fatal("RPO must start at entry")
	}
	// Every reachable block appears exactly once.
	seen := map[int]bool{}
	for _, b := range rpo {
		if seen[b.Index] {
			t.Fatalf("block %d repeated in RPO", b.Index)
		}
		seen[b.Index] = true
	}
}

func TestGotoBackward(t *testing.T) {
	g := build(t, `
	i := 0
loop:
	i++
	if i < 10 {
		goto loop
	}
	after()`)
	if !reachableExit(g) {
		t.Fatal("exit unreachable")
	}
	got := strings.Join(reachableCalls(g), " ")
	if !strings.Contains(got, "after") {
		t.Fatalf("after() unreachable; calls = %q", got)
	}
}

func TestPredsMatchSuccs(t *testing.T) {
	g := build(t, `
	for i := range xs {
		if i > 0 {
			a()
		}
	}`)
	preds := g.Preds()
	count := 0
	for _, b := range g.Blocks {
		for _, s := range b.Succs {
			ok := false
			for _, p := range preds[s.Index] {
				if p == b {
					ok = true
				}
			}
			if !ok {
				t.Fatalf("missing pred edge %d -> %d", b.Index, s.Index)
			}
			count++
		}
	}
	if count == 0 {
		t.Fatal("graph has no edges")
	}
	_ = fmt.Sprint(count)
}
