// Package cfg builds intraprocedural control-flow graphs over go/ast
// function bodies — the stdlib-only counterpart of golang.org/x/tools/go/cfg,
// sized for caflint's dataflow passes (epoch tracking, deferred-handle
// liveness). Nodes are statements and the controlling expressions of
// branches, in source order; a dataflow pass transfers its state across a
// block's Nodes and joins at block boundaries.
//
// The builder understands if/else, for (including range), switch, type
// switch, select, labeled statements, break/continue (labeled and bare),
// goto, fallthrough, and return. Calls that provably never return — panic,
// os.Exit, log.Fatal*, runtime.Goexit, (*testing.T).Fatal* — terminate
// their block with an edge to Exit, so state after them is unreachable.
// Defer is treated as an ordinary node at its lexical position: caflint's
// passes special-case the deferred calls they care about, as the guardedby
// analyzer already does.
package cfg

import (
	"go/ast"
	"go/token"
	"strings"
)

// Block is a maximal straight-line run of nodes. Execution enters at
// Nodes[0] and, after the last node, continues at one of Succs.
type Block struct {
	// Index is the block's position in Graph.Blocks (stable across builds
	// of the same body).
	Index int
	// Nodes holds statements and branch-condition expressions in execution
	// order.
	Nodes []ast.Node
	// Succs are the possible successor blocks.
	Succs []*Block
}

// Graph is one function body's CFG.
type Graph struct {
	Blocks []*Block
	// Entry is the function's first block; Exit is the single synthetic
	// block every return/panic/fallthrough-to-end reaches. Exit has no
	// nodes and no successors.
	Entry, Exit *Block
}

// New builds the CFG of a function body.
func New(body *ast.BlockStmt) *Graph {
	b := &builder{}
	b.graph = &Graph{}
	b.graph.Entry = b.newBlock()
	b.graph.Exit = b.newBlock()
	b.cur = b.graph.Entry
	b.stmts(body.List)
	b.edge(b.cur, b.graph.Exit)
	b.patchGotos()
	return b.graph
}

// RPO returns the blocks in reverse postorder from Entry — the iteration
// order that makes forward dataflow converge fastest.
func (g *Graph) RPO() []*Block {
	seen := make([]bool, len(g.Blocks))
	var post []*Block
	var walk func(*Block)
	walk = func(b *Block) {
		seen[b.Index] = true
		for _, s := range b.Succs {
			if !seen[s.Index] {
				walk(s)
			}
		}
		post = append(post, b)
	}
	walk(g.Entry)
	// Reverse.
	for i, j := 0, len(post)-1; i < j; i, j = i+1, j-1 {
		post[i], post[j] = post[j], post[i]
	}
	return post
}

// Preds computes the predecessor lists of every block (indexed like Blocks).
func (g *Graph) Preds() [][]*Block {
	preds := make([][]*Block, len(g.Blocks))
	for _, b := range g.Blocks {
		for _, s := range b.Succs {
			preds[s.Index] = append(preds[s.Index], b)
		}
	}
	return preds
}

type loopFrame struct {
	label          string
	brk, cont      *Block
	isSwitchSelect bool // break targets it, continue does not
}

type builder struct {
	graph *Graph
	cur   *Block
	loops []loopFrame
	// labels maps a label name to its statement's entry block (for goto).
	labels map[string]*Block
	// pendingGotos are goto statements seen before their label.
	pendingGotos []pendingGoto
	// pendingLabel is the label of the LabeledStmt being entered, consumed
	// by the loop/switch/select it wraps.
	pendingLabel string
}

type pendingGoto struct {
	from  *Block
	label string
}

func (b *builder) newBlock() *Block {
	blk := &Block{Index: len(b.graph.Blocks)}
	b.graph.Blocks = append(b.graph.Blocks, blk)
	return blk
}

func (b *builder) edge(from, to *Block) {
	if from == nil {
		return
	}
	for _, s := range from.Succs {
		if s == to {
			return
		}
	}
	from.Succs = append(from.Succs, to)
}

// startBlock seals cur with an edge into next and makes next current.
func (b *builder) startBlock(next *Block) {
	b.edge(b.cur, next)
	b.cur = next
}

// deadBlock makes the current block an unreachable continuation (after
// return/break/...). The block exists so later statements still get nodes
// (a pass may want them), but nothing flows in.
func (b *builder) deadBlock() {
	b.cur = b.newBlock()
}

func (b *builder) add(n ast.Node) {
	b.cur.Nodes = append(b.cur.Nodes, n)
}

func (b *builder) stmts(list []ast.Stmt) {
	for _, s := range list {
		b.stmt(s)
	}
}

func (b *builder) stmt(s ast.Stmt) {
	switch s := s.(type) {
	case *ast.BlockStmt:
		b.stmts(s.List)

	case *ast.IfStmt:
		if s.Init != nil {
			b.stmt(s.Init)
		}
		b.add(s.Cond)
		condBlk := b.cur
		join := b.newBlock()
		thenBlk := b.newBlock()
		b.edge(condBlk, thenBlk)
		b.cur = thenBlk
		b.stmts(s.Body.List)
		b.edge(b.cur, join)
		if s.Else != nil {
			elseBlk := b.newBlock()
			b.edge(condBlk, elseBlk)
			b.cur = elseBlk
			b.stmt(s.Else)
			b.edge(b.cur, join)
		} else {
			b.edge(condBlk, join)
		}
		b.cur = join

	case *ast.ForStmt:
		lbl := b.takeLabel()
		if s.Init != nil {
			b.stmt(s.Init)
		}
		head := b.newBlock()
		body := b.newBlock()
		post := b.newBlock()
		join := b.newBlock()
		b.startBlock(head)
		if s.Cond != nil {
			b.add(s.Cond)
			b.edge(head, join)
		}
		// (cond == nil: only break exits the loop.)
		b.edge(head, body)
		b.cur = body
		b.pushLoop(lbl, join, post, false)
		b.stmts(s.Body.List)
		b.popLoop()
		b.startBlock(post)
		if s.Post != nil {
			b.stmt(s.Post)
		}
		b.edge(b.cur, head)
		b.cur = join

	case *ast.RangeStmt:
		lbl := b.takeLabel()
		b.add(s.X)
		head := b.newBlock()
		body := b.newBlock()
		join := b.newBlock()
		b.startBlock(head)
		if s.Key != nil || s.Value != nil {
			b.add(s) // the per-iteration key/value assignment
		}
		b.edge(head, body)
		b.edge(head, join)
		b.cur = body
		b.pushLoop(lbl, join, head, false)
		b.stmts(s.Body.List)
		b.popLoop()
		b.edge(b.cur, head)
		b.cur = join

	case *ast.SwitchStmt, *ast.TypeSwitchStmt:
		lbl := b.takeLabel()
		var init ast.Stmt
		var tag ast.Node
		var clauses []ast.Stmt
		switch sw := s.(type) {
		case *ast.SwitchStmt:
			init, tag, clauses = sw.Init, sw.Tag, sw.Body.List
		case *ast.TypeSwitchStmt:
			init, tag, clauses = sw.Init, sw.Assign, sw.Body.List
		}
		if init != nil {
			b.stmt(init)
		}
		if tag != nil {
			b.add(tag)
		}
		head := b.cur
		join := b.newBlock()
		b.pushLoop(lbl, join, nil, true)
		// Pre-create case blocks so fallthrough can target the next one.
		bodies := make([]*Block, len(clauses))
		hasDefault := false
		for i := range clauses {
			bodies[i] = b.newBlock()
		}
		for i, cs := range clauses {
			cc := cs.(*ast.CaseClause)
			if cc.List == nil {
				hasDefault = true
			}
			b.edge(head, bodies[i])
			b.cur = bodies[i]
			for _, e := range cc.List {
				b.add(e)
			}
			var ft *Block
			if i+1 < len(bodies) {
				ft = bodies[i+1]
			}
			b.caseBody(cc.Body, ft, join)
		}
		b.popLoop()
		if !hasDefault {
			b.edge(head, join)
		}
		b.cur = join

	case *ast.SelectStmt:
		lbl := b.takeLabel()
		head := b.cur
		join := b.newBlock()
		b.pushLoop(lbl, join, nil, true)
		for _, cs := range s.Body.List {
			cc := cs.(*ast.CommClause)
			blk := b.newBlock()
			b.edge(head, blk)
			b.cur = blk
			if cc.Comm != nil {
				b.stmt(cc.Comm)
			}
			b.stmts(cc.Body)
			b.edge(b.cur, join)
		}
		b.popLoop()
		b.cur = join

	case *ast.ReturnStmt:
		b.add(s)
		b.edge(b.cur, b.graph.Exit)
		b.deadBlock()

	case *ast.BranchStmt:
		b.add(s)
		label := ""
		if s.Label != nil {
			label = s.Label.Name
		}
		switch s.Tok {
		case token.BREAK:
			if t := b.findBreak(label); t != nil {
				b.edge(b.cur, t)
			} else {
				b.edge(b.cur, b.graph.Exit)
			}
			b.deadBlock()
		case token.CONTINUE:
			if t := b.findContinue(label); t != nil {
				b.edge(b.cur, t)
			} else {
				b.edge(b.cur, b.graph.Exit)
			}
			b.deadBlock()
		case token.GOTO:
			if t, ok := b.labels[label]; ok {
				b.edge(b.cur, t)
			} else {
				b.pendingGotos = append(b.pendingGotos, pendingGoto{from: b.cur, label: label})
			}
			b.deadBlock()
		case token.FALLTHROUGH:
			// Handled by caseBody; a stray fallthrough falls off the block.
		}

	case *ast.LabeledStmt:
		target := b.newBlock()
		b.startBlock(target)
		if b.labels == nil {
			b.labels = make(map[string]*Block)
		}
		b.labels[s.Label.Name] = target
		b.pendingLabel = s.Label.Name
		b.stmt(s.Stmt)
		b.pendingLabel = ""

	default:
		// Expression statements, assignments, declarations, sends, defers,
		// go statements, incdec, empty: one node, may terminate the block.
		b.add(s)
		if es, ok := s.(*ast.ExprStmt); ok {
			if call, ok := ast.Unparen(es.X).(*ast.CallExpr); ok && Terminates(call) {
				b.edge(b.cur, b.graph.Exit)
				b.deadBlock()
			}
		}
	}
}

// caseBody emits one case clause's statements, wiring a trailing
// fallthrough to the next case body and a normal fall-off to join.
func (b *builder) caseBody(body []ast.Stmt, fallTarget, join *Block) {
	for i, s := range body {
		if br, ok := s.(*ast.BranchStmt); ok && br.Tok == token.FALLTHROUGH && i == len(body)-1 {
			if fallTarget != nil {
				b.edge(b.cur, fallTarget)
			}
			b.deadBlock()
			return
		}
		b.stmt(s)
	}
	b.edge(b.cur, join)
	b.deadBlock()
}

func (b *builder) pushLoop(label string, brk, cont *Block, sw bool) {
	b.loops = append(b.loops, loopFrame{label: label, brk: brk, cont: cont, isSwitchSelect: sw})
}

func (b *builder) popLoop() { b.loops = b.loops[:len(b.loops)-1] }

func (b *builder) findBreak(label string) *Block {
	for i := len(b.loops) - 1; i >= 0; i-- {
		f := b.loops[i]
		if label == "" || f.label == label {
			return f.brk
		}
	}
	return nil
}

func (b *builder) findContinue(label string) *Block {
	for i := len(b.loops) - 1; i >= 0; i-- {
		f := b.loops[i]
		if f.isSwitchSelect {
			continue // continue skips switch/select frames
		}
		if label == "" || f.label == label {
			return f.cont
		}
	}
	return nil
}

func (b *builder) patchGotos() {
	for _, g := range b.pendingGotos {
		if t, ok := b.labels[g.label]; ok {
			b.edge(g.from, t)
		} else {
			// Unresolvable (label in a scope we didn't see): be safe.
			b.edge(g.from, b.graph.Exit)
		}
	}
}

// takeLabel consumes the label of the enclosing LabeledStmt, if the
// statement being built is its direct child (Go attaches loop labels that
// way), so labeled break/continue resolve to the right frame.
func (b *builder) takeLabel() string {
	l := b.pendingLabel
	b.pendingLabel = ""
	return l
}

// Terminates reports whether a call expression provably never returns:
// panic, os.Exit, log.Fatal/Fatalf/Fatalln, runtime.Goexit, and testing's
// FailNow/Fatal/Fatalf/Skip* methods.
func Terminates(call *ast.CallExpr) bool {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		return fun.Name == "panic"
	case *ast.SelectorExpr:
		pkg, ok := ast.Unparen(fun.X).(*ast.Ident)
		name := fun.Sel.Name
		if ok {
			switch pkg.Name {
			case "os":
				return name == "Exit"
			case "log":
				return strings.HasPrefix(name, "Fatal") || strings.HasPrefix(name, "Panic")
			case "runtime":
				return name == "Goexit"
			}
		}
		switch name {
		case "Fatal", "Fatalf", "FailNow", "SkipNow":
			return true // (*testing.T)-shaped receivers; harmless elsewhere
		}
	}
	return false
}
