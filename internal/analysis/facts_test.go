package analysis

import (
	"bytes"
	"testing"
)

type testFact struct {
	Calls []string `json:"calls"`
	N     int      `json:"n"`
}

func (*testFact) AFact() {}

type otherFact struct {
	Flag bool `json:"flag"`
}

func (*otherFact) AFact() {}

// TestFactsRoundTrip pins the unit protocol's core property: export → encode
// → decode → import yields identical summaries.
func TestFactsRoundTrip(t *testing.T) {
	s := NewFactStore()
	s.set("barriermatch", "fn:(*cafmpi/internal/core.Team).Barrier", &testFact{Calls: []string{"a", "b"}, N: 2})
	s.set("barriermatch", "pkg:cafmpi/internal/core", &testFact{N: 7})
	s.set("lockorder", "pkg:cafmpi/internal/mpi", &otherFact{Flag: true})

	enc, err := s.Encode()
	if err != nil {
		t.Fatalf("encode: %v", err)
	}
	dec, err := DecodeFacts(enc)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}

	if got, want := dec.Len(), s.Len(); got != want {
		t.Fatalf("Len = %d, want %d", got, want)
	}
	for _, analyzer := range []string{"barriermatch", "lockorder"} {
		a, b := s.Keys(analyzer), dec.Keys(analyzer)
		if len(a) != len(b) {
			t.Fatalf("%s keys: %v vs %v", analyzer, a, b)
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("%s keys: %v vs %v", analyzer, a, b)
			}
		}
	}

	var f testFact
	if !dec.get("barriermatch", "fn:(*cafmpi/internal/core.Team).Barrier", &f) {
		t.Fatal("function fact lost in round trip")
	}
	if f.N != 2 || len(f.Calls) != 2 || f.Calls[0] != "a" || f.Calls[1] != "b" {
		t.Fatalf("fact corrupted: %+v", f)
	}

	// Type pinning: decoding into a mismatched prototype must fail, not
	// silently corrupt.
	var wrong otherFact
	if dec.get("barriermatch", "fn:(*cafmpi/internal/core.Team).Barrier", &wrong) {
		t.Fatal("mismatched fact type imported")
	}

	// Determinism: encoding the decoded store reproduces the bytes (build
	// caching hashes them).
	enc2, err := dec.Encode()
	if err != nil {
		t.Fatalf("re-encode: %v", err)
	}
	if !bytes.Equal(enc, enc2) {
		t.Fatalf("encoding not deterministic:\n%s\nvs\n%s", enc, enc2)
	}
}

// TestDecodeFactsEmpty: pre-facts caflint wrote zero-length placeholder vetx
// files; they must decode as empty stores.
func TestDecodeFactsEmpty(t *testing.T) {
	s, err := DecodeFacts(nil)
	if err != nil {
		t.Fatalf("decode empty: %v", err)
	}
	if s.Len() != 0 {
		t.Fatalf("empty input produced %d facts", s.Len())
	}
}

// TestFactsMerge: dependency stores merge transitively, other wins on
// collision.
func TestFactsMerge(t *testing.T) {
	a := NewFactStore()
	a.set("p", "fn:x", &testFact{N: 1})
	b := NewFactStore()
	b.set("p", "fn:x", &testFact{N: 2})
	b.set("p", "fn:y", &testFact{N: 3})
	a.Merge(b)
	var f testFact
	if !a.get("p", "fn:x", &f) || f.N != 2 {
		t.Fatalf("merge collision: %+v", f)
	}
	if !a.get("p", "fn:y", &f) || f.N != 3 {
		t.Fatalf("merged key lost: %+v", f)
	}
	if a.Len() != 2 {
		t.Fatalf("Len = %d, want 2", a.Len())
	}
}
