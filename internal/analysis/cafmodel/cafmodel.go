// Package cafmodel is the shared semantic model of the CAF runtime consumed
// by the interprocedural caflint passes (barriermatch, epochcheck,
// lockorder). It names, by (package base, receiver type, method), the calls
// that matter to synchronization discipline: collectives every image must
// reach, rank sources that make control flow image-dependent, RMA operations
// that are only defined inside a passive-target epoch, and the fences that
// complete deferred transfers.
//
// Matching is deliberately by base name and type name rather than by full
// import path: analysistest fixtures cannot import the real cafmpi packages,
// so they use stand-in packages with the same base names — the established
// repo idiom (see analysis.PkgBase callers in the intraprocedural passes).
package cafmodel

import (
	"go/types"

	"cafmpi/internal/analysis"
)

// Key identifies a function the model knows about. Recv is the receiver's
// type name without pointer ("" for package-level functions).
type Key struct {
	Pkg  string // package base name: "core", "mpi", "gasnet", "sim"
	Recv string
	Name string
}

// KeyOf maps a resolved callee to its model key (zero Key for nil).
func KeyOf(fn *types.Func) Key {
	if fn == nil {
		return Key{}
	}
	k := Key{Pkg: analysis.PkgBase(fn.Pkg()), Name: fn.Name()}
	if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
		t := sig.Recv().Type()
		if p, ok := t.(*types.Pointer); ok {
			t = p.Elem()
		}
		if n, ok := t.(*types.Named); ok {
			k.Recv = n.Obj().Name()
		}
	}
	return k
}

// Collectives are operations every image of the team/world must reach: a
// rank-dependent path around one is a structural deadlock.
var Collectives = map[Key]bool{
	// core.Team collectives and co_* intrinsics.
	{"core", "Team", "Barrier"}:        true,
	{"core", "Team", "Bcast"}:          true,
	{"core", "Team", "Reduce"}:         true,
	{"core", "Team", "Allreduce"}:      true,
	{"core", "Team", "Allgather"}:      true,
	{"core", "Team", "Alltoall"}:       true,
	{"core", "Team", "AllreduceAsync"}: true,
	{"core", "Team", "BcastAsync"}:     true,
	{"core", "Team", "CoSumF64"}:       true,
	{"core", "Team", "CoSumI64"}:       true,
	{"core", "Team", "CoMaxF64"}:       true,
	{"core", "Team", "CoMaxI64"}:       true,
	{"core", "Team", "CoMinF64"}:       true,
	{"core", "Team", "CoMinI64"}:       true,
	{"core", "Team", "CoBroadcastF64"}: true,
	{"core", "Team", "CoBroadcastI64"}: true,
	{"core", "Team", "Split"}:          true,
	// mpi.Comm blocking collectives (tree variants route through these).
	{"mpi", "Comm", "Barrier"}:            true,
	{"mpi", "Comm", "Bcast"}:              true,
	{"mpi", "Comm", "Reduce"}:             true,
	{"mpi", "Comm", "Allreduce"}:          true,
	{"mpi", "Comm", "Gather"}:             true,
	{"mpi", "Comm", "Allgather"}:          true,
	{"mpi", "Comm", "Scatter"}:            true,
	{"mpi", "Comm", "Alltoall"}:           true,
	{"mpi", "Comm", "Alltoallv"}:          true,
	{"mpi", "Comm", "Scan"}:               true,
	{"mpi", "Comm", "Gatherv"}:            true,
	{"mpi", "Comm", "Scatterv"}:           true,
	{"mpi", "Comm", "ReduceScatterBlock"}: true,
	{"mpi", "Comm", "Dup"}:                true,
	{"mpi", "Comm", "Split"}:              true,
	{"mpi", "Comm", "SplitShared"}:        true,
	// Window lifecycle is collective over the communicator.
	{"mpi", "", "WinAllocate"}:       true,
	{"mpi", "", "WinAllocateShared"}: true,
	{"mpi", "", "WinCreateDynamic"}:  true,
	{"mpi", "Win", "Free"}:           true,
	{"mpi", "DynWin", "Free"}:        true,
	// gasnet split-phase barrier: both halves are collective.
	{"gasnet", "Ep", "Barrier"}:       true,
	{"gasnet", "Ep", "BarrierNotify"}: true,
	{"gasnet", "Ep", "BarrierWait"}:   true,
}

// RankSources are calls whose result identifies the calling image: a branch
// on one makes the guarded region rank-dependent.
var RankSources = map[Key]bool{
	{"core", "Image", "ID"}:  true,
	{"core", "Team", "Rank"}: true,
	{"mpi", "Comm", "Rank"}:  true,
	{"sim", "Proc", "ID"}:    true,
	{"caf", "", "ThisImage"}: true, // paper-surface name, should it ever land
}

// EpochOpen calls open a passive-target access epoch on their receiver.
var EpochOpen = map[Key]bool{
	{"mpi", "Win", "Lock"}:       true,
	{"mpi", "Win", "LockAll"}:    true,
	{"mpi", "DynWin", "LockAll"}: true,
}

// EpochClose calls end the epoch on their receiver.
var EpochClose = map[Key]bool{
	{"mpi", "Win", "Unlock"}:       true,
	{"mpi", "Win", "UnlockAll"}:    true,
	{"mpi", "DynWin", "UnlockAll"}: true,
}

// RMAOps are window operations defined only inside an epoch. The value
// reports whether the op leaves the window dirty (outstanding transfer that
// a Flush must complete before the epoch closes).
var RMAOps = map[Key]bool{
	{"mpi", "Win", "Put"}:            true,
	{"mpi", "Win", "Get"}:            true,
	{"mpi", "Win", "Rput"}:           true,
	{"mpi", "Win", "Rget"}:           true,
	{"mpi", "Win", "Accumulate"}:     true,
	{"mpi", "Win", "GetAccumulate"}:  true,
	{"mpi", "Win", "FetchAndOp"}:     true,
	{"mpi", "Win", "CompareAndSwap"}: true,
	{"mpi", "DynWin", "Put"}:         true,
	{"mpi", "DynWin", "Get"}:         true,
	{"mpi", "DynWin", "Accumulate"}:  true,
}

// WinFlush calls complete outstanding RMA on their receiver window.
var WinFlush = map[Key]bool{
	{"mpi", "Win", "Flush"}:       true,
	{"mpi", "Win", "FlushLocal"}:  true,
	{"mpi", "Win", "FlushAll"}:    true,
	{"mpi", "Win", "Rflush"}:      true,
	{"mpi", "Win", "RflushAll"}:   true,
	{"mpi", "DynWin", "Flush"}:    true,
	{"mpi", "DynWin", "FlushAll"}: true,
}

// WinCreators are the calls whose result is a window in the closed state.
var WinCreators = map[Key]bool{
	{"mpi", "", "WinAllocate"}:       true,
	{"mpi", "", "WinAllocateShared"}: true,
	{"mpi", "", "WinCreateDynamic"}:  true,
}

// DeferredGets start a transfer into their destination buffer that is
// undefined to read until a fence. The value is the index of the destination
// buffer argument.
var DeferredGets = map[Key]int{
	{"core", "Coarray", "GetDeferred"}:   2,
	{"gasnet", "Ep", "GetNBI"}:           2,
	{"gasnet", "Ep", "GetRegisteredNBI"}: 3,
}

// Fences complete every outstanding deferred transfer of the calling image.
// Collectives fence too (the runtime release-fences before synchronizing);
// passes must treat Collectives ∪ Fences as the completion set.
var Fences = map[Key]bool{
	{"core", "Image", "Cofence"}:       true,
	{"core", "Image", "CofenceScoped"}: true,
	{"core", "Events", "Notify"}:       true,
	{"core", "Events", "Wait"}:         true,
	{"core", "Team", "SyncImages"}:     true,
	{"gasnet", "Ep", "SyncNBIAll"}:     true,
}

// IsFence reports whether k completes deferred transfers (fence or
// collective).
func IsFence(k Key) bool { return Fences[k] || Collectives[k] }
