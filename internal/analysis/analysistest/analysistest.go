// Package analysistest is the fixture-driven test harness for caflint
// analyzers — the stdlib-only counterpart of golang.org/x/tools'
// analysistest. A test points it at a package under the analyzer's
// testdata/src tree; the harness parses and type-checks the fixture
// (resolving fixture-local imports from sibling testdata packages and
// standard-library imports from GOROOT source), runs the analyzer, and
// compares every diagnostic against `// want "regexp"` expectations:
//
//	x := time.Now() // want `wall-clock time\.Now`
//
// Each want comment holds one or more quoted regexps; each must match
// exactly one diagnostic reported on that line, and every diagnostic must
// be claimed by a want. Fixtures therefore pin both the positive and the
// negative behaviour of an analyzer: deleting the analyzer's check makes
// the fixture's wants unmatched and the test fail.
package analysistest

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"testing"

	"cafmpi/internal/analysis"
)

// TestData returns the absolute path of the calling test's testdata
// directory.
func TestData() string {
	_, file, _, ok := runtime.Caller(1)
	if !ok {
		panic("analysistest: cannot locate caller")
	}
	return filepath.Join(filepath.Dir(file), "testdata")
}

// Run analyzes each named package under testdata/src with a, comparing
// diagnostics to the fixtures' want comments.
func Run(t *testing.T, testdata string, a *analysis.Analyzer, pkgs ...string) {
	t.Helper()
	ld := &loader{
		testdata: testdata,
		fset:     token.NewFileSet(),
		pkgs:     make(map[string]*loaded),
	}
	ld.std = importer.ForCompiler(ld.fset, "source", nil)
	for _, pkg := range pkgs {
		runPkg(t, ld, a, pkg)
	}
}

func runPkg(t *testing.T, ld *loader, a *analysis.Analyzer, pkgPath string) {
	t.Helper()
	lp, err := ld.load(pkgPath)
	if err != nil {
		t.Fatalf("loading fixture %s: %v", pkgPath, err)
	}

	wants := collectWants(t, ld.fset, lp.files)

	var diags []analysis.Diagnostic
	pass := analysis.NewPass(a, ld.fset, lp.files, lp.pkg, lp.info, func(d analysis.Diagnostic) {
		diags = append(diags, d)
	})
	if err := a.Run(pass); err != nil {
		t.Fatalf("analyzer %s on %s: %v", a.Name, pkgPath, err)
	}

	// Claim each diagnostic against a want on its line.
	for _, d := range diags {
		p := ld.fset.Position(d.Pos)
		key := lineKey{file: filepath.Base(p.Filename), line: p.Line}
		claimed := false
		for _, w := range wants[key] {
			if w.claimed {
				continue
			}
			if w.re.MatchString(d.Message) {
				w.claimed = true
				claimed = true
				break
			}
		}
		if !claimed {
			t.Errorf("%s: unexpected diagnostic: %s", p, d.Message)
		}
	}
	var keys []lineKey
	for k := range wants {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].file != keys[j].file {
			return keys[i].file < keys[j].file
		}
		return keys[i].line < keys[j].line
	})
	for _, k := range keys {
		for _, w := range wants[k] {
			if !w.claimed {
				t.Errorf("%s:%d: no diagnostic matching %q", k.file, k.line, w.re)
			}
		}
	}
}

type lineKey struct {
	file string
	line int
}

type want struct {
	re      *regexp.Regexp
	claimed bool
}

// collectWants extracts `// want "re" ...` expectations from every comment.
func collectWants(t *testing.T, fset *token.FileSet, files []*ast.File) map[lineKey][]*want {
	t.Helper()
	wants := make(map[lineKey][]*want)
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
				if !strings.HasPrefix(text, "want ") {
					continue
				}
				p := fset.Position(c.Pos())
				key := lineKey{file: filepath.Base(p.Filename), line: p.Line}
				for _, pat := range splitQuoted(t, p, strings.TrimPrefix(text, "want ")) {
					re, err := regexp.Compile(pat)
					if err != nil {
						t.Fatalf("%s: bad want pattern %q: %v", p, pat, err)
					}
					wants[key] = append(wants[key], &want{re: re})
				}
			}
		}
	}
	return wants
}

// splitQuoted parses a sequence of Go-quoted or backquoted strings.
func splitQuoted(t *testing.T, p token.Position, s string) []string {
	t.Helper()
	var out []string
	s = strings.TrimSpace(s)
	for s != "" {
		var q byte = s[0]
		if q != '"' && q != '`' {
			t.Fatalf("%s: want patterns must be quoted, got %q", p, s)
		}
		end := strings.IndexByte(s[1:], q)
		if end < 0 {
			t.Fatalf("%s: unterminated want pattern %q", p, s)
		}
		raw := s[:end+2]
		pat, err := strconv.Unquote(raw)
		if err != nil {
			t.Fatalf("%s: bad want pattern %s: %v", p, raw, err)
		}
		out = append(out, pat)
		s = strings.TrimSpace(s[end+2:])
	}
	return out
}

// loaded is one type-checked fixture package.
type loaded struct {
	files []*ast.File
	pkg   *types.Package
	info  *types.Info
}

// loader resolves fixture packages from testdata/src and everything else
// from the standard library's source.
type loader struct {
	testdata string
	fset     *token.FileSet
	std      types.Importer
	pkgs     map[string]*loaded
}

func (ld *loader) load(path string) (*loaded, error) {
	if lp, ok := ld.pkgs[path]; ok {
		return lp, nil
	}
	dir := filepath.Join(ld.testdata, "src", filepath.FromSlash(path))
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []*ast.File
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		f, perr := parser.ParseFile(ld.fset, filepath.Join(dir, e.Name()), nil,
			parser.ParseComments|parser.SkipObjectResolution)
		if perr != nil {
			return nil, perr
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("no Go files in %s", dir)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	cfg := &types.Config{Importer: (*fixtureImporter)(ld)}
	pkg, err := cfg.Check(path, ld.fset, files, info)
	if err != nil {
		return nil, err
	}
	lp := &loaded{files: files, pkg: pkg, info: info}
	ld.pkgs[path] = lp
	return lp, nil
}

// fixtureImporter prefers testdata/src packages over the standard library.
type fixtureImporter loader

func (fi *fixtureImporter) Import(path string) (*types.Package, error) {
	ld := (*loader)(fi)
	if _, err := os.Stat(filepath.Join(ld.testdata, "src", filepath.FromSlash(path))); err == nil {
		lp, err := ld.load(path)
		if err != nil {
			return nil, err
		}
		return lp.pkg, nil
	}
	return ld.std.Import(path)
}
