// Package analysistest is the fixture-driven test harness for caflint
// analyzers — the stdlib-only counterpart of golang.org/x/tools'
// analysistest. A test points it at a package under the analyzer's
// testdata/src tree; the harness parses and type-checks the fixture
// (resolving fixture-local imports from sibling testdata packages and
// standard-library imports from GOROOT source), runs the analyzer, and
// compares every diagnostic against `// want "regexp"` expectations:
//
//	x := time.Now() // want `wall-clock time\.Now`
//
// Each want comment holds one or more quoted regexps; each must match
// exactly one diagnostic reported on that line, and every diagnostic must
// be claimed by a want. Fixtures therefore pin both the positive and the
// negative behaviour of an analyzer: deleting the analyzer's check makes
// the fixture's wants unmatched and the test fail.
//
// Interprocedural analyzers (Analyzer.FactTypes non-empty) get the same
// treatment go vet gives them: fixture packages imported by the package
// under test are analyzed first, sharing one fact store, so exported
// function/package facts flow across fixture package boundaries exactly as
// they do across real ones through the unit protocol.
//
// AnalyzeRepo applies an analyzer to the repository's real packages
// (resolving module-path imports from the working tree), for tests that pin
// whole-tree properties — the lockorder partial-order golden, for one.
package analysistest

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"testing"

	"cafmpi/internal/analysis"
)

// TestData returns the absolute path of the calling test's testdata
// directory.
func TestData() string {
	_, file, _, ok := runtime.Caller(1)
	if !ok {
		panic("analysistest: cannot locate caller")
	}
	return filepath.Join(filepath.Dir(file), "testdata")
}

// Run analyzes each named package under testdata/src with a, comparing
// diagnostics to the fixtures' want comments.
func Run(t *testing.T, testdata string, a *analysis.Analyzer, pkgs ...string) {
	t.Helper()
	ld := newLoader(testdata, "", "")
	for _, pkg := range pkgs {
		runPkg(t, ld, a, pkg)
	}
}

// AnalyzeRepo runs a over the repository's real packages (and, for
// interprocedural analyzers, over their in-repo dependencies first, so
// facts flow). repoRoot is the module root directory, modPath its module
// path; pkgs are import paths relative to modPath ("internal/fabric").
// It returns the diagnostics per requested package and the shared fact
// store.
func AnalyzeRepo(a *analysis.Analyzer, repoRoot, modPath string, pkgs ...string) (map[string][]analysis.Diagnostic, *analysis.FactStore, error) {
	ld := newLoader("", repoRoot, modPath)
	out := make(map[string][]analysis.Diagnostic)
	for _, pkg := range pkgs {
		path := modPath + "/" + pkg
		diags, err := ld.analyze(a, path)
		if err != nil {
			return nil, nil, fmt.Errorf("analyzing %s: %w", path, err)
		}
		out[pkg] = diags
	}
	return out, ld.facts, nil
}

func runPkg(t *testing.T, ld *loader, a *analysis.Analyzer, pkgPath string) {
	t.Helper()
	diags, err := ld.analyze(a, pkgPath)
	if err != nil {
		t.Fatalf("analyzing fixture %s: %v", pkgPath, err)
	}
	lp := ld.pkgs[pkgPath]

	wants := collectWants(t, ld.fset, lp.files)

	// Claim each diagnostic against a want on its line.
	for _, d := range diags {
		p := ld.fset.Position(d.Pos)
		key := lineKey{file: filepath.Base(p.Filename), line: p.Line}
		claimed := false
		for _, w := range wants[key] {
			if w.claimed {
				continue
			}
			if w.re.MatchString(d.Message) {
				w.claimed = true
				claimed = true
				break
			}
		}
		if !claimed {
			t.Errorf("%s: unexpected diagnostic: %s", p, d.Message)
		}
	}
	var keys []lineKey
	for k := range wants {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].file != keys[j].file {
			return keys[i].file < keys[j].file
		}
		return keys[i].line < keys[j].line
	})
	for _, k := range keys {
		for _, w := range wants[k] {
			if !w.claimed {
				t.Errorf("%s:%d: no diagnostic matching %q", k.file, k.line, w.re)
			}
		}
	}
}

type lineKey struct {
	file string
	line int
}

type want struct {
	re      *regexp.Regexp
	claimed bool
}

// collectWants extracts `// want "re" ...` expectations from every comment.
func collectWants(t *testing.T, fset *token.FileSet, files []*ast.File) map[lineKey][]*want {
	t.Helper()
	wants := make(map[lineKey][]*want)
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
				if !strings.HasPrefix(text, "want ") {
					continue
				}
				p := fset.Position(c.Pos())
				key := lineKey{file: filepath.Base(p.Filename), line: p.Line}
				for _, pat := range splitQuoted(t, p, strings.TrimPrefix(text, "want ")) {
					re, err := regexp.Compile(pat)
					if err != nil {
						t.Fatalf("%s: bad want pattern %q: %v", p, pat, err)
					}
					wants[key] = append(wants[key], &want{re: re})
				}
			}
		}
	}
	return wants
}

// splitQuoted parses a sequence of Go-quoted or backquoted strings.
func splitQuoted(t *testing.T, p token.Position, s string) []string {
	t.Helper()
	var out []string
	s = strings.TrimSpace(s)
	for s != "" {
		var q byte = s[0]
		if q != '"' && q != '`' {
			t.Fatalf("%s: want patterns must be quoted, got %q", p, s)
		}
		end := strings.IndexByte(s[1:], q)
		if end < 0 {
			t.Fatalf("%s: unterminated want pattern %q", p, s)
		}
		raw := s[:end+2]
		pat, err := strconv.Unquote(raw)
		if err != nil {
			t.Fatalf("%s: bad want pattern %s: %v", p, raw, err)
		}
		out = append(out, pat)
		s = strings.TrimSpace(s[end+2:])
	}
	return out
}

// loaded is one type-checked fixture package.
type loaded struct {
	files []*ast.File
	pkg   *types.Package
	info  *types.Info
}

// loader resolves packages from testdata/src (fixture mode) or from the
// repository working tree (repo mode), and everything else from the
// standard library's source. One loader holds one fact store, shared by
// every package it analyzes.
type loader struct {
	testdata string // fixture mode: testdata dir (testdata/src/<path>)
	repoRoot string // repo mode: module root directory
	modPath  string // repo mode: module path prefix
	fset     *token.FileSet
	std      types.Importer
	pkgs     map[string]*loaded
	facts    *analysis.FactStore
	diags    map[string][]analysis.Diagnostic
}

func newLoader(testdata, repoRoot, modPath string) *loader {
	ld := &loader{
		testdata: testdata,
		repoRoot: repoRoot,
		modPath:  modPath,
		fset:     token.NewFileSet(),
		pkgs:     make(map[string]*loaded),
		facts:    analysis.NewFactStore(),
		diags:    make(map[string][]analysis.Diagnostic),
	}
	ld.std = importer.ForCompiler(ld.fset, "source", nil)
	return ld
}

// dirOf maps an import path to a local source directory, or "" when the
// path resolves to the standard library.
func (ld *loader) dirOf(path string) string {
	if ld.repoRoot != "" {
		if path == ld.modPath {
			return ld.repoRoot
		}
		if rest, ok := strings.CutPrefix(path, ld.modPath+"/"); ok {
			return filepath.Join(ld.repoRoot, filepath.FromSlash(rest))
		}
		return ""
	}
	dir := filepath.Join(ld.testdata, "src", filepath.FromSlash(path))
	if _, err := os.Stat(dir); err != nil {
		return ""
	}
	return dir
}

// analyze loads path, analyzes its locally-resolved imports first when the
// analyzer is interprocedural, then runs the analyzer, memoizing results.
func (ld *loader) analyze(a *analysis.Analyzer, path string) ([]analysis.Diagnostic, error) {
	if diags, ok := ld.diags[path]; ok {
		return diags, nil
	}
	lp, err := ld.load(path)
	if err != nil {
		return nil, err
	}
	if len(a.FactTypes) > 0 {
		for _, imp := range lp.pkg.Imports() {
			if ld.dirOf(imp.Path()) == "" {
				continue
			}
			if _, err := ld.analyze(a, imp.Path()); err != nil {
				return nil, err
			}
		}
	}
	var diags []analysis.Diagnostic
	pass := analysis.NewPass(a, ld.fset, lp.files, lp.pkg, lp.info, ld.facts, func(d analysis.Diagnostic) {
		diags = append(diags, d)
	})
	if err := a.Run(pass); err != nil {
		return nil, fmt.Errorf("analyzer %s: %w", a.Name, err)
	}
	sort.Slice(diags, func(i, j int) bool { return diags[i].Pos < diags[j].Pos })
	ld.diags[path] = diags
	return diags, nil
}

func (ld *loader) load(path string) (*loaded, error) {
	if lp, ok := ld.pkgs[path]; ok {
		return lp, nil
	}
	dir := ld.dirOf(path)
	if dir == "" {
		return nil, fmt.Errorf("package %s resolves outside the local tree", path)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []*ast.File
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") || strings.HasSuffix(e.Name(), "_test.go") {
			continue
		}
		f, perr := parser.ParseFile(ld.fset, filepath.Join(dir, e.Name()), nil,
			parser.ParseComments|parser.SkipObjectResolution)
		if perr != nil {
			return nil, perr
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("no Go files in %s", dir)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	cfg := &types.Config{Importer: (*localImporter)(ld)}
	pkg, err := cfg.Check(path, ld.fset, files, info)
	if err != nil {
		return nil, err
	}
	lp := &loaded{files: files, pkg: pkg, info: info}
	ld.pkgs[path] = lp
	return lp, nil
}

// localImporter prefers locally-resolved packages (fixture or repo) over
// the standard library.
type localImporter loader

func (li *localImporter) Import(path string) (*types.Package, error) {
	ld := (*loader)(li)
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if ld.dirOf(path) != "" {
		lp, err := ld.load(path)
		if err != nil {
			return nil, err
		}
		return lp.pkg, nil
	}
	return ld.std.Import(path)
}
