package unit

import "runtime"

// defaultGOARCH is the host architecture, used when GOARCH is unset.
const defaultGOARCH = runtime.GOARCH
