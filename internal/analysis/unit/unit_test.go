package unit_test

import (
	"encoding/json"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
	"strings"
	"testing"
)

// TestVetToolProtocol drives the full cmd/go vet-tool protocol end to end:
// it builds caflint, lays out a three-package module (a core stand-in, a
// helper whose collective reach is visible only through an exported
// CollectiveFact in its .vetx file, and an app with one live and one waived
// rank-branched call), and runs `go vet -vettool=caflint -json` over it.
// Passing proves -V=full/-flags/.cfg handling, the facts encode → write →
// read → import round trip across package boundaries, JSON output, and
// suppression auditing, all through the real cmd/go scheduler.
func TestVetToolProtocol(t *testing.T) {
	if testing.Short() {
		t.Skip("builds a binary and execs go vet")
	}
	repoRoot := repoRoot(t)
	tmp := t.TempDir()

	caflint := filepath.Join(tmp, "caflint")
	build := exec.Command("go", "build", "-o", caflint, "./cmd/caflint")
	build.Dir = repoRoot
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("building caflint: %v\n%s", err, out)
	}

	mod := filepath.Join(tmp, "m")
	writeFile(t, mod, "go.mod", "module m\n\ngo 1.22\n")
	writeFile(t, mod, "core/core.go", `// Package core is a stand-in matching the runtime's base names.
package core

type Image struct{}

func (im *Image) ID() int { return 0 }

type Team struct{}

func (t *Team) Barrier() error { return nil }
`)
	writeFile(t, mod, "helper/helper.go", `package helper

import "m/core"

// Sync reaches a collective; callers only learn that through the exported
// CollectiveFact in this package's facts file.
func Sync(t *core.Team) error { return t.Barrier() }
`)
	writeFile(t, mod, "app/app.go", `package app

import (
	"m/core"
	"m/helper"
)

func bad(im *core.Image, t *core.Team) {
	if im.ID() == 0 {
		_ = helper.Sync(t)
	}
}

func waived(im *core.Image, t *core.Team) {
	if im.ID() == 0 {
		_ = helper.Sync(t) //caflint:allow barriermatch -- protocol test waiver
	}
}
`)

	vet := exec.Command("go", "vet", "-vettool="+caflint, "-json", "./...")
	vet.Dir = mod
	var stdout, stderr strings.Builder
	vet.Stdout = &stdout
	vet.Stderr = &stderr
	err := vet.Run()
	if err == nil {
		t.Fatalf("go vet succeeded; want the rank-branched finding to fail it\nstdout:\n%s\nstderr:\n%s", stdout.String(), stderr.String())
	}

	type diag struct {
		File       string `json:"file"`
		Line       int    `json:"line"`
		Pass       string `json:"pass"`
		Message    string `json:"message"`
		Suppressed bool   `json:"suppressed"`
	}
	// One JSON array per analyzed package. cmd/go streams the vet tool's
	// output through its own stderr under "# <pkg>" headers; strip those and
	// decode the arrays back to back (tool stdout kept for robustness).
	var payload strings.Builder
	for _, line := range strings.Split(stdout.String()+"\n"+stderr.String(), "\n") {
		if strings.HasPrefix(strings.TrimSpace(line), "#") {
			continue
		}
		payload.WriteString(line)
		payload.WriteString("\n")
	}
	var all []diag
	dec := json.NewDecoder(strings.NewReader(payload.String()))
	for dec.More() {
		var batch []diag
		if derr := dec.Decode(&batch); derr != nil {
			t.Fatalf("parsing -json output: %v\nstdout:\n%s\nstderr:\n%s", derr, stdout.String(), stderr.String())
		}
		all = append(all, batch...)
	}

	var live, waived int
	for _, d := range all {
		if d.Pass != "barriermatch" || !strings.Contains(d.Message, "reaches a collective") {
			continue
		}
		if !strings.HasSuffix(d.File, "app.go") {
			t.Errorf("finding in unexpected file: %+v", d)
		}
		if d.Suppressed {
			waived++
		} else {
			live++
		}
	}
	if live != 1 || waived != 1 {
		t.Fatalf("cross-package findings: live=%d waived=%d, want 1/1\nstdout:\n%s\nstderr:\n%s", live, waived, stdout.String(), stderr.String())
	}
}

func repoRoot(t *testing.T) string {
	t.Helper()
	_, file, _, ok := runtime.Caller(0)
	if !ok {
		t.Fatal("cannot locate caller")
	}
	// internal/analysis/unit/unit_test.go -> repo root.
	return filepath.Dir(filepath.Dir(filepath.Dir(filepath.Dir(file))))
}

func writeFile(t *testing.T, dir, name, content string) {
	t.Helper()
	path := filepath.Join(dir, name)
	if err := os.MkdirAll(filepath.Dir(path), 0o777); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, []byte(content), 0o666); err != nil {
		t.Fatal(err)
	}
}
