// Package unit implements the `go vet -vettool` driver protocol (the role
// golang.org/x/tools/go/analysis/unitchecker plays for x/tools analyzers)
// on top of the standard library alone.
//
// cmd/go invokes the tool once per package with three entry points:
//
//   - `tool -V=full` must print "name version ..." (used for build caching);
//   - `tool -flags` must print a JSON description of the tool's flags;
//   - `tool <file>.cfg` must analyze the package described by the JSON
//     config, print diagnostics to stderr, write the facts file named by
//     VetxOutput, and exit nonzero iff there were diagnostics or errors.
//
// Run also accepts ordinary package patterns: `caflint ./...` re-executes
// itself through `go vet -vettool=<self>` so users need no wrapper script.
package unit

import (
	"crypto/sha256"
	"encoding/json"
	"flag"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strings"

	"cafmpi/internal/analysis"
)

// Config mirrors the JSON emitted by cmd/go for each vetted package. Field
// names must match cmd/go's (see src/cmd/go/internal/work/exec.go vetConfig).
type Config struct {
	ID                        string
	Compiler                  string
	Dir                       string
	ImportPath                string
	GoVersion                 string
	GoFiles                   []string
	NonGoFiles                []string
	IgnoredFiles              []string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	Standard                  map[string]bool
	PackageVetx               map[string]string
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

// Main is the entry point for a caflint-style multichecker binary.
func Main(analyzers ...*analysis.Analyzer) {
	progname := filepath.Base(os.Args[0])
	fs := flag.NewFlagSet(progname, flag.ExitOnError)
	printVersion := fs.String("V", "", "print version and exit (cmd/go protocol)")
	printFlags := fs.Bool("flags", false, "print flags in JSON (cmd/go protocol)")
	jsonOut := fs.Bool("json", false, "emit diagnostics as JSON on stdout")
	enabled := make(map[string]*bool, len(analyzers))
	for _, a := range analyzers {
		enabled[a.Name] = fs.Bool(a.Name, true, "enable the "+a.Name+" analyzer")
	}
	fs.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: %s [flags] <packages|cfg-file>\n\nanalyzers:\n", progname)
		for _, a := range analyzers {
			doc := a.Doc
			if i := strings.IndexByte(doc, '\n'); i >= 0 {
				doc = doc[:i]
			}
			fmt.Fprintf(os.Stderr, "  %-10s %s\n", a.Name, doc)
		}
	}
	fs.Parse(os.Args[1:])

	if *printVersion != "" {
		// cmd/go parses `name version devel ... buildID=a/b/c/d` and hashes
		// the content ID (last segment) into its build cache key, so derive
		// it from this binary's own bytes: rebuilding caflint invalidates
		// cached vet verdicts.
		fmt.Printf("%s version devel buildID=%s\n", progname, selfContentID())
		return
	}
	if *printFlags {
		describeFlags(fs)
		return
	}

	var active []*analysis.Analyzer
	for _, a := range analyzers {
		if *enabled[a.Name] {
			active = append(active, a)
		}
	}

	args := fs.Args()
	if len(args) == 1 && strings.HasSuffix(args[0], ".cfg") {
		runUnit(args[0], active, *jsonOut)
		return
	}
	// Standalone mode: delegate package loading to the go command, with this
	// very binary as the vet tool.
	self, err := os.Executable()
	if err != nil {
		fatal("cannot locate own executable: %v", err)
	}
	if len(args) == 0 {
		args = []string{"./..."}
	}
	cmdArgs := []string{"vet", "-vettool=" + self}
	if *jsonOut {
		cmdArgs = append(cmdArgs, "-json")
	}
	for _, a := range analyzers {
		if !*enabled[a.Name] {
			cmdArgs = append(cmdArgs, "-"+a.Name+"=false")
		}
	}
	cmd := exec.Command("go", append(cmdArgs, args...)...)
	cmd.Stdout = os.Stdout
	cmd.Stderr = os.Stderr
	if err := cmd.Run(); err != nil {
		if ee, ok := err.(*exec.ExitError); ok {
			os.Exit(ee.ExitCode())
		}
		fatal("go vet: %v", err)
	}
}

// selfContentID hashes the running executable into the four-segment buildID
// shape cmd/go's toolID parser expects.
func selfContentID() string {
	h := "unknown"
	if exe, err := os.Executable(); err == nil {
		if data, err := os.ReadFile(exe); err == nil {
			sum := sha256.Sum256(data)
			h = fmt.Sprintf("%x", sum[:12])
		}
	}
	return h + "/" + h + "/" + h + "/" + h
}

// describeFlags prints the tool's flags in the JSON shape cmd/go expects
// from `tool -flags`.
func describeFlags(fs *flag.FlagSet) {
	type jsonFlag struct {
		Name  string
		Bool  bool
		Usage string
	}
	var flags []jsonFlag
	fs.VisitAll(func(f *flag.Flag) {
		isBool := false
		if b, ok := f.Value.(interface{ IsBoolFlag() bool }); ok {
			isBool = b.IsBoolFlag()
		}
		flags = append(flags, jsonFlag{Name: f.Name, Bool: isBool, Usage: f.Usage})
	})
	data, err := json.Marshal(flags)
	if err != nil {
		fatal("marshaling flags: %v", err)
	}
	os.Stdout.Write(data)
	fmt.Println()
}

// runUnit analyzes the single package described by cfgFile.
func runUnit(cfgFile string, analyzers []*analysis.Analyzer, jsonOut bool) {
	data, err := os.ReadFile(cfgFile)
	if err != nil {
		fatal("%v", err)
	}
	var cfg Config
	if err = json.Unmarshal(data, &cfg); err != nil {
		fatal("parsing %s: %v", cfgFile, err)
	}

	// Facts flow bottom-up through the import graph: merge the stores of
	// every dependency's .vetx file (cmd/go hands us direct imports; each of
	// those re-exported its own imports' facts, so the merge is transitive).
	facts := analysis.NewFactStore()
	for _, vetx := range cfg.PackageVetx {
		raw, rerr := os.ReadFile(vetx)
		if rerr != nil {
			continue // dependency outside the analyzed set; no facts to gain
		}
		dep, derr := analysis.DecodeFacts(raw)
		if derr != nil {
			fatal("facts of %s: %v", vetx, derr)
		}
		facts.Merge(dep)
	}

	// Facts-only run with a purely intraprocedural suite: nothing to
	// compute, just pass the merged dependency facts through.
	hasFactAnalyzers := false
	for _, a := range analyzers {
		if len(a.FactTypes) > 0 {
			hasFactAnalyzers = true
		}
	}
	if cfg.VetxOnly && !hasFactAnalyzers {
		writeFacts(&cfg, facts)
		return
	}

	fset := token.NewFileSet()
	var files []*ast.File
	for _, name := range cfg.GoFiles {
		f, perr := parser.ParseFile(fset, name, nil, parser.ParseComments|parser.SkipObjectResolution)
		if perr != nil {
			if cfg.SucceedOnTypecheckFailure {
				return
			}
			fatal("%v", perr)
		}
		files = append(files, f)
	}

	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	tcfg := &types.Config{
		Importer: newCfgImporter(&cfg, fset),
		Error:    func(error) {}, // collect nothing; first error returned below
		Sizes:    types.SizesFor(cfg.Compiler, buildArch()),
	}
	pkg, err := tcfg.Check(cfg.ImportPath, fset, files, info)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return
		}
		fatal("typechecking %s: %v", cfg.ImportPath, err)
	}

	var diags []analysis.Diagnostic
	for _, a := range analyzers {
		if cfg.VetxOnly && len(a.FactTypes) == 0 {
			continue // facts-only run: intraprocedural analyzers have nothing to add
		}
		pass := analysis.NewPass(a, fset, files, pkg, info, facts, func(d analysis.Diagnostic) {
			diags = append(diags, d)
		})
		pass.KeepSuppressed = jsonOut
		if err := a.Run(pass); err != nil {
			fatal("analyzer %s on %s: %v", a.Name, cfg.ImportPath, err)
		}
	}

	// Write the facts file even when empty: cmd/go caches it for dependent
	// packages. Imported facts are re-exported so they reach indirect
	// dependents.
	writeFacts(&cfg, facts)
	if cfg.VetxOnly || len(diags) == 0 {
		return
	}
	sort.Slice(diags, func(i, j int) bool { return diags[i].Pos < diags[j].Pos })
	failing := 0
	for _, d := range diags {
		if !d.Suppressed {
			failing++
		}
	}
	if jsonOut {
		printJSON(os.Stdout, fset, diags)
	} else {
		for _, d := range diags {
			fmt.Fprintf(os.Stderr, "%s: %s (%s)\n", fset.Position(d.Pos), d.Message, d.Analyzer)
		}
	}
	if failing > 0 {
		os.Exit(2)
	}
}

// writeFacts persists the run's fact store to the path cmd/go named.
func writeFacts(cfg *Config, facts *analysis.FactStore) {
	if cfg.VetxOutput == "" {
		return
	}
	enc, err := facts.Encode()
	if err != nil {
		fatal("encoding facts: %v", err)
	}
	if err = os.WriteFile(cfg.VetxOutput, enc, 0o666); err != nil {
		fatal("writing facts: %v", err)
	}
}

// printJSON emits one flat JSON array of machine-readable diagnostics:
// {"file","line","col","pass","message","suppressed"} per finding, with
// suppressed entries (silenced by //caflint:allow) included so CI can audit
// outstanding waivers alongside hard findings.
func printJSON(w io.Writer, fset *token.FileSet, diags []analysis.Diagnostic) {
	type jsonDiag struct {
		File       string `json:"file"`
		Line       int    `json:"line"`
		Col        int    `json:"col"`
		Pass       string `json:"pass"`
		Message    string `json:"message"`
		Suppressed bool   `json:"suppressed"`
	}
	out := make([]jsonDiag, 0, len(diags))
	for _, d := range diags {
		p := fset.Position(d.Pos)
		out = append(out, jsonDiag{
			File: p.Filename, Line: p.Line, Col: p.Column,
			Pass: d.Analyzer, Message: d.Message, Suppressed: d.Suppressed,
		})
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "\t")
	enc.Encode(out)
}

// cfgImporter resolves imports through the export-data files cmd/go listed
// in the config, using the compiler-written export format reader.
type cfgImporter struct {
	cfg   *Config
	gc    types.Importer
	cache map[string]*types.Package
}

func newCfgImporter(cfg *Config, fset *token.FileSet) *cfgImporter {
	ci := &cfgImporter{cfg: cfg, cache: make(map[string]*types.Package)}
	lookup := func(path string) (io.ReadCloser, error) {
		if mapped, ok := cfg.ImportMap[path]; ok {
			path = mapped
		}
		file, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	}
	ci.gc = importer.ForCompiler(fset, "gc", lookup)
	return ci
}

func (ci *cfgImporter) Import(path string) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	canonical := path
	if mapped, ok := ci.cfg.ImportMap[path]; ok {
		canonical = mapped
	}
	if pkg, ok := ci.cache[canonical]; ok {
		return pkg, nil
	}
	pkg, err := ci.gc.Import(path)
	if err != nil {
		return nil, err
	}
	ci.cache[canonical] = pkg
	return pkg, nil
}

// buildArch returns the architecture whose type sizes the checker should
// assume; vet runs on the build host, so GOARCH (or the host arch) is right.
func buildArch() string {
	if a := os.Getenv("GOARCH"); a != "" {
		return a
	}
	return defaultGOARCH
}

func fatal(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "caflint: "+format+"\n", args...)
	os.Exit(1)
}
