package trace

import (
	"strings"
	"testing"

	"cafmpi/internal/sim"
)

func one(t *testing.T, fn func(p *sim.Proc)) {
	t.Helper()
	w := sim.NewWorld(1)
	if err := w.Run(func(p *sim.Proc) error { fn(p); return nil }); err != nil {
		t.Fatal(err)
	}
}

func TestSpanAccumulates(t *testing.T) {
	one(t, func(p *sim.Proc) {
		tr := New(p)
		end := tr.Span(EventWait)
		p.Advance(500)
		end()
		end2 := tr.Span(EventWait)
		p.Advance(250)
		end2()
		if got := tr.Total(EventWait); got != 750 {
			t.Errorf("Total = %d, want 750", got)
		}
		if got := tr.Count(EventWait); got != 2 {
			t.Errorf("Count = %d, want 2", got)
		}
		if tr.Total(EventNotify) != 0 {
			t.Error("unrelated category accumulated time")
		}
	})
}

// TestNestedSameCategorySpans is the regression test for the double-count
// bug: a span of category c opened inside another span of c used to charge
// the enclosing virtual time twice (inner 50 counted in both closers).
func TestNestedSameCategorySpans(t *testing.T) {
	one(t, func(p *sim.Proc) {
		tr := New(p)
		endOuter := tr.Span(EventNotify)
		p.Advance(100)
		endInner := tr.Span(EventNotify)
		p.Advance(50)
		endInner()
		p.Advance(25)
		endOuter()
		if got := tr.Total(EventNotify); got != 175 {
			t.Errorf("exclusive Total = %d, want 175 (double-counted nested span?)", got)
		}
		if got := tr.Inclusive(EventNotify); got != 175 {
			t.Errorf("Inclusive = %d, want 175", got)
		}
		if got := tr.Count(EventNotify); got != 2 {
			t.Errorf("Count = %d, want 2", got)
		}
	})
}

// TestNestedSpanExclusiveVsInclusive checks the attribution split: a
// substrate span inside event_notify takes the fence time out of the
// notify's exclusive total while the notify's inclusive total keeps it.
func TestNestedSpanExclusiveVsInclusive(t *testing.T) {
	one(t, func(p *sim.Proc) {
		tr := New(p)
		endNotify := tr.Span(EventNotify)
		p.Advance(100)
		endFence := tr.Span(SubstrateFence)
		p.Advance(400)
		endFence()
		p.Advance(30)
		endNotify()
		if got := tr.Total(EventNotify); got != 130 {
			t.Errorf("notify exclusive = %d, want 130", got)
		}
		if got := tr.Total(SubstrateFence); got != 400 {
			t.Errorf("fence exclusive = %d, want 400", got)
		}
		if got := tr.Inclusive(EventNotify); got != 530 {
			t.Errorf("notify inclusive = %d, want 530", got)
		}
		if got := tr.Inclusive(SubstrateFence); got != 400 {
			t.Errorf("fence inclusive = %d, want 400", got)
		}
	})
}

func TestReportOnEmptyTracer(t *testing.T) {
	one(t, func(p *sim.Proc) {
		tr := New(p)
		if lines := tr.Report(); len(lines) != 0 {
			t.Errorf("fresh tracer reported %d lines", len(lines))
		}
		if !strings.Contains(tr.Format(), "no trace data") {
			t.Error("fresh tracer Format missing placeholder")
		}
	})
}

// TestReportZeroTotal: spans that open and close at the same virtual instant
// produce counts with zero time; percentage math must not divide by zero.
func TestReportZeroTotal(t *testing.T) {
	one(t, func(p *sim.Proc) {
		tr := New(p)
		tr.Span(Collective)() // zero-duration span
		tr.Add(Computation, 0)
		lines := tr.Report()
		if len(lines) != 2 {
			t.Fatalf("report has %d lines, want 2", len(lines))
		}
		for _, l := range lines {
			if l.Percent != 0 {
				t.Errorf("%v percent = %v, want 0 on zero total", l.Category, l.Percent)
			}
		}
	})
}

func TestMergeEmptyAndNil(t *testing.T) {
	one(t, func(p *sim.Proc) {
		a := New(p)
		a.Add(Alltoall, 40)
		a.Merge(New(p)) // merging an empty tracer changes nothing
		if a.Total(Alltoall) != 40 || a.Count(Alltoall) != 1 {
			t.Errorf("merge of empty tracer altered state: %d/%d", a.Total(Alltoall), a.Count(Alltoall))
		}
		a.Merge(nil) // nil other is a no-op
		if a.Total(Alltoall) != 40 {
			t.Error("merge(nil) altered state")
		}
		var nilT *Tracer
		nilT.Merge(a) // nil receiver is a no-op
	})
}

func TestMergeCarriesInclusive(t *testing.T) {
	one(t, func(p *sim.Proc) {
		a, b := New(p), New(p)
		end := b.Span(EventNotify)
		p.Advance(100)
		endIn := b.Span(SubstrateFence)
		p.Advance(60)
		endIn()
		end()
		a.Merge(b)
		if a.Inclusive(EventNotify) != 160 || a.Total(EventNotify) != 100 {
			t.Errorf("merged inclusive/exclusive = %d/%d, want 160/100",
				a.Inclusive(EventNotify), a.Total(EventNotify))
		}
	})
}

func TestNilTracerIsSafe(t *testing.T) {
	var tr *Tracer
	tr.Span(Computation)()
	tr.Add(Alltoall, 100)
	tr.Reset()
	tr.Merge(nil)
	if tr.Total(Alltoall) != 0 || tr.Count(Alltoall) != 0 || tr.Inclusive(Alltoall) != 0 {
		t.Error("nil tracer returned nonzero")
	}
	if tr.Report() != nil {
		t.Error("nil tracer produced a report")
	}
	if !strings.Contains(tr.Format(), "no trace data") {
		t.Error("nil tracer Format missing placeholder")
	}
}

func TestReportSortedAndPercented(t *testing.T) {
	one(t, func(p *sim.Proc) {
		tr := New(p)
		tr.Add(Computation, 300)
		tr.Add(Alltoall, 700)
		lines := tr.Report()
		if len(lines) != 2 {
			t.Fatalf("report has %d lines, want 2", len(lines))
		}
		if lines[0].Category != Alltoall || lines[1].Category != Computation {
			t.Errorf("report not sorted by time: %+v", lines)
		}
		if lines[0].Percent != 70 || lines[1].Percent != 30 {
			t.Errorf("percentages %v/%v, want 70/30", lines[0].Percent, lines[1].Percent)
		}
	})
}

func TestMergeAndReset(t *testing.T) {
	one(t, func(p *sim.Proc) {
		a, b := New(p), New(p)
		a.Add(FinishOp, 100)
		b.Add(FinishOp, 50)
		b.Add(SpawnOp, 25)
		a.Merge(b)
		if a.Total(FinishOp) != 150 || a.Total(SpawnOp) != 25 {
			t.Errorf("merge wrong: %d/%d", a.Total(FinishOp), a.Total(SpawnOp))
		}
		a.Reset()
		if a.Total(FinishOp) != 0 || a.Count(SpawnOp) != 0 {
			t.Error("reset incomplete")
		}
	})
}

func TestCategoryNames(t *testing.T) {
	want := map[Category]string{
		Computation:    "computation",
		CoarrayWrite:   "coarray_write",
		EventWait:      "event_wait",
		EventNotify:    "event_notify",
		Alltoall:       "alltoall",
		SubstratePut:   "substrate_put",
		SubstrateGet:   "substrate_get",
		SubstrateAM:    "substrate_am",
		SubstrateFence: "substrate_fence",
	}
	for c, name := range want {
		if c.String() != name {
			t.Errorf("%d.String() = %q, want %q", c, c.String(), name)
		}
	}
	if len(Categories()) != int(numCategories) {
		t.Errorf("Categories() returned %d entries", len(Categories()))
	}
	if !strings.Contains(Category(99).String(), "Category(99)") {
		t.Error("out-of-range category String not defensive")
	}
}

func TestFormatTable(t *testing.T) {
	one(t, func(p *sim.Proc) {
		tr := New(p)
		tr.Add(EventNotify, 1_500_000_000) // 1.5 virtual seconds
		s := tr.Format()
		if !strings.Contains(s, "event_notify") || !strings.Contains(s, "1.500000") {
			t.Errorf("Format output unexpected:\n%s", s)
		}
	})
}
