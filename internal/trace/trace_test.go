package trace

import (
	"strings"
	"testing"

	"cafmpi/internal/sim"
)

func one(t *testing.T, fn func(p *sim.Proc)) {
	t.Helper()
	w := sim.NewWorld(1)
	if err := w.Run(func(p *sim.Proc) error { fn(p); return nil }); err != nil {
		t.Fatal(err)
	}
}

func TestSpanAccumulates(t *testing.T) {
	one(t, func(p *sim.Proc) {
		tr := New(p)
		end := tr.Span(EventWait)
		p.Advance(500)
		end()
		end2 := tr.Span(EventWait)
		p.Advance(250)
		end2()
		if got := tr.Total(EventWait); got != 750 {
			t.Errorf("Total = %d, want 750", got)
		}
		if got := tr.Count(EventWait); got != 2 {
			t.Errorf("Count = %d, want 2", got)
		}
		if tr.Total(EventNotify) != 0 {
			t.Error("unrelated category accumulated time")
		}
	})
}

func TestNilTracerIsSafe(t *testing.T) {
	var tr *Tracer
	tr.Span(Computation)()
	tr.Add(Alltoall, 100)
	tr.Reset()
	tr.Merge(nil)
	if tr.Total(Alltoall) != 0 || tr.Count(Alltoall) != 0 {
		t.Error("nil tracer returned nonzero")
	}
	if tr.Report() != nil {
		t.Error("nil tracer produced a report")
	}
	if !strings.Contains(tr.Format(), "no trace data") {
		t.Error("nil tracer Format missing placeholder")
	}
}

func TestReportSortedAndPercented(t *testing.T) {
	one(t, func(p *sim.Proc) {
		tr := New(p)
		tr.Add(Computation, 300)
		tr.Add(Alltoall, 700)
		lines := tr.Report()
		if len(lines) != 2 {
			t.Fatalf("report has %d lines, want 2", len(lines))
		}
		if lines[0].Category != Alltoall || lines[1].Category != Computation {
			t.Errorf("report not sorted by time: %+v", lines)
		}
		if lines[0].Percent != 70 || lines[1].Percent != 30 {
			t.Errorf("percentages %v/%v, want 70/30", lines[0].Percent, lines[1].Percent)
		}
	})
}

func TestMergeAndReset(t *testing.T) {
	one(t, func(p *sim.Proc) {
		a, b := New(p), New(p)
		a.Add(FinishOp, 100)
		b.Add(FinishOp, 50)
		b.Add(SpawnOp, 25)
		a.Merge(b)
		if a.Total(FinishOp) != 150 || a.Total(SpawnOp) != 25 {
			t.Errorf("merge wrong: %d/%d", a.Total(FinishOp), a.Total(SpawnOp))
		}
		a.Reset()
		if a.Total(FinishOp) != 0 || a.Count(SpawnOp) != 0 {
			t.Error("reset incomplete")
		}
	})
}

func TestCategoryNames(t *testing.T) {
	want := map[Category]string{
		Computation:  "computation",
		CoarrayWrite: "coarray_write",
		EventWait:    "event_wait",
		EventNotify:  "event_notify",
		Alltoall:     "alltoall",
	}
	for c, name := range want {
		if c.String() != name {
			t.Errorf("%d.String() = %q, want %q", c, c.String(), name)
		}
	}
	if len(Categories()) != int(numCategories) {
		t.Errorf("Categories() returned %d entries", len(Categories()))
	}
	if !strings.Contains(Category(99).String(), "Category(99)") {
		t.Error("out-of-range category String not defensive")
	}
}

func TestFormatTable(t *testing.T) {
	one(t, func(p *sim.Proc) {
		tr := New(p)
		tr.Add(EventNotify, 1_500_000_000) // 1.5 virtual seconds
		s := tr.Format()
		if !strings.Contains(s, "event_notify") || !strings.Contains(s, "1.500000") {
			t.Errorf("Format output unexpected:\n%s", s)
		}
	})
}
