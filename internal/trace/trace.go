// Package trace accumulates per-image virtual time by operation category.
// It regenerates the paper's HPCToolkit-style time decompositions (Figure 4
// for RandomAccess, Figure 8 for FFT) from first-class measurements instead
// of sampling.
package trace

import (
	"fmt"
	"sort"
	"strings"

	"cafmpi/internal/sim"
)

// Category labels one kind of runtime activity. The set mirrors the
// decomposition categories the paper reports.
type Category int

// Categories.
const (
	Computation Category = iota
	CoarrayWrite
	CoarrayRead
	EventWait
	EventNotify
	Alltoall
	Collective
	FinishOp
	SpawnOp
	Other
	numCategories
)

var categoryNames = [...]string{
	"computation",
	"coarray_write",
	"coarray_read",
	"event_wait",
	"event_notify",
	"alltoall",
	"collective",
	"finish",
	"spawn",
	"other",
}

func (c Category) String() string {
	if c < 0 || int(c) >= len(categoryNames) {
		return fmt.Sprintf("Category(%d)", int(c))
	}
	return categoryNames[c]
}

// Categories returns all categories in declaration order.
func Categories() []Category {
	out := make([]Category, numCategories)
	for i := range out {
		out[i] = Category(i)
	}
	return out
}

// Tracer accumulates virtual time per category for one image. A nil Tracer
// is valid and records nothing, so tracing can be disabled without branches
// at call sites.
type Tracer struct {
	p      *sim.Proc
	totals [numCategories]int64
	counts [numCategories]int64
}

// New creates a tracer bound to image p's virtual clock.
func New(p *sim.Proc) *Tracer { return &Tracer{p: p} }

// Span opens a measurement in category c and returns the closer. Usage:
//
//	defer tr.Span(trace.EventWait)()
func (t *Tracer) Span(c Category) func() {
	if t == nil {
		return func() {}
	}
	t0 := t.p.Now()
	return func() {
		t.totals[c] += t.p.Now() - t0
		t.counts[c]++
	}
}

// Add records dt nanoseconds in category c directly.
func (t *Tracer) Add(c Category, dt int64) {
	if t == nil {
		return
	}
	t.totals[c] += dt
	t.counts[c]++
}

// Total returns the accumulated nanoseconds in category c.
func (t *Tracer) Total(c Category) int64 {
	if t == nil {
		return 0
	}
	return t.totals[c]
}

// Count returns how many spans/additions category c received.
func (t *Tracer) Count(c Category) int64 {
	if t == nil {
		return 0
	}
	return t.counts[c]
}

// Reset zeroes all accumulators.
func (t *Tracer) Reset() {
	if t == nil {
		return
	}
	t.totals = [numCategories]int64{}
	t.counts = [numCategories]int64{}
}

// Merge adds other's accumulators into t (for cross-image aggregation).
func (t *Tracer) Merge(other *Tracer) {
	if t == nil || other == nil {
		return
	}
	for i := range t.totals {
		t.totals[i] += other.totals[i]
		t.counts[i] += other.counts[i]
	}
}

// Line is one row of a decomposition report.
type Line struct {
	Category Category
	Seconds  float64
	Count    int64
	Percent  float64
}

// Report summarizes non-empty categories, largest first.
func (t *Tracer) Report() []Line {
	if t == nil {
		return nil
	}
	var total int64
	for _, v := range t.totals {
		total += v
	}
	var out []Line
	for c, v := range t.totals {
		if v == 0 && t.counts[c] == 0 {
			continue
		}
		pct := 0.0
		if total > 0 {
			pct = 100 * float64(v) / float64(total)
		}
		out = append(out, Line{Category: Category(c), Seconds: float64(v) * 1e-9, Count: t.counts[c], Percent: pct})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Seconds > out[j].Seconds })
	return out
}

// Format renders the report as an aligned text table.
func (t *Tracer) Format() string {
	lines := t.Report()
	if len(lines) == 0 {
		return "(no trace data)\n"
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%-16s %12s %10s %8s\n", "category", "seconds", "count", "percent")
	for _, l := range lines {
		fmt.Fprintf(&b, "%-16s %12.6f %10d %7.2f%%\n", l.Category, l.Seconds, l.Count, l.Percent)
	}
	return b.String()
}
