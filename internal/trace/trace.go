// Package trace accumulates per-image virtual time by operation category.
// It regenerates the paper's HPCToolkit-style time decompositions (Figure 4
// for RandomAccess, Figure 8 for FFT) from first-class measurements instead
// of sampling.
//
// Two views are kept per category. The *exclusive* view (Total, Report)
// charges each nanosecond to the innermost open span only, so substrate time
// spent inside an event_notify fence shows up under substrate_fence rather
// than inflating event_notify. The *inclusive* view (Inclusive) charges a
// category for the whole open-to-close duration of its outermost span — the
// call-path attribution HPCToolkit's sampling produces, which the paper's
// figures are drawn from.
package trace

import (
	"fmt"
	"sort"
	"strings"

	"cafmpi/internal/sim"
)

// Category labels one kind of runtime activity. The set mirrors the
// decomposition categories the paper reports, plus the substrate-level
// categories that separate binding time from runtime-API time.
type Category int

// Categories.
const (
	Computation Category = iota
	CoarrayWrite
	CoarrayRead
	EventWait
	EventNotify
	Alltoall
	Collective
	FinishOp
	SpawnOp
	SubstratePut
	SubstrateGet
	SubstrateAM
	SubstrateFence
	Other
	numCategories
)

var categoryNames = [...]string{
	"computation",
	"coarray_write",
	"coarray_read",
	"event_wait",
	"event_notify",
	"alltoall",
	"collective",
	"finish",
	"spawn",
	"substrate_put",
	"substrate_get",
	"substrate_am",
	"substrate_fence",
	"other",
}

func (c Category) String() string {
	if c < 0 || int(c) >= len(categoryNames) {
		return fmt.Sprintf("Category(%d)", int(c))
	}
	return categoryNames[c]
}

// Categories returns all categories in declaration order.
func Categories() []Category {
	out := make([]Category, numCategories)
	for i := range out {
		out[i] = Category(i)
	}
	return out
}

// frame is one open span on the tracer's stack.
type frame struct {
	cat  Category
	t0   int64 // open time (inclusive accounting)
	last int64 // last time this frame was the innermost (exclusive accounting)
	acc  int64 // exclusive time accumulated so far
}

// Tracer accumulates virtual time per category for one image. A nil Tracer
// is valid and records nothing, so tracing can be disabled without branches
// at call sites.
//
// Spans nest: opening a child span pauses the parent's exclusive clock and
// closing it resumes the parent, so no nanosecond is charged exclusively to
// two categories — including nested spans of the *same* category, which a
// naive start/stop pair would double-count. Span closers must run in LIFO
// order (the `defer tr.Span(c)()` idiom guarantees this).
type Tracer struct {
	p         *sim.Proc
	totals    [numCategories]int64 // exclusive (self) time
	inclusive [numCategories]int64 // outermost open-to-close time
	counts    [numCategories]int64
	stack     []frame
	open      [numCategories]int32 // nesting depth per category
	closer    func()
}

// New creates a tracer bound to image p's virtual clock.
func New(p *sim.Proc) *Tracer {
	t := &Tracer{p: p}
	t.closer = t.close
	return t
}

var nopCloser = func() {}

// Span opens a measurement in category c and returns the closer. Usage:
//
//	defer tr.Span(trace.EventWait)()
//
// Closers must be invoked in LIFO order with respect to other spans of the
// same tracer (defer discipline).
func (t *Tracer) Span(c Category) func() {
	if t == nil {
		return nopCloser
	}
	now := t.p.Now()
	if n := len(t.stack); n > 0 {
		t.stack[n-1].acc += now - t.stack[n-1].last
	}
	t.stack = append(t.stack, frame{cat: c, t0: now, last: now})
	t.open[c]++
	return t.closer
}

// close pops the innermost span, charging its exclusive time and — when it
// is the outermost span of its category — the inclusive duration.
func (t *Tracer) close() {
	n := len(t.stack)
	if n == 0 {
		return
	}
	now := t.p.Now()
	f := t.stack[n-1]
	t.stack = t.stack[:n-1]
	f.acc += now - f.last
	t.totals[f.cat] += f.acc
	t.counts[f.cat]++
	t.open[f.cat]--
	if t.open[f.cat] == 0 {
		// LIFO closing order means the last frame of a category to close
		// is the first that was opened: f.t0 is the outermost open time.
		t.inclusive[f.cat] += now - f.t0
	}
	if n > 1 {
		t.stack[n-2].last = now
	}
}

// Add records dt nanoseconds in category c directly (leaf charge: it counts
// in both the exclusive and inclusive views).
func (t *Tracer) Add(c Category, dt int64) {
	if t == nil {
		return
	}
	t.totals[c] += dt
	t.inclusive[c] += dt
	t.counts[c]++
}

// Total returns the accumulated *exclusive* nanoseconds in category c: time
// spent with c as the innermost open span. Exclusive totals of distinct
// categories never overlap, so they sum to at most the traced wall time.
func (t *Tracer) Total(c Category) int64 {
	if t == nil {
		return 0
	}
	return t.totals[c]
}

// Inclusive returns the accumulated *inclusive* nanoseconds in category c:
// the open-to-close duration of outermost spans, nested work included. This
// is the HPCToolkit-style call-path attribution the paper's Figures 4 and 8
// use (event_notify inclusive of the MPI_WIN_FLUSH_ALL it performs).
func (t *Tracer) Inclusive(c Category) int64 {
	if t == nil {
		return 0
	}
	return t.inclusive[c]
}

// Count returns how many spans/additions category c received.
func (t *Tracer) Count(c Category) int64 {
	if t == nil {
		return 0
	}
	return t.counts[c]
}

// Reset zeroes all accumulators. Open spans keep their already-captured
// frame state and will deposit on close.
func (t *Tracer) Reset() {
	if t == nil {
		return
	}
	t.totals = [numCategories]int64{}
	t.inclusive = [numCategories]int64{}
	t.counts = [numCategories]int64{}
}

// Merge adds other's accumulators into t (for cross-image aggregation).
func (t *Tracer) Merge(other *Tracer) {
	if t == nil || other == nil {
		return
	}
	for i := range t.totals {
		t.totals[i] += other.totals[i]
		t.inclusive[i] += other.inclusive[i]
		t.counts[i] += other.counts[i]
	}
}

// Line is one row of a decomposition report.
type Line struct {
	Category Category
	Seconds  float64
	Count    int64
	Percent  float64
}

// Report summarizes non-empty categories by exclusive time, largest first.
// Percentages are of the summed exclusive time (zero when nothing was
// traced), so they always total 100 across the report.
func (t *Tracer) Report() []Line {
	if t == nil {
		return nil
	}
	var total int64
	for _, v := range t.totals {
		total += v
	}
	var out []Line
	for c, v := range t.totals {
		if v == 0 && t.counts[c] == 0 {
			continue
		}
		pct := 0.0
		if total > 0 {
			pct = 100 * float64(v) / float64(total)
		}
		out = append(out, Line{Category: Category(c), Seconds: float64(v) * 1e-9, Count: t.counts[c], Percent: pct})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Seconds > out[j].Seconds })
	return out
}

// Format renders the report as an aligned text table.
func (t *Tracer) Format() string {
	lines := t.Report()
	if len(lines) == 0 {
		return "(no trace data)\n"
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%-16s %12s %10s %8s\n", "category", "seconds", "count", "percent")
	for _, l := range lines {
		fmt.Fprintf(&b, "%-16s %12.6f %10d %7.2f%%\n", l.Category, l.Seconds, l.Count, l.Percent)
	}
	return b.String()
}
