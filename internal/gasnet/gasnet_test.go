package gasnet

import (
	"bytes"
	"fmt"
	"sync/atomic"
	"testing"
	"testing/quick"

	"cafmpi/internal/fabric"
	"cafmpi/internal/sim"
)

func tp() *fabric.Params {
	return &fabric.Params{
		Name:           "test",
		LatencyNS:      1000,
		GapPerByteNS:   0.5,
		SendOverheadNS: 100,
		RecvOverheadNS: 100,
		EagerThreshold: 1024,
		FlopNS:         1,
		MemNS:          0.5,
		GASNet: fabric.GASNetCosts{
			PutNS: 100, GetNS: 100, AMNS: 80, PollNS: 20,
			PeerBytes: 256, BaseFootprint: 1 << 16,
		},
	}
}

// runGN executes fn on n images; fn attaches its own endpoint so each test
// can pass its handler table to Attach (as real GASNet clients must).
func runGN(t *testing.T, n int, fn func(p *sim.Proc, net *fabric.Net) error) {
	t.Helper()
	w := sim.NewWorld(n)
	err := w.Run(func(p *sim.Proc) error {
		return fn(p, fabric.AttachNet(p.World(), tp()))
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestAMShortRequestReply(t *testing.T) {
	const hPing, hPong HandlerID = 128, 129
	runGN(t, 2, func(p *sim.Proc, net *fabric.Net) error {
		var gotPong atomic.Uint64
		var pinged atomic.Bool
		e, err := Attach(p, net, 0,
			HandlerEntry{hPing, func(tk *Token, args []uint64, _ []byte) {
				pinged.Store(true)
				if err := tk.ReplyShort(hPong, args[0]*2); err != nil {
					panic(err)
				}
			}},
			HandlerEntry{hPong, func(_ *Token, args []uint64, _ []byte) {
				gotPong.Store(args[0])
			}},
		)
		if err != nil {
			return err
		}
		if p.ID() == 0 {
			if err := e.AMRequestShort(1, hPing, 21); err != nil {
				return err
			}
			e.PollUntil(func() bool { return gotPong.Load() != 0 })
			if gotPong.Load() != 42 {
				return fmt.Errorf("pong carried %d, want 42", gotPong.Load())
			}
		} else {
			e.PollUntil(func() bool { return pinged.Load() })
		}
		e.Barrier()
		return nil
	})
}

func TestAMMediumPayload(t *testing.T) {
	const h HandlerID = 130
	runGN(t, 2, func(p *sim.Proc, net *fabric.Net) error {
		var got atomic.Pointer[[]byte]
		e, err := Attach(p, net, 0, HandlerEntry{h, func(_ *Token, _ []uint64, payload []byte) {
			cp := append([]byte(nil), payload...)
			got.Store(&cp)
		}})
		if err != nil {
			return err
		}
		if p.ID() == 0 {
			payload := []byte("medium-payload-data")
			if err := e.AMRequestMedium(1, h, payload, 7); err != nil {
				return err
			}
		} else {
			e.PollUntil(func() bool { return got.Load() != nil })
			if string(*got.Load()) != "medium-payload-data" {
				return fmt.Errorf("payload %q", *got.Load())
			}
		}
		e.Barrier()
		return nil
	})
}

func TestAMLongDepositsIntoSegment(t *testing.T) {
	const h HandlerID = 131
	runGN(t, 2, func(p *sim.Proc, net *fabric.Net) error {
		var userArg atomic.Int64
		userArg.Store(-1)
		e, err := Attach(p, net, 256, HandlerEntry{h, func(_ *Token, args []uint64, payload []byte) {
			userArg.Store(int64(args[0]))
		}})
		if err != nil {
			return err
		}
		if p.ID() == 0 {
			if err := e.AMRequestLong(1, h, []byte("LONG"), 32, 99); err != nil {
				return err
			}
		} else {
			e.PollUntil(func() bool { return userArg.Load() >= 0 })
			if userArg.Load() != 99 {
				return fmt.Errorf("user arg %d, want 99", userArg.Load())
			}
			if string(e.Segment()[32:36]) != "LONG" {
				return fmt.Errorf("segment contents %q", e.Segment()[32:36])
			}
		}
		e.Barrier()
		return nil
	})
}

func TestAMValidation(t *testing.T) {
	runGN(t, 2, func(p *sim.Proc, net *fabric.Net) error {
		e, err := Attach(p, net, 16, HandlerEntry{128, func(*Token, []uint64, []byte) {}})
		if err != nil {
			return err
		}
		if err := e.AMRequestShort(5, 128); err == nil {
			return fmt.Errorf("bad destination accepted")
		}
		if err := e.AMRequestShort(1, 3); err == nil {
			return fmt.Errorf("system handler id accepted")
		}
		args := make([]uint64, MaxArgs+1)
		if err := e.AMRequestShort(1, 128, args...); err == nil {
			return fmt.Errorf("too many args accepted")
		}
		if err := e.AMRequestMedium(1, 128, make([]byte, MaxMedium+1)); err == nil {
			return fmt.Errorf("oversized medium accepted")
		}
		if err := e.AMRequestLong(1, 128, make([]byte, 32), 0); err == nil {
			return fmt.Errorf("long AM overflowing segment accepted")
		}
		if err := e.RegisterHandler(1, nil); err == nil {
			return fmt.Errorf("system-range registration accepted")
		}
		if err := e.RegisterHandler(128, func(*Token, []uint64, []byte) {}); err == nil {
			return fmt.Errorf("double registration accepted")
		}
		e.Barrier()
		return nil
	})
}

func TestNoProgressWithoutPoll(t *testing.T) {
	const h, hReady HandlerID = 132, 133
	runGN(t, 2, func(p *sim.Proc, net *fabric.Net) error {
		var ran, ready atomic.Bool
		e, err := Attach(p, net, 0,
			HandlerEntry{h, func(*Token, []uint64, []byte) { ran.Store(true) }},
			HandlerEntry{hReady, func(*Token, []uint64, []byte) { ready.Store(true) }})
		if err != nil {
			return err
		}
		if p.ID() == 0 {
			// Wait until image 1 is definitely past its attach barrier (whose
			// internal polling would dispatch our AM prematurely).
			e.PollUntil(func() bool { return ready.Load() })
			if err := e.AMRequestShort(1, h); err != nil {
				return err
			}
			e.Barrier()
			return nil
		}
		if err := e.AMRequestShort(0, hReady); err != nil {
			return err
		}
		// Wait until the message is definitely queued, without polling AMs.
		seq := e.fep.Seq()
		for e.fep.QueueLen() == 0 {
			seq = e.fep.WaitActivity(seq)
		}
		if ran.Load() {
			return fmt.Errorf("handler ran without a poll: GASNet progress must be explicit")
		}
		// The message is queued but may still be in virtual flight; idle
		// polls charge time, so polling converges on the arrival.
		total := 0
		for total == 0 {
			total += e.Poll()
		}
		if total != 1 {
			return fmt.Errorf("Poll dispatched %d AMs, want 1", total)
		}
		if !ran.Load() {
			return fmt.Errorf("handler did not run after Poll")
		}
		e.Barrier()
		return nil
	})
}

func TestPutGetBlocking(t *testing.T) {
	runGN(t, 3, func(p *sim.Proc, net *fabric.Net) error {
		e, err := Attach(p, net, 128)
		if err != nil {
			return err
		}
		me := p.ID()
		next := (me + 1) % 3
		data := []byte{byte(me), byte(me + 1), byte(me + 2)}
		if err := e.Put(next, 8, data); err != nil {
			return err
		}
		e.Barrier()
		prev := (me + 2) % 3
		if e.Segment()[8] != byte(prev) {
			return fmt.Errorf("segment got %d, want %d", e.Segment()[8], prev)
		}
		into := make([]byte, 3)
		if err := e.Get(next, 8, into); err != nil {
			return err
		}
		if into[0] != byte(me) {
			return fmt.Errorf("get returned %v", into)
		}
		e.Barrier()
		return nil
	})
}

func TestPutNBAndSync(t *testing.T) {
	runGN(t, 2, func(p *sim.Proc, net *fabric.Net) error {
		e, err := Attach(p, net, 64)
		if err != nil {
			return err
		}
		if p.ID() == 0 {
			h, err := e.PutNB(1, 0, []byte{1, 2, 3, 4})
			if err != nil {
				return err
			}
			e.SyncNB(h)
			if !e.TrySyncNB(h) {
				return fmt.Errorf("TrySyncNB false after SyncNB")
			}
		}
		e.Barrier()
		if p.ID() == 1 && e.Segment()[3] != 4 {
			return fmt.Errorf("segment %v", e.Segment()[:4])
		}
		return nil
	})
}

func TestNBITrackingAndSyncAll(t *testing.T) {
	runGN(t, 4, func(p *sim.Proc, net *fabric.Net) error {
		e, err := Attach(p, net, 256)
		if err != nil {
			return err
		}
		if p.ID() == 0 {
			for t := 1; t < 4; t++ {
				if err := e.PutNBI(t, 0, []byte{byte(t)}); err != nil {
					return err
				}
			}
			if e.NBIOutstanding() != 3 {
				return fmt.Errorf("outstanding %d, want 3", e.NBIOutstanding())
			}
			before := p.Now()
			e.SyncNBIAll()
			if e.NBIOutstanding() != 0 {
				return fmt.Errorf("outstanding %d after sync", e.NBIOutstanding())
			}
			if p.Now() <= before {
				return fmt.Errorf("SyncNBIAll charged no completion time")
			}
		}
		e.Barrier()
		if id := p.ID(); id != 0 && e.Segment()[0] != byte(id) {
			return fmt.Errorf("image %d segment byte %d", id, e.Segment()[0])
		}
		return nil
	})
}

func TestSyncNBIAllCostIndependentOfJobSize(t *testing.T) {
	// GASNet syncs implicit handles with O(1) counters: the fence cost must
	// not scale with N, unlike MPI_WIN_FLUSH_ALL. One put outstanding.
	fence := func(n int) int64 {
		var dt int64
		w := sim.NewWorld(n)
		if err := w.Run(func(p *sim.Proc) error {
			e, err := Attach(p, fabric.AttachNet(p.World(), tp()), 64)
			if err != nil {
				return err
			}
			if p.ID() == 0 {
				if err := e.PutNBI(n-1, 0, []byte{1}); err != nil {
					return err
				}
				t0 := p.Now()
				e.SyncNBIAll()
				dt = p.Now() - t0
			}
			e.Barrier()
			return nil
		}); err != nil {
			t.Fatal(err)
		}
		return dt
	}
	t4, t64 := fence(4), fence(64)
	if t64 != t4 {
		t.Errorf("NBI fence cost scales with job size: %d ns (P=4) vs %d ns (P=64)", t4, t64)
	}
}

func TestSegmentRangeValidation(t *testing.T) {
	runGN(t, 2, func(p *sim.Proc, net *fabric.Net) error {
		e, err := Attach(p, net, 32)
		if err != nil {
			return err
		}
		if err := e.Put(1, 30, []byte{1, 2, 3}); err == nil {
			return fmt.Errorf("put past segment end accepted")
		}
		if err := e.Get(1, -1, make([]byte, 4)); err == nil {
			return fmt.Errorf("negative offset accepted")
		}
		if err := e.Put(7, 0, []byte{1}); err == nil {
			return fmt.Errorf("bad rank accepted")
		}
		e.Barrier()
		return nil
	})
}

func TestBarrierSynchronizes(t *testing.T) {
	runGN(t, 8, func(p *sim.Proc, net *fabric.Net) error {
		e, err := Attach(p, net, 0)
		if err != nil {
			return err
		}
		if p.ID() == 5 {
			p.Advance(3_000_000)
		}
		e.Barrier()
		if p.Now() < 3_000_000 {
			return fmt.Errorf("image %d left barrier at %d ns, before image 5 entered", p.ID(), p.Now())
		}
		return nil
	})
}

func TestBarrierProgressesAMs(t *testing.T) {
	// An AM arriving while the target sits in a barrier must still be
	// dispatched (conduits poll inside blocking calls).
	const h HandlerID = 140
	runGN(t, 2, func(p *sim.Proc, net *fabric.Net) error {
		var ran atomic.Bool
		e, err := Attach(p, net, 0, HandlerEntry{h, func(*Token, []uint64, []byte) { ran.Store(true) }})
		if err != nil {
			return err
		}
		if p.ID() == 0 {
			if err := e.AMRequestShort(1, h); err != nil {
				return err
			}
		}
		e.Barrier()
		if p.ID() == 1 && !ran.Load() {
			// The AM may still be queued if it raced past the barrier
			// rounds; one poll must find it.
			e.Poll()
			if !ran.Load() {
				return fmt.Errorf("AM not dispatched during or after barrier")
			}
		}
		return nil
	})
}

func TestSRQPenaltyChargesReceive(t *testing.T) {
	// With SRQ enabled and the job at/over threshold, AM receive costs rise.
	recvCost := func(srq fabric.SRQModel) int64 {
		params := tp()
		params.GASNet.SRQ = srq
		var dt int64
		w := sim.NewWorld(4)
		if err := w.Run(func(p *sim.Proc) error {
			const h, hReady HandlerID = 128, 129
			var n atomic.Int32
			var ready atomic.Bool
			e, err := Attach(p, fabric.AttachNet(p.World(), params), 0,
				HandlerEntry{h, func(*Token, []uint64, []byte) { n.Add(1) }},
				HandlerEntry{hReady, func(*Token, []uint64, []byte) { ready.Store(true) }})
			if err != nil {
				return err
			}
			if p.ID() == 0 {
				e.PollUntil(func() bool { return ready.Load() })
				if err := e.AMRequestMedium(1, h, make([]byte, 4096)); err != nil {
					return err
				}
			}
			if p.ID() == 1 {
				if err := e.AMRequestShort(0, hReady); err != nil {
					return err
				}
				t0 := p.Now()
				e.PollUntil(func() bool { return n.Load() == 1 })
				dt = p.Now() - t0
			}
			e.Barrier()
			return nil
		}); err != nil {
			t.Fatal(err)
		}
		return dt
	}
	plain := recvCost(fabric.SRQModel{})
	srq := recvCost(fabric.SRQModel{Enabled: true, Threshold: 4, Factor: 2.5})
	if srq <= plain {
		t.Errorf("SRQ receive cost %d ns not above baseline %d ns", srq, plain)
	}
}

func TestMemoryFootprint(t *testing.T) {
	foot := func(n, seg int) int64 {
		var f int64
		w := sim.NewWorld(n)
		if err := w.Run(func(p *sim.Proc) error {
			e, err := Attach(p, fabric.AttachNet(p.World(), tp()), seg)
			if err != nil {
				return err
			}
			if p.ID() == 0 {
				f = e.MemoryFootprint()
			}
			return nil
		}); err != nil {
			t.Fatal(err)
		}
		return f
	}
	if f4, f64 := foot(4, 0), foot(64, 0); f64 <= f4 {
		t.Errorf("footprint should grow with job size: %d vs %d", f4, f64)
	}
	if fs, f0 := foot(4, 1<<20), foot(4, 0); fs-f0 != 1<<20 {
		t.Errorf("segment bytes not accounted: delta %d", fs-f0)
	}
}

// TestSparseOnDemandConnections: in scalable-sync mode Attach charges no
// per-peer rkey table — the footprint is base plus segment, independent of
// world size — and each peer's connection state is charged at first
// contact, so an image pays for the peers it talks to, not for the job.
func TestSparseOnDemandConnections(t *testing.T) {
	sparse := fabric.SparseVariant(tp())
	const segSize = 128
	const touch = 2
	foot := func(n int) (base, after int64) {
		w := sim.NewWorld(n)
		if err := w.Run(func(p *sim.Proc) error {
			e, err := Attach(p, fabric.AttachNet(p.World(), sparse), segSize)
			if err != nil {
				return err
			}
			if p.ID() == 0 {
				base = e.MemoryFootprint()
				for i := 1; i <= touch; i++ {
					if err := e.Put(i, 0, []byte{byte(i)}); err != nil {
						return err
					}
				}
				// Second contact with a connected peer charges nothing.
				if err := e.Put(1, 4, []byte{9}); err != nil {
					return err
				}
				after = e.MemoryFootprint()
			}
			e.Barrier()
			return nil
		}); err != nil {
			t.Fatal(err)
		}
		return base, after
	}
	costs := tp().GASNet
	b4, a4 := foot(4)
	b64, a64 := foot(64)
	if want := costs.BaseFootprint + segSize; b4 != want || b64 != want {
		t.Errorf("sparse attach footprint = %d, %d (P=4, P=64); want %d at both — no preallocated peer table", b4, b64, want)
	}
	if d4, d64 := a4-b4, a64-b64; d4 != touch*int64(costs.PeerBytes) || d4 != d64 {
		t.Errorf("on-demand connection deltas = %d, %d bytes (P=4, P=64); want %d at both", d4, d64, touch*int64(costs.PeerBytes))
	}
}

func TestHandlerPanicSurfacesAsImagePanic(t *testing.T) {
	w := sim.NewWorld(2)
	err := w.Run(func(p *sim.Proc) error {
		const h HandlerID = 128
		e, err := Attach(p, fabric.AttachNet(p.World(), tp()), 0,
			HandlerEntry{h, func(*Token, []uint64, []byte) { panic("handler exploded") }})
		if err != nil {
			return err
		}
		if p.ID() == 0 {
			return e.AMRequestShort(1, h)
		}
		seq := e.fep.Seq()
		for e.fep.QueueLen() == 0 {
			seq = e.fep.WaitActivity(seq)
		}
		for e.Poll() == 0 { // poll until the AM's virtual arrival passes
		}
		return nil
	})
	pe, ok := err.(*sim.PanicError)
	if !ok || pe.Image != 1 {
		t.Fatalf("want image-1 panic error, got %v", err)
	}
}

// Property: put/get round trips arbitrary data through arbitrary segment
// offsets.
func TestPutGetRoundTripProperty(t *testing.T) {
	const segSize = 256
	f := func(data []byte, off uint8) bool {
		if len(data) == 0 || len(data) > segSize {
			return true
		}
		o := int(off) % (segSize - len(data) + 1)
		ok := true
		w := sim.NewWorld(2)
		err := w.Run(func(p *sim.Proc) error {
			e, err := Attach(p, fabric.AttachNet(p.World(), tp()), segSize)
			if err != nil {
				return err
			}
			if p.ID() == 0 {
				if err := e.Put(1, o, data); err != nil {
					return err
				}
				back := make([]byte, len(data))
				if err := e.Get(1, o, back); err != nil {
					return err
				}
				ok = bytes.Equal(back, data)
			}
			e.Barrier()
			return nil
		})
		return err == nil && ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
