// Package gasnet implements a GASNet-1 style communication system: the core
// API (active messages in short/medium/long flavors with request/reply
// semantics and explicit polling progress), the extended API (one-sided
// put/get against attached segments, with blocking, non-blocking-explicit
// and non-blocking-implicit completion), and a split-phase barrier.
//
// Deliberately missing — as in the GASNet of the paper's era — are
// collectives: clients (the CAF-GASNet runtime) hand-craft them from puts,
// gets and AMs, which is the root of the FFT all-to-all gap in the paper's
// Figures 6-8.
//
// The InfiniBand conduit's Shared Receive Queue behaviour is modeled: when
// the job is large enough that the SRQ saturates (fabric.SRQModel), every
// AM receive pays a multiplied cost. RDMA puts and gets bypass the SRQ.
package gasnet

import (
	"fmt"
	"sync"

	"cafmpi/internal/fabric"
	"cafmpi/internal/faults"
	"cafmpi/internal/obs"
	"cafmpi/internal/obs/wallprof"
	"cafmpi/internal/sanitizer"
	"cafmpi/internal/sim"
)

// Limits mirroring gasnet_AMMaxArgs() and gasnet_AMMaxMedium().
const (
	MaxArgs   = 16
	MaxMedium = 8 << 10
)

// HandlerID indexes the AM handler table. GASNet reserves 0-127 for the
// system; clients register in [MinHandlerID, MaxHandlerID].
type HandlerID int

const (
	MinHandlerID HandlerID = 128
	MaxHandlerID HandlerID = 255
)

// Handler is an active-message handler. It runs on the target image's
// goroutine during a Poll. payload is nil for short AMs, a scratch buffer
// for medium AMs, and a slice of the target segment for long AMs. The
// handler may send at most one reply through the token.
type Handler func(tk *Token, args []uint64, payload []byte)

// Message classes on the gasnet fabric layer.
const (
	clsAMRequest uint8 = iota + 1
	clsAMReply
	clsBarrier
)

// AM categories carried in Message.Tag alongside the handler id.
const (
	catShort = iota
	catMedium
	catLong
)

// shared is the world-wide registry of attached segments.
type shared struct {
	mu   sync.Mutex
	segs [][]byte
}

// Ep is one image's GASNet endpoint.
type Ep struct {
	p     *sim.Proc
	net   *fabric.Net
	layer *fabric.Layer
	fep   *fabric.Endpoint
	sh    *shared

	handlers [256]Handler
	segment  []byte

	// Implicit-handle (NBI) op tracking: the latest remote completion time
	// of outstanding implicit puts/gets. GASNet tracks these with O(1)
	// counters, so syncing them does not scale with job size — unlike
	// MPI_WIN_FLUSH_ALL's per-rank scan.
	nbiRemote int64
	nbiCount  int

	// Scalable-sync mode (fabric.Params.SparseSync): per-peer segment
	// registration metadata is charged on first contact instead of for the
	// whole world at Attach, and nbiDirty tracks which peers the current
	// NBI access region touched so SyncNBIAll can fence exactly those for
	// the sanitizer. worldScratch is the reusable sorted-rank buffer.
	sparse       bool
	connected    fabric.PeerSet
	nbiDirty     fabric.PeerSet
	peerBytes    int64
	worldScratch []int

	barrierGen int
	footprint  int64

	// Cached endpoint match specs with filters bound once at Attach, so the
	// poll and barrier paths allocate no per-call closures. brTag/brSrc stage
	// the current barrier round for brSpec's filter. An Ep is private to its
	// image's goroutine, so mutating them between calls is unshared state.
	amSpec fabric.MatchSpec // any active message (request or reply)
	brSpec fabric.MatchSpec // AMs, plus the staged barrier-round message
	brTag  int
	brSrc  int

	// longArgs is scratch for AMRequestLong's (offset, length) arg prefix;
	// Send copies args out before returning, so reuse across calls is safe.
	longArgs [MaxArgs + 2]uint64

	// osh is this image's observability shard, nil when off; cached at
	// Attach so AM and RDMA hot paths pay a nil check only.
	osh *obs.Shard
	san *sanitizer.Image // nil when sanitizing is off (methods are nil-safe)
	flt *faults.State    // world failure latch, nil-safe when faults are off
	wp  *wallprof.Rec    // wall-clock recorder, nil when wallprof is off
}

// HandlerEntry binds a handler id to its function for Attach, mirroring
// the gasnet_handlerentry_t table passed to gasnet_attach.
type HandlerEntry struct {
	ID HandlerID
	Fn Handler
}

// Attach initializes the endpoint with a segment of segSize bytes and the
// given AM handler table, registers the segment world-wide, and
// synchronizes with all other images (every image must call Attach before
// any returns). As in real GASNet, the handler table is fixed at attach
// time: the attach barrier itself polls AMs, so handlers must exist before
// any peer can target them. RegisterHandler can add more afterwards, but
// only for ids no peer uses before the registration is globally ordered
// (e.g. by a barrier).
func Attach(p *sim.Proc, net *fabric.Net, segSize int, handlers ...HandlerEntry) (*Ep, error) {
	if segSize < 0 {
		return nil, fmt.Errorf("gasnet: negative segment size %d", segSize)
	}
	sh := p.World().Shared("gasnet.segs", func() any {
		return &shared{segs: make([][]byte, p.N())}
	}).(*shared)
	e := &Ep{
		p:     p,
		net:   net,
		layer: net.Layer("gasnet"),
		sh:    sh,
	}
	e.fep = e.layer.Endpoint(p.ID())
	e.osh = obs.For(p)
	e.san = sanitizer.For(p)
	e.flt = faults.Enabled(p.World())
	e.wp = wallprof.For(p)
	e.amSpec = fabric.MatchSpec{Classes: fabric.Classes(clsAMRequest, clsAMReply), Src: fabric.AnySrc}
	e.brSpec = fabric.MatchSpec{Classes: fabric.Classes(clsAMRequest, clsAMReply, clsBarrier), Src: fabric.AnySrc, Filter: e.barrierFilter}
	e.segment = make([]byte, segSize)
	sh.mu.Lock()
	sh.segs[p.ID()] = e.segment
	sh.mu.Unlock()

	for _, h := range handlers {
		if err := e.RegisterHandler(h.ID, h.Fn); err != nil {
			return nil, err
		}
	}

	// Per-peer segment registration metadata: the conduit normally pins and
	// exchanges rkeys for every peer's segment at attach (footprint grows
	// with the world, Figure 1); scalable-sync mode registers peers on
	// first contact instead.
	c := net.Params().GASNet
	e.sparse = net.Params().SparseSync()
	if e.sparse {
		e.connected.Init(p.N())
		e.nbiDirty.Init(p.N())
		e.peerBytes = int64(c.PeerBytes)
		e.footprint = c.BaseFootprint + int64(segSize)
	} else {
		e.footprint = c.BaseFootprint + int64(p.N()*c.PeerBytes) + int64(segSize)
	}

	// Everyone must see every segment before one-sided traffic starts.
	if err := e.Barrier(); err != nil {
		return nil, err
	}
	return e, nil
}

// Proc returns the owning image.
func (e *Ep) Proc() *sim.Proc { return e.p }

// Segment returns the local attached segment.
func (e *Ep) Segment() []byte { return e.segment }

// MemoryFootprint returns the bytes held by this GASNet instance: conduit
// state, per-peer segment registration metadata, and the segment itself.
// GASNet keeps most metadata in user-space buffers, so this is far smaller
// than an MPI instance (paper Figure 1).
func (e *Ep) MemoryFootprint() int64 { return e.footprint }

// RegisterHandler installs fn at id. Handlers must be registered before
// any image sends to them; ids must be in the client range.
func (e *Ep) RegisterHandler(id HandlerID, fn Handler) error {
	if id < MinHandlerID || id > MaxHandlerID {
		return fmt.Errorf("gasnet: handler id %d outside client range [%d,%d]", id, MinHandlerID, MaxHandlerID)
	}
	if e.handlers[id] != nil {
		return fmt.Errorf("gasnet: handler id %d already registered", id)
	}
	e.handlers[id] = fn
	return nil
}

func (e *Ep) costs() *fabric.GASNetCosts { return &e.net.Params().GASNet }

func (e *Ep) checkAM(dst int, h HandlerID, args []uint64, payload []byte, cat int) error {
	if dst < 0 || dst >= e.p.N() {
		return fmt.Errorf("gasnet: AM destination %d out of range", dst)
	}
	if h < MinHandlerID || h > MaxHandlerID {
		return fmt.Errorf("gasnet: AM handler id %d outside client range", h)
	}
	if len(args) > MaxArgs {
		return fmt.Errorf("gasnet: %d AM arguments exceed MaxArgs=%d", len(args), MaxArgs)
	}
	if cat == catMedium && len(payload) > MaxMedium {
		return fmt.Errorf("gasnet: medium AM payload %d exceeds MaxMedium=%d", len(payload), MaxMedium)
	}
	return nil
}

// AMRequestShort sends a short active message carrying only integer args.
func (e *Ep) AMRequestShort(dst int, h HandlerID, args ...uint64) error {
	if err := e.checkAM(dst, h, args, nil, catShort); err != nil {
		return err
	}
	t0 := e.p.Now()
	m := fabric.NewMessage()
	m.Dst, m.Class, m.Ctx, m.Tag, m.Args = dst, clsAMRequest, int(h), catShort, args
	if err := e.layer.Send(e.p, m); err != nil {
		return err
	}
	e.noteAMSent(dst, 0, h, t0)
	return nil
}

// AMRequestMedium sends an AM with an opaque payload delivered to a
// temporary buffer at the target.
func (e *Ep) AMRequestMedium(dst int, h HandlerID, payload []byte, args ...uint64) error {
	if err := e.checkAM(dst, h, args, payload, catMedium); err != nil {
		return err
	}
	t0 := e.p.Now()
	m := fabric.NewMessage()
	m.Dst, m.Class, m.Ctx, m.Tag, m.Args, m.Data = dst, clsAMRequest, int(h), catMedium, args, payload
	if err := e.layer.Send(e.p, m); err != nil {
		return err
	}
	e.noteAMSent(dst, len(payload), h, t0)
	return nil
}

// AMRequestLong sends an AM whose payload is deposited at dstOff in the
// target's segment before the handler runs.
func (e *Ep) AMRequestLong(dst int, h HandlerID, payload []byte, dstOff int, args ...uint64) error {
	if err := e.checkAM(dst, h, args, payload, catLong); err != nil {
		return err
	}
	seg := e.seg(dst)
	if dstOff < 0 || dstOff+len(payload) > len(seg) {
		return fmt.Errorf("gasnet: long AM payload [%d,%d) outside target segment of %d bytes", dstOff, dstOff+len(payload), len(seg))
	}
	// The payload travels as RDMA alongside the AM header: deposit it now
	// (claiming the target NIC); the header message, which triggers the
	// handler, carries the landing location.
	copy(seg[dstOff:], payload)
	pr := e.net.Params()
	t0 := e.p.Now()
	e.p.Advance(pr.PathWireTime(e.p.ID(), dst, len(payload)))
	e.net.ClaimNIC(dst, e.p.Now()+pr.PathLatency(e.p.ID(), dst), pr.PathWireTime(e.p.ID(), dst, len(payload)))
	e.longArgs[0], e.longArgs[1] = uint64(dstOff), uint64(len(payload))
	copy(e.longArgs[2:], args)
	m := fabric.NewMessage()
	m.Dst, m.Class, m.Ctx, m.Tag = dst, clsAMRequest, int(h), catLong
	m.Args = e.longArgs[: 2+len(args) : 2+len(args)]
	if err := e.layer.Send(e.p, m); err != nil {
		return err
	}
	e.noteAMSent(dst, len(payload), h, t0)
	return nil
}

// connect charges per-peer segment registration metadata for dst on first
// contact (scalable-sync mode only; no-op otherwise). All AM and RDMA
// issue paths funnel through it.
func (e *Ep) connect(dst int) {
	if !e.sparse || dst == e.p.ID() {
		return
	}
	if e.connected.Add(dst) {
		e.footprint += e.peerBytes
	}
}

// noteAMSent records an AM-send event and counter.
func (e *Ep) noteAMSent(dst, plen int, h HandlerID, t0 int64) {
	e.connect(dst)
	if e.osh == nil {
		return
	}
	e.osh.Record(obs.LayerGASNet, obs.OpAMSend, dst, plen, int(h), t0, e.p.Now())
	e.osh.Add(obs.CtrAMsSent, 1)
}

// Token is the reply capability passed to AM handlers.
type Token struct {
	ep      *Ep
	src     int
	replied bool
}

// Src returns the requesting image.
func (tk *Token) Src() int { return tk.src }

// ReplyShort sends the (single permitted) short reply to the requester.
func (tk *Token) ReplyShort(h HandlerID, args ...uint64) error {
	if tk.replied {
		return fmt.Errorf("gasnet: handler already replied")
	}
	if err := tk.ep.checkAM(tk.src, h, args, nil, catShort); err != nil {
		return err
	}
	tk.replied = true
	t0 := tk.ep.p.Now()
	m := fabric.NewMessage()
	m.Dst, m.Class, m.Ctx, m.Tag, m.Args = tk.src, clsAMReply, int(h), catShort, args
	if err := tk.ep.layer.Send(tk.ep.p, m); err != nil {
		return err
	}
	tk.ep.noteAMSent(tk.src, 0, h, t0)
	return nil
}

// ReplyMedium sends the single permitted medium reply.
func (tk *Token) ReplyMedium(h HandlerID, payload []byte, args ...uint64) error {
	if tk.replied {
		return fmt.Errorf("gasnet: handler already replied")
	}
	if err := tk.ep.checkAM(tk.src, h, args, payload, catMedium); err != nil {
		return err
	}
	tk.replied = true
	t0 := tk.ep.p.Now()
	m := fabric.NewMessage()
	m.Dst, m.Class, m.Ctx, m.Tag, m.Args, m.Data = tk.src, clsAMReply, int(h), catMedium, args, payload
	if err := tk.ep.layer.Send(tk.ep.p, m); err != nil {
		return err
	}
	tk.ep.noteAMSent(tk.src, len(payload), h, t0)
	return nil
}

// barrierFilter passes any active message (blocking barrier rounds poll AMs,
// as conduits do inside blocking calls) plus the one barrier message of the
// round staged in brTag/brSrc. It runs under the endpoint lock.
func (e *Ep) barrierFilter(m *fabric.Message) bool {
	if m.Class != clsBarrier {
		return true
	}
	return m.Tag == e.brTag && m.Src == e.brSrc
}

// Poll drains and dispatches the queued active messages that have arrived
// in virtual time, running their handlers on this goroutine. It returns
// the number of AMs processed. GASNet progress is explicit: no handler
// runs unless the image polls (or blocks inside a GASNet call that polls).
// Delivery is gated on virtual time: a message whose arrival stamp is in
// this image's future has not physically arrived yet; dispatching it early
// would advance the local clock to the (possibly far-ahead) sender's time
// and let skew compound across images.
func (e *Ep) Poll() int {
	e.osh.Add(obs.CtrPolls, 1)
	n := 0
	for {
		e.amSpec.Before = e.p.Now()
		m, _ := e.fep.TryRecvSpec(&e.amSpec)
		if m == nil {
			if n == 0 {
				e.p.Advance(e.costs().PollNS)
			}
			return n
		}
		e.dispatch(m)
		n++
	}
}

func (e *Ep) dispatch(m *fabric.Message) {
	c := e.costs()
	plen := len(m.Data)
	if m.Tag == catLong {
		plen = int(m.Args[1])
	}
	// SRQ saturation: once the job exceeds the shared receive queue's
	// threshold, every AM queues behind other processes' receive traffic —
	// modeled as an extra delivery delay of (factor-1) x (wire latency +
	// receive path) per message, which is what halves RandomAccess on
	// Fusion beyond 128 ranks (Figure 3).
	extra := c.AMNS
	if pen := c.SRQ.Penalty(e.p.N()); pen > 1 {
		extra += int64((pen - 1) * float64(e.net.Params().LatencyNS+e.net.Params().RecvOverheadNS+e.net.Params().WireTime(plen)))
	}
	t0 := e.p.Now()
	e.layer.AbsorbAM(e.p, m, c.AMNS, extra-c.AMNS)
	if e.osh != nil {
		e.osh.Record(obs.LayerGASNet, obs.OpAMDeliver, m.Src, plen, m.Ctx, t0, e.p.Now())
		e.osh.Add(obs.CtrAMsDelivered, 1)
		// The SRQ stall is the delivery cost beyond the base AM overhead.
		e.osh.Add(obs.CtrSRQStallNS, extra-c.AMNS)
		if extra > c.AMNS {
			e.osh.Add(obs.CtrSRQStalls, 1)
		}
	}

	h := e.handlers[m.Ctx]
	if h == nil {
		panic(fmt.Sprintf("gasnet: image %d received AM for unregistered handler %d", e.p.ID(), m.Ctx))
	}
	// Host-time blame for handler execution only (wallprof SiteGASNetAM):
	// the absorb above is already covered by SiteFabricAbsorb, so the two
	// sites stay disjoint for the divergence report's residual math.
	wt := e.wp.Begin(wallprof.SiteGASNetAM)
	tk := &Token{ep: e, src: m.Src}
	switch m.Tag {
	case catShort:
		h(tk, m.Args, nil)
	case catMedium:
		h(tk, m.Args, m.Data)
	case catLong:
		off, ln := int(m.Args[0]), int(m.Args[1])
		h(tk, m.Args[2:], e.segment[off:off+ln])
	}
	e.wp.End(wallprof.SiteGASNetAM, wt)
	// GASNet handlers may not retain args or payload past their return
	// (medium payloads are explicitly scratch), so the message recycles here.
	m.Release()
}

// PollUntil polls until cond becomes true. While blocked it advances
// virtual time to the earliest queued arrival (a blocking poll *is* a
// virtual-time wait) and otherwise parks until real activity. It returns
// early with a typed error when the world's failure latch trips, so waits
// on a crashed peer unblock instead of deadlocking.
func (e *Ep) PollUntil(cond func() bool) error {
	for {
		seq := e.fep.Seq()
		e.Poll()
		if cond() {
			return nil
		}
		if err := e.flt.ErrOp("poll_until"); err != nil {
			return err
		}
		if st := e.fep.PollStateFor(&e.amSpec); st.HasEarliest {
			e.p.AdvanceTo(st.Earliest)
			continue
		}
		e.fep.WaitActivity(seq)
	}
}

// seg returns image dst's segment (after Attach's barrier this is stable).
func (e *Ep) seg(dst int) []byte {
	e.sh.mu.Lock()
	defer e.sh.mu.Unlock()
	return e.sh.segs[dst]
}

func (e *Ep) checkSeg(dst, off, n int, what string) error {
	if dst < 0 || dst >= e.p.N() {
		return fmt.Errorf("gasnet: %s destination %d out of range", what, dst)
	}
	if s := e.seg(dst); off < 0 || off+n > len(s) {
		return fmt.Errorf("gasnet: %s range [%d,%d) outside segment of %d bytes", what, off, off+n, len(s))
	}
	return nil
}

// Handle is an explicit non-blocking operation handle (gasnet_handle_t).
type Handle struct {
	localT  int64
	remoteT int64
}

// Put writes src into dst's segment at dstOff and blocks until the write is
// globally complete (gasnet_put semantics).
func (e *Ep) Put(dst, dstOff int, src []byte) error {
	h, err := e.PutNB(dst, dstOff, src)
	if err != nil {
		return err
	}
	e.p.AdvanceTo(h.remoteT)
	return nil
}

// PutNB starts a non-blocking put and returns an explicit handle. Syncing
// the handle waits for *local* completion (source buffer reusable); the
// handle also records remote completion for quiet-style fences.
func (e *Ep) PutNB(dst, dstOff int, src []byte) (*Handle, error) {
	if err := e.checkSeg(dst, dstOff, len(src), "put"); err != nil {
		return nil, err
	}
	e.connect(dst)
	t0 := e.p.Now()
	done := e.layer.RMAPut(e.p, dst, len(src), e.costs().PutNS)
	copy(e.seg(dst)[dstOff:], src)
	if e.osh != nil {
		e.osh.Record(obs.LayerGASNet, obs.OpPut, dst, len(src), 0, t0, e.p.Now())
		e.osh.Add(obs.CtrRDMAPuts, 1)
		e.osh.Add(obs.CtrRDMABytes, int64(len(src)))
	}
	return &Handle{localT: e.p.Now(), remoteT: done}, nil
}

// PutNBI starts an implicitly-handled put; SyncNBIAll fences all of them.
func (e *Ep) PutNBI(dst, dstOff int, src []byte) error {
	h, err := e.PutNB(dst, dstOff, src)
	if err != nil {
		return err
	}
	e.noteNBI(h, dst)
	return nil
}

// Get reads from dst's segment at dstOff into into, blocking until the data
// is valid (gasnet_get semantics).
func (e *Ep) Get(dst, dstOff int, into []byte) error {
	h, err := e.GetNB(dst, dstOff, into)
	if err != nil {
		return err
	}
	e.p.AdvanceTo(h.localT)
	return nil
}

// GetNB starts a non-blocking get. The data lands in into; it must not be
// read until the handle syncs.
func (e *Ep) GetNB(dst, dstOff int, into []byte) (*Handle, error) {
	if err := e.checkSeg(dst, dstOff, len(into), "get"); err != nil {
		return nil, err
	}
	e.connect(dst)
	t0 := e.p.Now()
	e.p.Advance(e.costs().GetNS)
	copy(into, e.seg(dst)[dstOff:])
	pr := e.net.Params()
	done := e.p.Now() + 2*pr.PathLatency(e.p.ID(), dst) + pr.PathWireTime(e.p.ID(), dst, len(into))
	e.noteGet(dst, len(into), t0)
	return &Handle{localT: done, remoteT: done}, nil
}

// noteGet records a one-sided read's event, counters, and comm-matrix entry.
func (e *Ep) noteGet(dst, n int, t0 int64) {
	if e.osh == nil {
		return
	}
	e.osh.Record(obs.LayerGASNet, obs.OpGet, dst, n, 0, t0, e.p.Now())
	e.osh.Add(obs.CtrRDMAGets, 1)
	e.osh.Add(obs.CtrRDMABytes, int64(n))
	e.osh.CommAdd(dst, int64(n))
}

// GetNBI is the implicit-handle form of GetNB.
func (e *Ep) GetNBI(dst, dstOff int, into []byte) error {
	h, err := e.GetNB(dst, dstOff, into)
	if err != nil {
		return err
	}
	e.noteNBI(h, dst)
	return nil
}

// noteNBI folds a handle into the implicit access region. dst feeds the
// sparse mode's dirty set so SyncNBIAll knows which peers' deferred gets
// it actually completes.
func (e *Ep) noteNBI(h *Handle, dst int) {
	if h.remoteT > e.nbiRemote {
		e.nbiRemote = h.remoteT
	}
	e.nbiCount++
	if e.sparse {
		e.nbiDirty.Add(dst)
	}
}

// SyncNB blocks until the explicit handle's operation completes locally.
func (e *Ep) SyncNB(h *Handle) {
	t0 := e.p.Now()
	e.p.AdvanceTo(h.localT)
	if end := e.p.Now(); e.osh != nil && end > t0 {
		e.osh.Record(obs.LayerGASNet, obs.OpNBISync, -1, 0, 0, t0, end)
	}
}

// TrySyncNB reports whether the handle has completed without blocking.
func (e *Ep) TrySyncNB(h *Handle) bool {
	return e.p.Now() >= h.localT
}

// SyncNBIAll fences every outstanding implicit operation to *global*
// completion. The IB conduit tracks these with O(1) completion counters,
// so the cost does not scale with the number of peers — contrast with
// MPI_WIN_FLUSH_ALL's per-rank scan (paper §4.1).
func (e *Ep) SyncNBIAll() {
	t0 := e.p.Now()
	synced := e.nbiCount
	e.p.Advance(e.costs().PollNS)
	pre := e.p.Now()
	e.p.AdvanceTo(e.nbiRemote)
	e.nbiCount = 0
	e.nbiRemote = 0
	// NBI sync completes implicit gets: their destinations become defined.
	// In scalable-sync mode only the peers the access region touched gain
	// the happens-before edge; gets from untouched peers stay undefined so
	// the sanitizer still catches reads racing with them.
	if e.sparse {
		e.worldScratch = e.nbiDirty.AppendSorted(e.worldScratch[:0])
		e.san.FenceLocalPeers(e.worldScratch)
		e.nbiDirty.Clear()
	} else {
		e.san.FenceLocal()
	}
	if e.osh != nil {
		end := e.p.Now()
		e.osh.Record(obs.LayerGASNet, obs.OpNBISync, -1, 0, synced, t0, end)
		e.osh.Add(obs.CtrNBISyncs, 1)
		if end > t0 {
			ed := obs.Edge{Layer: obs.LayerGASNet, Op: obs.OpNBISync,
				Peer: -1, Start: t0, End: end}
			ed.AddComp(obs.CompOverhead, e.costs().PollNS)
			ed.AddComp(obs.CompFlushWait, end-pre)
			e.osh.RecordEdge(ed)
		}
	}
}

// NBIOutstanding returns the number of unsynced implicit operations.
func (e *Ep) NBIOutstanding() int { return e.nbiCount }

// BarrierNotify begins a split-phase barrier (gasnet_barrier_notify). It
// returns a typed error when the failure latch trips mid-barrier (ULFM
// semantics: collectives over a dead image fail rather than hang).
func (e *Ep) BarrierNotify() error {
	n := e.p.N()
	gen := e.barrierGen
	e.barrierGen++
	for k, round := 1, 0; k < n; k, round = k<<1, round+1 {
		dst := (e.p.ID() + k) % n
		bm := fabric.NewMessage()
		bm.Dst, bm.Class, bm.Tag = dst, clsBarrier, gen*64+round
		if err := e.layer.Send(e.p, bm); err != nil {
			return err
		}
		// Wait for this round's message, progressing AMs that have arrived
		// meanwhile (conduits poll inside blocking calls).
		e.brTag = gen*64 + round
		e.brSrc = (e.p.ID() - k + n) % n
		for {
			m, err := e.blockingRecv(&e.brSpec)
			if err != nil {
				return err
			}
			if m.Class == clsBarrier {
				e.layer.Absorb(e.p, m, 0)
				m.Release()
				break
			}
			e.dispatch(m)
		}
	}
	return nil
}

// blockingRecv returns the next message matching spec, preferring ones that
// have arrived in virtual time and advancing the clock to the earliest
// matching arrival when only future ones are queued. It unblocks with a
// typed error when the failure latch trips.
func (e *Ep) blockingRecv(spec *fabric.MatchSpec) (*fabric.Message, error) {
	for {
		seq := e.fep.Seq()
		spec.Before = e.p.Now()
		m, st := e.fep.TryRecvSpec(spec)
		if m != nil {
			return m, nil
		}
		if err := e.flt.ErrOp("recv"); err != nil {
			return nil, err
		}
		if st.HasEarliest {
			e.p.AdvanceTo(st.Earliest)
			continue
		}
		e.fep.WaitActivity(seq)
	}
}

// BarrierWait completes the split-phase barrier. The dissemination work is
// performed in BarrierNotify; Wait is the completion point.
func (e *Ep) BarrierWait() error { return nil }

// Barrier is the blocking composition of notify and wait.
func (e *Ep) Barrier() error {
	if err := e.BarrierNotify(); err != nil {
		return err
	}
	return e.BarrierWait()
}

// Registered-memory RDMA: real GASNet conduits can target any registered
// remote memory (firehose), not just the attached segment. The CAF-GASNet
// runtime uses these to serve coarrays allocated outside the segment. The
// caller resolves the remote slab; costs are identical to segment puts.

func (e *Ep) checkReg(dst, off, n int, mem []byte, what string) error {
	if dst < 0 || dst >= e.p.N() {
		return fmt.Errorf("gasnet: %s destination %d out of range", what, dst)
	}
	if off < 0 || off+n > len(mem) {
		return fmt.Errorf("gasnet: %s range [%d,%d) outside registered region of %d bytes", what, off, off+n, len(mem))
	}
	return nil
}

// PutRegisteredNB starts a non-blocking RDMA write into registered remote
// memory mem (owned by image dst) at off.
func (e *Ep) PutRegisteredNB(dst int, mem []byte, off int, src []byte) (*Handle, error) {
	if err := e.checkReg(dst, off, len(src), mem, "put"); err != nil {
		return nil, err
	}
	e.connect(dst)
	t0 := e.p.Now()
	done := e.layer.RMAPut(e.p, dst, len(src), e.costs().PutNS)
	copy(mem[off:], src)
	if e.osh != nil {
		e.osh.Record(obs.LayerGASNet, obs.OpPut, dst, len(src), 0, t0, e.p.Now())
		e.osh.Add(obs.CtrRDMAPuts, 1)
		e.osh.Add(obs.CtrRDMABytes, int64(len(src)))
	}
	return &Handle{localT: e.p.Now(), remoteT: done}, nil
}

// PutRegistered blocks until the write is globally complete.
func (e *Ep) PutRegistered(dst int, mem []byte, off int, src []byte) error {
	h, err := e.PutRegisteredNB(dst, mem, off, src)
	if err != nil {
		return err
	}
	e.p.AdvanceTo(h.remoteT)
	return nil
}

// PutRegisteredNBI is the implicit-handle form; SyncNBIAll fences it.
func (e *Ep) PutRegisteredNBI(dst int, mem []byte, off int, src []byte) error {
	h, err := e.PutRegisteredNB(dst, mem, off, src)
	if err != nil {
		return err
	}
	e.noteNBI(h, dst)
	return nil
}

// GetRegisteredNB starts a non-blocking RDMA read from registered remote
// memory.
func (e *Ep) GetRegisteredNB(dst int, mem []byte, off int, into []byte) (*Handle, error) {
	if err := e.checkReg(dst, off, len(into), mem, "get"); err != nil {
		return nil, err
	}
	e.connect(dst)
	t0 := e.p.Now()
	e.p.Advance(e.costs().GetNS)
	copy(into, mem[off:])
	pr := e.net.Params()
	done := e.p.Now() + 2*pr.PathLatency(e.p.ID(), dst) + pr.PathWireTime(e.p.ID(), dst, len(into))
	e.noteGet(dst, len(into), t0)
	return &Handle{localT: done, remoteT: done}, nil
}

// GetRegistered blocks until the data is valid.
func (e *Ep) GetRegistered(dst int, mem []byte, off int, into []byte) error {
	h, err := e.GetRegisteredNB(dst, mem, off, into)
	if err != nil {
		return err
	}
	e.p.AdvanceTo(h.localT)
	return nil
}

// GetRegisteredNBI is the implicit-handle form.
func (e *Ep) GetRegisteredNBI(dst int, mem []byte, off int, into []byte) error {
	h, err := e.GetRegisteredNB(dst, mem, off, into)
	if err != nil {
		return err
	}
	e.noteNBI(h, dst)
	return nil
}
