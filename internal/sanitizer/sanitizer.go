// Package sanitizer is the dynamic PGAS data-race and RMA-usage sanitizer
// behind `cafrun -sanitize`. It shadows every coarray window with an access
// history and maintains one vector clock per image, merged at the runtime's
// synchronization points — event notify/wait, collectives, finish, active
// message delivery, cofence — to decide whether two conflicting accesses
// are ordered by happens-before. Unordered conflicts are the relaxed-
// consistency bugs MPI-3 one-sided programs are notorious for (Gerstenberger
// et al.; the paper's §3.1 mapping of coarray writes onto MPI_PUT under a
// passive lock_all epoch makes them trivially easy to write): an
// unsynchronized Put racing a local read, two images putting overlapping
// ranges, a Get overlapping a concurrent Put.
//
// The happens-before model, acquire/release edges:
//
//   - event notify -> event wait/trywait on the same slot (release: the
//     notifier's clock is published with the credit; acquire: the waiter
//     joins it). This covers SyncImages, which rides the event path.
//   - every runtime active message -> its delivery (spawned functions,
//     copy-puts and collective AMs execute on the target's goroutine
//     strictly after injection).
//   - team collectives (barrier, bcast, reduce, allreduce, allgather,
//     alltoall, and the collective allocations built on them): every
//     member joins every member's entry clock. For rooted collectives this
//     over-synchronizes — the sanitizer then misses races a bcast would
//     permit, but never reports a false positive.
//   - finish: its termination allreduce is a collective, giving the §3.5
//     "globally complete" edge.
//
// Accesses are recorded at issue with the issuing image's current clock:
// a deferred put is modeled as writing from its issue point until the
// issuer's next release, which is exactly the window in which MPI-3 allows
// the data to land.
//
// The second report class is RMA ordering misuse (the paper's §3.1/§3.5
// rules): reading the destination buffer of an implicitly synchronized Get
// before the cofence/fence that completes it, and — via hooks in
// internal/mpi — window access outside a passive-target epoch.
//
// The sanitizer is clock-pure: it never advances virtual time, so clocks
// and goldens are bit-exact with it on or off. All bookkeeping lives in one
// world-shared registry guarded by a host mutex; per-image vector clocks
// are touched only from the owning image's goroutine.
package sanitizer

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"unsafe"

	"cafmpi/internal/obs/wallprof"
	"cafmpi/internal/sim"
)

const worldKey = "sanitizer.world"

// cellCap bounds the access history kept per (coarray, owner) shadow cell;
// older records are evicted first-in-first-out. Evictions are counted and
// surfaced in the report header so silent coverage loss is visible.
const cellCap = 4096

// Access kinds.
const (
	kindWrite  uint8 = 1 << 0 // the access mutates the range
	kindRemote uint8 = 1 << 1 // issued by a non-owner through the fabric
)

// Access is one recorded window access, as shown in reports.
type Access struct {
	Image int    // issuing image (world rank)
	Op    string // "Put", "GetDeferred", "local read", ...
	Off   int    // byte offset within the owner's window
	Len   int
	Time  int64 // issuing image's virtual clock, ns
	Write bool
}

func (a Access) String() string {
	mode := "read"
	if a.Write {
		mode = "write"
	}
	return fmt.Sprintf("image %d %s [%d,%d) (%s, t=%dns)", a.Image, mode, a.Off, a.Off+a.Len, a.Op, a.Time)
}

// Report is one sanitizer finding.
type Report struct {
	Class   string // "data-race" or "rma-order"
	Coarray uint64 // runtime id of the coarray (0 when not window-scoped)
	Owner   int    // image owning the accessed window portion (-1 when n/a)
	Earlier Access // for data races: the two unordered accesses
	Later   Access
	Detail  string // for rma-order findings: the violation
}

func (r *Report) String() string {
	if r.Class == "data-race" {
		return fmt.Sprintf("data race on coarray %d, image %d's window: %s unordered with %s",
			r.Coarray, r.Owner, r.Earlier, r.Later)
	}
	return fmt.Sprintf("rma-order: %s", r.Detail)
}

// rec is the internal shadow-cell record: epoch instead of a full clock.
type rec struct {
	img   int32
	kind  uint8
	epoch uint64
	off   int
	end   int
	t     int64
	op    string
}

// cell is the bounded access history of one (coarray, owner) window.
type cell struct {
	recs    []rec
	evicted int64
}

type cellKey struct {
	co    uint64
	owner int32
}

type slotKey struct {
	evs   uint64
	owner int32
	slot  int32
}

type pairKey struct {
	src int32
	dst int32
}

type collKey struct {
	team  uint64
	round uint64
}

type collRound struct {
	clocks []*vclock
	// joined is the round's materialized shared base (full-world rounds
	// above the dense threshold only), built once on first acquiring exit.
	joined *baseClock
	exits  int
	size   int
}

// World is the per-sim.World sanitizer registry.
type World struct {
	n      int
	images []*Image

	mu    sync.Mutex
	cells map[cellKey]*cell // guarded by mu
	// slotVCs holds one running-join clock per event slot: every publish
	// joins into it, every acquire joins from it. With counting-semaphore
	// events a credit cannot be matched to its notifier, so the FIFO pairing
	// an exact model wants is unsound (a wait could join the wrong
	// notifier's clock and miss the true edge — a false positive). The
	// running join errs only toward extra edges: it can hide a race between
	// two notifiers of a shared slot, never invent one.
	slotVCs map[slotKey]*vclock    // guarded by mu
	amVCs   map[pairKey][]*vclock  // FIFO of release clocks per AM channel; guarded by mu
	rounds  map[collKey]*collRound // guarded by mu
	reports []*Report              // guarded by mu
	seen    map[string]bool        // guarded by mu
	evicted int64
	baseSeq uint64 // orders materialized baseClocks; guarded by mu
}

// Enable returns the world's sanitizer registry, creating it on first call.
// core.Boot calls it (before constructing the substrate) when the job runs
// with Config.Sanitize.
func Enable(w *sim.World) *World {
	return w.Shared(worldKey, func() any {
		sw := &World{
			n:       w.N(),
			cells:   make(map[cellKey]*cell),
			slotVCs: make(map[slotKey]*vclock),
			amVCs:   make(map[pairKey][]*vclock),
			rounds:  make(map[collKey]*collRound),
			seen:    make(map[string]bool),
		}
		sw.images = make([]*Image, w.N())
		for i := range sw.images {
			// Dense clock at or below denseClockThreshold (historical
			// behaviour, bit-exact); base+delta sparse clock above, so a
			// fresh image owns O(1) clock state regardless of world size.
			sw.images[i] = &Image{w: sw, id: i, vc: newVClock(w.N(), i), collSeq: make(map[uint64]uint64)}
		}
		return sw
	}).(*World)
}

// Enabled returns the world's registry if Enable was ever called, else nil.
func Enabled(w *sim.World) *World {
	if w == nil {
		return nil
	}
	if v, ok := w.Peek(worldKey); ok {
		return v.(*World)
	}
	return nil
}

// For returns image p's sanitizer handle, or nil when sanitizing is off.
// Every method on a nil *Image is a no-op, so call sites need no guards.
func For(p *sim.Proc) *Image {
	sw := Enabled(p.World())
	if sw == nil {
		return nil
	}
	im := sw.images[p.ID()]
	im.p = p
	im.wp = wallprof.For(p)
	return im
}

// Count returns the number of distinct findings (0 on a nil registry).
func (w *World) Count() int {
	if w == nil {
		return 0
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	return len(w.reports)
}

// Reports returns the findings in a deterministic order.
func (w *World) Reports() []*Report {
	if w == nil {
		return nil
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	out := append([]*Report(nil), w.reports...)
	sort.Slice(out, func(i, j int) bool { return out[i].String() < out[j].String() })
	return out
}

// Text renders the findings as the block cafrun prints after the run.
func (w *World) Text() string {
	if w == nil {
		return ""
	}
	reps := w.Reports()
	w.mu.Lock()
	evicted := w.evicted
	w.mu.Unlock()
	var b strings.Builder
	fmt.Fprintf(&b, "sanitizer: %d finding(s)\n", len(reps))
	if evicted > 0 {
		fmt.Fprintf(&b, "sanitizer: warning: %d shadow record(s) evicted (history bounded at %d per window); coverage is partial\n", evicted, cellCap)
	}
	for _, r := range reps {
		fmt.Fprintf(&b, "  %s\n", r)
	}
	return b.String()
}

// reportLocked files r once per deduplication key; w.mu must be held. Ranges and times vary across
// schedules; the key deliberately drops them so the finding set — and the
// count the seeded-race test asserts on — is schedule-independent.
func (w *World) reportLocked(r *Report) {
	a, b := r.Earlier, r.Later
	if a.Image > b.Image || (a.Image == b.Image && a.Op > b.Op) {
		a, b = b, a
	}
	key := fmt.Sprintf("%s|%d|%d|%d:%s:%v|%d:%s:%v|%s",
		r.Class, r.Coarray, r.Owner, a.Image, a.Op, a.Write, b.Image, b.Op, b.Write, r.Detail)
	if w.seen[key] {
		return
	}
	w.seen[key] = true
	w.reports = append(w.reports, r)
}

// bufRange tracks a deferred-get destination buffer by host address. peer
// is the world rank the get reads from (-1 when unknown): a peer-scoped
// fence (sparse FlushAll, which only synchronizes the epoch's dirty peers)
// completes exactly the buffers whose peer it covers, and unknown-peer
// buffers only complete at a full FenceLocal.
type bufRange struct {
	lo, hi uintptr
	op     string
	t      int64
	peer   int32
}

// Image is one image's sanitizer handle. All methods are nil-safe.
type Image struct {
	w  *World
	id int
	p  *sim.Proc

	// vc is this image's vector clock; component j counts image j's
	// releases this image has acquired. Touched only from the owning
	// image's goroutine; snapshots are published under w.mu. Dense array
	// in small worlds, shared-base + private-delta above the threshold
	// (see vclock.go).
	vc *vclock

	// wp is the wall-clock recorder for SiteSanitizer blame, nil when the
	// wallprof plane is off (methods nil-safe).
	wp *wallprof.Rec

	// collSeq numbers this image's collectives per team; collective
	// semantics make the numbering agree across members.
	collSeq map[uint64]uint64

	// pendingGets are implicitly synchronized get destinations, undefined
	// until the next local fence.
	pendingGets []bufRange
}

func (i *Image) now() int64 {
	if i.p != nil {
		return i.p.Now()
	}
	return 0
}

// access records one window access and reports conflicts with every stored
// access not ordered before it by happens-before. The wallprof hook wraps
// the shadow-state work, the dominant sanitizer host cost.
func (i *Image) access(co uint64, owner, off, n int, kind uint8, op string) {
	if i == nil || n <= 0 {
		return
	}
	wt := i.wp.Begin(wallprof.SiteSanitizer)
	i.accessImpl(co, owner, off, n, kind, op)
	i.wp.End(wallprof.SiteSanitizer, wt)
}

func (i *Image) accessImpl(co uint64, owner, off, n int, kind uint8, op string) {
	w := i.w
	cur := rec{img: int32(i.id), kind: kind, epoch: i.vc.get(i.id), off: off, end: off + n, t: i.now(), op: op}
	w.mu.Lock()
	defer w.mu.Unlock()
	key := cellKey{co: co, owner: int32(owner)}
	c := w.cells[key]
	if c == nil {
		c = &cell{}
		w.cells[key] = c
	}
	for idx := range c.recs {
		r := &c.recs[idx]
		if int(r.img) == i.id {
			continue // same image: ordered by program order
		}
		if cur.off >= r.end || r.off >= cur.end {
			continue // disjoint ranges
		}
		if cur.kind&kindWrite == 0 && r.kind&kindWrite == 0 {
			continue // read/read
		}
		if i.vc.get(int(r.img)) >= r.epoch {
			continue // ordered: r happens-before cur
		}
		w.reportLocked(&Report{
			Class:   "data-race",
			Coarray: co,
			Owner:   owner,
			Earlier: Access{Image: int(r.img), Op: r.op, Off: r.off, Len: r.end - r.off, Time: r.t, Write: r.kind&kindWrite != 0},
			Later:   Access{Image: i.id, Op: op, Off: off, Len: n, Time: cur.t, Write: kind&kindWrite != 0},
		})
	}
	// Coalesce with the latest record when it extends the same logical
	// access (same image, kind, epoch, contiguous or overlapping range), so
	// streaming writes cost one record instead of thousands.
	if len(c.recs) > 0 {
		last := &c.recs[len(c.recs)-1]
		if last.img == cur.img && last.kind == cur.kind && last.epoch == cur.epoch &&
			cur.off <= last.end && last.off <= cur.end {
			if cur.off < last.off {
				last.off = cur.off
			}
			if cur.end > last.end {
				last.end = cur.end
			}
			return
		}
	}
	if len(c.recs) >= cellCap {
		c.recs = c.recs[1:]
		c.evicted++
		w.evicted++
	}
	c.recs = append(c.recs, cur)
}

// RemoteWrite records a put-class access to owner's window of coarray co.
func (i *Image) RemoteWrite(co uint64, owner, off, n int, op string) {
	if i == nil {
		return
	}
	i.access(co, owner, off, n, kindWrite|kindRemote, op)
}

// RemoteRead records a get-class access to owner's window of coarray co.
func (i *Image) RemoteRead(co uint64, owner, off, n int, op string) {
	if i == nil {
		return
	}
	i.access(co, owner, off, n, kindRemote, op)
}

// LocalAccess records this image touching its own window portion.
func (i *Image) LocalAccess(co uint64, off, n int, write bool, op string) {
	if i == nil {
		return
	}
	var kind uint8
	if write {
		kind = kindWrite
	}
	i.access(co, i.id, off, n, kind, op)
}

// EventPublish releases this image's clock into the slot's running-join
// clock; the matching waits acquire it.
func (i *Image) EventPublish(evs uint64, owner, slot int) {
	if i == nil {
		return
	}
	snap := i.vc.clone()
	i.vc.bump(i.id)
	key := slotKey{evs: evs, owner: int32(owner), slot: int32(slot)}
	i.w.mu.Lock()
	if sv := i.w.slotVCs[key]; sv == nil {
		i.w.slotVCs[key] = snap // first publish owns the slot clock
	} else {
		sv.join(snap)
	}
	i.w.mu.Unlock()
}

// EventAcquire joins the slot's running-join clock: the waiter now
// happens-after every notify published to the slot so far.
func (i *Image) EventAcquire(evs uint64, owner, slot int) {
	if i == nil {
		return
	}
	key := slotKey{evs: evs, owner: int32(owner), slot: int32(slot)}
	i.w.mu.Lock()
	var snap *vclock
	if sv := i.w.slotVCs[key]; sv != nil {
		snap = sv.clone() // joined outside the lock
	}
	i.w.mu.Unlock()
	if snap != nil {
		i.vc.join(snap)
	}
}

// AMPublish releases this image's clock on the AM channel to dst. The
// fabric delivers a pair's AMs in order, so a FIFO per (src,dst) pairs each
// publish with its delivery.
func (i *Image) AMPublish(dst int) {
	if i == nil {
		return
	}
	snap := i.vc.clone()
	i.vc.bump(i.id)
	key := pairKey{src: int32(i.id), dst: int32(dst)}
	i.w.mu.Lock()
	i.w.amVCs[key] = append(i.w.amVCs[key], snap)
	i.w.mu.Unlock()
}

// AMAcquire joins the clock of the oldest undelivered AM from src.
func (i *Image) AMAcquire(src int) {
	if i == nil {
		return
	}
	key := pairKey{src: int32(src), dst: int32(i.id)}
	i.w.mu.Lock()
	var snap *vclock
	if q := i.w.amVCs[key]; len(q) > 0 {
		snap = q[0]
		i.w.amVCs[key] = q[1:]
	}
	i.w.mu.Unlock()
	if snap != nil {
		i.vc.join(snap)
	}
}

// CollEnter numbers this image's next collective on team and, when this
// image's entry orders other members' exits (contribute — everyone in a
// barrier/allreduce, only the root in a bcast), deposits its release clock
// for the round. Returns the round token for CollExit. size is the team
// size; collective matching-order semantics make the numbering agree
// across members.
func (i *Image) CollEnter(team uint64, size int, contribute bool) uint64 {
	if i == nil {
		return 0
	}
	round := i.collSeq[team]
	i.collSeq[team] = round + 1
	key := collKey{team: team, round: round}
	i.w.mu.Lock()
	cr := i.w.rounds[key]
	if cr == nil {
		cr = &collRound{size: size}
		i.w.rounds[key] = cr
	}
	if contribute {
		snap := i.vc.clone()
		i.vc.bump(i.id)
		cr.clocks = append(cr.clocks, snap)
	}
	i.w.mu.Unlock()
	return round
}

// CollExit joins, when this image's exit is ordered by other members'
// entries (acquire — everyone in a barrier, only the root in a reduce),
// every clock deposited for the round: by completion semantics all
// contributors have deposited before any acquiring member exits.
func (i *Image) CollExit(team uint64, round uint64, acquire bool) {
	if i == nil {
		return
	}
	key := collKey{team: team, round: round}
	i.w.mu.Lock()
	cr := i.w.rounds[key]
	var clocks []*vclock
	var joined *baseClock
	if cr != nil {
		if acquire {
			if i.vc.sparseMode() && cr.size == i.w.n && len(cr.clocks) == cr.size {
				// Full-world round in sparse mode: materialize one shared
				// base (once per round) instead of joining P private
				// clocks, and rebase onto it below. This is the epoch
				// compression that keeps per-image clock memory O(1)
				// across barriers: everyone's floor becomes one shared
				// array.
				if cr.joined == nil {
					cr.joined = i.w.materializeLocked(cr.clocks)
				}
				joined = cr.joined
			} else {
				clocks = append(clocks, cr.clocks...)
			}
		}
		cr.exits++
		if cr.exits >= cr.size {
			delete(i.w.rounds, key)
		}
	}
	i.w.mu.Unlock()
	if joined != nil {
		// Sound and lossless: this image's own deposit (which dominates
		// its base) is folded into joined, so rebaseJoin's domination
		// precondition holds and only post-snapshot delta entries survive.
		i.vc.rebaseJoin(joined)
		return
	}
	for _, c := range clocks {
		i.vc.join(c)
	}
}

// NoteDeferredGet marks buf as undefined until the next local fence: it is
// the destination of an implicitly synchronized get (§3.5 — MPI_GET whose
// result is unreadable before MPI_WIN_FLUSH).
func (i *Image) NoteDeferredGet(buf []byte, op string) {
	i.NoteDeferredGetPeer(buf, -1, op)
}

// NoteDeferredGetPeer is NoteDeferredGet carrying the world rank the get
// reads from, so a peer-scoped fence can complete it precisely.
func (i *Image) NoteDeferredGetPeer(buf []byte, peer int, op string) {
	if i == nil || len(buf) == 0 {
		return
	}
	lo := uintptr(unsafe.Pointer(&buf[0]))
	i.pendingGets = append(i.pendingGets, bufRange{
		lo: lo, hi: lo + uintptr(len(buf)), op: op, t: i.now(), peer: int32(peer)})
}

// CheckRead reports a use of buf while it is still an unfenced get target.
func (i *Image) CheckRead(buf []byte, what string) {
	if i == nil || len(buf) == 0 || len(i.pendingGets) == 0 {
		return
	}
	lo := uintptr(unsafe.Pointer(&buf[0]))
	hi := lo + uintptr(len(buf))
	for _, g := range i.pendingGets {
		if lo < g.hi && g.lo < hi {
			i.w.mu.Lock()
			i.w.reportLocked(&Report{
				Class: "rma-order",
				Owner: -1,
				Detail: fmt.Sprintf("image %d reads the destination of an incomplete %s (issued t=%dns) as %s before a cofence/fence completed it",
					i.id, g.op, g.t, what),
			})
			i.w.mu.Unlock()
			return
		}
	}
}

// FenceLocal completes all implicitly synchronized operations locally: get
// destinations become defined (cofence, and the release fence inside
// notify/finish).
func (i *Image) FenceLocal() {
	if i == nil {
		return
	}
	i.pendingGets = i.pendingGets[:0]
}

// FenceLocalPeers completes implicitly synchronized gets from the given
// world ranks only. A sparse FlushAll establishes happens-before edges to
// the epoch's dirty peers alone, so gets from untouched peers (and gets
// noted without a peer) stay undefined — a read racing with one is still
// reported by CheckRead.
func (i *Image) FenceLocalPeers(peers []int) {
	if i == nil || len(i.pendingGets) == 0 {
		return
	}
	kept := i.pendingGets[:0]
	for _, g := range i.pendingGets {
		fenced := false
		if g.peer >= 0 {
			for _, p := range peers {
				if int32(p) == g.peer {
					fenced = true
					break
				}
			}
		}
		if !fenced {
			kept = append(kept, g)
		}
	}
	i.pendingGets = kept
}

// RMAViolation files an MPI-level RMA usage violation (access outside an
// epoch, flush without a lock); internal/mpi calls it when sanitizing.
func (i *Image) RMAViolation(detail string) {
	if i == nil {
		return
	}
	i.w.mu.Lock()
	i.w.reportLocked(&Report{Class: "rma-order", Owner: -1, Detail: detail})
	i.w.mu.Unlock()
}

// MemBytes is an accounting estimate of this image's owned sanitizer
// state: the handle, its vector clock (shared bases counted as pointers —
// see vclock.memBytes), collective numbering, and pending-get tracking.
// It is the source of the san_bytes_per_image gauge; the np=128→1024
// flatness test uses it to prove per-image sanitizer memory is a function
// of activity, not of world size. Read it from the owning goroutine or
// after the run.
func (i *Image) MemBytes() int64 {
	if i == nil {
		return 0
	}
	total := int64(unsafe.Sizeof(*i))
	total += i.vc.memBytes()
	total += int64(len(i.collSeq)) * clockEntryBytes
	total += int64(cap(i.pendingGets)) * int64(unsafe.Sizeof(bufRange{}))
	return total
}

// MemMaxBytes returns the largest per-image footprint (0 on nil). Post-run
// only: it reads every image's owner-private state.
func (w *World) MemMaxBytes() int64 {
	if w == nil {
		return 0
	}
	var max int64
	for _, im := range w.images {
		if b := im.MemBytes(); b > max {
			max = b
		}
	}
	return max
}
