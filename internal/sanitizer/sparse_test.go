package sanitizer_test

import (
	"testing"

	"cafmpi/caf"
	"cafmpi/internal/sanitizer"
)

// deferredGetThenForeignFlush is the probe program: image 0 starts a
// deferred get from image 1, then issues a blocking put to image 2 (whose
// flush covers peer 2 only in sparse mode), then misuses the still-pending
// get destination, then does it correctly after a cofence.
func deferredGetThenForeignFlush(im *caf.Image) error {
	co, err := im.AllocCoarray(im.World(), 64)
	if err != nil {
		return err
	}
	if im.ID() == 0 {
		buf := make([]byte, 8)
		if err := co.GetDeferred(1, 0, buf); err != nil {
			return err
		}
		// Blocking put to a different peer: its flush completes (and
		// fences) operations to peer 2 only.
		if err := co.Put(2, 0, make([]byte, 8)); err != nil {
			return err
		}
		// Bug: flushing peer 2 says nothing about the get from peer 1, so
		// buf is still undefined here.
		if err := co.Put(2, 16, buf); err != nil {
			return err
		}
		if err := im.Cofence(); err != nil {
			return err
		}
		// Correct: the cofence completed every implicit operation.
		if err := co.Put(2, 32, buf); err != nil {
			return err
		}
	}
	return co.Free()
}

// TestSparseFlushKeepsUntouchedPeerPending: the sparse flush's
// happens-before edge must reach exactly the flushed peers. A deferred get
// from an untouched peer stays pending across a foreign targeted flush, so
// misusing its destination is still an rma-order finding. The flat mode's
// full fence over-approximates: the same program passes silently there —
// which is precisely the precision the peer-scoped fence buys, and this
// test pins both behaviours so neither regresses quietly.
func TestSparseFlushKeepsUntouchedPeerPending(t *testing.T) {
	run := func(sparse bool) *sanitizer.World {
		t.Helper()
		w, err := caf.RunWorld(3, caf.Config{Substrate: caf.MPI, Diag: caf.Diag{Sanitize: true}, SparseFlush: sparse},
			deferredGetThenForeignFlush)
		if err != nil {
			t.Fatal(err)
		}
		return sanitizer.Enabled(w)
	}
	t.Run("sparse-catches", func(t *testing.T) {
		sw := run(true)
		reps := sw.Reports()
		if len(reps) != 1 || reps[0].Class != "rma-order" {
			t.Fatalf("want exactly 1 rma-order finding, got %d:\n%s", len(reps), sw.Text())
		}
	})
	t.Run("flat-overfences", func(t *testing.T) {
		if sw := run(false); sw.Count() != 0 {
			t.Fatalf("flat mode's full fence historically completes the get; findings changed:\n%s", sw.Text())
		}
	})
}
