package sanitizer_test

import (
	"testing"

	"cafmpi/caf"
	"cafmpi/internal/hpcc"
	"cafmpi/internal/sanitizer"
)

var substrates = []caf.Substrate{caf.MPI, caf.GASNet}

// TestSeededRace plants the canonical PGAS bug — an unsynchronized Put
// racing the owner's local read — and checks the sanitizer flags it
// deterministically on both substrates: exactly one data-race finding,
// whichever access the host scheduler happens to run first.
func TestSeededRace(t *testing.T) {
	for _, sub := range substrates {
		t.Run(string(sub), func(t *testing.T) {
			w, err := caf.RunWorld(2, caf.Config{Substrate: sub, Diag: caf.Diag{Sanitize: true}}, func(im *caf.Image) error {
				co, err := im.AllocCoarray(im.World(), 64)
				if err != nil {
					return err
				}
				if im.ID() == 0 {
					if err := co.Put(1, 0, make([]byte, 8)); err != nil {
						return err
					}
				} else {
					_ = co.ReadLocal(0, 8) // no ordering against image 0's Put
				}
				return co.Free()
			})
			if err != nil {
				t.Fatal(err)
			}
			sw := sanitizer.Enabled(w)
			if sw == nil {
				t.Fatal("sanitizer not enabled")
			}
			reps := sw.Reports()
			if len(reps) != 1 {
				t.Fatalf("want exactly 1 finding, got %d:\n%s", len(reps), sw.Text())
			}
			if reps[0].Class != "data-race" {
				t.Fatalf("want a data-race finding, got: %s", reps[0])
			}
		})
	}
}

// TestSeededRaceFixed is the same program with the missing synchronization
// added (notify after the Put, wait before the read): zero findings.
func TestSeededRaceFixed(t *testing.T) {
	for _, sub := range substrates {
		t.Run(string(sub), func(t *testing.T) {
			w, err := caf.RunWorld(2, caf.Config{Substrate: sub, Diag: caf.Diag{Sanitize: true}}, func(im *caf.Image) error {
				co, err := im.AllocCoarray(im.World(), 64)
				if err != nil {
					return err
				}
				evs, err := im.NewEvents(im.World(), 1)
				if err != nil {
					return err
				}
				if im.ID() == 0 {
					if err := co.Put(1, 0, make([]byte, 8)); err != nil {
						return err
					}
					if err := evs.Notify(1, 0); err != nil {
						return err
					}
				} else {
					if err := evs.Wait(0); err != nil {
						return err
					}
					_ = co.ReadLocal(0, 8)
				}
				if err := evs.Free(); err != nil {
					return err
				}
				return co.Free()
			})
			if err != nil {
				t.Fatal(err)
			}
			if sw := sanitizer.Enabled(w); sw.Count() != 0 {
				t.Fatalf("synchronized program flagged:\n%s", sw.Text())
			}
		})
	}
}

// TestWriteWriteRace checks the two-writer flavor: overlapping unordered
// Puts from two images into a third's window.
func TestWriteWriteRace(t *testing.T) {
	w, err := caf.RunWorld(3, caf.Config{Diag: caf.Diag{Sanitize: true}}, func(im *caf.Image) error {
		co, err := im.AllocCoarray(im.World(), 64)
		if err != nil {
			return err
		}
		if im.ID() != 2 {
			if err := co.Put(2, 0, make([]byte, 16)); err != nil {
				return err
			}
		}
		return co.Free()
	})
	if err != nil {
		t.Fatal(err)
	}
	sw := sanitizer.Enabled(w)
	reps := sw.Reports()
	if len(reps) != 1 || reps[0].Class != "data-race" {
		t.Fatalf("want exactly 1 data-race finding, got %d:\n%s", len(reps), sw.Text())
	}
}

// TestRMAOrderDeferredGet checks the §3.5 implicit-synchronization rule:
// the destination of a GetDeferred is undefined until a cofence; using it
// as a Put source before the fence is an rma-order finding, after it is
// clean.
func TestRMAOrderDeferredGet(t *testing.T) {
	for _, sub := range substrates {
		t.Run(string(sub), func(t *testing.T) {
			w, err := caf.RunWorld(2, caf.Config{Substrate: sub, Diag: caf.Diag{Sanitize: true}}, func(im *caf.Image) error {
				co, err := im.AllocCoarray(im.World(), 64)
				if err != nil {
					return err
				}
				if im.ID() == 0 {
					buf := make([]byte, 8)
					if err := co.GetDeferred(1, 0, buf); err != nil {
						return err
					}
					// Bug: buf is not defined yet.
					if err := co.Put(0, 16, buf); err != nil {
						return err
					}
					if err := im.Cofence(); err != nil {
						return err
					}
					// Correct: the cofence completed the get.
					if err := co.Put(0, 32, buf); err != nil {
						return err
					}
				}
				return co.Free()
			})
			if err != nil {
				t.Fatal(err)
			}
			sw := sanitizer.Enabled(w)
			reps := sw.Reports()
			if len(reps) != 1 || reps[0].Class != "rma-order" {
				t.Fatalf("want exactly 1 rma-order finding, got %d:\n%s", len(reps), sw.Text())
			}
		})
	}
}

// TestTier1Clean runs the tier-1 proxy apps and an event ping-pong under
// the sanitizer on both substrates: zero findings — the apps are properly
// synchronized, and a false positive here would make -sanitize useless.
func TestTier1Clean(t *testing.T) {
	for _, sub := range substrates {
		t.Run(string(sub)+"/ra", func(t *testing.T) {
			w, err := caf.RunWorld(4, caf.Config{Substrate: sub, Diag: caf.Diag{Sanitize: true}}, func(im *caf.Image) error {
				_, err := hpcc.RandomAccess(im, hpcc.RAConfig{TableBits: 8, UpdatesPerImage: 256, Verify: true})
				return err
			})
			if err != nil {
				t.Fatal(err)
			}
			if sw := sanitizer.Enabled(w); sw.Count() != 0 {
				t.Fatalf("RandomAccess flagged:\n%s", sw.Text())
			}
		})
		t.Run(string(sub)+"/fft", func(t *testing.T) {
			w, err := caf.RunWorld(4, caf.Config{Substrate: sub, Diag: caf.Diag{Sanitize: true}}, func(im *caf.Image) error {
				_, err := hpcc.FFT(im, hpcc.FFTConfig{LogSize: 8, Verify: true})
				return err
			})
			if err != nil {
				t.Fatal(err)
			}
			if sw := sanitizer.Enabled(w); sw.Count() != 0 {
				t.Fatalf("FFT flagged:\n%s", sw.Text())
			}
		})
		t.Run(string(sub)+"/pingpong", func(t *testing.T) {
			w, err := caf.RunWorld(2, caf.Config{Substrate: sub, Diag: caf.Diag{Sanitize: true}}, func(im *caf.Image) error {
				co, err := im.AllocCoarray(im.World(), 64)
				if err != nil {
					return err
				}
				evs, err := im.NewEvents(im.World(), 2)
				if err != nil {
					return err
				}
				const rounds = 32
				me, peer := im.ID(), 1-im.ID()
				for r := 0; r < rounds; r++ {
					if me == r%2 {
						if err := co.Put(peer, 0, make([]byte, 8)); err != nil {
							return err
						}
						if err := evs.Notify(peer, 0); err != nil {
							return err
						}
					} else {
						if err := evs.Wait(0); err != nil {
							return err
						}
						_ = co.ReadLocal(0, 8)
					}
				}
				if err := im.World().Barrier(); err != nil {
					return err
				}
				if err := evs.Free(); err != nil {
					return err
				}
				return co.Free()
			})
			if err != nil {
				t.Fatal(err)
			}
			if sw := sanitizer.Enabled(w); sw.Count() != 0 {
				t.Fatalf("ping-pong flagged:\n%s", sw.Text())
			}
		})
	}
}

// TestClockPure checks the sanitizer never advances virtual time.
//
// The bit-exact half runs a single image: one goroutine means the schedule
// is fully deterministic, so any clock difference is a sanitizer charge.
// The workload still drives every hook class — remote-write/read shadow
// checks, local accesses, event publish/acquire, collective rounds, and
// the cofence fence.
func TestClockPure(t *testing.T) {
	for _, sub := range substrates {
		t.Run(string(sub), func(t *testing.T) {
			run := func(sanitize bool) int64 {
				var clock int64
				_, err := caf.RunWorld(1, caf.Config{Substrate: sub, Diag: caf.Diag{Sanitize: sanitize}}, func(im *caf.Image) error {
					defer func() { clock = im.Proc().Now() }()
					co, err := im.AllocCoarray(im.World(), 64)
					if err != nil {
						return err
					}
					evs, err := im.NewEvents(im.World(), 1)
					if err != nil {
						return err
					}
					for i := 0; i < 8; i++ {
						if err := co.Put(0, 0, make([]byte, 8)); err != nil {
							return err
						}
						if err := evs.Notify(0, 0); err != nil {
							return err
						}
						if err := evs.Wait(0); err != nil {
							return err
						}
						buf := make([]byte, 8)
						if err := co.Get(0, 0, buf); err != nil {
							return err
						}
						_ = co.ReadLocal(0, 8)
						if err := im.Cofence(); err != nil {
							return err
						}
						if err := im.World().Barrier(); err != nil {
							return err
						}
					}
					if err := evs.Free(); err != nil {
						return err
					}
					return co.Free()
				})
				if err != nil {
					t.Fatal(err)
				}
				return clock
			}
			if off, on := run(false), run(true); off != on {
				t.Fatalf("final clock differs with sanitizer: %d vs %d ns", off, on)
			}
		})
	}
}

// TestClockPureMultiImage holds the multi-image RandomAccess clocks with
// the sanitizer on to the same jitter band the repo's determinism test
// uses for its seed goldens: final clocks absorb MatchNS charges from
// idle progress passes whose count depends on OS-level wakeup coalescing
// (see TestVirtualTimeInvariance), so run-to-run clocks are not
// bit-stable under arbitrary schedulers with or without the sanitizer. A
// sanitizer that charged time would shift clocks systematically in one
// direction on every image; the band catches that while tolerating the
// inherited scheduler jitter.
func TestClockPureMultiImage(t *testing.T) {
	const tolerance = 0.25 // the determinism test's RandomAccess band
	for _, sub := range substrates {
		t.Run(string(sub), func(t *testing.T) {
			run := func(sanitize bool) []int64 {
				clocks := make([]int64, 4)
				_, err := caf.RunWorld(4, caf.Config{Substrate: sub, Diag: caf.Diag{Sanitize: sanitize}}, func(im *caf.Image) error {
					defer func() { clocks[im.ID()] = im.Proc().Now() }()
					_, err := hpcc.RandomAccess(im, hpcc.RAConfig{TableBits: 8, UpdatesPerImage: 256, Verify: true})
					return err
				})
				if err != nil {
					t.Fatal(err)
				}
				return clocks
			}
			off, on := run(false), run(true)
			for i := range off {
				lo := int64(float64(off[i]) * (1 - tolerance))
				hi := int64(float64(off[i]) * (1 + tolerance))
				if on[i] < lo || on[i] > hi {
					t.Errorf("image %d clock %d ns with sanitizer outside [%d, %d] around %d ns without",
						i, on[i], lo, hi, off[i])
				}
				if off[i] != on[i] {
					t.Logf("image %d clocks differ within tolerance (idle-poll schedule jitter): %d vs %d ns", i, off[i], on[i])
				}
			}
		})
	}
}
