package sanitizer

import (
	"unsafe"

	"cafmpi/internal/obs"
)

// denseClockThreshold is the world size above which vector clocks switch
// from dense arrays to the base+delta sparse representation. Matching the
// obs subsystem's comm-matrix threshold keeps "small world" meaning one
// thing across the tree: at or below it every structure is dense and
// byte-for-byte identical to the historical implementation (the CI
// sanitize runs at np=8 exercise exactly that path).
const denseClockThreshold = obs.DenseCommThreshold

// baseClock is a world-shared dense clock floor. Full-world collective
// rounds materialize one (the pointwise max of every member's deposit) and
// every member's clock rebases onto it, so after a barrier an image's
// clock is a shared pointer plus its own post-snapshot delta — O(1) owned
// memory — instead of a private O(P) array. Immutable after creation; seq
// totally orders bases so joins can adopt the newer floor.
type baseClock struct {
	seq uint64
	c   []uint64
}

// at returns the floor for component j (0 on a nil base).
func (b *baseClock) at(j int) uint64 {
	if b == nil {
		return 0
	}
	return b.c[j]
}

// vclock is one vector clock. Dense mode (n <= denseClockThreshold) is a
// plain array, bit-identical in behaviour to the pre-sparse sanitizer.
// Sparse mode stores value(j) = max(base.at(j), m[j]): a shared dense
// floor plus a private delta map sized by communication degree, which is
// what keeps sanitizer memory per image flat in world size (ROADMAP item
// 1's last O(P) structure).
type vclock struct {
	n     int
	dense []uint64 // non-nil iff dense mode
	base  *baseClock
	m     map[int32]uint64
}

func newVClock(n, own int) *vclock {
	v := &vclock{n: n}
	if n <= denseClockThreshold {
		v.dense = make([]uint64, n)
		// Component own starts at 1 so a fresh image's accesses are NOT
		// happens-before-ordered for peers whose clocks still hold 0.
		v.dense[own] = 1
	} else {
		v.m = map[int32]uint64{int32(own): 1}
	}
	return v
}

func (v *vclock) get(j int) uint64 {
	if v.dense != nil {
		return v.dense[j]
	}
	val := v.base.at(j)
	if e, ok := v.m[int32(j)]; ok && e > val {
		val = e
	}
	return val
}

// set installs value val for component j; callers only ever raise values.
func (v *vclock) set(j int, val uint64) {
	if v.dense != nil {
		v.dense[j] = val
		return
	}
	v.m[int32(j)] = val
}

// bump increments component j.
func (v *vclock) bump(j int) {
	v.set(j, v.get(j)+1)
}

// clone returns a snapshot safe to publish: the base is shared (it is
// immutable), the delta copied.
func (v *vclock) clone() *vclock {
	c := &vclock{n: v.n, base: v.base}
	if v.dense != nil {
		c.dense = append([]uint64(nil), v.dense...)
		return c
	}
	c.m = make(map[int32]uint64, len(v.m))
	for j, e := range v.m {
		c.m[j] = e
	}
	return c
}

// join folds other into v (pointwise max). other is read-only: published
// snapshots may be joined concurrently by several acquirers.
func (v *vclock) join(o *vclock) {
	if v.dense != nil {
		for j, val := range o.dense {
			if val > v.dense[j] {
				v.dense[j] = val
			}
		}
		return
	}
	if o.base != nil && o.base != v.base {
		if v.base == nil || o.base.seq > v.base.seq {
			// Adopt the newer floor: keep only the entries of the current
			// representation that exceed it. The old floor must be scanned —
			// unlike rebaseJoin there is no domination guarantee here — but
			// bases only exist above the threshold and only change at
			// full-world rounds, so the scan is rare.
			old := v.base
			v.base = o.base
			if old != nil {
				for j, val := range old.c {
					if val > v.get(j) {
						v.m[int32(j)] = val
					}
				}
			}
			for j, e := range v.m {
				if e <= v.base.at(int(j)) {
					delete(v.m, j)
				}
			}
		} else {
			// other's floor is older: fold its entries that still exceed us.
			for j, val := range o.base.c {
				if val > v.get(j) {
					v.m[int32(j)] = val
				}
			}
		}
	}
	for j, e := range o.m {
		if e > v.get(int(j)) {
			v.m[j] = e
		}
	}
}

// rebaseJoin joins a base that is known to dominate v's current base —
// the CollExit fast path: b folds a snapshot of this very clock (every
// member of a full-world round deposits before any acquirer exits), so
// only delta entries written after that snapshot can exceed b. Owned
// memory afterwards is the surviving delta alone.
func (v *vclock) rebaseJoin(b *baseClock) {
	if v.dense != nil || b == nil {
		return
	}
	for j, e := range v.m {
		if e <= b.at(int(j)) {
			delete(v.m, j)
		}
	}
	v.base = b
}

// sparseMode reports whether v uses the base+delta representation.
func (v *vclock) sparseMode() bool { return v.dense == nil }

// clockEntryBytes approximates one delta-map entry: key + value plus Go
// map bucket overhead (~1.5x headroom), mirroring obs.sparseCellBytes.
const clockEntryBytes = int64(unsafe.Sizeof(int32(0))+unsafe.Sizeof(uint64(0))) * 3 / 2

// memBytes is the clock's owned footprint. The shared base is counted as
// its pointer only: one base is live per synchronization generation for
// the whole world, so its O(P) array amortizes across all images (like
// the world registry itself) and does not scale any image's footprint.
func (v *vclock) memBytes() int64 {
	if v == nil {
		return 0
	}
	total := int64(unsafe.Sizeof(*v))
	total += int64(len(v.dense)) * int64(unsafe.Sizeof(uint64(0)))
	total += int64(len(v.m)) * clockEntryBytes
	return total
}

// materializeLocked folds a full-world round's deposits into one shared
// base. w.mu must be held. Deposits overwhelmingly share one base pointer,
// so each distinct base is folded once and the pass costs O(P + Σ|delta|).
func (w *World) materializeLocked(clocks []*vclock) *baseClock {
	w.baseSeq++
	b := &baseClock{seq: w.baseSeq, c: make([]uint64, w.n)}
	var folded *baseClock
	for _, c := range clocks {
		if c.base != nil && c.base != folded {
			for j, val := range c.base.c {
				if val > b.c[j] {
					b.c[j] = val
				}
			}
			folded = c.base
		}
		for j, e := range c.m {
			if e > b.c[j] {
				b.c[j] = e
			}
		}
	}
	return b
}
