package sanitizer

// Large-world scale tests, mirroring internal/obs/scale_test.go: per-image
// sanitizer memory must be a function of activity, not of world size. The
// world-rank-sized structures the sanitizer used to own — the dense
// per-image vector clock above all — go sparse above denseClockThreshold,
// with full-world collective rounds compressed into one shared base clock
// (vclock.go), killing ROADMAP item 1's last at-scale O(P) structure.

import (
	"testing"

	"cafmpi/internal/sim"
)

// drive runs an identical per-image activity pattern on a world of n
// images and returns the registry: shadow accesses, event edges, AM edges
// to fixed nearby peers, and one full-world barrier (every image
// contributes and acquires), which is exactly the pattern that used to
// densify every clock.
func drive(t *testing.T, n int) *World {
	t.Helper()
	w := sim.NewWorld(n)
	sw := Enable(w)
	for id := 0; id < n; id++ {
		im := sw.images[id]
		peer := (id + 1) % n
		for k := 0; k < 16; k++ {
			im.LocalAccess(7, 8*k, 8, k%2 == 0, "local")
			im.RemoteWrite(7, peer, 8*k, 8, "Put")
		}
		im.EventPublish(3, peer, 0)
		im.AMPublish(peer)
	}
	for id := 0; id < n; id++ {
		im := sw.images[id]
		im.EventAcquire(3, id, 0)
		im.AMAcquire((id + n - 1) % n)
	}
	// Full-world barrier: everyone contributes, everyone acquires.
	rounds := make([]uint64, n)
	for id := 0; id < n; id++ {
		rounds[id] = sw.images[id].CollEnter(1, n, true)
	}
	for id := 0; id < n; id++ {
		sw.images[id].CollExit(1, rounds[id], true)
	}
	return sw
}

// TestImageMemoryIndependentOfWorldSize is the satellite's acceptance
// check: identical activity at np=128 and np=1024 must cost identical
// per-image bytes — no structure sized by rank count survives.
func TestImageMemoryIndependentOfWorldSize(t *testing.T) {
	small := drive(t, 128).MemMaxBytes()
	big := drive(t, 1024).MemMaxBytes()
	if small == 0 || big == 0 {
		t.Fatalf("self-metering returned zero (small=%d big=%d)", small, big)
	}
	if big != small {
		t.Fatalf("per-image sanitizer memory scales with world size: np=128 -> %d B, np=1024 -> %d B", small, big)
	}
}

// TestSparseClockStillDetectsRaces: the representation change must not
// change verdicts. Above the threshold, an unsynchronized overlapping
// write pair is a race; the same pair ordered by an event edge is not.
func TestSparseClockStillDetectsRaces(t *testing.T) {
	n := denseClockThreshold + 1 // smallest sparse world

	racy := func() *World {
		w := sim.NewWorld(n)
		sw := Enable(w)
		sw.images[1].RemoteWrite(9, 0, 0, 16, "Put")
		sw.images[2].RemoteWrite(9, 0, 8, 16, "Put")
		return sw
	}
	if got := racy().Count(); got != 1 {
		t.Fatalf("unsynchronized overlapping writes in sparse mode: %d finding(s), want 1", got)
	}

	ordered := func() *World {
		w := sim.NewWorld(n)
		sw := Enable(w)
		sw.images[1].RemoteWrite(9, 0, 0, 16, "Put")
		sw.images[1].EventPublish(4, 2, 0)
		sw.images[2].EventAcquire(4, 2, 0)
		sw.images[2].RemoteWrite(9, 0, 8, 16, "Put")
		return sw
	}
	if got := ordered().Count(); got != 0 {
		t.Fatalf("event-ordered writes in sparse mode: %d finding(s), want 0", got)
	}
}

// TestSparseBarrierOrdersAccesses exercises the shared-base compression
// path end to end: a full-world barrier must order accesses on either
// side of it (no false positive after the rebase), while leaving the
// clocks sparse.
func TestSparseBarrierOrdersAccesses(t *testing.T) {
	n := denseClockThreshold + 1
	w := sim.NewWorld(n)
	sw := Enable(w)
	sw.images[1].RemoteWrite(9, 0, 0, 16, "Put")
	rounds := make([]uint64, n)
	for id := 0; id < n; id++ {
		rounds[id] = sw.images[id].CollEnter(1, n, true)
	}
	for id := 0; id < n; id++ {
		sw.images[id].CollExit(1, rounds[id], true)
	}
	sw.images[2].RemoteWrite(9, 0, 8, 16, "Put")
	if got := sw.Count(); got != 0 {
		t.Fatalf("barrier-ordered writes flagged: %d finding(s), want 0", got)
	}
	for id := 0; id < n; id++ {
		vc := sw.images[id].vc
		if !vc.sparseMode() {
			t.Fatalf("image %d clock densified", id)
		}
		if vc.base == nil {
			t.Fatalf("image %d did not rebase onto the round's shared base", id)
		}
		if len(vc.m) > 2 {
			t.Fatalf("image %d delta grew to %d entries after rebase", id, len(vc.m))
		}
	}
}

// TestDenseModeUnchangedAtThreshold pins the boundary: at exactly the
// threshold the clock is dense (historical behaviour), one above it is
// sparse, and both representations agree on a verdict.
func TestDenseModeUnchangedAtThreshold(t *testing.T) {
	for _, n := range []int{denseClockThreshold, denseClockThreshold + 1} {
		w := sim.NewWorld(n)
		sw := Enable(w)
		wantSparse := n > denseClockThreshold
		if got := sw.images[0].vc.sparseMode(); got != wantSparse {
			t.Fatalf("n=%d sparseMode=%v, want %v", n, got, wantSparse)
		}
		sw.images[1].RemoteWrite(9, 0, 0, 16, "Put")
		sw.images[2].RemoteWrite(9, 0, 8, 16, "Put")
		if got := sw.Count(); got != 1 {
			t.Fatalf("n=%d: %d finding(s), want 1", n, got)
		}
	}
}
