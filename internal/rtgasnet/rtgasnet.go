// Package rtgasnet binds the CAF 2.0 runtime to GASNet — the original
// CAF-GASNet system the paper uses as its baseline:
//
//   - Coarrays live in registered memory reached by the extended API's RDMA
//     puts and gets; implicit-handle (NBI) operations back the deferred
//     forms, and the release fence is an O(1) NBI sync — contrast with
//     CAF-MPI's per-rank MPI_WIN_FLUSH_ALL scan.
//   - Runtime active messages ride native GASNet medium AMs (fragmented at
//     gasnet.MaxMedium and reassembled here).
//   - No collectives: the substrate reports ErrUnsupported and the CAF
//     runtime hand-crafts them from puts and AMs (§4.2) — except the
//     world-wide barrier, which GASNet provides natively.
package rtgasnet

import (
	"fmt"
	"sync"

	"cafmpi/internal/core"
	"cafmpi/internal/elem"
	"cafmpi/internal/fabric"
	"cafmpi/internal/gasnet"
	"cafmpi/internal/obs"
	"cafmpi/internal/sim"
	"cafmpi/internal/trace"
)

// AM handler ids used by this binding.
const (
	hCore    gasnet.HandlerID = 128 // runtime AMs (fragmented)
	hAMWrite gasnet.HandlerID = 129 // AM-mediated coarray write (Options.AMWrite)
	hAMAck   gasnet.HandlerID = 130 // its per-chunk acknowledgement
)

// Options tune the binding.
type Options struct {
	// SegmentBytes sizes the attached GASNet segment (metadata only here;
	// coarrays use registered memory). Defaults to 1 MiB.
	SegmentBytes int
	// AMWrite routes blocking coarray writes through long-AM-style
	// transfers that need the *target* to poll before the write completes.
	// This reproduces the implementation-specific behaviour behind the
	// paper's Figure 2 deadlock: a target blocked inside an MPI barrier
	// never polls, so the writer never gets its acknowledgement.
	AMWrite bool
}

// registry is the world-shared table of registered coarray memory.
type registry struct {
	mu    sync.Mutex
	slabs map[regKey][]byte
}

type regKey struct {
	id    uint64
	world int
}

func (r *registry) set(id uint64, world int, mem []byte) {
	r.mu.Lock()
	r.slabs[regKey{id, world}] = mem
	r.mu.Unlock()
}

func (r *registry) get(id uint64, world int) []byte {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.slabs[regKey{id, world}]
}

func (r *registry) drop(id uint64, world int) {
	r.mu.Lock()
	delete(r.slabs, regKey{id, world})
	r.mu.Unlock()
}

// S is the CAF-GASNet substrate.
type S struct {
	p       *sim.Proc
	net     *fabric.Net
	ep      *gasnet.Ep
	deliver core.DeliverFunc
	opt     Options
	reg     *registry
	world   *team

	amSeq      uint64
	reasm      map[reasmKey]*partial
	acks       int64 // AM-write acknowledgements received
	slabsBytes int64
	hdrArgs    [gasnet.MaxArgs]uint64 // scratch for fragment headers

	tr  *trace.Tracer // attributes substrate time in --trace; nil when off
	osh *obs.Shard    // observability shard; nil when off
}

type reasmKey struct {
	src int
	seq uint64
}

type partial struct {
	kind    uint8
	args    []uint64
	data    []byte // nChunks*MaxMedium bytes; chunks land positionally
	total   int    // true payload length, set when the last chunk arrives
	got, of int
}

// New builds the substrate on image p.
func New(p *sim.Proc, net *fabric.Net, deliver core.DeliverFunc, opt Options) (*S, error) {
	if opt.SegmentBytes == 0 {
		opt.SegmentBytes = 1 << 20
	}
	s := &S{
		p:       p,
		net:     net,
		deliver: deliver,
		opt:     opt,
		reasm:   make(map[reasmKey]*partial),
	}
	s.reg = p.World().Shared("rtgasnet.registry", func() any {
		return &registry{slabs: make(map[regKey][]byte)}
	}).(*registry)

	ep, err := gasnet.Attach(p, net, opt.SegmentBytes,
		gasnet.HandlerEntry{ID: hCore, Fn: s.onCoreAM},
		gasnet.HandlerEntry{ID: hAMWrite, Fn: s.onAMWrite},
		gasnet.HandlerEntry{ID: hAMAck, Fn: s.onAMAck},
	)
	if err != nil {
		return nil, err
	}
	s.ep = ep
	ranks := make([]int, p.N())
	for i := range ranks {
		ranks[i] = i
	}
	s.world = &team{ranks: ranks, myRank: p.ID()}
	s.osh = obs.For(p)
	return s, nil
}

// SetTracer attaches the image's tracer so substrate operations report their
// time under the substrate_* categories (core.Boot calls this when tracing).
func (s *S) SetTracer(tr *trace.Tracer) { s.tr = tr }

// Ep exposes the GASNet endpoint (tests, interop demos).
func (s *S) Ep() *gasnet.Ep { return s.ep }

// Name identifies the substrate.
func (s *S) Name() string { return "gasnet" }

// Platform returns the machine cost model.
func (s *S) Platform() *fabric.Params { return s.net.Params() }

// Proc returns the owning image.
func (s *S) Proc() *sim.Proc { return s.p }

// Caps: no native collectives (GASNet has none), and puts can notify via
// RDMA-put-then-AM (no AM-mediated data path needed).
func (s *S) Caps() core.Caps { return core.Caps{} }

// team is a plain world-rank list.
type team struct {
	ranks  []int
	myRank int
}

func (t *team) Rank() int           { return t.myRank }
func (t *team) Size() int           { return len(t.ranks) }
func (t *team) WorldRank(r int) int { return t.ranks[r] }

// WorldTeam returns all images.
func (s *S) WorldTeam() core.TeamRef { return s.world }

// SplitTeam is unsupported: GASNet has no group concept, so the CAF runtime
// computes memberships itself (the hand-crafted CAF 2.0 team machinery).
func (s *S) SplitTeam(core.TeamRef, int, int) (core.TeamRef, error) {
	return nil, core.ErrUnsupported
}

// MakeTeam wraps an explicit membership list.
func (s *S) MakeTeam(worldRanks []int, myRank int) (core.TeamRef, error) {
	return &team{ranks: append([]int(nil), worldRanks...), myRank: myRank}, nil
}

// segment is a registered-memory coarray slab.
type segment struct {
	s    *S
	t    *team
	id   uint64
	mem  []byte
	size int
}

func (g *segment) Local() []byte { return g.mem }
func (g *segment) Bytes() int    { return g.size }

// remote resolves the target's slab.
func (g *segment) remote(target int) ([]byte, int, error) {
	world := g.t.WorldRank(target)
	mem := g.s.reg.get(g.id, world)
	if mem == nil {
		return nil, 0, fmt.Errorf("rtgasnet: image %d has no registered memory for coarray %d", world, g.id)
	}
	return mem, world, nil
}

// AllocEvents is unsupported: CAF-GASNet events ride native AMs.
func (s *S) AllocEvents(core.TeamRef, int, uint64) (core.EventBackend, error) {
	return nil, core.ErrUnsupported
}

// AllocSegment registers a fresh slab under the team-agreed id.
func (s *S) AllocSegment(t core.TeamRef, bytes int, id uint64) (core.Segment, error) {
	mem := make([]byte, bytes)
	s.reg.set(id, s.p.ID(), mem)
	s.slabsBytes += int64(bytes)
	return &segment{s: s, t: t.(*team), id: id, mem: mem, size: bytes}, nil
}

// FreeSegment drops the slab registration.
func (s *S) FreeSegment(g core.Segment) error {
	seg := g.(*segment)
	s.reg.drop(seg.id, s.p.ID())
	s.slabsBytes -= int64(seg.size)
	return nil
}

// Put is the blocking coarray write: an RDMA put (or, under Options.
// AMWrite, an AM-mediated transfer that requires target-side progress).
func (s *S) Put(g core.Segment, target, off int, data []byte) error {
	defer s.tr.Span(trace.SubstratePut)()
	seg := g.(*segment)
	mem, world, err := seg.remote(target)
	if err != nil {
		return err
	}
	t0 := s.p.Now()
	if s.opt.AMWrite && world != s.p.ID() {
		err = s.amWrite(seg, world, off, data)
	} else {
		err = s.ep.PutRegistered(world, mem, off, data)
	}
	if err != nil {
		return err
	}
	s.osh.Record(obs.LayerSubstrate, obs.OpPut, world, len(data), off, t0, s.p.Now())
	return nil
}

// Get is the blocking coarray read.
func (s *S) Get(g core.Segment, target, off int, into []byte) error {
	defer s.tr.Span(trace.SubstrateGet)()
	mem, world, err := g.(*segment).remote(target)
	if err != nil {
		return err
	}
	t0 := s.p.Now()
	if err := s.ep.GetRegistered(world, mem, off, into); err != nil {
		return err
	}
	s.osh.Record(obs.LayerSubstrate, obs.OpGet, world, len(into), off, t0, s.p.Now())
	return nil
}

// PutDeferred is an implicit-handle put, fenced by SyncNBIAll.
func (s *S) PutDeferred(g core.Segment, target, off int, data []byte) error {
	mem, world, err := g.(*segment).remote(target)
	if err != nil {
		return err
	}
	return s.ep.PutRegisteredNBI(world, mem, off, data)
}

// GetDeferred is an implicit-handle get.
func (s *S) GetDeferred(g core.Segment, target, off int, into []byte) error {
	mem, world, err := g.(*segment).remote(target)
	if err != nil {
		return err
	}
	return s.ep.GetRegisteredNBI(world, mem, off, into)
}

// completion adapts an explicit GASNet handle.
type completion struct {
	ep *gasnet.Ep
	h  *gasnet.Handle
}

// Test: explicit GASNet handles are completion-time-determined at issue, so
// testing one syncs it (advancing the virtual clock) and reports done —
// matching the MPI binding, where request tests absorb the completion time.
func (c completion) Test() bool { c.ep.SyncNB(c.h); return true }
func (c completion) Wait()      { c.ep.SyncNB(c.h) }

// PutAsyncLocal starts an explicit-handle put (local completion).
func (s *S) PutAsyncLocal(g core.Segment, target, off int, data []byte) (core.Completion, error) {
	mem, world, err := g.(*segment).remote(target)
	if err != nil {
		return nil, err
	}
	h, err := s.ep.PutRegisteredNB(world, mem, off, data)
	if err != nil {
		return nil, err
	}
	return completion{ep: s.ep, h: h}, nil
}

// GetAsync starts an explicit-handle get.
func (s *S) GetAsync(g core.Segment, target, off int, into []byte) (core.Completion, error) {
	mem, world, err := g.(*segment).remote(target)
	if err != nil {
		return nil, err
	}
	h, err := s.ep.GetRegisteredNB(world, mem, off, into)
	if err != nil {
		return nil, err
	}
	return completion{ep: s.ep, h: h}, nil
}

// AMSend carries a runtime AM as one or more native medium AMs. The header
// args are [kind, seq, chunkIdx, nChunks, nUserArgs, userArgs...]; payloads
// above gasnet.MaxMedium fragment and reassemble at the receiver.
func (s *S) AMSend(worldTarget int, kind uint8, args []uint64, payload []byte) error {
	defer s.tr.Span(trace.SubstrateAM)()
	if len(args) > gasnet.MaxArgs-5 {
		return fmt.Errorf("rtgasnet: %d runtime AM args exceed the %d available slots", len(args), gasnet.MaxArgs-5)
	}
	t0 := s.p.Now()
	defer func() {
		s.osh.Record(obs.LayerSubstrate, obs.OpAMSend, worldTarget, len(payload), int(kind), t0, s.p.Now())
	}()
	s.amSeq++
	seq := s.amSeq
	nChunks := (len(payload) + gasnet.MaxMedium - 1) / gasnet.MaxMedium
	if nChunks == 0 {
		nChunks = 1
	}
	for c := 0; c < nChunks; c++ {
		lo := c * gasnet.MaxMedium
		hi := lo + gasnet.MaxMedium
		if hi > len(payload) {
			hi = len(payload)
		}
		// hdrArgs is scratch: the AM layer copies args at injection.
		s.hdrArgs[0], s.hdrArgs[1] = uint64(kind), seq
		s.hdrArgs[2], s.hdrArgs[3], s.hdrArgs[4] = uint64(c), uint64(nChunks), uint64(len(args))
		copy(s.hdrArgs[5:], args)
		hdr := s.hdrArgs[: 5+len(args) : 5+len(args)]
		if err := s.ep.AMRequestMedium(worldTarget, hCore, payload[lo:hi], hdr...); err != nil {
			return err
		}
	}
	return nil
}

// onCoreAM reassembles fragmented runtime AMs and hands them to the CAF
// runtime's dispatcher.
func (s *S) onCoreAM(tk *gasnet.Token, hdr []uint64, chunk []byte) {
	kind := uint8(hdr[0])
	seq := hdr[1]
	ci, nc := int(hdr[2]), int(hdr[3])
	nArgs := int(hdr[4])
	args := append([]uint64(nil), hdr[5:5+nArgs]...)
	if nc == 1 {
		s.deliver(tk.Src(), kind, args, append([]byte(nil), chunk...))
		return
	}
	key := reasmKey{src: tk.Src(), seq: seq}
	pa := s.reasm[key]
	if pa == nil {
		pa = &partial{kind: kind, args: args, data: make([]byte, nc*gasnet.MaxMedium), of: nc}
		s.reasm[key] = pa
	}
	// Fragments are placed positionally: injected delays and reordering
	// (fault plans) can deliver chunks of one AM out of order, so each
	// lands at its offset rather than being appended in arrival order.
	// Every chunk but the last is exactly MaxMedium bytes, so the last
	// chunk fixes the total payload length.
	copy(pa.data[ci*gasnet.MaxMedium:], chunk)
	if ci == pa.of-1 {
		pa.total = ci*gasnet.MaxMedium + len(chunk)
	}
	pa.got++
	if pa.got == pa.of {
		delete(s.reasm, key)
		s.deliver(tk.Src(), pa.kind, pa.args, pa.data[:pa.total])
	}
}

// amWrite transfers a blocking coarray write through AMs that the *target*
// must poll to complete (Figure 2's implementation-specific hazard). Each
// chunk is acknowledged; the writer blocks until all acks return.
func (s *S) amWrite(seg *segment, world, off int, data []byte) error {
	want := s.acks
	n := 0
	for lo := 0; lo < len(data) || n == 0; lo += gasnet.MaxMedium {
		hi := lo + gasnet.MaxMedium
		if hi > len(data) {
			hi = len(data)
		}
		if err := s.ep.AMRequestMedium(world, hAMWrite, data[lo:hi], seg.id, uint64(off+lo)); err != nil {
			return err
		}
		n++
		if hi == len(data) {
			break
		}
	}
	want += int64(n)
	return s.ep.PollUntil(func() bool { return s.acks >= want })
}

func (s *S) onAMWrite(tk *gasnet.Token, args []uint64, payload []byte) {
	mem := s.reg.get(args[0], s.p.ID())
	if mem == nil {
		panic(fmt.Sprintf("rtgasnet: AM write to unknown coarray %d", args[0]))
	}
	copy(mem[args[1]:int(args[1])+len(payload)], payload)
	if err := tk.ReplyShort(hAMAck); err != nil {
		panic(err)
	}
}

func (s *S) onAMAck(*gasnet.Token, []uint64, []byte) { s.acks++ }

// Poll dispatches queued AMs.
func (s *S) Poll() { s.ep.Poll() }

// PollUntil polls until cond holds, or returns a typed error when the
// world's failure latch trips.
func (s *S) PollUntil(cond func() bool) error { return s.ep.PollUntil(cond) }

// LocalFence completes implicit operations. GASNet's NBI sync covers local
// and remote completion with O(1) counters.
func (s *S) LocalFence() error {
	defer s.tr.Span(trace.SubstrateFence)()
	s.ep.SyncNBIAll()
	return nil
}

// LocalFenceScoped: GASNet's implicit-handle machinery fences puts and gets
// together, so any requested scope syncs everything.
func (s *S) LocalFenceScoped(puts, gets bool) error {
	defer s.tr.Span(trace.SubstrateFence)()
	if puts || gets {
		s.ep.SyncNBIAll()
	}
	return nil
}

// ReleaseFence is the event_notify fence: the same O(1) NBI sync — the
// structural advantage over CAF-MPI's per-rank FlushAll scan (Figure 4).
func (s *S) ReleaseFence() error {
	defer s.tr.Span(trace.SubstrateFence)()
	t0 := s.p.Now()
	s.ep.SyncNBIAll()
	end := s.p.Now()
	s.osh.Record(obs.LayerSubstrate, obs.OpFence, -1, 0, 0, t0, end)
	if s.osh != nil && end > t0 {
		// Fallback: the NBI-sync edge (same End, recorded first) wins ties
		// and carries the finer flush_wait split; this covers evictions.
		e := obs.Edge{Layer: obs.LayerSubstrate, Op: obs.OpFence,
			Peer: -1, Start: t0, End: end}
		e.AddComp(obs.CompFlushWait, end-t0)
		s.osh.RecordEdge(e)
	}
	return nil
}

// AllreduceAsync is unsupported: GASNet has no nonblocking collectives, so
// the runtime completes the asynchronous reduction at issue (as the
// original CAF 2.0 implementation's progress engine effectively did when
// polled immediately).
func (s *S) AllreduceAsync(core.TeamRef, []byte, []byte, elem.Kind, elem.Op) (core.Completion, error) {
	return nil, core.ErrUnsupported
}

// BcastAsync is unsupported.
func (s *S) BcastAsync(core.TeamRef, []byte, int) (core.Completion, error) {
	return nil, core.ErrUnsupported
}

// Barrier is native for TEAM_WORLD (gasnet_barrier); subteam barriers are
// hand-crafted by the runtime.
func (s *S) Barrier(t core.TeamRef) error {
	if t.Size() == s.p.N() {
		return s.ep.Barrier()
	}
	return core.ErrUnsupported
}

// Bcast is unsupported: GASNet has no collectives (§4.2).
func (s *S) Bcast(core.TeamRef, []byte, int) error { return core.ErrUnsupported }

// Reduce is unsupported.
func (s *S) Reduce(core.TeamRef, []byte, []byte, elem.Kind, elem.Op, int) error {
	return core.ErrUnsupported
}

// Allreduce is unsupported.
func (s *S) Allreduce(core.TeamRef, []byte, []byte, elem.Kind, elem.Op) error {
	return core.ErrUnsupported
}

// Alltoall is unsupported — the runtime's put+AM construction takes over,
// which is the root of the FFT gap the paper analyzes (Figure 8).
func (s *S) Alltoall(core.TeamRef, []byte, []byte) error { return core.ErrUnsupported }

// Allgather is unsupported.
func (s *S) Allgather(core.TeamRef, []byte, []byte) error { return core.ErrUnsupported }

// MemoryFootprint reports the GASNet conduit's memory plus registered
// coarray slabs (Figure 1: far below an MPI instance).
func (s *S) MemoryFootprint() int64 { return s.ep.MemoryFootprint() + s.slabsBytes }
