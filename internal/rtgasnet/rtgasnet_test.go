package rtgasnet

import (
	"bytes"
	"fmt"
	"testing"

	"cafmpi/internal/core"
	"cafmpi/internal/fabric"
	"cafmpi/internal/gasnet"
	"cafmpi/internal/sim"
)

func tp() *fabric.Params {
	p := fabric.Fusion
	p.Name = "test"
	p.GASNet.SRQ.Enabled = false
	return &p
}

func run(t *testing.T, n int, deliver func(im int) core.DeliverFunc, fn func(*S) error) {
	t.Helper()
	w := sim.NewWorld(n)
	err := w.Run(func(p *sim.Proc) error {
		var d core.DeliverFunc = func(int, uint8, []uint64, []byte) {}
		if deliver != nil {
			d = deliver(p.ID())
		}
		s, err := New(p, fabric.AttachNet(p.World(), tp()), d, Options{})
		if err != nil {
			return err
		}
		err = fn(s)
		if err != nil {
			t.Logf("image %d: %v", p.ID(), err)
		}
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestIdentityAndCaps(t *testing.T) {
	run(t, 2, nil, func(s *S) error {
		if s.Name() != "gasnet" {
			return fmt.Errorf("name %q", s.Name())
		}
		c := s.Caps()
		if c.NativeCollectives || c.PutWithRemoteEventViaAM {
			return fmt.Errorf("caps %+v: GASNet should have neither", c)
		}
		if s.Platform() == nil || s.Ep() == nil {
			return fmt.Errorf("accessors nil")
		}
		if _, err := s.SplitTeam(s.WorldTeam(), 0, 0); err != core.ErrUnsupported {
			return fmt.Errorf("SplitTeam should be unsupported")
		}
		tm, err := s.MakeTeam([]int{1, 0}, 1)
		if err != nil {
			return err
		}
		if tm.Size() != 2 || tm.Rank() != 1 || tm.WorldRank(0) != 1 {
			return fmt.Errorf("MakeTeam mapping wrong")
		}
		if err := s.Bcast(s.WorldTeam(), nil, 0); err != core.ErrUnsupported {
			return fmt.Errorf("collectives should be unsupported")
		}
		s.Poll()
		return s.Barrier(s.WorldTeam())
	})
}

func TestRegisteredSegmentPutGet(t *testing.T) {
	run(t, 3, nil, func(s *S) error {
		seg, err := s.AllocSegment(s.WorldTeam(), 64, 42)
		if err != nil {
			return err
		}
		if err := s.Barrier(s.WorldTeam()); err != nil {
			return err
		}
		me := s.Proc().ID()
		next := (me + 1) % 3
		if err := s.Put(seg, next, 8, []byte{byte(me + 1)}); err != nil {
			return err
		}
		if err := s.Barrier(s.WorldTeam()); err != nil {
			return err
		}
		prev := (me + 2) % 3
		if seg.Local()[8] != byte(prev+1) {
			return fmt.Errorf("put landed wrong: %d", seg.Local()[8])
		}
		into := make([]byte, 1)
		if err := s.Get(seg, next, 8, into); err != nil {
			return err
		}
		if into[0] != byte(me+1) {
			return fmt.Errorf("get returned %d", into[0])
		}
		if err := s.Barrier(s.WorldTeam()); err != nil { // all gets done
			return err
		}
		if err := s.FreeSegment(seg); err != nil {
			return err
		}
		if err := s.Barrier(s.WorldTeam()); err != nil {
			return err
		}
		// Every image has dropped its registration now.
		if err := s.Put(seg, next, 0, []byte{1}); err == nil {
			return fmt.Errorf("put to freed segment should fail")
		}
		return s.Barrier(s.WorldTeam())
	})
}

func TestAMFragmentationRoundTrip(t *testing.T) {
	// Payloads above gasnet.MaxMedium must fragment and reassemble.
	sizes := []int{0, 1, gasnet.MaxMedium, gasnet.MaxMedium + 1, 3*gasnet.MaxMedium + 17}
	for _, size := range sizes {
		size := size
		got := make([][]byte, 2)
		gotArgs := make([][]uint64, 2)
		done := make([]bool, 2)
		run(t, 2,
			func(im int) core.DeliverFunc {
				return func(src int, kind uint8, args []uint64, payload []byte) {
					got[im] = append([]byte(nil), payload...)
					gotArgs[im] = append([]uint64(nil), args...)
					done[im] = true
				}
			},
			func(s *S) error {
				if s.Proc().ID() == 0 {
					payload := make([]byte, size)
					for i := range payload {
						payload[i] = byte(i * 7)
					}
					if err := s.AMSend(1, 9, []uint64{5, 6}, payload); err != nil {
						return err
					}
				} else {
					s.PollUntil(func() bool { return done[1] })
					if len(got[1]) != size {
						return fmt.Errorf("size %d: received %d bytes", size, len(got[1]))
					}
					for i, b := range got[1] {
						if b != byte(i*7) {
							return fmt.Errorf("size %d: corruption at %d", size, i)
						}
					}
					if len(gotArgs[1]) != 2 || gotArgs[1][1] != 6 {
						return fmt.Errorf("args mangled: %v", gotArgs[1])
					}
				}
				return s.Barrier(s.WorldTeam())
			})
	}
}

func TestAMArgLimit(t *testing.T) {
	run(t, 2, nil, func(s *S) error {
		tooMany := make([]uint64, gasnet.MaxArgs-4)
		if err := s.AMSend(1, 1, tooMany, nil); err == nil {
			return fmt.Errorf("oversized arg vector accepted")
		}
		return nil
	})
}

func TestDeferredAndFences(t *testing.T) {
	run(t, 2, nil, func(s *S) error {
		seg, err := s.AllocSegment(s.WorldTeam(), 64, 7)
		if err != nil {
			return err
		}
		copy(seg.Local(), bytes.Repeat([]byte{byte(s.Proc().ID() + 1)}, 64))
		if err := s.Barrier(s.WorldTeam()); err != nil {
			return err
		}
		peer := 1 - s.Proc().ID()
		into := make([]byte, 64)
		if err := s.GetDeferred(seg, peer, 0, into); err != nil {
			return err
		}
		if err := s.LocalFence(); err != nil {
			return err
		}
		if into[0] != byte(peer+1) {
			return fmt.Errorf("deferred get wrong: %d", into[0])
		}
		if err := s.PutDeferred(seg, peer, 32, []byte{0xAA}); err != nil {
			return err
		}
		if err := s.ReleaseFence(); err != nil {
			return err
		}
		if err := s.Barrier(s.WorldTeam()); err != nil {
			return err
		}
		if seg.Local()[32] != 0xAA {
			return fmt.Errorf("deferred put missing after release fence")
		}
		return nil
	})
}

func TestAsyncCompletions(t *testing.T) {
	run(t, 2, nil, func(s *S) error {
		seg, err := s.AllocSegment(s.WorldTeam(), 32, 3)
		if err != nil {
			return err
		}
		if err := s.Barrier(s.WorldTeam()); err != nil {
			return err
		}
		if s.Proc().ID() == 0 {
			comp, err := s.PutAsyncLocal(seg, 1, 0, []byte{1, 2, 3})
			if err != nil {
				return err
			}
			comp.Wait()
			if !comp.Test() {
				return fmt.Errorf("completion not done after Wait")
			}
			into := make([]byte, 3)
			g, err := s.GetAsync(seg, 1, 0, into)
			if err != nil {
				return err
			}
			g.Wait()
			if into[2] != 3 {
				return fmt.Errorf("async get returned %v", into)
			}
		}
		return s.Barrier(s.WorldTeam())
	})
}

func TestAMWriteModeDelivers(t *testing.T) {
	// AM-mediated writes (Options.AMWrite) still deliver correct data when
	// the target polls (the Figure 2 hazard only bites when it cannot).
	w := sim.NewWorld(2)
	err := w.Run(func(p *sim.Proc) error {
		s, err := New(p, fabric.AttachNet(p.World(), tp()),
			func(int, uint8, []uint64, []byte) {}, Options{AMWrite: true})
		if err != nil {
			return err
		}
		seg, err := s.AllocSegment(s.WorldTeam(), 64<<10, 11)
		if err != nil {
			return err
		}
		if err := s.Barrier(s.WorldTeam()); err != nil {
			return err
		}
		if p.ID() == 0 {
			big := bytes.Repeat([]byte{0x42}, 40<<10) // multiple AM chunks
			if err := s.Put(seg, 1, 100, big); err != nil {
				return err
			}
		} else {
			// The target must poll for the writer's AM chunks to land; the
			// barrier below polls internally.
		}
		if err := s.Barrier(s.WorldTeam()); err != nil {
			return err
		}
		if p.ID() == 1 {
			loc := seg.Local()
			if loc[100] != 0x42 || loc[100+40<<10-1] != 0x42 || loc[99] != 0 {
				return fmt.Errorf("AM write landed wrong")
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestFootprintGrowsWithSlabs(t *testing.T) {
	run(t, 2, nil, func(s *S) error {
		before := s.MemoryFootprint()
		seg, err := s.AllocSegment(s.WorldTeam(), 1<<20, 99)
		if err != nil {
			return err
		}
		if s.MemoryFootprint()-before != 1<<20 {
			return fmt.Errorf("slab not accounted: delta %d", s.MemoryFootprint()-before)
		}
		if err := s.Barrier(s.WorldTeam()); err != nil {
			return err
		}
		if err := s.FreeSegment(seg); err != nil {
			return err
		}
		if s.MemoryFootprint() != before {
			return fmt.Errorf("footprint %d after free, want %d", s.MemoryFootprint(), before)
		}
		return s.Barrier(s.WorldTeam())
	})
}
