package elem

import (
	"fmt"
	"math"
	"unsafe"
)

// Kind identifies an element type for typed operations (reductions,
// accumulates). Point-to-point transfers are byte-oriented; the datatype
// gives element size and arithmetic.
type Kind int

// Predefined datatypes.
const (
	Byte Kind = iota
	Int32
	Int64
	Uint64
	Float64
	Complex128
)

// Size returns the element size in bytes.
func (d Kind) Size() int {
	switch d {
	case Byte:
		return 1
	case Int32:
		return 4
	case Int64, Uint64, Float64:
		return 8
	case Complex128:
		return 16
	default:
		panic(fmt.Sprintf("elem: unknown datatype %d", int(d)))
	}
}

func (d Kind) String() string {
	switch d {
	case Byte:
		return "MPI_BYTE"
	case Int32:
		return "MPI_INT32_T"
	case Int64:
		return "MPI_INT64_T"
	case Uint64:
		return "MPI_UINT64_T"
	case Float64:
		return "MPI_DOUBLE"
	case Complex128:
		return "MPI_C_DOUBLE_COMPLEX"
	default:
		return fmt.Sprintf("Kind(%d)", int(d))
	}
}

// Op is a reduction operator.
type Op int

// Predefined reduction operators. Replace is MPI_REPLACE (accumulate only);
// NoOp is MPI_NO_OP (fetch-only accumulate).
const (
	Sum Op = iota
	Prod
	Max
	Min
	BAnd
	BOr
	BXor
	Replace
	NoOp
)

func (o Op) String() string {
	switch o {
	case Sum:
		return "MPI_SUM"
	case Prod:
		return "MPI_PROD"
	case Max:
		return "MPI_MAX"
	case Min:
		return "MPI_MIN"
	case BAnd:
		return "MPI_BAND"
	case BOr:
		return "MPI_BOR"
	case BXor:
		return "MPI_BXOR"
	case Replace:
		return "MPI_REPLACE"
	case NoOp:
		return "MPI_NO_OP"
	default:
		return fmt.Sprintf("Op(%d)", int(o))
	}
}

// Byte-view helpers: reinterpret typed slices as byte slices without
// copying. The views alias the original memory.

// F64Bytes views a []float64 as bytes.
func F64Bytes(s []float64) []byte {
	if len(s) == 0 {
		return nil
	}
	return unsafe.Slice((*byte)(unsafe.Pointer(unsafe.SliceData(s))), len(s)*8)
}

// I64Bytes views a []int64 as bytes.
func I64Bytes(s []int64) []byte {
	if len(s) == 0 {
		return nil
	}
	return unsafe.Slice((*byte)(unsafe.Pointer(unsafe.SliceData(s))), len(s)*8)
}

// U64Bytes views a []uint64 as bytes.
func U64Bytes(s []uint64) []byte {
	if len(s) == 0 {
		return nil
	}
	return unsafe.Slice((*byte)(unsafe.Pointer(unsafe.SliceData(s))), len(s)*8)
}

// I32Bytes views a []int32 as bytes.
func I32Bytes(s []int32) []byte {
	if len(s) == 0 {
		return nil
	}
	return unsafe.Slice((*byte)(unsafe.Pointer(unsafe.SliceData(s))), len(s)*4)
}

// C128Bytes views a []complex128 as bytes.
func C128Bytes(s []complex128) []byte {
	if len(s) == 0 {
		return nil
	}
	return unsafe.Slice((*byte)(unsafe.Pointer(unsafe.SliceData(s))), len(s)*16)
}

// BytesF64 views a byte slice as []float64. len(b) must be a multiple of 8.
func BytesF64(b []byte) []float64 {
	if len(b) == 0 {
		return nil
	}
	return unsafe.Slice((*float64)(unsafe.Pointer(unsafe.SliceData(b))), len(b)/8)
}

// BytesI64 views a byte slice as []int64.
func BytesI64(b []byte) []int64 {
	if len(b) == 0 {
		return nil
	}
	return unsafe.Slice((*int64)(unsafe.Pointer(unsafe.SliceData(b))), len(b)/8)
}

// BytesU64 views a byte slice as []uint64.
func BytesU64(b []byte) []uint64 {
	if len(b) == 0 {
		return nil
	}
	return unsafe.Slice((*uint64)(unsafe.Pointer(unsafe.SliceData(b))), len(b)/8)
}

// BytesI32 views a byte slice as []int32.
func BytesI32(b []byte) []int32 {
	if len(b) == 0 {
		return nil
	}
	return unsafe.Slice((*int32)(unsafe.Pointer(unsafe.SliceData(b))), len(b)/4)
}

// BytesC128 views a byte slice as []complex128.
func BytesC128(b []byte) []complex128 {
	if len(b) == 0 {
		return nil
	}
	return unsafe.Slice((*complex128)(unsafe.Pointer(unsafe.SliceData(b))), len(b)/16)
}

// ReduceInto computes acc = op(acc, in) element-wise. Buffers must have
// equal length, a multiple of dt.Size().
func ReduceInto(acc, in []byte, dt Kind, op Op) error {
	if len(acc) != len(in) {
		return fmt.Errorf("elem: reduce buffer size mismatch (%d vs %d)", len(acc), len(in))
	}
	if len(acc)%dt.Size() != 0 {
		return fmt.Errorf("elem: reduce buffer size %d not a multiple of %s size %d", len(acc), dt, dt.Size())
	}
	if op == NoOp {
		return nil
	}
	if op == Replace {
		copy(acc, in)
		return nil
	}
	switch dt {
	case Byte:
		return reduceOrdered(acc, in, op)
	case Int32:
		return reduceNumeric(BytesI32(acc), BytesI32(in), op)
	case Int64:
		return reduceNumeric(BytesI64(acc), BytesI64(in), op)
	case Uint64:
		return reduceNumeric(BytesU64(acc), BytesU64(in), op)
	case Float64:
		a, b := BytesF64(acc), BytesF64(in)
		switch op {
		case Sum:
			for i := range a {
				a[i] += b[i]
			}
		case Prod:
			for i := range a {
				a[i] *= b[i]
			}
		case Max:
			for i := range a {
				a[i] = math.Max(a[i], b[i])
			}
		case Min:
			for i := range a {
				a[i] = math.Min(a[i], b[i])
			}
		default:
			return fmt.Errorf("elem: op %s invalid for %s", op, dt)
		}
		return nil
	case Complex128:
		a, b := BytesC128(acc), BytesC128(in)
		switch op {
		case Sum:
			for i := range a {
				a[i] += b[i]
			}
		case Prod:
			for i := range a {
				a[i] *= b[i]
			}
		default:
			return fmt.Errorf("elem: op %s invalid for %s", op, dt)
		}
		return nil
	default:
		return fmt.Errorf("elem: unknown datatype %d", int(dt))
	}
}

type integer interface {
	~int32 | ~int64 | ~uint64
}

func reduceNumeric[T integer](a, b []T, op Op) error {
	switch op {
	case Sum:
		for i := range a {
			a[i] += b[i]
		}
	case Prod:
		for i := range a {
			a[i] *= b[i]
		}
	case Max:
		for i := range a {
			if b[i] > a[i] {
				a[i] = b[i]
			}
		}
	case Min:
		for i := range a {
			if b[i] < a[i] {
				a[i] = b[i]
			}
		}
	case BAnd:
		for i := range a {
			a[i] &= b[i]
		}
	case BOr:
		for i := range a {
			a[i] |= b[i]
		}
	case BXor:
		for i := range a {
			a[i] ^= b[i]
		}
	default:
		return fmt.Errorf("elem: unsupported integer op %s", op)
	}
	return nil
}

func reduceOrdered(a, b []byte, op Op) error {
	switch op {
	case Sum:
		for i := range a {
			a[i] += b[i]
		}
	case Prod:
		for i := range a {
			a[i] *= b[i]
		}
	case Max:
		for i := range a {
			if b[i] > a[i] {
				a[i] = b[i]
			}
		}
	case Min:
		for i := range a {
			if b[i] < a[i] {
				a[i] = b[i]
			}
		}
	case BAnd:
		for i := range a {
			a[i] &= b[i]
		}
	case BOr:
		for i := range a {
			a[i] |= b[i]
		}
	case BXor:
		for i := range a {
			a[i] ^= b[i]
		}
	default:
		return fmt.Errorf("elem: unsupported byte op %s", op)
	}
	return nil
}
