package elem

import (
	"math"
	"testing"
	"testing/quick"
)

func TestKindSizes(t *testing.T) {
	cases := map[Kind]int{Byte: 1, Int32: 4, Int64: 8, Uint64: 8, Float64: 8, Complex128: 16}
	for k, want := range cases {
		if k.Size() != want {
			t.Errorf("%v.Size() = %d, want %d", k, k.Size(), want)
		}
	}
}

func TestKindAndOpStrings(t *testing.T) {
	if Float64.String() != "MPI_DOUBLE" || Int64.String() != "MPI_INT64_T" {
		t.Error("kind names drifted")
	}
	if Sum.String() != "MPI_SUM" || NoOp.String() != "MPI_NO_OP" {
		t.Error("op names drifted")
	}
}

func TestByteViewsRoundTrip(t *testing.T) {
	f := []float64{1.5, -2.25, math.Pi}
	b := F64Bytes(f)
	if len(b) != 24 {
		t.Fatalf("F64Bytes len %d", len(b))
	}
	back := BytesF64(b)
	back[1] = 7 // views alias
	if f[1] != 7 {
		t.Error("byte view does not alias the original")
	}
	if len(F64Bytes(nil)) != 0 || len(BytesI64(nil)) != 0 {
		t.Error("nil slices should view as empty")
	}
	c := []complex128{complex(1, 2)}
	if got := BytesC128(C128Bytes(c))[0]; got != complex(1, 2) {
		t.Errorf("complex view %v", got)
	}
	u := []uint64{42}
	if BytesU64(U64Bytes(u))[0] != 42 {
		t.Error("uint64 view")
	}
	i32 := []int32{-1, 2}
	if BytesI32(I32Bytes(i32))[1] != 2 {
		t.Error("int32 view")
	}
}

func TestReduceIntoOps(t *testing.T) {
	acc := []int64{10, 20, 30}
	in := []int64{1, 2, 3}
	if err := ReduceInto(I64Bytes(acc), I64Bytes(in), Int64, Sum); err != nil {
		t.Fatal(err)
	}
	if acc[0] != 11 || acc[2] != 33 {
		t.Errorf("sum: %v", acc)
	}
	if err := ReduceInto(I64Bytes(acc), I64Bytes([]int64{100, 0, 0}), Int64, Max); err != nil {
		t.Fatal(err)
	}
	if acc[0] != 100 || acc[1] != 22 {
		t.Errorf("max: %v", acc)
	}
	if err := ReduceInto(I64Bytes(acc), I64Bytes([]int64{1, 1, 1}), Int64, Min); err != nil {
		t.Fatal(err)
	}
	if acc[0] != 1 {
		t.Errorf("min: %v", acc)
	}

	fa := []float64{2, 3}
	if err := ReduceInto(F64Bytes(fa), F64Bytes([]float64{4, 5}), Float64, Prod); err != nil {
		t.Fatal(err)
	}
	if fa[0] != 8 || fa[1] != 15 {
		t.Errorf("float prod: %v", fa)
	}

	ca := []complex128{complex(1, 1)}
	if err := ReduceInto(C128Bytes(ca), C128Bytes([]complex128{complex(2, -1)}), Complex128, Sum); err != nil {
		t.Fatal(err)
	}
	if ca[0] != complex(3, 0) {
		t.Errorf("complex sum: %v", ca)
	}

	ba := []byte{0b1100}
	if err := ReduceInto(ba, []byte{0b1010}, Byte, BXor); err != nil {
		t.Fatal(err)
	}
	if ba[0] != 0b0110 {
		t.Errorf("byte xor: %08b", ba[0])
	}
}

func TestReduceReplaceAndNoOp(t *testing.T) {
	acc := []int64{1, 2}
	if err := ReduceInto(I64Bytes(acc), I64Bytes([]int64{9, 9}), Int64, NoOp); err != nil {
		t.Fatal(err)
	}
	if acc[0] != 1 {
		t.Error("NoOp modified the accumulator")
	}
	if err := ReduceInto(I64Bytes(acc), I64Bytes([]int64{9, 8}), Int64, Replace); err != nil {
		t.Fatal(err)
	}
	if acc[0] != 9 || acc[1] != 8 {
		t.Errorf("Replace: %v", acc)
	}
}

func TestReduceErrors(t *testing.T) {
	if err := ReduceInto(make([]byte, 8), make([]byte, 16), Int64, Sum); err == nil {
		t.Error("length mismatch accepted")
	}
	if err := ReduceInto(make([]byte, 7), make([]byte, 7), Int64, Sum); err == nil {
		t.Error("non-multiple size accepted")
	}
	if err := ReduceInto(make([]byte, 8), make([]byte, 8), Float64, BAnd); err == nil {
		t.Error("bitwise op on float accepted")
	}
	if err := ReduceInto(make([]byte, 16), make([]byte, 16), Complex128, Max); err == nil {
		t.Error("ordering op on complex accepted")
	}
}

// Property: Sum reduce is commutative in its effect on independent copies.
func TestReduceSumCommutativeProperty(t *testing.T) {
	f := func(a, b []int64) bool {
		n := len(a)
		if len(b) < n {
			n = len(b)
		}
		if n == 0 {
			return true
		}
		x := append([]int64(nil), a[:n]...)
		y := append([]int64(nil), b[:n]...)
		if err := ReduceInto(I64Bytes(x), I64Bytes(b[:n]), Int64, Sum); err != nil {
			return false
		}
		if err := ReduceInto(I64Bytes(y), I64Bytes(a[:n]), Int64, Sum); err != nil {
			return false
		}
		for i := 0; i < n; i++ {
			if x[i] != y[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
