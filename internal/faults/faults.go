package faults

import (
	"errors"
	"fmt"
	"hash/fnv"
	"sort"
	"sync"
	"sync/atomic"

	"cafmpi/internal/sim"
)

// Sentinel errors for the typed failure surface. The caf package re-exports
// them; user code matches with errors.Is / errors.As.
var (
	// ErrImageFailed reports that an image crashed (a fault-plan crash
	// point). Collectives, finish, and event waits on surviving images
	// unblock with an error wrapping it instead of deadlocking (ULFM-style
	// global failure notification).
	ErrImageFailed = errors.New("image failed")

	// ErrTimeout reports a virtual-time delivery timeout.
	ErrTimeout = errors.New("virtual-time timeout")

	// ErrRetriesExhausted reports that a send burned its full
	// retransmission budget without an ack; it wraps ErrTimeout.
	ErrRetriesExhausted = fmt.Errorf("delivery retries exhausted: %w", ErrTimeout)

	// ErrInvalid reports invalid arguments to a runtime call (bad rank,
	// slot, count, plan, ...).
	ErrInvalid = errors.New("invalid argument")
)

// ImageError is the typed error every user-facing failure path returns:
// which image, which operation, and the sentinel cause (unwrappable).
// Image is -1 when no single image is to blame (e.g. cancellation).
type ImageError struct {
	Image int
	Op    string
	Err   error
}

func (e *ImageError) Error() string {
	if e.Image < 0 {
		return fmt.Sprintf("caf: %s: %v", e.Op, e.Err)
	}
	return fmt.Sprintf("caf: %s: image %d: %v", e.Op, e.Image, e.Err)
}

func (e *ImageError) Unwrap() error { return e.Err }

// Crashed is the panic value the fabric raises on the crashing image's own
// goroutine when it hits a crash point. The core runtime recovers it into
// an *ImageError; if it escapes to sim.World.Run instead, the resulting
// *sim.PanicError unwraps to it, so errors.Is(err, ErrImageFailed) holds
// either way.
type Crashed struct{ Image int }

func (c Crashed) Error() string { return fmt.Sprintf("image %d crashed (fault plan)", c.Image) }
func (c Crashed) Unwrap() error { return ErrImageFailed }

// Into converts the panic value to the typed error form.
func (c Crashed) Into() *ImageError {
	return &ImageError{Image: c.Image, Op: "crash", Err: ErrImageFailed}
}

// Event is one injected-fault log entry. T is the virtual clock of the
// image that recorded it (sender for send-side faults, receiver for
// dedups); the decision fields (Kind/Layer/Class/Src/Dst/Seq/Attempt) are
// schedule-independent, which is what Signature captures.
type Event struct {
	T       int64  `json:"t_ns"`
	Kind    string `json:"kind"`
	Layer   string `json:"layer,omitempty"`
	Class   uint8  `json:"class,omitempty"`
	Src     int    `json:"src"`
	Dst     int    `json:"dst"`
	Seq     uint64 `json:"seq"`
	Attempt int    `json:"attempt,omitempty"`
	DelayNS int64  `json:"delay_ns,omitempty"`
}

func (ev Event) String() string {
	s := fmt.Sprintf("t=%-12d %-18s %d->%d seq=%d", ev.T, ev.Kind+"["+ev.Layer+"]", ev.Src, ev.Dst, ev.Seq)
	if ev.Attempt > 0 {
		s += fmt.Sprintf(" attempt=%d", ev.Attempt)
	}
	if ev.DelayNS > 0 {
		s += fmt.Sprintf(" delay=%dns", ev.DelayNS)
	}
	return s
}

// Extra event kinds beyond the rule kinds.
const (
	KindExhausted = "retries_exhausted" // sender gave up on a message
	KindDedup     = "dedup"             // receiver dropped a duplicate
	KindCrash     = "crash"             // image hit a crash point
	KindStall     = "stall"             // image hit a stall point
	KindBlackhole = "blackhole"         // send to an already-failed image
)

// Signature renders the schedule-independent decision content of a fault
// log: sorted, without timestamps, excluding blackhole events (how many
// sends race a crash before noticing it is schedule-dependent; every other
// decision is a pure function of the plan and program order). Two runs of
// the same program under the same plan produce equal signatures.
func Signature(evs []Event) string {
	keep := make([]Event, 0, len(evs))
	for _, ev := range evs {
		if ev.Kind == KindBlackhole {
			continue
		}
		ev.T = 0
		keep = append(keep, ev)
	}
	sortEvents(keep)
	var b []byte
	for _, ev := range keep {
		b = fmt.Appendf(b, "%s %s c%d %d->%d seq=%d a%d d%d\n",
			ev.Kind, ev.Layer, ev.Class, ev.Src, ev.Dst, ev.Seq, ev.Attempt, ev.DelayNS)
	}
	return string(b)
}

// SignatureHash condenses Signature(evs) into a short hex digest for
// one-line determinism reports (two runs with the same plan and seed print
// the same hash).
func SignatureHash(evs []Event) string {
	h := fnv.New64a()
	h.Write([]byte(Signature(evs)))
	return fmt.Sprintf("%016x", h.Sum64())
}

func sortEvents(evs []Event) {
	sort.Slice(evs, func(i, j int) bool {
		a, b := evs[i], evs[j]
		if a.Src != b.Src {
			return a.Src < b.Src
		}
		if a.Dst != b.Dst {
			return a.Dst < b.Dst
		}
		if a.Seq != b.Seq {
			return a.Seq < b.Seq
		}
		if a.Attempt != b.Attempt {
			return a.Attempt < b.Attempt
		}
		return a.Kind < b.Kind
	})
}

// Verdict is what the fabric applies for one send.
type Verdict struct {
	// Seq is the sender's per-destination program-order sequence number of
	// this message (keys the duplicate-suppression sweep).
	Seq uint64
	// Retries is how many retransmissions the ack/timeout protocol needed;
	// RetryWaitNS is the total virtual time the sender spent in timeouts
	// and backoff before the successful attempt (charged to its clock).
	Retries     int
	RetryWaitNS int64
	// DelayNS shifts the message's arrival (delay/reorder rules).
	DelayNS int64
	// Dup asks the fabric to enqueue a second copy arriving DupDelayNS
	// after the original; the receiver's dedup sweep absorbs only one.
	Dup        bool
	DupDelayNS int64
	// Exhausted: every attempt up to MaxRetries was dropped; the send
	// fails with ErrRetriesExhausted.
	Exhausted bool
	// Injected counts fault events this verdict logged (for obs).
	Injected int
}

// State is the world-shared fault state: the injector (nil without a
// plan), the failure/cancellation latch, and the per-image fault logs.
// All methods are safe on a nil *State (faults never enabled).
type State struct {
	plan *Plan
	inj  *injector

	down    atomic.Uint32         // 1 once failed or canceled
	failed  atomic.Int64          // first failed image + 1
	imgDown []atomic.Bool         // per-image failed flags (ImageDown)
	cancel  atomic.Pointer[error] // cancellation cause

	wakeMu sync.Mutex
	wakes  []func()

	logs []imageLog
}

type imageLog struct {
	mu  sync.Mutex
	evs []Event
}

// injector holds the active plan's decision state. Mutable slices are
// indexed by sending image and touched only from that image's goroutine,
// so decisions stay lock-free and schedule-independent.
type injector struct {
	seed         uint64
	maxRetries   int
	retryTimeout int64
	rules        []Rule
	crashes      []CrashPoint
	stalls       []StallPoint

	n          int
	seqs       []uint64   // [src*n+dst]: per-destination send counters
	counts     [][]uint32 // [src][rule]: per-sender fire counts (MaxCount)
	crashFired []bool     // one-shot latches, owner-image only
	stallFired []bool
}

const stateKey = "faults.state"

// Enable installs the plan's fault state on the world (idempotent; the
// first caller's plan wins, and every image calls it in Boot before the
// fabric attaches). A nil or empty plan still creates the State so the
// failure/cancellation latch works, but leaves the injector off — the
// zero-cost default that keeps virtual clocks bit-exact vs. the goldens.
func Enable(w *sim.World, plan *Plan) *State {
	return w.Shared(stateKey, func() any {
		return newState(w.N(), plan)
	}).(*State)
}

// Enabled returns the world's fault state, or nil if Enable was never
// called (plain fabric tests).
func Enabled(w *sim.World) *State {
	if v, ok := w.Peek(stateKey); ok {
		return v.(*State)
	}
	return nil
}

func newState(n int, plan *Plan) *State {
	st := &State{plan: plan, logs: make([]imageLog, n), imgDown: make([]atomic.Bool, n)}
	if plan.empty() {
		return st
	}
	inj := &injector{
		seed:         plan.Seed,
		maxRetries:   plan.maxRetries(),
		retryTimeout: plan.retryTimeout(),
		rules:        plan.Rules,
		crashes:      plan.Crashes,
		stalls:       plan.Stalls,
		n:            n,
		seqs:         make([]uint64, n*n),
		crashFired:   make([]bool, len(plan.Crashes)),
		stallFired:   make([]bool, len(plan.Stalls)),
	}
	inj.counts = make([][]uint32, n)
	for i := range inj.counts {
		inj.counts[i] = make([]uint32, len(plan.Rules))
	}
	st.inj = inj
	return st
}

// Plan returns the installed plan (nil without one).
func (st *State) Plan() *Plan {
	if st == nil {
		return nil
	}
	return st.plan
}

// Active reports whether the injector is live (a non-empty plan). The
// fabric's hot path checks this once per send.
func (st *State) Active() bool { return st != nil && st.inj != nil }

// Down reports whether the job is failing: an image crashed or the job
// was canceled. Blocking loops check it before parking.
func (st *State) Down() bool { return st != nil && st.down.Load() != 0 }

// Err returns the failure latch as a typed error (nil while healthy).
func (st *State) Err() error { return st.ErrOp("wait") }

// ErrOp is Err with the blocked operation's kind stamped into the
// *ImageError, so "which op gave up" survives into the user's error chain.
func (st *State) ErrOp(op string) error {
	if st == nil || st.down.Load() == 0 {
		return nil
	}
	if c := st.cancel.Load(); c != nil {
		return &ImageError{Image: -1, Op: op, Err: *c}
	}
	if f := st.failed.Load(); f > 0 {
		return &ImageError{Image: int(f - 1), Op: op, Err: ErrImageFailed}
	}
	return &ImageError{Image: -1, Op: op, Err: ErrImageFailed}
}

// FailedImage returns the first crashed image, or -1.
func (st *State) FailedImage() int {
	if st == nil {
		return -1
	}
	return int(st.failed.Load()) - 1
}

// Cancel trips the failure latch with a cancellation cause (ctx.Done()):
// every parked wait across the job wakes and returns an error wrapping
// cause.
func (st *State) Cancel(cause error) {
	if st == nil {
		return
	}
	if cause == nil {
		cause = errors.New("job canceled")
	}
	st.cancel.CompareAndSwap(nil, &cause)
	st.trip()
}

// MarkFailed latches image img as failed and wakes every parked waiter.
// Every crashed image is tracked (ImageDown blackholes sends to all of
// them); FailedImage keeps reporting the first.
func (st *State) MarkFailed(img int) {
	if st == nil {
		return
	}
	if img >= 0 && img < len(st.imgDown) {
		st.imgDown[img].Store(true)
	}
	st.failed.CompareAndSwap(0, int64(img)+1)
	st.trip()
}

func (st *State) trip() {
	st.down.Store(1)
	st.wakeMu.Lock()
	wakes := make([]func(), len(st.wakes))
	copy(wakes, st.wakes)
	st.wakeMu.Unlock()
	for _, fn := range wakes {
		fn()
	}
}

// OnWake registers a broadcast hook (the fabric's endpoint wake-all) fired
// when the failure latch trips; if it already tripped, fn runs now.
func (st *State) OnWake(fn func()) {
	if st == nil || fn == nil {
		return
	}
	st.wakeMu.Lock()
	st.wakes = append(st.wakes, fn)
	st.wakeMu.Unlock()
	if st.down.Load() != 0 {
		fn()
	}
}

// Record appends a fault event to image img's log.
func (st *State) Record(img int, ev Event) {
	if st == nil || img < 0 || img >= len(st.logs) {
		return
	}
	l := &st.logs[img]
	l.mu.Lock()
	l.evs = append(l.evs, ev)
	l.mu.Unlock()
}

// Log returns the merged injected-fault log in canonical (Src, Dst, Seq,
// Attempt, Kind) order.
func (st *State) Log() []Event {
	if st == nil {
		return nil
	}
	var out []Event
	for i := range st.logs {
		l := &st.logs[i]
		l.mu.Lock()
		out = append(out, l.evs...)
		l.mu.Unlock()
	}
	sortEvents(out)
	return out
}

// OnSend computes the fault verdict for one message send. Pure except for
// the sender-owned sequence/budget counters and the fault log; the fabric
// applies every clock effect. Call only when Active().
func (st *State) OnSend(layer string, class uint8, src, dst int, now int64) Verdict {
	inj := st.inj
	v := Verdict{Seq: inj.nextSeq(src, dst)}
	if len(inj.rules) == 0 {
		return v
	}

	// Drop rules drive the ack/timeout/retry protocol: each attempt is
	// re-rolled (salted with the attempt number); a dropped attempt costs
	// the sender one backoff timeout. The protocol is folded into the
	// sender's virtual time — no retransmitted message objects exist, so
	// the decision stream stays bit-reproducible.
	for attempt := 0; ; attempt++ {
		dropped := false
		for ri := range inj.rules {
			r := &inj.rules[ri]
			if r.Kind != KindDrop || !r.matches(layer, class, src, dst, now) {
				continue
			}
			if !inj.budgetOK(src, ri) {
				continue
			}
			if inj.roll(src, dst, v.Seq, uint64(ri), uint64(attempt)) < r.Prob {
				inj.consume(src, ri)
				st.Record(src, Event{T: now, Kind: KindDrop, Layer: layer, Class: class,
					Src: src, Dst: dst, Seq: v.Seq, Attempt: attempt})
				v.Injected++
				dropped = true
				break
			}
		}
		if !dropped {
			break
		}
		if attempt >= inj.maxRetries {
			st.Record(src, Event{T: now, Kind: KindExhausted, Layer: layer, Class: class,
				Src: src, Dst: dst, Seq: v.Seq, Attempt: attempt})
			v.Injected++
			v.Exhausted = true
			return v
		}
		v.RetryWaitNS += inj.retryTimeout << uint(attempt)
		v.Retries++
	}

	// Non-drop rules roll once against the successful attempt.
	for ri := range inj.rules {
		r := &inj.rules[ri]
		if r.Kind == KindDrop || !r.matches(layer, class, src, dst, now) {
			continue
		}
		if !inj.budgetOK(src, ri) {
			continue
		}
		roll := inj.roll(src, dst, v.Seq, uint64(ri), saltOnce)
		if roll >= r.Prob {
			continue
		}
		inj.consume(src, ri)
		ev := Event{T: now, Kind: r.Kind, Layer: layer, Class: class, Src: src, Dst: dst, Seq: v.Seq}
		switch r.Kind {
		case KindDelay:
			v.DelayNS += r.DelayNS
			ev.DelayNS = r.DelayNS
		case KindReorder:
			// Hash-derived jitter in [0, DelayNS): distinct messages shift
			// by different amounts, so arrival order genuinely scrambles.
			j := int64(inj.bits(src, dst, v.Seq, uint64(ri), saltJitter) % uint64(r.DelayNS))
			v.DelayNS += j
			ev.DelayNS = j
		case KindDup:
			if !v.Dup {
				v.Dup = true
				v.DupDelayNS = r.DelayNS
				ev.DelayNS = r.DelayNS
			}
		}
		st.Record(src, Event{T: ev.T, Kind: ev.Kind, Layer: ev.Layer, Class: ev.Class,
			Src: ev.Src, Dst: ev.Dst, Seq: ev.Seq, DelayNS: ev.DelayNS})
		v.Injected++
	}
	return v
}

// Checkpoint is the crash/stall probe the fabric calls on every send and
// absorb: it returns any one-shot stall to charge, and whether the image
// just hit a crash point (the caller then panics with Crashed{img}).
// Call only when Active().
func (st *State) Checkpoint(img int, now int64) (stallNS int64, crashed bool) {
	inj := st.inj
	for si := range inj.stalls {
		s := &inj.stalls[si]
		if s.Image != img || now < s.AtNS || inj.stallFired[si] {
			continue
		}
		inj.stallFired[si] = true
		st.Record(img, Event{T: now, Kind: KindStall, Src: img, Dst: img, DelayNS: s.DurNS})
		stallNS += s.DurNS
	}
	for ci := range inj.crashes {
		c := &inj.crashes[ci]
		if c.Image != img || now < c.AtNS || inj.crashFired[ci] {
			continue
		}
		inj.crashFired[ci] = true
		st.Record(img, Event{T: now, Kind: KindCrash, Src: img, Dst: img})
		st.MarkFailed(img)
		crashed = true
	}
	return stallNS, crashed
}

// ImageDown reports whether img has crashed (sends to it blackhole). Unlike
// FailedImage it consults the full failed set, so with multiple crash points
// every dead image fail-fasts consistently.
func (st *State) ImageDown(img int) bool {
	return st != nil && img >= 0 && img < len(st.imgDown) && st.imgDown[img].Load()
}

// Hash salts distinguishing decision purposes.
const (
	saltOnce   = 1 << 20 // non-drop rules (attempt-independent)
	saltJitter = 1 << 21 // reorder jitter bits
)

// nextSeq returns the sender's program-order sequence number for dst
// (sender-goroutine only; shared across layers, which is fine because a
// sender's interleaving of layers is itself program order).
func (inj *injector) nextSeq(src, dst int) uint64 {
	i := src*inj.n + dst
	s := inj.seqs[i]
	inj.seqs[i] = s + 1
	return s
}

func (inj *injector) budgetOK(src, ri int) bool {
	r := &inj.rules[ri]
	return r.MaxCount == 0 || inj.counts[src][ri] < uint32(r.MaxCount)
}

func (inj *injector) consume(src, ri int) {
	if inj.rules[ri].MaxCount > 0 {
		inj.counts[src][ri]++
	}
}

// bits is the keyed decision hash: a splitmix64 chain over
// (seed, src, dst, seq, rule, salt). Schedule-independent by construction.
func (inj *injector) bits(src, dst int, seq, rule, salt uint64) uint64 {
	h := inj.seed
	h = mix(h ^ uint64(src)<<32 ^ uint64(dst))
	h = mix(h ^ seq)
	h = mix(h ^ rule<<40 ^ salt)
	return h
}

// roll maps the hash to [0,1) with 53 bits of precision.
func (inj *injector) roll(src, dst int, seq, rule, salt uint64) float64 {
	return float64(inj.bits(src, dst, seq, rule, salt)>>11) / (1 << 53)
}

// mix is the splitmix64 finalizer.
func mix(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}
