package faults

import (
	"errors"
	"testing"
)

// replay drives one OnSend per (src,dst) pair in the given order and
// returns the verdicts keyed by pair.
func replay(st *State, order [][2]int) map[[2]int][]Verdict {
	out := make(map[[2]int][]Verdict)
	for _, p := range order {
		out[p] = append(out[p], st.OnSend("mpi", 1, p[0], p[1], 0))
	}
	return out
}

// TestDecisionDeterminism: verdicts are a pure function of the plan and
// each sender's per-destination program order — interleaving sends from
// different pairs differently must not change any decision.
func TestDecisionDeterminism(t *testing.T) {
	plan := &Plan{Seed: 42, Rules: []Rule{
		{Kind: KindDrop, Src: -1, Dst: -1, Prob: 0.3},
		{Kind: KindDup, Src: -1, Dst: -1, Prob: 0.2, DelayNS: 500},
		{Kind: KindDelay, Src: -1, Dst: -1, Prob: 0.25, DelayNS: 1000},
	}}
	pairs := [][2]int{{0, 1}, {1, 0}, {0, 2}, {2, 1}}
	var orderA, orderB [][2]int
	for i := 0; i < 32; i++ {
		for _, p := range pairs {
			orderA = append(orderA, p)
		}
	}
	// B interleaves the same per-pair send streams completely differently.
	for _, p := range pairs {
		for i := 0; i < 32; i++ {
			orderB = append(orderB, p)
		}
	}
	a := replay(newState(4, plan), orderA)
	b := replay(newState(4, plan), orderB)
	injected := 0
	for _, p := range pairs {
		va, vb := a[p], b[p]
		if len(va) != 32 || len(vb) != 32 {
			t.Fatalf("pair %v: got %d/%d verdicts, want 32", p, len(va), len(vb))
		}
		for i := range va {
			if va[i] != vb[i] {
				t.Fatalf("pair %v send %d: verdict differs across interleavings: %+v vs %+v", p, i, va[i], vb[i])
			}
			if va[i].Seq != uint64(i) {
				t.Fatalf("pair %v send %d: seq %d, want program order", p, i, va[i].Seq)
			}
			injected += va[i].Injected
		}
	}
	if injected == 0 {
		t.Fatal("plan with prob 0.2-0.3 rules injected nothing in 128 sends")
	}
}

// TestSignatureScheduleIndependence: the signature ignores timestamps,
// log order, and blackhole events.
func TestSignatureScheduleIndependence(t *testing.T) {
	evs1 := []Event{
		{T: 100, Kind: KindDrop, Layer: "mpi", Src: 0, Dst: 1, Seq: 3},
		{T: 200, Kind: KindDup, Layer: "gasnet", Src: 1, Dst: 0, Seq: 7, DelayNS: 500},
		{T: 300, Kind: KindBlackhole, Src: 2, Dst: 1, Seq: 9},
	}
	evs2 := []Event{
		{T: 999, Kind: KindDup, Layer: "gasnet", Src: 1, Dst: 0, Seq: 7, DelayNS: 500},
		{T: 5, Kind: KindDrop, Layer: "mpi", Src: 0, Dst: 1, Seq: 3},
	}
	if Signature(evs1) != Signature(evs2) {
		t.Fatalf("signatures differ:\n%q\n%q", Signature(evs1), Signature(evs2))
	}
	if SignatureHash(evs1) != SignatureHash(evs2) {
		t.Fatal("signature hashes differ")
	}
	evs3 := append([]Event(nil), evs2...)
	evs3[0].Seq = 8
	if Signature(evs1) == Signature(evs3) {
		t.Fatal("signature blind to a decision change")
	}
}

// TestRetryExhaustion: a certain drop exhausts the retry budget with
// exponential backoff charged to the verdict.
func TestRetryExhaustion(t *testing.T) {
	st := newState(2, &Plan{Seed: 1, Rules: []Rule{{Kind: KindDrop, Src: -1, Dst: -1, Prob: 1}}})
	v := st.OnSend("mpi", 1, 0, 1, 0)
	if !v.Exhausted {
		t.Fatal("prob-1 drop did not exhaust retries")
	}
	if v.Retries != DefaultMaxRetries {
		t.Fatalf("retries = %d, want %d", v.Retries, DefaultMaxRetries)
	}
	want := int64(0)
	for k := 0; k < DefaultMaxRetries; k++ {
		want += DefaultRetryTimeoutNS << uint(k)
	}
	if v.RetryWaitNS != want {
		t.Fatalf("retry wait = %d, want %d (exponential backoff)", v.RetryWaitNS, want)
	}
	// maxRetries+1 drop events plus the exhaustion marker.
	if v.Injected != DefaultMaxRetries+2 {
		t.Fatalf("injected = %d, want %d", v.Injected, DefaultMaxRetries+2)
	}
}

// TestMaxCountBudget: MaxCount caps a rule's fires per sending image, in
// program order.
func TestMaxCountBudget(t *testing.T) {
	st := newState(2, &Plan{Seed: 1, Rules: []Rule{
		{Kind: KindDrop, Src: -1, Dst: -1, Prob: 1, MaxCount: 2},
	}})
	v := st.OnSend("mpi", 1, 0, 1, 0)
	if v.Exhausted {
		t.Fatal("budget 2 should not exhaust a 4-retry sender")
	}
	if v.Retries != 2 {
		t.Fatalf("retries = %d, want 2 (budget-capped)", v.Retries)
	}
	if v2 := st.OnSend("mpi", 1, 0, 1, 0); v2.Retries != 0 || v2.Injected != 0 {
		t.Fatalf("second send still faulted after budget spent: %+v", v2)
	}
}

// TestCheckpointOneShot: crash and stall points fire exactly once, only at
// or after their virtual time, and latch the failure state.
func TestCheckpointOneShot(t *testing.T) {
	st := newState(4, &Plan{Seed: 1,
		Crashes: []CrashPoint{{Image: 2, AtNS: 1000}},
		Stalls:  []StallPoint{{Image: 1, AtNS: 500, DurNS: 250}},
	})
	if ns, crashed := st.Checkpoint(2, 999); ns != 0 || crashed {
		t.Fatal("checkpoint fired before its virtual time")
	}
	if ns, crashed := st.Checkpoint(1, 600); ns != 250 || crashed {
		t.Fatalf("stall: got (%d,%v), want (250,false)", ns, crashed)
	}
	if ns, _ := st.Checkpoint(1, 700); ns != 0 {
		t.Fatal("stall fired twice")
	}
	if _, crashed := st.Checkpoint(2, 1000); !crashed {
		t.Fatal("crash point did not fire at its time")
	}
	if _, crashed := st.Checkpoint(2, 1100); crashed {
		t.Fatal("crash point fired twice")
	}
	if !st.Down() || !st.ImageDown(2) || st.FailedImage() != 2 {
		t.Fatal("crash did not latch the failure state")
	}
	err := st.ErrOp("barrier")
	if !errors.Is(err, ErrImageFailed) {
		t.Fatalf("ErrOp = %v, want ErrImageFailed chain", err)
	}
	var ie *ImageError
	if !errors.As(err, &ie) || ie.Image != 2 || ie.Op != "barrier" {
		t.Fatalf("ErrOp = %#v, want ImageError{Image:2, Op:barrier}", err)
	}
}

// TestMultipleFailedImages: ImageDown tracks every crashed image, not just
// the first (with two crash points, sends to either dead image must
// blackhole); FailedImage keeps reporting the first.
func TestMultipleFailedImages(t *testing.T) {
	st := newState(4, &Plan{})
	st.MarkFailed(2)
	st.MarkFailed(0)
	if st.FailedImage() != 2 {
		t.Fatalf("FailedImage = %d, want first-failed 2", st.FailedImage())
	}
	for img, want := range map[int]bool{0: true, 1: false, 2: true, 3: false} {
		if st.ImageDown(img) != want {
			t.Errorf("ImageDown(%d) = %v, want %v", img, !want, want)
		}
	}
	if st.ImageDown(-1) || st.ImageDown(4) {
		t.Fatal("out-of-range rank reported down")
	}
}

// TestCancel: cancellation trips the latch with the cause in the chain and
// fires wake hooks, including those registered after the trip.
func TestCancel(t *testing.T) {
	st := newState(2, &Plan{})
	cause := errors.New("deadline exceeded")
	woke := 0
	st.OnWake(func() { woke++ })
	st.Cancel(cause)
	if woke != 1 {
		t.Fatal("wake hook did not fire on cancel")
	}
	st.OnWake(func() { woke++ })
	if woke != 2 {
		t.Fatal("late wake hook did not fire immediately")
	}
	if err := st.Err(); !errors.Is(err, cause) {
		t.Fatalf("Err = %v, want chain containing the cancel cause", err)
	}
}

// TestNilState: every method is safe and inert on a nil state.
func TestNilState(t *testing.T) {
	var st *State
	if st.Active() || st.Down() || st.ImageDown(0) || st.Err() != nil || st.Plan() != nil {
		t.Fatal("nil state is not inert")
	}
	st.Cancel(nil)
	st.MarkFailed(0)
	st.Record(0, Event{})
	st.OnWake(func() { t.Fatal("nil state fired a wake") })
	if st.Log() != nil {
		t.Fatal("nil state has a log")
	}
}

// TestPlanJSON: JSON plans decode with wildcard defaults, reject unknown
// fields, and Validate catches malformed rules.
func TestPlanJSON(t *testing.T) {
	p, err := Parse([]byte(`{
		"seed": 7,
		"rules": [
			{"kind": "drop", "prob": 0.01},
			{"kind": "delay", "src": 0, "dst": 3, "prob": 1, "delay_ns": 2000}
		],
		"crashes": [{"image": 1, "at_ns": 50000}],
		"stalls": [{"image": 0, "at_ns": 100, "dur_ns": 400}]
	}`))
	if err != nil {
		t.Fatal(err)
	}
	if p.Seed != 7 || len(p.Rules) != 2 || len(p.Crashes) != 1 || len(p.Stalls) != 1 {
		t.Fatalf("decoded plan wrong: %+v", p)
	}
	if p.Rules[0].Src != -1 || p.Rules[0].Dst != -1 {
		t.Fatalf("omitted src/dst should default to wildcard -1, got %+v", p.Rules[0])
	}
	if p.Rules[1].Src != 0 || p.Rules[1].Dst != 3 {
		t.Fatalf("explicit src/dst lost: %+v", p.Rules[1])
	}
	if err := p.Validate(4); err != nil {
		t.Fatalf("valid plan rejected: %v", err)
	}
	if err := p.Validate(3); !errors.Is(err, ErrInvalid) {
		t.Fatalf("dst 3 in a 3-image world should fail validation, got %v", err)
	}

	bad := []string{
		`{"rules": [{"kind": "smash", "prob": 1}]}`,
		`{"rules": [{"kind": "drop", "prob": 1.5}]}`,
		`{"rules": [{"kind": "delay", "prob": 1}]}`,
		`{"rules": [{"kind": "drop", "prob": 1, "from_ns": 10, "until_ns": 5}]}`,
		`{"rules": [{"kind": "drop", "prob": 1, "layer": "tcp"}]}`,
		`{"stalls": [{"image": 0, "at_ns": 1, "dur_ns": 0}]}`,
		`{"bogus_field": 1}`,
	}
	for _, s := range bad {
		if _, err := Parse([]byte(s)); !errors.Is(err, ErrInvalid) {
			t.Errorf("Parse(%s) = %v, want ErrInvalid", s, err)
		}
	}
}

// TestLoadSpec: the -faults flag grammar.
func TestLoadSpec(t *testing.T) {
	p, err := LoadSpec("canonical")
	if err != nil || p.Seed != 1 || len(p.Rules) != 1 || p.Rules[0].Prob != 0.01 {
		t.Fatalf("canonical spec: %+v, %v", p, err)
	}
	if p, err = LoadSpec("canonical:99"); err != nil || p.Seed != 99 {
		t.Fatalf("canonical:99 spec: %+v, %v", p, err)
	}
	if _, err = LoadSpec("canonical:x"); !errors.Is(err, ErrInvalid) {
		t.Fatalf("bad canonical seed: %v", err)
	}
	if _, err = LoadSpec("/nonexistent/plan.json"); err == nil {
		t.Fatal("missing plan file did not error")
	}
}

// TestErrorChains: the exported sentinels compose as documented.
func TestErrorChains(t *testing.T) {
	if !errors.Is(ErrRetriesExhausted, ErrTimeout) {
		t.Fatal("ErrRetriesExhausted should wrap ErrTimeout")
	}
	c := Crashed{Image: 3}
	if !errors.Is(c, ErrImageFailed) {
		t.Fatal("Crashed should wrap ErrImageFailed")
	}
	ie := c.Into()
	if !errors.Is(ie, ErrImageFailed) || ie.Image != 3 {
		t.Fatalf("Into() = %#v", ie)
	}
}
