// Package faults is a deterministic, virtual-clock-driven fault injector
// for the simulated fabric. A Plan (JSON or programmatic) describes message
// faults — drop, duplicate, delay, reorder — per message class / source /
// destination / virtual-time window, plus image crash and stall points at
// virtual times. Every probabilistic decision is a pure keyed hash of
// (seed, src, dst, seq, rule, attempt), where seq is the sender's
// per-destination program-order message counter, so the injected-fault
// decisions are bit-reproducible across goroutine schedules — the same
// discipline the determinism goldens and the sanitizer rely on.
//
// The package only *computes* fault verdicts; the fabric applies them
// (clock advances, duplicate enqueues, crash panics). That keeps faults
// clock-pure: it never touches a simulated clock and never calls back into
// a runtime layer, which caflint's clockpure analyzer enforces.
package faults

import (
	"encoding/json"
	"fmt"
	"os"
	"strconv"
	"strings"
)

// Rule kinds.
const (
	KindDrop    = "drop"    // message lost; sender retries with backoff
	KindDup     = "dup"     // message delivered twice; receiver dedups
	KindDelay   = "delay"   // arrival delayed by DelayNS
	KindReorder = "reorder" // arrival jittered by hash-derived [0,DelayNS)
)

// Rule is one fault-injection rule. A rule matches a message when every
// constraint holds: Layer ("" = any, else "mpi"/"gasnet"), Class (0 = any),
// Src/Dst (-1 = any), and the sender's virtual clock lies in [From, Until)
// (Until 0 = unbounded). A matching rule fires with probability Prob, drawn
// from the keyed hash. MaxCount (0 = unlimited) caps how many times the
// rule fires per sending image, counted in the sender's program order so
// the cap is schedule-independent.
type Rule struct {
	Kind     string  `json:"kind"`
	Layer    string  `json:"layer,omitempty"`
	Class    int     `json:"class,omitempty"`
	Src      int     `json:"src"`
	Dst      int     `json:"dst"`
	From     int64   `json:"from_ns,omitempty"`
	Until    int64   `json:"until_ns,omitempty"`
	Prob     float64 `json:"prob"`
	DelayNS  int64   `json:"delay_ns,omitempty"`
	MaxCount int     `json:"max_count,omitempty"`
}

// UnmarshalJSON decodes a rule with wildcard defaults (Src/Dst -1) so a
// plan file may omit them; a literal 0 still means image 0.
func (r *Rule) UnmarshalJSON(b []byte) error {
	type alias Rule
	a := alias{Src: -1, Dst: -1}
	if err := json.Unmarshal(b, &a); err != nil {
		return err
	}
	*r = Rule(a)
	return nil
}

func (r *Rule) matches(layer string, class uint8, src, dst int, now int64) bool {
	if r.Layer != "" && r.Layer != layer {
		return false
	}
	if r.Class != 0 && r.Class != int(class) {
		return false
	}
	if r.Src >= 0 && r.Src != src {
		return false
	}
	if r.Dst >= 0 && r.Dst != dst {
		return false
	}
	if now < r.From {
		return false
	}
	if r.Until > 0 && now >= r.Until {
		return false
	}
	return true
}

// CrashPoint fails an image: the first fabric operation the image performs
// at or after virtual time AtNS panics with Crashed{Image}, which the core
// runtime converts into an ErrImageFailed-typed error, and every other
// image's blocked operation unblocks with the same error.
type CrashPoint struct {
	Image int   `json:"image"`
	AtNS  int64 `json:"at_ns"`
}

// StallPoint freezes an image once: the first fabric operation at or after
// AtNS charges an extra DurNS of virtual time (a GC pause, an OS jitter
// spike, a slow NIC — pick your poison).
type StallPoint struct {
	Image int   `json:"image"`
	AtNS  int64 `json:"at_ns"`
	DurNS int64 `json:"dur_ns"`
}

// Plan is a complete fault-injection schedule.
type Plan struct {
	// Seed keys the decision hash; two runs with the same plan make
	// bit-identical injection decisions.
	Seed uint64 `json:"seed"`
	// MaxRetries bounds the sender's retransmissions of a dropped message
	// (default 4). When every attempt is dropped the send fails with
	// ErrRetriesExhausted.
	MaxRetries int `json:"max_retries,omitempty"`
	// RetryTimeoutNS is the virtual-time ack timeout before the first
	// retransmission (default 8000ns); attempt k waits timeout<<k
	// (exponential backoff).
	RetryTimeoutNS int64 `json:"retry_timeout_ns,omitempty"`

	Rules   []Rule       `json:"rules,omitempty"`
	Crashes []CrashPoint `json:"crashes,omitempty"`
	Stalls  []StallPoint `json:"stalls,omitempty"`
}

// Defaults for the retry protocol.
const (
	DefaultMaxRetries     = 4
	DefaultRetryTimeoutNS = 8_000
)

func (p *Plan) maxRetries() int {
	if p.MaxRetries > 0 {
		return p.MaxRetries
	}
	return DefaultMaxRetries
}

func (p *Plan) retryTimeout() int64 {
	if p.RetryTimeoutNS > 0 {
		return p.RetryTimeoutNS
	}
	return DefaultRetryTimeoutNS
}

// empty reports whether the plan injects nothing (the zero-cost default).
func (p *Plan) empty() bool {
	return p == nil || (len(p.Rules) == 0 && len(p.Crashes) == 0 && len(p.Stalls) == 0)
}

// Validate checks the plan against the world size n (pass n <= 0 to skip
// rank range checks).
func (p *Plan) Validate(n int) error {
	if p == nil {
		return nil
	}
	inRange := func(r int) bool { return n <= 0 || (r >= 0 && r < n) }
	for i, r := range p.Rules {
		switch r.Kind {
		case KindDrop, KindDup, KindDelay, KindReorder:
		default:
			return fmt.Errorf("%w: rule %d: unknown kind %q", ErrInvalid, i, r.Kind)
		}
		if r.Layer != "" && r.Layer != "mpi" && r.Layer != "gasnet" {
			return fmt.Errorf("%w: rule %d: unknown layer %q", ErrInvalid, i, r.Layer)
		}
		if r.Prob < 0 || r.Prob > 1 {
			return fmt.Errorf("%w: rule %d: probability %g outside [0,1]", ErrInvalid, i, r.Prob)
		}
		if r.Src >= 0 && !inRange(r.Src) {
			return fmt.Errorf("%w: rule %d: src %d outside world [0,%d)", ErrInvalid, i, r.Src, n)
		}
		if r.Dst >= 0 && !inRange(r.Dst) {
			return fmt.Errorf("%w: rule %d: dst %d outside world [0,%d)", ErrInvalid, i, r.Dst, n)
		}
		if r.DelayNS < 0 {
			return fmt.Errorf("%w: rule %d: negative delay", ErrInvalid, i)
		}
		if (r.Kind == KindDelay || r.Kind == KindReorder) && r.DelayNS == 0 {
			return fmt.Errorf("%w: rule %d: %s rule needs delay_ns > 0", ErrInvalid, i, r.Kind)
		}
		if r.Until > 0 && r.Until <= r.From {
			return fmt.Errorf("%w: rule %d: empty window [%d,%d)", ErrInvalid, i, r.From, r.Until)
		}
	}
	for i, c := range p.Crashes {
		if !inRange(c.Image) {
			return fmt.Errorf("%w: crash %d: image %d outside world [0,%d)", ErrInvalid, i, c.Image, n)
		}
	}
	for i, s := range p.Stalls {
		if !inRange(s.Image) {
			return fmt.Errorf("%w: stall %d: image %d outside world [0,%d)", ErrInvalid, i, s.Image, n)
		}
		if s.DurNS <= 0 {
			return fmt.Errorf("%w: stall %d: dur_ns must be positive", ErrInvalid, i)
		}
	}
	return nil
}

// Parse decodes a JSON plan and validates its world-independent invariants.
func Parse(b []byte) (*Plan, error) {
	var p Plan
	dec := json.NewDecoder(strings.NewReader(string(b)))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&p); err != nil {
		return nil, fmt.Errorf("%w: parsing fault plan: %v", ErrInvalid, err)
	}
	if err := p.Validate(0); err != nil {
		return nil, err
	}
	return &p, nil
}

// Load reads a JSON plan from a file.
func Load(path string) (*Plan, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("loading fault plan: %w", err)
	}
	p, err := Parse(b)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return p, nil
}

// Canonical returns the canonical chaos plan: 1% uniform drop on every
// message class on both layers. It is the plan the CI chaos-smoke step and
// the EXPERIMENTS.md recipe run RandomAccess and the event ping-pong under.
func Canonical(seed uint64) *Plan {
	return &Plan{
		Seed:  seed,
		Rules: []Rule{{Kind: KindDrop, Src: -1, Dst: -1, Prob: 0.01}},
	}
}

// CanonicalCrash is Canonical plus a crash point: image 1 dies at 50µs of
// virtual time. It is the plan the flight-recorder smoke and the CI
// postmortem-artifact step use — every run of it produces the same
// signature-stamped bundle.
func CanonicalCrash(seed uint64) *Plan {
	p := Canonical(seed)
	p.Crashes = []CrashPoint{{Image: 1, AtNS: 50_000}}
	return p
}

// LoadSpec resolves a -faults flag value: "canonical" or "canonical:SEED"
// for the built-in 1%-drop plan, "canonical-crash" or "canonical-crash:SEED"
// for the same plan plus the image-1 crash point, anything else as a JSON
// plan file path.
func LoadSpec(spec string) (*Plan, error) {
	if spec == "canonical" {
		return Canonical(1), nil
	}
	if spec == "canonical-crash" {
		return CanonicalCrash(1), nil
	}
	if rest, ok := strings.CutPrefix(spec, "canonical-crash:"); ok {
		seed, err := strconv.ParseUint(rest, 10, 64)
		if err != nil {
			return nil, fmt.Errorf("%w: bad canonical seed %q", ErrInvalid, rest)
		}
		return CanonicalCrash(seed), nil
	}
	if rest, ok := strings.CutPrefix(spec, "canonical:"); ok {
		seed, err := strconv.ParseUint(rest, 10, 64)
		if err != nil {
			return nil, fmt.Errorf("%w: bad canonical seed %q", ErrInvalid, rest)
		}
		return Canonical(seed), nil
	}
	return Load(spec)
}
