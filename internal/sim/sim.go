// Package sim provides the virtual-time execution engine on which the whole
// stack runs. A World hosts N process images, each executing the user's
// program on its own goroutine. Every image owns a virtual clock (int64
// nanoseconds); communication layers charge costs against these clocks and
// carry timestamps on messages, so aggregate timings reproduce the scaling
// behaviour of a real machine while the program itself executes real code on
// real data.
//
// Clock discipline: an image's clock is read and advanced only from the
// image's own goroutine. Cross-image time flows exclusively through message
// timestamps (the receiver advances to max(local, arrival)), which keeps the
// simulation race-free without global coordination.
package sim

import (
	"fmt"
	"math/rand"
	"os"
	"runtime/debug"
	"sync"
	"time"
)

// World hosts a set of process images and the shared registries that
// communication layers use to reach each other's state.
type World struct {
	n     int
	procs []*Proc

	sharedMu sync.Mutex
	shared   map[string]any
}

// NewWorld creates a world with n images. n must be positive.
func NewWorld(n int) *World {
	if n <= 0 {
		panic(fmt.Sprintf("sim: world size must be positive, got %d", n))
	}
	w := &World{n: n, shared: make(map[string]any)}
	w.procs = make([]*Proc, n)
	for i := range w.procs {
		w.procs[i] = &Proc{id: i, n: n, world: w}
	}
	return w
}

// N returns the number of images in the world.
func (w *World) N() int { return w.n }

// Proc returns image i.
func (w *World) Proc(i int) *Proc { return w.procs[i] }

// Shared returns the world-wide object stored under key, creating it with mk
// on first use. Layers use this for cross-image registries (endpoint tables,
// window directories). mk runs at most once per key.
func (w *World) Shared(key string, mk func() any) any {
	w.sharedMu.Lock()
	defer w.sharedMu.Unlock()
	if v, ok := w.shared[key]; ok {
		return v
	}
	v := mk()
	w.shared[key] = v
	return v
}

// Peek returns the shared object stored under key, if any, without creating
// it. Optional subsystems (observability) use this to ask "was the registry
// ever enabled?" without paying for — or racing on — its construction.
func (w *World) Peek(key string) (any, bool) {
	w.sharedMu.Lock()
	defer w.sharedMu.Unlock()
	v, ok := w.shared[key]
	return v, ok
}

// PanicError wraps a panic that escaped an image's program.
type PanicError struct {
	Image int
	Value any
	Stack string
}

func (e *PanicError) Error() string {
	return fmt.Sprintf("sim: image %d panicked: %v\n%s", e.Image, e.Value, e.Stack)
}

// Unwrap exposes the panic value when it is itself an error, so typed
// failures thrown across the runtime (e.g. fault-injected image crashes)
// stay errors.Is-matchable even when no layer recovered them.
func (e *PanicError) Unwrap() error {
	if err, ok := e.Value.(error); ok {
		return err
	}
	return nil
}

// Run executes fn once per image, each on its own goroutine, and waits for
// all of them. It returns the first non-nil error (by image rank); panics in
// an image are converted to *PanicError rather than crashing the process.
func (w *World) Run(fn func(*Proc) error) error {
	errs := make([]error, w.n)
	var wg sync.WaitGroup
	wg.Add(w.n)
	for i := 0; i < w.n; i++ {
		go func(p *Proc) {
			defer wg.Done()
			defer func() {
				if r := recover(); r != nil {
					pe := &PanicError{Image: p.id, Value: r, Stack: string(debug.Stack())}
					if os.Getenv("SIM_DEBUG") != "" {
						fmt.Fprintf(os.Stderr, "SIM_DEBUG: %v\n", pe)
					}
					errs[p.id] = pe
				}
			}()
			errs[p.id] = fn(p)
		}(w.procs[i])
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// ErrTimeout is returned by RunTimeout when the program does not finish in
// time. The images keep running (goroutines cannot be killed); callers use
// this only in tests and demos that deliberately deadlock.
var ErrTimeout = fmt.Errorf("sim: run timed out")

// RunTimeout is Run with a wall-clock deadline, used to demonstrate and test
// deadlock scenarios (paper Figure 2). On timeout the abandoned goroutines
// keep running; the caller must not reuse the world.
func (w *World) RunTimeout(d time.Duration, fn func(*Proc) error) error {
	done := make(chan error, 1)
	go func() { done <- w.Run(fn) }()
	select {
	case err := <-done:
		return err
	case <-time.After(d): //caflint:allow wallclock -- host-time watchdog around a possibly deadlocked virtual run
		return ErrTimeout
	}
}

// Proc is a single process image.
type Proc struct {
	id    int
	n     int
	world *World
	clock int64
	rng   *rand.Rand
}

// ID returns the image's world rank in [0, N).
func (p *Proc) ID() int { return p.id }

// N returns the world size.
func (p *Proc) N() int { return p.n }

// World returns the hosting world.
func (p *Proc) World() *World { return p.world }

// Now returns the image's virtual clock in nanoseconds.
func (p *Proc) Now() int64 { return p.clock }

// Advance charges d nanoseconds of virtual time. Negative charges are
// ignored so cost models may return zero-clamped values freely.
func (p *Proc) Advance(d int64) {
	if d > 0 {
		p.clock += d
	}
}

// AdvanceTo moves the clock forward to t if t is in the future. It is the
// receive-side primitive: arrival timestamps enter the local clock here.
func (p *Proc) AdvanceTo(t int64) {
	if t > p.clock {
		p.clock = t
	}
}

// Rng returns the image's deterministic private random source. It is
// seeded on first use: rand.NewSource fills a large state table, which
// would dominate world construction for the many programs that never
// draw a random number.
func (p *Proc) Rng() *rand.Rand {
	if p.rng == nil {
		p.rng = rand.New(rand.NewSource(int64(p.id)*0x9E3779B9 + 1))
	}
	return p.rng
}
