package sim

import (
	"errors"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

func TestWorldRunsEveryImage(t *testing.T) {
	w := NewWorld(8)
	var count int64
	seen := make([]int32, 8)
	err := w.Run(func(p *Proc) error {
		atomic.AddInt64(&count, 1)
		atomic.AddInt32(&seen[p.ID()], 1)
		if p.N() != 8 {
			t.Errorf("image %d saw world size %d, want 8", p.ID(), p.N())
		}
		return nil
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if count != 8 {
		t.Fatalf("ran %d images, want 8", count)
	}
	for i, c := range seen {
		if c != 1 {
			t.Errorf("image %d ran %d times, want 1", i, c)
		}
	}
}

func TestWorldSizeValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewWorld(0) did not panic")
		}
	}()
	NewWorld(0)
}

func TestRunReturnsFirstErrorByRank(t *testing.T) {
	w := NewWorld(4)
	e2 := errors.New("boom-2")
	e1 := errors.New("boom-1")
	err := w.Run(func(p *Proc) error {
		switch p.ID() {
		case 1:
			return e1
		case 2:
			return e2
		}
		return nil
	})
	if err != e1 {
		t.Fatalf("got %v, want error from lowest failing rank (%v)", err, e1)
	}
}

func TestRunRecoversPanics(t *testing.T) {
	w := NewWorld(3)
	err := w.Run(func(p *Proc) error {
		if p.ID() == 1 {
			panic("deliberate")
		}
		return nil
	})
	var pe *PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("got %v, want *PanicError", err)
	}
	if pe.Image != 1 || !strings.Contains(pe.Error(), "deliberate") {
		t.Fatalf("unexpected panic error: %v", pe)
	}
}

func TestClockAdvance(t *testing.T) {
	w := NewWorld(1)
	err := w.Run(func(p *Proc) error {
		if p.Now() != 0 {
			t.Errorf("initial clock %d, want 0", p.Now())
		}
		p.Advance(100)
		p.Advance(-50) // negative charges are ignored
		if p.Now() != 100 {
			t.Errorf("clock %d after charges, want 100", p.Now())
		}
		p.AdvanceTo(80) // past timestamps do not rewind
		if p.Now() != 100 {
			t.Errorf("clock %d after stale AdvanceTo, want 100", p.Now())
		}
		p.AdvanceTo(250)
		if p.Now() != 250 {
			t.Errorf("clock %d after AdvanceTo, want 250", p.Now())
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestSharedCreatesOnce(t *testing.T) {
	w := NewWorld(16)
	var made int64
	err := w.Run(func(p *Proc) error {
		v := p.World().Shared("k", func() any {
			atomic.AddInt64(&made, 1)
			return new(int)
		})
		if v == nil {
			t.Error("Shared returned nil")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if made != 1 {
		t.Fatalf("constructor ran %d times, want 1", made)
	}
}

func TestRunTimeout(t *testing.T) {
	w := NewWorld(2)
	block := make(chan struct{})
	err := w.RunTimeout(30*time.Millisecond, func(p *Proc) error {
		if p.ID() == 0 {
			<-block // never closed: deliberate deadlock
		}
		return nil
	})
	if err != ErrTimeout {
		t.Fatalf("got %v, want ErrTimeout", err)
	}
	close(block)
}

func TestRngDeterministicPerImage(t *testing.T) {
	draw := func() []int64 {
		w := NewWorld(4)
		out := make([]int64, 4)
		if err := w.Run(func(p *Proc) error {
			out[p.ID()] = p.Rng().Int63()
			return nil
		}); err != nil {
			t.Fatal(err)
		}
		return out
	}
	a, b := draw(), draw()
	for i := range a {
		if a[i] != b[i] {
			t.Errorf("image %d rng not reproducible: %d vs %d", i, a[i], b[i])
		}
	}
	if a[0] == a[1] {
		t.Error("images 0 and 1 drew identical values; seeds not distinct")
	}
}
