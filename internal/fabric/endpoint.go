package fabric

import (
	"fmt"
	"math"
	"math/bits"
	"sync"
	"sync/atomic"

	"cafmpi/internal/faults"
	"cafmpi/internal/obs"
	"cafmpi/internal/obs/wallprof"
)

// The receive path. Arriving messages land in per-(class, src) buckets
// instead of one flat arrival-order slice; every message carries a global
// arrival sequence stamp, and matching takes the minimum-stamp eligible
// message across the buckets its spec selects. That reproduces the old
// linear scan exactly — "first in arrival order" and "least arrival stamp"
// are the same message — while an exact-source receive touches one bucket
// instead of wading through every unexpected message ahead of it, and the
// non-overtaking guarantee holds per stream because each bucket is itself
// stamp-ordered.
//
// Blocked receivers register the match domain they care about (classes ×
// source, plus whether pokes count); injection and Poke wake only waiters
// whose domain intersects the event instead of broadcasting to everyone.
//
// The queue lock is the owning shard's (shard.go): endpoints of one shard
// share a mutex, cross-shard deliveries arrive through the shard's inject
// ring, and every queue-reading operation drains that ring first so ring
// residency is never observable.

// AnySrc in a MatchSpec or WaitDomain matches messages from every source.
const AnySrc = -1

// NoTimeGate as MatchSpec.Before disables arrival-time gating.
const NoTimeGate = int64(math.MaxInt64)

// classLimit bounds message class values; ClassSet is a bitmask over them.
const classLimit = 64

// ClassSet is a bitmask of message classes.
type ClassSet uint64

// AllClasses selects every message class.
const AllClasses = ClassSet(math.MaxUint64)

// Classes builds a ClassSet from individual class values.
func Classes(cs ...uint8) ClassSet {
	var s ClassSet
	for _, c := range cs {
		s |= 1 << c
	}
	return s
}

// Has reports whether class c is in the set.
func (s ClassSet) Has(c uint8) bool { return s&(1<<c) != 0 }

// MatchSpec describes which queued messages a receive or probe is willing
// to take. Class and source narrow the bucket scan; Before gates on the
// message's arrival stamp (a receiver must not consume a message that is
// still in its virtual future); Filter, when non-nil, adds layer-specific
// selection (tag, context, posted-receive matching) and runs under the
// endpoint lock, so it must not call back into the endpoint.
//
// Callers are expected to keep a MatchSpec alive across calls (typically
// embedded in their own state with Filter bound once) so the per-poll
// closure allocations the old predicate API forced are gone.
type MatchSpec struct {
	Classes ClassSet
	Src     int   // world rank, or AnySrc
	Before  int64 // only messages with ArriveT <= Before are eligible
	Filter  func(*Message) bool
}

// matchAll is the spec equivalent of the old unconditioned predicates.
func matchAll(filter func(*Message) bool) MatchSpec {
	return MatchSpec{Classes: AllClasses, Src: AnySrc, Before: NoTimeGate, Filter: filter}
}

// PollState is the poll-loop snapshot an endpoint returns under a single
// lock acquisition: the activity counter, the queue depth, and the earliest
// arrival stamp among spec-matching messages that are not yet eligible
// (Earliest/HasEarliest ignore Before — they exist so a blocked receiver
// can advance its clock to the next candidate's arrival).
type PollState struct {
	Seq         uint64
	Depth       int
	Earliest    int64
	HasEarliest bool
}

// WaitDomain describes which events a blocked waiter must be woken for:
// arrivals whose (class, src) intersect it, and pokes if Pokes is set.
// A too-narrow domain loses wakeups; when unsure, widen.
type WaitDomain struct {
	Classes ClassSet
	Src     int // world rank, or AnySrc
	Pokes   bool
}

// FullDomain wakes for every arrival and every poke.
var FullDomain = WaitDomain{Classes: AllClasses, Src: AnySrc, Pokes: true}

// Endpoint is one image's receive queue within a layer.
type Endpoint struct {
	layer *Layer
	rank  int
	sh    *shard        // owning delivery shard; the queue lock lives there
	wrec  *wallprof.Rec // owner image's wall-clock recorder, nil when off

	// seq counts arrivals and pokes. Same-shard injection mutates it under
	// the shard mutex; cross-shard producers bump it at ring-push time. It
	// is read with a plain atomic load, so poll loops sample activity
	// without contending for the queue lock.
	seq atomic.Uint64

	// waiters counts goroutines registered in (or entering) waitLocked.
	// Cross-shard producers load it after pushing to the inject ring: when
	// zero they skip the wake handshake entirely; when nonzero they fence
	// through the shard mutex and broadcast (see waitLocked for why the
	// pairing cannot miss a wakeup).
	waiters atomic.Int32

	cond    *sync.Cond // on the shard mutex; woken only for this endpoint's events
	classes [classLimit]*classQueue
	present ClassSet // classes with at least one queued message
	nextSeq uint64   // next arrival stamp
	depth   int      // total queued messages

	// Registered domains of currently blocked waiters. In this simulator at
	// most the endpoint's owning image blocks on it (plus transient test
	// harness waiters), so a tiny inline array suffices; overflow falls back
	// to always-wake, which is merely the old Broadcast behavior.
	doms        [2]WaitDomain
	ndoms       int
	domOverflow int
}

func newEndpoint(l *Layer, rank int, sh *shard) *Endpoint {
	e := &Endpoint{layer: l, rank: rank, sh: sh, wrec: l.net.wp.Rec(rank)}
	e.cond = sync.NewCond(&sh.mu)
	return e
}

// classQueue holds one class's per-source buckets.
type classQueue struct {
	srcs  []bucket // indexed by source world rank
	count int
}

// bucket is a stamp-ordered FIFO of messages from one (class, src) pair.
// head avoids shifting on the common dequeue-from-front.
type bucket struct {
	msgs []*Message
	head int
}

func (b *bucket) size() int { return len(b.msgs) - b.head }

// removeAt deletes the message at absolute index i, preserving order.
func (b *bucket) removeAt(i int) {
	if i == b.head {
		b.msgs[i] = nil
		b.head++
	} else {
		copy(b.msgs[i:], b.msgs[i+1:])
		b.msgs[len(b.msgs)-1] = nil
		b.msgs = b.msgs[:len(b.msgs)-1]
	}
	if b.head == len(b.msgs) {
		b.msgs = b.msgs[:0]
		b.head = 0
	}
}

// drainShardLocked makes every delivery parked in the owning shard's inject
// ring visible. Every queue-reading operation calls it right after taking
// the shard mutex, so a reader can never observe a message as "sent but not
// queued" any longer than it could under the old per-endpoint mutex. The
// empty check is one atomic load; only drains that move entries are billed
// (to this endpoint's owner, the goroutine doing the work) under the
// wallprof fabric/drain site.
func (e *Endpoint) drainShardLocked() {
	s := e.sh
	if s.ring.n.Load() == 0 {
		return
	}
	wt := e.wrec.Begin(wallprof.SiteFabricDrain)
	s.drainLocked()
	e.wrec.End(wallprof.SiteFabricDrain, wt)
}

func (e *Endpoint) enqueueLocked(m *Message) (wake bool) {
	if m.Src < 0 || m.Class >= classLimit {
		panic(fmt.Sprintf("fabric: enqueue src %d class %d out of range", m.Src, m.Class))
	}
	cq := e.classes[m.Class]
	if cq == nil {
		cq = &classQueue{srcs: make([]bucket, len(e.layer.eps))}
		e.classes[m.Class] = cq
	}
	m.aseq = e.nextSeq
	e.nextSeq++
	b := &cq.srcs[m.Src]
	b.msgs = append(b.msgs, m)
	cq.count++
	e.depth++
	e.present |= 1 << m.Class
	e.seq.Add(1)
	return e.wakeNeededLocked(m.Class, m.Src, false)
}

// wakeNeededLocked reports whether any registered waiter's domain
// intersects an arrival of (class, src), or a poke when isPoke is set.
func (e *Endpoint) wakeNeededLocked(class uint8, src int, isPoke bool) bool {
	if e.domOverflow > 0 {
		return true
	}
	for i := 0; i < e.ndoms; i++ {
		d := &e.doms[i]
		if isPoke {
			if d.Pokes {
				return true
			}
			continue
		}
		if d.Classes.Has(class) && (d.Src == AnySrc || d.Src == src) {
			return true
		}
	}
	return false
}

// takeSpecLocked removes and returns the least-arrival-stamp message
// eligible under spec (class, src, Filter, and ArriveT <= Before). When no
// message is eligible it instead reports the earliest arrival stamp among
// messages that match everything but the time gate.
func (e *Endpoint) takeSpecLocked(spec *MatchSpec) (*Message, int64, bool) {
	var (
		best      *Message
		bestCQ    *classQueue
		bestB     *bucket
		bestIdx   int
		earliest  int64
		earlSeq   uint64
		hasEarl   bool
		activeSet = spec.Classes & e.present
	)
	for set := activeSet; set != 0; set &= set - 1 {
		c := trailingZeros(set)
		cq := e.classes[c]
		if spec.Src != AnySrc {
			e.scanBucket(cq, &cq.srcs[spec.Src], spec, &best, &bestCQ, &bestB, &bestIdx, &earliest, &earlSeq, &hasEarl)
			continue
		}
		for s := range cq.srcs {
			if cq.srcs[s].size() > 0 {
				e.scanBucket(cq, &cq.srcs[s], spec, &best, &bestCQ, &bestB, &bestIdx, &earliest, &earlSeq, &hasEarl)
			}
		}
	}
	if best == nil {
		return nil, earliest, hasEarl
	}
	bestB.removeAt(bestIdx)
	bestCQ.count--
	if bestCQ.count == 0 {
		e.present &^= 1 << best.Class
	}
	e.depth--
	return best, 0, false
}

// scanBucket walks one bucket in stamp order. The first eligible message it
// meets has the bucket's least stamp, so the scan stops there; while no
// candidate exists it tracks the earliest (ArriveT, stamp) among messages
// matching everything but the time gate, so a failed take reports where
// virtual time must advance to. Once any bucket has produced a candidate the
// earliest report is moot (it is only consumed on a failed take), so the
// scan may bail as soon as stamps pass the candidate's.
func (e *Endpoint) scanBucket(cq *classQueue, b *bucket, spec *MatchSpec,
	best **Message, bestCQ **classQueue, bestB **bucket, bestIdx *int,
	earliest *int64, earlSeq *uint64, hasEarl *bool) {
	for i := b.head; i < len(b.msgs); i++ {
		m := b.msgs[i]
		if *best != nil && m.aseq > (*best).aseq {
			return
		}
		if spec.Filter != nil && !spec.Filter(m) {
			continue
		}
		if m.ArriveT <= spec.Before {
			// Strictly smaller stamp than any current candidate (the check
			// above would have bailed otherwise), so this one wins.
			*best, *bestCQ, *bestB, *bestIdx = m, cq, b, i
			return
		}
		if !*hasEarl || m.ArriveT < *earliest || (m.ArriveT == *earliest && m.aseq < *earlSeq) {
			*earliest, *earlSeq, *hasEarl = m.ArriveT, m.aseq, true
		}
	}
}

func trailingZeros(s ClassSet) uint8 {
	return uint8(bits.TrailingZeros64(uint64(s)))
}

// sweepDupLocked enforces at-most-once absorb for injector-duplicated
// messages: m was just taken for real (not a peek), so its sibling copy —
// same (class, src) bucket, same DupKey — is removed and recycled here,
// before the lock drops and the sibling could match anything. Peek paths
// must NOT sweep (they undo their take).
func (e *Endpoint) sweepDupLocked(m *Message) {
	if m.DupKey == 0 {
		return
	}
	cq := e.classes[m.Class]
	if cq == nil {
		return
	}
	b := &cq.srcs[m.Src]
	for i := b.head; i < len(b.msgs); i++ {
		s := b.msgs[i]
		if s.DupKey != m.DupKey {
			continue
		}
		b.removeAt(i)
		cq.count--
		if cq.count == 0 {
			e.present &^= 1 << m.Class
		}
		e.depth--
		if flt := e.layer.net.flt; flt != nil {
			flt.Record(e.rank, faults.Event{T: s.ArriveT, Kind: faults.KindDedup,
				Layer: e.layer.name, Class: s.Class, Src: s.Src, Dst: e.rank, Seq: m.DupKey - 1})
		}
		if ow := e.layer.net.ow; ow != nil {
			ow.Shard(e.rank).Add(obs.CtrFaultDedupDrops, 1)
		}
		s.Req = nil // the surviving copy owns the origin-side completion
		s.Release()
		return // exactly one sibling can exist
	}
}

// TryRecvSpec removes and returns the least-arrival-stamp message eligible
// under spec, under a single lock acquisition. The returned PollState always
// carries Seq and the pre-dequeue Depth; when no message was eligible it
// also carries the earliest arrival among messages matching everything but
// the Before gate.
func (e *Endpoint) TryRecvSpec(spec *MatchSpec) (*Message, PollState) {
	e.sh.mu.Lock()
	e.drainShardLocked()
	st := PollState{Seq: e.seq.Load(), Depth: e.depth}
	m, earl, has := e.takeSpecLocked(spec)
	if m != nil {
		e.sweepDupLocked(m)
	}
	e.sh.mu.Unlock()
	if m == nil {
		st.Earliest, st.HasEarliest = earl, has
	}
	return m, st
}

// PeekSpec returns (without removing) the message TryRecvSpec would take.
func (e *Endpoint) PeekSpec(spec *MatchSpec) *Message {
	e.sh.mu.Lock()
	defer e.sh.mu.Unlock()
	e.drainShardLocked()
	m, _, _ := e.takeSpecLocked(spec)
	if m != nil {
		e.undoTakeLocked(m)
	}
	return m
}

// undoTakeLocked re-inserts a just-taken message at its stamp-ordered
// position (it is always re-inserted immediately, so its bucket slot is
// simply restored).
func (e *Endpoint) undoTakeLocked(m *Message) {
	cq := e.classes[m.Class]
	b := &cq.srcs[m.Src]
	// Find the insertion point: stamps are unique and ordered.
	i := b.head
	for ; i < len(b.msgs); i++ {
		if b.msgs[i].aseq > m.aseq {
			break
		}
	}
	if i == b.head && b.head > 0 {
		b.head--
		b.msgs[b.head] = m
	} else {
		b.msgs = append(b.msgs, nil)
		copy(b.msgs[i+1:], b.msgs[i:])
		b.msgs[i] = m
	}
	cq.count++
	e.depth++
	e.present |= 1 << m.Class
}

// TryRecvPeek is TryRecvSpec fused with a probe: when the take under recv
// comes back empty, the same lock acquisition peeks under peek (the peeked
// message stays queued) and, when that also fails, reports the earliest
// arrival among peek's filter-matching messages. On a failed peek every
// filter-passing message fails the time gate, so the gate-failing earliest
// equals the ungated earliest PollStateFor would report.
func (e *Endpoint) TryRecvPeek(recv, peek *MatchSpec) (m *Message, st PollState, pm *Message, pearl int64, phas bool) {
	e.sh.mu.Lock()
	e.drainShardLocked()
	st = PollState{Seq: e.seq.Load(), Depth: e.depth}
	var earl int64
	var has bool
	m, earl, has = e.takeSpecLocked(recv)
	if m != nil {
		e.sweepDupLocked(m)
	} else {
		st.Earliest, st.HasEarliest = earl, has
		pm, pearl, phas = e.takeSpecLocked(peek)
		if pm != nil {
			e.undoTakeLocked(pm)
		}
	}
	e.sh.mu.Unlock()
	return
}

// PollStateFor returns the poll snapshot for spec — activity counter, queue
// depth, and earliest arrival among filter-matching messages — without
// dequeuing anything and under one lock acquisition.
func (e *Endpoint) PollStateFor(spec *MatchSpec) PollState {
	e.sh.mu.Lock()
	defer e.sh.mu.Unlock()
	e.drainShardLocked()
	st := PollState{Seq: e.seq.Load(), Depth: e.depth}
	activeSet := spec.Classes & e.present
	for set := activeSet; set != 0; set &= set - 1 {
		cq := e.classes[trailingZeros(set)]
		if spec.Src != AnySrc {
			scanEarliest(&cq.srcs[spec.Src], spec, &st)
			continue
		}
		for s := range cq.srcs {
			scanEarliest(&cq.srcs[s], spec, &st)
		}
	}
	return st
}

func scanEarliest(b *bucket, spec *MatchSpec, st *PollState) {
	for i := b.head; i < len(b.msgs); i++ {
		m := b.msgs[i]
		if spec.Filter != nil && !spec.Filter(m) {
			continue
		}
		if !st.HasEarliest || m.ArriveT < st.Earliest {
			st.Earliest, st.HasEarliest = m.ArriveT, true
		}
	}
}

// Recv blocks until a message matching match is queued, removes and returns
// it. Messages are taken in arrival order, which preserves the
// non-overtaking guarantee for any (src, class, tag) stream.
func (e *Endpoint) Recv(match func(*Message) bool) *Message {
	spec := matchAll(match)
	e.sh.mu.Lock()
	defer e.sh.mu.Unlock()
	for {
		e.drainShardLocked()
		if m, _, _ := e.takeSpecLocked(&spec); m != nil {
			e.sweepDupLocked(m)
			return m
		}
		e.waitLocked(FullDomain)
	}
}

// TryRecv is Recv without blocking; it returns nil when nothing matches.
func (e *Endpoint) TryRecv(match func(*Message) bool) *Message {
	spec := matchAll(match)
	e.sh.mu.Lock()
	defer e.sh.mu.Unlock()
	e.drainShardLocked()
	m, _, _ := e.takeSpecLocked(&spec)
	if m != nil {
		e.sweepDupLocked(m)
	}
	return m
}

// Pending reports whether any queued message matches.
func (e *Endpoint) Pending(match func(*Message) bool) bool {
	spec := matchAll(match)
	return e.PeekSpec(&spec) != nil
}

// Peek returns the first queued matching message without removing it, or
// nil. Probes use this.
func (e *Endpoint) Peek(match func(*Message) bool) *Message {
	spec := matchAll(match)
	return e.PeekSpec(&spec)
}

// EarliestArrival returns the smallest arrival stamp among queued messages
// matching match. Blocking receivers use it to advance virtual time when
// every candidate message is still in the virtual future (delivering such a
// message "early" would drag the receiver's clock to the sender's and let
// skew compound).
func (e *Endpoint) EarliestArrival(match func(*Message) bool) (int64, bool) {
	spec := matchAll(match)
	st := e.PollStateFor(&spec)
	return st.Earliest, st.HasEarliest
}

// Seq returns a counter that increases with every enqueued message and every
// poke; pollers use it to detect new activity without taking the queue lock.
func (e *Endpoint) Seq() uint64 {
	return e.seq.Load()
}

// waitLocked registers d and blocks until the cond is signaled for it.
// Callers must hold the shard mutex and re-check their predicate on return.
//
// The park handshake with cross-shard producers cannot miss a wakeup: the
// waiter registers its domain and publishes its presence (waiters.Add)
// under the shard mutex, samples seq, then drains the ring once more
// before parking. A producer loads waiters around its ring push. A load
// that sees the waiter routes the delivery through the locked path (or
// drains the just-pushed entry under the lock), where enqueueLocked bumps
// seq and does the domain-filtered wake — and the mutex serializes with
// the park, since sync.Cond.Wait registers its ticket before releasing the
// lock. A load that misses the waiter means the push is ordered before the
// waiter's registration, so the waiter's own pre-park drain delivers the
// message, the endpoint's seq moves, and the park is skipped.
func (e *Endpoint) waitLocked(d WaitDomain) {
	slot := -1
	if e.ndoms < len(e.doms) {
		slot = e.ndoms
		e.doms[slot] = d
		e.ndoms++
	} else {
		e.domOverflow++
	}
	e.waiters.Add(1)
	s0 := e.seq.Load()
	e.drainShardLocked()
	if e.seq.Load() == s0 {
		e.cond.Wait()
	}
	e.waiters.Add(-1)
	if slot >= 0 {
		// Waiters deregister in any order; swap-remove our domain by value
		// (domains are plain data, any equal entry is interchangeable).
		for i := 0; i < e.ndoms; i++ {
			if e.doms[i] == d {
				e.ndoms--
				e.doms[i] = e.doms[e.ndoms]
				return
			}
		}
		panic("fabric: waiter domain lost")
	}
	e.domOverflow--
}

// WaitActivity blocks until the endpoint's activity counter passes since.
// It returns the new counter value. The waiter is woken for every arrival
// and poke; use WaitActivityFor to scope the wakeup.
func (e *Endpoint) WaitActivity(since uint64) uint64 {
	return e.WaitActivityFor(since, FullDomain)
}

// WaitActivityFor blocks until the activity counter passes since, waking
// only for events in domain d. Callers must sample Seq before checking the
// condition they sleep on, and d must cover every event that could satisfy
// that condition — including pokes when completion callbacks signal it.
func (e *Endpoint) WaitActivityFor(since uint64, d WaitDomain) uint64 {
	e.sh.mu.Lock()
	defer e.sh.mu.Unlock()
	for e.seq.Load() <= since {
		e.waitLocked(d)
	}
	return e.seq.Load()
}

// WakeAll bumps the activity counter and wakes every parked waiter
// regardless of domain. The fault state's failure latch uses it so blocked
// receivers re-check their loop condition — and observe the error — after
// an image crash or a job cancellation.
func (e *Endpoint) WakeAll() {
	e.sh.mu.Lock()
	e.seq.Add(1)
	e.sh.mu.Unlock()
	e.cond.Broadcast()
}

// Poke wakes poke-sensitive waiters and bumps the activity counter without
// enqueuing a message. Request-completion callbacks use it so a single wait
// loop can cover both message arrival and remote completion events.
func (e *Endpoint) Poke() {
	e.sh.mu.Lock()
	e.seq.Add(1)
	wake := e.wakeNeededLocked(0, 0, true)
	e.sh.mu.Unlock()
	if wake {
		e.cond.Broadcast()
	}
}

// QueueLen returns the current queue depth (used by tests and the SRQ
// contention diagnostics).
func (e *Endpoint) QueueLen() int {
	e.sh.mu.Lock()
	defer e.sh.mu.Unlock()
	e.drainShardLocked()
	return e.depth
}
