// Package fabric models the interconnect that the MPI and GASNet layers run
// over: a LogGP-style cost model, timestamped mailboxes between images, and
// the platform presets used by the paper's evaluation (Fusion, Edison, Mira).
//
// The fabric moves real bytes between images immediately (all images share
// one address space) while charging virtual time to the participating
// clocks, so correctness is exercised by real data movement and performance
// curves come from the model.
package fabric

import "math"

// SRQModel describes the InfiniBand Shared Receive Queue behaviour that
// degrades GASNet's AM payload path on Fusion once enough processes share
// the queue (paper §4.1). When active, per-byte receive costs for AM medium
// and long payloads are multiplied by Factor.
type SRQModel struct {
	Enabled   bool
	Threshold int     // process count at which the SRQ saturates
	Factor    float64 // payload bandwidth degradation beyond the threshold
}

// Penalty returns the payload cost multiplier for a job of n processes.
func (s SRQModel) Penalty(n int) float64 {
	if !s.Enabled || n < s.Threshold || s.Factor <= 1 {
		return 1
	}
	return s.Factor
}

// MPICosts captures per-operation software overheads of the MPI
// implementation (an MPICH derivative in the paper: MVAPICH2 on Fusion,
// Cray MPICH on Edison, PAMI-backed MPICH on Mira).
type MPICosts struct {
	MatchNS     int64 // two-sided tag-matching cost per message (receive side)
	PutNS       int64 // origin overhead per RMA put
	GetNS       int64 // origin overhead per RMA get
	AtomicNS    int64 // origin overhead per accumulate/fetch-op/CAS
	FlushNS     int64 // per-target completion wait beyond outstanding timestamps
	FlushScanNS int64 // per-rank scan cost in FlushAll (MPICH flushes every rank)
	WinSetupNS  int64 // per-rank window creation cost

	// Memory model (Figure 1): MPICH derivatives preallocate per-peer eager
	// buffers and connection state; these sizes drive MemoryFootprint.
	EagerSlotsPerPeer int
	EagerSlotBytes    int
	PeerStateBytes    int
	BaseFootprint     int64

	// SparseFlush enables the foMPI-like scalable-sync mode (Gerstenberger
	// et al., "Enabling Highly-Scalable Remote Memory Access Programming
	// with MPI-3 One Sided"): windows track a per-epoch dirty-peer set and
	// FlushAll/RflushAll walk only the peers the epoch actually touched,
	// per-peer eager pools are charged on first use (MVAPICH-style
	// on-demand connections), and the flat O(P) collectives switch to tree
	// algorithms. Off by default: the paper measures the MPICH-derivative
	// behaviour (the Figure 4 per-rank scan), so the baseline stays
	// paper-faithful and bit-exact.
	SparseFlush bool
}

// GASNetCosts captures per-operation overheads of the GASNet conduit.
type GASNetCosts struct {
	PutNS         int64 // origin overhead per extended-API put
	GetNS         int64 // origin overhead per extended-API get
	AMNS          int64 // dispatch overhead per active message handler
	PollNS        int64 // cost of one poll that finds nothing
	SRQ           SRQModel
	PeerBytes     int // per-peer segment registration metadata
	BaseFootprint int64
}

// Params is the full platform description: raw network LogGP parameters,
// the compute-speed model, and the per-layer software costs.
type Params struct {
	Name string

	// Network (LogGP): a message of s bytes sent at time t occupies the
	// sender for SendOverheadNS, arrives at t+SendOverheadNS+LatencyNS+
	// s*GapPerByteNS, and costs the receiver RecvOverheadNS to extract.
	LatencyNS      int64
	GapPerByteNS   float64
	SendOverheadNS int64
	RecvOverheadNS int64
	EagerThreshold int // bytes; larger messages pay a rendezvous round trip

	// Node topology: images [k*CoresPerNode, (k+1)*CoresPerNode) share a
	// node (Table 1: Fusion 2x4, Edison 2x12, Mira 16). Same-node traffic
	// uses the intra-node latency and bandwidth (shared-memory transport)
	// instead of the wire.
	CoresPerNode   int
	IntraLatencyNS int64
	IntraGapNS     float64

	// Compute model.
	FlopNS float64 // sustained ns per double-precision flop
	MemNS  float64 // ns per byte of local memory traffic

	// DeliveryShards overrides the number of endpoint-delivery shards per
	// fabric layer (shard.go); 0 derives the count from GOMAXPROCS. Host
	// tuning only — the shard count partitions locks and inject rings and
	// never enters any virtual-time computation, so clocks are bit-exact at
	// every setting.
	DeliveryShards int

	MPI    MPICosts
	GASNet GASNetCosts
}

// FlopTime returns the virtual cost of n floating point operations.
func (p *Params) FlopTime(n int64) int64 {
	return int64(math.Ceil(float64(n) * p.FlopNS))
}

// MemTime returns the virtual cost of moving n bytes through local memory.
func (p *Params) MemTime(n int64) int64 {
	return int64(math.Ceil(float64(n) * p.MemNS))
}

// WireTime returns the serialization time of an n-byte payload.
func (p *Params) WireTime(n int) int64 {
	return int64(math.Ceil(float64(n) * p.GapPerByteNS))
}

// SameNode reports whether images a and b share a node.
func (p *Params) SameNode(a, b int) bool {
	if p.CoresPerNode <= 0 {
		return false
	}
	return a/p.CoresPerNode == b/p.CoresPerNode
}

// PathLatency returns the one-way latency between images a and b.
func (p *Params) PathLatency(a, b int) int64 {
	if p.SameNode(a, b) {
		return p.IntraLatencyNS
	}
	return p.LatencyNS
}

// PathWireTime returns the serialization time of n bytes between a and b.
func (p *Params) PathWireTime(a, b, n int) int64 {
	if p.SameNode(a, b) {
		return int64(math.Ceil(float64(n) * p.IntraGapNS))
	}
	return p.WireTime(n)
}

// Fusion models the Argonne InfiniBand QDR cluster from Table 1 (320 nodes,
// 2x4 cores, MVAPICH2-1.9). GASNet RMA has roughly half the per-op overhead
// of MVAPICH2's MPI-3 RMA, and the IB conduit's SRQ saturates at 128
// processes (Figure 3).
var Fusion = Params{
	Name:           "fusion",
	LatencyNS:      1500,
	GapPerByteNS:   0.31, // ~3.2 GB/s per link (IB QDR)
	SendOverheadNS: 400,
	RecvOverheadNS: 400,
	EagerThreshold: 8 << 10,
	CoresPerNode:   8, // 2x4 (Table 1)
	IntraLatencyNS: 350,
	IntraGapNS:     0.12, // shared-memory copy bandwidth
	FlopNS:         0.45, // ~2.2 GFLOP/s sustained per core
	MemNS:          0.25,
	MPI: MPICosts{
		MatchNS:     350,
		PutNS:       2600,
		GetNS:       2600,
		AtomicNS:    3200,
		FlushNS:     1200,
		FlushScanNS: 35,
		WinSetupNS:  900,

		EagerSlotsPerPeer: 2,
		EagerSlotBytes:    16 << 10,
		PeerStateBytes:    1 << 10,
		BaseFootprint:     104 << 20,
	},
	GASNet: GASNetCosts{
		PutNS:  900,
		GetNS:  900,
		AMNS:   500,
		PollNS: 120,
		SRQ: SRQModel{
			Enabled:   true,
			Threshold: 128,
			Factor:    2.2,
		},
		PeerBytes:     20 << 10,
		BaseFootprint: 25 << 20,
	},
}

// Edison models the NERSC Cray XC30 from Table 1 (Aries interconnect, Cray
// MPICH 6.0.2). Cray MPI's RMA was implemented over send/receive at the
// time (paper §4.1), so MPI per-op RMA costs are markedly higher than
// GASNet's Aries conduit, while two-sided messaging and collectives are
// excellent. There is no SRQ effect on Aries.
var Edison = Params{
	Name:           "edison",
	LatencyNS:      700,
	GapPerByteNS:   0.12, // ~8 GB/s per link (Aries)
	SendOverheadNS: 250,
	RecvOverheadNS: 250,
	EagerThreshold: 8 << 10,
	CoresPerNode:   24, // 2x12 (Table 1)
	IntraLatencyNS: 250,
	IntraGapNS:     0.08,
	FlopNS:         0.12, // Ivy Bridge, ~8 GFLOP/s sustained per core
	MemNS:          0.11,
	MPI: MPICosts{
		MatchNS:     250,
		PutNS:       3300, // send/recv-emulated RMA
		GetNS:       3300,
		AtomicNS:    3800,
		FlushNS:     1000,
		FlushScanNS: 25,
		WinSetupNS:  700,

		EagerSlotsPerPeer: 2,
		EagerSlotBytes:    16 << 10,
		PeerStateBytes:    1 << 10,
		BaseFootprint:     104 << 20,
	},
	GASNet: GASNetCosts{
		PutNS:         550,
		GetNS:         900,
		AMNS:          350,
		PollNS:        90,
		SRQ:           SRQModel{},
		PeerBytes:     20 << 10,
		BaseFootprint: 25 << 20,
	},
}

// Mira models the Argonne Blue Gene/Q used for the microbenchmark figure.
// The PAMI-backed GASNet conduit has very low one-sided overheads while the
// MPICH RMA path is software-heavy; cores are slow (1.6 GHz in-order).
var Mira = Params{
	Name:           "mira",
	LatencyNS:      2200,
	GapPerByteNS:   0.56, // ~1.8 GB/s per link
	SendOverheadNS: 900,
	RecvOverheadNS: 900,
	EagerThreshold: 4 << 10,
	CoresPerNode:   16,
	IntraLatencyNS: 600,
	IntraGapNS:     0.3,
	FlopNS:         0.9,
	MemNS:          0.45,
	MPI: MPICosts{
		MatchNS:     700,
		PutNS:       15200, // software RMA: ~51k writes/s measured
		GetNS:       11800, // ~61k reads/s measured
		AtomicNS:    16000,
		FlushNS:     2600,
		FlushScanNS: 2,
		WinSetupNS:  1500,

		EagerSlotsPerPeer: 2,
		EagerSlotBytes:    8 << 10,
		PeerStateBytes:    512,
		BaseFootprint:     96 << 20,
	},
	GASNet: GASNetCosts{
		PutNS:         300,  // ~210k writes/s measured
		GetNS:         150,  // ~266k reads/s measured
		AMNS:          3500, // ~97k notifies/s measured
		PollNS:        250,
		SRQ:           SRQModel{},
		PeerBytes:     12 << 10,
		BaseFootprint: 25 << 20,
	},
}

// SparseSync reports whether the scalable-sync ("fompi-like") mode is on.
// The switch lives under the MPI costs (that layer owns the flush model the
// paper charts) but is honoured by every layer: GASNet on-demand peer
// state, core tree collectives, and the runtime fence paths.
func (p *Params) SparseSync() bool { return p.MPI.SparseFlush }

// SparseVariant returns a copy of p with the scalable-sync mode enabled,
// named "<name>-sparse". Params contains no reference types, so a value
// copy is a deep copy and the shared preset is never mutated.
func SparseVariant(p *Params) *Params {
	cp := *p
	cp.Name = p.Name + "-sparse"
	cp.MPI.SparseFlush = true
	return &cp
}

// Platforms maps preset names to their parameter sets. Each paper preset
// also registers a "<name>-sparse" fompi-like variant (see MPICosts.
// SparseFlush) so cafrun/benchsuite can select the scalable-sync mode by
// platform name alone.
var Platforms = map[string]*Params{
	"fusion": &Fusion,
	"edison": &Edison,
	"mira":   &Mira,
}

func init() {
	for _, base := range []*Params{&Fusion, &Edison, &Mira} {
		sp := SparseVariant(base)
		Platforms[sp.Name] = sp
	}
}

// Platform returns the named preset, or nil if unknown.
func Platform(name string) *Params { return Platforms[name] }
