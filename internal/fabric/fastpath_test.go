package fabric

import (
	"fmt"
	"math/rand"
	"testing"

	"cafmpi/internal/sim"
)

// TestSendArgsCopied pins the Args-copy contract of Layer.Send: the sender
// may overwrite its args slice the moment Send returns, exactly as it may
// reuse the payload buffer. A fabric that aliased the caller's slice would
// deliver the overwritten values.
func TestSendArgsCopied(t *testing.T) {
	w := sim.NewWorld(2)
	const n = 8
	err := w.Run(func(p *sim.Proc) error {
		net := AttachNet(p.World(), testParams())
		l := net.Layer("t")
		if p.ID() == 0 {
			// One shared scratch slice, rewritten before every send:
			// short (inline-arg store) and long (heap-copied) shapes.
			scratch := make([]uint64, inlineArgs+4)
			for i := 0; i < n; i++ {
				ln := 2
				if i%2 == 1 {
					ln = inlineArgs + 4
				}
				args := scratch[:ln]
				for j := range args {
					args[j] = uint64(i*100 + j)
				}
				l.Send(p, &Message{Dst: 1, Tag: 3, Args: args})
				for j := range args {
					args[j] = ^uint64(0) // clobber immediately
				}
			}
			return nil
		}
		for i := 0; i < n; i++ {
			m := l.Endpoint(1).Recv(func(m *Message) bool { return m.Tag == 3 })
			ln := 2
			if i%2 == 1 {
				ln = inlineArgs + 4
			}
			if len(m.Args) != ln {
				return fmt.Errorf("message %d: got %d args, want %d", i, len(m.Args), ln)
			}
			for j, v := range m.Args {
				if want := uint64(i*100 + j); v != want {
					return fmt.Errorf("message %d arg %d = %d, want %d (sender scratch aliased?)", i, j, v, want)
				}
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestRandomizedNonOvertaking is a property test for the indexed match
// queues: several senders interleave messages across random (class, tag)
// streams while the receiver drains them through a random mix of wildcard
// and exact matchers. Whatever the matcher shape, messages within one
// (src, class, tag) stream must be received in send order — the bucketed
// queues may never let a later message overtake an earlier one, and the
// wildcard merge across buckets must follow arrival sequence. Run under
// -race this also hammers the enqueue/take/wake paths from many goroutines.
func TestRandomizedNonOvertaking(t *testing.T) {
	const (
		senders = 4
		perSend = 300
		classes = 3
		tags    = 4
	)
	for _, seed := range []int64{1, 7, 42} {
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			w := sim.NewWorld(senders + 1)
			err := w.Run(func(p *sim.Proc) error {
				net := AttachNet(p.World(), testParams())
				l := net.Layer("t")
				if p.ID() > 0 {
					rng := rand.New(rand.NewSource(seed + int64(p.ID())))
					for i := 0; i < perSend; i++ {
						l.Send(p, &Message{
							Dst:   0,
							Class: uint8(rng.Intn(classes)),
							Tag:   rng.Intn(tags),
							Args:  []uint64{uint64(i)},
						})
					}
					return nil
				}
				// Receiver: reconstruct how many messages each stream
				// carries (same per-sender generator), then drain with
				// randomly chosen matchers and check per-stream order.
				remaining := map[[3]int]int{}
				for s := 1; s <= senders; s++ {
					rng := rand.New(rand.NewSource(seed + int64(s)))
					for i := 0; i < perSend; i++ {
						remaining[[3]int{s, rng.Intn(classes), rng.Intn(tags)}]++
					}
				}
				var streams [][3]int
				for k := range remaining {
					streams = append(streams, k)
				}
				lastSeq := map[[3]int]int{}
				check := func(m *Message) error {
					k := [3]int{m.Src, int(m.Class), m.Tag}
					seq := int(m.Args[0])
					if last, seen := lastSeq[k]; seen && seq <= last {
						return fmt.Errorf("stream src=%d class=%d tag=%d: seq %d after %d (overtaking)",
							m.Src, m.Class, m.Tag, seq, last)
					}
					lastSeq[k] = seq
					remaining[k]--
					return nil
				}
				rng := rand.New(rand.NewSource(seed ^ 0x5eed))
				e := l.Endpoint(0)
				for left := senders * perSend; left > 0; left-- {
					var m *Message
					if rng.Intn(2) == 0 {
						// Exact matcher on a stream that still has
						// messages outstanding.
						k := streams[rng.Intn(len(streams))]
						for remaining[k] == 0 {
							k = streams[rng.Intn(len(streams))]
						}
						m = e.Recv(func(m *Message) bool {
							return m.Src == k[0] && int(m.Class) == k[1] && m.Tag == k[2]
						})
					} else {
						m = e.Recv(func(m *Message) bool { return true })
					}
					if err := check(m); err != nil {
						return err
					}
				}
				return nil
			})
			if err != nil {
				t.Fatal(err)
			}
		})
	}
}
