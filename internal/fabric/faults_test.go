package fabric

import (
	"bytes"
	"errors"
	"testing"

	"cafmpi/internal/faults"
	"cafmpi/internal/sim"
)

// faultNet enables a fault plan on the proc's world and attaches the test
// fabric (Enable must precede AttachNet, as core.Boot guarantees).
func faultNet(p *sim.Proc, plan *faults.Plan) *Net {
	faults.Enable(p.World(), plan)
	return AttachNet(p.World(), testParams())
}

// TestRetryChargesSenderClock: a dropped eager message costs the sender
// one ack-timeout backoff in virtual time, then delivers normally.
func TestRetryChargesSenderClock(t *testing.T) {
	plan := &faults.Plan{Seed: 1, Rules: []faults.Rule{
		{Kind: faults.KindDrop, Src: -1, Dst: -1, Prob: 1, MaxCount: 1},
	}}
	w := sim.NewWorld(2)
	err := w.Run(func(p *sim.Proc) error {
		l := faultNet(p, plan).Layer("t")
		if p.ID() == 0 {
			if err := l.Send(p, &Message{Dst: 1, Tag: 5, Data: []byte("retry")}); err != nil {
				return err
			}
			// o_s (100) + one retry timeout (8000): the retransmission is
			// folded into the sender's clock, no extra message objects.
			if got, want := p.Now(), int64(100+faults.DefaultRetryTimeoutNS); got != want {
				t.Errorf("sender clock %d, want %d", got, want)
			}
			return nil
		}
		m := l.Endpoint(1).Recv(func(m *Message) bool { return m.Tag == 5 })
		l.Absorb(p, m, 0)
		if !bytes.Equal(m.Data, []byte("retry")) {
			t.Errorf("payload %q survived the retry wrong", m.Data)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	evs := faults.Enabled(w).Log()
	if len(evs) != 1 || evs[0].Kind != faults.KindDrop {
		t.Fatalf("log = %v, want one drop", evs)
	}
}

// TestRetriesExhausted: when every attempt is dropped, Send fails with the
// typed chain and the origin request still completes, on both the eager
// and rendezvous paths.
func TestRetriesExhausted(t *testing.T) {
	plan := &faults.Plan{Seed: 1, Rules: []faults.Rule{
		{Kind: faults.KindDrop, Src: -1, Dst: -1, Prob: 1},
	}}
	for _, size := range []int{16, 128} { // eager / rendezvous vs 64B threshold
		w := sim.NewWorld(2)
		err := w.Run(func(p *sim.Proc) error {
			l := faultNet(p, plan).Layer("t")
			if p.ID() != 0 {
				return nil
			}
			req := &tstReq{}
			req.at.Store(-1)
			err := l.Send(p, &Message{Dst: 1, Data: make([]byte, size), Req: req})
			if !errors.Is(err, faults.ErrRetriesExhausted) || !errors.Is(err, faults.ErrTimeout) {
				t.Errorf("size %d: err = %v, want ErrRetriesExhausted (a timeout)", size, err)
			}
			var ie *faults.ImageError
			if !errors.As(err, &ie) || ie.Image != 1 {
				t.Errorf("size %d: err = %#v, want ImageError naming image 1", size, err)
			}
			if req.at.Load() < 0 {
				t.Errorf("size %d: origin request never completed; a waiter would hang", size)
			}
			// Full backoff schedule charged: sum of timeout<<k.
			var backoff int64
			for k := 0; k < faults.DefaultMaxRetries; k++ {
				backoff += faults.DefaultRetryTimeoutNS << uint(k)
			}
			if got, want := p.Now(), 100+backoff; got != want {
				t.Errorf("size %d: sender clock %d, want %d", size, got, want)
			}
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
	}
}

// TestDuplicateDedup: a dup-injected message is absorbed at most once —
// the sibling copy is swept at the first real take, on both the eager and
// rendezvous paths.
func TestDuplicateDedup(t *testing.T) {
	plan := &faults.Plan{Seed: 1, Rules: []faults.Rule{
		{Kind: faults.KindDup, Src: -1, Dst: -1, Prob: 1, DelayNS: 700},
	}}
	for _, size := range []int{8, 128} {
		w := sim.NewWorld(2)
		err := w.Run(func(p *sim.Proc) error {
			l := faultNet(p, plan).Layer("t")
			if p.ID() == 0 {
				return l.Send(p, &Message{Dst: 1, Tag: 9, Data: make([]byte, size)})
			}
			m := l.Endpoint(1).Recv(func(m *Message) bool { return m.Tag == 9 })
			if len(m.Data) != size {
				t.Errorf("size %d: got %d bytes", size, len(m.Data))
			}
			l.Absorb(p, m, 0)
			if d := l.Endpoint(1).TryRecv(func(*Message) bool { return true }); d != nil {
				t.Errorf("size %d: duplicate escaped the dedup sweep: %+v", size, d)
			}
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		var dups, dedups int
		for _, ev := range faults.Enabled(w).Log() {
			switch ev.Kind {
			case faults.KindDup:
				dups++
			case faults.KindDedup:
				dedups++
			}
		}
		if dups != 1 || dedups != 1 {
			t.Fatalf("size %d: log has %d dup / %d dedup events, want 1/1", size, dups, dedups)
		}
	}
}

// TestDuplicateDedupStress: the original and its injected duplicate travel
// as one Delivery through Inject and become visible atomically (one ring
// entry, one shard-lock hold), so a fast concurrent receiver
// can never absorb the original before the duplicate exists — the window
// that would orphan the duplicate and deliver it as a real second copy.
// Every original is absorbed exactly once, every sibling swept exactly once.
func TestDuplicateDedupStress(t *testing.T) {
	const msgs = 300
	plan := &faults.Plan{Seed: 3, Rules: []faults.Rule{
		{Kind: faults.KindDup, Src: -1, Dst: -1, Prob: 1, DelayNS: 1},
	}}
	w := sim.NewWorld(2)
	var ep *Endpoint
	err := w.Run(func(p *sim.Proc) error {
		l := faultNet(p, plan).Layer("t")
		if p.ID() == 0 {
			for i := 0; i < msgs; i++ {
				if err := l.Send(p, &Message{Dst: 1, Tag: i, Data: []byte{byte(i)}}); err != nil {
					return err
				}
			}
			return nil
		}
		ep = l.Endpoint(1)
		for i := 0; i < msgs; i++ {
			m := ep.Recv(func(*Message) bool { return true })
			l.Absorb(p, m, 0)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if n := ep.QueueLen(); n != 0 {
		t.Fatalf("%d messages still queued after %d receives: a duplicate escaped the dedup sweep", n, msgs)
	}
	var dups, dedups int
	for _, ev := range faults.Enabled(w).Log() {
		switch ev.Kind {
		case faults.KindDup:
			dups++
		case faults.KindDedup:
			dedups++
		}
	}
	if dups != msgs || dedups != msgs {
		t.Fatalf("log has %d dup / %d dedup events, want %d/%d", dups, dedups, msgs, msgs)
	}
}

// TestCrashPointPanics: an image hitting its crash point aborts with the
// typed panic, which unwraps to ErrImageFailed through the sim layer.
func TestCrashPointPanics(t *testing.T) {
	plan := &faults.Plan{Seed: 1, Crashes: []faults.CrashPoint{{Image: 0, AtNS: 0}}}
	w := sim.NewWorld(2)
	err := w.Run(func(p *sim.Proc) error {
		l := faultNet(p, plan).Layer("t")
		if p.ID() == 0 {
			return l.Send(p, &Message{Dst: 1, Data: []byte("never")})
		}
		return nil
	})
	if err == nil || !errors.Is(err, faults.ErrImageFailed) {
		t.Fatalf("run error = %v, want ErrImageFailed chain", err)
	}
	if faults.Enabled(w).FailedImage() != 0 {
		t.Fatal("crash did not latch image 0 as failed")
	}
}

// TestBlackholeAfterFailure: sends to an already-failed image return the
// typed error immediately (ULFM-style notification, not a hang) and
// complete the origin request.
func TestBlackholeAfterFailure(t *testing.T) {
	plan := &faults.Plan{Seed: 1, Stalls: []faults.StallPoint{{Image: 1, AtNS: 1 << 40, DurNS: 1}}}
	w := sim.NewWorld(2)
	err := w.Run(func(p *sim.Proc) error {
		net := faultNet(p, plan)
		l := net.Layer("t")
		if p.ID() != 0 {
			return nil
		}
		faults.Enabled(p.World()).MarkFailed(1)
		req := &tstReq{}
		req.at.Store(-1)
		err := l.Send(p, &Message{Dst: 1, Data: []byte("dead letter"), Req: req})
		if !errors.Is(err, faults.ErrImageFailed) {
			t.Errorf("send to failed image: err = %v, want ErrImageFailed", err)
		}
		if req.at.Load() < 0 {
			t.Error("blackholed send left its origin request pending")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestStallPointCharges: a stall point charges its duration once, at the
// next fabric operation at or after its virtual time.
func TestStallPointCharges(t *testing.T) {
	plan := &faults.Plan{Seed: 1, Stalls: []faults.StallPoint{{Image: 0, AtNS: 0, DurNS: 5000}}}
	w := sim.NewWorld(2)
	err := w.Run(func(p *sim.Proc) error {
		l := faultNet(p, plan).Layer("t")
		if p.ID() == 0 {
			if err := l.Send(p, &Message{Dst: 1, Data: []byte("x")}); err != nil {
				return err
			}
			// stall (5000) + o_s (100)
			if got, want := p.Now(), int64(5000+100); got != want {
				t.Errorf("sender clock %d, want %d (stall + overhead)", got, want)
			}
			if err := l.Send(p, &Message{Dst: 1, Data: []byte("y")}); err != nil {
				return err
			}
			if got, want := p.Now(), int64(5000+200); got != want {
				t.Errorf("sender clock after 2nd send %d, want %d (stall is one-shot)", got, want)
			}
			return nil
		}
		for i := 0; i < 2; i++ {
			m := l.Endpoint(1).Recv(func(*Message) bool { return true })
			l.Absorb(p, m, 0)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestNoPlanZeroCost: with faults never enabled the send path's clock
// arithmetic is untouched (the goldens depend on this).
func TestNoPlanZeroCost(t *testing.T) {
	w := sim.NewWorld(2)
	err := w.Run(func(p *sim.Proc) error {
		l := AttachNet(p.World(), testParams()).Layer("t")
		if p.ID() == 0 {
			if err := l.Send(p, &Message{Dst: 1, Data: []byte("plain")}); err != nil {
				return err
			}
			if got, want := p.Now(), int64(100); got != want {
				t.Errorf("sender clock %d, want %d", got, want)
			}
			return nil
		}
		m := l.Endpoint(1).Recv(func(*Message) bool { return true })
		l.Absorb(p, m, 0)
		if got, want := p.Now(), int64(100+1000+5+100); got != want {
			t.Errorf("receiver clock %d, want %d", got, want)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}
