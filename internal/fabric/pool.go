package fabric

import (
	"math/bits"
	"sync"
)

// Allocation recycling for the per-message fast path. Every Send used to
// heap-allocate a Message and a fresh payload copy; at RandomAccess rates
// that dominates wall-clock via allocator and GC pressure. Messages and
// payload buffers now cycle through free lists: checked out at injection,
// returned by the consuming layer (mpi delivery, gasnet handler completion,
// barrier absorption) once the payload has been copied out or handed to a
// handler whose contract forbids retention.
//
// These free lists are sync.Pools, which the Go runtime already shards
// per-P, so they scale with GOMAXPROCS without help; the delivery shards
// (shard.go) additionally keep their ring storage and drain scratch as
// fixed per-shard blocks, so the cross-shard handoff path allocates
// nothing at steady state.

// inlineArgs is the inline Args capacity of a pooled Message. The largest
// wire header in the tree is rtgasnet's fragmented-AM header (5 slots plus
// up to 11 user args) and gasnet's long-AM header (2 slots plus up to
// MaxArgs=16 user args), both at most 18; 24 leaves headroom.
const inlineArgs = 24

var msgPool = sync.Pool{New: func() any { return new(Message) }}

// NewMessage returns a zeroed Message from the free list. Ownership of any
// Message handed to Layer.Send transfers to the fabric: the sender must not
// touch it afterwards. The consumer recycles it with Release.
func NewMessage() *Message {
	m := msgPool.Get().(*Message)
	m.pooled = true
	return m
}

// Release returns m and its pooled payload buffer to the free lists. Only
// the consumer that dequeued m may call it, after the payload has been
// copied out (or, for AM dispatch, after the handler — which must not
// retain the payload — has returned). Messages built by callers rather
// than NewMessage only have their payload buffer recycled.
func (m *Message) Release() {
	if m.dataBuf != nil {
		if m.owner != nil {
			m.owner.poolBytes.Add(-int64(cap(m.dataBuf.b)))
		}
		putBuf(m.dataBuf)
	}
	pooled := m.pooled
	m.Src, m.Dst = 0, 0
	m.Class, m.Tag, m.Ctx = 0, 0, 0
	m.Args, m.Data = nil, nil
	m.SendT, m.ArriveT = 0, 0
	m.Rendezvous = false
	m.Req = nil
	m.DupKey = 0
	m.aseq = 0
	m.owner = nil
	m.dataBuf = nil
	m.pooled = false
	if pooled {
		msgPool.Put(m)
	}
}

// Payload buffers come in power-of-two size classes from 64 B to 1 MiB;
// larger payloads fall back to plain allocation (they are rendezvous-sized
// and rare, so the copy dwarfs the allocation anyway).
const (
	minBufBits    = 6
	maxBufBits    = 20
	numBufClasses = maxBufBits - minBufBits + 1
)

// pbuf wraps a payload buffer so the free lists recycle a stable pointer
// instead of re-boxing a slice header on every put.
type pbuf struct{ b []byte }

var bufPools [numBufClasses]sync.Pool

func bufClass(n int) int {
	if n <= 1<<minBufBits {
		return 0
	}
	return bits.Len(uint(n-1)) - minBufBits
}

// getBuf checks out a buffer of length n. The second result is nil when n
// exceeds the largest size class (unpooled allocation).
func getBuf(n int) ([]byte, *pbuf) {
	if n > 1<<maxBufBits {
		return make([]byte, n), nil
	}
	c := bufClass(n)
	pb, _ := bufPools[c].Get().(*pbuf)
	if pb == nil {
		pb = &pbuf{b: make([]byte, 1<<(c+minBufBits))}
	}
	return pb.b[:n], pb
}

func putBuf(pb *pbuf) {
	bufPools[bufClass(cap(pb.b))].Put(pb)
}
