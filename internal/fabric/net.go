package fabric

import (
	"fmt"
	"sync"
	"sync/atomic"

	"cafmpi/internal/faults"
	"cafmpi/internal/obs"
	"cafmpi/internal/obs/wallprof"
	"cafmpi/internal/sim"
)

// Message is the unit of transfer between endpoints. The communication
// layers define the meaning of Class, Tag, Ctx and Args; the fabric only
// moves the message and stamps virtual times on it. Build messages with
// NewMessage (pooled) where the consumer is known to Release them; a
// zero-value Message works too and simply isn't recycled.
type Message struct {
	Src, Dst int
	Class    uint8
	Tag      int
	Ctx      int
	Args     []uint64
	Data     []byte

	// SendT is the sender's clock at injection; ArriveT the eager arrival
	// time. Rendezvous messages compute their true arrival at match time
	// (it depends on when the receiver posts).
	SendT, ArriveT int64
	Rendezvous     bool

	// Req, when non-nil, is the origin-side handle that learns its
	// completion time once the receiver matches a rendezvous message.
	Req Completer

	// DupKey, when nonzero, marks a message the fault injector duplicated:
	// both copies carry the same key, and the receiving endpoint's take
	// path sweeps out the sibling so at most one copy is ever absorbed
	// (sequence-number dedup).
	DupKey uint64

	aseq     uint64 // per-endpoint arrival stamp, assigned when the message becomes visible
	pooled   bool   // from msgPool; Release recycles the struct
	dataBuf  *pbuf  // pooled payload backing, nil when unpooled
	owner    *Net   // accounts pooled payload bytes; set at Send
	argStore [inlineArgs]uint64
}

// Completer is implemented by origin-side request objects that need the
// receiver to report a virtual completion time back (rendezvous sends).
type Completer interface{ CompleteAt(t int64) }

// Net is the per-world interconnect instance. All layers of all images share
// one Net so that costs and presets are consistent.
type Net struct {
	world  *sim.World
	params *Params

	// nics[i] models image i's inbound NIC: payloads addressed to an image
	// — puts, long AM deposits, message bodies — reserve wire time on it,
	// so unscheduled many-to-one traffic (incast) queues while pairwise-
	// scheduled exchanges stay clean.
	nics []nic

	// ow is the world's observability registry, nil when off. Captured at
	// attach time (obs.Enable runs before any layer attaches) so per-message
	// paths pay a nil check, not a registry lookup.
	ow *obs.World

	// flt is the world's fault-injection state, nil when faults.Enable was
	// never called (plain fabric tests). Captured at attach time like ow;
	// with no plan the per-send cost is a single nil/flag check.
	flt *faults.State

	// wp is the world's wall-clock profiling plane, nil when off. Same
	// capture discipline as ow: resolved once at attach, nil-checked per
	// message.
	wp *wallprof.World

	// poolBytes is the pooled payload capacity currently checked out for
	// in-flight messages of this world; Send raises the pool_bytes_inflight
	// gauge from it and Release drains it.
	poolBytes atomic.Int64

	mu     sync.Mutex
	layers map[string]*Layer // guarded by mu
}

// nic tracks the busy intervals of one image's inbound link. Reservations
// backfill gaps: images execute at different real-time speeds, so claims
// arrive out of virtual-time order, and a monotone "free-after" counter
// would falsely serialize unrelated transfers. Adjacent reservations
// coalesce, so sustained incast collapses to one growing interval.
type nic struct {
	mu   sync.Mutex
	busy []ivl // sorted by start; bounded, oldest evicted; guarded by mu
}

type ivl struct{ start, end int64 }

const maxNICIntervals = 64

func (n *nic) claim(earliest, occ int64) int64 {
	n.mu.Lock()
	defer n.mu.Unlock()
	t := earliest
	pos := 0
	for i, iv := range n.busy {
		if iv.end <= t {
			pos = i + 1
			continue
		}
		if iv.start >= t+occ {
			break // a gap large enough before this interval
		}
		t = iv.end
		pos = i + 1
	}
	// Insert [t, t+occ) at pos, coalescing with neighbors.
	nv := ivl{t, t + occ}
	if pos > 0 && n.busy[pos-1].end == nv.start {
		n.busy[pos-1].end = nv.end
		nv = n.busy[pos-1]
		pos--
	} else {
		n.busy = append(n.busy, ivl{})
		copy(n.busy[pos+1:], n.busy[pos:])
		n.busy[pos] = nv
	}
	if pos+1 < len(n.busy) && n.busy[pos+1].start == nv.end {
		n.busy[pos].end = n.busy[pos+1].end
		n.busy = append(n.busy[:pos+1], n.busy[pos+2:]...)
	}
	if len(n.busy) > maxNICIntervals {
		n.busy = n.busy[1:] // forget the oldest history
	}
	return t + occ
}

// AttachNet returns the world's Net, creating it with the given parameters
// on first call. Later calls ignore params (every image must agree).
func AttachNet(w *sim.World, params *Params) *Net {
	// Resolved outside the Shared callback: Peek and Shared share a
	// non-reentrant mutex.
	ow := obs.Enabled(w)
	flt := faults.Enabled(w)
	wp := wallprof.Enabled(w)
	return w.Shared("fabric.net", func() any {
		n := &Net{
			world:  w,
			params: params,
			nics:   make([]nic, w.N()),
			layers: make(map[string]*Layer),
			ow:     ow,
			flt:    flt,
			wp:     wp,
		}
		// When the failure latch trips (image crash or job cancellation),
		// broadcast-wake every parked endpoint waiter so blocked collectives,
		// event waits and finishes observe the error instead of deadlocking.
		flt.OnWake(n.WakeAll)
		return n
	}).(*Net)
}

// WakeAll wakes every parked waiter on every endpoint of every layer.
func (n *Net) WakeAll() {
	n.mu.Lock()
	layers := make([]*Layer, 0, len(n.layers))
	for _, l := range n.layers {
		layers = append(layers, l)
	}
	n.mu.Unlock()
	for _, l := range layers {
		for _, ep := range l.eps {
			ep.WakeAll()
		}
	}
}

// Params returns the platform parameter set in force.
func (n *Net) Params() *Params { return n.params }

// World returns the hosting simulation world.
func (n *Net) World() *sim.World { return n.world }

// Layer returns the named layer, creating endpoints for every image on
// first use. Each communication library (mpi, gasnet, ...) owns one layer so
// their traffic never mixes. Endpoints are partitioned into delivery shards
// (shard.go): contiguous rank blocks, one queue mutex and one inject ring
// each, with the shard count derived from GOMAXPROCS unless
// Params.DeliveryShards overrides it.
func (n *Net) Layer(name string) *Layer {
	n.mu.Lock()
	defer n.mu.Unlock()
	if l, ok := n.layers[name]; ok {
		return l
	}
	np := n.world.N()
	l := &Layer{net: n, name: name, eps: make([]*Endpoint, np)}
	l.shards = make([]*shard, deliveryShards(n.params, np))
	for i := range l.shards {
		l.shards[i] = &shard{}
	}
	for i := range l.eps {
		l.eps[i] = newEndpoint(l, i, l.shards[i*len(l.shards)/np])
	}
	n.layers[name] = l
	return l
}

// shard returns image p's observability shard, or nil when off.
func (n *Net) shard(p *sim.Proc) *obs.Shard {
	if n.ow == nil {
		return nil
	}
	return n.ow.Shard(p.ID())
}

// wrec returns image p's wall-clock recorder, or nil when wallprof is off.
func (n *Net) wrec(p *sim.Proc) *wallprof.Rec {
	return n.wp.Rec(p.ID())
}

// ClaimNIC reserves occ nanoseconds of image dst's inbound wire starting no
// earlier than earliest, and returns the completion time. Overlapping
// reservations from concurrent senders queue, modeling receive-side
// congestion; reservations in already-free gaps backfill.
func (n *Net) ClaimNIC(dst int, earliest, occ int64) int64 {
	if occ <= 0 {
		// Zero-byte control messages don't occupy the wire.
		return earliest
	}
	return n.nics[dst].claim(earliest, occ)
}

// Layer is one library's view of the interconnect: an endpoint per image,
// partitioned into delivery shards.
type Layer struct {
	net    *Net
	name   string
	eps    []*Endpoint
	shards []*shard
}

// Endpoint returns image rank's endpoint in this layer.
func (l *Layer) Endpoint(rank int) *Endpoint { return l.eps[rank] }

// Net returns the owning interconnect.
func (l *Layer) Net() *Net { return l.net }

// Shards returns the layer's delivery shard count (host tuning; never part
// of the virtual-time model).
func (l *Layer) Shards() int { return len(l.shards) }

// Inject makes each delivery visible at its destination endpoint. It is the
// single injection seam of the fabric — Send, and through it the fault
// injector's duplicate path, target nothing else. The contract:
//
//   - Ownership of Msg (and Dup) transfers to the fabric at the call; the
//     receiver may match, absorb and recycle them concurrently, so the
//     caller must not touch either message afterwards.
//   - Per-(src,dst) delivery order is program order (non-overtaking): a
//     delivery rides the cross-shard inject ring only when the shards
//     differ, and every locked enqueue drains the ring first, so a stream
//     switching between the two paths — or overflowing the ring — cannot
//     pass its own parked messages; both paths are FIFO.
//   - Msg and its injector-made duplicate become visible atomically, under
//     one shard-mutex hold, preserving the at-most-once dedup sweep; see
//     Delivery.
//   - Arrival stamps are issued per endpoint at visibility, so matching
//     semantics — and with them the virtual clocks — are identical at every
//     shard count.
//   - Fault policy (drop/retry/backoff/blackhole verdicts) runs in Send
//     before injection; Inject itself never fails and never blocks beyond
//     the ring/mutex handoff.
func (l *Layer) Inject(batch ...Delivery) {
	for _, d := range batch {
		if d.Msg.Src < 0 || d.Msg.Src >= len(l.eps) {
			panic(fmt.Sprintf("fabric: inject from invalid rank %d (world size %d)", d.Msg.Src, len(l.eps)))
		}
		dst := l.eps[d.Msg.Dst]
		s := dst.sh
		// The lock-free ring is for the common cross-shard case with an
		// active (non-parked) receiver: it will drain the ring at its next
		// queue read. With a parked waiter the producer takes the locked
		// path instead — enqueueLocked issues the arrival stamp, bumps the
		// activity counter exactly once per message (the same observable
		// sequence the unsharded fabric produced) and wakes only waiters
		// whose domain covers the arrival. See waitLocked for why this
		// handshake cannot miss a wakeup.
		if l.eps[d.Msg.Src].sh != s && dst.waiters.Load() == 0 {
			if s.ring.push(injectEntry{ep: dst, m: d.Msg, dup: d.Dup}) {
				if dst.waiters.Load() > 0 {
					// A waiter registered while we pushed; its pre-park
					// drain may already have run, so drain on its behalf.
					// The shard mutex serializes with the park: the drain's
					// enqueue does the domain-filtered wake.
					s.mu.Lock()
					s.drainLocked()
					s.mu.Unlock()
				}
				continue
			}
		}
		s.mu.Lock()
		s.drainLocked()
		wake := dst.enqueueLocked(d.Msg)
		if d.Dup != nil && dst.enqueueLocked(d.Dup) {
			wake = true
		}
		s.mu.Unlock()
		if wake {
			dst.cond.Broadcast()
		}
	}
}

// Send injects m from image p. It charges the sender's clock, stamps the
// message, decides eager vs. rendezvous from the payload size, and enqueues
// it at the destination endpoint. The payload and args slices are copied
// (into pooled storage) so the sender may reuse both buffers immediately
// (matching eager-protocol semantics; for rendezvous the request's
// CompleteAt callback reports the virtual time at which the sender buffer
// would really be free). Ownership of m itself transfers to the fabric.
//
// With a fault plan active, Send is also where the resilient-delivery
// protocol runs: dropped attempts cost the sender ack-timeout + exponential
// backoff virtual time before the successful retransmission (the retry
// traffic is folded into the cost model, so no extra message objects exist
// and decisions stay bit-reproducible), bounded retries fail with a typed
// ErrRetriesExhausted, sends to a crashed image fail with ErrImageFailed,
// and the sending image itself can hit a crash or stall point here.
// Callers that can surface errors should check the result; fire-and-forget
// callers may ignore it (delivery is then best-effort under faults, exactly
// like the underlying network).
func (l *Layer) Send(p *sim.Proc, m *Message) error {
	pr := l.net.params
	if m.Dst < 0 || m.Dst >= len(l.eps) {
		panic(fmt.Sprintf("fabric: send to invalid rank %d (world size %d)", m.Dst, len(l.eps)))
	}
	m.Src = p.ID()
	// Host-time blame for the inject hot path (wallprof SiteFabricInject).
	// Explicit End on every return; the crash-panic path drops one sample,
	// which the sampling estimator absorbs.
	wr := l.net.wrec(p)
	wt := wr.Begin(wallprof.SiteFabricInject)
	flt := l.net.flt
	if flt.Active() {
		if stall, crashed := flt.Checkpoint(m.Src, p.Now()); crashed {
			// Last event before death: the flight recorder's postmortem shows
			// exactly where the image hit its crash point.
			if sh := l.net.shard(p); sh != nil {
				sh.Record(obs.LayerFabric, obs.OpCrash, -1, 0, 0, p.Now(), p.Now())
			}
			m.Release()
			panic(faults.Crashed{Image: p.ID()})
		} else if stall > 0 {
			p.Advance(stall)
		}
		if flt.ImageDown(m.Dst) {
			// ULFM-style failure notification: talking to a dead image is an
			// immediate typed error, not a hang. Complete the request so any
			// origin-side waiter unblocks.
			flt.Record(m.Src, faults.Event{T: p.Now(), Kind: faults.KindBlackhole,
				Layer: l.name, Class: m.Class, Src: m.Src, Dst: m.Dst})
			if m.Req != nil {
				m.Req.CompleteAt(p.Now())
			}
			dst := m.Dst
			wr.End(wallprof.SiteFabricInject, wt)
			m.Release()
			return &faults.ImageError{Image: dst, Op: "send(" + l.name + ")", Err: faults.ErrImageFailed}
		}
	}
	if len(m.Args) > 0 {
		if len(m.Args) <= inlineArgs {
			n := copy(m.argStore[:], m.Args)
			m.Args = m.argStore[:n:n]
		} else {
			m.Args = append([]uint64(nil), m.Args...)
		}
	}
	var poolOut int64
	if len(m.Data) > 0 {
		data, pb := getBuf(len(m.Data))
		copy(data, m.Data)
		m.Data, m.dataBuf = data, pb
		if pb != nil {
			m.owner = l.net
			poolOut = l.net.poolBytes.Add(int64(cap(pb.b)))
		}
	} else {
		m.Data = nil
	}
	t0 := p.Now()
	p.Advance(pr.SendOverheadNS)
	var v faults.Verdict
	if flt.Active() {
		v = flt.OnSend(l.name, m.Class, m.Src, m.Dst, p.Now())
		if v.Exhausted {
			// Every attempt up to MaxRetries was dropped: charge the full
			// timeout/backoff schedule the protocol waited through, complete
			// the origin-side request (the buffer is free; the op failed),
			// and surface the typed error.
			p.Advance(v.RetryWaitNS)
			if sh := l.net.shard(p); sh != nil {
				sh.Record(obs.LayerFabric, obs.OpFault, m.Dst, 0, m.Tag, t0, p.Now())
				sh.Add(obs.CtrFaultsInjected, int64(v.Injected))
				sh.Add(obs.CtrFaultRetries, int64(v.Retries))
				sh.Add(obs.CtrFaultRetryNS, v.RetryWaitNS)
			}
			if m.Req != nil {
				m.Req.CompleteAt(p.Now())
			}
			dst := m.Dst
			wr.End(wallprof.SiteFabricInject, wt)
			m.Release()
			return &faults.ImageError{Image: dst, Op: "send(" + l.name + ")", Err: faults.ErrRetriesExhausted}
		}
		// Dropped attempts delay the successful retransmission: the sender
		// sat out ack timeouts (exponential backoff) before it went through.
		p.Advance(v.RetryWaitNS)
	}
	m.SendT = p.Now()
	size := len(m.Data) + 8*len(m.Args)
	lat := pr.PathLatency(m.Src, m.Dst)
	if size > pr.EagerThreshold {
		m.Rendezvous = true
		// True arrival computed at match time; ArriveT here is the
		// ready-to-send notification's arrival (shifted by any injected
		// delay/reorder jitter).
		m.ArriveT = m.SendT + lat + v.DelayNS
	} else {
		m.ArriveT = l.net.ClaimNIC(m.Dst, m.SendT+lat+v.DelayNS, pr.PathWireTime(m.Src, m.Dst, size))
		if m.Req != nil {
			m.Req.CompleteAt(m.SendT) // eager: buffer copied out at injection
		}
	}
	var dup *Message
	if v.Dup {
		m.DupKey = v.Seq + 1
		dup = l.cloneForDup(m, v.DupDelayNS)
	}
	dst, tag, rdv := m.Dst, m.Tag, m.Rendezvous
	injected, retries, retryNS := v.Injected, v.Retries, v.RetryWaitNS
	l.Inject(Delivery{Msg: m, Dup: dup})
	// m may already be consumed and recycled by the receiver here; only the
	// locals captured above are safe to touch.
	if sh := l.net.shard(p); sh != nil {
		end := p.Now()
		sh.Record(obs.LayerFabric, obs.OpInject, dst, size, tag, t0, end)
		sh.Add(obs.CtrMsgsSent, 1)
		sh.Add(obs.CtrBytesSent, int64(size))
		if rdv {
			sh.Add(obs.CtrRendezvousMsgs, 1)
		} else {
			sh.Add(obs.CtrEagerMsgs, 1)
		}
		sh.Max(obs.CtrPoolBytesInFlightMax, poolOut)
		sh.CommAdd(dst, int64(size))
		if injected > 0 {
			sh.Record(obs.LayerFabric, obs.OpFault, dst, size, tag, t0, end)
			sh.Add(obs.CtrFaultsInjected, int64(injected))
			if retries > 0 {
				sh.Add(obs.CtrFaultRetries, int64(retries))
				sh.Add(obs.CtrFaultRetryNS, retryNS)
			}
		}
		e := obs.Edge{Layer: obs.LayerFabric, Op: obs.OpInject,
			Peer: int32(dst), Start: t0, End: end}
		e.AddComp(obs.CompOverhead, pr.SendOverheadNS)
		sh.RecordEdge(e)
	}
	wr.End(wallprof.SiteFabricInject, wt)
	return nil
}

// cloneForDup builds the injector's duplicate of m: same match identity and
// stamps, its own pooled payload, arriving delay after the original. The
// shared DupKey lets the receiver's dedup sweep suppress whichever copy
// loses the match.
func (l *Layer) cloneForDup(m *Message, delay int64) *Message {
	d := NewMessage()
	d.Src, d.Dst, d.Class, d.Tag, d.Ctx = m.Src, m.Dst, m.Class, m.Tag, m.Ctx
	if len(m.Args) > 0 {
		if len(m.Args) <= inlineArgs {
			n := copy(d.argStore[:], m.Args)
			d.Args = d.argStore[:n:n]
		} else {
			d.Args = append([]uint64(nil), m.Args...)
		}
	}
	if len(m.Data) > 0 {
		data, pb := getBuf(len(m.Data))
		copy(data, m.Data)
		d.Data, d.dataBuf = data, pb
		if pb != nil {
			d.owner = l.net
			l.net.poolBytes.Add(int64(cap(pb.b)))
		}
	}
	d.SendT = m.SendT
	d.ArriveT = m.ArriveT + delay
	d.Rendezvous = m.Rendezvous
	d.Req = m.Req // CompleteAt is max-merge; at most one copy is absorbed anyway
	d.DupKey = m.DupKey
	return d
}

// Absorb advances the receiving image's clock for a matched message: eager
// messages land at their arrival stamp; rendezvous messages complete a
// round-trip that starts when both sides are ready. extra is the layer's
// per-message receive cost (tag matching, handler dispatch, ...).
func (l *Layer) Absorb(p *sim.Proc, m *Message, extra int64) {
	l.absorb(p, m, extra, 0)
}

// AbsorbAM is Absorb with the delivery cost split into the matching/handler
// dispatch charge and an SRQ stall, so the happens-before edge attributes
// them to distinct blame components (CompMatch vs CompSRQStall).
func (l *Layer) AbsorbAM(p *sim.Proc, m *Message, matchNS, stallNS int64) {
	l.absorb(p, m, matchNS, stallNS)
}

func (l *Layer) absorb(p *sim.Proc, m *Message, matchNS, stallNS int64) {
	pr := l.net.params
	// Host-time blame for the receive hot path (wallprof SiteFabricAbsorb).
	wr := l.net.wrec(p)
	wt := wr.Begin(wallprof.SiteFabricAbsorb)
	if flt := l.net.flt; flt.Active() {
		if stall, crashed := flt.Checkpoint(p.ID(), p.Now()); crashed {
			if sh := l.net.shard(p); sh != nil {
				sh.Record(obs.LayerFabric, obs.OpCrash, -1, 0, 0, p.Now(), p.Now())
			}
			m.Release() // match the Send-path crash: don't leak the pooled message
			panic(faults.Crashed{Image: p.ID()})
		} else if stall > 0 {
			p.Advance(stall)
		}
	}
	t0 := p.Now()
	// Captured before the clock moves: whether the receiver was already
	// blocked when the message (or its rendezvous RTS) arrived. If so, the
	// delivery is on the receiver's critical path all the way back to the
	// sender's injection, and the recorded edge jumps there.
	sendT, arriveT := m.SendT, m.ArriveT
	// Equality counts as blocked: an idle receiver's poll advances its clock
	// exactly to the arrival stamp before absorbing.
	blocked := t0 <= arriveT
	var rdvStart, rdvDone int64
	if m.Rendezvous {
		start := max64(p.Now(), m.ArriveT)
		size := len(m.Data) + 8*len(m.Args)
		lat := pr.PathLatency(m.Src, m.Dst)
		done := l.net.ClaimNIC(m.Dst, start+2*lat, pr.PathWireTime(m.Src, m.Dst, size))
		if m.Req != nil {
			m.Req.CompleteAt(start + lat) // sender free after CTS
		}
		p.AdvanceTo(done)
		rdvStart, rdvDone = start, done
	} else {
		p.AdvanceTo(m.ArriveT)
	}
	p.Advance(pr.RecvOverheadNS + matchNS + stallNS)
	if sh := l.net.shard(p); sh != nil {
		size := len(m.Data) + 8*len(m.Args)
		op := obs.OpDeliver
		if m.Rendezvous {
			op = obs.OpRendezvousMatch
		}
		end := p.Now()
		sh.Record(obs.LayerFabric, op, m.Src, size, m.Tag, t0, end)
		sh.Add(obs.CtrMsgsRecv, 1)
		sh.Add(obs.CtrBytesRecv, int64(size))

		lat := pr.PathLatency(m.Src, m.Dst)
		wire := pr.PathWireTime(m.Src, m.Dst, size)
		e := obs.Edge{Layer: obs.LayerFabric, Op: op,
			Peer: int32(m.Src), Start: t0, End: end, SrcT: sendT}
		if m.Rendezvous {
			if blocked {
				// RTS leg was awaited: one latency from injection to RTS
				// arrival, then the walker continues at the sender.
				e.Jump = true
				e.AddComp(obs.CompLatency, arriveT-sendT)
			}
			// CTS + DATA legs: two latencies, the payload's wire time, and
			// any NIC queueing the claim absorbed.
			xfer := rdvDone - rdvStart
			e.AddComp(obs.CompLatency, 2*lat)
			e.AddComp(obs.CompBandwidth, wire)
			e.AddComp(obs.CompGap, xfer-2*lat-wire)
		} else if blocked {
			e.Jump = true
			flight := arriveT - sendT // L, then wire occupancy, then queueing
			l2 := min64(lat, flight)
			rest := flight - l2
			w2 := min64(wire, rest)
			e.AddComp(obs.CompLatency, l2)
			e.AddComp(obs.CompBandwidth, w2)
			e.AddComp(obs.CompGap, rest-w2)
		}
		e.AddComp(obs.CompOverhead, pr.RecvOverheadNS)
		e.AddComp(obs.CompMatch, matchNS)
		e.AddComp(obs.CompSRQStall, stallNS)
		sh.RecordEdge(e)
	}
	wr.End(wallprof.SiteFabricAbsorb, wt)
}

// RMAPut charges image p for injecting a one-sided write of size bytes with
// per-op overhead opNS, claims the target NIC for the payload, and returns
// the remote completion time.
func (l *Layer) RMAPut(p *sim.Proc, dst, size int, opNS int64) (remoteDone int64) {
	pr := l.net.params
	t0 := p.Now()
	p.Advance(opNS)
	done := l.net.ClaimNIC(dst, p.Now()+pr.PathLatency(p.ID(), dst), pr.PathWireTime(p.ID(), dst, size))
	if sh := l.net.shard(p); sh != nil {
		sh.Record(obs.LayerFabric, obs.OpRMAPut, dst, size, 0, t0, done)
		sh.CommAdd(dst, int64(size))
		// The local edge covers only the issue overhead; latency/wire time
		// surface on the flush that waits for remote completion.
		e := obs.Edge{Layer: obs.LayerFabric, Op: obs.OpRMAPut,
			Peer: int32(dst), Start: t0, End: p.Now()}
		e.AddComp(obs.CompOverhead, opNS)
		sh.RecordEdge(e)
	}
	return done
}

// RMAGetCost returns the origin-side blocking charge for a one-sided read
// of size bytes from dst with per-op overhead opNS (full round trip plus
// payload).
func (l *Layer) RMAGetCost(p *sim.Proc, dst, size int, opNS int64) int64 {
	pr := l.net.params
	return opNS + 2*pr.PathLatency(p.ID(), dst) + pr.PathWireTime(p.ID(), dst, size)
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

func min64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}
