package fabric

import (
	"bytes"
	"fmt"
	"sync/atomic"
	"testing"
	"testing/quick"

	"cafmpi/internal/sim"
)

// testParams is a tiny, easy-to-reason-about parameter set for unit tests.
func testParams() *Params {
	return &Params{
		Name:           "test",
		LatencyNS:      1000,
		GapPerByteNS:   1,
		SendOverheadNS: 100,
		RecvOverheadNS: 100,
		EagerThreshold: 64,
		FlopNS:         1,
		MemNS:          1,
	}
}

func TestEagerDeliveryTimesAndPayload(t *testing.T) {
	w := sim.NewWorld(2)
	err := w.Run(func(p *sim.Proc) error {
		net := AttachNet(p.World(), testParams())
		l := net.Layer("t")
		if p.ID() == 0 {
			l.Send(p, &Message{Dst: 1, Tag: 7, Data: []byte("hello")})
			// sender pays only its overhead
			if got, want := p.Now(), int64(100); got != want {
				t.Errorf("sender clock %d, want %d", got, want)
			}
			return nil
		}
		m := l.Endpoint(1).Recv(func(m *Message) bool { return m.Tag == 7 })
		l.Absorb(p, m, 0)
		if !bytes.Equal(m.Data, []byte("hello")) {
			t.Errorf("payload %q, want %q", m.Data, "hello")
		}
		// arrive = send(100) + L(1000) + 5 bytes; receiver adds o_r(100)
		if got, want := p.Now(), int64(100+1000+5+100); got != want {
			t.Errorf("receiver clock %d, want %d", got, want)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestSenderBufferReuseAfterEagerSend(t *testing.T) {
	w := sim.NewWorld(2)
	err := w.Run(func(p *sim.Proc) error {
		net := AttachNet(p.World(), testParams())
		l := net.Layer("t")
		if p.ID() == 0 {
			buf := []byte("original")
			l.Send(p, &Message{Dst: 1, Data: buf})
			copy(buf, "CLOBBER!") // must not affect the in-flight copy
			return nil
		}
		m := l.Endpoint(1).Recv(func(*Message) bool { return true })
		l.Absorb(p, m, 0)
		if string(m.Data) != "original" {
			t.Errorf("payload %q was corrupted by sender reuse", m.Data)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

type tstReq struct{ at atomic.Int64 }

func (r *tstReq) CompleteAt(t int64) { r.at.Store(t) }

func TestRendezvousArrivalDependsOnReceiver(t *testing.T) {
	w := sim.NewWorld(2)
	const lateRecv = int64(50_000)
	err := w.Run(func(p *sim.Proc) error {
		net := AttachNet(p.World(), testParams())
		l := net.Layer("t")
		if p.ID() == 0 {
			req := &tstReq{}
			req.at.Store(-1)
			data := make([]byte, 128) // above the 64-byte eager threshold
			l.Send(p, &Message{Dst: 1, Data: data, Req: req})
			if got := req.at.Load(); got != -1 {
				t.Errorf("rendezvous send completed locally at injection (at=%d)", got)
			}
			return nil
		}
		p.Advance(lateRecv) // receiver arrives late: transfer starts then
		m := l.Endpoint(1).Recv(func(*Message) bool { return true })
		l.Absorb(p, m, 0)
		// start = max(recv clock, RTS arrival) = 50_000;
		// done = start + 2L + 128 bytes + o_r
		want := lateRecv + 2*1000 + 128 + 100
		if p.Now() != want {
			t.Errorf("receiver clock %d, want %d", p.Now(), want)
		}
		if got := m.Req.(*tstReq).at.Load(); got != lateRecv+1000 {
			t.Errorf("sender CTS completion %d, want %d", got, lateRecv+1000)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestNonOvertakingSameStream(t *testing.T) {
	w := sim.NewWorld(2)
	const n = 100
	err := w.Run(func(p *sim.Proc) error {
		net := AttachNet(p.World(), testParams())
		l := net.Layer("t")
		if p.ID() == 0 {
			for i := 0; i < n; i++ {
				l.Send(p, &Message{Dst: 1, Tag: 5, Args: []uint64{uint64(i)}})
			}
			return nil
		}
		for i := 0; i < n; i++ {
			m := l.Endpoint(1).Recv(func(m *Message) bool { return m.Tag == 5 })
			if int(m.Args[0]) != i {
				return fmt.Errorf("message %d arrived out of order (got seq %d)", i, m.Args[0])
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestSelectiveMatchingLeavesOthersQueued(t *testing.T) {
	w := sim.NewWorld(2)
	err := w.Run(func(p *sim.Proc) error {
		net := AttachNet(p.World(), testParams())
		l := net.Layer("t")
		if p.ID() == 0 {
			l.Send(p, &Message{Dst: 1, Tag: 1})
			l.Send(p, &Message{Dst: 1, Tag: 2})
			l.Send(p, &Message{Dst: 1, Tag: 3})
			return nil
		}
		ep := l.Endpoint(1)
		m2 := ep.Recv(func(m *Message) bool { return m.Tag == 2 })
		if m2.Tag != 2 {
			t.Errorf("matched tag %d, want 2", m2.Tag)
		}
		m1 := ep.Recv(func(m *Message) bool { return m.Tag == 1 })
		m3 := ep.Recv(func(m *Message) bool { return m.Tag == 3 })
		if m1.Tag != 1 || m3.Tag != 3 {
			t.Errorf("remaining tags %d,%d, want 1,3", m1.Tag, m3.Tag)
		}
		if ep.QueueLen() != 0 {
			t.Errorf("queue depth %d after draining, want 0", ep.QueueLen())
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestLayersAreIsolated(t *testing.T) {
	w := sim.NewWorld(2)
	err := w.Run(func(p *sim.Proc) error {
		net := AttachNet(p.World(), testParams())
		a, b := net.Layer("a"), net.Layer("b")
		if p.ID() == 0 {
			a.Send(p, &Message{Dst: 1, Tag: 9})
			b.Send(p, &Message{Dst: 1, Tag: 9})
			return nil
		}
		bm := b.Endpoint(1).Recv(func(m *Message) bool { return m.Tag == 9 })
		if bm == nil {
			t.Error("layer b message missing")
		}
		if got := a.Endpoint(1).Recv(func(*Message) bool { return true }); got.Tag != 9 {
			t.Errorf("layer a got tag %d", got.Tag)
		}
		if a.Endpoint(1).QueueLen() != 0 || b.Endpoint(1).QueueLen() != 0 {
			t.Error("cross-layer leakage: queues not empty")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestTryRecvAndPending(t *testing.T) {
	w := sim.NewWorld(1)
	err := w.Run(func(p *sim.Proc) error {
		net := AttachNet(p.World(), testParams())
		l := net.Layer("t")
		ep := l.Endpoint(0)
		if ep.TryRecv(func(*Message) bool { return true }) != nil {
			t.Error("TryRecv on empty queue returned a message")
		}
		if ep.Pending(func(*Message) bool { return true }) {
			t.Error("Pending true on empty queue")
		}
		l.Send(p, &Message{Dst: 0, Tag: 4}) // self-send
		if !ep.Pending(func(m *Message) bool { return m.Tag == 4 }) {
			t.Error("Pending false after self-send")
		}
		if m := ep.TryRecv(func(m *Message) bool { return m.Tag == 4 }); m == nil {
			t.Error("TryRecv missed queued message")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestSendInvalidRankPanics(t *testing.T) {
	w := sim.NewWorld(1)
	err := w.Run(func(p *sim.Proc) error {
		net := AttachNet(p.World(), testParams())
		defer func() {
			if recover() == nil {
				t.Error("send to rank 5 in 1-image world did not panic")
			}
		}()
		net.Layer("t").Send(p, &Message{Dst: 5})
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestSRQPenalty(t *testing.T) {
	m := SRQModel{Enabled: true, Threshold: 128, Factor: 2.2}
	if got := m.Penalty(64); got != 1 {
		t.Errorf("penalty below threshold = %v, want 1", got)
	}
	if got := m.Penalty(128); got != 2.2 {
		t.Errorf("penalty at threshold = %v, want 2.2", got)
	}
	off := SRQModel{}
	if got := off.Penalty(4096); got != 1 {
		t.Errorf("disabled SRQ penalty = %v, want 1", got)
	}
}

func TestPlatformPresets(t *testing.T) {
	for _, name := range []string{"fusion", "edison", "mira"} {
		p := Platform(name)
		if p == nil {
			t.Fatalf("preset %q missing", name)
		}
		if p.Name != name {
			t.Errorf("preset %q has Name %q", name, p.Name)
		}
		if p.LatencyNS <= 0 || p.GapPerByteNS <= 0 || p.FlopNS <= 0 {
			t.Errorf("preset %q has non-positive core parameters: %+v", name, p)
		}
		if p.MPI.PutNS <= p.GASNet.PutNS {
			t.Errorf("preset %q: MPI RMA per-op overhead (%d) should exceed GASNet's (%d) per the paper's microbenchmarks",
				name, p.MPI.PutNS, p.GASNet.PutNS)
		}
	}
	if Platform("nosuch") != nil {
		t.Error("unknown platform should return nil")
	}
	if !Fusion.GASNet.SRQ.Enabled {
		t.Error("fusion preset must enable SRQ (Figure 3)")
	}
	if Edison.GASNet.SRQ.Enabled || Mira.GASNet.SRQ.Enabled {
		t.Error("SRQ is an InfiniBand feature; only fusion enables it")
	}
}

func TestCostHelpers(t *testing.T) {
	p := testParams()
	if got := p.FlopTime(1000); got != 1000 {
		t.Errorf("FlopTime(1000) = %d, want 1000", got)
	}
	if got := p.MemTime(64); got != 64 {
		t.Errorf("MemTime(64) = %d, want 64", got)
	}
	if got := p.WireTime(10); got != 10 {
		t.Errorf("WireTime(10) = %d, want 10", got)
	}
	if p.FlopTime(0) != 0 || p.MemTime(0) != 0 {
		t.Error("zero-work cost should be zero")
	}
}

// Property: any payload sent arrives intact, exactly once, regardless of
// size (crossing the eager/rendezvous boundary) and tag.
func TestDeliveryRoundTripProperty(t *testing.T) {
	f := func(payload []byte, tag uint8) bool {
		w := sim.NewWorld(2)
		var got []byte
		err := w.Run(func(p *sim.Proc) error {
			net := AttachNet(p.World(), testParams())
			l := net.Layer("t")
			if p.ID() == 0 {
				l.Send(p, &Message{Dst: 1, Tag: int(tag), Data: payload})
				return nil
			}
			m := l.Endpoint(1).Recv(func(m *Message) bool { return m.Tag == int(tag) })
			l.Absorb(p, m, 0)
			got = m.Data
			return nil
		})
		if err != nil {
			return false
		}
		if len(payload) == 0 {
			return len(got) == 0
		}
		return bytes.Equal(got, payload)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Property: virtual clocks never run backwards through a send/receive pair,
// and the receiver always lands at or after the sender's injection time.
func TestCausalityProperty(t *testing.T) {
	f := func(preAdvance uint16, size uint16) bool {
		w := sim.NewWorld(2)
		ok := true
		err := w.Run(func(p *sim.Proc) error {
			net := AttachNet(p.World(), testParams())
			l := net.Layer("t")
			if p.ID() == 0 {
				p.Advance(int64(preAdvance))
				l.Send(p, &Message{Dst: 1, Data: make([]byte, int(size)%512)})
				return nil
			}
			m := l.Endpoint(1).Recv(func(*Message) bool { return true })
			before := p.Now()
			l.Absorb(p, m, 0)
			if p.Now() < before || p.Now() < m.SendT {
				ok = false
			}
			return nil
		})
		return err == nil && ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestNodeTopologyPaths(t *testing.T) {
	p := testParams()
	p.CoresPerNode = 4
	p.IntraLatencyNS = 100
	p.IntraGapNS = 0.25

	if !p.SameNode(0, 3) || p.SameNode(3, 4) || !p.SameNode(5, 6) {
		t.Error("node membership wrong")
	}
	if p.PathLatency(0, 1) != 100 || p.PathLatency(0, 4) != 1000 {
		t.Errorf("path latency intra=%d inter=%d", p.PathLatency(0, 1), p.PathLatency(0, 4))
	}
	if p.PathWireTime(0, 1, 100) != 25 || p.PathWireTime(0, 4, 100) != 100 {
		t.Errorf("path wire intra=%d inter=%d", p.PathWireTime(0, 1, 100), p.PathWireTime(0, 4, 100))
	}
	// No topology configured: everything is inter-node.
	q := testParams()
	if q.SameNode(0, 1) {
		t.Error("CoresPerNode=0 should disable node topology")
	}
}

func TestIntraNodeMessagingIsCheaper(t *testing.T) {
	params := testParams()
	params.CoresPerNode = 2
	params.IntraLatencyNS = 50
	params.IntraGapNS = 0.1
	w := sim.NewWorld(4)
	times := make([]int64, 4)
	err := w.Run(func(p *sim.Proc) error {
		net := AttachNet(p.World(), params)
		l := net.Layer("t")
		if p.ID() == 0 {
			l.Send(p, &Message{Dst: 1, Tag: 1, Data: make([]byte, 32)}) // same node
			l.Send(p, &Message{Dst: 2, Tag: 1, Data: make([]byte, 32)}) // other node
			return nil
		}
		if p.ID() == 1 || p.ID() == 2 {
			m := l.Endpoint(p.ID()).Recv(func(m *Message) bool { return m.Tag == 1 })
			l.Absorb(p, m, 0)
			times[p.ID()] = p.Now()
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if times[1] >= times[2] {
		t.Errorf("intra-node delivery (%d ns) should beat inter-node (%d ns)", times[1], times[2])
	}
}

func TestNICClaimQueuesOverlapping(t *testing.T) {
	var n nic
	// Three transfers wanting the same start serialize.
	d1 := n.claim(1000, 100)
	d2 := n.claim(1000, 100)
	d3 := n.claim(1000, 100)
	if d1 != 1100 || d2 != 1200 || d3 != 1300 {
		t.Errorf("serialization wrong: %d %d %d", d1, d2, d3)
	}
}

func TestNICClaimBackfillsGaps(t *testing.T) {
	var n nic
	if got := n.claim(5000, 100); got != 5100 {
		t.Fatalf("first claim %d", got)
	}
	// An out-of-order claim earlier in virtual time fits before the
	// existing reservation instead of queueing behind it.
	if got := n.claim(1000, 100); got != 1100 {
		t.Errorf("backfill failed: %d", got)
	}
	// A gap too small for the request skips to after the blocker.
	if got := n.claim(4950, 100); got != 5200 {
		t.Errorf("tight-gap claim %d, want 5200", got)
	}
}

func TestNICClaimCoalesces(t *testing.T) {
	var n nic
	n.claim(1000, 100) // [1000,1100)
	n.claim(1100, 100) // adjacent -> coalesce to [1000,1200)
	n.claim(1200, 100) // -> [1000,1300)
	if len(n.busy) != 1 {
		t.Errorf("adjacent reservations not coalesced: %d intervals", len(n.busy))
	}
	if n.busy[0].start != 1000 || n.busy[0].end != 1300 {
		t.Errorf("coalesced interval [%d,%d)", n.busy[0].start, n.busy[0].end)
	}
}

func TestNICClaimEvictsOldHistory(t *testing.T) {
	var n nic
	// Many disjoint reservations: the list stays bounded.
	for i := 0; i < 4*maxNICIntervals; i++ {
		n.claim(int64(i)*1000, 10)
	}
	if len(n.busy) > maxNICIntervals {
		t.Errorf("interval list unbounded: %d", len(n.busy))
	}
}

func TestNICZeroOccupancyBypasses(t *testing.T) {
	w := sim.NewWorld(2)
	if err := w.Run(func(p *sim.Proc) error {
		net := AttachNet(p.World(), testParams())
		if p.ID() == 0 {
			net.ClaimNIC(1, 9_000_000, 1000) // park a far-future reservation
			if got := net.ClaimNIC(1, 100, 0); got != 100 {
				return fmt.Errorf("zero-size control message delayed to %d", got)
			}
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
}
