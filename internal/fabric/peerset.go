package fabric

import (
	"math/bits"
	"sort"
)

// DensePeerThreshold is the world size at or below which PeerSet uses a
// single-word bitset. It mirrors obs.DenseCommThreshold so the telemetry
// and synchronization layers flip representations at the same scale.
const DensePeerThreshold = 64

// PeerSet is a set of peer ranks in [0, n) whose memory stays proportional
// to activity, not world size: one uint64 bitset for worlds of up to
// DensePeerThreshold ranks, a sparse map above. It backs the scalable-sync
// mode's per-epoch dirty-peer tracking (which peers did this epoch touch)
// and the on-demand connection table (which peers have established state).
//
// The zero value is an empty set over a zero-rank world; call Init before
// use. PeerSet is not safe for concurrent use — each image owns its sets.
type PeerSet struct {
	n     int
	dense uint64
	m     map[int32]struct{} // nil in dense mode
	count int
}

// Init resets the set to empty over a world of n ranks and picks the
// dense or sparse representation.
func (s *PeerSet) Init(n int) {
	s.n = n
	s.dense = 0
	s.count = 0
	if n > DensePeerThreshold {
		s.m = make(map[int32]struct{})
	} else {
		s.m = nil
	}
}

// Dense reports whether the set uses the bitset representation.
func (s *PeerSet) Dense() bool { return s.m == nil }

// Len returns the number of members.
func (s *PeerSet) Len() int { return s.count }

// Add inserts rank r, reporting whether it was newly added.
func (s *PeerSet) Add(r int) bool {
	if r < 0 || r >= s.n {
		return false
	}
	if s.m != nil {
		if _, ok := s.m[int32(r)]; ok {
			return false
		}
		s.m[int32(r)] = struct{}{}
		s.count++
		return true
	}
	bit := uint64(1) << uint(r)
	if s.dense&bit != 0 {
		return false
	}
	s.dense |= bit
	s.count++
	return true
}

// Has reports whether rank r is a member.
func (s *PeerSet) Has(r int) bool {
	if r < 0 || r >= s.n {
		return false
	}
	if s.m != nil {
		_, ok := s.m[int32(r)]
		return ok
	}
	return s.dense&(uint64(1)<<uint(r)) != 0
}

// Remove deletes rank r if present.
func (s *PeerSet) Remove(r int) {
	if r < 0 || r >= s.n {
		return
	}
	if s.m != nil {
		if _, ok := s.m[int32(r)]; ok {
			delete(s.m, int32(r))
			s.count--
		}
		return
	}
	bit := uint64(1) << uint(r)
	if s.dense&bit != 0 {
		s.dense &^= bit
		s.count--
	}
}

// Clear empties the set, keeping the representation (and the map's
// capacity, so steady-state epochs stop allocating).
func (s *PeerSet) Clear() {
	s.dense = 0
	s.count = 0
	if s.m != nil {
		clear(s.m)
	}
}

// AppendSorted appends the members in ascending rank order to dst and
// returns the extended slice. Sorted iteration is what keeps sparse flush
// deterministic: the virtual-clock charges of a flush walk depend on visit
// order, so map iteration order must never leak into the model.
func (s *PeerSet) AppendSorted(dst []int) []int {
	if s.m != nil {
		base := len(dst)
		for r := range s.m {
			dst = append(dst, int(r))
		}
		sort.Ints(dst[base:])
		return dst
	}
	for w := s.dense; w != 0; w &= w - 1 {
		dst = append(dst, bits.TrailingZeros64(w))
	}
	return dst
}
