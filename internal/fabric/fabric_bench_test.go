package fabric

import (
	"testing"

	"cafmpi/internal/sim"
)

// BenchmarkFabricSendRecv measures the per-message wall-clock cost of the
// fabric fast path under a two-image ping-pong: injection (Send), matched
// receive, absorb, and the blocking wakeup in between. One op is a full
// round trip, so every iteration exercises the waiter path on both sides.
func BenchmarkFabricSendRecv(b *testing.B) {
	b.ReportAllocs()
	payload := make([]byte, 32)
	w := sim.NewWorld(2)
	err := w.Run(func(p *sim.Proc) error {
		net := AttachNet(p.World(), testParams())
		l := net.Layer("bench")
		ep := l.Endpoint(p.ID())
		peer := 1 - p.ID()
		for i := 0; i < b.N; i++ {
			if p.ID() == 0 {
				s := NewMessage()
				s.Dst, s.Tag, s.Data = peer, 1, payload
				l.Send(p, s)
				m := ep.Recv(func(m *Message) bool { return m.Tag == 2 })
				l.Absorb(p, m, 0)
				m.Release()
			} else {
				m := ep.Recv(func(m *Message) bool { return m.Tag == 1 })
				l.Absorb(p, m, 0)
				m.Release()
				s := NewMessage()
				s.Dst, s.Tag, s.Data = peer, 2, payload
				l.Send(p, s)
			}
		}
		return nil
	})
	if err != nil {
		b.Fatal(err)
	}
}

// BenchmarkFabricWildcardMatch measures match cost on a deep queue fed by
// several senders: each round, ranks 1..nSend burst a mix of tagged
// messages at rank 0, which then drains them with exact (src, tag)
// MatchSpec receives for the rarest tag — the indexed path, which lands
// directly in the sender's bucket instead of scanning every queued
// message in arrival order — followed by wildcard receives for the rest
// (an arrival-ordered merge across all source buckets). This is the
// unexpected-message pattern that dominates RandomAccess-style traffic.
func BenchmarkFabricWildcardMatch(b *testing.B) {
	b.ReportAllocs()
	const (
		nSend   = 7  // senders (world size 8)
		perSrc  = 32 // messages per sender per round
		numTags = 4
	)
	w := sim.NewWorld(nSend + 1)
	err := w.Run(func(p *sim.Proc) error {
		net := AttachNet(p.World(), testParams())
		l := net.Layer("bench")
		ep := l.Endpoint(p.ID())
		if p.ID() == 0 {
			// One spec per source, filter bound once, reused every round —
			// the way the MPI progress engine holds its specs.
			specs := make([]MatchSpec, nSend+1)
			for s := 1; s <= nSend; s++ {
				specs[s] = MatchSpec{Classes: AllClasses, Src: s, Before: NoTimeGate,
					Filter: func(m *Message) bool { return m.Tag == numTags-1 }}
			}
			recvSpec := func(spec *MatchSpec) *Message {
				for {
					seq := ep.Seq()
					if m, _ := ep.TryRecvSpec(spec); m != nil {
						return m
					}
					ep.WaitActivity(seq)
				}
			}
			for i := 0; i < b.N; i++ {
				// Exact receives for the deepest-queued tag of each source.
				for s := 1; s <= nSend; s++ {
					for k := 0; k < perSrc/numTags; k++ {
						m := recvSpec(&specs[s])
						l.Absorb(p, m, 0)
						m.Release()
					}
				}
				// Wildcard receives drain everything else in arrival order.
				rest := nSend * perSrc * (numTags - 1) / numTags
				for k := 0; k < rest; k++ {
					m := ep.Recv(func(m *Message) bool { return m.Tag < numTags-1 })
					l.Absorb(p, m, 0)
					m.Release()
				}
				// Resynchronize the senders for the next round.
				for s := 1; s <= nSend; s++ {
					g := NewMessage()
					g.Dst, g.Tag = s, 99
					l.Send(p, g)
				}
			}
			return nil
		}
		for i := 0; i < b.N; i++ {
			for k := 0; k < perSrc; k++ {
				s := NewMessage()
				s.Dst, s.Tag = 0, k%numTags
				l.Send(p, s)
			}
			m := ep.Recv(func(m *Message) bool { return m.Tag == 99 })
			l.Absorb(p, m, 0)
			m.Release()
		}
		return nil
	})
	if err != nil {
		b.Fatal(err)
	}
}
