package fabric

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// Sharded delivery (DESIGN.md §14). A layer partitions its endpoints into S
// contiguous rank blocks ("shards"); each shard owns the one mutex its
// endpoints' match queues live under, so images in different shards match
// and absorb concurrently instead of convoying on per-message lock traffic.
// Cross-shard senders never touch the shard mutex on the fast path: they
// park deliveries in the destination shard's bounded inject ring, and the
// owner side drains the ring in a batch — under a single lock hold — the
// next time any of its endpoints reads its queues. Virtual-time semantics
// are untouched: arrival stamps are still assigned per endpoint at the
// moment a message becomes visible, in ring FIFO order, and every (src,dst)
// pair uses a fixed path (same-shard direct or cross-shard ring), so
// per-(src,dst) program order — the non-overtaking guarantee — holds
// exactly as it did under the per-endpoint mutex.

// Delivery is one unit of fabric injection: the message plus, when the
// fault injector duplicated it, the sibling copy that must become visible
// in the same atomic step. At-most-once dedup (Endpoint.sweepDupLocked)
// relies on both copies entering the match queues under one lock hold: with
// separate injections the receiver can match and absorb Msg in the window
// between them, the dedup sweep then finds no sibling, and Dup is later
// delivered as a real second copy.
type Delivery struct {
	Msg *Message
	Dup *Message // nil unless the fault injector duplicated Msg
}

// injectRingCap bounds each shard's inject ring. Overflow is not loss: a
// sender that finds the ring full falls back to draining it into the owner
// shard itself and enqueuing directly, so the bound only caps how much a
// slow consumer can lag, never how much can be sent.
const injectRingCap = 256

// injectEntry is one ring slot: the destination endpoint and the delivery.
type injectEntry struct {
	ep  *Endpoint
	m   *Message
	dup *Message
}

// injectRing is the bounded MPSC mailbox cross-shard senders target. The
// short ring mutex serializes producers against each other and against the
// draining consumer, but is never held across match-queue work — the
// consumer copies entries out into the shard's scratch block and releases
// it before enqueuing — so producers only ever wait out a memcpy.
type injectRing struct {
	mu   sync.Mutex
	n    atomic.Int32               // occupied slots; consumers skip the lock when zero
	head int                        // next slot to drain; guarded by mu
	buf  [injectRingCap]injectEntry // guarded by mu
}

// push parks e in the ring. It reports false when the ring is full; the
// caller must then take the slow path (drain + direct enqueue) — dropping
// the entry would lose a message.
func (r *injectRing) push(e injectEntry) bool {
	r.mu.Lock()
	n := int(r.n.Load())
	if n == injectRingCap {
		r.mu.Unlock()
		return false
	}
	r.buf[(r.head+n)%injectRingCap] = e
	r.n.Add(1)
	r.mu.Unlock()
	return true
}

// shard is one delivery partition: the mutex its endpoints' match queues
// live under, the inject ring cross-shard senders feed, and the per-shard
// drain scratch (its "pool": batched drains recycle this block instead of
// allocating; message and payload storage already recycle through the
// per-P-sharded sync.Pools in pool.go).
type shard struct {
	mu      sync.Mutex
	ring    injectRing
	scratch [injectRingCap]injectEntry // drain staging; guarded by mu
}

// drainLocked makes every ring-parked delivery visible in its endpoint's
// match queues. The caller holds s.mu. Entries drain in ring FIFO order, so
// a (src,dst) stream's stamps are issued in program order; a delivery's
// duplicate enters under the same s.mu hold as the original, preserving
// dup atomicity. Endpoint wakeups stay shard-local: only conds of this
// shard's endpoints — and only those with an intersecting registered
// waiter domain — are broadcast.
func (s *shard) drainLocked() {
	for s.ring.n.Load() > 0 {
		s.ring.mu.Lock()
		k := int(s.ring.n.Load())
		for i := 0; i < k; i++ {
			j := (s.ring.head + i) % injectRingCap
			s.scratch[i] = s.ring.buf[j]
			s.ring.buf[j] = injectEntry{}
		}
		s.ring.head = (s.ring.head + k) % injectRingCap
		s.ring.n.Add(int32(-k))
		s.ring.mu.Unlock()
		for i := 0; i < k; i++ {
			ent := &s.scratch[i]
			wake := ent.ep.enqueueLocked(ent.m)
			if ent.dup != nil && ent.ep.enqueueLocked(ent.dup) {
				wake = true
			}
			if wake {
				ent.ep.cond.Broadcast()
			}
			*ent = injectEntry{}
		}
	}
}

// deliveryShards resolves the shard count for a world of n images: the
// Params override when set, else GOMAXPROCS, clamped to [1, n]. Host
// tuning only — the count never appears in any virtual-time computation.
// ShardsFor reports the delivery-shard count a Layer of n endpoints would
// use under p: p.DeliveryShards when set, else GOMAXPROCS at call time,
// clamped to [1, n]. Exported so experiments and launchers can label
// wall-clock measurements with the engine configuration that produced them
// without constructing a Net.
func ShardsFor(p *Params, n int) int { return deliveryShards(p, n) }

func deliveryShards(p *Params, n int) int {
	s := p.DeliveryShards
	if s <= 0 {
		s = runtime.GOMAXPROCS(0)
	}
	if s > n {
		s = n
	}
	if s < 1 {
		s = 1
	}
	return s
}
