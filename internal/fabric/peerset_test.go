package fabric

import (
	"reflect"
	"sort"
	"testing"
)

func TestPeerSetRepresentationCrossover(t *testing.T) {
	var d PeerSet
	d.Init(DensePeerThreshold)
	if !d.Dense() {
		t.Fatalf("n=%d: want dense bitset", DensePeerThreshold)
	}
	var s PeerSet
	s.Init(DensePeerThreshold + 1)
	if s.Dense() {
		t.Fatalf("n=%d: want sparse map", DensePeerThreshold+1)
	}
}

func TestPeerSetBasics(t *testing.T) {
	for _, n := range []int{8, 64, 65, 4096} {
		var s PeerSet
		s.Init(n)
		if !s.Add(n - 1) {
			t.Fatalf("n=%d: first Add(%d) should be new", n, n-1)
		}
		if s.Add(n - 1) {
			t.Fatalf("n=%d: second Add(%d) should not be new", n, n-1)
		}
		s.Add(0)
		s.Add(n / 2)
		if got := s.Len(); got != 3 {
			t.Fatalf("n=%d: Len=%d, want 3", n, got)
		}
		if !s.Has(0) || !s.Has(n/2) || !s.Has(n-1) || s.Has(1) {
			t.Fatalf("n=%d: membership wrong", n)
		}
		// Out-of-range ranks are rejected, never counted.
		if s.Add(-1) || s.Add(n) || s.Has(-1) || s.Has(n) {
			t.Fatalf("n=%d: out-of-range ranks must be rejected", n)
		}
		s.Remove(n / 2)
		if s.Has(n/2) || s.Len() != 2 {
			t.Fatalf("n=%d: Remove(%d) failed", n, n/2)
		}
		s.Remove(n / 2) // idempotent
		if s.Len() != 2 {
			t.Fatalf("n=%d: double Remove changed Len", n)
		}
		s.Clear()
		if s.Len() != 0 || s.Has(0) || s.Has(n-1) {
			t.Fatalf("n=%d: Clear left members behind", n)
		}
		if !s.Add(0) {
			t.Fatalf("n=%d: Add after Clear should be new", n)
		}
	}
}

func TestPeerSetAppendSortedAscending(t *testing.T) {
	// Sorted iteration is load-bearing for clock determinism: insert in a
	// scrambled order and demand ascending output in both representations.
	for _, n := range []int{64, 4096} {
		var s PeerSet
		s.Init(n)
		ranks := []int{n - 1, 3, 0, n / 2, 17 % n, n - 2}
		for _, r := range ranks {
			s.Add(r)
		}
		want := append([]int(nil), ranks...)
		sort.Ints(want)
		// Dedup (17%n may collide for small n).
		uniq := want[:0]
		for i, r := range want {
			if i == 0 || r != want[i-1] {
				uniq = append(uniq, r)
			}
		}
		prefix := []int{-7}
		got := s.AppendSorted(prefix)
		if !reflect.DeepEqual(got[:1], []int{-7}) {
			t.Fatalf("n=%d: AppendSorted clobbered the prefix: %v", n, got)
		}
		if !reflect.DeepEqual(got[1:], uniq) {
			t.Fatalf("n=%d: AppendSorted=%v, want %v", n, got[1:], uniq)
		}
	}
}

// TestPeerSetBoundary63_64_65 pins the dense-bitset↔sparse-map switch at
// world sizes 63, 64 and 65: n=64 is the last dense world and its top rank
// (63) lives in the bitset's most significant bit — the off-by-one a shift
// bug would hit — while n=65 is the first sparse one. Insert, duplicate
// insert, remove, clear, refill and AppendSorted must behave identically
// on both sides of the representation switch.
func TestPeerSetBoundary63_64_65(t *testing.T) {
	for _, n := range []int{63, 64, 65} {
		wantDense := n <= DensePeerThreshold
		var s PeerSet
		s.Init(n)
		if s.Dense() != wantDense {
			t.Fatalf("n=%d: Dense()=%v, want %v", n, s.Dense(), wantDense)
		}

		// Boundary-sensitive members: rank 0, the top valid rank, a middle
		// one. Duplicates must report not-added in both representations.
		hi := n - 1
		for _, r := range []int{0, hi, 17} {
			if !s.Add(r) {
				t.Fatalf("n=%d: Add(%d) = false on first insert", n, r)
			}
			if s.Add(r) {
				t.Fatalf("n=%d: Add(%d) = true on duplicate", n, r)
			}
		}
		if s.Len() != 3 || !s.Has(hi) {
			t.Fatalf("n=%d: Len=%d Has(%d)=%v after inserts", n, s.Len(), hi, s.Has(hi))
		}
		if got, want := s.AppendSorted(nil), []int{0, 17, hi}; !reflect.DeepEqual(got, want) {
			t.Fatalf("n=%d: AppendSorted=%v, want %v", n, got, want)
		}

		// Remove the top rank (bit 63 in the n=64 world).
		s.Remove(hi)
		if s.Has(hi) || s.Len() != 2 {
			t.Fatalf("n=%d: Remove(%d) left Has=%v Len=%d", n, hi, s.Has(hi), s.Len())
		}

		// Clear keeps the representation; refill must not resurrect stale
		// members or miscount.
		s.Clear()
		if s.Len() != 0 || s.Dense() != wantDense {
			t.Fatalf("n=%d: after Clear Len=%d Dense=%v, want 0/%v", n, s.Len(), s.Dense(), wantDense)
		}
		if out := s.AppendSorted(nil); len(out) != 0 {
			t.Fatalf("n=%d: AppendSorted after Clear = %v", n, out)
		}
		if !s.Add(hi) || !s.Has(hi) || s.Len() != 1 {
			t.Fatalf("n=%d: refill after Clear broken", n)
		}
	}
}

// TestPeerSetFullWorldSweep crosses the boundary with every rank present:
// the sorted walk over a full set must be exactly [0..n) on both sides of
// the switch, regardless of insertion order.
func TestPeerSetFullWorldSweep(t *testing.T) {
	for _, n := range []int{63, 64, 65} {
		var s PeerSet
		s.Init(n)
		for r := n - 1; r >= 0; r-- { // reverse insert: order must not matter
			s.Add(r)
		}
		if s.Len() != n {
			t.Fatalf("n=%d: Len=%d after full fill", n, s.Len())
		}
		out := s.AppendSorted(nil)
		for r := 0; r < n; r++ {
			if out[r] != r {
				t.Fatalf("n=%d: AppendSorted[%d]=%d, want %d", n, r, out[r], r)
			}
		}
	}
}

func TestSparseVariantPresets(t *testing.T) {
	for _, name := range []string{"fusion", "edison", "mira"} {
		base := Platform(name)
		sp := Platform(name + "-sparse")
		if sp == nil {
			t.Fatalf("missing preset %q", name+"-sparse")
		}
		if !sp.SparseSync() || base.SparseSync() {
			t.Fatalf("%s: SparseSync flags wrong (sparse=%v base=%v)",
				name, sp.SparseSync(), base.SparseSync())
		}
		// The variant must differ only in Name and the mode switch.
		cp := *sp
		cp.Name = base.Name
		cp.MPI.SparseFlush = false
		if !reflect.DeepEqual(cp, *base) {
			t.Fatalf("%s-sparse diverged from %s beyond the mode switch", name, name)
		}
	}
}
