package fabric

import (
	"fmt"
	"runtime"
	"testing"
	"testing/quick"

	"cafmpi/internal/faults"
	"cafmpi/internal/sim"
)

// shardParams is testParams with the delivery-shard count pinned (the
// tests below must not depend on the host's GOMAXPROCS).
func shardParams(s int) *Params {
	p := testParams()
	p.DeliveryShards = s
	return p
}

// checkNonOvertaking runs an all-to-all of per-stream-numbered messages on
// a world of np images partitioned into the given shard count and fails if
// any receiver observes a (src,dst) stream out of program order. Every
// shard count must preserve the invariant: same-shard pairs ride the
// direct enqueue, cross-shard pairs the inject ring, and both are FIFO.
func checkNonOvertaking(np, shards, msgs int) error {
	w := sim.NewWorld(np)
	return w.Run(func(p *sim.Proc) error {
		net := AttachNet(p.World(), shardParams(shards))
		l := net.Layer("t")
		for dst := 0; dst < np; dst++ {
			if dst == p.ID() {
				continue
			}
			for i := 0; i < msgs; i++ {
				if err := l.Send(p, &Message{Dst: dst, Tag: 5, Args: []uint64{uint64(i)}}); err != nil {
					return err
				}
			}
		}
		next := make([]int, np)
		ep := l.Endpoint(p.ID())
		for k := 0; k < (np-1)*msgs; k++ {
			m := ep.Recv(func(*Message) bool { return true })
			if int(m.Args[0]) != next[m.Src] {
				return fmt.Errorf("image %d: stream from %d overtook itself: got seq %d, want %d",
					p.ID(), m.Src, m.Args[0], next[m.Src])
			}
			next[m.Src]++
		}
		return nil
	})
}

func TestCrossShardNonOvertaking(t *testing.T) {
	for _, tc := range []struct{ np, shards, msgs int }{
		{8, 1, 40},  // everything same-shard: the pre-shard fast path
		{8, 2, 40},  // 4-rank blocks, half the pairs cross-shard
		{8, 3, 40},  // uneven blocks (8 ranks over 3 shards)
		{8, 8, 40},  // every pair cross-shard
		{4, 2, 300}, // bursts past the inject-ring capacity per stream
	} {
		if err := checkNonOvertaking(tc.np, tc.shards, tc.msgs); err != nil {
			t.Errorf("np=%d shards=%d msgs=%d: %v", tc.np, tc.shards, tc.msgs, err)
		}
	}
}

// TestCrossShardNonOvertakingProperty: the same invariant as a randomized
// property over (np, shards, msgs) — shard counts that divide the world
// unevenly and streams that straddle the ring boundary are the interesting
// corners, and quick finds them without us enumerating.
func TestCrossShardNonOvertakingProperty(t *testing.T) {
	f := func(npSeed, shardSeed, msgSeed uint8) bool {
		np := 2 + int(npSeed)%7
		shards := 1 + int(shardSeed)%np
		msgs := 1 + int(msgSeed)%64
		if err := checkNonOvertaking(np, shards, msgs); err != nil {
			t.Log(err)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// TestInjectRingCapacity pins the bounded-MPSC contract: exactly
// injectRingCap entries fit, the next push reports full (sending the
// producer down the drain-then-direct-enqueue fallback), and a drain frees
// the slots again.
func TestInjectRingCapacity(t *testing.T) {
	var r injectRing
	for i := 0; i < injectRingCap; i++ {
		if !r.push(injectEntry{}) {
			t.Fatalf("push %d rejected below capacity %d", i, injectRingCap)
		}
	}
	if r.push(injectEntry{}) {
		t.Fatal("push beyond capacity accepted: the ring is not bounded")
	}
}

// TestInjectRingOverflowPreservesOrder drives one cross-shard stream far
// past the ring capacity with no receiver draining, so the tail of the
// stream is forced through the ring-full fallback (drain + direct
// enqueue). The whole stream must still come out in order: the fallback
// drains the ring before enqueueing directly, so an overflowing stream can
// never pass its own parked messages.
func TestInjectRingOverflowPreservesOrder(t *testing.T) {
	const n = 2*injectRingCap + 100
	w := sim.NewWorld(2)
	net := AttachNet(w, shardParams(2)) // rank 0 / rank 1 on distinct shards
	l := net.Layer("t")
	for i := 0; i < n; i++ {
		l.Inject(Delivery{Msg: &Message{Src: 0, Dst: 1, Tag: 5, Args: []uint64{uint64(i)}}})
	}
	ep := l.Endpoint(1)
	if got := ep.QueueLen(); got != n {
		t.Fatalf("queue depth %d after %d injects, want all visible", got, n)
	}
	for i := 0; i < n; i++ {
		m := ep.TryRecv(func(*Message) bool { return true })
		if m == nil {
			t.Fatalf("message %d missing", i)
		}
		if int(m.Args[0]) != i {
			t.Fatalf("overflow reordered the stream: got seq %d at position %d", m.Args[0], i)
		}
	}
}

// TestInjectRingRaceStress hammers every shard's inject ring from np
// concurrent senders with the fault injector's dup plan active — each dup
// rides its original's Delivery as one ring entry, so the dedup sweep's
// at-most-once guarantee crosses the ring too. Run under -race this is the
// concurrency certificate for the MPSC rings; the per-stream order check
// doubles as a non-overtaking assertion under real host parallelism.
func TestInjectRingRaceStress(t *testing.T) {
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(8))
	const np, msgs = 8, 120
	plan := &faults.Plan{Seed: 5, Rules: []faults.Rule{
		{Kind: faults.KindDup, Src: -1, Dst: -1, Prob: 0.5, DelayNS: 300},
	}}
	w := sim.NewWorld(np)
	err := w.Run(func(p *sim.Proc) error {
		faults.Enable(p.World(), plan)
		net := AttachNet(p.World(), shardParams(np))
		l := net.Layer("t")
		for dst := 0; dst < np; dst++ {
			if dst == p.ID() {
				continue
			}
			for i := 0; i < msgs; i++ {
				if err := l.Send(p, &Message{Dst: dst, Tag: 7, Args: []uint64{uint64(i)}}); err != nil {
					return err
				}
			}
		}
		next := make([]int, np)
		ep := l.Endpoint(p.ID())
		for k := 0; k < (np-1)*msgs; k++ {
			m := ep.Recv(func(*Message) bool { return true })
			if int(m.Args[0]) != next[m.Src] {
				return fmt.Errorf("image %d: stream from %d reordered under contention: got %d, want %d",
					p.ID(), m.Src, m.Args[0], next[m.Src])
			}
			next[m.Src]++
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestShardsForDerivation(t *testing.T) {
	p := testParams()
	if got := ShardsFor(p, 8); got < 1 || got > 8 {
		t.Errorf("derived shard count %d outside [1,8]", got)
	}
	p.DeliveryShards = 3
	if got := ShardsFor(p, 8); got != 3 {
		t.Errorf("pinned shard count = %d, want 3", got)
	}
	if got := ShardsFor(p, 2); got != 2 {
		t.Errorf("shard count for np=2 = %d, want clamp to 2", got)
	}
	w := sim.NewWorld(4)
	net := AttachNet(w, shardParams(3))
	if got := net.Layer("t").Shards(); got != 3 {
		t.Errorf("Layer.Shards() = %d, want 3", got)
	}
}
