package core

import (
	"fmt"

	"cafmpi/internal/elem"
	"cafmpi/internal/faults"
	"cafmpi/internal/trace"
)

// RegisterFunc installs a shippable function under id. Registration must be
// symmetric: every image registers the same id before any image spawns it
// (function pointers cannot travel between images; ids can).
func (im *Image) RegisterFunc(id uint64, fn SpawnFunc) error {
	if fn == nil {
		return fmt.Errorf("core: nil spawn function: %w", faults.ErrInvalid)
	}
	if _, dup := im.funcs[id]; dup {
		return fmt.Errorf("core: spawn function %d already registered: %w", id, faults.ErrInvalid)
	}
	im.funcs[id] = fn
	if q := im.orphanSpawns[id]; q != nil {
		delete(im.orphanSpawns, id)
		for _, o := range q {
			// Replays go through dispatch, not deliver: the sanitizer's AM
			// happens-before edge was already consumed when the message first
			// arrived and was queued as an orphan.
			im.dispatch(o.src, o.kind, o.args, o.payload)
		}
	}
	return nil
}

// Spawn ships function id with argument bytes to teammate target (CAF 2.0
// function shipping). The function executes on the target's goroutine when
// the target makes runtime progress; it may communicate, block, and spawn
// further functions. Termination of the transitive spawn tree is what
// Finish detects.
func (im *Image) Spawn(t *Team, target int, id uint64, args []byte) error {
	if err := t.checkRank(target, "Spawn"); err != nil {
		return err
	}
	if _, ok := im.funcs[id]; !ok {
		return fmt.Errorf("core: spawning unregistered function %d (registration must be symmetric): %w", id, faults.ErrInvalid)
	}
	defer im.tr.Span(trace.SpawnOp)()
	im.shipped++ // counted before injection: an in-flight spawn is visible
	im.amArgs[0] = id
	return im.amSend(t.WorldRank(target), amSpawn, im.amArgs[:1], args)
}

// Finish runs body and then blocks until every asynchronous operation and
// every transitively shipped function issued within it is globally complete
// (§3.5). Finish is collective over t: all members must call it.
//
// Completion uses Yang's termination-detection algorithm: repeated team
// reductions of (shipped - completed). A round terminates the finish when
// the global difference is zero and the global shipped count did not change
// since the previous round (so no spawn slipped between reduction waves).
// When no function shipping is used at all, the first reduction observes
// zeros and the finish degenerates to the fast version: complete local
// operations, flush remotely (ReleaseFence), and synchronize — the
// MPI_WIN_FLUSH_ALL + barrier fast path the paper describes.
func (im *Image) Finish(t *Team, body func() error) error {
	defer im.tr.Span(trace.FinishOp)()
	if err := body(); err != nil {
		return err
	}
	prevShipped := int64(-1)
	for {
		im.Poll() // execute any spawns already queued locally
		if err := im.releaseFence(); err != nil {
			return err
		}
		in := []int64{im.shipped - im.completed, im.shipped}
		out := make([]int64, 2)
		if err := t.Allreduce(elem.I64Bytes(in), elem.I64Bytes(out), elem.Int64, elem.Sum); err != nil {
			return err
		}
		if out[0] == 0 && (out[1] == 0 || out[1] == prevShipped) {
			return nil
		}
		prevShipped = out[1]
	}
}
