package core

import (
	"fmt"

	"cafmpi/internal/elem"
	"cafmpi/internal/faults"
	"cafmpi/internal/trace"
)

// Team collectives. Each operation first tries the substrate's native
// implementation (CAF-MPI maps these to MPI's long-optimized collectives —
// one of the paper's headline benefits of the rich MPI interface); when the
// substrate reports ErrUnsupported, the runtime falls back to hand-crafted
// algorithms, exactly as the original CAF 2.0 runtime does over
// collective-less GASNet (§4.2): small payloads ride active messages, bulk
// payloads move by one-sided puts into a slotted per-team scratch coarray
// with AM signals and credit-based flow control.

// collAMMax is the largest payload carried inside a collective AM; larger
// transfers go through the scratch coarray.
const collAMMax = 1024

// Barrier blocks until every team member has entered it.
//
// The public collectives are the sanitizer's collective sync points: entry
// contributes this image's clock to the round, exit joins the
// contributors'. Rooted collectives contribute/acquire asymmetrically (a
// bcast orders root entry before every exit but does not order leaves with
// each other). The generic AM fallbacks would be covered by the AM edges
// alone; the explicit hooks are what cover the substrate-native
// implementations, which move no AMs.
func (t *Team) Barrier() error {
	defer t.im.tr.Span(trace.Collective)()
	round := t.im.san.CollEnter(t.id, t.Size(), true)
	defer t.im.san.CollExit(t.id, round, true)
	if err := t.im.sub.Barrier(t.ref); err != ErrUnsupported {
		return err
	}
	return t.genericBarrier()
}

func (t *Team) genericBarrier() error {
	n := t.Size()
	base := t.coll.nextKey()
	for k, round := 1, 0; k < n; k, round = k<<1, round+1 {
		key := base + round
		dst := (t.Rank() + k) % n
		src := (t.Rank() - k + n) % n
		if err := t.sendSignal(dst, key); err != nil {
			return err
		}
		if err := t.im.pollUntil(func() bool { return t.coll.consumeSig(key, src) }); err != nil {
			return err
		}
	}
	return nil
}

// sendSignal delivers an AM signal (key, myRank) to teammate dst.
func (t *Team) sendSignal(dst, key int) error {
	im := t.im
	im.amArgs[0], im.amArgs[1], im.amArgs[2] = t.id, uint64(uint(key)), uint64(t.Rank())
	return im.amSend(t.WorldRank(dst), amCollSignal, im.amArgs[:3], nil)
}

// sendData delivers a small payload to teammate dst under key.
func (t *Team) sendData(dst, key int, payload []byte) error {
	im := t.im
	im.amArgs[0], im.amArgs[1], im.amArgs[2] = t.id, uint64(uint(key)), uint64(t.Rank())
	return im.amSend(t.WorldRank(dst), amCollData, im.amArgs[:3], payload)
}

// ensureScratch guarantees the team scratch coarray has at least slotBytes
// per team rank. Growth is collective (all members reach the same op with
// the same sizes). Outstanding credits survive reallocation: they count
// slot availability, which a collective reallocation preserves.
func (t *Team) ensureScratch(slotBytes int) error {
	if t.coll.scratch != nil && t.coll.slotBytes >= slotBytes {
		return nil
	}
	want := 64
	for want < slotBytes {
		want *= 2
	}
	if t.coll.scratch != nil {
		if err := t.im.sub.FreeSegment(t.coll.scratch); err != nil {
			return err
		}
	}
	id, err := t.im.newID(t)
	if err != nil {
		return err
	}
	seg, err := t.im.sub.AllocSegment(t.ref, want*t.Size(), id)
	if err != nil {
		return err
	}
	t.coll.scratch, t.coll.slotBytes = seg, want
	return t.genericBarrier()
}

// putSlot writes data into dst's scratch slot for this image and signals
// (key, myRank). It consumes one flow-control credit for dst.
func (t *Team) putSlot(dst, key int, data []byte) error {
	if err := t.im.pollUntil(func() bool { return t.coll.takeCredit(dst) }); err != nil {
		return err
	}
	if err := t.im.sub.PutDeferred(t.coll.scratch, dst, t.Rank()*t.coll.slotBytes, data); err != nil {
		return err
	}
	if err := t.im.releaseFence(); err != nil {
		return err
	}
	return t.sendSignal(dst, key)
}

// recvSlot waits for (key, src), copies n bytes out of src's slot into dst,
// and returns the credit.
func (t *Team) recvSlot(src, key int, dst []byte) error {
	if err := t.im.pollUntil(func() bool { return t.coll.consumeSig(key, src) }); err != nil {
		return err
	}
	slot := t.coll.scratch.Local()[src*t.coll.slotBytes:]
	copy(dst, slot[:len(dst)])
	return t.sendSignal(src, creditKey)
}

// Bcast broadcasts root's buf to every member.
func (t *Team) Bcast(buf []byte, root int) error {
	defer t.im.tr.Span(trace.Collective)()
	round := t.im.san.CollEnter(t.id, t.Size(), t.Rank() == root)
	defer t.im.san.CollExit(t.id, round, true)
	return t.bcast(buf, root)
}

func (t *Team) bcast(buf []byte, root int) error {
	if err := t.checkRank(root, "Bcast root"); err != nil {
		return err
	}
	if err := t.im.sub.Bcast(t.ref, buf, root); err != ErrUnsupported {
		return err
	}
	return t.genericBcast(buf, root)
}

func (t *Team) genericBcast(buf []byte, root int) error {
	n := t.Size()
	big := len(buf) > collAMMax
	if big {
		if err := t.ensureScratch(len(buf)); err != nil {
			return err
		}
	}
	key := t.coll.nextKey()
	vr := (t.Rank() - root + n) % n
	mask := 1
	for mask < n {
		if vr&mask != 0 {
			parent := (t.Rank() - mask + n) % n
			if big {
				if err := t.recvSlot(parent, key, buf); err != nil {
					return err
				}
			} else {
				var got []byte
				if err := t.im.pollUntil(func() bool {
					got = t.coll.take(key, parent)
					return got != nil
				}); err != nil {
					return err
				}
				if len(got) != len(buf) {
					return fmt.Errorf("core: bcast size mismatch (%d vs %d)", len(got), len(buf))
				}
				copy(buf, got)
			}
			break
		}
		mask <<= 1
	}
	var children []int
	for mask >>= 1; mask > 0; mask >>= 1 {
		if vr+mask < n {
			children = append(children, (t.Rank()+mask)%n)
		}
	}
	if !big {
		for _, child := range children {
			if err := t.sendData(child, key, buf); err != nil {
				return err
			}
		}
		return nil
	}
	// Bulk forwarding: write every child's slot, one fence, then signal —
	// the puts overlap instead of paying a completion round trip each.
	for _, child := range children {
		if err := t.im.pollUntil(func() bool { return t.coll.takeCredit(child) }); err != nil {
			return err
		}
		if err := t.im.sub.PutDeferred(t.coll.scratch, child, t.Rank()*t.coll.slotBytes, buf); err != nil {
			return err
		}
	}
	if len(children) > 0 {
		if err := t.im.releaseFence(); err != nil {
			return err
		}
		for _, child := range children {
			if err := t.sendSignal(child, key); err != nil {
				return err
			}
		}
	}
	return nil
}

// bcastU64 broadcasts a small uint64 vector (runtime-internal helper).
func (t *Team) bcastU64(v []uint64, root int) error {
	return t.bcast(elem.U64Bytes(v), root)
}

// Reduce combines in from every member with op into out at root.
func (t *Team) Reduce(in, out []byte, k elem.Kind, op elem.Op, root int) error {
	defer t.im.tr.Span(trace.Collective)()
	round := t.im.san.CollEnter(t.id, t.Size(), true)
	defer t.im.san.CollExit(t.id, round, t.Rank() == root)
	return t.reduce(in, out, k, op, root)
}

func (t *Team) reduce(in, out []byte, k elem.Kind, op elem.Op, root int) error {
	if err := t.checkRank(root, "Reduce root"); err != nil {
		return err
	}
	if len(in)%k.Size() != 0 {
		return fmt.Errorf("core: Reduce buffer size %d not a multiple of element size %d: %w", len(in), k.Size(), faults.ErrInvalid)
	}
	if err := t.im.sub.Reduce(t.ref, in, out, k, op, root); err != ErrUnsupported {
		return err
	}
	return t.genericReduce(in, out, k, op, root)
}

func (t *Team) genericReduce(in, out []byte, k elem.Kind, op elem.Op, root int) error {
	n := t.Size()
	big := len(in) > collAMMax
	if big {
		if err := t.ensureScratch(len(in)); err != nil {
			return err
		}
	}
	key := t.coll.nextKey()
	acc := append([]byte(nil), in...)
	tmp := make([]byte, len(in))
	vr := (t.Rank() - root + n) % n
	for mask := 1; mask < n; mask <<= 1 {
		if vr&mask != 0 {
			parent := (t.Rank() - mask + n) % n
			if big {
				return t.putSlot(parent, key, acc)
			}
			return t.sendData(parent, key, acc)
		}
		if vr+mask < n {
			child := (t.Rank() + mask) % n
			if big {
				if err := t.recvSlot(child, key, tmp); err != nil {
					return err
				}
			} else {
				var got []byte
				if err := t.im.pollUntil(func() bool {
					got = t.coll.take(key, child)
					return got != nil
				}); err != nil {
					return err
				}
				if len(got) != len(tmp) {
					return fmt.Errorf("core: reduce size mismatch (%d vs %d)", len(got), len(tmp))
				}
				copy(tmp, got)
			}
			if err := elem.ReduceInto(acc, tmp, k, op); err != nil {
				return err
			}
			t.im.Compute(int64(len(acc) / k.Size()))
		}
	}
	if len(out) < len(acc) {
		return fmt.Errorf("core: Reduce out buffer too small (%d < %d): %w", len(out), len(acc), faults.ErrInvalid)
	}
	copy(out, acc)
	return nil
}

// Allreduce combines in across the team with op; every member receives the
// result in out.
func (t *Team) Allreduce(in, out []byte, k elem.Kind, op elem.Op) error {
	defer t.im.tr.Span(trace.Collective)()
	if len(out) < len(in) {
		return fmt.Errorf("core: Allreduce out buffer too small (%d < %d): %w", len(out), len(in), faults.ErrInvalid)
	}
	round := t.im.san.CollEnter(t.id, t.Size(), true)
	defer t.im.san.CollExit(t.id, round, true)
	if err := t.im.sub.Allreduce(t.ref, in, out, k, op); err != ErrUnsupported {
		return err
	}
	if err := t.reduce(in, out, k, op, 0); err != nil {
		return err
	}
	return t.bcast(out[:len(in)], 0)
}

// Allgather concatenates every member's equal-size send block into recv,
// ordered by team rank: a gather to rank 0 followed by a broadcast.
func (t *Team) Allgather(send, recv []byte) error {
	defer t.im.tr.Span(trace.Collective)()
	blk := len(send)
	n := t.Size()
	if len(recv) < blk*n {
		return fmt.Errorf("core: Allgather recv buffer too small (%d < %d): %w", len(recv), blk*n, faults.ErrInvalid)
	}
	round := t.im.san.CollEnter(t.id, n, true)
	defer t.im.san.CollExit(t.id, round, true)
	if err := t.im.sub.Allgather(t.ref, send, recv); err != ErrUnsupported {
		return err
	}
	// Scalable-sync mode swaps the rank-0 fan-in (n-1 sequential receives at
	// the root) for recursive doubling: log2(n) rounds with no funnel rank.
	// Power-of-two teams and AM-sized blocks only; everything else keeps the
	// paper-faithful flat construction below.
	if t.im.sub.Platform().SparseSync() && n > 1 && n&(n-1) == 0 && blk > 0 && blk <= collAMMax {
		return t.allgatherRD(send, recv, blk)
	}
	big := blk > collAMMax
	if big {
		if err := t.ensureScratch(blk); err != nil {
			return err
		}
	}
	key := t.coll.nextKey()
	if t.Rank() != 0 {
		if big {
			if err := t.putSlot(0, key, send); err != nil {
				return err
			}
		} else if err := t.sendData(0, key, send); err != nil {
			return err
		}
	} else {
		copy(recv[:blk], send)
		for src := 1; src < n; src++ {
			if big {
				if err := t.recvSlot(src, key, recv[src*blk:(src+1)*blk]); err != nil {
					return err
				}
				continue
			}
			var got []byte
			s := src
			if err := t.im.pollUntil(func() bool {
				got = t.coll.take(key, s)
				return got != nil
			}); err != nil {
				return err
			}
			if len(got) != blk {
				return fmt.Errorf("core: Allgather block size mismatch from rank %d (%d vs %d)", s, len(got), blk)
			}
			copy(recv[s*blk:(s+1)*blk], got)
		}
	}
	return t.bcast(recv[:blk*n], 0)
}

// allgatherRD is the recursive-doubling allgather used in scalable-sync
// mode: in round r each image exchanges its accumulated 2^r blocks with
// partner rank^2^r, so after log2(n) rounds every image holds all n blocks
// with no rank-0 incast. Aggregated payloads are chunked to collAMMax-sized
// active messages, each under its own key — the collective inbox overwrites
// a reused (key, src) slot, so an unconsumed chunk must never share one.
// The key window is reserved up front from chunk counts that are a pure
// function of (n, blk), keeping every member's key generator in step.
func (t *Team) allgatherRD(send, recv []byte, blk int) error {
	n := t.Size()
	me := t.Rank()
	copy(recv[me*blk:(me+1)*blk], send)
	total := 0
	for m := 1; m < n; m <<= 1 {
		total += (m*blk + collAMMax - 1) / collAMMax
	}
	key := t.coll.nextKeys(total)
	for m := 1; m < n; m <<= 1 {
		partner := me ^ m
		ownStart := (me &^ (m - 1)) * blk
		peerStart := (partner &^ (m - 1)) * blk
		nbytes := m * blk
		nchunks := (nbytes + collAMMax - 1) / collAMMax
		for ci := 0; ci < nchunks; ci++ {
			lo := ci * collAMMax
			hi := min(lo+collAMMax, nbytes)
			if err := t.sendData(partner, key+ci, recv[ownStart+lo:ownStart+hi]); err != nil {
				return err
			}
		}
		for ci := 0; ci < nchunks; ci++ {
			var got []byte
			if err := t.im.pollUntil(func() bool {
				got = t.coll.take(key+ci, partner)
				return got != nil
			}); err != nil {
				return err
			}
			lo := ci * collAMMax
			hi := min(lo+collAMMax, nbytes)
			if len(got) != hi-lo {
				return fmt.Errorf("core: Allgather chunk size mismatch from rank %d (%d vs %d)", partner, len(got), hi-lo)
			}
			copy(recv[peerStart+lo:peerStart+hi], got)
		}
		key += nchunks
	}
	return nil
}

// Alltoall exchanges equal-size blocks between all pairs: recv block s is
// member s's send block for this image. CAF-MPI maps it to MPI_ALLTOALL;
// the fallback is the CAF-GASNet construction from unscheduled one-sided
// puts plus AM signals, whose incast congestion and per-put overheads are
// what the paper's FFT analysis (Figure 8) attributes the gap to.
func (t *Team) Alltoall(send, recv []byte) error {
	defer t.im.tr.Span(trace.Alltoall)()
	n := t.Size()
	if len(send)%n != 0 {
		return fmt.Errorf("core: Alltoall buffer size %d not divisible by team size %d: %w", len(send), n, faults.ErrInvalid)
	}
	blk := len(send) / n
	if len(recv) < blk*n {
		return fmt.Errorf("core: Alltoall recv buffer too small (%d < %d): %w", len(recv), blk*n, faults.ErrInvalid)
	}
	round := t.im.san.CollEnter(t.id, n, true)
	defer t.im.san.CollExit(t.id, round, true)
	if err := t.im.sub.Alltoall(t.ref, send, recv); err != ErrUnsupported {
		return err
	}
	return t.genericAlltoall(send, recv, blk)
}

// DebugA2A enables phase timing printouts in genericAlltoall (diagnostics).
var DebugA2A bool

func (t *Team) genericAlltoall(send, recv []byte, blk int) error {
	n := t.Size()
	me := t.Rank()
	tA := t.im.p.Now()
	// Double-buffered scratch (alternating halves by operation parity)
	// instead of per-peer credits: an image can run at most one all-to-all
	// ahead of a peer (its recv phase needs every peer's signal), so two
	// buffers suffice and the credit AMs are saved — the construction is
	// puts + one signal per peer, as the CAF 2.0 runtime's was.
	if err := t.ensureScratch(2 * blk); err != nil {
		return err
	}
	key := t.coll.nextKey()
	par := (key / keysPerOp) % 2
	off := me*t.coll.slotBytes + par*blk
	// Naive unscheduled exchange: every image writes to destination 0,
	// then 1, ... so each destination's NIC absorbs a synchronized burst
	// (no pairwise schedule — the hand-crafted CAF 2.0 construction).
	for dst := 0; dst < n; dst++ {
		if dst == me {
			copy(recv[me*blk:(me+1)*blk], send[me*blk:(me+1)*blk])
			continue
		}
		if err := t.im.sub.PutDeferred(t.coll.scratch, dst, off, send[dst*blk:(dst+1)*blk]); err != nil {
			return err
		}
	}
	tB := t.im.p.Now()
	// Complete all puts remotely, then tell every peer its block landed.
	if err := t.im.releaseFence(); err != nil {
		return err
	}
	tC := t.im.p.Now()
	for dst := 0; dst < n; dst++ {
		if dst == me {
			continue
		}
		if err := t.sendSignal(dst, key); err != nil {
			return err
		}
	}
	tD := t.im.p.Now()
	local := t.coll.scratch.Local()
	for src := 0; src < n; src++ {
		if src == me {
			continue
		}
		if err := t.im.pollUntil(func() bool { return t.coll.consumeSig(key, src) }); err != nil {
			return err
		}
		slot := local[src*t.coll.slotBytes+par*blk:]
		copy(recv[src*blk:(src+1)*blk], slot[:blk])
	}
	if DebugA2A && me == 5 {
		tE := t.im.p.Now()
		fmt.Printf("a2a: puts=%dns fence=%dns sig=%dns recv=%dns\n", tB-tA, tC-tB, tD-tC, tE-tD)
	}
	return nil
}

// AllreduceAsync is the asynchronous team reduction (§2.1,
// team_reduce_async): it returns immediately and posts dataDone (result
// readable in out) and opDone (input buffer reusable) when the reduction
// completes. Under CAF-MPI it maps to MPI_Iallreduce and genuinely overlaps
// with computation; substrates without nonblocking collectives complete
// the operation at issue and post the events immediately.
func (t *Team) AllreduceAsync(in, out []byte, k elem.Kind, op elem.Op, dataDone, opDone *EventRef) error {
	if len(out) < len(in) {
		return fmt.Errorf("core: AllreduceAsync out buffer too small (%d < %d): %w", len(out), len(in), faults.ErrInvalid)
	}
	comp, err := t.im.sub.AllreduceAsync(t.ref, in, out, k, op)
	if err == nil {
		t.im.notePending(comp, dataDone, opDone)
		return nil
	}
	if err != ErrUnsupported {
		return err
	}
	if err := t.Allreduce(in, out, k, op); err != nil {
		return err
	}
	if dataDone != nil {
		t.im.postEvent(*dataDone, 1)
	}
	if opDone != nil {
		t.im.postEvent(*opDone, 1)
	}
	return nil
}

// BcastAsync is the asynchronous broadcast (team_broadcast_async); done
// posts when buf holds the root's data (and, at the root, when buf is
// reusable).
func (t *Team) BcastAsync(buf []byte, root int, done *EventRef) error {
	if err := t.checkRank(root, "BcastAsync root"); err != nil {
		return err
	}
	comp, err := t.im.sub.BcastAsync(t.ref, buf, root)
	if err == nil {
		t.im.notePending(comp, done, nil)
		return nil
	}
	if err != ErrUnsupported {
		return err
	}
	if err := t.Bcast(buf, root); err != nil {
		return err
	}
	if done != nil {
		t.im.postEvent(*done, 1)
	}
	return nil
}

func (t *Team) checkRank(r int, what string) error {
	if r < 0 || r >= t.Size() {
		return fmt.Errorf("core: %s rank %d out of range [0,%d): %w", what, r, t.Size(), faults.ErrInvalid)
	}
	return nil
}
