// Package core implements the Coarray Fortran 2.0 runtime system — the
// paper's primary contribution — over a pluggable communication substrate.
// Two substrates exist: internal/rtmpi binds the runtime to MPI-3 (the
// paper's CAF-MPI) and internal/rtgasnet binds it to GASNet (the original
// CAF-GASNet baseline).
//
// The runtime provides the CAF 2.0 feature set the paper describes:
// process images and teams, coarrays with one-sided read/write, first-class
// events (init/notify/wait/trywait), asynchronous copies with predicate/
// source/destination events (§3.3), cofence and finish (§3.5), function
// shipping, and team collectives.
package core

import (
	"errors"

	"cafmpi/internal/elem"
	"cafmpi/internal/fabric"
	"cafmpi/internal/sim"
)

// ErrUnsupported is returned by substrates for collective operations they
// do not provide natively; the runtime then falls back to its hand-crafted
// implementations (as the original CAF 2.0 does over GASNet, which has no
// collectives).
var ErrUnsupported = errors.New("core: operation not supported by substrate")

// TeamRef is a substrate's handle for a group of images (an MPI
// communicator, or a plain rank list for GASNet).
type TeamRef interface {
	Rank() int           // this image's rank within the team
	Size() int           // number of images in the team
	WorldRank(r int) int // translate a team rank to a world rank
}

// Segment is a substrate's handle for a slab of remotely accessible memory
// allocated collectively over a team (an MPI window or a region of the
// GASNet segment).
type Segment interface {
	Local() []byte // this image's portion
	Bytes() int
}

// Completion is the substrate handle for an asynchronous operation.
type Completion interface {
	// Test reports whether the operation has completed, without blocking.
	Test() bool
	// Wait blocks (making substrate progress) until completion.
	Wait()
}

// DeliverFunc is the runtime's active-message dispatcher. Substrates invoke
// it on the *target image's goroutine* whenever the target polls and an AM
// addressed to the runtime has arrived. args is scratch, valid only for the
// duration of the call (the dispatcher copies what it parks); ownership of
// payload transfers to the dispatcher, which may retain it.
type DeliverFunc func(src int, kind uint8, args []uint64, payload []byte)

// EventBackend is an optional substrate-native event transport. The paper's
// §3.4 weighs two designs for CAF events over MPI: one-sided
// MPI_FETCH_AND_OP notifies with MPI_COMPARE_AND_SWAP busy-waits, or
// two-sided MPI_ISEND/MPI_RECV; CAF-MPI shipped the second. A substrate
// returning a backend here implements the first, letting the runtime
// compare them (the ablation the paper leaves open).
type EventBackend interface {
	// Notify credits slot on teammate target. The caller has already run
	// the release fence.
	Notify(target, slot int) error
	// Wait consumes one credit from the local slot, blocking (and making
	// substrate progress) until one is available.
	Wait(slot int) error
	// TryWait consumes a credit if one is available.
	TryWait(slot int) (bool, error)
	// Post credits the local slot directly (self-notification).
	Post(slot int, n int64)
	Free() error
}

// Caps describes substrate capabilities that change how the runtime maps
// CAF operations (paper §3.3).
type Caps struct {
	// NativeCollectives: the substrate provides tuned collectives (MPI).
	// When false the runtime hand-crafts them from puts and AMs, as the
	// original CAF 2.0 runtime does over GASNet.
	NativeCollectives bool
	// PutWithRemoteEventViaAM: the substrate cannot notify a target on put
	// arrival, so a put that must post a destination event ships its data
	// inside an active message instead (MPI-3's missing put-with-
	// notification, §3.3 rule 4 / §5). When false, the runtime performs an
	// RDMA put, waits for remote completion, and sends a plain notify AM.
	PutWithRemoteEventViaAM bool
}

// Substrate is the communication layer beneath the CAF 2.0 runtime. All
// image-indexed arguments use *team ranks* of the passed TeamRef except
// AMSend, which addresses world ranks.
type Substrate interface {
	Name() string
	Proc() *sim.Proc
	Caps() Caps
	// Platform exposes the machine cost model (for compute-time charges).
	Platform() *fabric.Params

	// WorldTeam returns the team of all images (TEAM_WORLD).
	WorldTeam() TeamRef
	// SplitTeam partitions t (collective); color < 0 yields a nil team.
	// Substrates without a native group concept return ErrUnsupported and
	// the runtime computes the membership itself, then calls MakeTeam.
	SplitTeam(t TeamRef, color, key int) (TeamRef, error)
	// MakeTeam wraps an explicit world-rank list as a team handle (used by
	// the runtime's fallback split).
	MakeTeam(worldRanks []int, myRank int) (TeamRef, error)

	// AllocEvents collectively creates a substrate-native event transport
	// with n slots per image, or returns ErrUnsupported to let the runtime
	// run events over active messages (the design CAF-MPI shipped, §3.4).
	AllocEvents(t TeamRef, n int, id uint64) (EventBackend, error)

	// AllocSegment collectively allocates bytes of remotely accessible
	// memory on every image of t. id is a world-unique identifier already
	// agreed across the team (substrates may use it to key their remote-
	// memory registries; MPI windows ignore it).
	AllocSegment(t TeamRef, bytes int, id uint64) (Segment, error)
	FreeSegment(s Segment) error

	// Put writes data into target's portion of s at off and blocks until
	// the write is globally visible (blocking coarray write, §3.1).
	Put(s Segment, target, off int, data []byte) error
	// Get reads from target's portion of s at off and blocks until the
	// data is valid (blocking coarray read).
	Get(s Segment, target, off int, into []byte) error
	// PutDeferred/GetDeferred are implicitly synchronized operations: they
	// return immediately and complete at the next LocalFence (cofence) or
	// ReleaseFence. (§3.5: the runtime keeps arrays of request handles.)
	PutDeferred(s Segment, target, off int, data []byte) error
	GetDeferred(s Segment, target, off int, into []byte) error
	// PutAsyncLocal starts a put whose Completion signals *local*
	// completion (source buffer reusable; §3.3 rule 3 → MPI_RPUT).
	PutAsyncLocal(s Segment, target, off int, data []byte) (Completion, error)
	// GetAsync starts a get whose Completion signals both local and remote
	// completion (§3.3 rule 2 → MPI_RGET).
	GetAsync(s Segment, target, off int, into []byte) (Completion, error)

	// AMSend delivers a runtime active message to the world-rank target;
	// the target's DeliverFunc runs it at the target's next poll. args and
	// payload are consumed before AMSend returns (the AM layer buffers
	// both), so callers may reuse them immediately.
	AMSend(worldTarget int, kind uint8, args []uint64, payload []byte) error
	// Poll makes runtime progress: dispatches queued AMs.
	Poll()
	// PollUntil polls until cond holds, blocking between arrivals. It
	// returns early with a typed error when the world's failure latch
	// trips (fault-injected image crash or job cancellation); cond's
	// progress is then abandoned.
	PollUntil(cond func() bool) error

	// LocalFence completes all deferred operations locally (cofence).
	LocalFence() error
	// LocalFenceScoped completes only the deferred puts and/or gets
	// (cofence's optional argument, §3.5). Substrates tracking them
	// together may treat any true flag as a full fence.
	LocalFenceScoped(puts, gets bool) error
	// ReleaseFence completes all previously issued operations at their
	// targets (§3.4: event_notify's release barrier — MPI: WAITALL +
	// MPI_WIN_FLUSH_ALL on every touched window; GASNet: NBI sync).
	ReleaseFence() error

	// Nonblocking collectives for the CAF 2.0 asynchronous team
	// operations; substrates without them return ErrUnsupported and the
	// runtime completes the operation at issue instead (no overlap).
	AllreduceAsync(t TeamRef, in, out []byte, k elem.Kind, op elem.Op) (Completion, error)
	BcastAsync(t TeamRef, buf []byte, root int) (Completion, error)

	// Native collectives; return ErrUnsupported when Caps().
	// NativeCollectives is false.
	Barrier(t TeamRef) error
	Bcast(t TeamRef, buf []byte, root int) error
	Reduce(t TeamRef, in, out []byte, k elem.Kind, op elem.Op, root int) error
	Allreduce(t TeamRef, in, out []byte, k elem.Kind, op elem.Op) error
	Alltoall(t TeamRef, send, recv []byte) error
	Allgather(t TeamRef, send, recv []byte) error

	// MemoryFootprint reports the bytes of memory the substrate's runtime
	// holds on this image (Figure 1).
	MemoryFootprint() int64
}
