package core

import (
	"fmt"

	"cafmpi/internal/faults"
	"cafmpi/internal/trace"
)

// AsyncOpts carries the optional event arguments of an asynchronous copy
// (§2.1/§3.3): Pred gates the start of the operation, SrcDone posts when
// the source buffer is reusable, DstDone posts when the data is delivered
// at the destination.
type AsyncOpts struct {
	Pred    *EventRef
	SrcDone *EventRef
	DstDone *EventRef
}

// waitPred blocks on a predicate event, which must be owned by this image.
func (im *Image) waitPred(p *EventRef) error {
	if p == nil {
		return nil
	}
	if p.ownerWorld != im.ID() {
		return fmt.Errorf("core: predicate event must be local to the issuing image: %w", faults.ErrInvalid)
	}
	evs, ok := im.events[p.evsID]
	if !ok {
		return fmt.Errorf("core: predicate references unknown events object %d: %w", p.evsID, faults.ErrInvalid)
	}
	return evs.Wait(p.Slot)
}

// PutAsync is the asynchronous coarray write: A(off:...)[target] = data,
// with the §3.3 operation mapping:
//
//	rule 1: no events            -> deferred one-sided put (MPI_PUT)
//	rule 3: source event only    -> request-generating put (MPI_RPUT)
//	rule 4: destination event    -> data shipped inside an active message,
//	        the target copies it and posts the event (MPI cannot notify a
//	        target on put arrival); over GASNet the runtime instead puts,
//	        waits remote completion, and sends a plain notify AM.
func (ca *Coarray) PutAsync(target, off int, data []byte, opts AsyncOpts) error {
	if err := ca.check(target, off, len(data), "PutAsync"); err != nil {
		return err
	}
	if err := ca.im.waitPred(opts.Pred); err != nil {
		return err
	}
	defer ca.im.tr.Span(trace.CoarrayWrite)()
	im := ca.im
	worldTarget := ca.team.WorldRank(target)
	// Recorded at issue, before the injection publishes the release edge: in
	// the abstract model the data may land any time until the completion
	// event, so an unordered access at the target races even when this
	// implementation's AM path happens to resolve it deterministically.
	im.san.CheckRead(data, "PutAsync source")
	im.san.RemoteWrite(ca.id, worldTarget, off, len(data), "PutAsync")

	if opts.DstDone != nil {
		if im.sub.Caps().PutWithRemoteEventViaAM {
			args := im.amArgs[:5]
			args[0], args[1] = ca.id, uint64(off)
			args[2], args[3], args[4] = opts.DstDone.evsID, uint64(opts.DstDone.Slot), uint64(opts.DstDone.ownerWorld)
			if err := im.amSend(worldTarget, amCopyPut, args, data); err != nil {
				return err
			}
			// The AM layer buffers the payload at injection (§3.2), so the
			// source is immediately reusable.
			if opts.SrcDone != nil {
				im.postEvent(*opts.SrcDone, 1)
			}
			return nil
		}
		// RDMA put with remote completion, then notify.
		if err := im.sub.Put(ca.seg, target, off, data); err != nil {
			return err
		}
		im.postEvent(*opts.DstDone, 1)
		if opts.SrcDone != nil {
			im.postEvent(*opts.SrcDone, 1)
		}
		return nil
	}

	if opts.SrcDone != nil {
		comp, err := im.sub.PutAsyncLocal(ca.seg, target, off, data)
		if err != nil {
			return err
		}
		im.notePending(comp, opts.SrcDone)
		return nil
	}

	return im.sub.PutDeferred(ca.seg, target, off, data)
}

// GetAsync is the asynchronous coarray read: into = A(off:...)[target].
// With a completion event it maps to a request-generating get (MPI_RGET,
// §3.3 rule 2); without one it is implicitly synchronized by the next
// Cofence.
func (ca *Coarray) GetAsync(target, off int, into []byte, opts AsyncOpts) error {
	if err := ca.check(target, off, len(into), "GetAsync"); err != nil {
		return err
	}
	if err := ca.im.waitPred(opts.Pred); err != nil {
		return err
	}
	defer ca.im.tr.Span(trace.CoarrayRead)()
	im := ca.im
	im.san.RemoteRead(ca.id, ca.team.WorldRank(target), off, len(into), "GetAsync")
	done := opts.DstDone
	if done == nil {
		done = opts.SrcDone // a get's "source" is remote; accept either name
	}
	if done != nil {
		comp, err := im.sub.GetAsync(ca.seg, target, off, into)
		if err != nil {
			return err
		}
		im.notePending(comp, done)
		return nil
	}
	// No completion event: `into` is undefined until the next cofence.
	im.san.NoteDeferredGetPeer(into, ca.team.WorldRank(target), "GetAsync")
	return im.sub.GetDeferred(ca.seg, target, off, into)
}

// CopyAsync is the general asynchronous copy between coarray locations
// (copy_async, §2.1). Local-to-remote maps to PutAsync, remote-to-local to
// GetAsync, and remote-to-remote stages through a local buffer (get then
// put), with events threaded so the contract holds.
func (im *Image) CopyAsync(dst *Coarray, dstImage, dstOff int, src *Coarray, srcImage, srcOff, n int, opts AsyncOpts) error {
	switch {
	case src.team.WorldRank(srcImage) == im.ID():
		return dst.PutAsync(dstImage, dstOff, src.Local()[srcOff:srcOff+n], opts)
	case dst.team.WorldRank(dstImage) == im.ID():
		if err := im.waitPred(opts.Pred); err != nil {
			return err
		}
		if err := src.GetAsync(srcImage, srcOff, dst.Local()[dstOff:dstOff+n], AsyncOpts{DstDone: opts.DstDone}); err != nil {
			return err
		}
		if opts.SrcDone != nil {
			im.postEvent(*opts.SrcDone, 1)
		}
		return nil
	default:
		// Remote-to-remote: stage through the issuing image.
		if err := im.waitPred(opts.Pred); err != nil {
			return err
		}
		buf := make([]byte, n)
		im.san.RemoteRead(src.id, src.team.WorldRank(srcImage), srcOff, n, "CopyAsync stage")
		if err := im.sub.Get(src.seg, srcImage, srcOff, buf); err != nil {
			return err
		}
		if opts.SrcDone != nil {
			im.postEvent(*opts.SrcDone, 1)
		}
		return dst.PutAsync(dstImage, dstOff, buf, AsyncOpts{DstDone: opts.DstDone})
	}
}

// Cofence blocks until all implicitly synchronized operations issued before
// it are locally complete (§3.5: MPI_WAITALL on the runtime's arrays of
// request handles). It also acts as an ordering point: no deferred
// operation issued after the Cofence can be reordered before it.
func (im *Image) Cofence() error {
	defer im.tr.Span(trace.Other)()
	err := im.sub.LocalFence()
	im.san.FenceLocal()
	return err
}

// CofenceOpts selects which implicit operations a scoped cofence completes
// (the statement's optional argument, §3.5).
type CofenceOpts struct {
	Puts bool
	Gets bool
}

// CofenceScoped is Cofence restricted to the implicit puts and/or gets.
func (im *Image) CofenceScoped(opts CofenceOpts) error {
	defer im.tr.Span(trace.Other)()
	err := im.sub.LocalFenceScoped(opts.Puts, opts.Gets)
	if opts.Gets {
		im.san.FenceLocal()
	}
	return err
}
