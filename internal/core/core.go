package core

import (
	"context"
	"fmt"
	"sync/atomic"

	"cafmpi/internal/fabric"
	"cafmpi/internal/faults"
	"cafmpi/internal/obs"
	"cafmpi/internal/obs/flightrec"
	"cafmpi/internal/obs/wallprof"
	"cafmpi/internal/sanitizer"
	"cafmpi/internal/sim"
	"cafmpi/internal/trace"
)

// Runtime active-message kinds carried over Substrate.AMSend.
const (
	amEventNotify uint8 = iota + 1 // args: eventsID, slot, count
	amSpawn                        // args: funcID; payload: user argument bytes
	amCopyPut                      // args: coarrayID, off, eventsID, slot, eventOwnerWorld; payload: data
	amCollSignal                   // args: teamID, key, srcTeamRank
	amCollData                     // args: teamID, key, srcTeamRank; payload: data
)

// noEvent marks an absent event reference inside AM args.
const noEvent = ^uint64(0)

// SubstrateFactory builds an image's substrate. deliver must be wired as
// the substrate's AM dispatcher before the factory returns (AMs may arrive
// as soon as any other image finishes booting).
type SubstrateFactory func(p *sim.Proc, deliver DeliverFunc) (Substrate, error)

// Config configures the runtime for one job.
type Config struct {
	// Factory selects and constructs the substrate (CAF-MPI or CAF-GASNet;
	// see package caf for the wiring).
	Factory SubstrateFactory
	// Trace enables per-image category timing (Figures 4 and 8).
	Trace bool
	// Observe enables the obs subsystem: per-image event rings, counters,
	// and the communication matrix. Read the results after the run via
	// obs.Enabled(world).
	Observe bool
	// ObsRingCap overrides the per-image event ring capacity
	// (obs.DefaultRingCap when zero).
	ObsRingCap int
	// Sanitize enables the PGAS synchronization sanitizer: per-image vector
	// clocks merged at the runtime's sync points plus shadow access tracking
	// on coarray windows, reporting unordered conflicting accesses and RMA
	// ordering misuse. Clock-pure — virtual time is unaffected. Read the
	// findings after the run via sanitizer.Enabled(world).
	Sanitize bool
	// Faults installs a deterministic fault-injection plan on the fabric
	// (message drops with retry/backoff, duplicates, delays, image crashes
	// and stalls). Nil means no injection — the zero-cost default. Read the
	// injected-fault log after the run via faults.Enabled(world).Log().
	Faults *faults.Plan
	// Postmortem arms the flight recorder: when an image crashes or the
	// job's failure latch trips, a deterministic signature-stamped bundle
	// (recent events, counters, fault decisions) is written under this
	// directory. Implies Observe — the obs shards are the recorder's
	// black box.
	Postmortem string
	// WallProf enables the wall-clock profiling plane (internal/obs/
	// wallprof): sampled host-time accounting per component, pprof label
	// propagation, and the runtime/metrics host sampler. Clock-pure —
	// virtual time and all goldens are unaffected. Read the divergence
	// report after the run via wallprof.Enabled(world).Analyze.
	WallProf bool
}

// SpawnFunc is a shippable function (CAF 2.0 function shipping). It runs on
// the target image's goroutine with the target's Image and the argument
// bytes sent by the spawner.
type SpawnFunc func(im *Image, args []byte)

// Image is one CAF process image: the handle through which a program uses
// the entire CAF 2.0 API.
type Image struct {
	p   *sim.Proc
	sub Substrate
	tr  *trace.Tracer
	osh *obs.Shard       // nil when observability is off
	san *sanitizer.Image // nil when sanitizing is off (methods are nil-safe)
	flt *faults.State    // failure/cancellation latch (methods are nil-safe)

	world *Team
	ids   *atomic.Uint64 // world-shared id allocator (teams, coarrays, events)

	teams    map[uint64]*Team
	coarrays map[uint64]*Coarray
	events   map[uint64]*Events

	funcs     map[uint64]SpawnFunc
	shipped   int64 // spawns sent (monotone; §3.5 termination detection)
	completed int64 // shipped functions executed locally (monotone)

	// pending holds (completion, event) pairs from explicitly synchronized
	// async operations (§3.3 rules 2 and 3): when the completion tests
	// done, the event is posted. Drained during polls.
	pending []pendingEvent

	// orphanAMs buffers collective AMs naming a team this image has not
	// finished creating yet (a faster teammate can complete Split and start
	// team traffic while this image is still inside the split's allgather).
	// They replay when the team registers. orphanSpawns does the same for
	// spawns of functions whose local registration has not run yet.
	orphanAMs    map[uint64][]orphanAM
	orphanSpawns map[uint64][]orphanAM

	// amArgs is the argument scratch for outgoing runtime AMs: substrates
	// consume args before AMSend returns, so the hot notification paths
	// reuse one array instead of allocating a slice per message.
	amArgs [8]uint64

	// Event-wait staging: event_wait is the runtime's hottest blocking call,
	// and a fresh condition closure per call is measurable. evCond is built
	// once in Boot and reads the staged waitEvs/waitSlot; pollWrap likewise
	// wraps the staged pollCond with the pending-completion drain. Both
	// stagings save/restore around nesting (an AM handler may block again).
	waitEvs  *Events
	waitSlot int
	evCond   func() bool
	pollCond func() bool
	pollWrap func() bool
}

type orphanAM struct {
	src     int
	kind    uint8
	args    []uint64
	payload []byte
}

type pendingEvent struct {
	comp Completion
	evs  []EventRef
}

// notePending parks a completion whose events fire when it tests done.
func (im *Image) notePending(comp Completion, evs ...*EventRef) {
	pe := pendingEvent{comp: comp}
	for _, e := range evs {
		if e != nil {
			pe.evs = append(pe.evs, *e)
		}
	}
	im.pending = append(im.pending, pe)
}

// Boot initializes the CAF runtime on image p. Every image of the world
// must boot with an equivalent Config before any communication.
func Boot(p *sim.Proc, cfg Config) (*Image, error) {
	if cfg.Factory == nil {
		return nil, fmt.Errorf("core: Config.Factory is required")
	}
	im := &Image{
		p:        p,
		teams:    make(map[uint64]*Team),
		coarrays: make(map[uint64]*Coarray),
		events:   make(map[uint64]*Events),
		funcs:    make(map[uint64]SpawnFunc),
	}
	im.evCond = func() bool { return im.waitEvs.count[im.waitSlot] > 0 }
	im.pollWrap = func() bool {
		im.drainPending()
		return im.pollCond()
	}
	im.ids = p.World().Shared("core.ids", func() any {
		c := new(atomic.Uint64)
		c.Store(1)
		return c
	}).(*atomic.Uint64)
	if cfg.Trace {
		im.tr = trace.New(p)
	}
	if cfg.Observe || cfg.Postmortem != "" {
		// Must precede the Factory call: fabric/mpi/gasnet cache their shard
		// handles at attach time.
		obs.Enable(p.World(), cfg.ObsRingCap)
	}
	if cfg.Postmortem != "" {
		flightrec.Arm(p.World(), cfg.Postmortem)
	}
	if cfg.WallProf {
		// Must precede the Factory call for the same reason as obs.Enable;
		// LabelImage runs here, on the image's own goroutine, so the pprof
		// labels tag the right G.
		wallprof.Enable(p.World())
		wallprof.LabelImage(p)
	}
	im.osh = obs.For(p)
	// Like obs.Enable, this must precede the Factory call (the fabric caches
	// the fault state at attach). Idempotent: RunWorldContext already enabled
	// it with the same plan.
	im.flt = faults.Enable(p.World(), cfg.Faults)
	if cfg.Sanitize {
		sanitizer.Enable(p.World())
		im.san = sanitizer.For(p)
	}
	// TEAM_WORLD must be addressable by AMs before the substrate's first
	// poll: a faster image can finish booting and send world-team
	// collective AMs while this image is still inside the substrate's
	// startup barrier (which dispatches AMs).
	im.world = &Team{im: im, id: 0}
	im.world.initColl()
	im.teams[0] = im.world
	sub, err := cfg.Factory(p, im.deliver)
	if err != nil {
		return nil, err
	}
	im.sub = sub
	if im.tr != nil {
		if st, ok := sub.(interface{ SetTracer(*trace.Tracer) }); ok {
			st.SetTracer(im.tr)
		}
	}
	im.world.ref = sub.WorldTeam()
	im.world.buildIndex()
	return im, nil
}

// Run boots an n-image world and executes fn on every image.
func Run(n int, cfg Config, fn func(*Image) error) error {
	_, err := RunWorld(n, cfg, fn)
	return err
}

// RunWorld is Run returning the world as well, so callers can read post-run
// state — the obs registry, per-image clocks — after all images finish.
func RunWorld(n int, cfg Config, fn func(*Image) error) (*sim.World, error) {
	return RunWorldContext(context.Background(), n, cfg, fn)
}

// RunContext is Run with cancellation: when ctx is done, every image's
// blocked runtime call returns an error wrapping the context's cause, the
// images drain, and the call returns. The world's post-run state (obs,
// fault log) stays readable via RunWorldContext.
func RunContext(ctx context.Context, n int, cfg Config, fn func(*Image) error) error {
	_, err := RunWorldContext(ctx, n, cfg, fn)
	return err
}

// RunWorldContext boots an n-image world, executes fn on every image, and
// cancels the job cleanly when ctx is done: the cancellation trips the
// world's failure latch, which broadcast-wakes every parked endpoint
// waiter, so blocked collectives/event waits/finishes return typed errors
// instead of deadlocking, and all image goroutines join before return.
func RunWorldContext(ctx context.Context, n int, cfg Config, fn func(*Image) error) (*sim.World, error) {
	// Programmatic plans get the same scrutiny cafrun's -faults path does:
	// reject bad ranks/probabilities/kinds (and the divide-by-zero a
	// zero-delay reorder rule would hit) with the typed ErrInvalid up front.
	if err := cfg.Faults.Validate(n); err != nil {
		return nil, fmt.Errorf("core: fault plan: %w", err)
	}
	w := sim.NewWorld(n)
	st := faults.Enable(w, cfg.Faults)
	if ctx.Done() != nil {
		stop := context.AfterFunc(ctx, func() { st.Cancel(context.Cause(ctx)) })
		defer stop()
	}
	err := w.Run(func(p *sim.Proc) (err error) {
		defer func() {
			if r := recover(); r != nil {
				c, ok := r.(faults.Crashed)
				if !ok {
					panic(r)
				}
				// A fault-plan crash point: the image dies with a typed
				// error instead of a panic, so callers can errors.Is it.
				err = c.Into()
			}
			if err != nil {
				// An image exiting with an error is a failed image: latch
				// it so peers parked in collectives or event waits unblock
				// with ErrImageFailed instead of waiting forever for
				// messages the dead image will never send.
				st.MarkFailed(p.ID())
			}
		}()
		im, berr := Boot(p, cfg)
		if berr != nil {
			return berr
		}
		return fn(im)
	})
	// Crash-triggered dump: every failed chaos run leaves a debuggable
	// artifact. A dump failure never masks the run's own error.
	if rec := flightrec.Armed(w); rec != nil && (err != nil || st.Down()) {
		if _, derr := rec.Dump(w, err); derr != nil && err == nil {
			err = fmt.Errorf("core: postmortem dump: %w", derr)
		}
	}
	return w, err
}

// ID returns this image's world rank (its index in TEAM_WORLD).
func (im *Image) ID() int { return im.p.ID() }

// N returns the world size.
func (im *Image) N() int { return im.p.N() }

// World returns TEAM_WORLD.
func (im *Image) World() *Team { return im.world }

// Proc returns the underlying simulated process.
func (im *Image) Proc() *sim.Proc { return im.p }

// Substrate returns the communication substrate (for interop access, e.g.
// reaching the MPI environment from a hybrid MPI+CAF application).
func (im *Image) Substrate() Substrate { return im.sub }

// Tracer returns the image's tracer (nil unless Config.Trace was set).
func (im *Image) Tracer() *trace.Tracer { return im.tr }

// Now returns the image's virtual clock in seconds.
func (im *Image) Now() float64 { return float64(im.p.Now()) * 1e-9 }

// Platform returns the machine cost model in force.
func (im *Image) Platform() *fabric.Params { return im.sub.Platform() }

// Compute charges flops of computation against the platform's flop rate,
// attributing the time to the computation trace category.
func (im *Image) Compute(flops int64) {
	dt := im.sub.Platform().FlopTime(flops)
	im.p.Advance(dt)
	im.tr.Add(trace.Computation, dt)
}

// MemWork charges bytes of local memory traffic (packing, table updates) to
// the computation category.
func (im *Image) MemWork(bytes int64) {
	dt := im.sub.Platform().MemTime(bytes)
	im.p.Advance(dt)
	im.tr.Add(trace.Computation, dt)
}

// MemoryFootprint reports the substrate runtime's memory on this image.
func (im *Image) MemoryFootprint() int64 { return im.sub.MemoryFootprint() }

// Poll makes runtime progress: dispatches arrived AMs (running event posts
// and shipped functions) and fires events for completed async operations.
func (im *Image) Poll() {
	im.sub.Poll()
	im.drainPending()
}

// pollUntil blocks until cond holds, making full runtime progress. If the
// awaited condition can only be produced by a locally issued asynchronous
// operation (a pending completion), the wait completes that operation —
// advancing the virtual clock — instead of parking on the network. It
// returns early with a typed error when the job's failure latch trips (an
// image crashed, or the job was canceled) — ULFM-style: a wait whose
// producer may be dead unblocks with ErrImageFailed instead of hanging.
func (im *Image) pollUntil(cond func() bool) error {
	for {
		im.Poll()
		if cond() {
			return nil
		}
		if err := im.flt.ErrOp("wait"); err != nil {
			return err
		}
		if len(im.pending) > 0 {
			im.pending[0].comp.Wait()
			continue
		}
		prev := im.pollCond
		im.pollCond = cond
		err := im.sub.PollUntil(im.pollWrap)
		im.pollCond = prev
		return err
	}
}

func (im *Image) drainPending() {
	if len(im.pending) == 0 {
		return
	}
	kept := im.pending[:0]
	for _, pe := range im.pending {
		if pe.comp.Test() {
			for _, ev := range pe.evs {
				im.postEvent(ev, 1)
			}
		} else {
			kept = append(kept, pe)
		}
	}
	im.pending = kept
}

// newID draws a world-unique id, agreed across the members of team t by a
// broadcast from the team's rank 0. It is used for every collectively
// created object (teams, coarrays, events) so AMs can name them.
func (im *Image) newID(t *Team) (uint64, error) {
	var id uint64
	if t.Rank() == 0 {
		id = im.ids.Add(1)
	}
	buf := []uint64{id}
	if err := t.bcastU64(buf, 0); err != nil {
		return 0, err
	}
	return buf[0], nil
}

// deliver is the runtime's AM dispatcher, invoked by the substrate on this
// image's goroutine during polls. An AM's execution happens-after its
// injection, so delivery is a sanitizer acquire on the (src, this) channel;
// orphan replays go straight to dispatch — their clock edge was taken at
// arrival, and arrival happens-before the replay.
func (im *Image) deliver(src int, kind uint8, args []uint64, payload []byte) {
	im.san.AMAcquire(src)
	im.dispatch(src, kind, args, payload)
}

func (im *Image) dispatch(src int, kind uint8, args []uint64, payload []byte) {
	switch kind {
	case amEventNotify:
		evs, ok := im.events[args[0]]
		if !ok {
			panic(fmt.Sprintf("core: image %d received notify for unknown events object %d", im.ID(), args[0]))
		}
		// The post is this slot's release point: the owner's clock already
		// joined the notifier's via the AM edge above.
		im.san.EventPublish(args[0], im.ID(), int(args[1]))
		evs.post(src, int(args[1]), int64(args[2]))

	case amSpawn:
		fn, ok := im.funcs[args[0]]
		if !ok {
			// The spawner registered (and shipped) before this image's
			// symmetric registration ran: park the spawn for replay. The
			// shipped/completed imbalance keeps any enclosing finish alive
			// until the replay executes.
			if im.orphanSpawns == nil {
				im.orphanSpawns = make(map[uint64][]orphanAM)
			}
			im.orphanSpawns[args[0]] = append(im.orphanSpawns[args[0]],
				orphanAM{src: src, kind: kind, args: append([]uint64(nil), args...), payload: append([]byte(nil), payload...)})
			return
		}
		fn(im, payload)
		im.completed++

	case amCopyPut:
		co, ok := im.coarrays[args[0]]
		if !ok {
			panic(fmt.Sprintf("core: image %d received copy-put for unknown coarray %d", im.ID(), args[0]))
		}
		off := int(args[1])
		// The copy executes on the owner's goroutine: record it as the
		// owner's write, clock already past the sender's injection edge.
		im.san.LocalAccess(args[0], off, len(payload), true, fmt.Sprintf("copy-put from image %d", src))
		copy(co.Local()[off:off+len(payload)], payload)
		if args[2] != noEvent {
			ev := EventRef{evsID: args[2], Slot: int(args[3]), ownerWorld: int(args[4])}
			im.postEvent(ev, 1)
		}

	case amCollSignal, amCollData:
		t, ok := im.teams[args[0]]
		if !ok {
			// Team still being created locally: park the AM for replay.
			if im.orphanAMs == nil {
				im.orphanAMs = make(map[uint64][]orphanAM)
			}
			im.orphanAMs[args[0]] = append(im.orphanAMs[args[0]],
				orphanAM{src: src, kind: kind, args: append([]uint64(nil), args...), payload: append([]byte(nil), payload...)})
			return
		}
		key := int(int64(int32(uint32(args[1])))) // sign-preserving (creditKey)
		if kind == amCollSignal {
			t.coll.signal(key, int(args[2]))
		} else {
			t.coll.deposit(key, int(args[2]), payload)
		}

	default:
		panic(fmt.Sprintf("core: image %d received AM of unknown kind %d from %d", im.ID(), kind, src))
	}
}

// registerTeam publishes a newly created team and replays any collective
// AMs that arrived for it while it was still being created.
func (im *Image) registerTeam(t *Team) {
	im.teams[t.id] = t
	if q := im.orphanAMs[t.id]; q != nil {
		delete(im.orphanAMs, t.id)
		for _, o := range q {
			im.dispatch(o.src, o.kind, o.args, o.payload)
		}
	}
}

// amSend injects a runtime AM, publishing the sanitizer release edge the
// delivery on dst will acquire. All runtime AM injection goes through here.
func (im *Image) amSend(dst int, kind uint8, args []uint64, payload []byte) error {
	im.san.AMPublish(dst)
	return im.sub.AMSend(dst, kind, args, payload)
}

// releaseFence completes every previously issued operation at its target.
// Locally it also completes implicitly synchronized gets, so pending
// get-destination buffers become defined.
func (im *Image) releaseFence() error {
	err := im.sub.ReleaseFence()
	im.san.FenceLocal()
	return err
}

// postEvent posts count to an event reference, locally when this image owns
// it, otherwise via a notify AM (without a release fence: the fence, when
// required, is the responsibility of the operation that initiated this
// post).
func (im *Image) postEvent(ev EventRef, count int64) {
	if ev.ownerWorld == im.ID() {
		evs, ok := im.events[ev.evsID]
		if !ok {
			panic(fmt.Sprintf("core: posting to unknown events object %d", ev.evsID))
		}
		im.san.EventPublish(ev.evsID, im.ID(), ev.Slot)
		evs.post(im.ID(), ev.Slot, count)
		return
	}
	im.amArgs[0], im.amArgs[1], im.amArgs[2] = ev.evsID, uint64(ev.Slot), uint64(count)
	if err := im.amSend(ev.ownerWorld, amEventNotify, im.amArgs[:3], nil); err != nil {
		// Wrapped, not stringified: the panic value unwraps through
		// sim.PanicError so typed causes (ErrImageFailed, ...) stay matchable.
		panic(fmt.Errorf("core: image %d event post AM failed: %w", im.ID(), err))
	}
}
