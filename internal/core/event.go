package core

import (
	"fmt"

	"cafmpi/internal/faults"
	"cafmpi/internal/obs"
	"cafmpi/internal/trace"
)

// Events is a set of first-class CAF 2.0 events allocated as a coarray:
// every team member owns `n` counting-semaphore slots that any member can
// notify (§2.1). Construction is the event_init operation.
type Events struct {
	im    *Image
	team  *Team
	id    uint64
	count []int64 // local slots; touched only on the owner's goroutine

	// lastSrc remembers, per slot, the world rank whose post most recently
	// credited it (-1 when never posted): the peer a subsequent Wait blames.
	// lastPostT is the local virtual time of that post, so Wait's fallback
	// edge covers only the tail after the post landed — the blocking span
	// before it belongs to the finer fabric delivery edges recorded during
	// the poll, which carry the cross-image jump.
	lastSrc   []int32
	lastPostT []int64

	// backend, when non-nil, is a substrate-native transport (the §3.4
	// FETCH_AND_OP/COMPARE_AND_SWAP design); otherwise events ride the
	// runtime's AM path (the shipped ISEND/RECV design).
	backend EventBackend
}

// EventRef names one event slot on one image; it is what asynchronous
// operations carry so the runtime can post completions (§3.3).
type EventRef struct {
	evsID      uint64
	Slot       int
	ownerWorld int
}

// NewEvents collectively allocates an event coarray with n slots per image.
func (im *Image) NewEvents(t *Team, n int) (*Events, error) {
	if n <= 0 {
		return nil, fmt.Errorf("core: event count must be positive, got %d: %w", n, faults.ErrInvalid)
	}
	id, err := im.newID(t)
	if err != nil {
		return nil, err
	}
	e := &Events{im: im, team: t, id: id, count: make([]int64, n),
		lastSrc: make([]int32, n), lastPostT: make([]int64, n)}
	for i := range e.lastSrc {
		e.lastSrc[i] = -1
	}
	if be, err := im.sub.AllocEvents(t.ref, n, id); err == nil {
		e.backend = be
	} else if err != ErrUnsupported {
		return nil, err
	}
	im.events[id] = e
	if err := t.Barrier(); err != nil {
		return nil, err
	}
	return e, nil
}

// Slots returns the number of event slots per image.
func (e *Events) Slots() int { return len(e.count) }

// Ref returns a reference to this image's own slot (for passing to
// asynchronous operations as a completion event).
func (e *Events) Ref(slot int) EventRef {
	return EventRef{evsID: e.id, Slot: slot, ownerWorld: e.im.ID()}
}

// RefOn returns a reference to teammate target's slot.
func (e *Events) RefOn(target, slot int) EventRef {
	return EventRef{evsID: e.id, Slot: slot, ownerWorld: e.team.WorldRank(target)}
}

func (e *Events) checkSlot(slot int, what string) error {
	if slot < 0 || slot >= len(e.count) {
		return fmt.Errorf("core: %s slot %d out of range [0,%d): %w", what, slot, len(e.count), faults.ErrInvalid)
	}
	return nil
}

// post credits a slot (runs on the owner's goroutine, from deliver). src is
// the world rank whose notify produced the credit.
func (e *Events) post(src, slot int, n int64) {
	if e.backend != nil {
		e.backend.Post(slot, n)
		return
	}
	e.count[slot] += n
	e.lastSrc[slot] = int32(src)
	if e.im != nil {
		e.lastPostT[slot] = e.im.p.Now()
	}
}

// Notify posts the event slot on teammate target. Per §3.4 the notifying
// image first completes every previously issued operation at its target —
// the "release barrier": under CAF-MPI this is MPI_WAITALL on outstanding
// sends plus MPI_WIN_FLUSH_ALL on every touched window (whose MPICH
// implementation scans all ranks — the Figure 4 bottleneck); under
// CAF-GASNet it is an O(1) NBI sync. The notification itself is a
// non-blocking short AM to avoid notify/wait deadlock cycles.
func (e *Events) Notify(target, slot int) error {
	if err := e.checkSlot(slot, "Notify"); err != nil {
		return err
	}
	if err := e.team.checkRank(target, "Notify"); err != nil {
		return err
	}
	defer e.im.tr.Span(trace.EventNotify)()
	t0 := e.im.p.Now()
	if err := e.im.releaseFence(); err != nil {
		return err
	}
	world := e.team.WorldRank(target)
	if e.backend != nil {
		// Substrate-native events bypass the AM path: the release edge is
		// published here, directly against the target's slot.
		e.im.san.EventPublish(e.id, world, slot)
		return e.backend.Notify(target, slot)
	}
	if world == e.im.ID() {
		e.im.san.EventPublish(e.id, world, slot)
		e.post(world, slot, 1)
		e.im.osh.Record(obs.LayerRuntime, obs.OpEventNotify, world, 0, slot, t0, e.im.p.Now())
		return nil
	}
	im := e.im
	im.amArgs[0], im.amArgs[1], im.amArgs[2] = e.id, uint64(slot), 1
	err := im.amSend(world, amEventNotify, im.amArgs[:3], nil)
	// Event only — the release fence and AM injection record their own
	// happens-before edges, which must not be shadowed by a coarser one.
	im.osh.Record(obs.LayerRuntime, obs.OpEventNotify, world, 0, slot, t0, im.p.Now())
	return err
}

// Wait blocks until this image's slot is posted, then consumes one post.
// The blocking poll drives runtime progress (AM handlers, async completion
// events), mirroring §3.4's blocking network poll.
func (e *Events) Wait(slot int) error {
	if err := e.checkSlot(slot, "Wait"); err != nil {
		return err
	}
	defer e.im.tr.Span(trace.EventWait)()
	if e.backend != nil {
		if err := e.backend.Wait(slot); err != nil {
			return err
		}
		e.im.san.EventAcquire(e.id, e.im.ID(), slot)
		return nil
	}
	im := e.im
	t0 := im.p.Now()
	prevEvs, prevSlot := im.waitEvs, im.waitSlot
	im.waitEvs, im.waitSlot = e, slot
	err := im.pollUntil(im.evCond)
	im.waitEvs, im.waitSlot = prevEvs, prevSlot
	if err != nil {
		return err
	}
	e.count[slot]--
	im.san.EventAcquire(e.id, im.ID(), slot)
	if im.osh != nil {
		end := im.p.Now()
		peer := int(e.lastSrc[slot])
		im.osh.Record(obs.LayerRuntime, obs.OpEventWait, peer, 0, slot, t0, end)
		// Fallback edge covering only the tail after the satisfying post
		// landed: the blocking span before it belongs to the fabric delivery
		// edges recorded during the poll, which carry the cross-image jump
		// back to the notifier. Covering the whole span here would shadow
		// them (the walker skips edges inside a consumed interval).
		start := t0
		if pt := e.lastPostT[slot]; pt > start {
			start = pt
		}
		if end > start {
			ed := obs.Edge{Layer: obs.LayerRuntime, Op: obs.OpEventWait,
				Peer: e.lastSrc[slot], Start: start, End: end}
			ed.AddComp(obs.CompEventWait, end-start)
			im.osh.RecordEdge(ed)
		}
	}
	return nil
}

// TryWait consumes one post if available, without blocking (event_trywait).
func (e *Events) TryWait(slot int) (bool, error) {
	if err := e.checkSlot(slot, "TryWait"); err != nil {
		return false, err
	}
	if e.backend != nil {
		ok, err := e.backend.TryWait(slot)
		if ok {
			e.im.san.EventAcquire(e.id, e.im.ID(), slot)
		}
		return ok, err
	}
	e.im.Poll()
	if e.count[slot] > 0 {
		e.count[slot]--
		e.im.san.EventAcquire(e.id, e.im.ID(), slot)
		return true, nil
	}
	return false, nil
}

// Free releases the event coarray collectively.
func (e *Events) Free() error {
	if err := e.team.Barrier(); err != nil {
		return err
	}
	if e.backend != nil {
		if err := e.backend.Free(); err != nil {
			return err
		}
	}
	delete(e.im.events, e.id)
	return nil
}

// SyncImages performs pairwise image synchronization with each teammate in
// list (Fortran 2008's SYNC IMAGES): execution continues only once every
// listed image has also reached a matching SyncImages naming this image.
// Unlike a barrier it orders only the named pairs. The runtime reserves an
// internal event set per team for the handshakes.
func (t *Team) SyncImages(list []int) error {
	evs, err := t.syncEvents()
	if err != nil {
		return err
	}
	for _, target := range list {
		if err := t.checkRank(target, "SyncImages"); err != nil {
			return err
		}
		if target == t.Rank() {
			continue
		}
		if err := evs.Notify(target, 0); err != nil {
			return err
		}
	}
	for _, target := range list {
		if target == t.Rank() {
			continue
		}
		if err := evs.Wait(0); err != nil {
			return err
		}
	}
	return nil
}

// syncEvents lazily allocates the team's internal SYNC IMAGES event set.
// The allocation is collective, so the first SyncImages on a team must be
// reached by every member (as the first use of any collective resource
// must); subsequent calls synchronize only the named pairs.
func (t *Team) syncEvents() (*Events, error) {
	if t.syncEvs != nil {
		return t.syncEvs, nil
	}
	evs, err := t.im.NewEvents(t, 1)
	if err != nil {
		return nil, err
	}
	t.syncEvs = evs
	return evs, nil
}
