package core

import (
	"fmt"

	"cafmpi/internal/faults"
	"cafmpi/internal/trace"
)

// Coarray is a symmetric allocation over a team: every member holds `bytes`
// of remotely accessible memory, addressed by (team rank, byte offset).
// Remote access maps to one-sided substrate operations (MPI_PUT/MPI_GET on
// a lock_all'd window for CAF-MPI, §3.1).
type Coarray struct {
	im    *Image
	team  *Team
	id    uint64
	seg   Segment
	bytes int
	freed bool
}

// AllocCoarray collectively allocates a coarray of `bytes` bytes per image
// over team t.
func (im *Image) AllocCoarray(t *Team, bytes int) (*Coarray, error) {
	if bytes < 0 {
		return nil, fmt.Errorf("core: negative coarray size %d: %w", bytes, faults.ErrInvalid)
	}
	id, err := im.newID(t)
	if err != nil {
		return nil, err
	}
	seg, err := im.sub.AllocSegment(t.ref, bytes, id)
	if err != nil {
		return nil, err
	}
	ca := &Coarray{im: im, team: t, id: id, seg: seg, bytes: bytes}
	im.coarrays[id] = ca
	// All members must have registered before any image references the
	// coarray remotely (including by AM-mediated copy-puts naming its id).
	if err := t.Barrier(); err != nil {
		return nil, err
	}
	return ca, nil
}

// Team returns the team the coarray is allocated over.
func (ca *Coarray) Team() *Team { return ca.team }

// Bytes returns the per-image size.
func (ca *Coarray) Bytes() int { return ca.bytes }

// Local returns this image's portion. Accesses through the returned slice
// are invisible to the sanitizer; code that wants local accesses checked
// for races against remote Puts/Gets should use ReadLocal/WriteLocal.
func (ca *Coarray) Local() []byte { return ca.seg.Local() }

// ReadLocal returns [off, off+n) of this image's portion for reading,
// recording the access with the sanitizer when enabled.
func (ca *Coarray) ReadLocal(off, n int) []byte {
	buf := ca.seg.Local()[off : off+n]
	ca.im.san.LocalAccess(ca.id, off, n, false, "local read")
	ca.im.san.CheckRead(buf, "local read")
	return buf
}

// WriteLocal returns [off, off+n) of this image's portion for writing,
// recording the access with the sanitizer when enabled.
func (ca *Coarray) WriteLocal(off, n int) []byte {
	ca.im.san.LocalAccess(ca.id, off, n, true, "local write")
	return ca.seg.Local()[off : off+n]
}

// Free releases the coarray collectively.
func (ca *Coarray) Free() error {
	if ca.freed {
		return fmt.Errorf("core: coarray already freed")
	}
	if err := ca.team.Barrier(); err != nil {
		return err
	}
	ca.freed = true
	delete(ca.im.coarrays, ca.id)
	return ca.im.sub.FreeSegment(ca.seg)
}

func (ca *Coarray) check(target, off, n int, what string) error {
	if ca.freed {
		return fmt.Errorf("core: %s on freed coarray", what)
	}
	if target < 0 || target >= ca.team.Size() {
		return fmt.Errorf("core: %s target image %d out of range [0,%d): %w", what, target, ca.team.Size(), faults.ErrInvalid)
	}
	if off < 0 || off+n > ca.bytes {
		return fmt.Errorf("core: %s range [%d,%d) outside coarray of %d bytes: %w", what, off, off+n, ca.bytes, faults.ErrInvalid)
	}
	return nil
}

// Put performs a blocking coarray write: A(off:...)[target] = data. The
// write is globally visible when Put returns (§3.1: MPI_PUT +
// MPI_WIN_FLUSH under CAF-MPI).
func (ca *Coarray) Put(target, off int, data []byte) error {
	if err := ca.check(target, off, len(data), "Put"); err != nil {
		return err
	}
	defer ca.im.tr.Span(trace.CoarrayWrite)()
	ca.im.san.CheckRead(data, "Put source")
	ca.im.san.RemoteWrite(ca.id, ca.team.WorldRank(target), off, len(data), "Put")
	return ca.im.sub.Put(ca.seg, target, off, data)
}

// Get performs a blocking coarray read: into = A(off:...)[target].
func (ca *Coarray) Get(target, off int, into []byte) error {
	if err := ca.check(target, off, len(into), "Get"); err != nil {
		return err
	}
	defer ca.im.tr.Span(trace.CoarrayRead)()
	ca.im.san.RemoteRead(ca.id, ca.team.WorldRank(target), off, len(into), "Get")
	return ca.im.sub.Get(ca.seg, target, off, into)
}

// PutDeferred starts an implicitly synchronized write; it completes locally
// at the next Cofence and globally at the next release point (event notify,
// finish).
func (ca *Coarray) PutDeferred(target, off int, data []byte) error {
	if err := ca.check(target, off, len(data), "PutDeferred"); err != nil {
		return err
	}
	defer ca.im.tr.Span(trace.CoarrayWrite)()
	ca.im.san.CheckRead(data, "PutDeferred source")
	ca.im.san.RemoteWrite(ca.id, ca.team.WorldRank(target), off, len(data), "PutDeferred")
	return ca.im.sub.PutDeferred(ca.seg, target, off, data)
}

// GetDeferred starts an implicitly synchronized read; `into` is readable
// after the next Cofence.
func (ca *Coarray) GetDeferred(target, off int, into []byte) error {
	if err := ca.check(target, off, len(into), "GetDeferred"); err != nil {
		return err
	}
	defer ca.im.tr.Span(trace.CoarrayRead)()
	ca.im.san.RemoteRead(ca.id, ca.team.WorldRank(target), off, len(into), "GetDeferred")
	ca.im.san.NoteDeferredGetPeer(into, ca.team.WorldRank(target), "GetDeferred")
	return ca.im.sub.GetDeferred(ca.seg, target, off, into)
}
