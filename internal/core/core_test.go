package core

import (
	"testing"
)

// White-box tests of the runtime's internal bookkeeping. The end-to-end
// behaviour is exercised through package caf; these pin down the invariants
// of the pieces that subtle ordering bugs would hit first.

func TestCollStateSignalsAndData(t *testing.T) {
	c := &collState{
		sig:     make(map[sigKey]int64),
		data:    make(map[sigKey][]byte),
		credits: make(map[int]int64),
	}
	if c.consumeSig(3, 1) {
		t.Error("consumed a signal that never arrived")
	}
	c.signal(3, 1)
	c.signal(3, 1)
	if !c.consumeSig(3, 1) || !c.consumeSig(3, 1) {
		t.Error("signals not counted")
	}
	if c.consumeSig(3, 1) {
		t.Error("signal over-consumed")
	}
	if len(c.sig) != 0 {
		t.Error("signal map not cleaned")
	}

	c.deposit(7, 2, []byte("abc"))
	if got := c.take(7, 1); got != nil {
		t.Error("took data from wrong source")
	}
	if got := string(c.take(7, 2)); got != "abc" {
		t.Errorf("took %q", got)
	}
	if c.take(7, 2) != nil {
		t.Error("data not removed after take")
	}
}

func TestCollStateCredits(t *testing.T) {
	c := &collState{
		sig:     make(map[sigKey]int64),
		data:    make(map[sigKey][]byte),
		credits: make(map[int]int64),
	}
	// Every peer starts with one implicit credit.
	if !c.takeCredit(4) {
		t.Fatal("initial credit missing")
	}
	if c.takeCredit(4) {
		t.Fatal("credit over-granted")
	}
	// A credit signal restores it.
	c.signal(creditKey, 4)
	if !c.takeCredit(4) {
		t.Fatal("returned credit not usable")
	}
	// Credits are per-peer.
	if !c.takeCredit(9) {
		t.Fatal("peer 9's initial credit missing")
	}
}

func TestCollStateKeyWindows(t *testing.T) {
	c := &collState{sig: make(map[sigKey]int64), data: make(map[sigKey][]byte), credits: make(map[int]int64)}
	k1 := c.nextKey()
	k2 := c.nextKey()
	if k2-k1 != keysPerOp {
		t.Errorf("key windows overlap: %d then %d", k1, k2)
	}
	// Signals in different windows are independent.
	c.signal(k1, 0)
	if c.consumeSig(k2, 0) {
		t.Error("cross-window signal consumption")
	}
}

func TestOrphanAMBuffering(t *testing.T) {
	// Team AMs arriving before the team registers must replay at
	// registration, in order.
	im := &Image{
		teams:    make(map[uint64]*Team),
		coarrays: make(map[uint64]*Coarray),
		events:   make(map[uint64]*Events),
		funcs:    make(map[uint64]SpawnFunc),
	}
	im.deliver(3, amCollSignal, []uint64{42, 7, 1}, nil)
	im.deliver(3, amCollData, []uint64{42, 8, 1}, []byte("x"))
	if len(im.orphanAMs[42]) != 2 {
		t.Fatalf("buffered %d orphans, want 2", len(im.orphanAMs[42]))
	}
	nt := &Team{im: im, id: 42}
	nt.initColl()
	im.registerTeam(nt)
	if len(im.orphanAMs) != 0 {
		t.Error("orphans not drained at registration")
	}
	if !nt.coll.consumeSig(7, 1) {
		t.Error("replayed signal missing")
	}
	if string(nt.coll.take(8, 1)) != "x" {
		t.Error("replayed data missing")
	}
}

func TestOrphanSpawnBuffering(t *testing.T) {
	im := &Image{
		teams:    make(map[uint64]*Team),
		coarrays: make(map[uint64]*Coarray),
		events:   make(map[uint64]*Events),
		funcs:    make(map[uint64]SpawnFunc),
	}
	im.deliver(1, amSpawn, []uint64{9}, []byte{5})
	if im.completed != 0 {
		t.Fatal("unregistered spawn executed")
	}
	var got byte
	if err := im.RegisterFunc(9, func(_ *Image, args []byte) { got = args[0] }); err != nil {
		t.Fatal(err)
	}
	if got != 5 || im.completed != 1 {
		t.Errorf("orphan spawn not replayed (got=%d completed=%d)", got, im.completed)
	}
}

func TestEventRefOwnership(t *testing.T) {
	e := &Events{id: 11, count: make([]int64, 3), lastSrc: make([]int32, 3)}
	e.post(0, 1, 2)
	if e.count[1] != 2 {
		t.Error("post miscounted")
	}
	if e.Slots() != 3 {
		t.Errorf("Slots() = %d", e.Slots())
	}
	if err := e.checkSlot(3, "x"); err == nil {
		t.Error("slot bound unchecked")
	}
}
