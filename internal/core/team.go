package core

import (
	"fmt"
	"sort"

	"cafmpi/internal/elem"
)

// Team is a first-class group of images (CAF 2.0 teams, §2.1): a domain for
// coarray allocation, a rank namespace, and an isolated collective scope.
type Team struct {
	im  *Image
	ref TeamRef
	id  uint64

	worldToTeam map[int]int
	coll        collState
	syncEvs     *Events // lazy SYNC IMAGES handshake events
}

// Rank returns this image's rank within the team.
func (t *Team) Rank() int { return t.ref.Rank() }

// Size returns the number of images in the team.
func (t *Team) Size() int { return t.ref.Size() }

// WorldRank translates a team rank to a world rank.
func (t *Team) WorldRank(r int) int { return t.ref.WorldRank(r) }

// Image returns the owning image handle.
func (t *Team) Image() *Image { return t.im }

// initColl prepares the collective inbox. It must run before any AM naming
// this team can be dispatched (i.e. before the substrate's first poll).
func (t *Team) initColl() {
	t.coll.t = t
	t.coll.sig = make(map[sigKey]int64)
	t.coll.data = make(map[sigKey][]byte)
	t.coll.credits = make(map[int]int64)
}

func (t *Team) buildIndex() {
	t.worldToTeam = make(map[int]int, t.Size())
	for r := 0; r < t.Size(); r++ {
		t.worldToTeam[t.WorldRank(r)] = r
	}
	if t.coll.sig == nil {
		t.initColl()
	}
}

// TeamRankOfWorld translates a world rank into this team (-1 if absent).
func (t *Team) TeamRankOfWorld(w int) int {
	r, ok := t.worldToTeam[w]
	if !ok {
		return -1
	}
	return r
}

// Split partitions the team by color, ordering each new team by (key, old
// rank) — the CAF 2.0 team_split operation. Images passing a negative color
// receive a nil team. Split is collective over t.
func (t *Team) Split(color, key int) (*Team, error) {
	id, err := t.im.newID(t)
	if err != nil {
		return nil, err
	}
	ref, err := t.im.sub.SplitTeam(t.ref, color, key)
	if err == ErrUnsupported {
		ref, err = t.genericSplit(color, key)
	}
	if err != nil {
		return nil, err
	}
	if ref == nil {
		return nil, nil
	}
	nt := &Team{im: t.im, ref: ref, id: id}
	nt.buildIndex()
	t.im.registerTeam(nt)
	return nt, nil
}

// genericSplit computes the membership by a hand-crafted allgather over the
// parent team and asks the substrate for a plain team handle. This is the
// CAF-GASNet path: GASNet has no communicator concept.
func (t *Team) genericSplit(color, key int) (TeamRef, error) {
	n := t.Size()
	mine := []int64{int64(color), int64(key)}
	all := make([]int64, 2*n)
	if err := t.Allgather(elem.I64Bytes(mine), elem.I64Bytes(all)); err != nil {
		return nil, err
	}
	if color < 0 {
		return nil, nil
	}
	type member struct{ key, oldRank int }
	var group []member
	for r := 0; r < n; r++ {
		if int(all[2*r]) == color {
			group = append(group, member{int(all[2*r+1]), r})
		}
	}
	sort.Slice(group, func(i, j int) bool {
		if group[i].key != group[j].key {
			return group[i].key < group[j].key
		}
		return group[i].oldRank < group[j].oldRank
	})
	worldRanks := make([]int, len(group))
	myRank := -1
	for i, m := range group {
		worldRanks[i] = t.WorldRank(m.oldRank)
		if m.oldRank == t.Rank() {
			myRank = i
		}
	}
	if myRank < 0 {
		return nil, fmt.Errorf("core: split bookkeeping lost the calling image")
	}
	return t.im.sub.MakeTeam(worldRanks, myRank)
}

// collState holds the per-team machinery for the runtime's hand-crafted
// collectives (used when the substrate has no native ones, as over GASNet):
// a signal/small-payload inbox fed by the AM dispatcher, a slotted scratch
// coarray for bulk data movement via RDMA puts, and per-peer flow-control
// credits that track scratch-slot availability.
type collState struct {
	t   *Team
	gen int

	sig  map[sigKey]int64  // (key, src) -> signals received
	data map[sigKey][]byte // (key, src) -> small payload

	// credits[peer] counts how many times this image may write into
	// peer's scratch slot for us. Every slot starts free (lazy initial
	// value 1); consuming a slot's data sends a credit back.
	credits map[int]int64

	scratch   Segment // slotted exchange space: one slot per team rank
	slotBytes int
}

type sigKey struct{ key, src int }

// creditKey is the reserved signal key carrying scratch-slot credits.
const creditKey = -1

func (c *collState) signal(key, src int) {
	if key == creditKey {
		c.credits[src] = c.creditOf(src) + 1
		return
	}
	c.sig[sigKey{key, src}]++
}

func (c *collState) deposit(key, src int, payload []byte) {
	c.data[sigKey{key, src}] = append([]byte(nil), payload...)
}

// take removes and returns the payload deposited for (key, src), or nil.
func (c *collState) take(key, src int) []byte {
	k := sigKey{key, src}
	p, ok := c.data[k]
	if !ok {
		return nil
	}
	delete(c.data, k)
	return p
}

// consumeSig consumes one signal for (key, src) if present.
func (c *collState) consumeSig(key, src int) bool {
	k := sigKey{key, src}
	if c.sig[k] > 0 {
		c.sig[k]--
		if c.sig[k] == 0 {
			delete(c.sig, k)
		}
		return true
	}
	return false
}

func (c *collState) creditOf(peer int) int64 {
	if v, ok := c.credits[peer]; ok {
		return v
	}
	return 1 // every scratch slot starts free
}

// takeCredit consumes one scratch credit for peer if available.
func (c *collState) takeCredit(peer int) bool {
	v := c.creditOf(peer)
	if v <= 0 {
		return false
	}
	c.credits[peer] = v - 1
	return true
}

// nextKey reserves a fresh collective sequence window. Each generic
// collective uses keys [base, base+keysPerOp) so rounds never collide.
const keysPerOp = 64

func (c *collState) nextKey() int {
	k := c.gen * keysPerOp
	c.gen++
	return k
}

// nextKeys reserves enough consecutive key windows for an operation that
// needs `want` distinct keys (collectives whose chunk count can exceed
// keysPerOp). Every member computes the same want from collective-uniform
// arguments, so the generation counters stay agreed team-wide.
func (c *collState) nextKeys(want int) int {
	k := c.gen * keysPerOp
	gens := (want + keysPerOp - 1) / keysPerOp
	if gens < 1 {
		gens = 1
	}
	c.gen += gens
	return k
}
