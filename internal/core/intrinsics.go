package core

import "cafmpi/internal/elem"

// Fortran 2008-style collective intrinsics (co_sum, co_max, co_min,
// co_broadcast), provided as typed conveniences over the team collectives.
// Each is collective over the team and works in place on every image.

// CoSumF64 replaces v on every image with the element-wise team sum.
func (t *Team) CoSumF64(v []float64) error {
	out := make([]float64, len(v))
	if err := t.Allreduce(elem.F64Bytes(v), elem.F64Bytes(out), elem.Float64, elem.Sum); err != nil {
		return err
	}
	copy(v, out)
	return nil
}

// CoSumI64 replaces v on every image with the element-wise team sum.
func (t *Team) CoSumI64(v []int64) error {
	out := make([]int64, len(v))
	if err := t.Allreduce(elem.I64Bytes(v), elem.I64Bytes(out), elem.Int64, elem.Sum); err != nil {
		return err
	}
	copy(v, out)
	return nil
}

// CoMaxF64 replaces v on every image with the element-wise team maximum.
func (t *Team) CoMaxF64(v []float64) error {
	out := make([]float64, len(v))
	if err := t.Allreduce(elem.F64Bytes(v), elem.F64Bytes(out), elem.Float64, elem.Max); err != nil {
		return err
	}
	copy(v, out)
	return nil
}

// CoMinF64 replaces v on every image with the element-wise team minimum.
func (t *Team) CoMinF64(v []float64) error {
	out := make([]float64, len(v))
	if err := t.Allreduce(elem.F64Bytes(v), elem.F64Bytes(out), elem.Float64, elem.Min); err != nil {
		return err
	}
	copy(v, out)
	return nil
}

// CoMaxI64 replaces v on every image with the element-wise team maximum.
func (t *Team) CoMaxI64(v []int64) error {
	out := make([]int64, len(v))
	if err := t.Allreduce(elem.I64Bytes(v), elem.I64Bytes(out), elem.Int64, elem.Max); err != nil {
		return err
	}
	copy(v, out)
	return nil
}

// CoMinI64 replaces v on every image with the element-wise team minimum.
func (t *Team) CoMinI64(v []int64) error {
	out := make([]int64, len(v))
	if err := t.Allreduce(elem.I64Bytes(v), elem.I64Bytes(out), elem.Int64, elem.Min); err != nil {
		return err
	}
	copy(v, out)
	return nil
}

// CoBroadcastF64 replaces v on every image with source's v.
func (t *Team) CoBroadcastF64(v []float64, source int) error {
	return t.Bcast(elem.F64Bytes(v), source)
}

// CoBroadcastI64 replaces v on every image with source's v.
func (t *Team) CoBroadcastI64(v []int64, source int) error {
	return t.Bcast(elem.I64Bytes(v), source)
}
