package mpi

import (
	"bytes"
	"fmt"
	"math"
	"testing"
	"testing/quick"

	"cafmpi/internal/fabric"
	"cafmpi/internal/sim"
)

// commSizes exercises power-of-two and awkward sizes.
var commSizes = []int{1, 2, 3, 4, 5, 7, 8, 13, 16}

func TestBcastAllSizesAllRoots(t *testing.T) {
	for _, n := range commSizes {
		runMPI(t, n, func(e *Env) error {
			c := e.CommWorld()
			for root := 0; root < n; root++ {
				buf := make([]int64, 5)
				if c.Rank() == root {
					for i := range buf {
						buf[i] = int64(root*100 + i)
					}
				}
				if err := c.Bcast(I64Bytes(buf), Int64, root); err != nil {
					return err
				}
				for i := range buf {
					if buf[i] != int64(root*100+i) {
						return fmt.Errorf("n=%d root=%d rank=%d: buf[%d]=%d", n, root, c.Rank(), i, buf[i])
					}
				}
			}
			return nil
		})
	}
}

func TestReduceSumAllRoots(t *testing.T) {
	for _, n := range commSizes {
		runMPI(t, n, func(e *Env) error {
			c := e.CommWorld()
			for root := 0; root < n; root++ {
				in := []int64{int64(c.Rank()), int64(c.Rank() * c.Rank()), 1}
				out := make([]int64, 3)
				if err := c.Reduce(I64Bytes(in), I64Bytes(out), Int64, OpSum, root); err != nil {
					return err
				}
				if c.Rank() == root {
					var s0, s1 int64
					for r := 0; r < n; r++ {
						s0 += int64(r)
						s1 += int64(r * r)
					}
					if out[0] != s0 || out[1] != s1 || out[2] != int64(n) {
						return fmt.Errorf("n=%d root=%d: reduce got %v, want [%d %d %d]", n, root, out, s0, s1, n)
					}
				}
			}
			return nil
		})
	}
}

func TestAllreduceOps(t *testing.T) {
	runMPI(t, 7, func(e *Env) error {
		c := e.CommWorld()
		n := int64(c.Size())
		r := int64(c.Rank())

		cases := []struct {
			op   Op
			in   int64
			want int64
		}{
			{OpSum, r + 1, n * (n + 1) / 2},
			{OpMax, r, n - 1},
			{OpMin, r + 10, 10},
			{OpProd, 2, 1 << uint(n)},
			{OpBOr, 1 << uint(r), (1 << uint(n)) - 1},
			{OpBAnd, ^int64(0) ^ (1 << (20 + uint(r))), ^int64(0) ^ ((1<<uint(n) - 1) << 20)},
			{OpBXor, 1 << uint(r), (1 << uint(n)) - 1},
		}
		for _, tc := range cases {
			in, out := []int64{tc.in}, make([]int64, 1)
			if err := c.Allreduce(I64Bytes(in), I64Bytes(out), Int64, tc.op); err != nil {
				return err
			}
			if out[0] != tc.want {
				return fmt.Errorf("op %v got %d, want %d", tc.op, out[0], tc.want)
			}
		}
		return nil
	})
}

func TestAllreduceFloat64(t *testing.T) {
	runMPI(t, 8, func(e *Env) error {
		c := e.CommWorld()
		in := []float64{float64(c.Rank()) + 0.5}
		out := make([]float64, 1)
		if err := c.Allreduce(F64Bytes(in), F64Bytes(out), Float64, OpSum); err != nil {
			return err
		}
		want := 0.0
		for r := 0; r < 8; r++ {
			want += float64(r) + 0.5
		}
		if math.Abs(out[0]-want) > 1e-12 {
			return fmt.Errorf("float sum %v, want %v", out[0], want)
		}
		return nil
	})
}

func TestGatherScatter(t *testing.T) {
	for _, n := range []int{1, 3, 8} {
		runMPI(t, n, func(e *Env) error {
			c := e.CommWorld()
			root := n - 1
			mine := []int32{int32(c.Rank()), int32(-c.Rank())}
			var all []int32
			if c.Rank() == root {
				all = make([]int32, 2*n)
			}
			if err := c.Gather(I32Bytes(mine), I32Bytes(all), Int32, root); err != nil {
				return err
			}
			if c.Rank() == root {
				for r := 0; r < n; r++ {
					if all[2*r] != int32(r) || all[2*r+1] != int32(-r) {
						return fmt.Errorf("gather block %d = %v", r, all[2*r:2*r+2])
					}
					all[2*r] *= 10 // transform before scattering back
				}
			}
			back := make([]int32, 2)
			if err := c.Scatter(I32Bytes(all), I32Bytes(back), Int32, root); err != nil {
				return err
			}
			if back[0] != int32(10*c.Rank()) || back[1] != int32(-c.Rank()) {
				return fmt.Errorf("scatter got %v", back)
			}
			return nil
		})
	}
}

func TestAllgather(t *testing.T) {
	for _, n := range commSizes {
		runMPI(t, n, func(e *Env) error {
			c := e.CommWorld()
			mine := []int64{int64(c.Rank() * 7)}
			all := make([]int64, n)
			if err := c.Allgather(I64Bytes(mine), I64Bytes(all), Int64); err != nil {
				return err
			}
			for r := 0; r < n; r++ {
				if all[r] != int64(r*7) {
					return fmt.Errorf("n=%d rank=%d: allgather[%d]=%d, want %d", n, c.Rank(), r, all[r], r*7)
				}
			}
			return nil
		})
	}
}

func TestAlltoallPermutation(t *testing.T) {
	for _, n := range commSizes {
		runMPI(t, n, func(e *Env) error {
			c := e.CommWorld()
			// Block for destination d encodes (src, dst).
			send := make([]int32, 2*n)
			for d := 0; d < n; d++ {
				send[2*d] = int32(c.Rank())
				send[2*d+1] = int32(d)
			}
			recv := make([]int32, 2*n)
			if err := c.Alltoall(I32Bytes(send), I32Bytes(recv), Int32); err != nil {
				return err
			}
			for s := 0; s < n; s++ {
				if recv[2*s] != int32(s) || recv[2*s+1] != int32(c.Rank()) {
					return fmt.Errorf("n=%d rank=%d: block from %d is (%d,%d)", n, c.Rank(), s, recv[2*s], recv[2*s+1])
				}
			}
			return nil
		})
	}
}

func TestAlltoallv(t *testing.T) {
	runMPI(t, 4, func(e *Env) error {
		c := e.CommWorld()
		n := c.Size()
		me := c.Rank()
		// Rank r sends (d+1) bytes of value r*16+d to destination d.
		sendCounts := make([]int, n)
		sendDispls := make([]int, n)
		total := 0
		for d := 0; d < n; d++ {
			sendCounts[d] = d + 1
			sendDispls[d] = total
			total += d + 1
		}
		sendBuf := make([]byte, total)
		for d := 0; d < n; d++ {
			for i := 0; i < sendCounts[d]; i++ {
				sendBuf[sendDispls[d]+i] = byte(me*16 + d)
			}
		}
		recvCounts := make([]int, n)
		recvDispls := make([]int, n)
		rtotal := 0
		for s := 0; s < n; s++ {
			recvCounts[s] = me + 1 // everyone sends me (me+1) bytes
			recvDispls[s] = rtotal
			rtotal += me + 1
		}
		recvBuf := make([]byte, rtotal)
		if err := c.Alltoallv(sendBuf, sendCounts, sendDispls, recvBuf, recvCounts, recvDispls); err != nil {
			return err
		}
		for s := 0; s < n; s++ {
			for i := 0; i < recvCounts[s]; i++ {
				if got, want := recvBuf[recvDispls[s]+i], byte(s*16+me); got != want {
					return fmt.Errorf("rank %d block %d byte %d = %#x, want %#x", me, s, i, got, want)
				}
			}
		}
		return nil
	})
}

func TestScanInclusive(t *testing.T) {
	for _, n := range []int{1, 2, 6} {
		runMPI(t, n, func(e *Env) error {
			c := e.CommWorld()
			in := []int64{int64(c.Rank() + 1)}
			out := make([]int64, 1)
			if err := c.Scan(I64Bytes(in), I64Bytes(out), Int64, OpSum); err != nil {
				return err
			}
			want := int64((c.Rank() + 1) * (c.Rank() + 2) / 2)
			if out[0] != want {
				return fmt.Errorf("n=%d rank=%d scan=%d want %d", n, c.Rank(), out[0], want)
			}
			return nil
		})
	}
}

func TestBarrierSynchronizesVirtualTime(t *testing.T) {
	runMPI(t, 8, func(e *Env) error {
		c := e.CommWorld()
		// One rank is far ahead in virtual time; after barrier, no rank may
		// be behind it (a barrier orders every rank after every entry).
		if c.Rank() == 3 {
			e.Proc().Advance(5_000_000)
		}
		if err := c.Barrier(); err != nil {
			return err
		}
		if e.Proc().Now() < 5_000_000 {
			return fmt.Errorf("rank %d exited barrier at t=%d, before rank 3 entered", c.Rank(), e.Proc().Now())
		}
		return nil
	})
}

func TestCollectiveTimeScalesWithLogP(t *testing.T) {
	barrierTime := func(n int) int64 {
		var tmax int64
		w := sim.NewWorld(n)
		if err := w.Run(func(p *sim.Proc) error {
			e := Init(p, fabric.AttachNet(p.World(), tp()))
			if err := e.CommWorld().Barrier(); err != nil {
				return err
			}
			if p.ID() == 0 {
				tmax = p.Now()
			}
			return nil
		}); err != nil {
			t.Fatal(err)
		}
		return tmax
	}
	t4, t64 := barrierTime(4), barrierTime(64)
	if t64 <= t4 {
		t.Errorf("barrier time should grow with P: %d ns (P=4) vs %d ns (P=64)", t4, t64)
	}
	// Dissemination is logarithmic: 64 ranks = 6 rounds vs 2 rounds; the
	// ratio must stay well under linear scaling (16x).
	if t64 > t4*8 {
		t.Errorf("barrier scaling looks linear: %d ns (P=4) vs %d ns (P=64)", t4, t64)
	}
}

// Property: Allreduce(SUM) equals the serial fold for random int vectors.
func TestAllreduceMatchesSerialFoldProperty(t *testing.T) {
	f := func(vals [][4]int32, nSize uint8) bool {
		n := int(nSize)%6 + 2
		if len(vals) < n {
			return true // not enough generated inputs; skip
		}
		want := [4]int64{}
		for r := 0; r < n; r++ {
			for j := 0; j < 4; j++ {
				want[j] += int64(vals[r][j])
			}
		}
		ok := true
		w := sim.NewWorld(n)
		err := w.Run(func(p *sim.Proc) error {
			e := Init(p, fabric.AttachNet(p.World(), tp()))
			c := e.CommWorld()
			in := make([]int64, 4)
			for j := 0; j < 4; j++ {
				in[j] = int64(vals[c.Rank()][j])
			}
			out := make([]int64, 4)
			if err := c.Allreduce(I64Bytes(in), I64Bytes(out), Int64, OpSum); err != nil {
				return err
			}
			for j := 0; j < 4; j++ {
				if out[j] != want[j] {
					ok = false
				}
			}
			return nil
		})
		return err == nil && ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// Property: Alltoall is an involution when every rank sends symmetric data:
// applying it twice with swapped buffers returns the original.
func TestAlltoallRoundTripProperty(t *testing.T) {
	f := func(seed int64, nSize uint8) bool {
		n := int(nSize)%7 + 1
		ok := true
		w := sim.NewWorld(n)
		err := w.Run(func(p *sim.Proc) error {
			e := Init(p, fabric.AttachNet(p.World(), tp()))
			c := e.CommWorld()
			rng := p.Rng()
			orig := make([]int64, n)
			for i := range orig {
				orig[i] = rng.Int63() ^ seed
			}
			fwd := make([]int64, n)
			if err := c.Alltoall(I64Bytes(orig), I64Bytes(fwd), Int64); err != nil {
				return err
			}
			back := make([]int64, n)
			if err := c.Alltoall(I64Bytes(fwd), I64Bytes(back), Int64); err != nil {
				return err
			}
			for i := range back {
				if back[i] != orig[i] {
					ok = false
				}
			}
			return nil
		})
		return err == nil && ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestReduceBufferSizeMismatch(t *testing.T) {
	runMPI(t, 2, func(e *Env) error {
		c := e.CommWorld()
		in := make([]byte, 7) // not a multiple of int64 size
		out := make([]byte, 7)
		err := c.Allreduce(in, out, Int64, OpSum)
		if err == nil {
			return fmt.Errorf("expected size-mismatch error")
		}
		// Re-synchronize: only some ranks may observe the local error path.
		return nil
	})
}

func TestGathervScatterv(t *testing.T) {
	runMPI(t, 4, func(e *Env) error {
		c := e.CommWorld()
		n := c.Size()
		me := c.Rank()
		// Rank r contributes r+1 bytes of value r.
		mine := bytes.Repeat([]byte{byte(me)}, me+1)
		counts := make([]int, n)
		displs := make([]int, n)
		total := 0
		for r := 0; r < n; r++ {
			counts[r] = r + 1
			displs[r] = total
			total += r + 1
		}
		var all []byte
		if me == 1 {
			all = make([]byte, total)
		}
		if err := c.Gatherv(mine, all, counts, displs, 1); err != nil {
			return err
		}
		if me == 1 {
			for r := 0; r < n; r++ {
				for i := 0; i < counts[r]; i++ {
					if all[displs[r]+i] != byte(r) {
						return fmt.Errorf("gatherv block %d byte %d = %d", r, i, all[displs[r]+i])
					}
				}
			}
			for i := range all {
				all[i] += 10
			}
		}
		back := make([]byte, me+1)
		if err := c.Scatterv(all, counts, displs, back, 1); err != nil {
			return err
		}
		for i := range back {
			if back[i] != byte(me+10) {
				return fmt.Errorf("scatterv got %d, want %d", back[i], me+10)
			}
		}
		return nil
	})
}

func TestGathervValidation(t *testing.T) {
	runMPI(t, 2, func(e *Env) error {
		c := e.CommWorld()
		if c.Rank() == 0 {
			if err := c.Gatherv(nil, nil, []int{1}, []int{0}, 0); err == nil {
				return fmt.Errorf("short count array accepted")
			}
			// Re-synchronize with rank 1's pending send.
			buf := make([]byte, 4)
			if err := c.Gatherv([]byte{9}, buf, []int{1, 2}, []int{0, 1}, 0); err != nil {
				return err
			}
			if buf[0] != 9 || buf[1] != 7 || buf[2] != 7 {
				return fmt.Errorf("gatherv data %v", buf)
			}
			return nil
		}
		return c.Gatherv([]byte{7, 7}, nil, nil, nil, 0)
	})
}

func TestReduceScatterBlock(t *testing.T) {
	for _, n := range []int{1, 2, 4, 6} {
		runMPI(t, n, func(e *Env) error {
			c := e.CommWorld()
			// Rank r contributes block d = [r*10+d, r*10+d].
			send := make([]int64, 2*n)
			for d := 0; d < n; d++ {
				send[2*d] = int64(c.Rank()*10 + d)
				send[2*d+1] = int64(c.Rank()*10 + d)
			}
			recv := make([]int64, 2)
			if err := c.ReduceScatterBlock(I64Bytes(send), I64Bytes(recv), Int64, OpSum); err != nil {
				return err
			}
			var want int64
			for r := 0; r < n; r++ {
				want += int64(r*10 + c.Rank())
			}
			if recv[0] != want || recv[1] != want {
				return fmt.Errorf("n=%d rank=%d: got %v, want %d", n, c.Rank(), recv, want)
			}
			return nil
		})
	}
}

func TestSendrecvReplace(t *testing.T) {
	runMPI(t, 4, func(e *Env) error {
		c := e.CommWorld()
		n := c.Size()
		right, left := (c.Rank()+1)%n, (c.Rank()-1+n)%n
		buf := []byte{byte(c.Rank()), byte(c.Rank() + 50)}
		st, err := c.SendrecvReplace(buf, right, 9, left, 9)
		if err != nil {
			return err
		}
		if st.Count != 2 || buf[0] != byte(left) || buf[1] != byte(left+50) {
			return fmt.Errorf("replace got %v (st %+v)", buf, st)
		}
		return nil
	})
}
