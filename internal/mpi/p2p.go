package mpi

import (
	"fmt"
	"sync"
	"sync/atomic"

	"cafmpi/internal/fabric"
	"cafmpi/internal/obs"
)

// Status describes a completed receive.
type Status struct {
	Source int // comm rank of the sender
	Tag    int
	Count  int // bytes received
}

// Request kinds.
const (
	reqSend = iota
	reqRecv
	reqRMA
)

// Request is a handle to an in-flight operation (MPI_Request).
type Request struct {
	env  *Env
	kind int
	comm *Comm

	// Receive matching state (reqRecv).
	buf      []byte
	src, tag int
	ctx      int

	// done is the completion flag, published with release ordering after
	// completeT/status/err are in place so that snapshot can read them
	// without taking mu. mu only serializes concurrent completers
	// (duplicate CompleteAt calls racing on the completion-time max).
	done      atomic.Bool
	mu        sync.Mutex
	completeT int64
	status    Status
	err       error
}

// reqPool recycles Request structs: the blocking Send/Recv wrappers and the
// substrate's fence-drained request arrays churn through one handle per
// message, which used to be the library's largest allocation source.
var reqPool = sync.Pool{New: func() any { return new(Request) }}

// newRequest draws a zeroed request from the pool.
func newRequest(env *Env, kind int, c *Comm) *Request {
	r := reqPool.Get().(*Request)
	r.env, r.kind, r.comm = env, kind, c
	return r
}

// Free returns a completed request to the internal pool, in the spirit of
// MPI_REQUEST_FREE. Only a caller that exclusively owns the handle may free
// it, and only after a successful Wait (or for requests created complete);
// the handle must not be touched afterwards.
func (r *Request) Free() {
	// No lock: the owner has already observed done through snapshot's
	// critical section (or the request was born complete), which orders
	// Free after the completer's last touch; from then on this goroutine
	// is the only accessor until the pool hands the handle out again.
	r.env, r.comm, r.buf = nil, nil, nil
	r.kind, r.src, r.tag, r.ctx = 0, 0, 0, 0
	r.done.Store(false)
	r.completeT = 0
	r.status, r.err = Status{}, nil
	reqPool.Put(r)
}

// CompleteAt marks the operation complete at virtual time t. It is invoked
// by the fabric (eager injection) or by the matching receiver (rendezvous),
// possibly from another goroutine.
func (r *Request) CompleteAt(t int64) {
	r.mu.Lock()
	if t > r.completeT {
		r.completeT = t
	}
	// The waiter may observe done and Free the request the moment the
	// store lands, so capture env first.
	env := r.env
	r.done.Store(true)
	r.mu.Unlock()
	if env != nil {
		env.ep.Poke()
	}
}

func (r *Request) snapshot() (done bool, t int64, st Status, err error) {
	if !r.done.Load() {
		return false, 0, Status{}, nil
	}
	return true, r.completeT, r.status, r.err
}

// Test returns the request's completion state without blocking, making
// progress first. On completion the caller's clock absorbs the completion
// timestamp.
func (r *Request) Test() (bool, Status, error) {
	r.env.progress()
	done, t, st, err := r.snapshot()
	if done {
		r.env.p.AdvanceTo(t)
	}
	return done, st, err
}

// Wait blocks until the request completes, driving progress for all other
// traffic meanwhile (an MPI implementation must progress everything inside
// any blocking call).
func (r *Request) Wait() (Status, error) {
	e := r.env
	for {
		seq := e.ep.Seq()
		_, ps := e.progressPoll()
		if done, t, st, err := r.snapshot(); done {
			e.p.AdvanceTo(t)
			return st, err
		}
		if err := e.flt.ErrOp("wait"); err != nil {
			return Status{}, err
		}
		if ps.HasEarliest {
			e.p.AdvanceTo(ps.Earliest)
			continue
		}
		e.ep.WaitActivity(seq)
	}
}

// Waitall waits for every request in order and returns the first error.
func Waitall(reqs []*Request) error {
	var first error
	for _, r := range reqs {
		if r == nil {
			continue
		}
		if _, err := r.Wait(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// Waitany blocks until at least one request completes and returns its index.
// Completed (already-waited) requests passed again return immediately.
func Waitany(reqs []*Request) (int, Status, error) {
	var e *Env
	for _, r := range reqs {
		if r != nil {
			e = r.env
			break
		}
	}
	if e == nil {
		return -1, Status{}, fmt.Errorf("mpi: Waitany with no active requests")
	}
	for {
		seq := e.ep.Seq()
		_, ps := e.progressPoll()
		for i, r := range reqs {
			if r == nil {
				continue
			}
			if done, t, st, err := r.snapshot(); done {
				e.p.AdvanceTo(t)
				return i, st, err
			}
		}
		if err := e.flt.ErrOp("waitany"); err != nil {
			return -1, Status{}, err
		}
		if ps.HasEarliest {
			e.p.AdvanceTo(ps.Earliest)
			continue
		}
		e.ep.WaitActivity(seq)
	}
}

// Isend starts a non-blocking tagged send of buf to dest.
func (c *Comm) Isend(buf []byte, dest, tag int) (*Request, error) {
	c.env.checkLive()
	if dest == ProcNull {
		r := newRequest(c.env, reqSend, c)
		r.done.Store(true)
		return r, nil
	}
	if err := c.checkRank(dest, "send"); err != nil {
		return nil, err
	}
	if tag < 0 || tag > TagUB {
		return nil, fmt.Errorf("mpi: tag %d out of range [0,%d]", tag, TagUB)
	}
	return c.isendCtx(buf, dest, tag, c.ctx), nil
}

func (c *Comm) isendCtx(buf []byte, dest, tag, ctx int) *Request {
	r := newRequest(c.env, reqSend, c)
	c.env.connect(c.ranks[dest])
	t0 := c.env.p.Now()
	m := fabric.NewMessage()
	m.Dst = c.ranks[dest]
	m.Class = clsP2P
	m.Tag = tag
	m.Ctx = ctx
	m.Data = buf
	m.Req = r
	if err := c.env.layer.Send(c.env.p, m); err != nil {
		// The fabric already stamped the request complete; surface the
		// typed failure through it so Wait reports it. r has not escaped
		// yet, so the unsynchronized err store is safe.
		r.err = err
		r.done.Store(true)
		return r
	}
	if sh := c.env.sh; sh != nil {
		sh.Record(obs.LayerMPI, obs.OpSend, c.ranks[dest], len(buf), tag, t0, c.env.p.Now())
	}
	return r
}

// Send is the blocking tagged send: it returns when buf is reusable.
func (c *Comm) Send(buf []byte, dest, tag int) error {
	r, err := c.Isend(buf, dest, tag)
	if err != nil {
		return err
	}
	_, err = r.Wait()
	r.Free() // never escapes this call
	return err
}

// Irecv posts a non-blocking tagged receive into buf. src may be AnySource
// and tag may be AnyTag.
func (c *Comm) Irecv(buf []byte, src, tag int) (*Request, error) {
	c.env.checkLive()
	if src == ProcNull {
		return nil, fmt.Errorf("mpi: receive from MPI_PROC_NULL")
	}
	if src != AnySource {
		if err := c.checkRank(src, "recv source"); err != nil {
			return nil, err
		}
	}
	return c.irecvCtx(buf, src, tag, c.ctx), nil
}

func (c *Comm) irecvCtx(buf []byte, src, tag, ctx int) *Request {
	r := newRequest(c.env, reqRecv, c)
	r.buf, r.src, r.tag, r.ctx = buf, src, tag, ctx
	e := c.env
	e.mu.Lock()
	e.posted = append(e.posted, r)
	e.mu.Unlock()
	return r
}

// Recv is the blocking tagged receive.
func (c *Comm) Recv(buf []byte, src, tag int) (Status, error) {
	r, err := c.Irecv(buf, src, tag)
	if err != nil {
		return Status{}, err
	}
	st, err := r.Wait()
	r.Free() // never escapes this call
	return st, err
}

// Sendrecv exchanges messages with (possibly distinct) peers in one call,
// avoiding the deadlock of two blocking sends.
func (c *Comm) Sendrecv(sendBuf []byte, dest, sendTag int, recvBuf []byte, src, recvTag int) (Status, error) {
	rr, err := c.Irecv(recvBuf, src, recvTag)
	if err != nil {
		return Status{}, err
	}
	if err = c.Send(sendBuf, dest, sendTag); err != nil {
		return Status{}, err
	}
	st, err := rr.Wait()
	rr.Free()
	return st, err
}

// SendrecvReplace sends buf to dest and receives into the same buffer from
// src (MPI_SENDRECV_REPLACE): the incoming message replaces the contents.
func (c *Comm) SendrecvReplace(buf []byte, dest, sendTag, src, recvTag int) (Status, error) {
	tmp := make([]byte, len(buf))
	st, err := c.Sendrecv(buf, dest, sendTag, tmp, src, recvTag)
	if err != nil {
		return st, err
	}
	copy(buf, tmp[:st.Count])
	return st, nil
}

// setProbe stages probe parameters into the cached probe spec.
func (c *Comm) setProbe(src, tag int) {
	c.probeTag = tag
	if src == AnySource {
		c.probeSpec.Src = fabric.AnySrc
		c.probeAny = true
	} else {
		c.probeSpec.Src = c.ranks[src]
		c.probeAny = false
	}
}

// Iprobe checks for a matching incoming message without receiving it.
func (c *Comm) Iprobe(src, tag int) (bool, Status, error) {
	c.env.checkLive()
	c.env.progress()
	c.setProbe(src, tag)
	c.probeSpec.Before = c.env.p.Now()
	m := c.env.ep.PeekSpec(&c.probeSpec)
	if m == nil {
		return false, Status{}, nil
	}
	return true, Status{Source: c.commRankOfWorld(m.Src), Tag: m.Tag, Count: len(m.Data)}, nil
}

// IprobeAny is Iprobe(AnySource, AnyTag) with the probe peek fused into the
// progress engine's final (empty) matching pass, so the idle path costs one
// endpoint lock acquisition instead of three. A failed probe also reports
// the earliest queued arrival for this communicator, replacing a separate
// EarliestMessage scan in blocking pollers. Virtual-time charges are
// bit-identical to progress-then-Iprobe: the peek's time gate leads the
// clock by the MatchNS charge an empty, undelivered pass takes afterwards,
// which is exactly the clock a separate probe would have observed.
func (c *Comm) IprobeAny() (bool, Status, int64, bool, error) {
	e := c.env
	e.checkLive()
	c.setProbe(AnySource, AnyTag)
	matchNS := e.costs().MatchNS
	delivered := false
	first := true
	for {
		e.mu.Lock()
		now := e.p.Now()
		e.progSpec.Before = now
		c.probeSpec.Before = now
		if !delivered {
			c.probeSpec.Before += matchNS
		}
		m, st, pm, pearl, phas := e.ep.TryRecvPeek(&e.progSpec, &c.probeSpec)
		if first {
			e.sh.Max(obs.CtrUnexpectedDepthMax, int64(st.Depth))
			first = false
		}
		if m == nil {
			e.mu.Unlock()
			if !delivered {
				e.p.Advance(matchNS)
			}
			if pm == nil && e.ep.Seq() != st.Seq {
				// Re-peek once at the unfused probe's lock position: an
				// arrival that landed during the fused pass must be seen
				// now, exactly as progress-then-Iprobe would see it, or
				// it costs a schedule-dependent extra charged pass. An
				// unchanged activity seq proves nothing arrived since the
				// fused pass, so the lock can be skipped.
				c.probeSpec.Before = e.p.Now()
				pm = e.ep.PeekSpec(&c.probeSpec)
			}
			if pm == nil {
				return false, Status{}, pearl, phas, nil
			}
			return true, Status{Source: c.commRankOfWorld(pm.Src), Tag: pm.Tag, Count: len(pm.Data)}, 0, false, nil
		}
		var hit *Request
		for i, r := range e.posted {
			if matchReq(r, m) {
				hit = r
				e.posted = append(e.posted[:i], e.posted[i+1:]...)
				break
			}
		}
		e.mu.Unlock()
		if hit == nil {
			panic("mpi: matched message lost its posted receive")
		}
		e.deliver(hit, m)
		delivered = true
	}
}

// Probe blocks until a matching message is available, advancing virtual
// time to a queued matching arrival if one is still in flight.
func (c *Comm) Probe(src, tag int) (Status, error) {
	for {
		seq := c.env.ep.Seq()
		ok, st, err := c.Iprobe(src, tag)
		if ok || err != nil {
			return st, err
		}
		if err := c.env.flt.ErrOp("probe"); err != nil {
			return Status{}, err
		}
		// Iprobe staged the spec; reuse it for the earliest-arrival scan.
		if ps := c.env.ep.PollStateFor(&c.probeSpec); ps.HasEarliest {
			c.env.p.AdvanceTo(ps.Earliest)
			continue
		}
		c.env.ep.WaitActivity(seq)
	}
}

// matchReq reports whether message m satisfies posted receive r.
func matchReq(r *Request, m *fabric.Message) bool {
	if m.Class != clsP2P || m.Ctx != r.ctx {
		return false
	}
	if r.tag != AnyTag && m.Tag != r.tag {
		return false
	}
	if r.src == AnySource {
		return r.comm.worldToRank[m.Src] >= 0
	}
	return m.Src == r.comm.ranks[r.src]
}

// postedFilter reports whether any posted receive matches m. It is the
// progress engine's match predicate, bound once into Env.progSpec; it runs
// under the endpoint lock and reads posted, so callers hold e.mu.
func (e *Env) postedFilter(m *fabric.Message) bool {
	for _, r := range e.posted {
		if matchReq(r, m) {
			return true
		}
	}
	return false
}

// progress delivers queued arrivals to posted receives, in arrival order,
// each to the earliest-posted matching request. Only messages whose virtual
// arrival stamp has passed are delivered: matching a message "from the
// future" would advance this image's clock to the sender's and let skew
// compound. It returns whether anything was delivered. progress runs only
// on the owning image's goroutine.
func (e *Env) progress() bool {
	delivered, _ := e.progressPoll()
	return delivered
}

// progressPoll is progress plus the poll snapshot of the final (empty)
// matching pass: blocking waits consume its earliest-arrival report in
// place of a second locked queue scan.
func (e *Env) progressPoll() (bool, fabric.PollState) {
	delivered := false
	first := true
	for {
		e.mu.Lock()
		e.progSpec.Before = e.p.Now()
		m, st := e.ep.TryRecvSpec(&e.progSpec)
		if first {
			// Queue depth before matching = unexpected-message backlog.
			e.sh.Max(obs.CtrUnexpectedDepthMax, int64(st.Depth))
			first = false
		}
		if m == nil {
			e.mu.Unlock()
			if !delivered {
				// An unsuccessful poll still costs a queue scan; this also
				// lets pure test/probe spin loops advance virtual time
				// toward in-flight arrivals.
				e.p.Advance(e.costs().MatchNS)
			}
			return delivered, st
		}
		// The spec's filter guaranteed a posted match while the endpoint
		// lock was held, and posted only changes under e.mu (still held):
		// unpost the winning request before releasing it.
		var hit *Request
		for i, r := range e.posted {
			if matchReq(r, m) {
				hit = r
				e.posted = append(e.posted[:i], e.posted[i+1:]...)
				break
			}
		}
		e.mu.Unlock()
		if hit == nil {
			panic("mpi: matched message lost its posted receive")
		}
		e.deliver(hit, m)
		delivered = true
	}
}

// advanceToPending advances the clock to the earliest queued arrival that
// matches a posted receive, returning whether it did. Blocking waits call
// it when progress finds nothing eligible: waiting for a message that is
// already queued but virtually in flight is a virtual-time wait.
func (e *Env) advanceToPending() bool {
	e.mu.Lock()
	st := e.ep.PollStateFor(&e.progSpec)
	e.mu.Unlock()
	if st.HasEarliest {
		e.p.AdvanceTo(st.Earliest)
	}
	return st.HasEarliest
}

func (e *Env) deliver(r *Request, m *fabric.Message) {
	t0 := e.p.Now()
	e.layer.Absorb(e.p, m, e.costs().MatchNS)
	if sh := e.sh; sh != nil {
		sh.Record(obs.LayerMPI, obs.OpRecv, m.Src, len(m.Data), m.Tag, t0, e.p.Now())
	}
	st := Status{Source: r.comm.commRankOfWorld(m.Src), Tag: m.Tag, Count: len(m.Data)}
	var err error
	if len(m.Data) > len(r.buf) {
		err = fmt.Errorf("mpi: message truncated (%d bytes into %d-byte buffer)", len(m.Data), len(r.buf))
		st.Count = len(r.buf)
	}
	copy(r.buf, m.Data)
	m.Release() // payload copied out; recycle the message and its buffer
	// deliver is the sole completer for a receive (the request left
	// e.posted before the call), so the fields need no lock — only the
	// release-ordered done store that snapshot pairs with.
	r.completeT = e.p.Now()
	r.status = st
	r.err = err
	r.done.Store(true)
	e.ep.Poke()
}
