package mpi

import (
	"fmt"
	"sync"

	"cafmpi/internal/fabric"
	"cafmpi/internal/obs"
)

// Status describes a completed receive.
type Status struct {
	Source int // comm rank of the sender
	Tag    int
	Count  int // bytes received
}

// Request kinds.
const (
	reqSend = iota
	reqRecv
	reqRMA
)

// Request is a handle to an in-flight operation (MPI_Request).
type Request struct {
	env  *Env
	kind int
	comm *Comm

	// Receive matching state (reqRecv).
	buf      []byte
	src, tag int
	ctx      int

	mu        sync.Mutex
	done      bool
	completeT int64
	status    Status
	err       error
}

// CompleteAt marks the operation complete at virtual time t. It is invoked
// by the fabric (eager injection) or by the matching receiver (rendezvous),
// possibly from another goroutine.
func (r *Request) CompleteAt(t int64) {
	r.mu.Lock()
	r.done = true
	if t > r.completeT {
		r.completeT = t
	}
	r.mu.Unlock()
	if r.env != nil {
		r.env.ep.Poke()
	}
}

func (r *Request) snapshot() (done bool, t int64, st Status, err error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.done, r.completeT, r.status, r.err
}

// Test returns the request's completion state without blocking, making
// progress first. On completion the caller's clock absorbs the completion
// timestamp.
func (r *Request) Test() (bool, Status, error) {
	r.env.progress()
	done, t, st, err := r.snapshot()
	if done {
		r.env.p.AdvanceTo(t)
	}
	return done, st, err
}

// Wait blocks until the request completes, driving progress for all other
// traffic meanwhile (an MPI implementation must progress everything inside
// any blocking call).
func (r *Request) Wait() (Status, error) {
	e := r.env
	for {
		seq := e.ep.Seq()
		e.progress()
		if done, t, st, err := r.snapshot(); done {
			e.p.AdvanceTo(t)
			return st, err
		}
		if e.advanceToPending() {
			continue
		}
		e.ep.WaitActivity(seq)
	}
}

// Waitall waits for every request in order and returns the first error.
func Waitall(reqs []*Request) error {
	var first error
	for _, r := range reqs {
		if r == nil {
			continue
		}
		if _, err := r.Wait(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// Waitany blocks until at least one request completes and returns its index.
// Completed (already-waited) requests passed again return immediately.
func Waitany(reqs []*Request) (int, Status, error) {
	var e *Env
	for _, r := range reqs {
		if r != nil {
			e = r.env
			break
		}
	}
	if e == nil {
		return -1, Status{}, fmt.Errorf("mpi: Waitany with no active requests")
	}
	for {
		seq := e.ep.Seq()
		e.progress()
		for i, r := range reqs {
			if r == nil {
				continue
			}
			if done, t, st, err := r.snapshot(); done {
				e.p.AdvanceTo(t)
				return i, st, err
			}
		}
		if e.advanceToPending() {
			continue
		}
		e.ep.WaitActivity(seq)
	}
}

// Isend starts a non-blocking tagged send of buf to dest.
func (c *Comm) Isend(buf []byte, dest, tag int) (*Request, error) {
	c.env.checkLive()
	if dest == ProcNull {
		r := &Request{env: c.env, kind: reqSend, comm: c, done: true}
		return r, nil
	}
	if err := c.checkRank(dest, "send"); err != nil {
		return nil, err
	}
	if tag < 0 || tag > TagUB {
		return nil, fmt.Errorf("mpi: tag %d out of range [0,%d]", tag, TagUB)
	}
	return c.isendCtx(buf, dest, tag, c.ctx), nil
}

func (c *Comm) isendCtx(buf []byte, dest, tag, ctx int) *Request {
	r := &Request{env: c.env, kind: reqSend, comm: c}
	t0 := c.env.p.Now()
	c.env.layer.Send(c.env.p, &fabric.Message{
		Dst:   c.ranks[dest],
		Class: clsP2P,
		Tag:   tag,
		Ctx:   ctx,
		Data:  buf,
		Req:   r,
	})
	if sh := c.env.sh; sh != nil {
		sh.Record(obs.LayerMPI, obs.OpSend, c.ranks[dest], len(buf), tag, t0, c.env.p.Now())
	}
	return r
}

// Send is the blocking tagged send: it returns when buf is reusable.
func (c *Comm) Send(buf []byte, dest, tag int) error {
	r, err := c.Isend(buf, dest, tag)
	if err != nil {
		return err
	}
	_, err = r.Wait()
	return err
}

// Irecv posts a non-blocking tagged receive into buf. src may be AnySource
// and tag may be AnyTag.
func (c *Comm) Irecv(buf []byte, src, tag int) (*Request, error) {
	c.env.checkLive()
	if src == ProcNull {
		return nil, fmt.Errorf("mpi: receive from MPI_PROC_NULL")
	}
	if src != AnySource {
		if err := c.checkRank(src, "recv source"); err != nil {
			return nil, err
		}
	}
	return c.irecvCtx(buf, src, tag, c.ctx), nil
}

func (c *Comm) irecvCtx(buf []byte, src, tag, ctx int) *Request {
	r := &Request{env: c.env, kind: reqRecv, comm: c, buf: buf, src: src, tag: tag, ctx: ctx}
	e := c.env
	e.mu.Lock()
	e.posted = append(e.posted, r)
	e.mu.Unlock()
	return r
}

// Recv is the blocking tagged receive.
func (c *Comm) Recv(buf []byte, src, tag int) (Status, error) {
	r, err := c.Irecv(buf, src, tag)
	if err != nil {
		return Status{}, err
	}
	return r.Wait()
}

// Sendrecv exchanges messages with (possibly distinct) peers in one call,
// avoiding the deadlock of two blocking sends.
func (c *Comm) Sendrecv(sendBuf []byte, dest, sendTag int, recvBuf []byte, src, recvTag int) (Status, error) {
	rr, err := c.Irecv(recvBuf, src, recvTag)
	if err != nil {
		return Status{}, err
	}
	if err := c.Send(sendBuf, dest, sendTag); err != nil {
		return Status{}, err
	}
	return rr.Wait()
}

// SendrecvReplace sends buf to dest and receives into the same buffer from
// src (MPI_SENDRECV_REPLACE): the incoming message replaces the contents.
func (c *Comm) SendrecvReplace(buf []byte, dest, sendTag, src, recvTag int) (Status, error) {
	tmp := make([]byte, len(buf))
	st, err := c.Sendrecv(buf, dest, sendTag, tmp, src, recvTag)
	if err != nil {
		return st, err
	}
	copy(buf, tmp[:st.Count])
	return st, nil
}

// Iprobe checks for a matching incoming message without receiving it.
func (c *Comm) Iprobe(src, tag int) (bool, Status, error) {
	c.env.checkLive()
	c.env.progress()
	now := c.env.p.Now()
	match := c.probeMatcher(src, tag)
	m := c.env.ep.Peek(func(m *fabric.Message) bool { return match(m) && m.ArriveT <= now })
	if m == nil {
		return false, Status{}, nil
	}
	return true, Status{Source: c.commRankOfWorld(m.Src), Tag: m.Tag, Count: len(m.Data)}, nil
}

// Probe blocks until a matching message is available, advancing virtual
// time to a queued matching arrival if one is still in flight.
func (c *Comm) Probe(src, tag int) (Status, error) {
	for {
		seq := c.env.ep.Seq()
		ok, st, err := c.Iprobe(src, tag)
		if ok || err != nil {
			return st, err
		}
		if t, ok := c.env.ep.EarliestArrival(c.probeMatcher(src, tag)); ok {
			c.env.p.AdvanceTo(t)
			continue
		}
		c.env.ep.WaitActivity(seq)
	}
}

func (c *Comm) probeMatcher(src, tag int) func(*fabric.Message) bool {
	srcOK := c.srcMatcher(src)
	return func(m *fabric.Message) bool {
		return m.Class == clsP2P && m.Ctx == c.ctx &&
			(tag == AnyTag || m.Tag == tag) && srcOK(m.Src)
	}
}

// matchReq reports whether message m satisfies posted receive r.
func matchReq(r *Request, m *fabric.Message) bool {
	if m.Class != clsP2P || m.Ctx != r.ctx {
		return false
	}
	if r.tag != AnyTag && m.Tag != r.tag {
		return false
	}
	if r.src == AnySource {
		return r.comm.commRankOfWorld(m.Src) >= 0
	}
	return m.Src == r.comm.ranks[r.src]
}

// progress delivers queued arrivals to posted receives, in arrival order,
// each to the earliest-posted matching request. Only messages whose virtual
// arrival stamp has passed are delivered: matching a message "from the
// future" would advance this image's clock to the sender's and let skew
// compound. It returns whether anything was delivered. progress runs only
// on the owning image's goroutine.
func (e *Env) progress() bool {
	delivered := false
	if e.sh != nil {
		// Queue depth before matching = unexpected-message backlog.
		e.sh.Max(obs.CtrUnexpectedDepthMax, int64(e.ep.QueueLen()))
	}
	for {
		now := e.p.Now()
		e.mu.Lock()
		var hit *Request
		m := e.ep.TryRecv(func(m *fabric.Message) bool {
			if m.ArriveT > now {
				return false
			}
			for _, r := range e.posted {
				if matchReq(r, m) {
					hit = r
					return true
				}
			}
			return false
		})
		if m == nil {
			e.mu.Unlock()
			if !delivered {
				// An unsuccessful poll still costs a queue scan; this also
				// lets pure test/probe spin loops advance virtual time
				// toward in-flight arrivals.
				e.p.Advance(e.costs().MatchNS)
			}
			return delivered
		}
		// Unpost before releasing the lock so no other matcher sees it.
		for i, r := range e.posted {
			if r == hit {
				e.posted = append(e.posted[:i], e.posted[i+1:]...)
				break
			}
		}
		e.mu.Unlock()
		e.deliver(hit, m)
		delivered = true
	}
}

// advanceToPending advances the clock to the earliest queued arrival that
// matches a posted receive, returning whether it did. Blocking waits call
// it when progress finds nothing eligible: waiting for a message that is
// already queued but virtually in flight is a virtual-time wait.
func (e *Env) advanceToPending() bool {
	e.mu.Lock()
	t, ok := e.ep.EarliestArrival(func(m *fabric.Message) bool {
		for _, r := range e.posted {
			if matchReq(r, m) {
				return true
			}
		}
		return false
	})
	e.mu.Unlock()
	if ok {
		e.p.AdvanceTo(t)
	}
	return ok
}

func (e *Env) deliver(r *Request, m *fabric.Message) {
	t0 := e.p.Now()
	e.layer.Absorb(e.p, m, e.costs().MatchNS)
	if sh := e.sh; sh != nil {
		sh.Record(obs.LayerMPI, obs.OpRecv, m.Src, len(m.Data), m.Tag, t0, e.p.Now())
	}
	st := Status{Source: r.comm.commRankOfWorld(m.Src), Tag: m.Tag, Count: len(m.Data)}
	var err error
	if len(m.Data) > len(r.buf) {
		err = fmt.Errorf("mpi: message truncated (%d bytes into %d-byte buffer)", len(m.Data), len(r.buf))
		st.Count = len(r.buf)
	}
	copy(r.buf, m.Data)
	r.mu.Lock()
	r.done = true
	r.completeT = e.p.Now()
	r.status = st
	r.err = err
	r.mu.Unlock()
	e.ep.Poke()
}
