package mpi

import (
	"fmt"
	"sync"
	"sync/atomic"

	"cafmpi/internal/obs"
)

// Dynamic windows (MPI_WIN_CREATE_DYNAMIC / MPI_WIN_ATTACH / MPI_WIN_DETACH,
// §2.2 of the paper): a window created without memory, to which each rank
// attaches regions later. Remote accesses address attached memory by the
// region handle plus a byte displacement — the analogue of MPI's absolute
// remote addresses (which MPI_Get_address would expose).

// DynRegion names one attached region on one rank. Exchange it with peers
// (e.g. via Allgather) the way real MPI programs exchange base addresses.
type DynRegion struct {
	Rank int   // owner (comm rank)
	Key  int64 // region identifier, unique per owner
}

// dynShared is the cross-image state of one dynamic window.
type dynShared struct {
	mu      sync.Mutex
	regions map[DynRegion][]byte // guarded by mu
	atomMu  []sync.Mutex
}

// DynWin is a dynamic window as seen by one image. Completion tracking and
// the flush scan/blame sequences live in the shared epoch (see epoch.go).
type DynWin struct {
	epoch
	sh *dynShared

	lockedAll bool
	nextKey   int64
	attached  map[int64][]byte

	// attachedBytes is the sum of currently attached region sizes; each
	// region also carries PeerStateBytes of registration metadata. Both are
	// charged to the image's modeled footprint at Attach and released at
	// Detach/Free.
	attachedBytes int64
}

// WinCreateDynamic collectively creates a window with no memory attached.
func WinCreateDynamic(c *Comm) (*DynWin, error) {
	c.env.checkLive()
	key := fmt.Sprintf("dynwin/%d/%d/%d", c.ctx, c.winSeq, c.ranks[0])
	c.winSeq++
	ws := c.env.ws
	ws.winsMu.Lock()
	shAny, ok := ws.dynWins[key]
	if !ok {
		shAny = &dynShared{regions: make(map[DynRegion][]byte), atomMu: make([]sync.Mutex, c.Size())}
		ws.dynWins[key] = shAny
	}
	ws.winsMu.Unlock()

	w := &DynWin{
		sh:       shAny,
		attached: make(map[int64][]byte),
	}
	w.epInit(c.env, c)
	c.env.p.Advance(c.env.costs().WinSetupNS) // no per-rank memory exchange
	if err := c.Barrier(); err != nil {
		return nil, err
	}
	return w, nil
}

// Attach exposes mem for remote access through the window and returns its
// region handle (MPI_WIN_ATTACH). Local, not collective.
//
//caflint:allow obsedge -- local registration bookkeeping; no peer or transfer to attribute
func (w *DynWin) Attach(mem []byte) (DynRegion, error) {
	if mem == nil {
		return DynRegion{}, fmt.Errorf("mpi: attaching nil memory")
	}
	w.nextKey++
	reg := DynRegion{Rank: w.comm.myRank, Key: w.nextKey}
	w.attached[reg.Key] = mem
	w.sh.mu.Lock()
	w.sh.regions[reg] = mem
	w.sh.mu.Unlock()
	w.env.p.Advance(w.env.costs().WinSetupNS) // registration cost
	w.chargeRegion(int64(len(mem)))
	return reg, nil
}

// chargeRegion adjusts the image's modeled footprint for one attached
// region: its memory plus PeerStateBytes of registration metadata
// (pinning/rkey state the NIC holds per registration). Negative delta on
// detach releases both — the leak this used to have was charging into a
// window-local counter that fed nothing and never shrank the image total.
func (w *DynWin) chargeRegion(delta int64) {
	meta := int64(w.env.costs().PeerStateBytes)
	if delta < 0 {
		meta = -meta
	}
	w.attachedBytes += delta
	atomic.AddInt64(&w.env.footprint, delta+meta)
}

// Detach withdraws a region (MPI_WIN_DETACH).
func (w *DynWin) Detach(reg DynRegion) error {
	if reg.Rank != w.comm.myRank {
		return fmt.Errorf("mpi: detaching a region owned by rank %d", reg.Rank)
	}
	mem, ok := w.attached[reg.Key]
	if !ok {
		return fmt.Errorf("mpi: region %v not attached", reg)
	}
	delete(w.attached, reg.Key)
	w.chargeRegion(-int64(len(mem)))
	w.sh.mu.Lock()
	delete(w.sh.regions, reg)
	w.sh.mu.Unlock()
	return nil
}

// LockAll opens the passive-target epoch.
func (w *DynWin) LockAll() error {
	if w.lockedAll {
		return fmt.Errorf("mpi: LockAll inside an existing epoch")
	}
	w.lockedAll = true
	w.lockAllEpoch()
	return nil
}

// UnlockAll flushes and closes the epoch.
func (w *DynWin) UnlockAll() error {
	if !w.lockedAll {
		return fmt.Errorf("mpi: UnlockAll without LockAll")
	}
	if err := w.FlushAll(); err != nil {
		return err
	}
	w.lockedAll = false
	return nil
}

func (w *DynWin) resolve(reg DynRegion, disp, n int, what string) ([]byte, error) {
	if !w.lockedAll {
		return nil, fmt.Errorf("mpi: %s outside an access epoch", what)
	}
	if err := w.comm.checkRank(reg.Rank, what); err != nil {
		return nil, err
	}
	w.sh.mu.Lock()
	mem, ok := w.sh.regions[reg]
	w.sh.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("mpi: %s to unattached region %v", what, reg)
	}
	if disp < 0 || disp+n > len(mem) {
		return nil, fmt.Errorf("mpi: %s range [%d,%d) outside region of %d bytes", what, disp, disp+n, len(mem))
	}
	return mem, nil
}

// Put writes buf into the target's attached region at disp.
func (w *DynWin) Put(buf []byte, reg DynRegion, disp int) error {
	mem, err := w.resolve(reg, disp, len(buf), "Put")
	if err != nil {
		return err
	}
	worldDst := w.comm.ranks[reg.Rank]
	done := w.env.layer.RMAPut(w.env.p, worldDst, len(buf), w.env.costs().PutNS)
	copy(mem[disp:], buf)
	w.notePending(reg.Rank, done)
	return nil
}

// Get reads from the target's attached region at disp into buf.
func (w *DynWin) Get(buf []byte, reg DynRegion, disp int) error {
	mem, err := w.resolve(reg, disp, len(buf), "Get")
	if err != nil {
		return err
	}
	pr := w.env.net.Params()
	worldDst := w.comm.ranks[reg.Rank]
	t0 := w.env.p.Now()
	w.env.p.Advance(w.env.costs().GetNS)
	copy(buf, mem[disp:])
	w.notePending(reg.Rank, w.env.p.Now()+2*pr.PathLatency(w.env.p.ID(), worldDst)+pr.PathWireTime(w.env.p.ID(), worldDst, len(buf)))
	if sh := w.env.sh; sh != nil {
		sh.Record(obs.LayerMPI, obs.OpGet, worldDst, len(buf), 0, t0, w.env.p.Now())
		sh.Add(obs.CtrRDMAGets, 1)
		sh.Add(obs.CtrRDMABytes, int64(len(buf)))
		sh.CommAdd(worldDst, int64(len(buf)))
	}
	return nil
}

// Accumulate atomically combines buf into the target region with op.
func (w *DynWin) Accumulate(buf []byte, reg DynRegion, disp int, dt Datatype, op Op) error {
	mem, err := w.resolve(reg, disp, len(buf), "Accumulate")
	if err != nil {
		return err
	}
	worldDst := w.comm.ranks[reg.Rank]
	done := w.env.layer.RMAPut(w.env.p, worldDst, len(buf), w.env.costs().AtomicNS)
	w.sh.atomMu[reg.Rank].Lock()
	rerr := reduceInto(mem[disp:disp+len(buf)], buf, dt, op)
	w.sh.atomMu[reg.Rank].Unlock()
	if rerr != nil {
		return rerr
	}
	w.notePending(reg.Rank, done)
	return nil
}

// Flush completes outstanding operations to target.
func (w *DynWin) Flush(target int) error {
	if !w.lockedAll {
		return fmt.Errorf("mpi: Flush outside an access epoch")
	}
	if err := w.comm.checkRank(target, "Flush"); err != nil {
		return err
	}
	w.flushTarget(target)
	return nil
}

// FlushAll completes outstanding operations to every target (the same
// per-rank MPICH scan — or dirty-peer walk — as fixed windows).
func (w *DynWin) FlushAll() error {
	if !w.lockedAll {
		return fmt.Errorf("mpi: FlushAll outside an access epoch")
	}
	w.flushAllEpoch()
	return nil
}

// Free releases the window collectively; attached regions are detached and
// their memory plus registration metadata released from the footprint.
func (w *DynWin) Free() error {
	if err := w.comm.Barrier(); err != nil {
		return err
	}
	w.sh.mu.Lock()
	for key, mem := range w.attached {
		delete(w.sh.regions, DynRegion{Rank: w.comm.myRank, Key: key})
		w.chargeRegion(-int64(len(mem)))
	}
	w.sh.mu.Unlock()
	w.attached = map[int64][]byte{}
	return nil
}
